# Development targets; `make ci` mirrors .github/workflows/ci.yml.

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet staticcheck vulncheck invariants test race stackd-race fleet-race ssa-differential cache-identity bench-smoke bench bench-json bench-gate fuzz-smoke service-smoke cover race-cover ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet. Skipped with a notice when the binary is
# absent (the dev container has no network); CI installs it.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)" ; \
	fi

# Known-vulnerability scan over the module and the toolchain's stdlib.
# Skipped with a notice when the binary is absent (the dev container
# has no network); CI installs it.
vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... ; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)" ; \
	fi

# Structural invariants (one emitter; append-only diagnostic codes),
# plus the script's own self-test proving the checks can fail.
invariants:
	./scripts/invariants.sh
	./scripts/invariants.sh --self-test

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The public API and the stackd service layer under the race detector:
# a fast targeted loop for local service work (subsumed by
# `race`/`race-cover`, so `ci` does not repeat it).
stackd-race:
	$(GO) test -race ./stack/... ./cmd/stackd/...

# The fleet fault-injection tests under the race detector: replica
# death mid-sweep, Retry-After backoff, health transitions, auth, and
# the metrics/compression middleware. race-cover already runs these
# once; ci repeats them with -count=2 to shake out scheduling-order
# flakiness in the retry and probing paths specifically.
fleet-race:
	$(GO) test -race -count=2 \
		-run 'Death|DeadReplica|RetryAfter|RetryDisabled|Health|Duplicate|Metrics|Auth|Gzip|Attribution' \
		./stack/shard ./stack/client ./stack/service

# The SSA differential gate under the race detector: byte identity of
# sweep output with Options.SSA across worker counts, the mem2reg /
# value-numbering / dead-store unit and exec-differential tests, and
# the SSA fuzz seed corpus.
ssa-differential:
	$(GO) test -race -run 'SSA' ./internal/...

# The result-cache gate under the race detector: cold-vs-warm byte
# identity of sweep output across worker counts and merge strategies,
# option-fingerprint completeness and sensitivity, name rehydration,
# disk-tier persistence, and the stack/cache unit suite (LRU eviction,
# byte budgets, atomic-rename collisions, crash safety).
cache-identity:
	$(GO) test -race -run 'WarmCache|CacheKey|Fingerprint|CacheCorrupt' ./stack
	$(GO) test -race ./stack/cache

# Short smoke run of the Figure 16 Kerberos profile plus the parallel
# sweep, incremental-vs-scratch, SSA chain-heavy, SCCP branch-heavy,
# and warm result-cache benchmarks (speedup-vs-serial,
# rewrite-hit-rate, queries-per-blast, blast-reduction,
# sccp-folded-branches, hoisted-ub-terms, and warm-hit-rate metrics).
bench-smoke:
	$(GO) test -run NONE -bench 'BenchmarkFig16Kerberos|BenchmarkSweepParallel|BenchmarkIncrementalVsScratch|BenchmarkSSAChainHeavy|BenchmarkSCCPBranchHeavy|BenchmarkWarmSweep' -benchtime=1x

# Full paper-figure regeneration (see EXPERIMENTS.md).
bench:
	$(GO) test -run NONE -bench . -benchmem

# Machine-readable benchmark trajectory (see EXPERIMENTS.md). bench-json
# regenerates the current checkpoint file; bump BENCH_CHECKPOINT when a
# PR advances the trajectory. bench-gate reruns the set and fails on
# regression against the newest committed BENCH_<n>.json; with no
# checkpoint committed it passes with a notice.
BENCH_CHECKPOINT ?= 9
bench-json:
	$(GO) run ./scripts/benchjson -out BENCH_$(BENCH_CHECKPOINT).json

bench-gate:
	$(GO) run ./scripts/benchjson -compare-latest

# Run each native fuzz target briefly (go test allows one -fuzz
# pattern per invocation). Seed corpora live under testdata/fuzz and
# are also replayed by plain `make test`. The last four are the SSA
# differential oracles: end-to-end byte identity of checker output
# keyed on SSASharpened, plus per-pass execution equivalence for SCCP,
# loop-invariant UB hoisting, and cross-block GVN.
fuzz-smoke:
	$(GO) test ./internal/cc -run '^$$' -fuzz '^FuzzTokenize$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/cc -run '^$$' -fuzz '^FuzzPreprocess$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/cc -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/bv -run '^$$' -fuzz '^FuzzTermConstruction$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz '^FuzzSSADifferential$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/ir -run '^$$' -fuzz '^FuzzSCCPDifferential$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/ir -run '^$$' -fuzz '^FuzzHoistDifferential$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/ir -run '^$$' -fuzz '^FuzzGVNDifferential$$' -fuzztime $(FUZZTIME)

# End-to-end service smoke: build stackd + the stack CLI, start two
# replicas, and require a sharded `stack -remote` run (text and jsonl)
# plus a raw POST /v1/sweep to be byte-identical to the local run —
# including after one of the two replicas is SIGKILLed mid-sweep. Also
# scrapes /metrics and exercises bearer-token auth.
service-smoke:
	./scripts/service-smoke.sh

# Aggregate coverage over every package.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

# One test-suite execution serving both the race check and the coverage
# report, as in CI.
race-cover:
	$(GO) test -race -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

ci: vet staticcheck vulncheck invariants build race-cover fleet-race ssa-differential cache-identity bench-smoke bench-gate fuzz-smoke service-smoke
