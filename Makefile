# Development targets; `make ci` mirrors .github/workflows/ci.yml.

GO ?= go

.PHONY: all build vet test race bench-smoke bench ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short smoke run of the Figure 16 Kerberos profile plus the parallel
# sweep benchmark (speedup-vs-serial / rewrite-hit-rate metrics).
bench-smoke:
	$(GO) test -run NONE -bench 'BenchmarkFig16Kerberos|BenchmarkSweepParallel' -benchtime=1x

# Full paper-figure regeneration (see EXPERIMENTS.md).
bench:
	$(GO) test -run NONE -bench . -benchmem

ci: vet build race bench-smoke
