package repro

// One benchmark per table/figure of the paper's evaluation. Each
// benchmark both measures the work and emits the reproduced quantities
// as custom metrics, so `go test -bench=. -benchmem` regenerates the
// paper's numbers. EXPERIMENTS.md maps each benchmark to its figure.

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/compilers"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/ir"
	"repro/stack"
	"repro/stack/cache"
)

func checkerOpts() core.Options {
	return core.Options{
		Timeout:       5 * time.Second,
		FilterOrigins: true,
		MinUBSets:     true,
		Inline:        true,
	}
}

func mustCheck(b *testing.B, checker *core.Checker, name, src string) []*core.Report {
	b.Helper()
	f, err := cc.Parse(name, src)
	if err != nil {
		b.Fatal(err)
	}
	if err := cc.Check(f); err != nil {
		b.Fatal(err)
	}
	p, err := ir.Build(f)
	if err != nil {
		b.Fatal(err)
	}
	reports, err := checker.CheckProgram(context.Background(), p)
	if err != nil {
		b.Fatal(err)
	}
	return reports
}

// BenchmarkFig1PointerOverflowCheck: the paper's opening example —
// detecting the unstable Figure 1 check end to end (frontend through
// solver).
func BenchmarkFig1PointerOverflowCheck(b *testing.B) {
	src := `
int parse(char *buf, char *buf_end, unsigned int len) {
	if (buf + len >= buf_end)
		return -1;
	if (buf + len < buf)
		return -1;
	return 0;
}
`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		checker := core.New(checkerOpts())
		reports := mustCheck(b, checker, "fig1.c", src)
		if len(reports) == 0 {
			b.Fatal("Figure 1 check not detected")
		}
	}
}

// BenchmarkFig2NullCheck: CVE-2009-1897 (Figure 2), elimination via
// the null-dereference UB condition.
func BenchmarkFig2NullCheck(b *testing.B) {
	src := `
struct sock { int fd; };
struct tun_struct { struct sock *sk; };
int poll(struct tun_struct *tun) {
	struct sock *sk = tun->sk;
	if (!tun)
		return -22;
	return sk->fd;
}
`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		checker := core.New(checkerOpts())
		reports := mustCheck(b, checker, "fig2.c", src)
		if len(reports) == 0 {
			b.Fatal("Figure 2 check not detected")
		}
	}
}

// BenchmarkFig4CompilerSurvey regenerates the full Figure 4 matrix —
// 16 compiler models × 6 examples × up to 4 optimization levels of
// real optimizer runs — and verifies all 96 cells.
func BenchmarkFig4CompilerSurvey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := compilers.Survey()
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range compilers.Models {
			row := rows[m.Name]
			for e := range compilers.Examples {
				if row[e] != m.FoldLevels[compilers.Examples[e].Opt] {
					b.Fatalf("%s column %d deviates from the paper", m.Name, e)
				}
			}
		}
	}
	b.ReportMetric(float64(len(compilers.Models)), "compilers")
	b.ReportMetric(float64(len(compilers.Models)*len(compilers.Examples)), "cells-verified")
}

// BenchmarkFig9BugCorpus runs the checker over the reconstructed
// 160-bug corpus (24 system rows) and verifies every planted bug is
// detected with its UB kind.
func BenchmarkFig9BugCorpus(b *testing.B) {
	sources := corpus.GenerateFig9()
	var detected, reports int
	for i := 0; i < b.N; i++ {
		detected, reports = 0, 0
		checker := core.New(checkerOpts())
		for _, ss := range sources {
			rs := mustCheck(b, checker, ss.System+".c", ss.Source)
			reports += len(rs)
			byFunc := map[string][]*core.Report{}
			for _, r := range rs {
				byFunc[r.Func] = append(byFunc[r.Func], r)
			}
			for _, bug := range ss.Bugs {
				for _, r := range byFunc[bug.FuncName] {
					if r.HasUB(bug.Kind) {
						detected++
						break
					}
				}
			}
		}
		if detected != 160 {
			b.Fatalf("detected %d/160 bugs", detected)
		}
	}
	b.ReportMetric(float64(detected), "bugs-found")
	b.ReportMetric(float64(reports), "reports")
}

// sweepOnce runs a synthetic-archive sweep and returns the result.
func sweepOnce(b *testing.B, cfg corpus.ArchiveConfig) *corpus.SweepResult {
	b.Helper()
	pkgs := corpus.GenerateArchive(cfg)
	res, err := corpus.Sweep(context.Background(), pkgs, checkerOpts())
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig16Kerberos / Postgres / Linux reproduce the Figure 16
// performance rows: build time, analysis time, files, queries, and
// timeouts for three package profiles (scaled; see EXPERIMENTS.md).
func BenchmarkFig16Kerberos(b *testing.B) { benchFig16(b, 70, 6, 1) }

// BenchmarkFig16Postgres is the Postgres-sized profile.
func BenchmarkFig16Postgres(b *testing.B) { benchFig16(b, 77, 6, 2) }

// BenchmarkFig16Linux is the Linux-kernel-sized profile.
func BenchmarkFig16Linux(b *testing.B) { benchFig16(b, 280, 8, 3) }

func benchFig16(b *testing.B, files, funcs int, seed int64) {
	cfg := corpus.ArchiveConfig{
		Packages: 1, FilesPerPackage: files, FuncsPerFile: funcs,
		UnstableFraction: 1, Seed: seed,
	}
	var res *corpus.SweepResult
	for i := 0; i < b.N; i++ {
		res = sweepOnce(b, cfg)
	}
	b.ReportMetric(float64(res.Files), "files")
	b.ReportMetric(float64(res.Queries), "queries")
	b.ReportMetric(float64(res.Timeouts), "query-timeouts")
	b.ReportMetric(res.BuildTime.Seconds(), "build-sec")
	b.ReportMetric(res.AnalysisTime.Seconds(), "analysis-sec")
	b.ReportMetric(float64(res.RewriteHits), "rewrite-hits")
}

// BenchmarkSweepParallel measures the worker-pool sweep pipeline
// against a serial (Workers=1) baseline on the same archive, emitting
// the parallel speedup and the word-level rewrite layer's hit rate
// (rewrites per term-construction). Results are byte-identical across
// worker counts — only the wall clock changes.
func BenchmarkSweepParallel(b *testing.B) {
	cfg := corpus.ArchiveConfig{
		Packages: 1, FilesPerPackage: 64, FuncsPerFile: 6,
		UnstableFraction: 1, Seed: 16,
	}
	pkgs := corpus.GenerateArchive(cfg)
	opts := checkerOpts()

	// Serial baseline: best of two runs, so first-run warmup costs
	// (allocator growth, cold caches) don't inflate the speedup.
	var serial time.Duration
	for i := 0; i < 2; i++ {
		t0 := time.Now()
		if _, err := (&corpus.Sweeper{Options: opts, Workers: 1}).Run(context.Background(), pkgs); err != nil {
			b.Fatal(err)
		}
		if d := time.Since(t0); i == 0 || d < serial {
			serial = d
		}
	}

	workers := runtime.GOMAXPROCS(0)
	sweeper := &corpus.Sweeper{Options: opts, Workers: workers}
	var res *corpus.SweepResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := sweeper.Run(context.Background(), pkgs)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	perOp := b.Elapsed() / time.Duration(b.N)
	b.ReportMetric(serial.Seconds()/perOp.Seconds(), "speedup-vs-serial")
	b.ReportMetric(float64(res.RewriteHits)/float64(res.RewriteHits+res.TermsCreated), "rewrite-hit-rate")
	// Fraction of term constructions answered by the hash-consing table;
	// AC-chain canonicalization raises this by folding commuted chains
	// onto one node.
	b.ReportMetric(float64(res.CacheHits)/float64(res.CacheHits+res.TermsCreated), "cache-hit-rate")
	b.ReportMetric(float64(res.Queries), "queries")
	b.ReportMetric(float64(workers), "workers")
}

// BenchmarkWarmSweep measures the content-addressed result cache on a
// repeated archive sweep: one cold sweep populates the cache, then the
// timed iterations re-sweep the identical archive and must be answered
// entirely from it. The benchmark fails — not merely regresses — if
// any warm file misses or the warm sweep does any solver work, so the
// warm-hit-rate metric it emits is a gated trajectory quantity (see
// scripts/benchjson). warm-speedup (cold wall clock over warm) is the
// headline payoff and is reported informationally: it depends on the
// machine, while the hit rate does not.
func BenchmarkWarmSweep(b *testing.B) {
	pkgs := corpus.GenerateArchive(corpus.DefaultArchive)
	stackPkgs := make([]stack.Package, len(pkgs))
	for i, p := range pkgs {
		stackPkgs[i] = stack.Package{Name: p.Name, Files: p.Files}
	}
	az := stack.New(stack.WithCache(cache.NewMemory(64 << 20)))
	ctx := context.Background()

	t0 := time.Now()
	coldRes, err := az.Sweep(ctx, stackPkgs, nil)
	if err != nil {
		b.Fatal(err)
	}
	cold := time.Since(t0)
	if coldRes.CacheResultHits != 0 {
		b.Fatalf("cold sweep had %d cache hits", coldRes.CacheResultHits)
	}

	b.ReportAllocs()
	b.ResetTimer()
	var res *stack.SweepResult
	for i := 0; i < b.N; i++ {
		r, err := az.Sweep(ctx, stackPkgs, nil)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.StopTimer()

	files := int64(res.Files)
	if res.CacheResultHits != files || res.CacheResultMisses != 0 {
		b.Fatalf("warm sweep hits=%d misses=%d, want %d/0", res.CacheResultHits, res.CacheResultMisses, files)
	}
	if res.Queries != 0 {
		b.Fatalf("warm sweep issued %d solver queries, want 0", res.Queries)
	}
	if res.Reports != coldRes.Reports {
		b.Fatalf("warm reports %d != cold %d", res.Reports, coldRes.Reports)
	}
	warm := b.Elapsed() / time.Duration(b.N)
	b.ReportMetric(float64(res.CacheResultHits)/float64(files), "warm-hit-rate")
	b.ReportMetric(cold.Seconds()/warm.Seconds(), "warm-speedup")
	b.ReportMetric(float64(files), "files")
	b.ReportMetric(float64(res.Reports), "reports")
}

// BenchmarkIncrementalVsScratch quantifies the incremental solving
// subsystem on the Figure 9 corpus: per-function bv.Session reuse
// (blast the shared encoding once, answer the checker's query pairs
// and masking loops under assumptions) against the scratch reference
// that rebuilds solver and CNF for every query. The verdicts are
// byte-identical (TestSweepIncrementalVsScratch); this benchmark
// reports the effort gap — queries amortized per blast pass, learned
// clauses reused, and total allocations — and fails if incrementality
// stops paying for itself.
func BenchmarkIncrementalVsScratch(b *testing.B) {
	sources := corpus.GenerateFig9()
	run := func(scratch bool) core.Stats {
		opts := checkerOpts()
		opts.ScratchSolve = scratch
		checker := core.New(opts)
		for _, ss := range sources {
			mustCheck(b, checker, ss.System+".c", ss.Source)
		}
		return checker.Stats()
	}

	allocScratch := testing.AllocsPerRun(1, func() { run(true) })
	allocInc := testing.AllocsPerRun(1, func() { run(false) })

	b.ReportAllocs()
	b.ResetTimer()
	var st core.Stats
	for i := 0; i < b.N; i++ {
		st = run(false)
	}
	b.StopTimer()
	stScratch := run(true)

	// SAT-core queries only: fast-path queries never blast regardless
	// of mode, so they would flatter the ratio.
	satQueries := st.Queries - st.FastPaths
	qpbInc := float64(satQueries) / float64(max(int64(1), st.BlastPasses))
	qpbScratch := float64(stScratch.Queries-stScratch.FastPaths) /
		float64(max(int64(1), stScratch.BlastPasses))
	queriesPerFunc := float64(satQueries) / float64(max(int64(1), int64(st.Functions)))

	// The subsystem's contract: each blast pass is amortized over at
	// least two queries on average (one shared encoding serving a whole
	// query pair or masking loop), and skipping the per-query rebuild
	// measurably cuts allocations.
	if queriesPerFunc < 2 {
		b.Fatalf("only %.2f solver queries per function; corpus exercises no query pairs", queriesPerFunc)
	}
	if qpbInc < 2 {
		b.Fatalf("incremental sessions amortize only %.2f queries per blast pass, want >= 2", qpbInc)
	}
	if allocInc >= allocScratch {
		b.Fatalf("incremental solving allocates more than scratch (%.0f >= %.0f)", allocInc, allocScratch)
	}

	b.ReportMetric(qpbInc, "queries-per-blast")
	b.ReportMetric(qpbScratch, "queries-per-blast-scratch")
	b.ReportMetric(queriesPerFunc, "queries-per-func")
	b.ReportMetric(float64(st.LearntsReused), "learnts-reused")
	b.ReportMetric(float64(st.TermsBlasted), "terms-blasted")
	b.ReportMetric(float64(stScratch.TermsBlasted), "terms-blasted-scratch")
	b.ReportMetric(allocScratch/allocInc, "alloc-ratio-scratch-vs-inc")
}

// BenchmarkFig17ReportsByAlgorithm reproduces the Figure 17 breakdown:
// reports per algorithm over the synthetic Debian-style archive.
func BenchmarkFig17ReportsByAlgorithm(b *testing.B) {
	var res *corpus.SweepResult
	for i := 0; i < b.N; i++ {
		res = sweepOnce(b, corpus.DefaultArchive)
	}
	b.ReportMetric(float64(res.ReportsByAlgo[core.AlgoElimination]), "elimination")
	b.ReportMetric(float64(res.ReportsByAlgo[core.AlgoSimplifyBool]), "boolean-oracle")
	b.ReportMetric(float64(res.ReportsByAlgo[core.AlgoSimplifyAlgebra]), "algebra-oracle")
	b.ReportMetric(float64(res.PackagesWithReports)/float64(res.Packages)*100, "pct-pkgs-with-reports")
}

// BenchmarkFig18ReportsByUBKind reproduces the Figure 18 breakdown:
// reports per UB condition over the same archive; null-pointer
// dereference must dominate as in the paper.
func BenchmarkFig18ReportsByUBKind(b *testing.B) {
	var res *corpus.SweepResult
	for i := 0; i < b.N; i++ {
		res = sweepOnce(b, corpus.DefaultArchive)
	}
	maxKind, maxN := core.UBKind(0), -1
	for k, n := range res.ReportsByKind {
		if n > maxN {
			maxKind, maxN = k, n
		}
	}
	if maxKind != core.UBNullDeref {
		b.Fatalf("dominant kind %v, want null dereference (Fig. 18)", maxKind)
	}
	b.ReportMetric(float64(res.ReportsByKind[core.UBNullDeref]), "null-deref")
	b.ReportMetric(float64(res.ReportsByKind[core.UBBufferOverflow]), "buffer")
	b.ReportMetric(float64(res.ReportsByKind[core.UBSignedOverflow]), "signed-int")
	b.ReportMetric(float64(res.ReportsByKind[core.UBPointerOverflow]), "pointer")
}

// BenchmarkSec65MinimalUBSets reproduces the §6.5 minimal-set
// statistic: most reports have a single UB condition in their minimal
// set (paper: 69,301 of ~71,880).
func BenchmarkSec65MinimalUBSets(b *testing.B) {
	var res *corpus.SweepResult
	for i := 0; i < b.N; i++ {
		res = sweepOnce(b, corpus.DefaultArchive)
	}
	single, multi := res.MinSetHistogram[1], 0
	for s, n := range res.MinSetHistogram {
		if s > 1 {
			multi += n
		}
	}
	if single <= multi {
		b.Fatalf("single-condition sets (%d) should dominate multi (%d)", single, multi)
	}
	b.ReportMetric(float64(single), "single-cond-reports")
	b.ReportMetric(float64(multi), "multi-cond-reports")
}

// BenchmarkSec66Completeness runs the ten-test §6.6 benchmark; the
// checker must find exactly the seven the paper reports.
func BenchmarkSec66Completeness(b *testing.B) {
	var found int
	for i := 0; i < b.N; i++ {
		found = 0
		checker := core.New(checkerOpts())
		for _, tc := range corpus.CompletenessSuite {
			reports := mustCheck(b, checker, "c.c", tc.Source)
			det := false
			for _, r := range reports {
				if tc.Expected && r.HasUB(tc.Kind) {
					det = true
				}
			}
			if det {
				found++
			}
		}
		if found != 7 {
			b.Fatalf("found %d/10, paper reports 7/10", found)
		}
	}
	b.ReportMetric(float64(found), "found-of-10")
}

// BenchmarkAblationNoMinUBSets measures the cost of the Fig. 8
// minimal-set computation by toggling it off (ablation for the
// DESIGN.md design-choice index).
func BenchmarkAblationNoMinUBSets(b *testing.B) {
	sources := corpus.GenerateFig9()
	opts := checkerOpts()
	opts.MinUBSets = false
	for i := 0; i < b.N; i++ {
		checker := core.New(opts)
		for _, ss := range sources {
			mustCheck(b, checker, ss.System+".c", ss.Source)
		}
	}
}

// BenchmarkAblationNoInline measures checking without the §4.2
// inlining stage.
func BenchmarkAblationNoInline(b *testing.B) {
	sources := corpus.GenerateFig9()
	opts := checkerOpts()
	opts.Inline = false
	for i := 0; i < b.N; i++ {
		checker := core.New(opts)
		for _, ss := range sources {
			mustCheck(b, checker, ss.System+".c", ss.Source)
		}
	}
}

// BenchmarkSec21ArchShiftSurvey regenerates the §2.1 architectural
// shift-behavior table with the C* evaluator (x86 vs ARM vs PowerPC).
func BenchmarkSec21ArchShiftSurvey(b *testing.B) {
	src := `int f(int x, int y) { return x << y; }`
	file, err := cc.Parse("s.c", src)
	if err != nil {
		b.Fatal(err)
	}
	if err := cc.Check(file); err != nil {
		b.Fatal(err)
	}
	prog, err := ir.Build(file)
	if err != nil {
		b.Fatal(err)
	}
	fn := prog.Lookup("f")
	want := map[[2]uint64]map[ir.Arch]uint64{
		{1, 32}: {ir.ArchX86: 1, ir.ArchARM: 0, ir.ArchPPC: 0},
		{1, 64}: {ir.ArchX86: 1, ir.ArchARM: 0, ir.ArchPPC: 1},
	}
	for i := 0; i < b.N; i++ {
		for in, per := range want {
			for arch, expect := range per {
				r, err := ir.Exec(fn, in[:], ir.ExecOptions{Arch: arch})
				if err != nil {
					b.Fatal(err)
				}
				if r.Ret != expect {
					b.Fatalf("1<<%d on %v = %d, want %d", in[1], arch, r.Ret, expect)
				}
			}
		}
	}
}

// ssaChainSources generates a chain-heavy, multi-block corpus built
// around address-taken scalars: every function seeds an accumulator,
// takes its address, and re-reads `*p` across branch, loop, and exit
// blocks with no intervening store. The legacy encoder models each of
// those loads as a fresh opaque solver variable, so the structurally
// identical chains the blocks build on top of them never share terms;
// the SSA pass stack resolves every load to the one reaching
// definition and the hash-consing builder folds the cross-block chains
// onto single nodes. The sharing is deliberately cross-block: GVN only
// merges within a block, so this is the promotion payoff, not the
// numbering payoff.
type ssaChainSource struct {
	Name, Text string
}

func ssaChainSources(n int) []ssaChainSource {
	srcs := make([]ssaChainSource, n)
	for i := range srcs {
		k1, k2, k3 := i%7+2, i%11+3, i%5+1
		// Each arm reads *p once into t and feeds it to the same long
		// mix chain. The reads have different reaching load variables
		// under the legacy encoder, so every arm rebuilds the entire
		// chain from scratch; promotion resolves all three t's to the
		// one reaching definition, making the second and third arms
		// pure hash-consing hits.
		chain := fmt.Sprintf(
			"((((((t ^ a) & (t | %d)) ^ (t & b)) | (t ^ %d)) & ((t | a) ^ (t & %d))) ^ ((t & %d) | (t ^ b))) ^ (((t | %d) & (t ^ a)) | ((t & %d) ^ (t | b)))",
			k1, k2, k3, k2+k3, k1+k2, k1+k3)
		srcs[i] = ssaChainSource{
			Name: fmt.Sprintf("chain%02d.c", i),
			Text: fmt.Sprintf(`
int chain%02d(int a, int b, char *buf, char *buf_end, unsigned int len) {
	/* Scalar arithmetic prologue: a well-definedness assumption that is
	   identical with and without SSA, so the two modes differ only in
	   how they encode the pointer chains below. */
	int w = a * %d + b;
	w = w + (a ^ %d);
	w = w * 3 + (b & %d);
	w = w + (a | 1);
	w = w * 5 + b;
	int acc = w + a;
	int *p = &acc;
	int u = (a ^ %d) + (a ^ %d); /* same-block duplicate: value numbering fodder */
	int r = 0;
	if (a > b) {
		int t = *p;
		r = (%s) ^ a;
	} else if (b > 0) {
		int t = *p;
		r = (%s) ^ b;
	} else {
		int t = *p;
		r = (%s) | 1;
	}
	if (buf + len >= buf_end)
		return -1;
	if (buf + len < buf)
		return -1; /* unstable: pointer overflow is undefined */
	return (r ^ *p) + u + w;
}
`, i, k1, k2, k3, k2, k2, chain, chain, chain),
		}
	}
	return srcs
}

// BenchmarkSSAChainHeavy is the SSA pass stack's reason to exist,
// measured: the same chain-heavy corpus checked with and without
// Options.SSA. The benchmark fails — not merely regresses — unless SSA
// strictly lowers the terms the solver blasts and strictly raises the
// hash-consing cache-hit rate; the differential gates elsewhere
// guarantee the verdicts are identical, so this is pure effort
// reduction. blast-reduction (legacy blasted terms over SSA blasted
// terms) is the gated trajectory metric.
func BenchmarkSSAChainHeavy(b *testing.B) {
	srcs := ssaChainSources(24)
	run := func(ssa bool) core.Stats {
		opts := checkerOpts()
		opts.SSA = ssa
		checker := core.New(opts)
		for _, s := range srcs {
			mustCheck(b, checker, s.Name, s.Text)
		}
		return checker.Stats()
	}

	legacy := run(false)
	var st core.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st = run(true)
	}

	if st.TermsBlasted >= legacy.TermsBlasted {
		b.Fatalf("SSA did not reduce blasted terms: legacy %d, ssa %d", legacy.TermsBlasted, st.TermsBlasted)
	}
	rate := func(s core.Stats) float64 {
		return float64(s.CacheHits) / float64(s.CacheHits+s.TermsCreated)
	}
	if rate(st) <= rate(legacy) {
		b.Fatalf("SSA did not raise the cache-hit rate: legacy %.4f, ssa %.4f", rate(legacy), rate(st))
	}
	if st.GVNHits == 0 || st.PromotedAllocas == 0 {
		b.Fatalf("passes idle on their own corpus: %+v", st)
	}

	b.ReportMetric(float64(st.TermsBlasted), "terms-blasted")
	b.ReportMetric(float64(legacy.TermsBlasted), "terms-blasted-legacy")
	b.ReportMetric(rate(st), "cache-hit-rate")
	b.ReportMetric(rate(legacy), "cache-hit-rate-legacy")
	b.ReportMetric(float64(legacy.TermsBlasted)/float64(st.TermsBlasted), "blast-reduction")
	b.ReportMetric(float64(st.PromotedAllocas), "promoted-allocas")
	b.ReportMetric(float64(st.GVNHits), "gvn-hits")
	b.ReportMetric(float64(st.Queries), "queries")
	b.ReportMetric(float64(st.Queries)/float64(len(srcs)), "queries-per-file")
}

// sccpBranchSources generates a branch-heavy loop corpus for the
// global-analysis passes: every function runs a do-while whose first
// statement is loop-varying (so the block's report anchor stays
// put), followed by loop-invariant UB-carrying computations (a signed
// multiply and a shift — hoisting candidates), and a region guarded
// by a loop-carried constant flag that SCCP proves never executes.
// The legacy pipeline pays solver queries for every UB site in the
// dead region; SCCP folds the guard, the region's blocks lose their
// executable in-edge, and the constant-decidable queries die in the
// rewrite layer before blasting.
func sccpBranchSources(n int) []ssaChainSource {
	srcs := make([]ssaChainSource, n)
	for i := range srcs {
		k1, k2, k3 := i%13+3, i%5+1, i%9+2
		srcs[i] = ssaChainSource{
			Name: fmt.Sprintf("sccp%02d.c", i),
			Text: fmt.Sprintf(`
int sccp%02d(int n, int a, int b) {
	int flag = 0;
	int dead = 0;
	int s = a;
	int i = 0;
	do {
		s = s + b;              /* loop-varying: keeps the header anchor */
		s = s + a * %d;         /* invariant signed multiply: hoisted */
		s = s ^ (a << %d);      /* invariant shift: hoisted */
		if (flag) {
			dead = dead + b / n;  /* SCCP-dead: the guard folds to false */
			dead = dead * %d + a * b;
			dead = dead << n;
		}
		i = i + 1;
	} while (i < n);
	return s + dead;
}
`, i, k1, k2, k3),
		}
	}
	return srcs
}

// BenchmarkSCCPBranchHeavy measures the global-analysis suite on its
// own corpus: loop-carried-constant guards that SCCP folds, dead
// regions that lose their executable in-edge, and loop-invariant
// UB-carrying computations that hoisting lifts into the preheader.
// The benchmark fails — not merely regresses — unless both passes
// fire and SSA strictly lowers solver queries versus the legacy
// pipeline. sccp-folded-branches and hoisted-ub-terms are the gated
// trajectory metrics.
func BenchmarkSCCPBranchHeavy(b *testing.B) {
	srcs := sccpBranchSources(24)
	run := func(ssa bool) core.Stats {
		opts := checkerOpts()
		opts.SSA = ssa
		checker := core.New(opts)
		for _, s := range srcs {
			mustCheck(b, checker, s.Name, s.Text)
		}
		return checker.Stats()
	}

	legacy := run(false)
	var st core.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st = run(true)
	}

	if st.SCCPFoldedBranches == 0 {
		b.Fatalf("SCCP folded no branches on its own corpus: %+v", st)
	}
	if st.SCCPUnreachableBlocks == 0 {
		b.Fatalf("SCCP found no unreachable blocks though every guard is a loop-carried constant: %+v", st)
	}
	if st.HoistedUBTerms == 0 {
		b.Fatalf("hoisting moved no UB terms though every loop has invariant signed arithmetic: %+v", st)
	}
	if st.Queries >= legacy.Queries {
		b.Fatalf("SSA did not reduce queries: legacy %d, ssa %d", legacy.Queries, st.Queries)
	}

	b.ReportMetric(float64(st.SCCPFoldedBranches), "sccp-folded-branches")
	b.ReportMetric(float64(st.SCCPUnreachableBlocks), "sccp-unreachable-blocks")
	b.ReportMetric(float64(st.HoistedUBTerms), "hoisted-ub-terms")
	b.ReportMetric(float64(st.Queries), "queries")
	b.ReportMetric(float64(legacy.Queries), "queries-legacy")
	b.ReportMetric(float64(legacy.Queries)/float64(st.Queries), "query-reduction")
	b.ReportMetric(float64(st.Queries)/float64(len(srcs)), "queries-per-file")
}
