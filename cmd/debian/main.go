// Command debian runs the synthetic-archive sweep that reproduces the
// paper's §6.4–6.5 evaluation: per-package build/analysis times and
// query counts (Fig. 16), reports per algorithm (Fig. 17), reports per
// UB condition (Fig. 18), and the minimal-UB-set size histogram.
//
// Usage:
//
//	debian [-packages N] [-files N] [-funcs N] [-seed N] [-j N] [-perf]
//	       [-stream] [-buffered]
//
// With -perf it instead runs the three Figure 16 package profiles
// (Kerberos-, Postgres-, and Linux-sized) and prints the table rows.
// -j sets the sweep worker count (default: one per CPU). All counts
// and reports in the output are identical for any value, as long as no
// query hits the 5-second timeout (see corpus.Sweeper); only the
// build/analysis timing line varies, being a measured duration.
//
// -stream prints each file's reports the moment the file (and every
// file before it) finishes checking, instead of only the final summary
// — on a big archive results appear immediately. -buffered selects the
// legacy collect-then-merge strategy; the summary is byte-identical
// either way. The two flags are mutually exclusive (-stream is
// streaming by definition).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
)

func main() {
	packages := flag.Int("packages", corpus.DefaultArchive.Packages, "number of packages")
	files := flag.Int("files", corpus.DefaultArchive.FilesPerPackage, "files per package")
	funcs := flag.Int("funcs", corpus.DefaultArchive.FuncsPerFile, "functions per file")
	seed := flag.Int64("seed", corpus.DefaultArchive.Seed, "generator seed")
	perf := flag.Bool("perf", false, "run the Figure 16 performance profiles")
	jobs := flag.Int("j", 0, "sweep workers (0 = one per CPU)")
	stream := flag.Bool("stream", false, "print per-file reports as they are produced")
	buffered := flag.Bool("buffered", false, "use the legacy buffered merge instead of streaming")
	flag.Parse()
	if *stream && *buffered {
		fmt.Fprintln(os.Stderr, "debian: -stream and -buffered are mutually exclusive")
		os.Exit(2)
	}
	if *stream && *perf {
		fmt.Fprintln(os.Stderr, "debian: -stream does not apply to the -perf profile table")
		os.Exit(2)
	}

	opts := core.Options{
		Timeout:       5 * time.Second,
		FilterOrigins: true,
		MinUBSets:     true,
		Inline:        true,
	}

	if *perf {
		// Three scaled package profiles standing in for Kerberos (705
		// files), Postgres (770), and the Linux kernel (14,136).
		profiles := []struct {
			name string
			cfg  corpus.ArchiveConfig
		}{
			{"kerberos-scale", corpus.ArchiveConfig{Packages: 1, FilesPerPackage: 70, FuncsPerFile: 6, UnstableFraction: 1, Seed: 1}},
			{"postgres-scale", corpus.ArchiveConfig{Packages: 1, FilesPerPackage: 77, FuncsPerFile: 6, UnstableFraction: 1, Seed: 2}},
			{"linux-scale", corpus.ArchiveConfig{Packages: 1, FilesPerPackage: 280, FuncsPerFile: 8, UnstableFraction: 1, Seed: 3}},
		}
		fmt.Printf("%-16s %12s %14s %8s %10s %10s\n",
			"package", "build time", "analysis time", "files", "queries", "timeouts")
		sweeper := &corpus.Sweeper{Options: opts, Workers: *jobs, Buffered: *buffered}
		for _, p := range profiles {
			pkgs := corpus.GenerateArchive(p.cfg)
			res, err := sweeper.Run(pkgs)
			if err != nil {
				fmt.Fprintf(os.Stderr, "debian: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("%-16s %12v %14v %8d %10d %10d\n",
				p.name, res.BuildTime.Round(time.Millisecond),
				res.AnalysisTime.Round(time.Millisecond),
				res.Files, res.Queries, res.Timeouts)
		}
		return
	}

	cfg := corpus.ArchiveConfig{
		Packages:         *packages,
		FilesPerPackage:  *files,
		FuncsPerFile:     *funcs,
		UnstableFraction: corpus.DefaultArchive.UnstableFraction,
		Seed:             *seed,
	}
	pkgs := corpus.GenerateArchive(cfg)
	sweeper := &corpus.Sweeper{Options: opts, Workers: *jobs, Buffered: *buffered}
	var res *corpus.SweepResult
	var err error
	if *stream {
		res, err = sweeper.RunStream(pkgs, func(fr corpus.FileResult) {
			if len(fr.Reports) == 0 {
				return
			}
			fmt.Printf("%s: %d report(s)\n", fr.File, len(fr.Reports))
			for _, r := range fr.Reports {
				fmt.Printf("  %v\n", r)
			}
		})
	} else {
		res, err = sweeper.Run(pkgs)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "debian: %v\n", err)
		os.Exit(1)
	}
	if *stream {
		fmt.Println()
	}
	fmt.Print(res.Format())
}
