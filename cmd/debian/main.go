// Command debian runs the synthetic-archive sweep that reproduces the
// paper's §6.4–6.5 evaluation — per-package build/analysis times and
// query counts (Fig. 16), reports per algorithm (Fig. 17), reports per
// UB condition (Fig. 18), and the minimal-UB-set size histogram — as a
// thin client of the public stack API.
//
// Usage:
//
//	debian [-packages N] [-files N] [-funcs N] [-seed N] [-j N]
//	       [-timeout D] [-max-conflicts N] [-perf]
//	       [-stream] [-format text|jsonl|sarif] [-buffered]
//	       [-remote host1,host2,...] [-auth-token T] [-fleet-status]
//
// With -perf it instead runs the three Figure 16 package profiles
// (Kerberos-, Postgres-, and Linux-sized) and prints the table rows.
// -j sets the sweep worker count (default: one per CPU). All counts
// and reports in the output are identical for any value, as long as no
// query hits the -timeout deadline (default 5s, as in the paper; see
// corpus.Sweeper); only the build/analysis timing line varies, being a
// measured duration. -max-conflicts optionally bounds per-query solver
// effort deterministically instead.
//
// -stream renders each file's results through a sink the moment the
// file (and every file before it) finishes checking — on a big archive
// results appear immediately. -format selects the sink: text (the
// classic per-file report stream, then the summary block), jsonl (one
// JSON object per file), or sarif (a SARIF 2.1.0 log on completion);
// the non-text formats keep stdout machine-consumable and print no
// summary. -buffered selects the legacy collect-then-merge strategy;
// the summary is byte-identical either way. -stream and -buffered are
// mutually exclusive (-stream is streaming by definition).
//
// -remote runs the sweep against stackd replicas instead of the local
// solver: the archive's files are flattened into one batch, dealt to
// the least-loaded healthy replicas, and streamed back in archive
// order through the same sinks (requires -stream; the replicas'
// solver settings apply, and the text stream is byte-identical to a
// local -stream run — a replica dying mid-sweep is retried on the
// survivors without disturbing the stream). -auth-token sends the
// bearer token stackd -auth-token demands. The batch API carries
// per-file diagnostics only, so no summary block is printed and the
// jsonl lines omit the package/function/timing fields of a local
// sweep.
//
// -fleet-status skips the sweep entirely: every replica is probed once
// and the fleet health snapshot is printed as JSON — name, up,
// pending, transitions, lastErr per replica. The mode has its own flag
// set: only -remote (required) and -auth-token apply, and any other
// flag or argument is a usage error. Exit codes: 0 with every replica
// up, 1 with any replica down, 2 on a usage error or a failed
// probe/encoding.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/corpus"
	"repro/stack"
	"repro/stack/client"
	"repro/stack/shard"
)

func main() {
	// -fleet-status is its own mode with its own strict flag surface:
	// only -remote and -auth-token apply, and anything else is a usage
	// error instead of a silently ignored no-op. Handled before the
	// regular parse (shard.FleetStatus re-parses the arguments).
	if shard.HasFleetStatusFlag(os.Args[1:]) {
		os.Exit(shard.FleetStatus(os.Stdout, os.Stderr, "debian", os.Args[1:]))
	}

	common := stack.BindCommonFlags(flag.CommandLine)
	packages := flag.Int("packages", corpus.DefaultArchive.Packages, "number of packages")
	files := flag.Int("files", corpus.DefaultArchive.FilesPerPackage, "files per package")
	funcs := flag.Int("funcs", corpus.DefaultArchive.FuncsPerFile, "functions per file")
	seed := flag.Int64("seed", corpus.DefaultArchive.Seed, "generator seed")
	perf := flag.Bool("perf", false, "run the Figure 16 performance profiles")
	stream := flag.Bool("stream", false, "render per-file results through a sink as they are produced")
	format := flag.String("format", "text", "streaming sink format: text, jsonl, or sarif")
	buffered := flag.Bool("buffered", false, "use the legacy buffered merge instead of streaming")
	remote := flag.String("remote", "", "comma-separated stackd replica addresses; sweep runs remotely (requires -stream)")
	authToken := flag.String("auth-token", "", "bearer token for the replicas (with -remote)")
	_ = flag.Bool("fleet-status", false, "probe the -remote fleet once and print its health as JSON (own flag set; see debian -fleet-status -h)")
	flag.Parse()
	if *stream && *buffered {
		fmt.Fprintln(os.Stderr, "debian: -stream and -buffered are mutually exclusive")
		os.Exit(2)
	}
	if *stream && *perf {
		fmt.Fprintln(os.Stderr, "debian: -stream does not apply to the -perf profile table")
		os.Exit(2)
	}
	if *remote != "" && !*stream {
		fmt.Fprintln(os.Stderr, "debian: -remote requires -stream (the batch API streams per-file results; there is no local summary)")
		os.Exit(2)
	}

	az := stack.New(append(common.Options(), stack.WithBufferedSweep(*buffered))...)
	ctx := context.Background()

	if *perf {
		// Three scaled package profiles standing in for Kerberos (705
		// files), Postgres (770), and the Linux kernel (14,136).
		profiles := []struct {
			name string
			cfg  corpus.ArchiveConfig
		}{
			{"kerberos-scale", corpus.ArchiveConfig{Packages: 1, FilesPerPackage: 70, FuncsPerFile: 6, UnstableFraction: 1, Seed: 1}},
			{"postgres-scale", corpus.ArchiveConfig{Packages: 1, FilesPerPackage: 77, FuncsPerFile: 6, UnstableFraction: 1, Seed: 2}},
			{"linux-scale", corpus.ArchiveConfig{Packages: 1, FilesPerPackage: 280, FuncsPerFile: 8, UnstableFraction: 1, Seed: 3}},
		}
		fmt.Printf("%-16s %12s %14s %8s %10s %10s\n",
			"package", "build time", "analysis time", "files", "queries", "timeouts")
		for _, p := range profiles {
			res, err := az.Sweep(ctx, archivePackages(p.cfg), nil)
			if err != nil {
				fmt.Fprintf(os.Stderr, "debian: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("%-16s %12v %14v %8d %10d %10d\n",
				p.name, res.BuildTime.Round(time.Millisecond),
				res.AnalysisTime.Round(time.Millisecond),
				res.Files, res.Queries, res.Timeouts)
		}
		return
	}

	pkgs := archivePackages(corpus.ArchiveConfig{
		Packages:         *packages,
		FilesPerPackage:  *files,
		FuncsPerFile:     *funcs,
		UnstableFraction: corpus.DefaultArchive.UnstableFraction,
		Seed:             *seed,
	})

	var sink stack.Sink
	if *stream {
		switch *format {
		case "text":
			sink = stack.NewTextSink(os.Stdout)
		case "jsonl":
			sink = stack.NewJSONLSink(os.Stdout)
		case "sarif":
			sink = stack.NewSARIFSink(os.Stdout)
		default:
			fmt.Fprintf(os.Stderr, "debian: unknown -format %q (want text, jsonl, or sarif)\n", *format)
			os.Exit(2)
		}
	} else if *format != "text" {
		fmt.Fprintln(os.Stderr, "debian: -format requires -stream")
		os.Exit(2)
	}

	if *remote != "" {
		remoteSweep(ctx, *remote, *authToken, pkgs, sink)
		return
	}

	res, err := az.Sweep(ctx, pkgs, sink)
	if err != nil {
		fmt.Fprintf(os.Stderr, "debian: %v\n", err)
		os.Exit(1)
	}
	if *stream && *format != "text" {
		return // keep stdout machine-consumable; no summary block
	}
	if *stream {
		fmt.Println()
	}
	fmt.Print(res.Format())
}

// remoteSweep flattens the archive into one batch and streams it
// through stackd replicas, dealt least-pending across the healthy
// fleet. File names follow the local sweeper's "pkg_N.c" convention,
// so the text sink's stream is byte-identical to a local -stream run.
func remoteSweep(ctx context.Context, remote, authToken string, pkgs []stack.Package, sink stack.Sink) {
	chk, err := shard.FromHosts(remote, shard.WithClientOptions(client.WithAuthToken(authToken)))
	if err != nil {
		fmt.Fprintf(os.Stderr, "debian: -remote: %v\n", err)
		os.Exit(2)
	}
	// An archive sweep runs long enough for replicas to die and come
	// back; background probes keep the fleet view current.
	stopHealth := chk.StartHealth(0)
	defer stopHealth()
	var srcs []stack.Source
	for _, p := range pkgs {
		for fi, f := range p.Files {
			srcs = append(srcs, stack.Source{Name: fmt.Sprintf("%s_%d.c", p.Name, fi), Text: f})
		}
	}
	_, err = chk.CheckSources(ctx, srcs, func(fr stack.FileResult) {
		if err := sink.Emit(fr); err != nil {
			fmt.Fprintf(os.Stderr, "debian: %v\n", err)
			os.Exit(1)
		}
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "debian: %v\n", err)
		os.Exit(1)
	}
	if err := sink.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "debian: %v\n", err)
		os.Exit(1)
	}
}

// archivePackages generates the synthetic archive and converts it to
// the public API's package form.
func archivePackages(cfg corpus.ArchiveConfig) []stack.Package {
	pkgs := corpus.GenerateArchive(cfg)
	out := make([]stack.Package, len(pkgs))
	for i, p := range pkgs {
		out[i] = stack.Package{Name: p.Name, Files: p.Files}
	}
	return out
}
