// Command optsurvey regenerates the paper's Figure 4: for each of the
// 16 modeled compiler versions and the 6 canonical unstable-code
// examples, it runs the real optimizer at increasing -O levels and
// prints the lowest level at which the sanity check is discarded.
package main

import (
	"fmt"
	"os"

	"repro/internal/compilers"
)

func main() {
	rows, err := compilers.Survey()
	if err != nil {
		fmt.Fprintf(os.Stderr, "optsurvey: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(compilers.FormatSurvey(rows))
	// Sanity cross-check against the measured matrix.
	mismatch := 0
	for _, m := range compilers.Models {
		row := rows[m.Name]
		for i := range compilers.Examples {
			want := m.FoldLevels[compilers.Examples[i].Opt]
			if row[i] != want {
				mismatch++
			}
		}
	}
	if mismatch > 0 {
		fmt.Fprintf(os.Stderr, "optsurvey: %d cell(s) deviate from the paper's matrix\n", mismatch)
		os.Exit(1)
	}
	fmt.Println("\nall 96 cells match the paper's Figure 4")
}
