// Command optsurvey regenerates the paper's Figure 4: for each of the
// 16 modeled compiler versions and the 6 canonical unstable-code
// examples, it runs the real optimizer at increasing -O levels and
// prints the lowest level at which the sanity check is discarded.
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/compilers"
)

func main() {
	rows, err := compilers.Survey()
	if err != nil {
		fmt.Fprintf(os.Stderr, "optsurvey: %v\n", err)
		os.Exit(1)
	}
	os.Exit(report(rows, os.Stdout, os.Stderr))
}

// report prints the regenerated matrix and cross-checks it cell by
// cell against the measured models, returning the process exit code:
// 0 when all cells match, 1 with a diagnostic naming the mismatch
// count otherwise.
func report(rows map[string][compilers.NumExamples]int, out, errw io.Writer) int {
	fmt.Fprint(out, compilers.FormatSurvey(rows))
	mismatch := 0
	for _, m := range compilers.Models {
		row := rows[m.Name]
		for i := range compilers.Examples {
			want := m.FoldLevels[compilers.Examples[i].Opt]
			if row[i] != want {
				mismatch++
			}
		}
	}
	if mismatch > 0 {
		fmt.Fprintf(errw, "optsurvey: %d cell(s) deviate from the paper's matrix\n", mismatch)
		return 1
	}
	fmt.Fprintln(out, "\nall 96 cells match the paper's Figure 4")
	return 0
}
