package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/compilers"
)

// TestReportMatch regenerates the real matrix and requires the clean
// exit path: code 0, nothing on stderr, and the all-cells-match line.
func TestReportMatch(t *testing.T) {
	rows, err := compilers.Survey()
	if err != nil {
		t.Fatalf("Survey: %v", err)
	}
	var out, errw bytes.Buffer
	if code := report(rows, &out, &errw); code != 0 {
		t.Fatalf("exit code = %d on the pristine matrix, want 0 (stderr %q)", code, errw.String())
	}
	if errw.Len() != 0 {
		t.Fatalf("stderr = %q on the pristine matrix, want empty", errw.String())
	}
	if !strings.Contains(out.String(), "all 96 cells match") {
		t.Fatalf("stdout missing the all-cells-match line:\n%s", out.String())
	}
}

// TestReportMismatch tampers with regenerated cells and requires the
// failure path: non-zero exit and a diagnostic counting every
// deviating cell.
func TestReportMismatch(t *testing.T) {
	rows, err := compilers.Survey()
	if err != nil {
		t.Fatalf("Survey: %v", err)
	}
	// Flip two cells in one row: the count must reflect both, not just
	// the first hit.
	name := compilers.Models[0].Name
	row := rows[name]
	row[0]++
	row[compilers.NumExamples-1]--
	rows[name] = row

	var out, errw bytes.Buffer
	if code := report(rows, &out, &errw); code != 1 {
		t.Fatalf("exit code = %d on a tampered matrix, want 1", code)
	}
	if !strings.Contains(errw.String(), "2 cell(s) deviate") {
		t.Fatalf("stderr = %q, want a 2-cell deviation diagnostic", errw.String())
	}
	if strings.Contains(out.String(), "all 96 cells match") {
		t.Fatalf("stdout claims a match on a tampered matrix:\n%s", out.String())
	}
}
