// Command stack is the checker driver: the analogue of the paper's
// stack-build workflow (§4.1), rebuilt as a thin client of the public
// stack API. It parses C files, runs the solver-based unstable-code
// analysis, and prints bug reports with minimal UB-condition sets and
// a §6.2 classification — locally, or remotely against a fleet of
// stackd replicas.
//
// Usage:
//
//	stack [flags] file.c...
//	stack -corpus          # run over the built-in Figure 9 corpus
//
// Flags:
//
//	-timeout duration   per-query solver timeout (default 5s, as in the paper)
//	-max-conflicts N    per-query solver conflict budget (0 = unbounded)
//	-no-filter          keep reports for macro/inline-generated code
//	-no-minsets         skip minimal UB-set computation (Fig. 8)
//	-no-inline          skip function inlining
//	-classify           print the §6.2 category for each report
//	-stats              print checker statistics (queries, timeouts)
//	-j N                check N inputs concurrently (0 = one per CPU);
//	                    output order and content are independent of N
//	                    as long as no query hits the -timeout deadline
//	-format F           output format: text (the classic report stream),
//	                    jsonl (one JSON object per file), or sarif
//	                    (a SARIF 2.1.0 log); non-text formats keep
//	                    stdout machine-consumable (-stats goes to stderr)
//	-remote hosts       comma-separated stackd replica addresses
//	                    (host:port); analysis runs remotely, dealt to
//	                    the least-loaded healthy replicas and
//	                    re-sequenced into input order — the output is
//	                    byte-identical to a local run with the same
//	                    analysis options, even when a replica dies
//	                    mid-sweep (its unfinished tail is retried on
//	                    the survivors). Solver flags (-timeout,
//	                    -max-conflicts, -j, -no-*) then configure
//	                    nothing: the replicas' stackd settings apply.
//	-auth-token T       bearer token sent to the replicas (pairs with
//	                    stackd -auth-token); only meaningful with
//	                    -remote
//	-fleet-status       probe every -remote replica once and print the
//	                    fleet health snapshot as JSON (name, up,
//	                    pending, transitions, lastErr) instead of
//	                    running an analysis. The mode has its own flag
//	                    set: only -remote (required) and -auth-token
//	                    apply, any other flag or argument is a usage
//	                    error. Exit codes: 0 with every replica up, 1
//	                    with any replica down, 2 on a usage error or a
//	                    failed probe/encoding
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/corpus"
	"repro/stack"
	"repro/stack/client"
	"repro/stack/shard"
)

func main() {
	// -fleet-status is its own mode with its own strict flag surface:
	// only -remote and -auth-token apply, and anything else is a usage
	// error instead of a silently ignored no-op. Handled before the
	// regular parse (shard.FleetStatus re-parses the arguments).
	if shard.HasFleetStatusFlag(os.Args[1:]) {
		os.Exit(shard.FleetStatus(os.Stdout, os.Stderr, "stack", os.Args[1:]))
	}

	common := stack.BindCommonFlags(flag.CommandLine)
	noFilter := flag.Bool("no-filter", false, "keep reports for macro/inline-generated code")
	noMinsets := flag.Bool("no-minsets", false, "skip minimal UB-set computation")
	noInline := flag.Bool("no-inline", false, "skip function inlining")
	classify := flag.Bool("classify", false, "print report categories (§6.2)")
	stats := flag.Bool("stats", false, "print checker statistics")
	runCorpus := flag.Bool("corpus", false, "check the built-in Figure 9 corpus")
	fwrapv := flag.Bool("fwrapv", false, "assume -fwrapv (signed arithmetic wraps, §7)")
	fnoStrict := flag.Bool("fno-strict-overflow", false, "assume -fno-strict-overflow (§7)")
	fnoNull := flag.Bool("fno-delete-null-pointer-checks", false, "assume -fno-delete-null-pointer-checks (§7)")
	format := flag.String("format", "text", "output format: text, jsonl, or sarif")
	remote := flag.String("remote", "", "comma-separated stackd replica addresses; analysis runs remotely")
	authToken := flag.String("auth-token", "", "bearer token for the replicas (with -remote)")
	_ = flag.Bool("fleet-status", false, "probe the -remote fleet once and print its health as JSON (own flag set; see stack -fleet-status -h)")
	flag.Parse()

	// The Checker is where local and remote runs meet: everything after
	// this switch is oblivious to where the solver executes.
	var chk stack.Checker
	if *remote != "" {
		d, err := shard.FromHosts(*remote, shard.WithClientOptions(client.WithAuthToken(*authToken)))
		if err != nil {
			fmt.Fprintf(os.Stderr, "stack: -remote: %v\n", err)
			os.Exit(2)
		}
		// Background probing folds a replica that recovers mid-run back
		// into the fleet while retries are still backing off.
		stopHealth := d.StartHealth(0)
		defer stopHealth()
		chk = d
	} else {
		chk = stack.New(append(common.Options(),
			stack.WithOriginFilter(!*noFilter),
			stack.WithMinUBSets(!*noMinsets),
			stack.WithInlining(!*noInline),
			stack.WithCompilerEnv(stack.CompilerEnv{
				WrapV:                     *fwrapv,
				NoStrictOverflow:          *fnoStrict,
				NoDeleteNullPointerChecks: *fnoNull,
			}),
		)...)
	}

	// Gather every input up front; the API checks them concurrently
	// (-j locally, sharded round-robin remotely) and streams results
	// back in input order.
	type unit struct {
		name    string // display name (system or path)
		corpus  bool
		planted int
	}
	var units []unit
	var srcs []stack.Source
	if *runCorpus {
		for _, ss := range corpus.GenerateFig9() {
			units = append(units, unit{name: ss.System, corpus: true, planted: len(ss.Bugs)})
			srcs = append(srcs, stack.Source{Name: ss.System + ".c", Text: ss.Source})
		}
	}
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stack: %v\n", err)
			os.Exit(2)
		}
		units = append(units, unit{name: path})
		srcs = append(srcs, stack.Source{Name: path, Text: string(src)})
	}
	if len(units) == 0 {
		fmt.Fprintln(os.Stderr, "usage: stack [flags] file.c... (or -corpus); see -h")
		os.Exit(2)
	}

	// Non-text formats stream through a sink, exactly the bytes the
	// sweep service and the jsonl/sarif sweep CLIs produce.
	var sink stack.Sink
	switch *format {
	case "text":
	case "jsonl":
		sink = stack.NewJSONLSink(os.Stdout)
	case "sarif":
		sink = stack.NewSARIFSink(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "stack: unknown -format %q (want text, jsonl, or sarif)\n", *format)
		os.Exit(2)
	}

	exit := 0
	total := 0
	st, err := chk.CheckSources(context.Background(), srcs, func(fr stack.FileResult) {
		u := units[fr.Index]
		if len(fr.Diagnostics) > 0 {
			exit = 1
			if u.corpus {
				total += len(fr.Diagnostics)
			}
		}
		if sink != nil {
			if err := sink.Emit(fr); err != nil {
				fmt.Fprintf(os.Stderr, "stack: %v\n", err)
				os.Exit(2)
			}
			return
		}
		if u.corpus {
			fmt.Printf("=== %s: %d report(s), %d planted bug(s)\n", u.name, len(fr.Diagnostics), u.planted)
		} else if len(fr.Diagnostics) == 0 {
			fmt.Printf("%s: no unstable code found\n", u.name)
		}
		for _, d := range fr.Diagnostics {
			fmt.Println(d)
			if *classify {
				fmt.Printf("  category: %s\n", d.Category)
			}
		}
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "stack: %v\n", err)
		os.Exit(2)
	}
	if sink != nil {
		if err := sink.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "stack: %v\n", err)
			os.Exit(2)
		}
	} else if *runCorpus {
		fmt.Printf("total: %d report(s)\n", total)
	}

	if *stats {
		out := os.Stdout
		if sink != nil {
			out = os.Stderr // keep machine-consumable stdout clean
		}
		fmt.Fprintf(out, "functions analyzed: %d\nblocks: %d\nsolver queries: %d\nquery timeouts: %d\nrewrite hits: %d\nsolver fast paths: %d\n",
			st.Functions, st.Blocks, st.Queries, st.Timeouts, st.RewriteHits, st.FastPaths)
	}
	os.Exit(exit)
}
