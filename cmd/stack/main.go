// Command stack is the checker driver: the analogue of the paper's
// stack-build workflow (§4.1), rebuilt as a thin client of the public
// stack API. It parses C files, runs the solver-based unstable-code
// analysis, and prints bug reports with minimal UB-condition sets and
// a §6.2 classification.
//
// Usage:
//
//	stack [flags] file.c...
//	stack -corpus          # run over the built-in Figure 9 corpus
//
// Flags:
//
//	-timeout duration   per-query solver timeout (default 5s, as in the paper)
//	-max-conflicts N    per-query solver conflict budget (0 = unbounded)
//	-no-filter          keep reports for macro/inline-generated code
//	-no-minsets         skip minimal UB-set computation (Fig. 8)
//	-no-inline          skip function inlining
//	-classify           print the §6.2 category for each report
//	-stats              print checker statistics (queries, timeouts)
//	-j N                check N inputs concurrently (0 = one per CPU);
//	                    output order and content are independent of N
//	                    as long as no query hits the -timeout deadline
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/corpus"
	"repro/stack"
)

func main() {
	common := stack.BindCommonFlags(flag.CommandLine)
	noFilter := flag.Bool("no-filter", false, "keep reports for macro/inline-generated code")
	noMinsets := flag.Bool("no-minsets", false, "skip minimal UB-set computation")
	noInline := flag.Bool("no-inline", false, "skip function inlining")
	classify := flag.Bool("classify", false, "print report categories (§6.2)")
	stats := flag.Bool("stats", false, "print checker statistics")
	runCorpus := flag.Bool("corpus", false, "check the built-in Figure 9 corpus")
	fwrapv := flag.Bool("fwrapv", false, "assume -fwrapv (signed arithmetic wraps, §7)")
	fnoStrict := flag.Bool("fno-strict-overflow", false, "assume -fno-strict-overflow (§7)")
	fnoNull := flag.Bool("fno-delete-null-pointer-checks", false, "assume -fno-delete-null-pointer-checks (§7)")
	flag.Parse()

	az := stack.New(append(common.Options(),
		stack.WithOriginFilter(!*noFilter),
		stack.WithMinUBSets(!*noMinsets),
		stack.WithInlining(!*noInline),
		stack.WithCompilerEnv(stack.CompilerEnv{
			WrapV:                     *fwrapv,
			NoStrictOverflow:          *fnoStrict,
			NoDeleteNullPointerChecks: *fnoNull,
		}),
	)...)

	// Gather every input up front; the API checks them concurrently
	// (-j) and streams results back in input order.
	type unit struct {
		name    string // display name (system or path)
		corpus  bool
		planted int
	}
	var units []unit
	var srcs []stack.Source
	if *runCorpus {
		for _, ss := range corpus.GenerateFig9() {
			units = append(units, unit{name: ss.System, corpus: true, planted: len(ss.Bugs)})
			srcs = append(srcs, stack.Source{Name: ss.System + ".c", Text: ss.Source})
		}
	}
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stack: %v\n", err)
			os.Exit(2)
		}
		units = append(units, unit{name: path})
		srcs = append(srcs, stack.Source{Name: path, Text: string(src)})
	}
	if len(units) == 0 {
		fmt.Fprintln(os.Stderr, "usage: stack [flags] file.c... (or -corpus); see -h")
		os.Exit(2)
	}

	exit := 0
	total := 0
	st, err := az.CheckSources(context.Background(), srcs, func(fr stack.FileResult) {
		u := units[fr.Index]
		if u.corpus {
			fmt.Printf("=== %s: %d report(s), %d planted bug(s)\n", u.name, len(fr.Diagnostics), u.planted)
			total += len(fr.Diagnostics)
		} else if len(fr.Diagnostics) == 0 {
			fmt.Printf("%s: no unstable code found\n", u.name)
		}
		for _, d := range fr.Diagnostics {
			fmt.Println(d)
			if *classify {
				fmt.Printf("  category: %s\n", d.Category)
			}
		}
		if len(fr.Diagnostics) > 0 {
			exit = 1
		}
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "stack: %v\n", err)
		os.Exit(2)
	}
	if *runCorpus {
		fmt.Printf("total: %d report(s)\n", total)
	}

	if *stats {
		fmt.Printf("functions analyzed: %d\nblocks: %d\nsolver queries: %d\nquery timeouts: %d\nrewrite hits: %d\nsolver fast paths: %d\n",
			st.Functions, st.Blocks, st.Queries, st.Timeouts, st.RewriteHits, st.FastPaths)
	}
	os.Exit(exit)
}
