// Command stack is the checker driver: the analogue of the paper's
// stack-build workflow (§4.1). It parses C files, builds IR, runs the
// solver-based unstable-code analysis, and prints bug reports with
// minimal UB-condition sets and a §6.2 classification.
//
// Usage:
//
//	stack [flags] file.c...
//	stack -corpus          # run over the built-in Figure 9 corpus
//
// Flags:
//
//	-timeout duration   per-query solver timeout (default 5s, as in the paper)
//	-no-filter          keep reports for macro/inline-generated code
//	-no-minsets         skip minimal UB-set computation (Fig. 8)
//	-no-inline          skip function inlining
//	-classify           print the §6.2 category for each report
//	-stats              print checker statistics (queries, timeouts)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cc"
	"repro/internal/compilers"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/ir"
)

func main() {
	timeout := flag.Duration("timeout", 5*time.Second, "per-query solver timeout")
	noFilter := flag.Bool("no-filter", false, "keep reports for macro/inline-generated code")
	noMinsets := flag.Bool("no-minsets", false, "skip minimal UB-set computation")
	noInline := flag.Bool("no-inline", false, "skip function inlining")
	classify := flag.Bool("classify", false, "print report categories (§6.2)")
	stats := flag.Bool("stats", false, "print checker statistics")
	runCorpus := flag.Bool("corpus", false, "check the built-in Figure 9 corpus")
	fwrapv := flag.Bool("fwrapv", false, "assume -fwrapv (signed arithmetic wraps, §7)")
	fnoStrict := flag.Bool("fno-strict-overflow", false, "assume -fno-strict-overflow (§7)")
	fnoNull := flag.Bool("fno-delete-null-pointer-checks", false, "assume -fno-delete-null-pointer-checks (§7)")
	flag.Parse()

	opts := core.Options{
		Timeout:       *timeout,
		FilterOrigins: !*noFilter,
		MinUBSets:     !*noMinsets,
		Inline:        !*noInline,
		Flags: core.Flags{
			WrapV:                     *fwrapv,
			NoStrictOverflow:          *fnoStrict,
			NoDeleteNullPointerChecks: *fnoNull,
		},
	}
	checker := core.New(opts)
	exit := 0

	emit := func(name string, reports []*core.Report) {
		for _, r := range reports {
			fmt.Println(r)
			if *classify {
				fmt.Printf("  category: %s\n", core.Classify(r, compilers.AnyModelDiscards))
			}
		}
		if len(reports) > 0 {
			exit = 1
		}
	}

	if *runCorpus {
		total := 0
		for _, ss := range corpus.GenerateFig9() {
			reports, err := checkSource(checker, ss.System+".c", ss.Source)
			if err != nil {
				fmt.Fprintf(os.Stderr, "stack: %s: %v\n", ss.System, err)
				os.Exit(2)
			}
			fmt.Printf("=== %s: %d report(s), %d planted bug(s)\n", ss.System, len(reports), len(ss.Bugs))
			emit(ss.System, reports)
			total += len(reports)
		}
		fmt.Printf("total: %d report(s)\n", total)
	}

	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stack: %v\n", err)
			os.Exit(2)
		}
		reports, err := checkSource(checker, path, string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "stack: %v\n", err)
			os.Exit(2)
		}
		if len(reports) == 0 {
			fmt.Printf("%s: no unstable code found\n", path)
		}
		emit(path, reports)
	}

	if *stats {
		st := checker.Stats()
		fmt.Printf("functions analyzed: %d\nblocks: %d\nsolver queries: %d\nquery timeouts: %d\n",
			st.Functions, st.Blocks, st.Queries, st.Timeouts)
	}
	if !*runCorpus && flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: stack [flags] file.c... (or -corpus); see -h")
		os.Exit(2)
	}
	os.Exit(exit)
}

func checkSource(checker *core.Checker, name, src string) ([]*core.Report, error) {
	f, err := cc.Parse(name, src)
	if err != nil {
		return nil, err
	}
	if err := cc.Check(f); err != nil {
		return nil, err
	}
	p, err := ir.Build(f)
	if err != nil {
		return nil, err
	}
	return checker.CheckProgram(p), nil
}
