// Command stack is the checker driver: the analogue of the paper's
// stack-build workflow (§4.1). It parses C files, builds IR, runs the
// solver-based unstable-code analysis, and prints bug reports with
// minimal UB-condition sets and a §6.2 classification.
//
// Usage:
//
//	stack [flags] file.c...
//	stack -corpus          # run over the built-in Figure 9 corpus
//
// Flags:
//
//	-timeout duration   per-query solver timeout (default 5s, as in the paper)
//	-no-filter          keep reports for macro/inline-generated code
//	-no-minsets         skip minimal UB-set computation (Fig. 8)
//	-no-inline          skip function inlining
//	-classify           print the §6.2 category for each report
//	-stats              print checker statistics (queries, timeouts)
//	-j N                check N inputs concurrently (0 = one per CPU);
//	                    output order and content are independent of N
//	                    as long as no query hits the -timeout deadline
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cc"
	"repro/internal/compilers"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/ir"
)

func main() {
	timeout := flag.Duration("timeout", 5*time.Second, "per-query solver timeout")
	jobs := flag.Int("j", 0, "concurrent checking workers (0 = one per CPU)")
	noFilter := flag.Bool("no-filter", false, "keep reports for macro/inline-generated code")
	noMinsets := flag.Bool("no-minsets", false, "skip minimal UB-set computation")
	noInline := flag.Bool("no-inline", false, "skip function inlining")
	classify := flag.Bool("classify", false, "print report categories (§6.2)")
	stats := flag.Bool("stats", false, "print checker statistics")
	runCorpus := flag.Bool("corpus", false, "check the built-in Figure 9 corpus")
	fwrapv := flag.Bool("fwrapv", false, "assume -fwrapv (signed arithmetic wraps, §7)")
	fnoStrict := flag.Bool("fno-strict-overflow", false, "assume -fno-strict-overflow (§7)")
	fnoNull := flag.Bool("fno-delete-null-pointer-checks", false, "assume -fno-delete-null-pointer-checks (§7)")
	flag.Parse()

	opts := core.Options{
		Timeout:       *timeout,
		FilterOrigins: !*noFilter,
		MinUBSets:     !*noMinsets,
		Inline:        !*noInline,
		Flags: core.Flags{
			WrapV:                     *fwrapv,
			NoStrictOverflow:          *fnoStrict,
			NoDeleteNullPointerChecks: *fnoNull,
		},
	}
	exit := 0

	emit := func(reports []*core.Report) {
		for _, r := range reports {
			fmt.Println(r)
			if *classify {
				fmt.Printf("  category: %s\n", core.Classify(r, compilers.AnyModelDiscards))
			}
		}
		if len(reports) > 0 {
			exit = 1
		}
	}

	// Gather every input up front, then check them concurrently (-j)
	// with one checker per worker; results print in input order.
	type unit struct {
		name    string // display name (system or path)
		file    string // parse name
		src     string
		corpus  bool
		planted int
	}
	var units []unit
	if *runCorpus {
		for _, ss := range corpus.GenerateFig9() {
			units = append(units, unit{
				name: ss.System, file: ss.System + ".c", src: ss.Source,
				corpus: true, planted: len(ss.Bugs),
			})
		}
	}
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stack: %v\n", err)
			os.Exit(2)
		}
		units = append(units, unit{name: path, file: path, src: string(src)})
	}
	if len(units) == 0 {
		fmt.Fprintln(os.Stderr, "usage: stack [flags] file.c... (or -corpus); see -h")
		os.Exit(2)
	}

	workers := *jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(units) {
		workers = len(units)
	}
	// Check inputs concurrently and stream each unit's output the
	// moment it and every earlier unit are done: outcomes arrive in
	// completion order on outCh and are re-sequenced into input order
	// by the pending map, so nothing buffers for the whole run and the
	// output is identical for any -j. The window semaphore (acquired by
	// the feeder, released as units print) caps how far workers may run
	// ahead of a slow early unit, bounding pending at O(workers).
	type outcome struct {
		idx     int
		reports []*core.Report
		err     error
	}
	workerStats := make([]core.Stats, workers)
	idxCh := make(chan int)
	outCh := make(chan outcome, workers)
	window := make(chan struct{}, 4*workers)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			checker := core.New(opts)
			for i := range idxCh {
				// Fail fast: once any input has errored, skip the
				// remaining work. Units are dequeued in input order, so
				// skipped units always come after the earliest error —
				// the emitter exits before reaching them.
				if failed.Load() {
					outCh <- outcome{idx: i}
					continue
				}
				reports, err := checkSource(checker, units[i].file, units[i].src)
				if err != nil {
					failed.Store(true)
				}
				outCh <- outcome{idx: i, reports: reports, err: err}
			}
			workerStats[w] = checker.Stats()
		}(w)
	}
	go func() {
		for i := range units {
			window <- struct{}{}
			idxCh <- i
		}
		close(idxCh)
		wg.Wait()
		close(outCh)
	}()

	total := 0
	next := 0
	pending := map[int]outcome{}
	for o := range outCh {
		pending[o.idx] = o
		for {
			cur, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			u := units[next]
			if cur.err != nil {
				fmt.Fprintf(os.Stderr, "stack: %s: %v\n", u.name, cur.err)
				os.Exit(2)
			}
			if u.corpus {
				fmt.Printf("=== %s: %d report(s), %d planted bug(s)\n", u.name, len(cur.reports), u.planted)
				total += len(cur.reports)
			} else if len(cur.reports) == 0 {
				fmt.Printf("%s: no unstable code found\n", u.name)
			}
			emit(cur.reports)
			next++
			<-window
		}
	}
	if *runCorpus {
		fmt.Printf("total: %d report(s)\n", total)
	}

	if *stats {
		var st core.Stats
		for _, ws := range workerStats {
			st.Add(ws)
		}
		fmt.Printf("functions analyzed: %d\nblocks: %d\nsolver queries: %d\nquery timeouts: %d\nrewrite hits: %d\nsolver fast paths: %d\n",
			st.Functions, st.Blocks, st.Queries, st.Timeouts, st.RewriteHits, st.FastPaths)
	}
	os.Exit(exit)
}

func checkSource(checker *core.Checker, name, src string) ([]*core.Report, error) {
	f, err := cc.Parse(name, src)
	if err != nil {
		return nil, err
	}
	if err := cc.Check(f); err != nil {
		return nil, err
	}
	p, err := ir.Build(f)
	if err != nil {
		return nil, err
	}
	return checker.CheckProgram(p), nil
}
