// Command stackd serves the STACK checker over HTTP: the service shape
// of the paper's §6.4 archive evaluation, with per-request contexts,
// bounded concurrency, streaming batch analysis, and graceful
// shutdown.
//
// Usage:
//
//	stackd [-addr :8591] [-timeout 5s] [-max-conflicts N] [-j N]
//	       [-max-concurrent N] [-request-timeout 30s] [-auth-token T]
//
// Endpoints (v2):
//
//	POST /v1/analyze  {"name": "file.c", "source": "..."} → diagnostics JSON
//	POST /v1/sweep    {"sources": [{"name", "source"}, ...]} → JSONL
//	                  stream, one line per source in input order,
//	                  flushed as each file completes; ?format=
//	                  jsonl|text|sarif, ?stats=1 appends a stats
//	                  trailer (see stack/service)
//	GET  /healthz     liveness probe
//	GET  /metrics     operational counters as JSON: per-endpoint
//	                  request/error counts and latency histograms, the
//	                  in-flight gauge, and cumulative solver stats
//	                  (queries, rewrite hits, blast passes, cache
//	                  hits, ...) summed across every request served
//
// -auth-token protects the analysis endpoints with a bearer token
// (clients send Authorization: Bearer <token>; cmd/stack and
// cmd/debian take the same flag); /healthz and /metrics stay open so
// probes and scrapes need no credentials. Responses are gzip-
// compressed when the client accepts it, without disturbing per-file
// streaming.
//
// The shared solver flags (-timeout, -max-conflicts, -j) mean the same
// thing as in the stack and debian CLIs; -j also sets how many sources
// of one sweep batch are analyzed concurrently. -request-timeout caps
// one whole request — including a whole sweep batch; a request over
// budget answers 504 (or a mid-stream error trailer) after aborting
// its solver queries mid-search. SIGINT/SIGTERM drain in-flight
// requests before exiting. stackd replicas are the unit of horizontal
// scale: point cmd/stack -remote, or a stack/shard dispatcher, at
// several of them to fan one batch across the fleet.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/stack"
	"repro/stack/service"
)

func main() {
	common := stack.BindCommonFlags(flag.CommandLine)
	addr := flag.String("addr", ":8591", "listen address")
	maxConcurrent := flag.Int("max-concurrent", 0, "concurrent analyses (0 = one per CPU)")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "whole-request analysis budget (0 = none)")
	authToken := flag.String("auth-token", "", "bearer token required on the analysis endpoints (empty = open)")
	flag.Parse()

	az := stack.New(common.Options()...)
	srv := service.New(az, service.Options{
		MaxConcurrent:  *maxConcurrent,
		RequestTimeout: *requestTimeout,
		AuthToken:      *authToken,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "stackd: listening on %s\n", *addr)

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "stackd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting and let in-flight analyses finish.
	// The grace period must cover the longest request the service
	// itself allows, plus margin; with no request timeout configured,
	// fall back to a fixed window.
	stop()
	grace := 30 * time.Second
	if *requestTimeout > 0 {
		grace = *requestTimeout + 5*time.Second
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "stackd: shutdown grace (%v) elapsed; aborted in-flight requests\n", grace)
		} else {
			fmt.Fprintf(os.Stderr, "stackd: shutdown: %v\n", err)
		}
		os.Exit(1)
	}
}
