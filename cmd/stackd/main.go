// Command stackd serves the STACK checker over HTTP: the service shape
// of the paper's §6.4 archive evaluation, with per-request contexts,
// bounded concurrency, streaming batch analysis, and graceful
// shutdown.
//
// Usage:
//
//	stackd [-addr :8591] [-timeout 5s] [-max-conflicts N] [-j N]
//	       [-max-concurrent N] [-max-conns N] [-request-timeout 30s]
//	       [-auth-token T] [-cache-dir DIR] [-cache-mem MiB]
//
// Endpoints (v2):
//
//	POST /v1/analyze  {"name": "file.c", "source": "..."} → diagnostics JSON
//	POST /v1/sweep    {"sources": [{"name", "source"}, ...]} → JSONL
//	                  stream, one line per source in input order,
//	                  flushed as each file completes; ?format=
//	                  jsonl|text|sarif, ?stats=1 appends a stats
//	                  trailer (see stack/service)
//	GET  /healthz     liveness probe
//	GET  /metrics     operational counters as JSON: per-endpoint
//	                  request/error counts and latency histograms, the
//	                  in-flight gauge, cumulative solver stats
//	                  (queries, rewrite hits, blast passes, cache
//	                  hits, ...) summed across every request served,
//	                  and — with a cache configured — the result
//	                  cache's counters; ?format=prometheus selects the
//	                  Prometheus text exposition format instead
//
// -cache-mem and -cache-dir attach a content-addressed result cache
// (stack.WithCache): an in-memory LRU of the given MiB budget, an
// on-disk tier that survives restarts, or — with both — the two-level
// memory→disk composition. Repeated sources (same bytes, same
// options) answer from the cache without running the solver; the
// response bytes are identical either way. -max-conns caps
// simultaneous client connections at the listener, beneath the
// request-level 503 admission control.
//
// -auth-token protects the analysis endpoints with a bearer token
// (clients send Authorization: Bearer <token>; cmd/stack and
// cmd/debian take the same flag); /healthz and /metrics stay open so
// probes and scrapes need no credentials. Responses are gzip-
// compressed when the client accepts it, without disturbing per-file
// streaming.
//
// The shared solver flags (-timeout, -max-conflicts, -j) mean the same
// thing as in the stack and debian CLIs; -j also sets how many sources
// of one sweep batch are analyzed concurrently. -request-timeout caps
// one whole request — including a whole sweep batch; a request over
// budget answers 504 (or a mid-stream error trailer) after aborting
// its solver queries mid-search. SIGINT/SIGTERM drain in-flight
// requests before exiting. stackd replicas are the unit of horizontal
// scale: point cmd/stack -remote, or a stack/shard dispatcher, at
// several of them to fan one batch across the fleet.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/stack"
	"repro/stack/cache"
	"repro/stack/service"
)

func main() {
	common := stack.BindCommonFlags(flag.CommandLine)
	addr := flag.String("addr", ":8591", "listen address")
	maxConcurrent := flag.Int("max-concurrent", 0, "concurrent analyses (0 = one per CPU)")
	maxConns := flag.Int("max-conns", 0, "maximum simultaneous client connections (0 = unlimited)")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "whole-request analysis budget (0 = none)")
	authToken := flag.String("auth-token", "", "bearer token required on the analysis endpoints (empty = open)")
	cacheDir := flag.String("cache-dir", "", "directory for the on-disk result-cache tier (empty = no disk tier)")
	cacheMem := flag.Int("cache-mem", 0, "in-memory result-cache budget in MiB (0 = no memory tier)")
	flag.Parse()

	opts := common.Options()
	// Result cache: memory tier, disk tier, or the two-level
	// composition, per the -cache-mem / -cache-dir flags. Warm entries
	// answer repeated sources without touching the solver; responses
	// are byte-identical either way.
	var resultCache cache.Cache
	if *cacheMem > 0 || *cacheDir != "" {
		var tiers []cache.Cache
		if *cacheMem > 0 {
			tiers = append(tiers, cache.NewMemory(int64(*cacheMem)<<20))
		}
		if *cacheDir != "" {
			disk, err := cache.NewDisk(*cacheDir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "stackd: -cache-dir: %v\n", err)
				os.Exit(1)
			}
			tiers = append(tiers, disk)
		}
		if len(tiers) == 1 {
			resultCache = tiers[0]
		} else {
			resultCache = cache.NewTiered(tiers...)
		}
		opts = append(opts, stack.WithCache(resultCache))
	}

	az := stack.New(opts...)
	svcOpts := service.Options{
		MaxConcurrent:  *maxConcurrent,
		RequestTimeout: *requestTimeout,
		AuthToken:      *authToken,
	}
	if resultCache != nil {
		svcOpts.CacheStats = az.CacheStats
	}
	srv := service.New(az, svcOpts)
	httpSrv := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stackd: %v\n", err)
		os.Exit(1)
	}
	// The connection cap sits under the request semaphore: admission
	// control sheds excess *requests* with 503s, while -max-conns
	// bounds what raw connections (idle or pre-request) can pin.
	ln = service.LimitListener(ln, *maxConns)

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "stackd: listening on %s\n", ln.Addr())

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "stackd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting and let in-flight analyses finish.
	// The grace period must cover the longest request the service
	// itself allows, plus margin; with no request timeout configured,
	// fall back to a fixed window.
	stop()
	grace := 30 * time.Second
	if *requestTimeout > 0 {
		grace = *requestTimeout + 5*time.Second
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "stackd: shutdown grace (%v) elapsed; aborted in-flight requests\n", grace)
		} else {
			fmt.Fprintf(os.Stderr, "stackd: shutdown: %v\n", err)
		}
		os.Exit(1)
	}
}
