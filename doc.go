// Package repro is a from-scratch Go reproduction of "Towards
// Optimization-Safe Systems: Analyzing the Impact of Undefined
// Behavior" (Wang, Zeldovich, Kaashoek, Solar-Lezama; SOSP 2013) —
// the STACK unstable-code checker, together with every substrate the
// original system depended on: a C frontend with macro origin
// tracking, an SSA IR with dominators and inlining, a CDCL SAT solver
// with a bit-vector layer standing in for Boolector, a UB-exploiting
// optimizer, and models of the 16 compilers surveyed in the paper.
//
// The benchmarks in bench_test.go regenerate every table and figure
// of the paper's evaluation; see EXPERIMENTS.md for the index.
package repro
