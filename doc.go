// Package repro is a from-scratch Go reproduction of "Towards
// Optimization-Safe Systems: Analyzing the Impact of Undefined
// Behavior" (Wang, Zeldovich, Kaashoek, Solar-Lezama; SOSP 2013) —
// the STACK unstable-code checker, together with every substrate the
// original system depended on: a C frontend with macro origin
// tracking, an SSA IR with dominators and inlining, a CDCL SAT solver
// with a bit-vector layer standing in for Boolector, a UB-exploiting
// optimizer, and models of the 16 compilers surveyed in the paper.
//
// # Public API
//
// The supported entry point is the top-level stack package
// (repro/stack): a context-aware Analyzer built with functional
// options that returns structured Diagnostic values with stable,
// append-only rule codes (STACK-E001, ...), UB-condition codes
// (UB001, ...), and source spans:
//
//	az := stack.New(
//		stack.WithSolverTimeout(5*time.Second),
//		stack.WithWorkers(8),
//	)
//	res, err := az.CheckSource(ctx, "file.c", src)
//	for _, d := range res.Diagnostics {
//		fmt.Println(d.Code, d.Span, d.Category)
//	}
//
// (See the runnable example in package stack for the full flow.)
// Every entry point — CheckSource, CheckFile, CheckSources, Sweep —
// honors its context all the way down to the CDCL search loop:
// cancelling it aborts any query mid-search within one solver check
// interval. Batch and archive runs stream per-file results in input
// order through pluggable sinks (stack.NewTextSink, NewJSONLSink,
// NewSARIFSink); the text sink's output is byte-identical to the
// classic CLI stream. All of that streaming rides one deterministic
// in-order emitter (internal/emit): an admission window bounds
// buffering at O(workers) and delivery is strictly increasing by
// input index, for any worker count.
//
// # Remote and sharded analysis
//
// stack.Checker is the context-first analysis interface
// (CheckSource/CheckSources) that *stack.Analyzer satisfies; two more
// implementations move the same contract across machines:
//
//   - stack/client.Client speaks the stackd v2 HTTP API (POST
//     /v1/analyze, POST /v1/sweep streaming JSONL), decoding sweep
//     results line by line as the server flushes them, with a
//     production transport (bounded dial/TLS/header phases, no
//     overall timeout) and per-replica error attribution;
//   - stack/shard.Dispatcher runs a batch across N replica Checkers
//     as a real fleet: sources are dealt in input order to the
//     least-loaded healthy replica, /healthz probing (StartHealth)
//     and observed transport faults maintain per-replica up/down
//     state, a replica that dies mid-sweep has its unemitted tail
//     retried on the survivors (re-sequenced through the shared
//     emitter), and saturated replicas (HTTP 503) are retried with
//     exponential backoff honoring the server's Retry-After hint.
//
// A sharded remote run is byte-identical to a local single-process
// run on the same inputs and options — even across a replica death —
// the property the service smoke job (make service-smoke) enforces
// end to end, SIGKILL included. For operators, `stack -fleet-status
// -remote host1,host2` probes every replica once and prints the
// Dispatcher.ProbeAll health snapshot as JSON, exiting 1 if any
// replica is down.
//
// # SSA analysis layer (on by default)
//
// The SSA pass stack runs over each function before encoding, and —
// since the global-analysis suite landed — it is on by default:
// stack.New() analyzes in SSA mode, and stack.WithSSA(false) is the
// escape hatch that selects the legacy pipeline, kept alive as the
// differential reference the gates compare against. The stack is:
// mem2reg promotes non-escaping address-taken locals to
// phi-connected values (pruned phi placement on dominance frontiers,
// with alias-forwarding through the pointer phis the IR builder
// threads between blocks); sparse conditional constant propagation
// folds values and branch conditions proved constant by the
// optimistic executable-edge iteration; global value numbering merges
// structurally identical pure computations within a block and into
// dominating blocks, without moving any report position; dead-store
// elimination drops stores overwritten before any load or call; and
// loop-invariant UB hoisting lifts UB-carrying computations out of
// natural loops into the preheader. On acyclic CFGs the checker
// additionally runs elimination dominator-ordered: a satisfiable
// block's verdict forces its dominators' query outcomes, so their
// solver calls are skipped outright. Promoted values are immutable,
// so the bit-vector layer hash-conses duplicated computation chains
// instead of re-blasting them per opaque load — Stats gains
// promotedAllocas, eliminatedStores, gvnHits, sccpFoldedValues,
// sccpFoldedBranches, sccpUnreachableBlocks, crossBlockGvnHits,
// hoistedUbTerms, and domOrderedSkips (omitted from the JSON trailer
// when zero, keeping legacy bytes unchanged). The default is
// differentially gated: sweep output with SSA on is byte-identical
// to the legacy pipeline on the archive corpus (raced across worker
// counts and both sink modes), per-pass fuzz oracles enforce each
// pass's contract on arbitrary programs, scripts/invariants.sh
// refuses any pass lacking a counter or an oracle, and the BENCH_9
// checkpoint pins the solver-work reduction (make ssa-differential
// runs the gate; it is part of make ci).
//
// # Content-addressed result cache
//
// stack.WithCache(c) attaches a cache.Cache (repro/stack/cache) to an
// Analyzer: every entry point — CheckSource, CheckSources, Sweep —
// first looks the file up by a content address, SHA-256 over the
// source bytes plus a canonical fingerprint naming every
// result-affecting option, and on a hit replays the stored reports
// (positions rehydrated to the requesting file name) without building
// IR or touching the solver. Execution knobs that cannot change
// results — worker count, merge strategy, sinks — are excluded from
// the key by construction, so analyzers differing only in them share
// entries. The package ships an in-memory LRU with a byte budget
// (cache.NewMemory), a crash-safe on-disk tier addressed by key hash
// with atomic-rename writes (cache.NewDisk), and a tiered composition
// that promotes disk hits into memory (cache.NewTiered); stackd wires
// them behind -cache-mem and -cache-dir. Hits and misses surface as
// cacheResultHits/cacheResultMisses in stack.Stats, the ?stats=1
// trailer, and /metrics, alongside the cache's own residency counters.
// The gate is the repository's byte-identity bar: a fully warm sweep
// must produce byte-identical output to the cold run that populated
// the cache, across worker counts and merge strategies, with zero
// solver queries (make cache-identity runs it raced; part of make
// ci). An options fingerprint that silently misses a new field would
// be a correctness bug, so both a reflection test and
// scripts/invariants.sh fail unless every core.Options field is named
// in the fingerprint.
//
// # Commands
//
//   - cmd/stack: the file checker CLI (the paper's stack-build
//     workflow, §4.1), a thin client of the stack package; -remote
//     host1,host2,... runs the same inputs against stackd replicas
//     (-auth-token sends their bearer token), -format selects
//     text/JSONL/SARIF output;
//   - cmd/debian: the §6.4–6.5 synthetic-archive sweep, with
//     streaming text/JSONL/SARIF output and a -remote mode over the
//     batch API;
//   - cmd/stackd: the analysis service — POST /v1/analyze, streaming
//     POST /v1/sweep, /healthz, and GET /metrics (request counts,
//     latency histograms, in-flight gauge, cumulative solver stats;
//     JSON by default, Prometheus text exposition with
//     ?format=prometheus) over HTTP with per-request contexts,
//     bounded concurrency, a listener-level connection cap
//     (-max-conns), the result cache behind -cache-mem/-cache-dir,
//     optional bearer-token auth (-auth-token), streaming-safe gzip
//     compression, and graceful shutdown;
//   - cmd/optsurvey: the §2–3 optimizer/compiler survey tables.
//
// The benchmarks in bench_test.go regenerate every table and figure
// of the paper's evaluation; see EXPERIMENTS.md for the index.
//
// # Benchmark trajectory
//
// Performance is tracked as a machine-readable trajectory: committed
// BENCH_<n>.json checkpoints produced by scripts/benchjson from the
// trajectory benchmark set (Fig. 16 Kerberos, the parallel sweep,
// incremental-vs-scratch solving, the SSA chain-heavy corpus, the SCCP
// branch-heavy corpus, and the warm result-cache sweep), recording
// ns/op, allocs/op, and every custom metric (queries-per-blast,
// rewrite-hit-rate, cache-hit-rate, blast-reduction, speedup-vs-serial,
// sccp-folded-branches, hoisted-ub-terms, warm-hit-rate). `make
// bench-json` regenerates
// the current checkpoint; `make bench-gate` — part of `make ci` —
// reruns the set and fails on regression outside the tolerance bands
// against the newest committed checkpoint. EXPERIMENTS.md documents
// the schema, the bands, and how to read the checkpoint history.
package repro
