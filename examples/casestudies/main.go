// Casestudies walks through the paper's §6.2 bug reports — Postgres'
// division-overflow check (Fig. 10), the Linux strchr null check
// (Fig. 11), FFmpeg's bounds checks (Fig. 12), plan9port's pdec
// (Fig. 13), the Postgres time bomb (Fig. 14), and the redundant Linux
// check (Fig. 15) — running the checker on each and printing the
// report plus its §6.2 category. For the Postgres division it also
// executes the code under the C* evaluator on x86-64 vs. ARM to show
// the trap the paper describes.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/cc"
	"repro/internal/compilers"
	"repro/internal/core"
	"repro/internal/ir"
)

type study struct {
	title string
	src   string
}

var studies = []study{
	{"Fig. 10 — Postgres: overflow check after the division", `
long int8div(long arg1, long arg2) {
	long result;
	if (arg2 == 0)
		return -1; /* ereport(ERROR) */
	result = arg1 / arg2;
	if (arg2 == -1 && arg1 < 0 && result <= 0)
		return -1; /* ereport(ERROR): unstable */
	return result;
}
`},
	{"Fig. 11 — Linux sysctl: null check of strchr(...) + 1", `
long dn_node_address(char *buf) {
	char *nodep = strchr(buf, '.') + 1;
	if (!nodep)
		return -5; /* -EIO: unstable */
	return simple_strtoul(nodep, NULL, 10);
}
`},
	{"Fig. 12 — FFmpeg/Libav: data + size bounds checks", `
int amf_parse(char *data, char *data_end, int size) {
	if (data + size >= data_end || data + size < data)
		return -1; /* second clause simplifies to size < 0 */
	return 0;
}
`},
	{"Fig. 13 — plan9port pdec: -k >= 0 under k < 0", `
int pdec_guard(int k) {
	if (k < 0) {
		if (-k >= 0)
			return 1; /* print '-', recurse: unstable */
		return 2;     /* INT_MIN path */
	}
	return 0;
}
`},
	{"Fig. 14 — Postgres time bomb: sign-compare INT64_MIN probe", `
int check_min(long arg1) {
	if (arg1 != 0 && ((-arg1 < 0) == (arg1 < 0)))
		return 1; /* unstable */
	return 0;
}
`},
	{"Fig. 15 — Linux 9p: redundant null check after c->trans", `
struct p9_trans { int kind; };
struct p9_client { struct p9_trans *trans; int status; };
void p9_disconnect(struct p9_client *c) {
	struct p9_trans *rdma = c->trans;
	if (c)
		c->status = 2; /* Disconnected; check is unstable */
}
`},
}

func main() {
	checker := core.New(core.DefaultOptions)
	for _, s := range studies {
		fmt.Println("==", s.title)
		file, err := cc.Parse("study.c", s.src)
		if err != nil {
			log.Fatal(err)
		}
		if err := cc.Check(file); err != nil {
			log.Fatal(err)
		}
		prog, err := ir.Build(file)
		if err != nil {
			log.Fatal(err)
		}
		reports, err := checker.CheckProgram(context.Background(), prog)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range reports {
			fmt.Println(r)
			fmt.Printf("  category: %s\n", core.Classify(r, compilers.AnyModelDiscards))
		}
		fmt.Println()
	}

	// Demonstrate the §6.2.1 crash: -2^63 / -1 traps on x86-64 but
	// wraps on architectures with a software division path.
	fmt.Println("== executing the Postgres division with arg1 = -2^63, arg2 = -1")
	file, _ := cc.Parse("div.c", studies[0].src)
	if err := cc.Check(file); err != nil {
		log.Fatal(err)
	}
	prog, _ := ir.Build(file)
	fn := prog.Lookup("int8div")
	minI64 := uint64(1) << 63
	for _, arch := range []ir.Arch{ir.ArchX86, ir.ArchARM} {
		_, err := ir.Exec(fn, []uint64{minI64, ^uint64(0)}, ir.ExecOptions{Arch: arch})
		if err != nil {
			fmt.Printf("  %-8s %v  (the SELECT ... / (-1) crash)\n", arch, err)
		} else {
			fmt.Printf("  %-8s wraps silently to -2^63 (why the 2006 test \"seemed OK\")\n", arch)
		}
	}
}
