// Compilersurvey demonstrates unstable code from the optimizer's side
// (paper §2): it takes the x + 100 < x overflow check, optimizes it
// under three compiler models (gcc 2.95.3, gcc 4.8.1, clang 3.3) at
// -O0 and -O2, and then *executes* both the original and the optimized
// IR on INT_MAX to show the check vanishing — the exact mechanism that
// turns a time bomb into a vulnerability.
package main

import (
	"fmt"
	"log"

	"repro/internal/cc"
	"repro/internal/compilers"
	"repro/internal/ir"
	"repro/internal/opt"
)

const src = `
int guarded_add(int x) {
	if (x + 100 < x)
		return -1; /* overflow detected */
	return x + 100;
}
`

func buildFn() *ir.Func {
	file, err := cc.Parse("guard.c", src)
	if err != nil {
		log.Fatal(err)
	}
	if err := cc.Check(file); err != nil {
		log.Fatal(err)
	}
	prog, err := ir.Build(file)
	if err != nil {
		log.Fatal(err)
	}
	return prog.Lookup("guarded_add")
}

func main() {
	const intMax = 0x7FFFFFFF
	fmt.Println("int guarded_add(int x) { if (x + 100 < x) return -1; return x + 100; }")
	fmt.Printf("input: x = INT_MAX (%d)\n\n", int32(intMax))

	fmt.Printf("%-12s %-6s %-28s\n", "compiler", "-O", "guarded_add(INT_MAX)")
	for _, name := range []string{"gcc-2.95.3", "gcc-4.8.1", "clang-3.3"} {
		m := compilers.Lookup(name)
		for _, level := range []int{0, 2} {
			fn := buildFn()
			opt.Optimize(fn, m.ConfigAt(level))
			r, err := ir.Exec(fn, []uint64{intMax}, ir.ExecOptions{})
			if err != nil {
				log.Fatal(err)
			}
			out := fmt.Sprintf("%d", int32(r.Ret))
			if int32(r.Ret) == -1 {
				out += "  (check fired: safe)"
			} else {
				out += "  (check GONE: wrapped result escapes)"
			}
			fmt.Printf("%-12s -O%-5d %-28s\n", name, level, out)
		}
	}

	fmt.Println("\nFull Figure 4 matrix: go run ./cmd/optsurvey")
}
