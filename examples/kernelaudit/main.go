// Kernelaudit audits a small kernel-flavored module — a device ring
// buffer with ioctl-style entry points, modeled on the patterns behind
// CVE-2009-1897 — and shows how STACK's workflow (paper Fig. 7) is
// used on systems code: macro origins are tracked so that checks
// synthesized by macros do not produce false warnings, while the
// programmer-written unstable checks are reported and classified.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/cc"
	"repro/internal/compilers"
	"repro/internal/core"
	"repro/internal/ir"
)

const module = `
/* ring.c — toy character-device ring buffer */

#define RING_SIZE 64
#define IS_VALID(dev) (dev != NULL && dev->magic == 0x52494e47)

struct ring_dev {
	int magic;
	int head;
	int tail;
	char data[64];
};

/* BUG (CVE-2009-1897 pattern): dereference before the null check. */
int ring_poll(struct ring_dev *dev) {
	int head = dev->head;
	if (!dev)
		return -19; /* -ENODEV */
	return head != dev->tail;
}

/* Macro-expanded check after a dereference: STACK suppresses this
 * report because the check text comes from IS_VALID, not the
 * programmer (paper §4.2). */
int ring_flush(struct ring_dev *dev) {
	dev->head = 0;
	if (IS_VALID(dev))
		dev->tail = 0;
	return 0;
}

/* BUG: bounds check after the array write. */
int ring_put(struct ring_dev *dev, int idx, char c) {
	if (!dev)
		return -19;
	dev->data[idx] = c;
	if (idx < 0 || idx >= 64)
		return -22; /* -EINVAL */
	return 0;
}

/* BUG (Fig. 11 pattern): strchr(...) + 1 is assumed non-null. */
long ring_parse(char *buf) {
	char *nodep = strchr(buf, '.') + 1;
	if (!nodep)
		return -5; /* -EIO */
	return simple_strtoul(nodep, NULL, 10);
}

/* Correct code: check first, then use. No reports expected. */
int ring_get(struct ring_dev *dev, int idx) {
	if (!dev)
		return -19;
	if (idx < 0 || idx >= 64)
		return -22;
	return dev->data[idx];
}
`

func main() {
	file, err := cc.Parse("ring.c", module)
	if err != nil {
		log.Fatal(err)
	}
	if err := cc.Check(file); err != nil {
		log.Fatal(err)
	}
	prog, err := ir.Build(file)
	if err != nil {
		log.Fatal(err)
	}

	checker := core.New(core.DefaultOptions)
	reports, err := checker.CheckProgram(context.Background(), prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audit of ring.c: %d report(s)\n\n", len(reports))
	for _, r := range reports {
		fmt.Println(r)
		fmt.Printf("  category: %s\n\n", core.Classify(r, compilers.AnyModelDiscards))
	}

	byFunc := map[string]int{}
	for _, r := range reports {
		byFunc[r.Func]++
	}
	fmt.Println("per entry point:")
	for _, fn := range []string{"ring_poll", "ring_flush", "ring_put", "ring_parse", "ring_get"} {
		verdict := "clean"
		if n := byFunc[fn]; n > 0 {
			verdict = fmt.Sprintf("%d report(s)", n)
		}
		fmt.Printf("  %-12s %s\n", fn, verdict)
	}
	fmt.Println("\n(ring_flush's macro-origin check is suppressed; re-run the checker")
	fmt.Println(" with FilterOrigins=false to see it.)")
}
