// Quickstart: check a C snippet for unstable code with the public
// checker pipeline — frontend, IR, solver-based analysis — in a few
// lines. The snippet is Figure 1 of the paper: the pointer-overflow
// sanity check that gcc silently deletes.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/ir"
)

const src = `
int parse_header(char *buf, char *buf_end, unsigned int len) {
	if (buf + len >= buf_end)
		return -1; /* len too large */
	if (buf + len < buf)
		return -1; /* overflow check: compilers delete this */
	/* ... write to buf[0..len-1] ... */
	return 0;
}
`

func main() {
	// 1. Frontend: preprocess, parse, and type-check.
	file, err := cc.Parse("figure1.c", src)
	if err != nil {
		log.Fatal(err)
	}
	if err := cc.Check(file); err != nil {
		log.Fatal(err)
	}

	// 2. Lower to SSA IR (the LLVM-IR analogue).
	prog, err := ir.Build(file)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run STACK with the paper's default configuration: 5-second
	// query timeout, origin filtering, minimal UB sets.
	checker := core.New(core.DefaultOptions)
	reports, err := checker.CheckProgram(context.Background(), prog)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(core.FormatReports(reports))
	st := checker.Stats()
	fmt.Printf("(%d solver queries, %d timeouts)\n", st.Queries, st.Timeouts)
}
