package bv

import "unsafe"

// Arena is a slab allocator for term nodes and their argument arrays.
// The checker builds a fresh term DAG per function and drops the whole
// graph when the function's queries finish — a lifetime pattern the
// general-purpose heap serves poorly: hundreds of thousands of small
// Term and []*Term allocations per sweep, all dying together. An Arena
// batches them into large slabs and, on Reset, recycles the slabs for
// the next function instead of returning them to the garbage
// collector.
//
// Safety contract: Reset invalidates every term allocated since the
// previous Reset. It must only be called when no *Term from the
// associated Builder (nor anything holding one — sessions, blasters,
// encoders) is still reachable. The checker satisfies this by scoping
// builder, session, and encoder to one CheckFunc call and resetting
// between functions; reports deliberately carry no terms.
//
// An Arena is not safe for concurrent use; concurrent sweep workers
// each own one, matching the one-Checker-per-goroutine design.
type Arena struct {
	terms     []Term  // active term slab, len < cap while filling
	args      []*Term // active argument slab
	fullTerms [][]Term
	fullArgs  [][]*Term
	freeTerms [][]Term
	freeArgs  [][]*Term
	reused    int64
}

const (
	termsPerSlab = 1024
	argsPerSlab  = 4096

	termBytes = int64(unsafe.Sizeof(Term{}))
	ptrBytes  = int64(unsafe.Sizeof((*Term)(nil)))
)

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// newTerm returns a zeroed Term slot. The pointer stays valid until
// Reset: slabs are never moved or grown in place.
func (a *Arena) newTerm() *Term {
	if len(a.terms) == cap(a.terms) {
		if cap(a.terms) > 0 {
			a.fullTerms = append(a.fullTerms, a.terms)
		}
		if n := len(a.freeTerms); n > 0 {
			a.terms = a.freeTerms[n-1]
			a.freeTerms = a.freeTerms[:n-1]
			a.reused += int64(cap(a.terms)) * termBytes
		} else {
			a.terms = make([]Term, 0, termsPerSlab)
		}
	}
	a.terms = a.terms[:len(a.terms)+1]
	return &a.terms[len(a.terms)-1]
}

// newArgs returns a zeroed argument array of length n, capacity-capped
// so appends cannot spill into neighboring allocations.
func (a *Arena) newArgs(n int) []*Term {
	if len(a.args)+n > cap(a.args) {
		if cap(a.args) > 0 {
			a.fullArgs = append(a.fullArgs, a.args)
		}
		if m := len(a.freeArgs); m > 0 && cap(a.freeArgs[m-1]) >= n {
			a.args = a.freeArgs[m-1]
			a.freeArgs = a.freeArgs[:m-1]
			a.reused += int64(cap(a.args)) * ptrBytes
		} else {
			size := argsPerSlab
			if n > size {
				size = n
			}
			a.args = make([]*Term, 0, size)
		}
	}
	out := a.args[len(a.args) : len(a.args)+n : len(a.args)+n]
	a.args = a.args[:len(a.args)+n]
	return out
}

// Reset recycles every slab for reuse. See the type comment for the
// safety contract. Slab contents are cleared so the recycled memory
// does not pin the previous generation's big.Int values and argument
// graphs until overwritten.
func (a *Arena) Reset() {
	if cap(a.terms) > 0 {
		a.fullTerms = append(a.fullTerms, a.terms)
	}
	a.terms = nil
	for _, s := range a.fullTerms {
		clear(s)
		a.freeTerms = append(a.freeTerms, s[:0])
	}
	a.fullTerms = a.fullTerms[:0]
	if cap(a.args) > 0 {
		a.fullArgs = append(a.fullArgs, a.args)
	}
	a.args = nil
	for _, s := range a.fullArgs {
		clear(s)
		a.freeArgs = append(a.freeArgs, s[:0])
	}
	a.fullArgs = a.fullArgs[:0]
}

// BytesReused returns the cumulative bytes served from recycled slabs
// instead of fresh heap allocations.
func (a *Arena) BytesReused() int64 { return a.reused }
