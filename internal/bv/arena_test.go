package bv

import (
	"fmt"
	"testing"
)

// TestArenaReuse: after a Reset, slabs are recycled rather than
// reallocated, BytesReused accounts for them, and recycled slots come
// back zeroed.
func TestArenaReuse(t *testing.T) {
	a := NewArena()
	const n = termsPerSlab*2 + 17 // force multiple slabs
	for i := 0; i < n; i++ {
		tm := a.newTerm()
		tm.id = i + 1
		args := a.newArgs(3)
		args[0] = tm
	}
	if a.BytesReused() != 0 {
		t.Fatalf("BytesReused = %d before any Reset, want 0", a.BytesReused())
	}

	a.Reset()
	for i := 0; i < n; i++ {
		tm := a.newTerm()
		if tm.id != 0 || tm.args != nil || tm.val != nil {
			t.Fatalf("recycled term slot not zeroed: %+v", tm)
		}
		args := a.newArgs(3)
		if args[0] != nil || args[1] != nil || args[2] != nil {
			t.Fatalf("recycled args slot not zeroed: %v", args)
		}
	}
	if a.BytesReused() <= 0 {
		t.Errorf("BytesReused = %d after Reset+refill, want > 0", a.BytesReused())
	}
}

// TestArenaArgsCapacityCapped: argument slices handed out by the arena
// must not allow appends to spill into a neighbor's storage.
func TestArenaArgsCapacityCapped(t *testing.T) {
	a := NewArena()
	first := a.newArgs(2)
	second := a.newArgs(2)
	if cap(first) != 2 {
		t.Fatalf("cap(first) = %d, want 2", cap(first))
	}
	sentinel := &Term{id: 99}
	first = append(first, sentinel) // must reallocate, not overwrite
	if second[0] != nil {
		t.Fatalf("append to one args slice clobbered its neighbor")
	}
}

// TestArenaOversizeArgs: a request larger than a slab gets its own slab.
func TestArenaOversizeArgs(t *testing.T) {
	a := NewArena()
	big := a.newArgs(argsPerSlab + 5)
	if len(big) != argsPerSlab+5 {
		t.Fatalf("len = %d, want %d", len(big), argsPerSlab+5)
	}
}

// TestBuilderArenaTermsStableAcrossGrowth: pointers handed out by an
// arena-backed builder stay valid as more terms are interned (slabs
// never move), and the DAG built on them solves identically to one
// from a heap-backed builder.
func TestBuilderArenaTermsStableAcrossGrowth(t *testing.T) {
	a := NewArena()
	b := NewBuilderArena(a)
	x := b.Var("x", 8)
	sum := x
	held := []*Term{x}
	for i := 1; i <= termsPerSlab+50; i++ {
		sum = b.Add(sum, b.ConstInt64(int64(i%13+1), 8))
		held = append(held, sum)
	}
	for i, h := range held {
		if h.Width() != 8 {
			t.Fatalf("held term %d corrupted: width %d", i, h.Width())
		}
	}
	s := NewSolver(b)
	if got := s.Solve(b.Eq(sum, b.ConstInt64(7, 8))); got != Sat {
		t.Fatalf("arena-backed solve = %v, want sat", got)
	}
}

// TestCheckerArenaCounter is in internal/core; here just make sure the
// builder exposes arena reuse through a full reset cycle.
func TestBuilderArenaResetCycle(t *testing.T) {
	a := NewArena()
	for round := 0; round < 3; round++ {
		b := NewBuilderArena(a)
		x := b.Var(fmt.Sprintf("x%d", round), 16)
		y := b.Var(fmt.Sprintf("y%d", round), 16)
		q := b.Ne(b.Add(x, y), b.Add(y, x))
		if !q.IsConstBool(false) {
			t.Fatalf("round %d: commuted add did not fold, got %v", round, q)
		}
		a.Reset()
	}
	if a.BytesReused() <= 0 {
		t.Errorf("no slab reuse across builder generations")
	}
}
