package bv

import (
	"fmt"

	"repro/internal/sat"
)

// blaster lowers terms to CNF over a sat.Solver using Tseitin encoding.
// Each term maps to a vector of SAT literals, least significant bit
// first.
type blaster struct {
	s     *sat.Solver
	cache map[*Term][]sat.Lit
	// blasts counts cache misses, i.e. terms actually lowered to CNF.
	// Terms already in the cache cost a map lookup; the gap between
	// queries issued and terms blasted is what incremental sessions
	// amortize.
	blasts int64
	// Constant literals: litTrue is a variable forced true.
	litTrue  sat.Lit
	litFalse sat.Lit
}

func newBlaster(s *sat.Solver) *blaster {
	b := &blaster{s: s, cache: make(map[*Term][]sat.Lit)}
	v := s.NewVar()
	b.litTrue = sat.NewLit(v, false)
	b.litFalse = b.litTrue.Not()
	s.AddClause(b.litTrue)
	return b
}

func (b *blaster) fresh() sat.Lit { return sat.NewLit(b.s.NewVar(), false) }

// constLit returns the literal representing boolean constant v.
func (b *blaster) constLit(v bool) sat.Lit {
	if v {
		return b.litTrue
	}
	return b.litFalse
}

// encAnd returns a literal z with z ↔ x ∧ y.
func (b *blaster) encAnd(x, y sat.Lit) sat.Lit {
	if x == b.litFalse || y == b.litFalse {
		return b.litFalse
	}
	if x == b.litTrue {
		return y
	}
	if y == b.litTrue {
		return x
	}
	if x == y {
		return x
	}
	if x == y.Not() {
		return b.litFalse
	}
	z := b.fresh()
	b.s.AddClause(z.Not(), x)
	b.s.AddClause(z.Not(), y)
	b.s.AddClause(z, x.Not(), y.Not())
	return z
}

func (b *blaster) encOr(x, y sat.Lit) sat.Lit {
	return b.encAnd(x.Not(), y.Not()).Not()
}

// encXor returns z ↔ x ⊕ y.
func (b *blaster) encXor(x, y sat.Lit) sat.Lit {
	if x == b.litFalse {
		return y
	}
	if y == b.litFalse {
		return x
	}
	if x == b.litTrue {
		return y.Not()
	}
	if y == b.litTrue {
		return x.Not()
	}
	if x == y {
		return b.litFalse
	}
	if x == y.Not() {
		return b.litTrue
	}
	z := b.fresh()
	b.s.AddClause(z.Not(), x, y)
	b.s.AddClause(z.Not(), x.Not(), y.Not())
	b.s.AddClause(z, x, y.Not())
	b.s.AddClause(z, x.Not(), y)
	return z
}

// encITE returns z ↔ (c ? x : y).
func (b *blaster) encITE(c, x, y sat.Lit) sat.Lit {
	if c == b.litTrue {
		return x
	}
	if c == b.litFalse {
		return y
	}
	if x == y {
		return x
	}
	z := b.fresh()
	b.s.AddClause(z.Not(), c.Not(), x)
	b.s.AddClause(z.Not(), c, y)
	b.s.AddClause(z, c.Not(), x.Not())
	b.s.AddClause(z, c, y.Not())
	return z
}

// encFullAdder returns (sum, carry) for x + y + cin.
func (b *blaster) encFullAdder(x, y, cin sat.Lit) (sum, cout sat.Lit) {
	sum = b.encXor(b.encXor(x, y), cin)
	cout = b.encOr(b.encAnd(x, y), b.encAnd(cin, b.encXor(x, y)))
	return sum, cout
}

// addVec returns x + y + cin as a bit vector of the same width.
func (b *blaster) addVec(x, y []sat.Lit, cin sat.Lit) []sat.Lit {
	out := make([]sat.Lit, len(x))
	c := cin
	for i := range x {
		out[i], c = b.encFullAdder(x[i], y[i], c)
	}
	return out
}

func (b *blaster) negVec(x []sat.Lit) []sat.Lit {
	inv := make([]sat.Lit, len(x))
	for i, l := range x {
		inv[i] = l.Not()
	}
	zero := make([]sat.Lit, len(x))
	for i := range zero {
		zero[i] = b.litFalse
	}
	return b.addVec(inv, zero, b.litTrue)
}

// ult returns the literal for unsigned x < y.
func (b *blaster) ult(x, y []sat.Lit) sat.Lit {
	// From LSB to MSB: lt_i = (¬x_i ∧ y_i) ∨ ((x_i ↔ y_i) ∧ lt_{i-1})
	lt := b.litFalse
	for i := 0; i < len(x); i++ {
		eq := b.encXor(x[i], y[i]).Not()
		lt = b.encOr(b.encAnd(x[i].Not(), y[i]), b.encAnd(eq, lt))
	}
	return lt
}

func (b *blaster) slt(x, y []sat.Lit) sat.Lit {
	n := len(x)
	if n == 1 {
		// 1-bit signed: -1 < 0, i.e. x=1 ∧ y=0.
		return b.encAnd(x[0], y[0].Not())
	}
	sx, sy := x[n-1], y[n-1]
	// Same sign: unsigned compare of remaining bits (including sign bit
	// works too since equal). Different sign: x negative → less.
	u := b.ult(x, y)
	sameSign := b.encXor(sx, sy).Not()
	return b.encOr(b.encAnd(sameSign, u), b.encAnd(sx, sy.Not()))
}

func (b *blaster) eqVec(x, y []sat.Lit) sat.Lit {
	acc := b.litTrue
	for i := range x {
		acc = b.encAnd(acc, b.encXor(x[i], y[i]).Not())
	}
	return acc
}

func (b *blaster) iteVec(c sat.Lit, x, y []sat.Lit) []sat.Lit {
	out := make([]sat.Lit, len(x))
	for i := range x {
		out[i] = b.encITE(c, x[i], y[i])
	}
	return out
}

// mulVec returns x*y mod 2^n via shift-and-add.
func (b *blaster) mulVec(x, y []sat.Lit) []sat.Lit {
	n := len(x)
	acc := make([]sat.Lit, n)
	for i := range acc {
		acc[i] = b.litFalse
	}
	for i := 0; i < n; i++ {
		// partial = (y[i] ? x : 0) << i
		part := make([]sat.Lit, n)
		for j := range part {
			part[j] = b.litFalse
		}
		for j := 0; i+j < n; j++ {
			part[i+j] = b.encAnd(x[j], y[i])
		}
		acc = b.addVec(acc, part, b.litFalse)
	}
	return acc
}

// udivurem returns (quotient, remainder) of unsigned division by
// restoring long division. Division by zero yields q=all-ones, r=x
// (SMT-LIB semantics), enforced with an ITE on the zero test.
func (b *blaster) udivurem(x, y []sat.Lit) (q, r []sat.Lit) {
	n := len(x)
	rem := make([]sat.Lit, n)
	for i := range rem {
		rem[i] = b.litFalse
	}
	q = make([]sat.Lit, n)
	for i := n - 1; i >= 0; i-- {
		// rem = rem << 1 | x[i]
		rem = append([]sat.Lit{x[i]}, rem[:n-1]...)
		// if rem >= y { rem -= y; q[i] = 1 }
		ge := b.ult(rem, y).Not()
		sub := b.addVec(rem, b.negVec(y), b.litFalse)
		rem = b.iteVec(ge, sub, rem)
		q[i] = ge
	}
	// Division by zero: q = ~0, r = x.
	yZero := b.litTrue
	for _, l := range y {
		yZero = b.encAnd(yZero, l.Not())
	}
	allOnes := make([]sat.Lit, n)
	for i := range allOnes {
		allOnes[i] = b.litTrue
	}
	q = b.iteVec(yZero, allOnes, q)
	r = b.iteVec(yZero, x, rem)
	return q, r
}

// shiftVec encodes x shifted by the unsigned value of amt, as a
// logarithmic barrel shifter. kind: 'l' = shl, 'r' = lshr, 'a' = ashr.
// Shift amounts ≥ width produce 0 (or sign-fill for ashr).
func (b *blaster) shiftVec(x, amt []sat.Lit, kind byte) []sat.Lit {
	n := len(x)
	fill := b.litFalse
	if kind == 'a' {
		fill = x[n-1]
	}
	cur := append([]sat.Lit(nil), x...)
	// Apply each bit of the shift amount that is < n's bit range.
	for bit := 0; bit < len(amt); bit++ {
		sh := 1 << uint(bit)
		if sh >= 1<<30 {
			break
		}
		next := make([]sat.Lit, n)
		for i := 0; i < n; i++ {
			var shifted sat.Lit
			switch kind {
			case 'l':
				if i-sh >= 0 {
					shifted = cur[i-sh]
				} else {
					shifted = b.litFalse
				}
			default: // 'r', 'a'
				if i+sh < n {
					shifted = cur[i+sh]
				} else {
					shifted = fill
				}
			}
			next[i] = b.encITE(amt[bit], shifted, cur[i])
		}
		cur = next
		if sh >= n {
			// Higher bits of amt only matter for "amount ≥ n" handling,
			// which the fill above already achieves once sh >= n.
			// Continue: further bits still select fill correctly.
		}
	}
	return cur
}

// has reports whether t has already been lowered by this blaster.
func (b *blaster) has(t *Term) bool {
	_, ok := b.cache[t]
	return ok
}

// blast returns the literal vector for t, memoized.
func (b *blaster) blast(bld *Builder, t *Term) []sat.Lit {
	if v, ok := b.cache[t]; ok {
		return v
	}
	b.blasts++
	var out []sat.Lit
	switch t.op {
	case OpConst:
		out = make([]sat.Lit, t.width)
		for i := 0; i < t.width; i++ {
			out[i] = b.constLit(t.val.Bit(i) == 1)
		}
	case OpVar:
		out = make([]sat.Lit, t.width)
		for i := range out {
			out[i] = b.fresh()
		}
	case OpNot:
		x := b.blast(bld, t.args[0])
		out = make([]sat.Lit, len(x))
		for i, l := range x {
			out[i] = l.Not()
		}
	case OpNeg:
		out = b.negVec(b.blast(bld, t.args[0]))
	case OpAnd, OpOr, OpXor:
		x := b.blast(bld, t.args[0])
		y := b.blast(bld, t.args[1])
		out = make([]sat.Lit, len(x))
		for i := range x {
			switch t.op {
			case OpAnd:
				out[i] = b.encAnd(x[i], y[i])
			case OpOr:
				out[i] = b.encOr(x[i], y[i])
			default:
				out[i] = b.encXor(x[i], y[i])
			}
		}
	case OpAdd:
		out = b.addVec(b.blast(bld, t.args[0]), b.blast(bld, t.args[1]), b.litFalse)
	case OpSub:
		y := b.blast(bld, t.args[1])
		inv := make([]sat.Lit, len(y))
		for i, l := range y {
			inv[i] = l.Not()
		}
		out = b.addVec(b.blast(bld, t.args[0]), inv, b.litTrue)
	case OpMul:
		out = b.mulVec(b.blast(bld, t.args[0]), b.blast(bld, t.args[1]))
	case OpUDiv:
		q, _ := b.udivurem(b.blast(bld, t.args[0]), b.blast(bld, t.args[1]))
		out = q
	case OpURem:
		_, r := b.udivurem(b.blast(bld, t.args[0]), b.blast(bld, t.args[1]))
		out = r
	case OpSDiv, OpSRem:
		out = b.signedDivRem(bld, t)
	case OpShl:
		out = b.shiftVec(b.blast(bld, t.args[0]), b.blast(bld, t.args[1]), 'l')
	case OpLShr:
		out = b.shiftVec(b.blast(bld, t.args[0]), b.blast(bld, t.args[1]), 'r')
	case OpAShr:
		out = b.shiftVec(b.blast(bld, t.args[0]), b.blast(bld, t.args[1]), 'a')
	case OpEq:
		out = []sat.Lit{b.eqVec(b.blast(bld, t.args[0]), b.blast(bld, t.args[1]))}
	case OpULT:
		out = []sat.Lit{b.ult(b.blast(bld, t.args[0]), b.blast(bld, t.args[1]))}
	case OpULE:
		out = []sat.Lit{b.ult(b.blast(bld, t.args[1]), b.blast(bld, t.args[0])).Not()}
	case OpSLT:
		out = []sat.Lit{b.slt(b.blast(bld, t.args[0]), b.blast(bld, t.args[1]))}
	case OpSLE:
		out = []sat.Lit{b.slt(b.blast(bld, t.args[1]), b.blast(bld, t.args[0])).Not()}
	case OpITE:
		c := b.blast(bld, t.args[0])[0]
		out = b.iteVec(c, b.blast(bld, t.args[1]), b.blast(bld, t.args[2]))
	case OpZExt:
		x := b.blast(bld, t.args[0])
		out = make([]sat.Lit, t.width)
		copy(out, x)
		for i := len(x); i < t.width; i++ {
			out[i] = b.litFalse
		}
	case OpSExt:
		x := b.blast(bld, t.args[0])
		out = make([]sat.Lit, t.width)
		copy(out, x)
		for i := len(x); i < t.width; i++ {
			out[i] = x[len(x)-1]
		}
	case OpExtract:
		x := b.blast(bld, t.args[0])
		out = append([]sat.Lit(nil), x[t.lo:t.lo+t.width]...)
	case OpConcat:
		hi := b.blast(bld, t.args[0])
		lo := b.blast(bld, t.args[1])
		out = append(append([]sat.Lit(nil), lo...), hi...)
	default:
		panic(fmt.Sprintf("bv: blast: unexpected op %v", t.op))
	}
	if len(out) != t.width {
		panic(fmt.Sprintf("bv: blast width mismatch for %v: got %d want %d", t.op, len(out), t.width))
	}
	b.cache[t] = out
	return out
}

// signedDivRem lowers sdiv/srem to unsigned division on magnitudes.
func (b *blaster) signedDivRem(bld *Builder, t *Term) []sat.Lit {
	x := b.blast(bld, t.args[0])
	y := b.blast(bld, t.args[1])
	n := len(x)
	sx, sy := x[n-1], y[n-1]
	ax := b.iteVec(sx, b.negVec(x), x)
	ay := b.iteVec(sy, b.negVec(y), y)
	q, r := b.udivurem(ax, ay)
	// Division by zero: match SMT-LIB via the unsigned layer? The
	// unsigned layer returns q=~0, r=ax for ay==0; to keep the exact
	// SMT-LIB sdiv-by-zero semantics (x<0 → 1 else ~0, rem = x) we
	// override explicitly below.
	yZero := b.litTrue
	for _, l := range y {
		yZero = b.encAnd(yZero, l.Not())
	}
	if t.op == OpSDiv {
		qSigned := b.iteVec(b.encXor(sx, sy), b.negVec(q), q)
		one := make([]sat.Lit, n)
		allOnes := make([]sat.Lit, n)
		for i := range one {
			one[i] = b.litFalse
			allOnes[i] = b.litTrue
		}
		one[0] = b.litTrue
		divZero := b.iteVec(sx, one, allOnes)
		return b.iteVec(yZero, divZero, qSigned)
	}
	rSigned := b.iteVec(sx, b.negVec(r), r)
	return b.iteVec(yZero, x, rSigned)
}
