package bv

import (
	"fmt"
	"math/big"
)

// Builder creates hash-consed terms. All terms combined in one
// expression must come from the same Builder. The zero value is not
// usable; call NewBuilder.
type Builder struct {
	table  map[key]*Term
	consts map[constKey]*Term
	vars   map[string]*Term
	nextID int
	arena  *Arena // optional slab allocator; nil means plain heap
	// NoRewrite disables the word-level rewrite engine and commutative
	// canonicalization: terms intern exactly as constructed. This is the
	// reference mode of the differential test layer — a rewrite-free
	// builder paired with scratch solving defines the semantics the
	// optimized stack is checked against. Production callers leave it
	// false.
	NoRewrite bool
	// Stats.
	//
	// TermsCreated counts interned nodes; CacheHits counts hash-consing
	// hits; RewriteHits counts constructions answered by the word-level
	// rewrite engine (rewrite.go) without creating a new node.
	TermsCreated int
	CacheHits    int
	RewriteHits  int
}

type key struct {
	op         Op
	width, lo  int
	a0, a1, a2 int // arg IDs; -1 if absent
}

type constKey struct {
	width int
	val   string // big.Int text; exact
}

// NewBuilder returns an empty term builder.
func NewBuilder() *Builder {
	return &Builder{
		table:  make(map[key]*Term),
		consts: make(map[constKey]*Term),
		vars:   make(map[string]*Term),
	}
}

// NewBuilderArena returns a builder whose term nodes and argument
// arrays are allocated from a — see Arena for the lifetime contract.
// The arena may be shared sequentially by successive builders (the
// checker resets it between functions); nil is equivalent to
// NewBuilder.
func NewBuilderArena(a *Arena) *Builder {
	b := NewBuilder()
	b.arena = a
	return b
}

// alloc returns a fresh zeroed Term, from the arena when present.
func (b *Builder) alloc() *Term {
	if b.arena != nil {
		return b.arena.newTerm()
	}
	return new(Term)
}

// intern returns the unique term with the given shape, creating it on
// first use. Absent argument slots are nil; all present arguments must
// precede absent ones.
func (b *Builder) intern(op Op, width, lo int, a0, a1, a2 *Term) *Term {
	k := key{op: op, width: width, lo: lo, a0: -1, a1: -1, a2: -1}
	n := 0
	if a0 != nil {
		k.a0 = a0.id
		n = 1
	}
	if a1 != nil {
		k.a1 = a1.id
		n = 2
	}
	if a2 != nil {
		k.a2 = a2.id
		n = 3
	}
	if ex, ok := b.table[k]; ok {
		b.CacheHits++
		return ex
	}
	t := b.alloc()
	t.op, t.width, t.lo, t.id = op, width, lo, b.nextID
	if n > 0 {
		if b.arena != nil {
			t.args = b.arena.newArgs(n)
		} else {
			t.args = make([]*Term, n)
		}
		t.args[0] = a0
		if n > 1 {
			t.args[1] = a1
		}
		if n > 2 {
			t.args[2] = a2
		}
	}
	b.nextID++
	b.TermsCreated++
	b.table[k] = t
	return t
}

func mask(width int) *big.Int {
	m := big.NewInt(1)
	m.Lsh(m, uint(width))
	return m.Sub(m, big.NewInt(1))
}

// Const returns the constant v (interpreted modulo 2^width) of the
// given width.
func (b *Builder) Const(v *big.Int, width int) *Term {
	if width <= 0 {
		panic("bv: nonpositive width")
	}
	norm := new(big.Int).And(new(big.Int).Set(v), mask(width))
	if norm.Sign() < 0 { // big.Int.And of negative handled above; belt+braces
		norm.Add(norm, new(big.Int).Lsh(big.NewInt(1), uint(width)))
	}
	ck := constKey{width, norm.Text(16)}
	if ex, ok := b.consts[ck]; ok {
		b.CacheHits++
		return ex
	}
	t := b.alloc()
	t.op, t.width, t.val, t.id = OpConst, width, norm, b.nextID
	b.nextID++
	b.TermsCreated++
	b.consts[ck] = t
	return t
}

// ConstInt64 is Const for int64 values (two's complement for negatives).
func (b *Builder) ConstInt64(v int64, width int) *Term {
	return b.Const(big.NewInt(v), width)
}

// Bool returns the 1-bit constant for v.
func (b *Builder) Bool(v bool) *Term {
	if v {
		return b.ConstInt64(1, 1)
	}
	return b.ConstInt64(0, 1)
}

// Var returns the free variable with the given name and width,
// creating it on first use. Width mismatch on reuse panics: it is
// always a caller bug.
func (b *Builder) Var(name string, width int) *Term {
	if t, ok := b.vars[name]; ok {
		if t.width != width {
			panic(fmt.Sprintf("bv: variable %q redeclared with width %d (was %d)", name, width, t.width))
		}
		// A re-lookup is a hash-consing hit like any other interned
		// construction (whole-function value graphs re-read the same
		// variables constantly), and counting it keeps CacheHits
		// consistent across Const, Var, and compound terms.
		b.CacheHits++
		return t
	}
	t := b.alloc()
	t.op, t.width, t.name, t.id = OpVar, width, name, b.nextID
	b.nextID++
	b.TermsCreated++
	b.vars[name] = t
	return t
}

func (b *Builder) binary(op Op, x, y *Term) *Term {
	if t, done := b.binaryPre(op, &x, &y); done {
		return t
	}
	if !b.NoRewrite && acCommutative(op) {
		if t := b.canonChain(op, x, y); t != nil {
			return t
		}
	}
	return b.internBinary(op, x, y)
}

// binaryNoCanon is binary without chain canonicalization: the pairwise
// rewrite rules still run, but the operand chain interns as
// constructed. canonChain rebuilds through it so that reassembling a
// sorted chain cannot recurse into canonicalizing the same multiset.
func (b *Builder) binaryNoCanon(op Op, x, y *Term) *Term {
	if t, done := b.binaryPre(op, &x, &y); done {
		return t
	}
	return b.internBinary(op, x, y)
}

// binaryPre runs the shared front half of binary construction: width
// checking, the constant-to-right swap for commutative operations
// (mutating *x/*y), and the pairwise rewrite engine. done reports that
// t is the finished result.
func (b *Builder) binaryPre(op Op, x, y **Term) (t *Term, done bool) {
	if (*x).width != (*y).width {
		panic(fmt.Sprintf("bv: width mismatch %d vs %d in %v", (*x).width, (*y).width, op))
	}
	// Canonicalize commutative operations so a lone constant operand
	// sits on the right: the rewrite rules only inspect y, and the
	// interned node is shared between c⊕x and x⊕c.
	if !b.NoRewrite && (*x).op == OpConst && (*y).op != OpConst {
		switch op {
		case OpAnd, OpOr, OpXor, OpAdd, OpMul, OpEq:
			*x, *y = *y, *x
		}
	}
	if !b.NoRewrite {
		if t := b.rewriteBinary(op, *x, *y); t != nil {
			return t, true
		}
	}
	return nil, false
}

func (b *Builder) internBinary(op Op, x, y *Term) *Term {
	w := x.width
	if op == OpEq || op == OpULT || op == OpULE || op == OpSLT || op == OpSLE {
		w = 1
	}
	return b.intern(op, w, 0, x, y, nil)
}

// --- Public constructors -------------------------------------------------

// Not returns bitwise complement.
func (b *Builder) Not(x *Term) *Term {
	if !b.NoRewrite {
		if t := b.rewriteNot(x); t != nil {
			return t
		}
	}
	return b.intern(OpNot, x.width, 0, x, nil, nil)
}

// Neg returns two's-complement negation.
func (b *Builder) Neg(x *Term) *Term {
	if !b.NoRewrite {
		if t := b.rewriteNeg(x); t != nil {
			return t
		}
	}
	return b.intern(OpNeg, x.width, 0, x, nil, nil)
}

// And, Or, Xor are bitwise; on width-1 terms they double as the boolean
// connectives.
func (b *Builder) And(x, y *Term) *Term { return b.binary(OpAnd, x, y) }
func (b *Builder) Or(x, y *Term) *Term  { return b.binary(OpOr, x, y) }
func (b *Builder) Xor(x, y *Term) *Term { return b.binary(OpXor, x, y) }

// Add, Sub, Mul are modular arithmetic.
func (b *Builder) Add(x, y *Term) *Term { return b.binary(OpAdd, x, y) }
func (b *Builder) Sub(x, y *Term) *Term { return b.binary(OpSub, x, y) }
func (b *Builder) Mul(x, y *Term) *Term { return b.binary(OpMul, x, y) }

// UDiv and URem follow SMT-LIB totalization: x/0 = 2^w-1, x%0 = x.
func (b *Builder) UDiv(x, y *Term) *Term { return b.binary(OpUDiv, x, y) }
func (b *Builder) URem(x, y *Term) *Term { return b.binary(OpURem, x, y) }

// SDiv and SRem are signed division truncating toward zero.
func (b *Builder) SDiv(x, y *Term) *Term { return b.binary(OpSDiv, x, y) }
func (b *Builder) SRem(x, y *Term) *Term { return b.binary(OpSRem, x, y) }

// Shl, LShr, AShr shift by the unsigned value of y.
func (b *Builder) Shl(x, y *Term) *Term  { return b.binary(OpShl, x, y) }
func (b *Builder) LShr(x, y *Term) *Term { return b.binary(OpLShr, x, y) }
func (b *Builder) AShr(x, y *Term) *Term { return b.binary(OpAShr, x, y) }

// Eq returns the width-1 equality predicate.
func (b *Builder) Eq(x, y *Term) *Term { return b.binary(OpEq, x, y) }

// Ne is ¬(x = y).
func (b *Builder) Ne(x, y *Term) *Term { return b.Not(b.Eq(x, y)) }

// ULT/ULE/UGT/UGE are unsigned comparisons; SLT/SLE/SGT/SGE signed.
func (b *Builder) ULT(x, y *Term) *Term { return b.binary(OpULT, x, y) }
func (b *Builder) ULE(x, y *Term) *Term { return b.binary(OpULE, x, y) }
func (b *Builder) UGT(x, y *Term) *Term { return b.binary(OpULT, y, x) }
func (b *Builder) UGE(x, y *Term) *Term { return b.binary(OpULE, y, x) }
func (b *Builder) SLT(x, y *Term) *Term { return b.binary(OpSLT, x, y) }
func (b *Builder) SLE(x, y *Term) *Term { return b.binary(OpSLE, x, y) }
func (b *Builder) SGT(x, y *Term) *Term { return b.binary(OpSLT, y, x) }
func (b *Builder) SGE(x, y *Term) *Term { return b.binary(OpSLE, y, x) }

// ITE returns if-then-else; cond must have width 1, x and y equal widths.
func (b *Builder) ITE(cond, x, y *Term) *Term {
	if cond.width != 1 {
		panic("bv: ITE condition must have width 1")
	}
	if x.width != y.width {
		panic("bv: ITE arm width mismatch")
	}
	if !b.NoRewrite {
		if t := b.rewriteITE(cond, x, y); t != nil {
			return t
		}
	}
	return b.intern(OpITE, x.width, 0, cond, x, y)
}

// ZExt zero-extends x to width w (w ≥ x.Width()).
func (b *Builder) ZExt(x *Term, w int) *Term {
	if w < x.width {
		panic("bv: ZExt narrows")
	}
	if w == x.width {
		return x
	}
	if !b.NoRewrite {
		if t := b.rewriteZExt(x, w); t != nil {
			return t
		}
	}
	return b.intern(OpZExt, w, 0, x, nil, nil)
}

// SExt sign-extends x to width w.
func (b *Builder) SExt(x *Term, w int) *Term {
	if w < x.width {
		panic("bv: SExt narrows")
	}
	if w == x.width {
		return x
	}
	if !b.NoRewrite {
		if t := b.rewriteSExt(x, w); t != nil {
			return t
		}
	}
	return b.intern(OpSExt, w, 0, x, nil, nil)
}

// Extract returns bits [lo, hi] of x (inclusive, hi ≥ lo).
func (b *Builder) Extract(x *Term, hi, lo int) *Term {
	if lo < 0 || hi >= x.width || hi < lo {
		panic(fmt.Sprintf("bv: bad extract [%d:%d] of width %d", hi, lo, x.width))
	}
	w := hi - lo + 1
	if w == x.width {
		return x
	}
	if !b.NoRewrite {
		if t := b.rewriteExtract(x, hi, lo); t != nil {
			return t
		}
	}
	return b.intern(OpExtract, w, lo, x, nil, nil)
}

// Concat returns hi ++ lo (hi occupies the most significant bits).
func (b *Builder) Concat(hi, lo *Term) *Term {
	if !b.NoRewrite {
		if t := b.rewriteConcat(hi, lo); t != nil {
			return t
		}
	}
	return b.intern(OpConcat, hi.width+lo.width, 0, hi, lo, nil)
}

// Implies returns ¬x ∨ y for width-1 terms.
func (b *Builder) Implies(x, y *Term) *Term { return b.Or(b.Not(x), y) }

// Truncate returns the low w bits of x.
func (b *Builder) Truncate(x *Term, w int) *Term { return b.Extract(x, w-1, 0) }

// AndN folds And over a list; the empty conjunction is true.
func (b *Builder) AndN(ts ...*Term) *Term {
	acc := b.Bool(true)
	for _, t := range ts {
		acc = b.And(acc, t)
	}
	return acc
}

// OrN folds Or over a list; the empty disjunction is false.
func (b *Builder) OrN(ts ...*Term) *Term {
	acc := b.Bool(false)
	for _, t := range ts {
		acc = b.Or(acc, t)
	}
	return acc
}
