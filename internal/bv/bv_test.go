package bv

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func newSB() (*Builder, *Solver) {
	b := NewBuilder()
	return b, NewSolver(b)
}

func TestConstNormalization(t *testing.T) {
	b := NewBuilder()
	if got := b.ConstInt64(-1, 8).ConstValue().Int64(); got != 255 {
		t.Fatalf("-1 as u8 = %d, want 255", got)
	}
	if got := b.ConstInt64(256, 8).ConstValue().Int64(); got != 0 {
		t.Fatalf("256 as u8 = %d, want 0", got)
	}
	if b.ConstInt64(5, 8) != b.ConstInt64(5, 8) {
		t.Fatalf("constants not hash-consed")
	}
	if b.ConstInt64(5, 8) == b.ConstInt64(5, 16) {
		t.Fatalf("different widths should differ")
	}
}

func TestHashConsing(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 8)
	y := b.Var("y", 8)
	if b.Add(x, y) != b.Add(x, y) {
		t.Fatalf("identical terms not shared")
	}
	if b.Var("x", 8) != x {
		t.Fatalf("variable not shared")
	}
}

func TestVarWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("want panic on width mismatch")
		}
	}()
	b := NewBuilder()
	b.Var("x", 8)
	b.Var("x", 16)
}

func TestConstantFolding(t *testing.T) {
	b := NewBuilder()
	c := func(v int64) *Term { return b.ConstInt64(v, 8) }
	cases := []struct {
		got  *Term
		want int64
	}{
		{b.Add(c(200), c(100)), 44},
		{b.Sub(c(1), c(2)), 255},
		{b.Mul(c(16), c(16)), 0},
		{b.UDiv(c(7), c(2)), 3},
		{b.UDiv(c(7), c(0)), 255},
		{b.URem(c(7), c(0)), 7},
		{b.SDiv(c(-7), c(2)), 0xFD}, // -3
		{b.SRem(c(-7), c(2)), 0xFF}, // -1
		{b.Shl(c(1), c(9)), 0},      // oversized shift folds to 0
		{b.AShr(c(-2), c(1)), 0xFF}, // -1
		{b.LShr(c(0x80), c(7)), 1},
		{b.Not(c(0)), 255},
		{b.Neg(c(1)), 255},
	}
	for i, tc := range cases {
		if tc.got.Op() != OpConst {
			t.Fatalf("case %d: not folded: %v", i, tc.got)
		}
		if v := tc.got.ConstValue().Int64(); v != tc.want {
			t.Fatalf("case %d: got %d want %d", i, v, tc.want)
		}
	}
	if !b.SLT(c(-1), c(0)).IsConstBool(true) {
		t.Fatalf("-1 <s 0 should fold true")
	}
	if !b.ULT(c(255), c(0)).IsConstBool(false) {
		t.Fatalf("255 <u 0 should fold false")
	}
}

func TestAlgebraicIdentities(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 8)
	zero := b.ConstInt64(0, 8)
	ones := b.ConstInt64(-1, 8)
	if b.Add(x, zero) != x || b.Add(zero, x) != x {
		t.Fatalf("x+0 should fold to x")
	}
	if b.And(x, zero) != zero || b.And(x, ones) != x {
		t.Fatalf("and identities broken")
	}
	if b.Or(x, zero) != x || b.Or(x, ones) != ones {
		t.Fatalf("or identities broken")
	}
	if !b.Eq(x, x).IsConstBool(true) {
		t.Fatalf("x=x should fold true")
	}
	if !b.ULT(x, x).IsConstBool(false) {
		t.Fatalf("x<x should fold false")
	}
	if b.Xor(x, x).ConstValue().Sign() != 0 {
		t.Fatalf("x^x should fold to 0")
	}
	if b.Not(b.Not(x)) != x {
		t.Fatalf("double negation should cancel")
	}
	if b.Sub(x, x).ConstValue().Sign() != 0 {
		t.Fatalf("x-x should fold to 0")
	}
}

func TestSolveTrivial(t *testing.T) {
	b, s := newSB()
	if got := s.Solve(b.Bool(true)); got != Sat {
		t.Fatalf("true: %v", got)
	}
	if got := s.Solve(b.Bool(false)); got != Unsat {
		t.Fatalf("false: %v", got)
	}
}

func TestSolveSimpleEquation(t *testing.T) {
	b, s := newSB()
	x := b.Var("x", 8)
	// x + 1 = 0  =>  x = 255
	q := b.Eq(b.Add(x, b.ConstInt64(1, 8)), b.ConstInt64(0, 8))
	if got := s.Solve(q); got != Sat {
		t.Fatalf("got %v", got)
	}
	if v := s.Value(x).Int64(); v != 255 {
		t.Fatalf("x = %d, want 255", v)
	}
}

func TestUnsignedOverflowIsModular(t *testing.T) {
	b, s := newSB()
	x := b.Var("x", 8)
	// Exists x: x + 100 <u x (unsigned wraparound) — satisfiable.
	q := b.ULT(b.Add(x, b.ConstInt64(100, 8)), x)
	if got := s.Solve(q); got != Sat {
		t.Fatalf("got %v, want sat (wraparound exists)", got)
	}
	xv := s.Value(x)
	sum := new(big.Int).Add(xv, big.NewInt(100))
	sum.Mod(sum, big.NewInt(256))
	if sum.Cmp(xv) >= 0 {
		t.Fatalf("model x=%v does not wrap", xv)
	}
}

// TestPointerOverflowCheckUnstable encodes the paper's Figure 1 query:
// under the no-pointer-overflow assumption, buf + len < buf is
// unsatisfiable (the check folds to false).
func TestPointerOverflowCheckUnstable(t *testing.T) {
	b, s := newSB()
	const w = 32
	buf := b.Var("buf", w)
	len_ := b.Var("len", w)
	// UB condition for buf+len: infinite-precision sum out of [0,2^w-1].
	// Encode via zero-extension to w+1 bits: carry-out means overflow.
	ext := b.Add(b.ZExt(buf, w+1), b.ZExt(len_, w+1))
	noOverflow := b.Eq(b.Extract(ext, w, w), b.ConstInt64(0, 1))
	check := b.ULT(b.Add(buf, len_), buf) // buf+len < buf
	// check ∧ no-overflow must be unsat.
	if got := s.Solve(check, noOverflow); got != Unsat {
		t.Fatalf("got %v, want unsat", got)
	}
	// Without the assumption it is sat.
	if got := s.Solve(check); got != Sat {
		t.Fatalf("got %v, want sat", got)
	}
}

// TestSignedAdd100 is the x + 100 < x example (Fig. 4, col 3): under
// no-signed-overflow it is unsat.
func TestSignedAdd100(t *testing.T) {
	b, s := newSB()
	const w = 32
	x := b.Var("x", w)
	c100 := b.ConstInt64(100, w)
	sum := b.Add(x, c100)
	// Signed overflow of x+100: sign(x)=sign(100)=+ and sign(sum)=-
	// (or both negative and sum positive; with +100 only the first).
	ovf := b.And(
		b.Eq(b.Extract(x, w-1, w-1), b.ConstInt64(0, 1)),
		b.Eq(b.Extract(sum, w-1, w-1), b.ConstInt64(1, 1)),
	)
	check := b.SLT(sum, x)
	if got := s.Solve(check, b.Not(ovf)); got != Unsat {
		t.Fatalf("got %v, want unsat under no-overflow", got)
	}
	if got := s.Solve(check); got != Sat {
		t.Fatalf("got %v, want sat without assumption", got)
	}
}

func TestDivisionTotalization(t *testing.T) {
	b, s := newSB()
	x := b.Var("x", 8)
	zero := b.ConstInt64(0, 8)
	// x / 0 = 255 for all x.
	q := b.Ne(b.UDiv(x, zero), b.ConstInt64(255, 8))
	if got := s.Solve(q); got != Unsat {
		t.Fatalf("udiv-by-zero totalization: got %v", got)
	}
	// x % 0 = x for all x.
	q2 := b.Ne(b.URem(x, zero), x)
	if got := s.Solve(q2); got != Unsat {
		t.Fatalf("urem-by-zero totalization: got %v", got)
	}
}

func TestITE(t *testing.T) {
	b, s := newSB()
	c := b.Var("c", 1)
	x := b.ITE(c, b.ConstInt64(10, 8), b.ConstInt64(20, 8))
	if got := s.Solve(b.Eq(x, b.ConstInt64(10, 8)), b.Eq(c, b.ConstInt64(1, 1))); got != Sat {
		t.Fatalf("ite-then: %v", got)
	}
	if got := s.Solve(b.Eq(x, b.ConstInt64(10, 8)), b.Eq(c, b.ConstInt64(0, 1))); got != Unsat {
		t.Fatalf("ite-else: %v", got)
	}
}

func TestExtractConcatRoundTrip(t *testing.T) {
	b, s := newSB()
	x := b.Var("x", 16)
	hi := b.Extract(x, 15, 8)
	lo := b.Extract(x, 7, 0)
	q := b.Ne(b.Concat(hi, lo), x)
	if got := s.Solve(q); got != Unsat {
		t.Fatalf("concat(extract) != x should be unsat, got %v", got)
	}
}

func TestSExtZExt(t *testing.T) {
	b, s := newSB()
	x := b.Var("x", 8)
	// sext(x) < 0  <=>  x < 0 (signed)
	q := b.Xor(
		b.SLT(b.SExt(x, 16), b.ConstInt64(0, 16)),
		b.SLT(x, b.ConstInt64(0, 8)),
	)
	if got := s.Solve(q); got != Unsat {
		t.Fatalf("sext sign equivalence: %v", got)
	}
	// zext(x) is never negative at width 16.
	q2 := b.SLT(b.ZExt(x, 16), b.ConstInt64(0, 16))
	if got := s.Solve(q2); got != Unsat {
		t.Fatalf("zext negativity: %v", got)
	}
}

func TestSolveCoreSubset(t *testing.T) {
	b, s := newSB()
	x := b.Var("x", 8)
	a1 := b.ULT(x, b.ConstInt64(10, 8))      // x < 10
	a2 := b.UGT(x, b.ConstInt64(20, 8))      // x > 20
	a3 := b.Eq(b.Var("y", 8), b.Var("y", 8)) // trivially true
	res, core := s.SolveCore(a3, a1, a2)
	if res != Unsat {
		t.Fatalf("got %v", res)
	}
	for _, i := range core {
		if i == 0 {
			t.Fatalf("core contains irrelevant assumption")
		}
	}
	if len(core) == 0 {
		t.Fatalf("empty core")
	}
}

func TestIncrementalReuse(t *testing.T) {
	b, s := newSB()
	x := b.Var("x", 8)
	ten := b.ConstInt64(10, 8)
	s.Assert(b.ULT(x, ten))
	if got := s.Solve(b.UGE(x, ten)); got != Unsat {
		t.Fatalf("asserted x<10, assumed x>=10: %v", got)
	}
	if got := s.Solve(b.Eq(x, b.ConstInt64(5, 8))); got != Sat {
		t.Fatalf("x=5 under x<10: %v", got)
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("no assumptions: %v", got)
	}
}

// ref evaluates a term given an assignment to variables, in exact
// big.Int arithmetic — a reference semantics for differential testing.
func ref(t *Term, env map[string]*big.Int) *big.Int {
	w := t.Width()
	m := mask(w)
	norm := func(v *big.Int) *big.Int { return new(big.Int).And(v, m) }
	boolBV := func(b bool) *big.Int {
		if b {
			return big.NewInt(1)
		}
		return big.NewInt(0)
	}
	args := t.Args()
	switch t.Op() {
	case OpConst:
		return t.ConstValue()
	case OpVar:
		return norm(env[t.Name()])
	case OpNot:
		return norm(new(big.Int).Xor(ref(args[0], env), mask(args[0].Width())))
	case OpNeg:
		return norm(new(big.Int).Neg(ref(args[0], env)))
	case OpAnd:
		return norm(new(big.Int).And(ref(args[0], env), ref(args[1], env)))
	case OpOr:
		return norm(new(big.Int).Or(ref(args[0], env), ref(args[1], env)))
	case OpXor:
		return norm(new(big.Int).Xor(ref(args[0], env), ref(args[1], env)))
	case OpAdd:
		return norm(new(big.Int).Add(ref(args[0], env), ref(args[1], env)))
	case OpSub:
		return norm(new(big.Int).Sub(ref(args[0], env), ref(args[1], env)))
	case OpMul:
		return norm(new(big.Int).Mul(ref(args[0], env), ref(args[1], env)))
	case OpUDiv:
		x, y := ref(args[0], env), ref(args[1], env)
		if y.Sign() == 0 {
			return mask(w)
		}
		return norm(new(big.Int).Div(x, y))
	case OpURem:
		x, y := ref(args[0], env), ref(args[1], env)
		if y.Sign() == 0 {
			return x
		}
		return norm(new(big.Int).Mod(x, y))
	case OpSDiv:
		x := toSigned(ref(args[0], env), args[0].Width())
		y := toSigned(ref(args[1], env), args[1].Width())
		if y.Sign() == 0 {
			if x.Sign() < 0 {
				return big.NewInt(1)
			}
			return mask(w)
		}
		return norm(new(big.Int).Quo(x, y))
	case OpSRem:
		x := toSigned(ref(args[0], env), args[0].Width())
		y := toSigned(ref(args[1], env), args[1].Width())
		if y.Sign() == 0 {
			return norm(x)
		}
		return norm(new(big.Int).Rem(x, y))
	case OpShl:
		x, y := ref(args[0], env), ref(args[1], env)
		if y.Cmp(big.NewInt(int64(w))) >= 0 {
			return big.NewInt(0)
		}
		return norm(new(big.Int).Lsh(x, uint(y.Uint64())))
	case OpLShr:
		x, y := ref(args[0], env), ref(args[1], env)
		if y.Cmp(big.NewInt(int64(w))) >= 0 {
			return big.NewInt(0)
		}
		return norm(new(big.Int).Rsh(x, uint(y.Uint64())))
	case OpAShr:
		x := toSigned(ref(args[0], env), args[0].Width())
		y := ref(args[1], env)
		sh := uint(w)
		if y.Cmp(big.NewInt(int64(w))) < 0 {
			sh = uint(y.Uint64())
		}
		if sh >= uint(w) {
			if x.Sign() < 0 {
				return mask(w)
			}
			return big.NewInt(0)
		}
		return norm(new(big.Int).Rsh(x, sh))
	case OpEq:
		return boolBV(ref(args[0], env).Cmp(ref(args[1], env)) == 0)
	case OpULT:
		return boolBV(ref(args[0], env).Cmp(ref(args[1], env)) < 0)
	case OpULE:
		return boolBV(ref(args[0], env).Cmp(ref(args[1], env)) <= 0)
	case OpSLT:
		return boolBV(toSigned(ref(args[0], env), args[0].Width()).Cmp(toSigned(ref(args[1], env), args[1].Width())) < 0)
	case OpSLE:
		return boolBV(toSigned(ref(args[0], env), args[0].Width()).Cmp(toSigned(ref(args[1], env), args[1].Width())) <= 0)
	case OpITE:
		if ref(args[0], env).Sign() != 0 {
			return ref(args[1], env)
		}
		return ref(args[2], env)
	case OpZExt:
		return ref(args[0], env)
	case OpSExt:
		return norm(toSigned(ref(args[0], env), args[0].Width()))
	case OpExtract:
		v := new(big.Int).Rsh(ref(args[0], env), uint(t.lo))
		return norm(v)
	case OpConcat:
		hi := ref(args[0], env)
		lo := ref(args[1], env)
		v := new(big.Int).Lsh(hi, uint(args[1].Width()))
		return v.Or(v, lo)
	}
	panic("unreachable")
}

// randTerm builds a random term over vars x,y of the given width.
func randTerm(rng *rand.Rand, b *Builder, w, depth int) *Term {
	if depth == 0 || rng.Intn(4) == 0 {
		switch rng.Intn(3) {
		case 0:
			return b.Var("x", w)
		case 1:
			return b.Var("y", w)
		default:
			return b.ConstInt64(int64(rng.Intn(1<<uint(w))), w)
		}
	}
	ops := []func() *Term{
		func() *Term { return b.Add(randTerm(rng, b, w, depth-1), randTerm(rng, b, w, depth-1)) },
		func() *Term { return b.Sub(randTerm(rng, b, w, depth-1), randTerm(rng, b, w, depth-1)) },
		func() *Term { return b.Mul(randTerm(rng, b, w, depth-1), randTerm(rng, b, w, depth-1)) },
		func() *Term { return b.And(randTerm(rng, b, w, depth-1), randTerm(rng, b, w, depth-1)) },
		func() *Term { return b.Or(randTerm(rng, b, w, depth-1), randTerm(rng, b, w, depth-1)) },
		func() *Term { return b.Xor(randTerm(rng, b, w, depth-1), randTerm(rng, b, w, depth-1)) },
		func() *Term { return b.Not(randTerm(rng, b, w, depth-1)) },
		func() *Term { return b.Neg(randTerm(rng, b, w, depth-1)) },
		func() *Term { return b.UDiv(randTerm(rng, b, w, depth-1), randTerm(rng, b, w, depth-1)) },
		func() *Term { return b.URem(randTerm(rng, b, w, depth-1), randTerm(rng, b, w, depth-1)) },
		func() *Term { return b.SDiv(randTerm(rng, b, w, depth-1), randTerm(rng, b, w, depth-1)) },
		func() *Term { return b.SRem(randTerm(rng, b, w, depth-1), randTerm(rng, b, w, depth-1)) },
		func() *Term { return b.Shl(randTerm(rng, b, w, depth-1), randTerm(rng, b, w, depth-1)) },
		func() *Term { return b.LShr(randTerm(rng, b, w, depth-1), randTerm(rng, b, w, depth-1)) },
		func() *Term { return b.AShr(randTerm(rng, b, w, depth-1), randTerm(rng, b, w, depth-1)) },
		func() *Term {
			return b.ITE(b.Eq(randTerm(rng, b, w, depth-1), randTerm(rng, b, w, depth-1)),
				randTerm(rng, b, w, depth-1), randTerm(rng, b, w, depth-1))
		},
	}
	return ops[rng.Intn(len(ops))]()
}

// TestBlastAgainstReference is the central differential test: for
// random terms t and random concrete inputs, the SAT-level encoding
// must agree with the big.Int reference semantics. It cross-validates
// the bit-blaster, the constant folder, and the SAT solver at once.
func TestBlastAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for iter := 0; iter < 120; iter++ {
		w := []int{4, 5, 8}[rng.Intn(3)]
		b := NewBuilder()
		s := NewSolver(b)
		term := randTerm(rng, b, w, 3)
		xv := big.NewInt(int64(rng.Intn(1 << uint(w))))
		yv := big.NewInt(int64(rng.Intn(1 << uint(w))))
		env := map[string]*big.Int{"x": xv, "y": yv}
		want := ref(term, env)
		x := b.Var("x", w)
		y := b.Var("y", w)
		q := b.AndN(
			b.Eq(x, b.Const(xv, w)),
			b.Eq(y, b.Const(yv, w)),
			b.Ne(term, b.Const(want, w)),
		)
		if got := s.Solve(q); got != Unsat {
			t.Fatalf("iter %d: term %v with x=%v y=%v: want value %v, solver says a different value is possible (%v)",
				iter, term, xv, yv, want, got)
		}
	}
}

// TestFoldingSoundness property: folding never changes satisfiability.
// For random boolean terms, (t ≠ t') where t' is rebuilt through the
// folding builder from the same structure must be unsat. (Folding is
// applied on construction, so we instead check t against its reference
// evaluation on several points.)
func TestFoldingSoundnessOnPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 200; iter++ {
		w := 6
		b := NewBuilder()
		term := randTerm(rng, b, w, 4)
		for k := 0; k < 4; k++ {
			env := map[string]*big.Int{
				"x": big.NewInt(int64(rng.Intn(1 << uint(w)))),
				"y": big.NewInt(int64(rng.Intn(1 << uint(w)))),
			}
			_ = ref(term, env) // must not panic; folded DAG remains evaluable
		}
	}
}

func TestMaskProperty(t *testing.T) {
	f := func(w uint8) bool {
		width := int(w%63) + 1
		m := mask(width)
		return m.BitLen() == width && m.Bit(0) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTermString(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 8)
	s := b.ULT(b.Add(x, b.ConstInt64(1, 8)), x).String()
	if s == "" {
		t.Fatalf("empty render")
	}
	for _, want := range []string{"bvult", "bvadd", "x", "#x01"} {
		if !contains(s, want) {
			t.Fatalf("render %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestSolverStats(t *testing.T) {
	b, s := newSB()
	x := b.Var("x", 16)
	s.Assert(b.ULT(x, b.ConstInt64(100, 16)))
	if got := s.Solve(); got != Sat {
		t.Fatalf("%v", got)
	}
	vars, clauses := s.Stats()
	if vars == 0 || clauses == 0 {
		t.Fatalf("stats empty: %d vars %d clauses", vars, clauses)
	}
	if s.Queries != 1 {
		t.Fatalf("queries = %d", s.Queries)
	}
}

func TestMaxConflictsUnknown(t *testing.T) {
	b, s := newSB()
	s.MaxConflicts = 1
	// A multiplication equation hard enough to need >1 conflict:
	// factorization of a 16-bit semiprime with nontrivial factors.
	x := b.Var("x", 16)
	y := b.Var("y", 16)
	n := b.ConstInt64(62615, 16) // 251 * 499 mod 2^16? ensure nontrivial
	q := b.AndN(
		b.Eq(b.Mul(x, y), n),
		b.UGT(x, b.ConstInt64(1, 16)),
		b.UGT(y, b.ConstInt64(1, 16)),
		b.ULT(x, y),
	)
	got := s.Solve(q)
	if got == Sat {
		// Accept Sat if the solver got lucky in one conflict; but then
		// the model must be correct.
		xv, yv := s.Value(x).Int64(), s.Value(y).Int64()
		if (xv*yv)%65536 != 62615 {
			t.Fatalf("bogus model %d * %d", xv, yv)
		}
		return
	}
	if got != Unknown {
		t.Fatalf("got %v, want unknown under 1-conflict budget (or lucky sat)", got)
	}
	if s.Timeouts != 1 {
		t.Fatalf("timeouts = %d", s.Timeouts)
	}
}

func BenchmarkBlastAdd32(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bld := NewBuilder()
		s := NewSolver(bld)
		x := bld.Var("x", 32)
		y := bld.Var("y", 32)
		q := bld.ULT(bld.Add(x, y), x)
		if s.Solve(q) != Sat {
			b.Fatal("wrong verdict")
		}
	}
}

func BenchmarkSolvePointerOverflowQuery(b *testing.B) {
	// The paper's canonical elimination query (Fig. 1) at 64 bits.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bld := NewBuilder()
		s := NewSolver(bld)
		buf := bld.Var("buf", 64)
		ln := bld.Var("len", 64)
		ext := bld.Add(bld.ZExt(buf, 65), bld.ZExt(ln, 65))
		noOvf := bld.Eq(bld.Extract(ext, 64, 64), bld.ConstInt64(0, 1))
		check := bld.ULT(bld.Add(buf, ln), buf)
		if s.Solve(check, noOvf) != Unsat {
			b.Fatal("wrong verdict")
		}
	}
}

func BenchmarkSolveMul16(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bld := NewBuilder()
		s := NewSolver(bld)
		x := bld.Var("x", 16)
		y := bld.Var("y", 16)
		q := bld.Eq(bld.Mul(x, y), bld.ConstInt64(12, 16))
		if s.Solve(q) != Sat {
			b.Fatal("wrong verdict")
		}
	}
}

// TestVarRelookupCountsAsCacheHit: re-reading an interned variable is
// a hash-consing hit like a repeated Const or compound construction —
// the cache-hit-rate metric must see whole-function value graphs that
// re-reference the same variables.
func TestVarRelookupCountsAsCacheHit(t *testing.T) {
	bld := NewBuilder()
	x := bld.Var("x", 32)
	if bld.CacheHits != 0 {
		t.Fatalf("CacheHits = %d after first interning, want 0", bld.CacheHits)
	}
	if bld.Var("x", 32) != x {
		t.Fatal("re-lookup returned a different term")
	}
	if bld.Var("x", 32) != x {
		t.Fatal("re-lookup returned a different term")
	}
	if bld.CacheHits != 2 {
		t.Fatalf("CacheHits = %d after two re-lookups, want 2", bld.CacheHits)
	}
	if bld.TermsCreated != 1 {
		t.Fatalf("TermsCreated = %d, want 1", bld.TermsCreated)
	}
}
