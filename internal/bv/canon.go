package bv

// Commutative operand-chain canonicalization. The five
// associative-commutative operations (add, and, or, xor, mul) describe
// multisets of operands, but hash consing interns *trees*: without
// normalization (a+b)+c and (c+a)+b produce distinct nodes, two
// bit-blasted adder circuits, and two CDCL problems for one value. The
// STACK workload is full of such chains — pointer arithmetic sums,
// reachability conjunctions, flag disjunctions — built in whatever
// order the frontend happened to visit the operands.
//
// canonChain restores the multiset view: whenever an AC operation is
// constructed and no word-level rewrite rule fired, the combined
// operand chain of both arguments is flattened, its constants folded
// into (at most) one, its variable operands sorted by term ID, and the
// chain rebuilt left-nested with the constant outermost. Every
// construction order of the same multiset then interns to the same
// node, which multiplies Builder.CacheHits, shrinks encodings before
// blasting, and widens the reach of the add-chain rewrite rules (the
// folded constant always sits at args[1], exactly where addChainSplit
// looks).
//
// Soundness is inherited from associativity and commutativity — the
// rebuilt term is a reordering of the same multiset, with constants
// combined by the exact evalConstBinary arithmetic — and the
// differential and fuzz layers check the combination against the
// rewrite-free reference semantics. Builder.NoRewrite disables
// canonicalization along with the rewrite engine, keeping the
// reference mode a faithful as-constructed interner.

import (
	"math/big"
	"sort"
)

// maxChainLeaves bounds the flattened chain length canonicalization
// will touch. Longer chains (rare; nothing in the checker approaches
// this) are interned as built — sound, merely uncanonical — keeping
// the rebuild cost linear in a small constant.
const maxChainLeaves = 32

// acCommutative reports whether op is associative-commutative, i.e.
// eligible for chain canonicalization.
func acCommutative(op Op) bool {
	switch op {
	case OpAdd, OpAnd, OpOr, OpXor, OpMul:
		return true
	}
	return false
}

// flattenAC appends the leaves of t's op-chain to *dst in encounter
// order, recursing through nested nodes of the same op. It returns
// spine=false when t (as a right operand somewhere) breaks the
// left-nested canonical shape, and ok=false when the chain exceeds
// maxChainLeaves.
func flattenAC(op Op, t *Term, dst *[]*Term) (ok bool) {
	if t.op != op {
		if len(*dst) >= maxChainLeaves {
			return false
		}
		*dst = append(*dst, t)
		return true
	}
	if !flattenAC(op, t.args[0], dst) {
		return false
	}
	return flattenAC(op, t.args[1], dst)
}

// identityConst returns op's identity element at the given width, and
// absorbingConst the element that annihilates the chain (nil when none
// exists).
func identityConst(op Op, width int) *big.Int {
	switch op {
	case OpAnd:
		return mask(width)
	case OpMul:
		return big.NewInt(1)
	default: // add, or, xor
		return new(big.Int)
	}
}

func absorbingConst(op Op, width int) *big.Int {
	switch op {
	case OpAnd, OpMul:
		return new(big.Int)
	case OpOr:
		return mask(width)
	}
	return nil
}

// foldConstAC combines two chain constants under op at the given
// width. acc is mutated and returned.
func foldConstAC(op Op, width int, acc, v *big.Int) *big.Int {
	switch op {
	case OpAdd:
		acc.Add(acc, v)
	case OpAnd:
		acc.And(acc, v)
	case OpOr:
		acc.Or(acc, v)
	case OpXor:
		acc.Xor(acc, v)
	case OpMul:
		acc.Mul(acc, v)
	}
	return acc.And(acc, mask(width))
}

// canonChain canonicalizes the AC chain op(x, y). A nil return means
// the construction is already in canonical form (or too long to
// canonicalize) and the caller should intern op(x, y) directly. The
// caller has already given rewriteBinary its chance, so constants can
// only appear inside the chains, never as both top-level operands.
func (b *Builder) canonChain(op Op, x, y *Term) *Term {
	var buf [maxChainLeaves]*Term
	leaves := buf[:0]
	if !flattenAC(op, x, &leaves) || !flattenAC(op, y, &leaves) {
		return nil // chain too long: intern as built
	}

	// Split constants out of the multiset and fold them into one.
	width := x.width
	var cval *big.Int
	nconst := 0
	vars := leaves[:0] // reuses buf; safe: only const entries are dropped
	for _, l := range leaves {
		if l.op == OpConst {
			nconst++
			if cval == nil {
				cval = new(big.Int).Set(l.val)
			} else {
				cval = foldConstAC(op, width, cval, l.val)
			}
			continue
		}
		vars = append(vars, l)
	}

	// Canonical already? The construction op(x, y) interns to the
	// canonical node iff y is a single non-chain operand carrying the
	// chain's only constant (or no constant exists and y is the
	// largest-ID leaf), x's chain is left-nested, and the variable
	// leaves appear in sorted order — strictly sorted for and/or/xor,
	// where a duplicate leaf collapses (idempotence) or cancels
	// (self-inverse) and therefore demands a rebuild; add and mul keep
	// duplicates (x+x, x*x are irreducible here). In that case
	// returning nil lets the caller intern directly — the common case
	// for chains built incrementally in canonical order, which costs
	// one flatten and no rebuild.
	sorted := true
	for i := 1; i < len(vars); i++ {
		if vars[i-1].id > vars[i].id ||
			(vars[i-1].id == vars[i].id && op != OpAdd && op != OpMul) {
			sorted = false
			break
		}
	}
	if sorted && y.op != op && leftSpined(op, x) {
		if nconst == 0 {
			return nil
		}
		if nconst == 1 && y.op == OpConst {
			return nil
		}
	}

	if cval != nil {
		if abs := absorbingConst(op, width); abs != nil && cval.Cmp(abs) == 0 {
			// The folded constant annihilates the whole chain
			// (x&…&0, x|…|~0, x*…*0): a genuine word-level
			// simplification the pairwise rules could not see.
			return b.hit(b.Const(cval, width))
		}
		if cval.Cmp(identityConst(op, width)) == 0 {
			cval = nil // identity element: drop it from the chain
		}
	}
	if nconst > 1 || (nconst == 1 && cval == nil) {
		// Constants were combined or eliminated — count the fold as a
		// rewrite hit; pure reordering is accounted by the cache hits
		// the rebuild generates.
		b.RewriteHits++
	}
	sort.SliceStable(vars, func(i, j int) bool { return vars[i].id < vars[j].id })

	// Collapse duplicate leaves, now adjacent after sorting: and/or are
	// idempotent (x∧x = x), xor is self-inverse (pairs cancel). Add and
	// mul keep multiplicity. Each collapse is a word-level
	// simplification the pairwise rules could only see for adjacent
	// construction orders.
	switch op {
	case OpAnd, OpOr:
		w := 0
		for i, l := range vars {
			if i > 0 && l == vars[w-1] {
				b.RewriteHits++
				continue
			}
			vars[w] = l
			w++
		}
		vars = vars[:w]
	case OpXor:
		w := 0
		for i := 0; i < len(vars); {
			j := i
			for j < len(vars) && vars[j] == vars[i] {
				j++
			}
			if (j-i)%2 == 1 {
				vars[w] = vars[i]
				w++
			}
			if j-i > 1 {
				b.RewriteHits++
			}
			i = j
		}
		vars = vars[:w]
	}

	if len(vars) == 0 {
		if cval == nil {
			return b.Const(identityConst(op, width), width)
		}
		return b.Const(cval, width)
	}

	// Rebuild left-nested through the non-canonicalizing constructor:
	// pairwise rewrite rules still fire (adjacent duplicates collapse,
	// complementary pairs annihilate), but the rebuild itself cannot
	// recurse back into canonChain on the same multiset.
	acc := vars[0]
	for _, l := range vars[1:] {
		acc = b.binaryNoCanon(op, acc, l)
	}
	if cval != nil {
		acc = b.binaryNoCanon(op, acc, b.Const(cval, width))
	}
	return acc
}

// leftSpined reports whether every right operand along t's op-chain is
// a leaf, i.e. t is already a left-nested chain.
func leftSpined(op Op, t *Term) bool {
	for t.op == op {
		if t.args[1].op == op {
			return false
		}
		t = t.args[0]
	}
	return true
}
