package bv

import (
	"math/rand"
	"testing"
)

// TestCanonPermutationsIntern: every construction order of an AC
// operand multiset interns to the same hash-consed node. This is the
// dedup property the blast layer banks on — one node means one
// circuit, one SAT encoding, one cache entry.
func TestCanonPermutationsIntern(t *testing.T) {
	ops := []struct {
		name  string
		apply func(b *Builder, x, y *Term) *Term
	}{
		{"add", (*Builder).Add},
		{"and", (*Builder).And},
		{"or", (*Builder).Or},
		{"xor", (*Builder).Xor},
		{"mul", (*Builder).Mul},
	}
	for _, op := range ops {
		t.Run(op.name, func(t *testing.T) {
			b := NewBuilder()
			vs := []*Term{
				b.Var("a", 16), b.Var("b", 16), b.Var("c", 16), b.Var("d", 16),
			}
			fold := func(order []int) *Term {
				acc := vs[order[0]]
				for _, i := range order[1:] {
					acc = op.apply(b, acc, vs[i])
				}
				return acc
			}
			want := fold([]int{0, 1, 2, 3})
			perms := [][]int{
				{3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}, {0, 2, 1, 3},
			}
			for _, p := range perms {
				if got := fold(p); got != want {
					t.Errorf("order %v interned a distinct node", p)
				}
			}
			// Right-nested association too: a ⊕ (b ⊕ (c ⊕ d)).
			rn := op.apply(b, vs[0], op.apply(b, vs[1], op.apply(b, vs[2], vs[3])))
			if rn != want {
				t.Errorf("right-nested association interned a distinct node")
			}
		})
	}
}

// TestCanonConstFold: constants scattered through an AC chain fold
// into a single constant at the top-level right argument — the
// position addChainSplit and the pairwise constant rules inspect.
func TestCanonConstFold(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 8)
	y := b.Var("y", 8)

	// (3 + x) + (y + 5) = (x + y) + 8
	got := b.Add(b.Add(b.ConstInt64(3, 8), x), b.Add(y, b.ConstInt64(5, 8)))
	if got.op != OpAdd || !isConstWith(got.args[1], 8) {
		t.Errorf("add chain: got %v, want (x+y)+8 with const at args[1]", got)
	}
	if got.args[0] != b.Add(x, y) {
		t.Errorf("add chain base is not the canonical x+y node")
	}

	// (x & 0x0F) & (y & 0xF3) = (x & y) & 0x03
	gotAnd := b.And(b.And(x, b.ConstInt64(0x0F, 8)), b.And(y, b.ConstInt64(0xF3, 8)))
	if gotAnd.op != OpAnd || !isConstWith(gotAnd.args[1], 0x03) {
		t.Errorf("and chain: got %v, want (x&y)&0x03", gotAnd)
	}

	// Absorbing element kills the chain: (x | 0xF0) | (y | 0x0F) = ~0.
	gotOr := b.Or(b.Or(x, b.ConstInt64(0xF0, 8)), b.Or(y, b.ConstInt64(0x0F, 8)))
	if !isConstWith(gotOr, 0xFF) {
		t.Errorf("or chain with absorbing fold: got %v, want 0xFF", gotOr)
	}

	// Identity element drops out: (x ^ 5) ^ (y ^ 5) = x ^ y.
	gotXor := b.Xor(b.Xor(x, b.ConstInt64(5, 8)), b.Xor(y, b.ConstInt64(5, 8)))
	if gotXor != b.Xor(x, y) {
		t.Errorf("xor chain with cancelling consts: got %v, want x^y", gotXor)
	}
}

// TestCanonDuplicateLeaves: duplicate operands collapse under
// idempotent ops, cancel pairwise under xor, and are preserved under
// add/mul — independent of construction order.
func TestCanonDuplicateLeaves(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 8)
	y := b.Var("y", 8)

	if got := b.And(b.And(x, y), x); got != b.And(x, y) {
		t.Errorf("and duplicate: got %v, want x&y", got)
	}
	if got := b.Or(b.Or(y, x), b.Or(x, y)); got != b.Or(x, y) {
		t.Errorf("or duplicate across chains: got %v, want x|y", got)
	}
	if got := b.Xor(b.Xor(x, y), x); got != y {
		t.Errorf("xor pair cancellation: got %v, want y", got)
	}
	if got := b.Xor(b.Xor(x, y), b.Xor(x, y)); !isConstWith(got, 0) {
		t.Errorf("xor full cancellation: got %v, want 0", got)
	}
	// add keeps multiplicity: (x+y)+x must NOT collapse to x+y.
	if got := b.Add(b.Add(x, y), x); got == b.Add(x, y) {
		t.Errorf("add duplicate wrongly collapsed")
	}
}

// TestCanonDedupsChainHeavyCorpus is the acceptance check for the
// canonicalization tentpole: on a corpus of permuted chains the
// canonicalizing builder shows strictly more cache hits and strictly
// fewer created terms than the NoRewrite reference, and a session over
// the canonical encoding blasts strictly fewer terms.
func TestCanonDedupsChainHeavyCorpus(t *testing.T) {
	build := func(b *Builder) []*Term {
		rng := rand.New(rand.NewSource(6))
		vs := []*Term{
			b.Var("p", 16), b.Var("q", 16), b.Var("r", 16),
			b.Var("s", 16), b.Var("t", 16),
		}
		var queries []*Term
		for i := 0; i < 40; i++ {
			perm := rng.Perm(len(vs))
			acc := vs[perm[0]]
			for _, j := range perm[1:] {
				switch i % 3 {
				case 0:
					acc = b.Add(acc, vs[j])
				case 1:
					acc = b.And(acc, vs[j])
				default:
					acc = b.Or(acc, vs[j])
				}
			}
			queries = append(queries, b.ULT(acc, b.ConstInt64(int64(1000+i), 16)))
		}
		return queries
	}

	canon, ref := NewBuilder(), NewBuilder()
	ref.NoRewrite = true
	qc, qr := build(canon), build(ref)

	if canon.CacheHits <= ref.CacheHits {
		t.Errorf("CacheHits: canonical %d, reference %d; want strictly more",
			canon.CacheHits, ref.CacheHits)
	}
	if canon.TermsCreated >= ref.TermsCreated {
		t.Errorf("TermsCreated: canonical %d, reference %d; want strictly fewer",
			canon.TermsCreated, ref.TermsCreated)
	}

	sc, sr := NewSession(canon), NewSession(ref)
	for i := range qc {
		rc, rr := sc.Solve(qc[i]), sr.Solve(qr[i])
		if rc != rr {
			t.Fatalf("query %d: canonical=%v reference=%v", i, rc, rr)
		}
	}
	if sc.Blasts() >= sr.Blasts() {
		t.Errorf("terms blasted: canonical %d, reference %d; want strictly fewer",
			sc.Blasts(), sr.Blasts())
	}
}

func isConstWith(t *Term, v int64) bool {
	return t != nil && t.op == OpConst && t.val.Int64() == v
}
