package bv

// Differential test harness for the whole solver stack. A seeded
// random generator produces boolean term trees; each tree is built
// twice — once through the production Builder (word-level rewrites,
// constant fast paths) and solved by a long-lived incremental Session,
// and once through a rewrite-free Builder solved from scratch per
// query. The reference path exercises none of the optimizations, so
// any divergence in verdicts localizes a soundness bug in the rewrite
// engine, the fast paths, or the incremental session machinery.
// Sat models from every path are validated against the concrete
// reference evaluator (evalTerm, rewrite_test.go) on the *unrewritten*
// tree, and small Unsat verdicts are confirmed by exhaustive
// enumeration.

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"
)

// dNode is a builder-independent description of a term, so the same
// expression can be constructed through differently configured
// Builders.
type dNode struct {
	op     Op
	width  int // result width
	kids   []*dNode
	cval   int64  // OpConst
	vname  string // OpVar
	hi, lo int    // OpExtract
}

// buildNode constructs the described term through b's public
// constructors (triggering whatever rewriting b is configured for).
func buildNode(b *Builder, n *dNode) *Term {
	arg := func(i int) *Term { return buildNode(b, n.kids[i]) }
	switch n.op {
	case OpConst:
		return b.ConstInt64(n.cval, n.width)
	case OpVar:
		return b.Var(n.vname, n.width)
	case OpNot:
		return b.Not(arg(0))
	case OpNeg:
		return b.Neg(arg(0))
	case OpAnd:
		return b.And(arg(0), arg(1))
	case OpOr:
		return b.Or(arg(0), arg(1))
	case OpXor:
		return b.Xor(arg(0), arg(1))
	case OpAdd:
		return b.Add(arg(0), arg(1))
	case OpSub:
		return b.Sub(arg(0), arg(1))
	case OpMul:
		return b.Mul(arg(0), arg(1))
	case OpUDiv:
		return b.UDiv(arg(0), arg(1))
	case OpURem:
		return b.URem(arg(0), arg(1))
	case OpSDiv:
		return b.SDiv(arg(0), arg(1))
	case OpSRem:
		return b.SRem(arg(0), arg(1))
	case OpShl:
		return b.Shl(arg(0), arg(1))
	case OpLShr:
		return b.LShr(arg(0), arg(1))
	case OpAShr:
		return b.AShr(arg(0), arg(1))
	case OpEq:
		return b.Eq(arg(0), arg(1))
	case OpULT:
		return b.ULT(arg(0), arg(1))
	case OpULE:
		return b.ULE(arg(0), arg(1))
	case OpSLT:
		return b.SLT(arg(0), arg(1))
	case OpSLE:
		return b.SLE(arg(0), arg(1))
	case OpITE:
		return b.ITE(arg(0), arg(1), arg(2))
	case OpZExt:
		return b.ZExt(arg(0), n.width)
	case OpSExt:
		return b.SExt(arg(0), n.width)
	case OpExtract:
		return b.Extract(arg(0), n.hi, n.lo)
	case OpConcat:
		return b.Concat(arg(0), arg(1))
	}
	panic("buildNode: unexpected op " + n.op.String())
}

// collectVars gathers the distinct variables of a tree.
func collectVars(n *dNode, out map[string]int) {
	if n.op == OpVar {
		out[n.vname] = n.width
		return
	}
	for _, k := range n.kids {
		collectVars(k, out)
	}
}

// termGen generates random term trees. Variables are named per width
// ("x4", "y4", ...) so every builder agrees on their declarations.
type termGen struct {
	rng *rand.Rand
}

var genVarNames = []string{"x", "y", "z"}

func (g *termGen) leaf(width int) *dNode {
	if g.rng.Intn(3) == 0 {
		return &dNode{op: OpConst, width: width, cval: g.rng.Int63n(1 << uint(width))}
	}
	name := fmt.Sprintf("%s%d", genVarNames[g.rng.Intn(len(genVarNames))], width)
	return &dNode{op: OpVar, width: width, vname: name}
}

var genBinOps = []Op{
	OpAnd, OpOr, OpXor, OpAdd, OpSub, OpMul,
	OpUDiv, OpURem, OpSDiv, OpSRem, OpShl, OpLShr, OpAShr,
}

// expr generates a width-bit term of bounded depth.
func (g *termGen) expr(width, depth int) *dNode {
	if depth <= 0 || width == 1 && g.rng.Intn(2) == 0 {
		return g.leaf(width)
	}
	switch c := g.rng.Intn(10); {
	case c < 4: // binary word op
		op := genBinOps[g.rng.Intn(len(genBinOps))]
		return &dNode{op: op, width: width, kids: []*dNode{g.expr(width, depth-1), g.expr(width, depth-1)}}
	case c < 5: // unary
		op := OpNot
		if g.rng.Intn(2) == 0 {
			op = OpNeg
		}
		return &dNode{op: op, width: width, kids: []*dNode{g.expr(width, depth-1)}}
	case c < 6: // ite
		return &dNode{op: OpITE, width: width, kids: []*dNode{
			g.boolean(depth - 1), g.expr(width, depth-1), g.expr(width, depth-1)}}
	case c < 7 && width > 1: // extension from a narrower operand
		op := OpZExt
		if g.rng.Intn(2) == 0 {
			op = OpSExt
		}
		from := 1 + g.rng.Intn(width-1)
		return &dNode{op: op, width: width, kids: []*dNode{g.expr(from, depth-1)}}
	case c < 8: // extract from a wider operand
		extra := 1 + g.rng.Intn(4)
		lo := g.rng.Intn(extra + 1)
		return &dNode{op: OpExtract, width: width, hi: lo + width - 1, lo: lo,
			kids: []*dNode{g.expr(width+extra, depth-1)}}
	case c < 9 && width > 1: // concat of two halves
		hw := 1 + g.rng.Intn(width-1)
		return &dNode{op: OpConcat, width: width, kids: []*dNode{
			g.expr(width-hw, depth-1), g.expr(hw, depth-1)}}
	}
	return g.leaf(width)
}

// boolean generates a width-1 term, biased toward comparisons.
func (g *termGen) boolean(depth int) *dNode {
	if depth <= 0 {
		return g.leaf(1)
	}
	switch g.rng.Intn(6) {
	case 0, 1, 2: // comparison over a random width
		w := []int{1, 4, 8}[g.rng.Intn(3)]
		op := []Op{OpEq, OpULT, OpULE, OpSLT, OpSLE}[g.rng.Intn(5)]
		return &dNode{op: op, width: 1, kids: []*dNode{g.expr(w, depth-1), g.expr(w, depth-1)}}
	case 3: // boolean connective
		op := []Op{OpAnd, OpOr, OpXor}[g.rng.Intn(3)]
		return &dNode{op: op, width: 1, kids: []*dNode{g.boolean(depth - 1), g.boolean(depth - 1)}}
	case 4:
		return &dNode{op: OpNot, width: 1, kids: []*dNode{g.boolean(depth - 1)}}
	}
	return g.expr(1, depth)
}

// modelEnv reads the model values of tree's variables from value.
func modelEnv(vars map[string]int, value func(name string, width int) *big.Int) map[string]*big.Int {
	env := make(map[string]*big.Int, len(vars))
	for name, w := range vars {
		env[name] = value(name, w)
	}
	return env
}

// enumerateUnsat exhaustively confirms that no assignment satisfies the
// unrewritten term; it is only called when the search space is small.
func enumerateUnsat(t *testing.T, tRef *Term, vars map[string]int, totalBits int) {
	t.Helper()
	names := make([]string, 0, len(vars))
	for name := range vars {
		names = append(names, name)
	}
	for m := 0; m < 1<<uint(totalBits); m++ {
		env := map[string]*big.Int{}
		shift := 0
		for _, name := range names {
			w := vars[name]
			env[name] = big.NewInt(int64(m >> uint(shift) & (1<<uint(w) - 1)))
			shift += w
		}
		if evalTerm(tRef, env).Sign() != 0 {
			t.Fatalf("solver said unsat but %v satisfies the query", env)
		}
	}
}

// TestDifferentialSolverStack cross-checks the optimized stack against
// the rewrite-free scratch reference on thousands of seeded random
// queries, validating models on Sat and (for small spaces) enumerating
// on Unsat.
func TestDifferentialSolverStack(t *testing.T) {
	const cases = 2500
	g := &termGen{rng: rand.New(rand.NewSource(20130324))}

	// The production stack: rewriting builder, incremental sessions
	// reused across a chunk of queries (the checker's per-function
	// shape), plus a scratch-mode session on the same builder.
	full := NewBuilder()
	sessInc := NewSession(full)
	sessScr := NewSession(full)
	sessScr.Scratch = true
	var blastsInc, blastsScr, fastInc int64

	// The reference: no rewrites, fresh solver per query.
	ref := NewBuilder()
	ref.NoRewrite = true

	// Rotating the sessions bounds the SAT instance while still
	// covering dozens of consecutive queries per session.
	const sessionEvery = 64

	verdicts := map[Result]int{}
	for i := 0; i < cases; i++ {
		if i > 0 && i%sessionEvery == 0 {
			blastsInc += sessInc.Blasts()
			blastsScr += sessScr.Blasts()
			fastInc += sessInc.FastPaths
			sessInc = NewSession(full)
			sessScr = NewSession(full)
			sessScr.Scratch = true
		}
		tree := g.boolean(3)
		vars := map[string]int{}
		collectVars(tree, vars)

		tFull := buildNode(full, tree)
		tRef := buildNode(ref, tree)

		refSolver := NewSolver(ref)
		want := refSolver.Solve(tRef)
		if got := sessInc.Solve(tFull); got != want {
			t.Fatalf("case %d: incremental=%v reference=%v for %s", i, got, want, tRef)
		}
		if got := sessScr.Solve(tFull); got != want {
			t.Fatalf("case %d: scratch=%v reference=%v for %s", i, got, want, tRef)
		}
		verdicts[want]++

		switch want {
		case Sat:
			// Every model on offer must satisfy the unrewritten tree
			// under concrete reference semantics.
			if refSolver.HasModel() {
				env := modelEnv(vars, func(n string, w int) *big.Int { return refSolver.Value(ref.Var(n, w)) })
				if evalTerm(tRef, env).Sign() == 0 {
					t.Fatalf("case %d: reference model %v falsifies %s", i, env, tRef)
				}
			}
			for name, sess := range map[string]*Session{"incremental": sessInc, "scratch": sessScr} {
				if !sess.HasModel() {
					continue // constant fast path: verdict without model
				}
				env := modelEnv(vars, func(n string, w int) *big.Int { return sess.Value(full.Var(n, w)) })
				if evalTerm(tRef, env).Sign() == 0 {
					t.Fatalf("case %d: %s model %v falsifies reference tree %s", i, name, env, tRef)
				}
			}
		case Unsat:
			totalBits := 0
			for _, w := range vars {
				totalBits += w
			}
			if totalBits <= 12 {
				enumerateUnsat(t, tRef, vars, totalBits)
			}
		case Unknown:
			t.Fatalf("case %d: reference returned unknown with no budget set", i)
		}
	}

	// The run must actually exercise both verdicts and the optimization
	// layers it claims to test.
	if verdicts[Sat] < cases/10 || verdicts[Unsat] < cases/50 {
		t.Errorf("verdict mix too skewed to be meaningful: %v", verdicts)
	}
	if full.RewriteHits == 0 {
		t.Error("random queries triggered no rewrites in the full stack")
	}
	if ref.RewriteHits != 0 {
		t.Errorf("reference builder rewrote %d terms; must be rewrite-free", ref.RewriteHits)
	}
	blastsInc += sessInc.Blasts()
	blastsScr += sessScr.Blasts()
	fastInc += sessInc.FastPaths
	if fastInc == 0 {
		t.Error("random queries never hit the constant fast path")
	}
	if blastsInc >= blastsScr {
		t.Errorf("incremental sessions blasted %d terms, scratch %d; reuse not happening",
			blastsInc, blastsScr)
	}
}
