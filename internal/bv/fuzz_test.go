package bv

// Native fuzz target for term construction. The input bytes drive a
// small decoder that produces a term tree (the dNode shape shared with
// the differential harness); the tree is then built through the
// rewriting Builder and through a rewrite-free reference Builder, and
// both results must evaluate identically on sampled assignments. Any
// divergence is an unsound rewrite rule reachable from raw bytes —
// the fuzzing analogue of TestDifferentialSolverStack's seeded sweep.

import (
	"fmt"
	"math/big"
	"testing"
)

type byteReader struct {
	data []byte
	pos  int
}

func (r *byteReader) next() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

var fuzzWidths = []int{1, 4, 8}

// decodeExpr turns fuzz bytes into a width-bit term description.
func decodeExpr(r *byteReader, width, depth int) *dNode {
	b := r.next()
	if depth <= 0 || b < 64 {
		if b%3 == 0 {
			return &dNode{op: OpConst, width: width, cval: int64(r.next()) & (1<<uint(width) - 1)}
		}
		name := fmt.Sprintf("%s%d", genVarNames[int(b)%len(genVarNames)], width)
		return &dNode{op: OpVar, width: width, vname: name}
	}
	switch b % 8 {
	case 0, 1, 2: // binary word op
		op := genBinOps[int(r.next())%len(genBinOps)]
		return &dNode{op: op, width: width, kids: []*dNode{
			decodeExpr(r, width, depth-1), decodeExpr(r, width, depth-1)}}
	case 3: // unary
		op := OpNot
		if r.next()%2 == 0 {
			op = OpNeg
		}
		return &dNode{op: op, width: width, kids: []*dNode{decodeExpr(r, width, depth-1)}}
	case 4: // comparison (result width 1) or ite
		if width == 1 {
			w := fuzzWidths[int(r.next())%len(fuzzWidths)]
			op := []Op{OpEq, OpULT, OpULE, OpSLT, OpSLE}[int(r.next())%5]
			return &dNode{op: op, width: 1, kids: []*dNode{
				decodeExpr(r, w, depth-1), decodeExpr(r, w, depth-1)}}
		}
		return &dNode{op: OpITE, width: width, kids: []*dNode{
			decodeExpr(r, 1, depth-1), decodeExpr(r, width, depth-1), decodeExpr(r, width, depth-1)}}
	case 5: // extension
		if width == 1 {
			return decodeExpr(r, width, depth-1)
		}
		op := OpZExt
		if r.next()%2 == 0 {
			op = OpSExt
		}
		from := 1 + int(r.next())%(width-1)
		return &dNode{op: op, width: width, kids: []*dNode{decodeExpr(r, from, depth-1)}}
	case 6: // extract
		extra := 1 + int(r.next())%4
		lo := int(r.next()) % (extra + 1)
		return &dNode{op: OpExtract, width: width, hi: lo + width - 1, lo: lo,
			kids: []*dNode{decodeExpr(r, width+extra, depth-1)}}
	default: // concat
		if width == 1 {
			return decodeExpr(r, width, depth-1)
		}
		hw := 1 + int(r.next())%(width-1)
		return &dNode{op: OpConcat, width: width, kids: []*dNode{
			decodeExpr(r, width-hw, depth-1), decodeExpr(r, hw, depth-1)}}
	}
}

// FuzzTermConstruction cross-checks rewriting against reference
// construction on byte-driven term trees.
func FuzzTermConstruction(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{200, 3, 70, 10, 20, 65, 1, 2, 3})
	f.Add([]byte{68, 0, 1, 100, 5, 200, 7, 7, 7, 7, 90, 90, 90})
	f.Add([]byte{76, 1, 0, 255, 12, 99, 104, 2, 2, 140, 6, 80, 80, 80, 80})
	f.Add([]byte{255, 254, 253, 252, 251, 250, 249, 248, 0, 0, 0, 0, 127, 64, 65, 66})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			t.Skip("oversized input")
		}
		r := &byteReader{data: data}
		width := fuzzWidths[int(r.next())%len(fuzzWidths)]
		tree := decodeExpr(r, width, 4)

		full := NewBuilder()
		ref := NewBuilder()
		ref.NoRewrite = true
		tFull := buildNode(full, tree)
		tRef := buildNode(ref, tree)
		if tFull.Width() != width || tRef.Width() != width {
			t.Fatalf("width mismatch: full=%d ref=%d want %d", tFull.Width(), tRef.Width(), width)
		}
		if ref.RewriteHits != 0 {
			t.Fatalf("reference builder rewrote %d terms", ref.RewriteHits)
		}

		// Sample assignments from the remaining input bytes plus two
		// fixed corners.
		vars := map[string]int{}
		collectVars(tree, vars)
		envs := []map[string]*big.Int{{}, {}}
		for name, w := range vars {
			envs[0][name] = big.NewInt(0)
			envs[1][name] = new(big.Int).Set(mask(w))
		}
		for k := 0; k < 4; k++ {
			env := map[string]*big.Int{}
			for name, w := range vars {
				env[name] = big.NewInt(int64(r.next()) & (1<<uint(w) - 1))
			}
			envs = append(envs, env)
		}
		for _, env := range envs {
			want := evalTerm(tRef, env)
			if got := evalTerm(tFull, env); got.Cmp(want) != 0 {
				t.Fatalf("rewrite divergence under %v:\n full = %v (%s)\n ref  = %v (%s)",
					env, got, tFull, want, tRef)
			}
		}
	})
}
