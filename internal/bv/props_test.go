package bv

// Property-based tests of the bit-vector theory: algebraic laws that
// must hold for every operand value, verified by asking the solver to
// find a counterexample (UNSAT = law holds for all 2^w inputs).

import (
	"fmt"
	"testing"
)

// law checks that a width-1 term is valid (its negation is unsat).
func law(t *testing.T, name string, build func(b *Builder, x, y, z *Term) *Term) {
	t.Helper()
	lawAt(t, name, []int{1, 4, 8, 16}, build)
}

// lawSmall is law over widths small enough for multiplication-heavy
// instances (equivalence of two multipliers is SAT-hard at 16 bits).
func lawSmall(t *testing.T, name string, build func(b *Builder, x, y, z *Term) *Term) {
	t.Helper()
	lawAt(t, name, []int{1, 4, 6}, build)
}

func lawAt(t *testing.T, name string, widths []int, build func(b *Builder, x, y, z *Term) *Term) {
	t.Helper()
	for _, w := range widths {
		b := NewBuilder()
		s := NewSolver(b)
		x := b.Var("x", w)
		y := b.Var("y", w)
		z := b.Var("z", w)
		prop := build(b, x, y, z)
		if got := s.Solve(b.Not(prop)); got != Unsat {
			if got == Sat {
				t.Errorf("%s fails at width %d: x=%v y=%v z=%v",
					name, w, s.Value(x), s.Value(y), s.Value(z))
			} else {
				t.Errorf("%s: solver %v at width %d", name, got, w)
			}
		}
	}
}

func TestLawAddCommutative(t *testing.T) {
	law(t, "x+y = y+x", func(b *Builder, x, y, z *Term) *Term {
		return b.Eq(b.Add(x, y), b.Add(y, x))
	})
}

func TestLawAddAssociative(t *testing.T) {
	law(t, "(x+y)+z = x+(y+z)", func(b *Builder, x, y, z *Term) *Term {
		return b.Eq(b.Add(b.Add(x, y), z), b.Add(x, b.Add(y, z)))
	})
}

func TestLawSubIsAddNeg(t *testing.T) {
	law(t, "x-y = x+(-y)", func(b *Builder, x, y, z *Term) *Term {
		return b.Eq(b.Sub(x, y), b.Add(x, b.Neg(y)))
	})
}

func TestLawMulCommutative(t *testing.T) {
	lawSmall(t, "x*y = y*x", func(b *Builder, x, y, z *Term) *Term {
		return b.Eq(b.Mul(x, y), b.Mul(y, x))
	})
}

func TestLawMulDistributes(t *testing.T) {
	lawSmall(t, "x*(y+z) = x*y + x*z", func(b *Builder, x, y, z *Term) *Term {
		return b.Eq(b.Mul(x, b.Add(y, z)), b.Add(b.Mul(x, y), b.Mul(x, z)))
	})
}

func TestLawDeMorgan(t *testing.T) {
	law(t, "~(x&y) = ~x|~y", func(b *Builder, x, y, z *Term) *Term {
		return b.Eq(b.Not(b.And(x, y)), b.Or(b.Not(x), b.Not(y)))
	})
}

func TestLawXorSelfInverse(t *testing.T) {
	law(t, "(x^y)^y = x", func(b *Builder, x, y, z *Term) *Term {
		return b.Eq(b.Xor(b.Xor(x, y), y), x)
	})
}

func TestLawNegNeg(t *testing.T) {
	law(t, "-(-x) = x", func(b *Builder, x, y, z *Term) *Term {
		return b.Eq(b.Neg(b.Neg(x)), x)
	})
}

func TestLawDivRemDecomposition(t *testing.T) {
	// For y != 0: x = (x/y)*y + x%y (unsigned).
	lawSmall(t, "udiv/urem decomposition", func(b *Builder, x, y, z *Term) *Term {
		yNonzero := b.Ne(y, b.ConstInt64(0, y.Width()))
		eq := b.Eq(x, b.Add(b.Mul(b.UDiv(x, y), y), b.URem(x, y)))
		return b.Implies(yNonzero, eq)
	})
}

func TestLawSignedDivRemDecomposition(t *testing.T) {
	lawSmall(t, "sdiv/srem decomposition", func(b *Builder, x, y, z *Term) *Term {
		yNonzero := b.Ne(y, b.ConstInt64(0, y.Width()))
		eq := b.Eq(x, b.Add(b.Mul(b.SDiv(x, y), y), b.SRem(x, y)))
		return b.Implies(yNonzero, eq)
	})
}

func TestLawULTTotalOrder(t *testing.T) {
	law(t, "ult trichotomy", func(b *Builder, x, y, z *Term) *Term {
		return b.OrN(b.ULT(x, y), b.ULT(y, x), b.Eq(x, y))
	})
}

func TestLawSLTAntisymmetric(t *testing.T) {
	law(t, "¬(x<y ∧ y<x)", func(b *Builder, x, y, z *Term) *Term {
		return b.Not(b.And(b.SLT(x, y), b.SLT(y, x)))
	})
}

func TestLawShiftDecomposition(t *testing.T) {
	// (x << 1) = x + x.
	law(t, "x<<1 = x+x", func(b *Builder, x, y, z *Term) *Term {
		one := b.ConstInt64(1, x.Width())
		return b.Eq(b.Shl(x, one), b.Add(x, x))
	})
}

func TestLawLShrShlRoundTrip(t *testing.T) {
	// For width ≥ 2: ((x << 1) >> 1) clears the top bit.
	for _, w := range []int{4, 8} {
		b := NewBuilder()
		s := NewSolver(b)
		x := b.Var("x", w)
		one := b.ConstInt64(1, w)
		rt := b.LShr(b.Shl(x, one), one)
		mask := b.ConstInt64(int64(1)<<(uint(w)-1)-1, w)
		prop := b.Eq(rt, b.And(x, mask))
		if got := s.Solve(b.Not(prop)); got != Unsat {
			t.Errorf("width %d: shift round trip law fails (%v)", w, got)
		}
	}
}

func TestLawSExtPreservesSignedOrder(t *testing.T) {
	for _, w := range []int{4, 8} {
		b := NewBuilder()
		s := NewSolver(b)
		x := b.Var("x", w)
		y := b.Var("y", w)
		prop := b.Eq(
			b.SLT(x, y),
			b.SLT(b.SExt(x, 2*w), b.SExt(y, 2*w)),
		)
		if got := s.Solve(b.Not(prop)); got != Unsat {
			t.Errorf("width %d: sext order preservation fails (%v)", w, got)
		}
	}
}

func TestLawZExtPreservesUnsignedOrder(t *testing.T) {
	for _, w := range []int{4, 8} {
		b := NewBuilder()
		s := NewSolver(b)
		x := b.Var("x", w)
		y := b.Var("y", w)
		prop := b.Eq(
			b.ULT(x, y),
			b.ULT(b.ZExt(x, 2*w), b.ZExt(y, 2*w)),
		)
		if got := s.Solve(b.Not(prop)); got != Unsat {
			t.Errorf("width %d: zext order preservation fails (%v)", w, got)
		}
	}
}

func TestLawITESelect(t *testing.T) {
	law(t, "ite(c,x,x) = x and ite laws", func(b *Builder, x, y, z *Term) *Term {
		c := b.Eq(x, y)
		return b.AndN(
			b.Eq(b.ITE(c, x, x), x),
			b.Eq(b.ITE(b.Bool(true), x, y), x),
			b.Eq(b.ITE(b.Bool(false), x, y), y),
		)
	})
}

// TestUBConditionEncodings verifies the Figure 3 sufficient conditions
// at the theory level: each UB condition is satisfiable (the behavior
// can happen) and its negation rules out exactly the bad inputs.
func TestUBConditionEncodings(t *testing.T) {
	const w = 8
	b := NewBuilder()
	s := NewSolver(b)
	x := b.Var("x", w)
	y := b.Var("y", w)

	// Signed add overflow at width 8: x=127, y=1 must satisfy it.
	xe, ye := b.SExt(x, w+1), b.SExt(y, w+1)
	sum := b.Add(xe, ye)
	ovf := b.Or(
		b.SLT(sum, b.ConstInt64(-128, w+1)),
		b.SGT(sum, b.ConstInt64(127, w+1)),
	)
	if got := s.Solve(ovf, b.Eq(x, b.ConstInt64(127, w)), b.Eq(y, b.ConstInt64(1, w))); got != Sat {
		t.Errorf("127+1 must overflow i8: %v", got)
	}
	if got := s.Solve(ovf, b.Eq(x, b.ConstInt64(1, w)), b.Eq(y, b.ConstInt64(1, w))); got != Unsat {
		t.Errorf("1+1 must not overflow i8: %v", got)
	}

	// INT_MIN / -1.
	divUB := b.And(
		b.Eq(x, b.ConstInt64(-128, w)),
		b.Eq(y, b.ConstInt64(-1, w)),
	)
	if got := s.Solve(divUB); got != Sat {
		t.Errorf("INT_MIN/-1 condition unsatisfiable: %v", got)
	}
}

func TestSolverManyQueriesIncremental(t *testing.T) {
	b := NewBuilder()
	s := NewSolver(b)
	x := b.Var("x", 16)
	for i := 0; i < 50; i++ {
		c := b.ConstInt64(int64(i), 16)
		want := Sat
		if got := s.Solve(b.Eq(x, c)); got != want {
			t.Fatalf("query %d: %v", i, got)
		}
		if v := s.Value(x).Int64(); v != int64(i) {
			t.Fatalf("query %d: model %d", i, v)
		}
	}
	if s.Queries != 50 {
		t.Fatalf("queries = %d", s.Queries)
	}
}

func TestBuilderStats(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 8)
	y := b.Var("y", 8)
	before := b.CacheHits
	b.Add(x, y)
	b.Add(x, y) // hash-cons hit
	if b.CacheHits <= before {
		t.Errorf("expected cache hit on duplicate term")
	}
	if b.TermsCreated == 0 {
		t.Errorf("no terms counted")
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on width mismatch")
		}
	}()
	b := NewBuilder()
	b.Add(b.Var("a", 8), b.Var("b", 16))
}

func TestExtractBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on bad extract")
		}
	}()
	b := NewBuilder()
	b.Extract(b.Var("a", 8), 9, 0)
}

func ExampleSolver_Solve() {
	b := NewBuilder()
	s := NewSolver(b)
	x := b.Var("x", 8)
	// Is there an x with x + 1 < x (unsigned)? Yes: 255.
	q := b.ULT(b.Add(x, b.ConstInt64(1, 8)), x)
	fmt.Println(s.Solve(q))
	fmt.Println(s.Value(x))
	// Output:
	// sat
	// 255
}
