package bv

// Word-level term rewriting (Boolector-style "rewrite level 1/2"): every
// constructor normalizes its operands before a node is interned, so
// constant and trivially-decidable subterms collapse at construction
// time and never reach the bit-blaster. For the STACK workload this is
// the difference between answering a query with a table lookup and
// running a full CDCL search: reachability and well-definedness terms
// for straight-line code frequently fold to constants here, and
// Solver.Solve short-circuits on them without touching the SAT core.
//
// Every rule in this file must be sound under SMT-LIB QF_BV semantics
// for all operand values — rewrite_test.go checks each rule against a
// concrete reference evaluator on random inputs. Rules that fire are
// counted in Builder.RewriteHits (alongside the structural CacheHits of
// hash consing).

import (
	"fmt"
	"math/big"
)

// hit records a successful rewrite and returns its result, so rules can
// be written as one-liners.
func (b *Builder) hit(t *Term) *Term {
	b.RewriteHits++
	return t
}

func toSigned(v *big.Int, width int) *big.Int {
	r := new(big.Int).Set(v)
	if r.Bit(width-1) == 1 {
		r.Sub(r, new(big.Int).Lsh(big.NewInt(1), uint(width)))
	}
	return r
}

// isAllOnes reports whether a constant term is ~0 at its width.
func isAllOnes(t *Term) bool {
	return t.op == OpConst && t.val.Cmp(mask(t.width)) == 0
}

// complementary reports whether x = ¬y or y = ¬x structurally.
func complementary(x, y *Term) bool {
	return (x.op == OpNot && x.args[0] == y) || (y.op == OpNot && y.args[0] == x)
}

// addChainSplit decomposes t over the add-chain normal form the OpAdd
// and OpSub rules maintain: t = base + off with off a constant (zero
// when t is not an add-with-constant node). Two terms with the same
// base differ by a constant for every operand value.
func addChainSplit(t *Term) (base *Term, off *big.Int) {
	if t.op == OpAdd && t.args[1].op == OpConst {
		return t.args[0], t.args[1].val
	}
	return t, bigZero
}

var bigZero = new(big.Int)

// smax / smin are the extreme signed constants at width w.
func smax(w int) *big.Int {
	m := big.NewInt(1)
	m.Lsh(m, uint(w-1))
	return m.Sub(m, big.NewInt(1))
}

func smin(w int) *big.Int {
	m := big.NewInt(1)
	return m.Lsh(m, uint(w-1))
}

// rewriteNot simplifies ¬x; nil means no rule applies.
func (b *Builder) rewriteNot(x *Term) *Term {
	if x.op == OpConst {
		return b.hit(b.Const(new(big.Int).Xor(x.val, mask(x.width)), x.width))
	}
	if x.op == OpNot {
		return b.hit(x.args[0]) // ¬¬x = x
	}
	return nil
}

// rewriteNeg simplifies -x.
func (b *Builder) rewriteNeg(x *Term) *Term {
	if x.op == OpConst {
		return b.hit(b.Const(new(big.Int).Neg(x.val), x.width))
	}
	if x.op == OpNeg {
		return b.hit(x.args[0]) // -(-x) = x
	}
	if x.op == OpAdd && x.args[1].op == OpNeg {
		// -(a + (-b)) = b + (-a): keeps negated subtraction chains in
		// the add-normal form the OpSub rule produces, instead of
		// wrapping them in a fresh OpNeg node.
		return b.hit(b.Add(x.args[1].args[0], b.Neg(x.args[0])))
	}
	return nil
}

// rewriteITE simplifies ite(c, x, y).
func (b *Builder) rewriteITE(cond, x, y *Term) *Term {
	if cond.op == OpConst {
		if cond.val.Sign() != 0 {
			return b.hit(x)
		}
		return b.hit(y)
	}
	if x == y {
		return b.hit(x)
	}
	if x.width == 1 && x.op == OpConst && y.op == OpConst {
		// Boolean selection: ite(c, 1, 0) = c and ite(c, 0, 1) = ¬c.
		if x.val.Sign() != 0 {
			return b.hit(cond)
		}
		return b.hit(b.Not(cond))
	}
	if cond.op == OpNot {
		return b.hit(b.ITE(cond.args[0], y, x)) // ite(¬c, x, y) = ite(c, y, x)
	}
	return nil
}

// rewriteZExt / rewriteSExt fold constant extensions. Width-preserving
// extensions are handled by the constructors.
func (b *Builder) rewriteZExt(x *Term, w int) *Term {
	if x.op == OpConst {
		return b.hit(b.Const(x.val, w))
	}
	return nil
}

func (b *Builder) rewriteSExt(x *Term, w int) *Term {
	if x.op == OpConst {
		return b.hit(b.Const(toSigned(x.val, x.width), w))
	}
	return nil
}

// rewriteExtract folds extraction from constants and nested extracts.
func (b *Builder) rewriteExtract(x *Term, hi, lo int) *Term {
	if x.op == OpConst {
		return b.hit(b.Const(new(big.Int).Rsh(x.val, uint(lo)), hi-lo+1))
	}
	if x.op == OpExtract {
		// (extract hi lo (extract _ lo')) = extract (hi+lo') (lo+lo')
		return b.hit(b.Extract(x.args[0], hi+x.lo, lo+x.lo))
	}
	if x.op == OpConcat {
		// Distribute extract over concat when the range lies entirely in
		// one half, so the other half's circuit is never blasted. Ranges
		// spanning the seam are left alone.
		hiT, loT := x.args[0], x.args[1]
		if hi < loT.width {
			return b.hit(b.Extract(loT, hi, lo))
		}
		if lo >= loT.width {
			return b.hit(b.Extract(hiT, hi-loT.width, lo-loT.width))
		}
	}
	return nil
}

// absorbOr applies the absorption laws for a | other with other an
// And: a | (a & y) = a, and with a complemented factor,
// a | (¬a & y) = a | y. The second shape is how the checker's
// block-reachability joins look once one arm's guard negates the
// other's — the guard's whole cone on that side never blasts. Each
// rule strictly shrinks the tree, so the recursive rebuild terminates.
func (b *Builder) absorbOr(a, other *Term) *Term {
	if other.op != OpAnd {
		return nil
	}
	l, r := other.args[0], other.args[1]
	if l == a || r == a {
		return b.hit(a) // a | (a & y) = a
	}
	if complementary(l, a) {
		return b.hit(b.Or(a, r)) // a | (¬a & y) = a | y
	}
	if complementary(r, a) {
		return b.hit(b.Or(a, l))
	}
	return nil
}

// absorbAnd is the dual of absorbOr: a & (a | y) = a and
// a & (¬a | y) = a & y.
func (b *Builder) absorbAnd(a, other *Term) *Term {
	if other.op != OpOr {
		return nil
	}
	l, r := other.args[0], other.args[1]
	if l == a || r == a {
		return b.hit(a) // a & (a | y) = a
	}
	if complementary(l, a) {
		return b.hit(b.And(a, r)) // a & (¬a | y) = a & y
	}
	if complementary(r, a) {
		return b.hit(b.And(a, l))
	}
	return nil
}

// factorOr applies complementary factoring to x | y: when x = a & c
// and y = a & ¬c under any pairing of the And factors, x | y = a —
// bitwise, (a&c)|(a&¬c) = a&(c|¬c) = a&~0 = a at every width. This is
// the shape of a join block's reachability whose two in-edges carry a
// guard and its negation: the whole Or/And cone collapses to the
// common prefix and never blasts. Returns nil when the law does not
// apply; the caller records the hit.
func factorOr(x, y *Term) *Term {
	if x.op != OpAnd || y.op != OpAnd {
		return nil
	}
	for _, xp := range [2][2]*Term{{x.args[0], x.args[1]}, {x.args[1], x.args[0]}} {
		for _, yp := range [2][2]*Term{{y.args[0], y.args[1]}, {y.args[1], y.args[0]}} {
			if xp[0] == yp[0] && complementary(xp[1], yp[1]) {
				return xp[0] // (a & c) | (a & ¬c) = a
			}
		}
	}
	return nil
}

// factorAnd is the dual: (a | c) & (a | ¬c) = a.
func factorAnd(x, y *Term) *Term {
	if x.op != OpOr || y.op != OpOr {
		return nil
	}
	for _, xp := range [2][2]*Term{{x.args[0], x.args[1]}, {x.args[1], x.args[0]}} {
		for _, yp := range [2][2]*Term{{y.args[0], y.args[1]}, {y.args[1], y.args[0]}} {
			if xp[0] == yp[0] && complementary(xp[1], yp[1]) {
				return xp[0]
			}
		}
	}
	return nil
}

// rewriteConcat folds constant concatenation.
func (b *Builder) rewriteConcat(hi, lo *Term) *Term {
	if hi.op == OpConst && lo.op == OpConst {
		v := new(big.Int).Lsh(hi.val, uint(lo.width))
		v.Or(v, lo.val)
		return b.hit(b.Const(v, hi.width+lo.width))
	}
	return nil
}

// rewriteBinary simplifies a binary operation; nil means no rule
// applies and the caller interns a fresh node. The caller (binary) has
// already canonicalized commutative operations so that a lone constant
// operand sits on the right.
func (b *Builder) rewriteBinary(op Op, x, y *Term) *Term {
	cx, cy := x.op == OpConst, y.op == OpConst
	if cx && cy {
		return b.hit(b.evalConstBinary(op, x, y))
	}
	switch op {
	case OpAnd:
		if cy {
			if y.val.Sign() == 0 {
				return b.hit(y) // x & 0 = 0
			}
			if isAllOnes(y) {
				return b.hit(x) // x & ~0 = x
			}
		}
		if x == y {
			return b.hit(x) // x & x = x
		}
		if complementary(x, y) {
			return b.hit(b.Const(big.NewInt(0), x.width)) // x & ¬x = 0
		}
		if t := b.absorbAnd(x, y); t != nil {
			return t
		}
		if t := b.absorbAnd(y, x); t != nil {
			return t
		}
		if t := factorAnd(x, y); t != nil {
			return b.hit(t)
		}
		// One level of re-association: (p & q) & r factors r against
		// either conjunct, so chains built left-to-right still collapse.
		if x.op == OpAnd {
			if t := factorAnd(x.args[1], y); t != nil {
				return b.hit(b.And(x.args[0], t))
			}
			if t := factorAnd(x.args[0], y); t != nil {
				return b.hit(b.And(t, x.args[1]))
			}
		}
	case OpOr:
		if cy {
			if y.val.Sign() == 0 {
				return b.hit(x) // x | 0 = x
			}
			if isAllOnes(y) {
				return b.hit(y) // x | ~0 = ~0
			}
		}
		if x == y {
			return b.hit(x) // x | x = x
		}
		if complementary(x, y) {
			return b.hit(b.Const(mask(x.width), x.width)) // x | ¬x = ~0
		}
		if t := b.absorbOr(x, y); t != nil {
			return t
		}
		if t := b.absorbOr(y, x); t != nil {
			return t
		}
		if t := factorOr(x, y); t != nil {
			return b.hit(t)
		}
		// One level of re-association: (p | q) | r factors r against
		// either disjunct — the shape of a join block's reachability
		// folded over three or more predecessors.
		if x.op == OpOr {
			if t := factorOr(x.args[1], y); t != nil {
				return b.hit(b.Or(x.args[0], t))
			}
			if t := factorOr(x.args[0], y); t != nil {
				return b.hit(b.Or(t, x.args[1]))
			}
		}
	case OpXor:
		if x == y {
			return b.hit(b.Const(big.NewInt(0), x.width)) // x ^ x = 0
		}
		if cy {
			if y.val.Sign() == 0 {
				return b.hit(x) // x ^ 0 = x
			}
			if isAllOnes(y) {
				return b.hit(b.Not(x)) // x ^ ~0 = ¬x
			}
		}
		if complementary(x, y) {
			return b.hit(b.Const(mask(x.width), x.width)) // x ^ ¬x = ~0
		}
	case OpAdd:
		if cy && y.val.Sign() == 0 {
			return b.hit(x) // x + 0 = x
		}
		if cy && x.op == OpAdd && x.args[1].op == OpConst {
			// (a + c1) + c2 = a + (c1+c2): chain folding keeps long
			// pointer-arithmetic sums one node deep. Subtraction chains
			// funnel through here too, because the OpSub rule below
			// normalizes every x - c to x + (-c) before interning.
			c := new(big.Int).Add(x.args[1].val, y.val)
			return b.hit(b.Add(x.args[0], b.Const(c, x.width)))
		}
		if y.op == OpNeg {
			// (a + c1) + (-(a + c2)) = c1 - c2: a directly-built negated
			// add whose chain base matches the left operand — the shape
			// OpSub's normalization produces folds there, but the same
			// difference spelled with explicit Add/Neg lands here.
			bx, ox := addChainSplit(x)
			by, oy := addChainSplit(y.args[0])
			if bx == by {
				return b.hit(b.Const(new(big.Int).Sub(ox, oy), x.width))
			}
		}
		if x.op == OpNeg {
			// The mirror image: (-(a + c1)) + (a + c2) = c2 - c1.
			bx, ox := addChainSplit(x.args[0])
			by, oy := addChainSplit(y)
			if bx == by {
				return b.hit(b.Const(new(big.Int).Sub(oy, ox), x.width))
			}
		}
	case OpSub:
		if cy && y.val.Sign() == 0 {
			return b.hit(x) // x - 0 = x
		}
		if x == y {
			return b.hit(b.Const(big.NewInt(0), x.width)) // x - x = 0
		}
		if cx && x.val.Sign() == 0 {
			return b.hit(b.Neg(y)) // 0 - y = -y
		}
		if cy {
			// x - c = x + (-c): funnels constant subtraction into the
			// OpAdd chain-folding rules above.
			return b.hit(b.Add(x, b.Const(new(big.Int).Neg(y.val), x.width)))
		}
		// (a + c1) - (a + c2) = c1 - c2: both sides decompose over a
		// shared add-chain base, so the difference is a constant for
		// every value of a — the payoff of keeping sums in add-normal
		// form. Covers (a + c1) - a and a - (a + c2) too (offset 0).
		bx, ox := addChainSplit(x)
		by, oy := addChainSplit(y)
		if bx == by {
			return b.hit(b.Const(new(big.Int).Sub(ox, oy), x.width))
		}
		// x - y = x + (-y), both operands non-const: every subtraction
		// interns in add-normal form, so x - y and x + (-y) share one
		// node, mixed add/sub chains funnel through the OpAdd folding
		// rules, and the blaster sees one adder shape instead of two.
		return b.hit(b.Add(x, b.Neg(y)))
	case OpMul:
		if cy {
			if y.val.Sign() == 0 {
				return b.hit(y) // x * 0 = 0
			}
			if y.val.Cmp(big.NewInt(1)) == 0 {
				return b.hit(x) // x * 1 = x
			}
		}
	case OpUDiv:
		if cy && y.val.Cmp(big.NewInt(1)) == 0 {
			return b.hit(x) // x /u 1 = x
		}
	case OpURem:
		if cy && y.val.Cmp(big.NewInt(1)) == 0 {
			return b.hit(b.Const(big.NewInt(0), x.width)) // x %u 1 = 0
		}
	case OpShl, OpLShr:
		if cy {
			if y.val.Sign() == 0 {
				return b.hit(x) // x << 0 = x
			}
			if y.val.Cmp(big.NewInt(int64(x.width))) >= 0 {
				return b.hit(b.Const(big.NewInt(0), x.width)) // oversized shift = 0
			}
			if x.op == op && x.args[1].op == OpConst {
				// Shift-of-shift folding: (x ⋘ c1) ⋘ c2 = x ⋘ (c1+c2) for
				// same-direction shl/lshr. Both constants are < width here
				// (the oversized rule above fires first), so the sum cannot
				// wrap at the amount's width; an oversized sum folds to 0
				// through the recursive construction.
				sum := new(big.Int).Add(x.args[1].val, y.val)
				return b.hit(b.binary(op, x.args[0], b.Const(sum, x.width)))
			}
		}
	case OpAShr:
		if cy && y.val.Sign() == 0 {
			return b.hit(x)
		}
		if cy && x.op == OpAShr && x.args[1].op == OpConst {
			// (x >>a c1) >>a c2 = x >>a min(c1+c2, w): once the total
			// reaches the width the result is pure sign fill, which a
			// shift by exactly w also produces, so clamping keeps the
			// amount representable even when c1 or c2 is oversized.
			sum := new(big.Int).Add(x.args[1].val, y.val)
			if wBig := big.NewInt(int64(x.width)); sum.Cmp(wBig) >= 0 {
				sum = wBig
			}
			return b.hit(b.AShr(x.args[0], b.Const(sum, x.width)))
		}
	case OpEq:
		if x == y {
			return b.hit(b.Bool(true))
		}
		if x.width == 1 {
			if cy {
				if y.val.Sign() != 0 {
					return b.hit(x) // (x = true) = x
				}
				return b.hit(b.Not(x)) // (x = false) = ¬x
			}
		}
		if complementary(x, y) {
			return b.hit(b.Bool(false)) // x = ¬x is never true
		}
	case OpULE:
		if x == y {
			return b.hit(b.Bool(true))
		}
		if cx && x.val.Sign() == 0 {
			return b.hit(b.Bool(true)) // 0 <=u y
		}
		if cy && isAllOnes(y) {
			return b.hit(b.Bool(true)) // x <=u ~0
		}
		if cy && y.val.Sign() == 0 {
			return b.hit(b.Eq(x, y)) // x <=u 0 ⇔ x = 0
		}
	case OpULT:
		if x == y {
			return b.hit(b.Bool(false))
		}
		if cy && y.val.Sign() == 0 {
			return b.hit(b.Bool(false)) // x <u 0
		}
		if cx && isAllOnes(x) {
			return b.hit(b.Bool(false)) // ~0 <u y
		}
	case OpSLE:
		if x == y {
			return b.hit(b.Bool(true))
		}
		if cx && x.val.Cmp(smin(x.width)) == 0 {
			return b.hit(b.Bool(true)) // INT_MIN <=s y
		}
		if cy && y.val.Cmp(smax(y.width)) == 0 {
			return b.hit(b.Bool(true)) // x <=s INT_MAX
		}
	case OpSLT:
		if x == y {
			return b.hit(b.Bool(false))
		}
		if cy && y.val.Cmp(smin(y.width)) == 0 {
			return b.hit(b.Bool(false)) // x <s INT_MIN
		}
		if cx && x.val.Cmp(smax(x.width)) == 0 {
			return b.hit(b.Bool(false)) // INT_MAX <s y
		}
	}
	return nil
}

// evalConstBinary folds a binary operation over two constants. It is
// total: every op with constant operands folds.
func (b *Builder) evalConstBinary(op Op, x, y *Term) *Term {
	w := x.width
	xv, yv := x.val, y.val
	switch op {
	case OpAnd:
		return b.Const(new(big.Int).And(xv, yv), w)
	case OpOr:
		return b.Const(new(big.Int).Or(xv, yv), w)
	case OpXor:
		return b.Const(new(big.Int).Xor(xv, yv), w)
	case OpAdd:
		return b.Const(new(big.Int).Add(xv, yv), w)
	case OpSub:
		return b.Const(new(big.Int).Sub(xv, yv), w)
	case OpMul:
		return b.Const(new(big.Int).Mul(xv, yv), w)
	case OpUDiv:
		if yv.Sign() == 0 {
			return b.Const(mask(w), w)
		}
		return b.Const(new(big.Int).Div(xv, yv), w)
	case OpURem:
		if yv.Sign() == 0 {
			return b.Const(xv, w)
		}
		return b.Const(new(big.Int).Mod(xv, yv), w)
	case OpSDiv:
		xs, ys := toSigned(xv, w), toSigned(yv, w)
		if ys.Sign() == 0 {
			// SMT-LIB: bvsdiv by zero yields 1 if x negative else all-ones.
			if xs.Sign() < 0 {
				return b.Const(big.NewInt(1), w)
			}
			return b.Const(mask(w), w)
		}
		return b.Const(new(big.Int).Quo(xs, ys), w)
	case OpSRem:
		xs, ys := toSigned(xv, w), toSigned(yv, w)
		if ys.Sign() == 0 {
			return b.Const(xs, w)
		}
		return b.Const(new(big.Int).Rem(xs, ys), w)
	case OpShl:
		if yv.Cmp(big.NewInt(int64(w))) >= 0 {
			return b.Const(big.NewInt(0), w)
		}
		return b.Const(new(big.Int).Lsh(xv, uint(yv.Uint64())), w)
	case OpLShr:
		if yv.Cmp(big.NewInt(int64(w))) >= 0 {
			return b.Const(big.NewInt(0), w)
		}
		return b.Const(new(big.Int).Rsh(xv, uint(yv.Uint64())), w)
	case OpAShr:
		xs := toSigned(xv, w)
		sh := uint(w)
		if yv.Cmp(big.NewInt(int64(w))) < 0 {
			sh = uint(yv.Uint64())
		}
		if sh >= uint(w) {
			if xs.Sign() < 0 {
				return b.Const(mask(w), w)
			}
			return b.Const(big.NewInt(0), w)
		}
		return b.Const(new(big.Int).Rsh(xs, sh), w)
	case OpEq:
		return b.Bool(xv.Cmp(yv) == 0)
	case OpULT:
		return b.Bool(xv.Cmp(yv) < 0)
	case OpULE:
		return b.Bool(xv.Cmp(yv) <= 0)
	case OpSLT:
		return b.Bool(toSigned(xv, w).Cmp(toSigned(yv, w)) < 0)
	case OpSLE:
		return b.Bool(toSigned(xv, w).Cmp(toSigned(yv, w)) <= 0)
	}
	panic(fmt.Sprintf("bv: evalConstBinary: unexpected op %v", op))
}
