package bv

// Tests for the word-level rewrite engine. Every rule is verified two
// ways: structurally (the constructor returns the expected normal
// form) and semantically, against an independent concrete evaluator
// (the bv analogue of ir.Exec) on random operand values — a rewrite
// may only ever replace a term with one that evaluates identically for
// all inputs.

import (
	"math/big"
	"math/rand"
	"testing"
)

// evalTerm is the reference evaluator: concrete SMT-LIB QF_BV
// semantics over a variable assignment, written independently of the
// rewrite rules it checks.
func evalTerm(t *Term, env map[string]*big.Int) *big.Int {
	w := t.width
	switch t.op {
	case OpConst:
		return new(big.Int).Set(t.val)
	case OpVar:
		v, ok := env[t.name]
		if !ok {
			panic("evalTerm: unbound variable " + t.name)
		}
		return new(big.Int).And(new(big.Int).Set(v), mask(w))
	case OpNot:
		return new(big.Int).Xor(evalTerm(t.args[0], env), mask(w))
	case OpNeg:
		v := new(big.Int).Neg(evalTerm(t.args[0], env))
		return v.And(v.Add(v, new(big.Int).Lsh(big.NewInt(1), uint(w))), mask(w))
	case OpITE:
		if evalTerm(t.args[0], env).Sign() != 0 {
			return evalTerm(t.args[1], env)
		}
		return evalTerm(t.args[2], env)
	case OpZExt:
		return evalTerm(t.args[0], env)
	case OpSExt:
		x := t.args[0]
		return new(big.Int).And(toSigned(evalTerm(x, env), x.width), mask(w))
	case OpExtract:
		v := new(big.Int).Rsh(evalTerm(t.args[0], env), uint(t.lo))
		return v.And(v, mask(w))
	case OpConcat:
		hi := evalTerm(t.args[0], env)
		lo := evalTerm(t.args[1], env)
		return new(big.Int).Or(new(big.Int).Lsh(hi, uint(t.args[1].width)), lo)
	}
	x := evalTerm(t.args[0], env)
	y := evalTerm(t.args[1], env)
	return refBinary(t.op, t.args[0].width, x, y)
}

// refBinary applies a binary operation concretely at width w. Operands
// and result are normalized to [0, 2^w); comparison results are 0/1.
func refBinary(op Op, w int, x, y *big.Int) *big.Int {
	m := mask(w)
	norm := func(v *big.Int) *big.Int { return v.And(v, m) }
	fromBool := func(b bool) *big.Int {
		if b {
			return big.NewInt(1)
		}
		return big.NewInt(0)
	}
	switch op {
	case OpAnd:
		return new(big.Int).And(x, y)
	case OpOr:
		return new(big.Int).Or(x, y)
	case OpXor:
		return new(big.Int).Xor(x, y)
	case OpAdd:
		return norm(new(big.Int).Add(x, y))
	case OpSub:
		v := new(big.Int).Sub(x, y)
		return norm(v.Add(v, new(big.Int).Lsh(big.NewInt(1), uint(w))))
	case OpMul:
		return norm(new(big.Int).Mul(x, y))
	case OpUDiv:
		if y.Sign() == 0 {
			return new(big.Int).Set(m)
		}
		return new(big.Int).Div(x, y)
	case OpURem:
		if y.Sign() == 0 {
			return new(big.Int).Set(x)
		}
		return new(big.Int).Mod(x, y)
	case OpSDiv:
		xs, ys := toSigned(x, w), toSigned(y, w)
		if ys.Sign() == 0 {
			if xs.Sign() < 0 {
				return big.NewInt(1)
			}
			return new(big.Int).Set(m)
		}
		return norm(new(big.Int).Add(new(big.Int).Quo(xs, ys), new(big.Int).Lsh(big.NewInt(1), uint(w))))
	case OpSRem:
		xs, ys := toSigned(x, w), toSigned(y, w)
		if ys.Sign() == 0 {
			return norm(new(big.Int).Add(xs, new(big.Int).Lsh(big.NewInt(1), uint(w))))
		}
		return norm(new(big.Int).Add(new(big.Int).Rem(xs, ys), new(big.Int).Lsh(big.NewInt(1), uint(w))))
	case OpShl:
		if y.Cmp(big.NewInt(int64(w))) >= 0 {
			return big.NewInt(0)
		}
		return norm(new(big.Int).Lsh(x, uint(y.Uint64())))
	case OpLShr:
		if y.Cmp(big.NewInt(int64(w))) >= 0 {
			return big.NewInt(0)
		}
		return new(big.Int).Rsh(x, uint(y.Uint64()))
	case OpAShr:
		xs := toSigned(x, w)
		sh := uint(w)
		if y.Cmp(big.NewInt(int64(w))) < 0 {
			sh = uint(y.Uint64())
		}
		if sh >= uint(w) {
			if xs.Sign() < 0 {
				return new(big.Int).Set(m)
			}
			return big.NewInt(0)
		}
		return norm(new(big.Int).Add(new(big.Int).Rsh(xs, sh), new(big.Int).Lsh(big.NewInt(1), uint(w))))
	case OpEq:
		return fromBool(x.Cmp(y) == 0)
	case OpULT:
		return fromBool(x.Cmp(y) < 0)
	case OpULE:
		return fromBool(x.Cmp(y) <= 0)
	case OpSLT:
		return fromBool(toSigned(x, w).Cmp(toSigned(y, w)) < 0)
	case OpSLE:
		return fromBool(toSigned(x, w).Cmp(toSigned(y, w)) <= 0)
	}
	panic("refBinary: unexpected op " + op.String())
}

const ruleWidth = 8

// ruleTest exercises one rewrite rule: build constructs the expression
// through the Builder (triggering the rule), ref gives the intended
// concrete semantics of the *unrewritten* expression, and shape
// asserts the normal form.
type ruleTest struct {
	name  string
	build func(b *Builder, x, y *Term) *Term
	ref   func(x, y *big.Int) *big.Int
	shape func(b *Builder, x, y, got *Term) bool
}

func isConstVal(t *Term, v int64) bool {
	return t.op == OpConst && t.val.Cmp(new(big.Int).And(big.NewInt(v), mask(t.width))) == 0
}

var ruleTests = []ruleTest{
	// Identity / annihilator rules.
	{"and-zero", func(b *Builder, x, y *Term) *Term { return b.And(x, b.ConstInt64(0, ruleWidth)) },
		func(x, y *big.Int) *big.Int { return big.NewInt(0) },
		func(b *Builder, x, y, got *Term) bool { return isConstVal(got, 0) }},
	{"and-allones", func(b *Builder, x, y *Term) *Term { return b.And(x, b.ConstInt64(-1, ruleWidth)) },
		func(x, y *big.Int) *big.Int { return x },
		func(b *Builder, x, y, got *Term) bool { return got == x }},
	{"and-self", func(b *Builder, x, y *Term) *Term { return b.And(x, x) },
		func(x, y *big.Int) *big.Int { return x },
		func(b *Builder, x, y, got *Term) bool { return got == x }},
	{"and-complement", func(b *Builder, x, y *Term) *Term { return b.And(x, b.Not(x)) },
		func(x, y *big.Int) *big.Int { return big.NewInt(0) },
		func(b *Builder, x, y, got *Term) bool { return isConstVal(got, 0) }},
	{"or-zero", func(b *Builder, x, y *Term) *Term { return b.Or(x, b.ConstInt64(0, ruleWidth)) },
		func(x, y *big.Int) *big.Int { return x },
		func(b *Builder, x, y, got *Term) bool { return got == x }},
	{"or-allones", func(b *Builder, x, y *Term) *Term { return b.Or(x, b.ConstInt64(-1, ruleWidth)) },
		func(x, y *big.Int) *big.Int { return mask(ruleWidth) },
		func(b *Builder, x, y, got *Term) bool { return isAllOnes(got) }},
	{"or-self", func(b *Builder, x, y *Term) *Term { return b.Or(x, x) },
		func(x, y *big.Int) *big.Int { return x },
		func(b *Builder, x, y, got *Term) bool { return got == x }},
	{"or-complement", func(b *Builder, x, y *Term) *Term { return b.Or(x, b.Not(x)) },
		func(x, y *big.Int) *big.Int { return mask(ruleWidth) },
		func(b *Builder, x, y, got *Term) bool { return isAllOnes(got) }},
	{"xor-self", func(b *Builder, x, y *Term) *Term { return b.Xor(x, x) },
		func(x, y *big.Int) *big.Int { return big.NewInt(0) },
		func(b *Builder, x, y, got *Term) bool { return isConstVal(got, 0) }},
	{"xor-zero", func(b *Builder, x, y *Term) *Term { return b.Xor(x, b.ConstInt64(0, ruleWidth)) },
		func(x, y *big.Int) *big.Int { return x },
		func(b *Builder, x, y, got *Term) bool { return got == x }},
	{"xor-allones", func(b *Builder, x, y *Term) *Term { return b.Xor(x, b.ConstInt64(-1, ruleWidth)) },
		func(x, y *big.Int) *big.Int { return new(big.Int).Xor(x, mask(ruleWidth)) },
		func(b *Builder, x, y, got *Term) bool { return got.op == OpNot && got.args[0] == x }},
	{"xor-complement", func(b *Builder, x, y *Term) *Term { return b.Xor(x, b.Not(x)) },
		func(x, y *big.Int) *big.Int { return mask(ruleWidth) },
		func(b *Builder, x, y, got *Term) bool { return isAllOnes(got) }},

	// Absorption (both operand orders; the complemented-factor forms
	// are the shapes reachability joins collapse to).
	{"or-absorb", func(b *Builder, x, y *Term) *Term { return b.Or(x, b.And(x, y)) },
		func(x, y *big.Int) *big.Int { return x },
		func(b *Builder, x, y, got *Term) bool { return got == x }},
	{"or-absorb-swapped", func(b *Builder, x, y *Term) *Term { return b.Or(b.And(y, x), x) },
		func(x, y *big.Int) *big.Int { return x },
		func(b *Builder, x, y, got *Term) bool { return got == x }},
	{"or-absorb-complement", func(b *Builder, x, y *Term) *Term { return b.Or(x, b.And(b.Not(x), y)) },
		func(x, y *big.Int) *big.Int { return new(big.Int).Or(x, y) },
		func(b *Builder, x, y, got *Term) bool { return got == b.Or(x, y) }},
	{"or-absorb-complement-swapped", func(b *Builder, x, y *Term) *Term { return b.Or(b.And(y, b.Not(x)), x) },
		func(x, y *big.Int) *big.Int { return new(big.Int).Or(x, y) },
		func(b *Builder, x, y, got *Term) bool { return got == b.Or(x, y) }},
	{"and-absorb", func(b *Builder, x, y *Term) *Term { return b.And(x, b.Or(x, y)) },
		func(x, y *big.Int) *big.Int { return x },
		func(b *Builder, x, y, got *Term) bool { return got == x }},
	{"and-absorb-swapped", func(b *Builder, x, y *Term) *Term { return b.And(b.Or(y, x), x) },
		func(x, y *big.Int) *big.Int { return x },
		func(b *Builder, x, y, got *Term) bool { return got == x }},
	{"and-absorb-complement", func(b *Builder, x, y *Term) *Term { return b.And(x, b.Or(b.Not(x), y)) },
		func(x, y *big.Int) *big.Int { return new(big.Int).And(x, y) },
		func(b *Builder, x, y, got *Term) bool { return got == b.And(x, y) }},
	{"and-absorb-complement-swapped", func(b *Builder, x, y *Term) *Term { return b.And(b.Or(y, b.Not(x)), x) },
		func(x, y *big.Int) *big.Int { return new(big.Int).And(x, y) },
		func(b *Builder, x, y, got *Term) bool { return got == b.And(x, y) }},

	// Complementary factoring: a two-way reachability join collapses
	// to the shared path prefix, including through one level of
	// left-associated folding (three predecessors).
	{"or-factor", func(b *Builder, x, y *Term) *Term { return b.Or(b.And(x, y), b.And(x, b.Not(y))) },
		func(x, y *big.Int) *big.Int { return x },
		func(b *Builder, x, y, got *Term) bool { return got == x }},
	{"or-factor-swapped", func(b *Builder, x, y *Term) *Term { return b.Or(b.And(y, x), b.And(b.Not(y), x)) },
		func(x, y *big.Int) *big.Int { return x },
		func(b *Builder, x, y, got *Term) bool { return got == x }},
	{"or-factor-assoc", func(b *Builder, x, y *Term) *Term {
		// (p | (x & y)) | (x & ¬y) with p inert: the complementary pair
		// factors through the left-associated fold.
		return b.Or(b.Or(b.Xor(x, y), b.And(x, y)), b.And(x, b.Not(y)))
	},
		func(x, y *big.Int) *big.Int { return new(big.Int).Or(new(big.Int).Xor(x, y), x) },
		func(b *Builder, x, y, got *Term) bool { return got == b.Or(b.Xor(x, y), x) }},
	{"and-factor", func(b *Builder, x, y *Term) *Term { return b.And(b.Or(x, y), b.Or(x, b.Not(y))) },
		func(x, y *big.Int) *big.Int { return x },
		func(b *Builder, x, y, got *Term) bool { return got == x }},
	{"and-factor-swapped", func(b *Builder, x, y *Term) *Term { return b.And(b.Or(y, x), b.Or(b.Not(y), x)) },
		func(x, y *big.Int) *big.Int { return x },
		func(b *Builder, x, y, got *Term) bool { return got == x }},
	{"and-factor-assoc", func(b *Builder, x, y *Term) *Term {
		return b.And(b.And(b.Xor(x, y), b.Or(x, y)), b.Or(x, b.Not(y)))
	},
		func(x, y *big.Int) *big.Int { return new(big.Int).And(new(big.Int).Xor(x, y), x) },
		func(b *Builder, x, y, got *Term) bool { return got == b.And(b.Xor(x, y), x) }},

	// Double negation.
	{"not-not", func(b *Builder, x, y *Term) *Term { return b.Not(b.Not(x)) },
		func(x, y *big.Int) *big.Int { return x },
		func(b *Builder, x, y, got *Term) bool { return got == x }},
	{"neg-neg", func(b *Builder, x, y *Term) *Term { return b.Neg(b.Neg(x)) },
		func(x, y *big.Int) *big.Int { return x },
		func(b *Builder, x, y, got *Term) bool { return got == x }},
	{"neg-sub", func(b *Builder, x, y *Term) *Term { return b.Neg(b.Sub(x, y)) },
		func(x, y *big.Int) *big.Int { return refBinary(OpSub, ruleWidth, y, x) },
		func(b *Builder, x, y, got *Term) bool {
			// Sub interns in add-normal form, so -(x - y) normalizes to
			// y + (-x) through the neg-of-add-chain rule.
			return got.op == OpAdd && got.args[0] == y &&
				got.args[1].op == OpNeg && got.args[1].args[0] == x
		}},

	// Add/sub chain folding.
	{"add-zero", func(b *Builder, x, y *Term) *Term { return b.Add(x, b.ConstInt64(0, ruleWidth)) },
		func(x, y *big.Int) *big.Int { return x },
		func(b *Builder, x, y, got *Term) bool { return got == x }},
	{"add-chain", func(b *Builder, x, y *Term) *Term {
		return b.Add(b.Add(x, b.ConstInt64(5, ruleWidth)), b.ConstInt64(7, ruleWidth))
	},
		func(x, y *big.Int) *big.Int { return refBinary(OpAdd, ruleWidth, x, big.NewInt(12)) },
		func(b *Builder, x, y, got *Term) bool {
			return got.op == OpAdd && got.args[0] == x && isConstVal(got.args[1], 12)
		}},
	{"sub-as-add", func(b *Builder, x, y *Term) *Term { return b.Sub(x, b.ConstInt64(5, ruleWidth)) },
		func(x, y *big.Int) *big.Int { return refBinary(OpSub, ruleWidth, x, big.NewInt(5)) },
		func(b *Builder, x, y, got *Term) bool {
			return got.op == OpAdd && got.args[0] == x && isConstVal(got.args[1], -5)
		}},
	{"sub-add-chain", func(b *Builder, x, y *Term) *Term {
		return b.Add(b.Sub(x, b.ConstInt64(3, ruleWidth)), b.ConstInt64(10, ruleWidth))
	},
		func(x, y *big.Int) *big.Int { return refBinary(OpAdd, ruleWidth, x, big.NewInt(7)) },
		func(b *Builder, x, y, got *Term) bool {
			return got.op == OpAdd && got.args[0] == x && isConstVal(got.args[1], 7)
		}},
	{"sub-zero", func(b *Builder, x, y *Term) *Term { return b.Sub(x, b.ConstInt64(0, ruleWidth)) },
		func(x, y *big.Int) *big.Int { return x },
		func(b *Builder, x, y, got *Term) bool { return got == x }},
	{"sub-self", func(b *Builder, x, y *Term) *Term { return b.Sub(x, x) },
		func(x, y *big.Int) *big.Int { return big.NewInt(0) },
		func(b *Builder, x, y, got *Term) bool { return isConstVal(got, 0) }},
	{"zero-sub", func(b *Builder, x, y *Term) *Term { return b.Sub(b.ConstInt64(0, ruleWidth), x) },
		func(x, y *big.Int) *big.Int { return refBinary(OpSub, ruleWidth, big.NewInt(0), x) },
		func(b *Builder, x, y, got *Term) bool { return got.op == OpNeg && got.args[0] == x }},
	{"sub-nonconst", func(b *Builder, x, y *Term) *Term { return b.Sub(x, y) },
		func(x, y *big.Int) *big.Int { return refBinary(OpSub, ruleWidth, x, y) },
		func(b *Builder, x, y, got *Term) bool {
			// a - b normalizes to a + (-b) so subtraction shares the
			// add-chain node space.
			return got.op == OpAdd && got.args[0] == x &&
				got.args[1].op == OpNeg && got.args[1].args[0] == y
		}},
	{"sub-nonconst-shares-add", func(b *Builder, x, y *Term) *Term {
		sub := b.Sub(x, y)
		if sub != b.Add(x, b.Neg(y)) {
			// The two spellings must intern to the same node; returning
			// a distinct term here would fail the shape check below.
			return b.Const(big.NewInt(0), ruleWidth)
		}
		return sub
	},
		func(x, y *big.Int) *big.Int { return refBinary(OpSub, ruleWidth, x, y) },
		func(b *Builder, x, y, got *Term) bool { return got.op == OpAdd }},
	{"sub-neg-roundtrip", func(b *Builder, x, y *Term) *Term { return b.Sub(x, b.Neg(y)) },
		func(x, y *big.Int) *big.Int {
			return refBinary(OpAdd, ruleWidth, x, y) // x - (-y) = x + y
		},
		func(b *Builder, x, y, got *Term) bool {
			return got.op == OpAdd && got.args[0] == x && got.args[1] == y
		}},
	{"addchain-diff", func(b *Builder, x, y *Term) *Term {
		// (x + 9) - (x + 2) = 7 via the shared add-chain base.
		return b.Sub(b.Add(x, b.ConstInt64(9, ruleWidth)), b.Add(x, b.ConstInt64(2, ruleWidth)))
	},
		func(x, y *big.Int) *big.Int {
			return refBinary(OpSub, ruleWidth,
				refBinary(OpAdd, ruleWidth, x, big.NewInt(9)),
				refBinary(OpAdd, ruleWidth, x, big.NewInt(2)))
		},
		func(b *Builder, x, y, got *Term) bool { return isConstVal(got, 7) }},
	{"addchain-diff-bare-right", func(b *Builder, x, y *Term) *Term {
		// (x + 5) - x = 5: the bare side splits with offset 0.
		return b.Sub(b.Add(x, b.ConstInt64(5, ruleWidth)), x)
	},
		func(x, y *big.Int) *big.Int {
			return refBinary(OpSub, ruleWidth, refBinary(OpAdd, ruleWidth, x, big.NewInt(5)), x)
		},
		func(b *Builder, x, y, got *Term) bool { return isConstVal(got, 5) }},
	{"addchain-diff-bare-left", func(b *Builder, x, y *Term) *Term {
		// x - (x + 5) = -5.
		return b.Sub(x, b.Add(x, b.ConstInt64(5, ruleWidth)))
	},
		func(x, y *big.Int) *big.Int {
			return refBinary(OpSub, ruleWidth, x, refBinary(OpAdd, ruleWidth, x, big.NewInt(5)))
		},
		func(b *Builder, x, y, got *Term) bool { return isConstVal(got, -5) }},
	{"addchain-diff-wrap", func(b *Builder, x, y *Term) *Term {
		// Offsets that wrap at the width still fold exactly:
		// (x + 250) - (x + 3) = 247 mod 256.
		return b.Sub(b.Add(x, b.ConstInt64(250, ruleWidth)), b.Add(x, b.ConstInt64(3, ruleWidth)))
	},
		func(x, y *big.Int) *big.Int {
			return refBinary(OpSub, ruleWidth,
				refBinary(OpAdd, ruleWidth, x, big.NewInt(250)),
				refBinary(OpAdd, ruleWidth, x, big.NewInt(3)))
		},
		func(b *Builder, x, y, got *Term) bool { return isConstVal(got, 247) }},
	{"addchain-diff-neg-add", func(b *Builder, x, y *Term) *Term {
		// The same difference spelled with explicit Add/Neg nodes:
		// (x + 9) + (-(x + 2)) = 7.
		return b.Add(b.Add(x, b.ConstInt64(9, ruleWidth)), b.Neg(b.Add(x, b.ConstInt64(2, ruleWidth))))
	},
		func(x, y *big.Int) *big.Int {
			neg := new(big.Int).Neg(refBinary(OpAdd, ruleWidth, x, big.NewInt(2)))
			return refBinary(OpAdd, ruleWidth, refBinary(OpAdd, ruleWidth, x, big.NewInt(9)),
				neg.And(neg.Add(neg, new(big.Int).Lsh(big.NewInt(1), ruleWidth)), mask(ruleWidth)))
		},
		func(b *Builder, x, y, got *Term) bool { return isConstVal(got, 7) }},
	{"addchain-diff-neg-left", func(b *Builder, x, y *Term) *Term {
		// Mirror image: (-(x + 2)) + (x + 9) = 7.
		return b.Add(b.Neg(b.Add(x, b.ConstInt64(2, ruleWidth))), b.Add(x, b.ConstInt64(9, ruleWidth)))
	},
		func(x, y *big.Int) *big.Int {
			neg := new(big.Int).Neg(refBinary(OpAdd, ruleWidth, x, big.NewInt(2)))
			return refBinary(OpAdd, ruleWidth,
				neg.And(neg.Add(neg, new(big.Int).Lsh(big.NewInt(1), ruleWidth)), mask(ruleWidth)),
				refBinary(OpAdd, ruleWidth, x, big.NewInt(9)))
		},
		func(b *Builder, x, y, got *Term) bool { return isConstVal(got, 7) }},

	// Multiplicative / shift identities.
	{"mul-zero", func(b *Builder, x, y *Term) *Term { return b.Mul(x, b.ConstInt64(0, ruleWidth)) },
		func(x, y *big.Int) *big.Int { return big.NewInt(0) },
		func(b *Builder, x, y, got *Term) bool { return isConstVal(got, 0) }},
	{"mul-one", func(b *Builder, x, y *Term) *Term { return b.Mul(x, b.ConstInt64(1, ruleWidth)) },
		func(x, y *big.Int) *big.Int { return x },
		func(b *Builder, x, y, got *Term) bool { return got == x }},
	{"udiv-one", func(b *Builder, x, y *Term) *Term { return b.UDiv(x, b.ConstInt64(1, ruleWidth)) },
		func(x, y *big.Int) *big.Int { return x },
		func(b *Builder, x, y, got *Term) bool { return got == x }},
	{"urem-one", func(b *Builder, x, y *Term) *Term { return b.URem(x, b.ConstInt64(1, ruleWidth)) },
		func(x, y *big.Int) *big.Int { return big.NewInt(0) },
		func(b *Builder, x, y, got *Term) bool { return isConstVal(got, 0) }},
	{"shl-zero", func(b *Builder, x, y *Term) *Term { return b.Shl(x, b.ConstInt64(0, ruleWidth)) },
		func(x, y *big.Int) *big.Int { return x },
		func(b *Builder, x, y, got *Term) bool { return got == x }},
	{"shl-oversized", func(b *Builder, x, y *Term) *Term { return b.Shl(x, b.ConstInt64(ruleWidth, ruleWidth)) },
		func(x, y *big.Int) *big.Int { return big.NewInt(0) },
		func(b *Builder, x, y, got *Term) bool { return isConstVal(got, 0) }},
	{"lshr-oversized", func(b *Builder, x, y *Term) *Term { return b.LShr(x, b.ConstInt64(200, ruleWidth)) },
		func(x, y *big.Int) *big.Int { return big.NewInt(0) },
		func(b *Builder, x, y, got *Term) bool { return isConstVal(got, 0) }},
	{"ashr-zero", func(b *Builder, x, y *Term) *Term { return b.AShr(x, b.ConstInt64(0, ruleWidth)) },
		func(x, y *big.Int) *big.Int { return x },
		func(b *Builder, x, y, got *Term) bool { return got == x }},

	// Comparisons decided without the solver.
	{"eq-self", func(b *Builder, x, y *Term) *Term { return b.Eq(x, x) },
		func(x, y *big.Int) *big.Int { return big.NewInt(1) },
		func(b *Builder, x, y, got *Term) bool { return got.IsConstBool(true) }},
	{"ule-zero-left", func(b *Builder, x, y *Term) *Term { return b.ULE(b.ConstInt64(0, ruleWidth), x) },
		func(x, y *big.Int) *big.Int { return big.NewInt(1) },
		func(b *Builder, x, y, got *Term) bool { return got.IsConstBool(true) }},
	{"ule-allones-right", func(b *Builder, x, y *Term) *Term { return b.ULE(x, b.ConstInt64(-1, ruleWidth)) },
		func(x, y *big.Int) *big.Int { return big.NewInt(1) },
		func(b *Builder, x, y, got *Term) bool { return got.IsConstBool(true) }},
	{"ule-zero-right", func(b *Builder, x, y *Term) *Term { return b.ULE(x, b.ConstInt64(0, ruleWidth)) },
		func(x, y *big.Int) *big.Int { return refBinary(OpEq, ruleWidth, x, big.NewInt(0)) },
		func(b *Builder, x, y, got *Term) bool { return got.op == OpEq }},
	{"ult-zero", func(b *Builder, x, y *Term) *Term { return b.ULT(x, b.ConstInt64(0, ruleWidth)) },
		func(x, y *big.Int) *big.Int { return big.NewInt(0) },
		func(b *Builder, x, y, got *Term) bool { return got.IsConstBool(false) }},
	{"ult-allones-left", func(b *Builder, x, y *Term) *Term { return b.ULT(b.ConstInt64(-1, ruleWidth), x) },
		func(x, y *big.Int) *big.Int { return big.NewInt(0) },
		func(b *Builder, x, y, got *Term) bool { return got.IsConstBool(false) }},
	{"sle-intmax", func(b *Builder, x, y *Term) *Term { return b.SLE(x, b.Const(smax(ruleWidth), ruleWidth)) },
		func(x, y *big.Int) *big.Int { return big.NewInt(1) },
		func(b *Builder, x, y, got *Term) bool { return got.IsConstBool(true) }},
	{"sle-intmin-left", func(b *Builder, x, y *Term) *Term { return b.SLE(b.Const(smin(ruleWidth), ruleWidth), x) },
		func(x, y *big.Int) *big.Int { return big.NewInt(1) },
		func(b *Builder, x, y, got *Term) bool { return got.IsConstBool(true) }},
	{"slt-intmin", func(b *Builder, x, y *Term) *Term { return b.SLT(x, b.Const(smin(ruleWidth), ruleWidth)) },
		func(x, y *big.Int) *big.Int { return big.NewInt(0) },
		func(b *Builder, x, y, got *Term) bool { return got.IsConstBool(false) }},
	{"slt-intmax-left", func(b *Builder, x, y *Term) *Term { return b.SLT(b.Const(smax(ruleWidth), ruleWidth), x) },
		func(x, y *big.Int) *big.Int { return big.NewInt(0) },
		func(b *Builder, x, y, got *Term) bool { return got.IsConstBool(false) }},

	// Boolean-width equality and ITE normal forms.
	{"eq-bool-true", func(b *Builder, x, y *Term) *Term {
		c := b.Eq(x, y)
		return b.Eq(c, b.Bool(true))
	},
		func(x, y *big.Int) *big.Int { return refBinary(OpEq, ruleWidth, x, y) },
		func(b *Builder, x, y, got *Term) bool { return got == b.Eq(x, y) }},
	{"eq-bool-false", func(b *Builder, x, y *Term) *Term {
		c := b.Eq(x, y)
		return b.Eq(c, b.Bool(false))
	},
		func(x, y *big.Int) *big.Int {
			return new(big.Int).Xor(refBinary(OpEq, ruleWidth, x, y), big.NewInt(1))
		},
		func(b *Builder, x, y, got *Term) bool { return got.op == OpNot }},
	{"ite-const-cond", func(b *Builder, x, y *Term) *Term { return b.ITE(b.Bool(true), x, y) },
		func(x, y *big.Int) *big.Int { return x },
		func(b *Builder, x, y, got *Term) bool { return got == x }},
	{"ite-same-arms", func(b *Builder, x, y *Term) *Term { return b.ITE(b.Eq(x, y), x, x) },
		func(x, y *big.Int) *big.Int { return x },
		func(b *Builder, x, y, got *Term) bool { return got == x }},
	{"ite-bool-select", func(b *Builder, x, y *Term) *Term {
		return b.ITE(b.ULT(x, y), b.Bool(true), b.Bool(false))
	},
		func(x, y *big.Int) *big.Int { return refBinary(OpULT, ruleWidth, x, y) },
		func(b *Builder, x, y, got *Term) bool { return got == b.ULT(x, y) }},
	{"ite-bool-invert", func(b *Builder, x, y *Term) *Term {
		return b.ITE(b.ULT(x, y), b.Bool(false), b.Bool(true))
	},
		func(x, y *big.Int) *big.Int {
			return new(big.Int).Xor(refBinary(OpULT, ruleWidth, x, y), big.NewInt(1))
		},
		func(b *Builder, x, y, got *Term) bool { return got.op == OpNot || got.op == OpULE }},
	{"ite-not-cond", func(b *Builder, x, y *Term) *Term { return b.ITE(b.Not(b.Eq(x, y)), x, y) },
		func(x, y *big.Int) *big.Int {
			if x.Cmp(y) != 0 {
				return x
			}
			return y
		},
		func(b *Builder, x, y, got *Term) bool {
			return got.op == OpITE && got.args[0].op != OpNot
		}},

	// Extraction composition. The composed range [7:4] lies entirely in
	// the low half of the concat, so after the extracts merge the
	// extract-over-concat rule strips the concat as well.
	{"extract-extract", func(b *Builder, x, y *Term) *Term {
		return b.Extract(b.Extract(b.Concat(x, y), 11, 2), 5, 2)
	},
		func(x, y *big.Int) *big.Int {
			cat := new(big.Int).Or(new(big.Int).Lsh(x, ruleWidth), y)
			return new(big.Int).And(new(big.Int).Rsh(cat, 4), mask(4))
		},
		func(b *Builder, x, y, got *Term) bool {
			return got.op == OpExtract && got.args[0] == y && got.lo == 4
		}},
	{"extract-concat-low", func(b *Builder, x, y *Term) *Term {
		return b.Extract(b.Concat(x, y), 5, 2)
	},
		func(x, y *big.Int) *big.Int { return new(big.Int).And(new(big.Int).Rsh(y, 2), mask(4)) },
		func(b *Builder, x, y, got *Term) bool {
			return got.op == OpExtract && got.args[0] == y && got.lo == 2
		}},
	{"extract-concat-high", func(b *Builder, x, y *Term) *Term {
		return b.Extract(b.Concat(x, y), 13, 9)
	},
		func(x, y *big.Int) *big.Int { return new(big.Int).And(new(big.Int).Rsh(x, 1), mask(5)) },
		func(b *Builder, x, y, got *Term) bool {
			return got.op == OpExtract && got.args[0] == x && got.lo == 1
		}},

	// Shift-of-shift folding.
	{"shl-shl", func(b *Builder, x, y *Term) *Term {
		return b.Shl(b.Shl(x, b.ConstInt64(2, ruleWidth)), b.ConstInt64(3, ruleWidth))
	},
		func(x, y *big.Int) *big.Int {
			return refBinary(OpShl, ruleWidth, refBinary(OpShl, ruleWidth, x, big.NewInt(2)), big.NewInt(3))
		},
		func(b *Builder, x, y, got *Term) bool {
			return got.op == OpShl && got.args[0] == x && isConstVal(got.args[1], 5)
		}},
	{"lshr-lshr-oversized", func(b *Builder, x, y *Term) *Term {
		return b.LShr(b.LShr(x, b.ConstInt64(5, ruleWidth)), b.ConstInt64(4, ruleWidth))
	},
		func(x, y *big.Int) *big.Int { return big.NewInt(0) },
		func(b *Builder, x, y, got *Term) bool { return isConstVal(got, 0) }},
	{"ashr-ashr", func(b *Builder, x, y *Term) *Term {
		return b.AShr(b.AShr(x, b.ConstInt64(3, ruleWidth)), b.ConstInt64(4, ruleWidth))
	},
		func(x, y *big.Int) *big.Int {
			return refBinary(OpAShr, ruleWidth, refBinary(OpAShr, ruleWidth, x, big.NewInt(3)), big.NewInt(4))
		},
		func(b *Builder, x, y, got *Term) bool {
			return got.op == OpAShr && got.args[0] == x && isConstVal(got.args[1], 7)
		}},
	{"ashr-ashr-clamped", func(b *Builder, x, y *Term) *Term {
		return b.AShr(b.AShr(x, b.ConstInt64(6, ruleWidth)), b.ConstInt64(7, ruleWidth))
	},
		func(x, y *big.Int) *big.Int {
			return refBinary(OpAShr, ruleWidth, refBinary(OpAShr, ruleWidth, x, big.NewInt(6)), big.NewInt(7))
		},
		func(b *Builder, x, y, got *Term) bool {
			return got.op == OpAShr && got.args[0] == x && isConstVal(got.args[1], int64(ruleWidth))
		}},
}

func TestRewriteRules(t *testing.T) {
	rng := rand.New(rand.NewSource(20130324))
	for _, rt := range ruleTests {
		t.Run(rt.name, func(t *testing.T) {
			b := NewBuilder()
			x := b.Var("x", ruleWidth)
			y := b.Var("y", ruleWidth)
			before := b.RewriteHits
			got := rt.build(b, x, y)
			if b.RewriteHits == before {
				t.Errorf("rule did not register a rewrite hit")
			}
			if !rt.shape(b, x, y, got) {
				t.Errorf("unexpected normal form: %s", got)
			}
			// Concrete semantics on random inputs: the rewritten term
			// must agree with the reference meaning of the expression.
			for i := 0; i < 200; i++ {
				xv := big.NewInt(int64(rng.Intn(1 << ruleWidth)))
				yv := big.NewInt(int64(rng.Intn(1 << ruleWidth)))
				env := map[string]*big.Int{"x": xv, "y": yv}
				want := new(big.Int).And(rt.ref(xv, yv), mask(got.width))
				if have := evalTerm(got, env); have.Cmp(want) != 0 {
					t.Fatalf("x=%v y=%v: rewritten term = %v, reference = %v (term %s)",
						xv, yv, have, want, got)
				}
			}
		})
	}
}

// TestRewriteSoundnessRandom cross-checks the whole rewrite engine: it
// builds random binary expressions over operand shapes chosen to
// trigger the rules (variables, constants, negations, constant
// add-chains) and verifies the constructed term evaluates exactly like
// the unrewritten operation for every sampled assignment.
func TestRewriteSoundnessRandom(t *testing.T) {
	ops := []Op{OpAnd, OpOr, OpXor, OpAdd, OpSub, OpMul, OpUDiv, OpURem,
		OpSDiv, OpSRem, OpShl, OpLShr, OpAShr, OpEq, OpULT, OpULE, OpSLT, OpSLE}
	rng := rand.New(rand.NewSource(1))
	const w = 8
	b := NewBuilder()
	x := b.Var("x", w)
	y := b.Var("y", w)
	operand := func() *Term {
		switch rng.Intn(6) {
		case 0:
			return x
		case 1:
			return y
		case 2:
			return b.ConstInt64(int64(rng.Intn(1<<w)), w)
		case 3:
			return b.Not(x)
		case 4:
			return b.Add(x, b.ConstInt64(int64(rng.Intn(1<<w)), w))
		default:
			return b.Sub(y, b.ConstInt64(int64(rng.Intn(1<<w)), w))
		}
	}
	apply := func(op Op, u, v *Term) *Term {
		switch op {
		case OpAnd:
			return b.And(u, v)
		case OpOr:
			return b.Or(u, v)
		case OpXor:
			return b.Xor(u, v)
		case OpAdd:
			return b.Add(u, v)
		case OpSub:
			return b.Sub(u, v)
		case OpMul:
			return b.Mul(u, v)
		case OpUDiv:
			return b.UDiv(u, v)
		case OpURem:
			return b.URem(u, v)
		case OpSDiv:
			return b.SDiv(u, v)
		case OpSRem:
			return b.SRem(u, v)
		case OpShl:
			return b.Shl(u, v)
		case OpLShr:
			return b.LShr(u, v)
		case OpAShr:
			return b.AShr(u, v)
		case OpEq:
			return b.Eq(u, v)
		case OpULT:
			return b.ULT(u, v)
		case OpULE:
			return b.ULE(u, v)
		case OpSLT:
			return b.SLT(u, v)
		case OpSLE:
			return b.SLE(u, v)
		}
		panic("unreachable")
	}
	for iter := 0; iter < 500; iter++ {
		for _, op := range ops {
			u, v := operand(), operand()
			got := apply(op, u, v)
			env := map[string]*big.Int{
				"x": big.NewInt(int64(rng.Intn(1 << w))),
				"y": big.NewInt(int64(rng.Intn(1 << w))),
			}
			want := refBinary(op, w, evalTerm(u, env), evalTerm(v, env))
			if have := evalTerm(got, env); have.Cmp(want) != 0 {
				t.Fatalf("%v(%s, %s) rewrote unsoundly: env=%v got=%v want=%v (term %s)",
					op, u, v, env, have, want, got)
			}
		}
	}
	if b.RewriteHits == 0 {
		t.Error("random construction triggered no rewrites")
	}
}

// TestSolverConstFastPath: queries whose assumptions fold to constants
// are answered without touching the SAT core.
func TestSolverConstFastPath(t *testing.T) {
	b := NewBuilder()
	s := NewSolver(b)
	x := b.Var("x", 8)
	vars0, clauses0 := s.Stats()

	// x <u 0 folds to false: Unsat with no SAT work.
	if got := s.Solve(b.ULT(x, b.ConstInt64(0, 8))); got != Unsat {
		t.Fatalf("const-false assumption: %v, want unsat", got)
	}
	// 0 <=u x folds to true and nothing is asserted: Sat with no SAT work.
	if got := s.Solve(b.ULE(b.ConstInt64(0, 8), x)); got != Sat {
		t.Fatalf("const-true assumption: %v, want sat", got)
	}
	if s.FastPaths != 2 {
		t.Errorf("FastPaths = %d, want 2", s.FastPaths)
	}
	if vars, clauses := s.Stats(); vars != vars0 || clauses != clauses0 {
		t.Errorf("SAT instance grew (%d→%d vars, %d→%d clauses) on constant queries",
			vars0, vars, clauses0, clauses)
	}

	// SolveCore must identify the constant-false assumption as the core.
	tru := b.Eq(x, x)
	fls := b.ULT(x, b.ConstInt64(0, 8))
	res, core := s.SolveCore(tru, fls)
	if res != Unsat || len(core) != 1 || core[0] != 1 {
		t.Errorf("SolveCore = %v %v, want unsat with core [1]", res, core)
	}

	// A real (non-constant) query must still reach the SAT core.
	if got := s.Solve(b.Eq(x, b.ConstInt64(3, 8))); got != Sat {
		t.Fatalf("x = 3: %v, want sat", got)
	}
	if v := s.Value(x).Int64(); v != 3 {
		t.Errorf("model x = %d, want 3", v)
	}
}
