package bv

// Incremental assumption-based solving sessions. The STACK checker
// issues its queries in closely related pairs per candidate (the
// reachability query, then the "optimization-safe?" query over the same
// function encoding, then the Fig. 8 masking loop over the same
// assumption terms), so the encoding work is shared almost entirely
// between queries. A Session exploits that: it keeps one SAT core and
// one term→CNF cache alive for the whole sequence, blasts each shared
// term exactly once, retains learned clauses across queries, and
// answers every query under assumptions (the sat.SolveAssuming
// interface) instead of rebuilding the solver.
//
// The same type also provides the non-incremental reference semantics
// the differential test layer compares against: with Scratch set, every
// query gets a fresh SAT core and a fresh blaster, exactly as if the
// query were the first one ever issued. Verdicts must be identical in
// both modes — only the work differs — and tests assert as much.

import (
	"context"
	"math/big"
	"time"
)

// Session answers a sequence of related satisfiability queries over
// terms from one Builder. The zero value is not usable; call
// NewSession. Like Solver, a Session is not safe for concurrent use.
type Session struct {
	bld *Builder
	// Scratch disables incremental reuse: each query is decided by a
	// fresh solver over a fresh CNF encoding. This is the reference
	// execution mode for differential testing and the baseline of
	// BenchmarkIncrementalVsScratch; verdicts are identical to
	// incremental mode, only the cost differs.
	Scratch bool
	// Timeout and MaxConflicts bound each query, as on Solver.
	Timeout      time.Duration
	MaxConflicts int64
	// LearntBudget, when positive, bounds the learned clauses the
	// incremental solver carries from one query into the next: after
	// each query the learnt database is trimmed toward the budget
	// (locked and binary clauses always survive; see
	// sat.Solver.TrimLearnts). Mid-search reduceDB trims by activity
	// during a single query; the budget bounds what outlives the query,
	// keeping a long session's memory proportional to the budget rather
	// than to its history. Zero means unbounded (the historical
	// behavior). Ignored in Scratch mode, where nothing outlives a
	// query anyway.
	LearntBudget int

	inc *Solver // lazily created incremental solver (nil in Scratch mode)
	cur *Solver // solver that produced the last verdict, for model access

	// Queries counts Solve/SolveCore calls; Timeouts counts Unknown
	// verdicts; FastPaths counts queries answered from constant
	// assumptions without CDCL search.
	Queries   int64
	Timeouts  int64
	FastPaths int64
	// BlastPasses counts queries that had to lower at least one new
	// term to CNF. Queries/BlastPasses is the amortization ratio: in
	// Scratch mode every SAT-core query is a blast pass, while an
	// incremental session front-loads the encoding and answers later
	// queries (the Δ query of a pair, the masking loop) from cache.
	BlastPasses int64
	// LearntsReused sums, over all queries, the learned clauses already
	// retained when the query started — the conflict knowledge reused
	// instead of rediscovered. Always zero in Scratch mode.
	LearntsReused int64

	scratchBlasts int64 // terms blasted by discarded scratch solvers
	scratchDrops  int64 // learnts dropped by discarded scratch solvers
}

// NewSession returns a session for terms created by bld.
func NewSession(bld *Builder) *Session {
	return &Session{bld: bld}
}

// Builder returns the term builder this session is bound to.
func (s *Session) Builder() *Builder { return s.bld }

// solverForQuery returns the solver the next query runs on: the shared
// incremental solver, or a fresh one per query in Scratch mode.
func (s *Session) solverForQuery() *Solver {
	if s.Scratch {
		if s.cur != nil {
			s.scratchBlasts += s.cur.Blasts()
			s.scratchDrops += s.cur.LearntsDropped()
		}
		sv := NewSolver(s.bld)
		sv.Timeout = s.Timeout
		sv.MaxConflicts = s.MaxConflicts
		return sv
	}
	if s.inc == nil {
		s.inc = NewSolver(s.bld)
	}
	s.inc.Timeout = s.Timeout
	s.inc.MaxConflicts = s.MaxConflicts
	return s.inc
}

// account folds one query's effort deltas into the session counters.
func (s *Session) account(sv *Solver, blastsBefore int64, fastBefore, timeoutsBefore int64, learntsBefore int) {
	s.Queries++
	s.FastPaths += sv.FastPaths - fastBefore
	s.Timeouts += sv.Timeouts - timeoutsBefore
	if sv.Blasts() > blastsBefore {
		s.BlastPasses++
	}
	s.LearntsReused += int64(learntsBefore)
	s.cur = sv
	if s.LearntBudget > 0 && !s.Scratch {
		sv.TrimLearnts(s.LearntBudget)
	}
}

// Solve decides whether all assumption terms are jointly satisfiable,
// reusing the session's encoding and learned clauses (or from scratch
// when Scratch is set). Assumptions are not retained across calls.
func (s *Session) Solve(assumptions ...*Term) Result {
	return s.SolveContext(context.Background(), assumptions...)
}

// SolveContext is Solve under a caller-supplied context: once ctx is
// cancelled or past its deadline the query returns Unknown within one
// solver check interval, and every later query on the session
// short-circuits before blasting. The checker threads its per-request
// context through here, down to the CDCL search loop.
func (s *Session) SolveContext(ctx context.Context, assumptions ...*Term) Result {
	sv := s.solverForQuery()
	blasts, fast, timeouts, learnts := sv.Blasts(), sv.FastPaths, sv.Timeouts, sv.LearnedClauses()
	res := sv.SolveContext(ctx, assumptions...)
	s.account(sv, blasts, fast, timeouts, learnts)
	return res
}

// SolveCore is Solve plus, on Unsat, the subset of assumption indices
// sufficient for the conflict, as on Solver.SolveCore.
func (s *Session) SolveCore(assumptions ...*Term) (Result, []int) {
	return s.SolveCoreContext(context.Background(), assumptions...)
}

// SolveCoreContext is SolveCore under a caller-supplied context, with
// the cancellation contract of SolveContext.
func (s *Session) SolveCoreContext(ctx context.Context, assumptions ...*Term) (Result, []int) {
	sv := s.solverForQuery()
	blasts, fast, timeouts, learnts := sv.Blasts(), sv.FastPaths, sv.Timeouts, sv.LearnedClauses()
	res, core := sv.SolveCoreContext(ctx, assumptions...)
	s.account(sv, blasts, fast, timeouts, learnts)
	return res, core
}

// HasModel reports whether the last verdict carries a model.
func (s *Session) HasModel() bool { return s.cur != nil && s.cur.HasModel() }

// Value returns the value of t under the model of the last Sat verdict;
// it panics (like Solver.Value) when no model is available.
func (s *Session) Value(t *Term) *big.Int {
	if s.cur == nil {
		panic("bv: Value called on a session with no queries")
	}
	return s.cur.Value(t)
}

// ValueBool returns the boolean model value of a width-1 term.
func (s *Session) ValueBool(t *Term) bool { return s.Value(t).Sign() != 0 }

// Blasts returns the total number of terms the session lowered to CNF,
// summed over every solver it ran (one for the whole session when
// incremental; one per query in Scratch mode).
func (s *Session) Blasts() int64 {
	n := s.scratchBlasts
	if s.inc != nil {
		n += s.inc.Blasts()
	}
	if s.Scratch && s.cur != nil {
		n += s.cur.Blasts()
	}
	return n
}

// LearntsDropped returns the learned clauses discarded over the
// session's lifetime, by mid-search database reductions and by the
// session's LearntBudget trims.
func (s *Session) LearntsDropped() int64 {
	n := s.scratchDrops
	if s.inc != nil {
		n += s.inc.LearntsDropped()
	}
	if s.Scratch && s.cur != nil {
		n += s.cur.LearntsDropped()
	}
	return n
}

// Stats reports sizes of the SAT instance behind the last query.
func (s *Session) Stats() (vars, clauses int) {
	if s.cur == nil {
		return 0, 0
	}
	return s.cur.Stats()
}
