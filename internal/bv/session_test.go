package bv

import (
	"context"
	"testing"
	"time"
)

// TestSessionIncrementalAmortizesBlasting: a query sequence over one
// shared encoding must blast each term once in incremental mode, while
// scratch mode re-encodes per query — with identical verdicts.
func TestSessionIncrementalAmortizesBlasting(t *testing.T) {
	bld := NewBuilder()
	x := bld.Var("x", 8)
	y := bld.Var("y", 8)
	sum := bld.Add(x, y)
	// A query pair in the checker's shape: a reachability-style predicate,
	// then a Δ-style refinement over the same encoding, then masking
	// variants that reuse every term.
	q1 := bld.ULT(sum, bld.ConstInt64(200, 8))
	q2 := bld.Eq(sum, bld.ConstInt64(10, 8))
	q3 := bld.ULT(x, bld.ConstInt64(5, 8))

	inc := NewSession(bld)
	scr := NewSession(bld)
	scr.Scratch = true

	queries := [][]*Term{{q1}, {q1, q2}, {q1, q2, q3}, {q2, q3}, {q1}}
	for i, q := range queries {
		ri, rs := inc.Solve(q...), scr.Solve(q...)
		if ri != rs {
			t.Fatalf("query %d: incremental=%v scratch=%v", i, ri, rs)
		}
		if ri != Sat {
			t.Fatalf("query %d: %v, want sat", i, ri)
		}
		if inc.HasModel() && i >= 1 && i <= 3 { // queries that include q2
			if v := inc.Value(sum); v.Int64() != 10 {
				t.Fatalf("query %d: model sum=%v violates q2", i, v)
			}
		}
	}
	if inc.Queries != int64(len(queries)) || scr.Queries != int64(len(queries)) {
		t.Fatalf("query counts: inc=%d scr=%d want %d", inc.Queries, scr.Queries, len(queries))
	}
	if inc.Blasts() >= scr.Blasts() {
		t.Errorf("incremental blasted %d terms, scratch %d; reuse not happening", inc.Blasts(), scr.Blasts())
	}
	// The repeat of q1 (all terms cached) must not count as a blast pass.
	if inc.BlastPasses >= inc.Queries {
		t.Errorf("blast passes %d not amortized over %d queries", inc.BlastPasses, inc.Queries)
	}
	if scr.BlastPasses != scr.Queries {
		t.Errorf("scratch blast passes %d, want one per query (%d)", scr.BlastPasses, scr.Queries)
	}
	if scr.LearntsReused != 0 {
		t.Errorf("scratch reused %d learned clauses, want 0", scr.LearntsReused)
	}
}

// TestSessionUnsatCoreMatchesScratch: SolveCore verdicts and fast-path
// accounting agree between the modes, and unsat cores identify the
// same contradictory assumptions on propagation-decided queries.
func TestSessionUnsatCoreMatchesScratch(t *testing.T) {
	bld := NewBuilder()
	x := bld.Var("x", 8)
	lt := bld.ULT(x, bld.ConstInt64(4, 8))
	ge := bld.ULE(bld.ConstInt64(7, 8), x)
	mid := bld.Eq(bld.And(x, bld.ConstInt64(0xF0, 8)), bld.ConstInt64(0, 8))

	for _, scratch := range []bool{false, true} {
		s := NewSession(bld)
		s.Scratch = scratch
		res, core := s.SolveCore(mid, lt, ge)
		if res != Unsat {
			t.Fatalf("scratch=%v: %v, want unsat", scratch, res)
		}
		has := map[int]bool{}
		for _, i := range core {
			has[i] = true
		}
		if !has[1] || !has[2] {
			t.Errorf("scratch=%v: core %v misses the contradictory pair {1,2}", scratch, core)
		}
		// The session stays usable after Unsat.
		if res := s.Solve(mid, lt); res != Sat {
			t.Fatalf("scratch=%v: follow-up query %v, want sat", scratch, res)
		}
		if v := s.Value(x); v.Int64() >= 4 {
			t.Errorf("scratch=%v: model x=%v violates x<4", scratch, v)
		}
	}
}

// hardQuery builds a query far beyond the solver's reach: 16-bit
// multiplication distributivity, a classic CDCL-hostile instance. Its
// only fast exit is an interrupt. (Commutativity x*y ≠ y*x, the usual
// choice, no longer works: chain canonicalization interns both
// products to one node and the query folds to false at construction.)
func hardQuery(bld *Builder) *Term {
	x := bld.Var("hardx", 16)
	y := bld.Var("hardy", 16)
	z := bld.Var("hardz", 16)
	lhs := bld.Mul(x, bld.Add(y, z))
	rhs := bld.Add(bld.Mul(x, y), bld.Mul(x, z))
	return bld.Ne(lhs, rhs)
}

// TestSessionContextCancellation: a long query under a context that is
// cancelled mid-search returns Unknown promptly — within one solver
// check interval, not after the search would have finished — and every
// later query on the cancelled context short-circuits.
func TestSessionContextCancellation(t *testing.T) {
	bld := NewBuilder()
	q := hardQuery(bld)
	s := NewSession(bld)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	done := make(chan Result, 1)
	go func() { done <- s.SolveContext(ctx, q) }()
	select {
	case res := <-done:
		if res != Unknown {
			t.Fatalf("cancelled long query returned %v, want unknown", res)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("cancelled query did not return within 15s")
	}
	if ctx.Err() == nil {
		t.Fatal("test bug: context not cancelled")
	}
	if s.Timeouts != 1 {
		t.Errorf("Timeouts = %d, want 1 (cancellation counts as an Unknown verdict)", s.Timeouts)
	}

	// Follow-up queries on the dead context return immediately,
	// without blasting: this is what lets a cancelled checker drain
	// its remaining candidates in microseconds.
	start := time.Now()
	if res := s.SolveContext(ctx, bld.Eq(bld.Var("z", 8), bld.ConstInt64(1, 8))); res != Unknown {
		t.Errorf("query on cancelled context returned %v, want unknown", res)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("query on cancelled context took %v; must short-circuit", d)
	}
}

// TestSessionContextDeadline: a context deadline bounds a query the
// same way the legacy wall-clock timeout did.
func TestSessionContextDeadline(t *testing.T) {
	bld := NewBuilder()
	q := hardQuery(bld)
	s := NewSession(bld)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	done := make(chan Result, 1)
	go func() { done <- s.SolveContext(ctx, q) }()
	select {
	case res := <-done:
		if res != Unknown {
			t.Fatalf("deadline-bounded long query returned %v, want unknown", res)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("deadline-bounded query did not return within 15s")
	}
}

// TestSessionTimeoutField: the per-query Timeout knob still works,
// now implemented as a derived context deadline.
func TestSessionTimeoutField(t *testing.T) {
	bld := NewBuilder()
	q := hardQuery(bld)
	s := NewSession(bld)
	s.Timeout = 100 * time.Millisecond
	done := make(chan Result, 1)
	go func() { done <- s.Solve(q) }()
	select {
	case res := <-done:
		if res != Unknown {
			t.Fatalf("timed-out long query returned %v, want unknown", res)
		}
		if s.Timeouts != 1 {
			t.Errorf("Timeouts = %d, want 1", s.Timeouts)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("timed-out query did not return within 15s")
	}
}

// TestSessionFastPathNoModel: constant queries are answered without a
// SAT core in both modes and carry no model.
func TestSessionFastPathNoModel(t *testing.T) {
	bld := NewBuilder()
	x := bld.Var("x", 8)
	for _, scratch := range []bool{false, true} {
		s := NewSession(bld)
		s.Scratch = scratch
		if got := s.Solve(bld.ULE(bld.ConstInt64(0, 8), x)); got != Sat {
			t.Fatalf("scratch=%v: const-true: %v", scratch, got)
		}
		if s.HasModel() {
			t.Errorf("scratch=%v: fast-path Sat claims a model", scratch)
		}
		if got := s.Solve(bld.ULT(x, bld.ConstInt64(0, 8))); got != Unsat {
			t.Fatalf("scratch=%v: const-false: %v", scratch, got)
		}
		if s.FastPaths != 2 {
			t.Errorf("scratch=%v: FastPaths=%d, want 2", scratch, s.FastPaths)
		}
		if s.BlastPasses != 0 {
			t.Errorf("scratch=%v: fast paths blasted terms (%d passes)", scratch, s.BlastPasses)
		}
	}
}
