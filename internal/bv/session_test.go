package bv

import (
	"testing"
)

// TestSessionIncrementalAmortizesBlasting: a query sequence over one
// shared encoding must blast each term once in incremental mode, while
// scratch mode re-encodes per query — with identical verdicts.
func TestSessionIncrementalAmortizesBlasting(t *testing.T) {
	bld := NewBuilder()
	x := bld.Var("x", 8)
	y := bld.Var("y", 8)
	sum := bld.Add(x, y)
	// A query pair in the checker's shape: a reachability-style predicate,
	// then a Δ-style refinement over the same encoding, then masking
	// variants that reuse every term.
	q1 := bld.ULT(sum, bld.ConstInt64(200, 8))
	q2 := bld.Eq(sum, bld.ConstInt64(10, 8))
	q3 := bld.ULT(x, bld.ConstInt64(5, 8))

	inc := NewSession(bld)
	scr := NewSession(bld)
	scr.Scratch = true

	queries := [][]*Term{{q1}, {q1, q2}, {q1, q2, q3}, {q2, q3}, {q1}}
	for i, q := range queries {
		ri, rs := inc.Solve(q...), scr.Solve(q...)
		if ri != rs {
			t.Fatalf("query %d: incremental=%v scratch=%v", i, ri, rs)
		}
		if ri != Sat {
			t.Fatalf("query %d: %v, want sat", i, ri)
		}
		if inc.HasModel() && i >= 1 && i <= 3 { // queries that include q2
			if v := inc.Value(sum); v.Int64() != 10 {
				t.Fatalf("query %d: model sum=%v violates q2", i, v)
			}
		}
	}
	if inc.Queries != int64(len(queries)) || scr.Queries != int64(len(queries)) {
		t.Fatalf("query counts: inc=%d scr=%d want %d", inc.Queries, scr.Queries, len(queries))
	}
	if inc.Blasts() >= scr.Blasts() {
		t.Errorf("incremental blasted %d terms, scratch %d; reuse not happening", inc.Blasts(), scr.Blasts())
	}
	// The repeat of q1 (all terms cached) must not count as a blast pass.
	if inc.BlastPasses >= inc.Queries {
		t.Errorf("blast passes %d not amortized over %d queries", inc.BlastPasses, inc.Queries)
	}
	if scr.BlastPasses != scr.Queries {
		t.Errorf("scratch blast passes %d, want one per query (%d)", scr.BlastPasses, scr.Queries)
	}
	if scr.LearntsReused != 0 {
		t.Errorf("scratch reused %d learned clauses, want 0", scr.LearntsReused)
	}
}

// TestSessionUnsatCoreMatchesScratch: SolveCore verdicts and fast-path
// accounting agree between the modes, and unsat cores identify the
// same contradictory assumptions on propagation-decided queries.
func TestSessionUnsatCoreMatchesScratch(t *testing.T) {
	bld := NewBuilder()
	x := bld.Var("x", 8)
	lt := bld.ULT(x, bld.ConstInt64(4, 8))
	ge := bld.ULE(bld.ConstInt64(7, 8), x)
	mid := bld.Eq(bld.And(x, bld.ConstInt64(0xF0, 8)), bld.ConstInt64(0, 8))

	for _, scratch := range []bool{false, true} {
		s := NewSession(bld)
		s.Scratch = scratch
		res, core := s.SolveCore(mid, lt, ge)
		if res != Unsat {
			t.Fatalf("scratch=%v: %v, want unsat", scratch, res)
		}
		has := map[int]bool{}
		for _, i := range core {
			has[i] = true
		}
		if !has[1] || !has[2] {
			t.Errorf("scratch=%v: core %v misses the contradictory pair {1,2}", scratch, core)
		}
		// The session stays usable after Unsat.
		if res := s.Solve(mid, lt); res != Sat {
			t.Fatalf("scratch=%v: follow-up query %v, want sat", scratch, res)
		}
		if v := s.Value(x); v.Int64() >= 4 {
			t.Errorf("scratch=%v: model x=%v violates x<4", scratch, v)
		}
	}
}

// TestSessionFastPathNoModel: constant queries are answered without a
// SAT core in both modes and carry no model.
func TestSessionFastPathNoModel(t *testing.T) {
	bld := NewBuilder()
	x := bld.Var("x", 8)
	for _, scratch := range []bool{false, true} {
		s := NewSession(bld)
		s.Scratch = scratch
		if got := s.Solve(bld.ULE(bld.ConstInt64(0, 8), x)); got != Sat {
			t.Fatalf("scratch=%v: const-true: %v", scratch, got)
		}
		if s.HasModel() {
			t.Errorf("scratch=%v: fast-path Sat claims a model", scratch)
		}
		if got := s.Solve(bld.ULT(x, bld.ConstInt64(0, 8))); got != Unsat {
			t.Fatalf("scratch=%v: const-false: %v", scratch, got)
		}
		if s.FastPaths != 2 {
			t.Errorf("scratch=%v: FastPaths=%d, want 2", scratch, s.FastPaths)
		}
		if s.BlastPasses != 0 {
			t.Errorf("scratch=%v: fast paths blasted terms (%d passes)", scratch, s.BlastPasses)
		}
	}
}
