package bv

import (
	"context"
	"math/big"
	"time"

	"repro/internal/sat"
)

// Result is the verdict of a satisfiability query.
type Result int

// Query verdicts.
const (
	Unknown Result = iota // solver timed out or exhausted its budget
	Sat
	Unsat
)

func (r Result) String() string {
	switch r {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

// Solver decides satisfiability of width-1 terms by bit-blasting into
// a CDCL SAT solver. A Solver accumulates the blasted formula across
// calls; terms from the same Builder share structure, so incremental
// use is cheap. It intentionally mirrors the slice of the Boolector
// API that STACK used: assert, solve-under-assumptions, model values,
// failed assumptions, and a per-query timeout.
type Solver struct {
	bld *Builder
	sat *sat.Solver
	bl  *blaster
	// Timeout bounds each Solve call; zero means no deadline. STACK's
	// evaluation (paper §6.4) used 5 seconds.
	Timeout time.Duration
	// MaxConflicts optionally bounds solver effort deterministically
	// (useful in tests and benchmarks); zero means unbounded.
	MaxConflicts int64
	// Queries counts Solve calls; Timeouts counts Unknown verdicts.
	// FastPaths counts queries answered from constant assumptions
	// (produced by the rewrite engine) without running CDCL search.
	Queries   int64
	Timeouts  int64
	FastPaths int64

	asserted   bool              // a permanent constraint has been added
	modelValid bool              // last verdict was Sat from a real SAT run
	assumed    map[*Term]sat.Lit // activation literal per assumed term
}

// NewSolver returns a solver for terms created by bld.
func NewSolver(bld *Builder) *Solver {
	s := sat.New()
	return &Solver{
		bld:     bld,
		sat:     s,
		bl:      newBlaster(s),
		assumed: make(map[*Term]sat.Lit),
	}
}

// Builder returns the term builder this solver is bound to.
func (s *Solver) Builder() *Builder { return s.bld }

// litFor blasts a width-1 term and returns its literal.
func (s *Solver) litFor(t *Term) sat.Lit {
	if t.Width() != 1 {
		panic("bv: satisfiability query on non-boolean term")
	}
	return s.bl.blast(s.bld, t)[0]
}

// Assert permanently constrains t (width 1) to be true.
func (s *Solver) Assert(t *Term) {
	if t.IsConstBool(true) {
		return // vacuous
	}
	s.asserted = true
	s.sat.AddClause(s.litFor(t))
}

// constShortcut inspects the assumptions for a verdict that needs no
// SAT search: any constant-false assumption makes the query Unsat (the
// index of the first one is returned as its core), and if every
// assumption is constant true and nothing has been asserted the query
// is trivially Sat. The third return is false when the SAT core must
// run after all.
func (s *Solver) constShortcut(assumptions []*Term) (Result, []int, bool) {
	allTrue := true
	for i, t := range assumptions {
		if t.IsConstBool(false) {
			s.FastPaths++
			return Unsat, []int{i}, true
		}
		if !t.IsConstBool(true) {
			allTrue = false
		}
	}
	if allTrue && !s.asserted {
		s.FastPaths++
		return Sat, nil, true
	}
	return Unknown, nil, false
}

// queryContext prepares the SAT core for one query under ctx: the
// solver's per-query Timeout becomes a context deadline layered over
// the caller's context, so cancellation and wall-clock budget flow
// through one mechanism. The returned cancel func must be called when
// the query finishes to release the deadline timer.
func (s *Solver) queryContext(ctx context.Context) context.CancelFunc {
	cancel := func() {}
	if s.Timeout > 0 {
		if ctx == nil {
			ctx = context.Background()
		}
		ctx, cancel = context.WithTimeout(ctx, s.Timeout)
	}
	s.sat.Ctx = ctx
	s.sat.MaxConflicts = s.MaxConflicts
	return cancel
}

// cancelled reports (and accounts for) a query aborted by its context
// before reaching the SAT core.
func (s *Solver) cancelled(ctx context.Context) bool {
	if ctx != nil && ctx.Err() != nil {
		s.Timeouts++
		return true
	}
	return false
}

// Solve decides whether the permanent assertions plus all assumption
// terms are jointly satisfiable. Assumptions are not retained across
// calls. It is SolveContext without a cancellation context.
//
// Queries whose assumptions the rewrite engine reduced to constants are
// answered directly, without bit-blasting or CDCL search. Such a Sat
// verdict carries no model: the model accessors (Value, ValueBool)
// panic unless the last verdict was a Sat produced by the SAT core.
func (s *Solver) Solve(assumptions ...*Term) Result {
	return s.SolveContext(context.Background(), assumptions...)
}

// SolveContext is Solve under a caller-supplied context: the query
// returns Unknown promptly (within one solver check interval) once ctx
// is cancelled or passes its deadline, and an already-cancelled context
// short-circuits before any bit-blasting.
func (s *Solver) SolveContext(ctx context.Context, assumptions ...*Term) Result {
	s.Queries++
	s.modelValid = false
	if res, _, ok := s.constShortcut(assumptions); ok {
		return res
	}
	if s.cancelled(ctx) {
		return Unknown
	}
	lits := make([]sat.Lit, 0, len(assumptions))
	for _, t := range assumptions {
		if t.IsConstBool(true) {
			continue // vacuous under any model
		}
		lits = append(lits, s.litFor(t))
	}
	cancel := s.queryContext(ctx)
	defer cancel()
	switch s.sat.Solve(lits...) {
	case sat.Sat:
		s.modelValid = true
		return Sat
	case sat.Unsat:
		return Unsat
	default:
		s.Timeouts++
		return Unknown
	}
}

// Value returns the value of term t under the model of the last Sat
// verdict. Calling it in any other state — including after a Sat
// decided by the constant fast path, which has no model — is a caller
// bug and panics rather than returning stale bits.
//
// Variables and constants that were not part of the solved query (for
// example a variable the rewrite engine folded out of every
// assumption) are unconstrained by the model; their free bits read as
// zero, a don't-care completion that satisfies the query like any
// other. A *composite* term that was never blasted has no meaningful
// model value — its defining clauses postdate the model — so asking
// for one panics instead of returning bits that violate the term's own
// semantics.
func (s *Solver) Value(t *Term) *big.Int {
	if !s.modelValid {
		panic("bv: Value called without a model (last verdict was not a SAT-core Sat)")
	}
	if t.op != OpVar && t.op != OpConst && !s.bl.has(t) {
		panic("bv: Value of a composite term that was not part of the solved query")
	}
	lits := s.bl.blast(s.bld, t)
	v := new(big.Int)
	for i, l := range lits {
		bit := s.sat.ModelValue(l.Var())
		if l.Neg() {
			bit = !bit
		}
		if bit {
			v.SetBit(v, i, 1)
		}
	}
	return v
}

// ValueBool returns the boolean model value of a width-1 term.
func (s *Solver) ValueBool(t *Term) bool {
	return s.Value(t).Sign() != 0
}

// SolveCore is Solve plus, on Unsat, the subset of assumption indices
// that were sufficient for the conflict (a non-minimal unsat core). It
// is the primitive STACK's minimal-UB-set masking loop builds on.
func (s *Solver) SolveCore(assumptions ...*Term) (Result, []int) {
	return s.SolveCoreContext(context.Background(), assumptions...)
}

// SolveCoreContext is SolveCore under a caller-supplied context, with
// the same cancellation contract as SolveContext.
func (s *Solver) SolveCoreContext(ctx context.Context, assumptions ...*Term) (Result, []int) {
	s.Queries++
	s.modelValid = false
	if res, core, ok := s.constShortcut(assumptions); ok {
		return res, core
	}
	if s.cancelled(ctx) {
		return Unknown, nil
	}
	lits := make([]sat.Lit, len(assumptions))
	for i, t := range assumptions {
		lits[i] = s.litFor(t)
	}
	cancel := s.queryContext(ctx)
	defer cancel()
	switch s.sat.Solve(lits...) {
	case sat.Sat:
		s.modelValid = true
		return Sat, nil
	case sat.Unsat:
		failed := s.sat.FailedAssumptions()
		inCore := make(map[sat.Lit]bool, len(failed))
		for _, l := range failed {
			inCore[l] = true
		}
		var idx []int
		for i, l := range lits {
			if inCore[l] {
				idx = append(idx, i)
			}
		}
		return Unsat, idx
	default:
		s.Timeouts++
		return Unknown, nil
	}
}

// Stats reports sizes of the underlying SAT instance.
func (s *Solver) Stats() (vars, clauses int) {
	return s.sat.NumVars(), s.sat.NumClauses()
}

// Blasts returns the number of terms this solver has lowered to CNF.
// Terms are blasted at most once per solver; the ratio of queries to
// blasts measures how much encoding work incremental use amortizes.
func (s *Solver) Blasts() int64 { return s.bl.blasts }

// HasModel reports whether the last verdict was a Sat produced by the
// SAT core, i.e. whether Value/ValueBool may be called. Fast-path Sat
// verdicts (constant assumptions) carry no model.
func (s *Solver) HasModel() bool { return s.modelValid }

// LearnedClauses returns the number of learned clauses currently
// retained by the SAT core. They persist across Solve calls, so this is
// the conflict knowledge the next query starts from.
func (s *Solver) LearnedClauses() int { return s.sat.NumLearnts() }

// TrimLearnts shrinks the SAT core's learned-clause database toward
// target between queries (see sat.Solver.TrimLearnts). Sessions with a
// LearntBudget call this after every query.
func (s *Solver) TrimLearnts(target int) { s.sat.TrimLearnts(target) }

// LearntsDropped returns the learned clauses the SAT core has discarded
// over its lifetime (mid-search reductions plus TrimLearnts calls).
func (s *Solver) LearntsDropped() int64 { return s.sat.LearntsDropped }
