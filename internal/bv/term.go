// Package bv implements a quantifier-free bit-vector (QF_BV) constraint
// solver in the style of Boolector [Brummayer & Biere 2009], which the
// STACK paper used to decide its elimination and simplification queries.
//
// Terms form a hash-consed DAG built through a Builder. Satisfiability
// of a boolean term (width 1) is decided by Tseitin bit-blasting to CNF
// and handing the clauses to the CDCL solver in internal/sat. The
// solver supports solving under assumptions — the mechanism STACK's
// minimal-UB-condition algorithm (paper Fig. 8) relies on — and
// per-query deadlines matching the paper's 5-second query timeout.
package bv

import (
	"fmt"
	"math/big"
	"strings"
)

// Op enumerates bit-vector operations.
type Op uint8

// Term operations. Width rules follow SMT-LIB QF_BV.
const (
	OpConst Op = iota // constant, value in Term.val
	OpVar             // free variable, name in Term.name

	// Bitwise.
	OpNot
	OpAnd
	OpOr
	OpXor

	// Arithmetic (two's complement).
	OpNeg
	OpAdd
	OpSub
	OpMul
	OpUDiv // unsigned division; x/0 = all-ones (SMT-LIB)
	OpURem // unsigned remainder; x%0 = x (SMT-LIB)
	OpSDiv
	OpSRem

	// Shifts. The shift amount is the full value of the second operand.
	OpShl
	OpLShr
	OpAShr

	// Comparisons (result width 1).
	OpEq
	OpULT
	OpULE
	OpSLT
	OpSLE

	// Structural.
	OpITE     // ite(cond₁, a, b)
	OpZExt    // zero-extend to Term.width
	OpSExt    // sign-extend to Term.width
	OpExtract // bits [lo, lo+width) of operand; lo in Term.lo
	OpConcat  // hi ++ lo
)

var opNames = map[Op]string{
	OpConst: "const", OpVar: "var", OpNot: "bvnot", OpAnd: "bvand",
	OpOr: "bvor", OpXor: "bvxor", OpNeg: "bvneg", OpAdd: "bvadd",
	OpSub: "bvsub", OpMul: "bvmul", OpUDiv: "bvudiv", OpURem: "bvurem",
	OpSDiv: "bvsdiv", OpSRem: "bvsrem", OpShl: "bvshl", OpLShr: "bvlshr",
	OpAShr: "bvashr", OpEq: "=", OpULT: "bvult", OpULE: "bvule",
	OpSLT: "bvslt", OpSLE: "bvsle", OpITE: "ite", OpZExt: "zero_extend",
	OpSExt: "sign_extend", OpExtract: "extract", OpConcat: "concat",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Term is a node in the hash-consed term DAG. Terms are immutable and
// must be created through a Builder; pointer equality is semantic
// equality of the construction.
type Term struct {
	op    Op
	width int
	args  []*Term
	val   *big.Int // OpConst only; normalized to [0, 2^width)
	name  string   // OpVar only
	lo    int      // OpExtract only
	id    int      // unique per Builder, for deterministic maps
}

// Op returns the term's operation.
func (t *Term) Op() Op { return t.op }

// Width returns the bit width of the term. Boolean terms have width 1.
func (t *Term) Width() int { return t.width }

// Args returns the operand terms. Callers must not modify the slice.
func (t *Term) Args() []*Term { return t.args }

// Name returns the variable name of an OpVar term.
func (t *Term) Name() string { return t.name }

// ID returns a builder-unique identifier, usable as a map key proxy.
func (t *Term) ID() int { return t.id }

// ConstValue returns the value of an OpConst term (nil otherwise).
func (t *Term) ConstValue() *big.Int {
	if t.op != OpConst {
		return nil
	}
	return new(big.Int).Set(t.val)
}

// IsConstBool reports whether t is the constant 1-bit value b.
func (t *Term) IsConstBool(b bool) bool {
	if t.op != OpConst || t.width != 1 {
		return false
	}
	return (t.val.Sign() != 0) == b
}

// String renders the term in an SMT-LIB-like prefix syntax, useful in
// bug reports and debugging. Shared subterms are re-rendered (the
// output is a tree view of the DAG).
func (t *Term) String() string {
	var b strings.Builder
	t.render(&b, 0)
	return b.String()
}

const maxRenderDepth = 64

func (t *Term) render(b *strings.Builder, depth int) {
	if depth > maxRenderDepth {
		b.WriteString("...")
		return
	}
	switch t.op {
	case OpConst:
		fmt.Fprintf(b, "#x%0*x", (t.width+3)/4, t.val)
	case OpVar:
		b.WriteString(t.name)
	case OpExtract:
		fmt.Fprintf(b, "((_ extract %d %d) ", t.lo+t.width-1, t.lo)
		t.args[0].render(b, depth+1)
		b.WriteByte(')')
	case OpZExt, OpSExt:
		fmt.Fprintf(b, "((_ %s %d) ", t.op, t.width-t.args[0].width)
		t.args[0].render(b, depth+1)
		b.WriteByte(')')
	default:
		b.WriteByte('(')
		b.WriteString(t.op.String())
		for _, a := range t.args {
			b.WriteByte(' ')
			a.render(b, depth+1)
		}
		b.WriteByte(')')
	}
}
