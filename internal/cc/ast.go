package cc

// This file defines the abstract syntax tree. Every expression node
// carries the position of its principal token and, when produced by a
// macro expansion, the originating macro name (Token.Origin propagated
// by the parser) — the information STACK's report generator uses to
// suppress warnings about compiler-generated code (paper §4.2/§4.5).

// Node is implemented by all AST nodes.
type Node interface {
	Position() Pos
}

type node struct {
	Pos    Pos
	Origin string // macro name if macro-expanded
}

func (n node) Position() Pos { return n.Pos }

// MacroOrigin returns the macro that produced this node, or "".
func (n node) MacroOrigin() string { return n.Origin }

// --- Expressions ----------------------------------------------------------

// Expr is implemented by all expression nodes. After type checking,
// ExprType returns the node's C type.
type Expr interface {
	Node
	ExprType() *Type
	setType(*Type)
	isExpr()
}

type exprNode struct {
	node
	Type *Type
}

func (e *exprNode) ExprType() *Type { return e.Type }
func (e *exprNode) setType(t *Type) { e.Type = t }
func (e *exprNode) isExpr()         {}

// IntLit is an integer or character literal.
type IntLit struct {
	exprNode
	Value int64
	// Unsigned/Long suffixes recorded during parsing to pick the type.
	Unsigned bool
	Long     bool
}

// StrLit is a string literal; it has type char* in this subset.
type StrLit struct {
	exprNode
	Value string
}

// Ident is a variable or function reference.
type Ident struct {
	exprNode
	Name string
}

// Unary is a prefix unary operation: - + ! ~ * & ++ --.
type Unary struct {
	exprNode
	Op string
	X  Expr
}

// Postfix is x++ or x--.
type Postfix struct {
	exprNode
	Op string
	X  Expr
}

// Binary is a binary operation (arithmetic, relational, logical,
// bitwise, shifts). Assignment is Assign; && and || are here with
// short-circuit semantics handled by the IR builder.
type Binary struct {
	exprNode
	Op   string
	X, Y Expr
}

// Assign is x = y or a compound assignment (op nonempty, e.g. "+").
type Assign struct {
	exprNode
	Op   string // "" for plain =
	X, Y Expr
}

// Cond is c ? a : b.
type Cond struct {
	exprNode
	C, X, Y Expr
}

// Call is a function call; in this subset callees are identifiers.
type Call struct {
	exprNode
	Func string
	Args []Expr
}

// Index is a[i].
type Index struct {
	exprNode
	X, I Expr
}

// Member is x.f (Arrow false) or x->f (Arrow true).
type Member struct {
	exprNode
	X     Expr
	Field string
	Arrow bool
}

// Cast is (T)x.
type Cast struct {
	exprNode
	To *Type
	X  Expr
}

// SizeofExpr is sizeof(T) or sizeof expr; resolved to a constant by
// the type checker.
type SizeofExpr struct {
	exprNode
	OfType *Type // non-nil for sizeof(T)
	X      Expr  // non-nil for sizeof expr
}

// --- Statements -----------------------------------------------------------

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	isStmt()
}

type stmtNode struct{ node }

func (s stmtNode) isStmt() {}

// Block is { ... }.
type Block struct {
	stmtNode
	Stmts []Stmt
}

// DeclStmt declares a local variable, optionally initialized.
type DeclStmt struct {
	stmtNode
	Name string
	Type *Type
	Init Expr // may be nil
}

// ExprStmt evaluates an expression for side effects.
type ExprStmt struct {
	stmtNode
	X Expr
}

// If is if (Cond) Then else Else.
type If struct {
	stmtNode
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// While is while (Cond) Body; DoWhile distinguishes do { } while.
type While struct {
	stmtNode
	Cond    Expr
	Body    Stmt
	DoWhile bool
}

// For is for (Init; Cond; Post) Body; any part may be nil.
type For struct {
	stmtNode
	Init Stmt // DeclStmt or ExprStmt
	Cond Expr
	Post Expr
	Body Stmt
}

// Return is return [expr].
type Return struct {
	stmtNode
	X Expr // may be nil
}

// Break and Continue are loop controls.
type Break struct{ stmtNode }

// Continue continues the innermost loop.
type Continue struct{ stmtNode }

// Empty is a lone semicolon.
type Empty struct{ stmtNode }

// --- Top level --------------------------------------------------------------

// Param is a function parameter.
type Param struct {
	Name string
	Type *Type
}

// FuncDecl is a function definition.
type FuncDecl struct {
	node
	Name   string
	Ret    *Type
	Params []Param
	Body   *Block // nil for a prototype
	Inline bool   // declared inline (inlining candidate)
	Static bool
}

// VarDecl is a global variable declaration.
type VarDecl struct {
	node
	Name string
	Type *Type
	Init Expr
}

// StructDecl is a struct definition.
type StructDecl struct {
	node
	Type *Type // Kind == TypeStruct
}

// TypedefDecl names a type.
type TypedefDecl struct {
	node
	Name string
	Type *Type
}

// File is one translation unit.
type File struct {
	Name     string
	Funcs    []*FuncDecl
	Vars     []*VarDecl
	Structs  []*StructDecl
	Typedefs []*TypedefDecl
}

// Lookup returns the function with the given name, or nil.
func (f *File) Lookup(name string) *FuncDecl {
	for _, fn := range f.Funcs {
		if fn.Name == name {
			return fn
		}
	}
	return nil
}
