package cc

import (
	"fmt"
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse("test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := Check(f); err != nil {
		t.Fatalf("check: %v", err)
	}
	return f
}

func TestLexBasics(t *testing.T) {
	toks, err := Tokenize("t.c", "int x = 0x1F + 'a'; // comment\n/* multi\nline */ x <<= 2;")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		if tok.Kind == TokEOF {
			break
		}
		texts = append(texts, tok.Text)
	}
	want := []string{"int", "x", "=", "0x1F", "+", "'a'", ";", "x", "<<=", "2", ";"}
	if strings.Join(texts, " ") != strings.Join(want, " ") {
		t.Fatalf("got %v, want %v", texts, want)
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Tokenize("t.c", "a\nbb ccc")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[1].Pos.Line != 2 || toks[2].Pos.Line != 2 {
		t.Fatalf("line tracking wrong: %v %v %v", toks[0].Pos, toks[1].Pos, toks[2].Pos)
	}
	if toks[2].Pos.Col != 4 {
		t.Fatalf("col tracking wrong: %v", toks[2].Pos)
	}
}

func TestLexLineContinuation(t *testing.T) {
	toks, err := Tokenize("t.c", "ab\\\ncd")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "abcd" {
		t.Fatalf("continuation not joined: %q", toks[0].Text)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Tokenize("t.c", "\"unterminated"); err == nil {
		t.Fatal("want error for unterminated string")
	}
	if _, err := Tokenize("t.c", "@"); err == nil {
		t.Fatal("want error for bad character")
	}
}

func TestPreprocessObjectMacro(t *testing.T) {
	pp := NewPreprocessor()
	toks, err := pp.Preprocess("t.c", "#define N 42\nint x = N;")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tok := range toks {
		if tok.Text == "42" {
			found = true
			if tok.Origin != "N" {
				t.Fatalf("expanded token origin = %q, want N", tok.Origin)
			}
		}
		if tok.Text == "N" {
			t.Fatal("macro name leaked into output")
		}
	}
	if !found {
		t.Fatal("expansion missing")
	}
}

func TestPreprocessFunctionMacro(t *testing.T) {
	pp := NewPreprocessor()
	src := "#define IS_A(p) (p != 0 && p)\nint f(int q) { return IS_A(q); }"
	toks, err := pp.Preprocess("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, tok := range toks {
		if tok.Kind == TokEOF {
			break
		}
		out = append(out, tok.Text)
	}
	joined := strings.Join(out, " ")
	if !strings.Contains(joined, "( q != 0 && q )") {
		t.Fatalf("expansion wrong: %s", joined)
	}
	// All expanded tokens carry the macro origin.
	for _, tok := range toks {
		if tok.Text == "!=" && tok.Origin != "IS_A" {
			t.Fatalf("origin = %q, want IS_A", tok.Origin)
		}
	}
}

func TestPreprocessNestedMacros(t *testing.T) {
	pp := NewPreprocessor()
	src := "#define A B\n#define B 7\nint x = A;"
	toks, err := pp.Preprocess("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks {
		if tok.Text == "7" {
			// Outermost user-written macro wins.
			if tok.Origin != "A" {
				t.Fatalf("origin = %q, want A", tok.Origin)
			}
			return
		}
	}
	t.Fatal("nested expansion missing")
}

func TestPreprocessRecursionGuard(t *testing.T) {
	pp := NewPreprocessor()
	src := "#define X X\nint X = 1;"
	toks, err := pp.Preprocess("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, tok := range toks {
		if tok.Text == "X" {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("self-referential macro expanded %d times", n)
	}
}

// TestPreprocessRunawayExpansionBounded: a mutually recursive doubling
// chain ("billion laughs") must hit the expansion budget and error
// instead of exhausting memory — the hide set alone only stops direct
// self-reference.
func TestPreprocessRunawayExpansionBounded(t *testing.T) {
	var src strings.Builder
	// A0 -> A1 A1 -> ... -> A29 A29 -> 2^29 tokens without a budget.
	const n = 30
	for i := 0; i < n-1; i++ {
		fmt.Fprintf(&src, "#define A%d A%d A%d\n", i, i+1, i+1)
	}
	fmt.Fprintf(&src, "#define A%d x\n", n-1)
	src.WriteString("int y = A0;\n")
	_, err := NewPreprocessor().Preprocess("bomb.c", src.String())
	if err == nil {
		t.Fatal("exponential macro expansion succeeded; budget not enforced")
	}
	if !strings.Contains(err.Error(), "runaway expansion") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestPreprocessBudgetSparesMacroFreeTokens: ordinary source tokens
// must not consume the expansion budget; only expansion-produced
// tokens are charged.
func TestPreprocessBudgetSparesMacroFreeTokens(t *testing.T) {
	pp := NewPreprocessor()
	if _, err := pp.Preprocess("plain.c", "int a; int b; int c;\n"); err != nil {
		t.Fatal(err)
	}
	if pp.expansions != 0 {
		t.Fatalf("macro-free source charged %d expansion tokens", pp.expansions)
	}
	pp = NewPreprocessor()
	if _, err := pp.Preprocess("m.c", "#define TWO 1 + 1\nint a = TWO;\n"); err != nil {
		t.Fatal(err)
	}
	if pp.expansions == 0 {
		t.Fatal("macro body tokens not charged to the budget")
	}
}

func TestPreprocessConditionals(t *testing.T) {
	pp := NewPreprocessor()
	src := `#define FOO
#ifdef FOO
int a;
#else
int b;
#endif
#ifndef FOO
int c;
#endif
`
	toks, err := pp.Preprocess("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, tok := range toks {
		if tok.Kind == TokIdent {
			names = append(names, tok.Text)
		}
	}
	if strings.Join(names, ",") != "a" {
		t.Fatalf("conditional inclusion wrong: %v", names)
	}
}

func TestPreprocessUndef(t *testing.T) {
	pp := NewPreprocessor()
	src := "#define N 1\n#undef N\nint N;"
	toks, err := pp.Preprocess("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tok := range toks {
		if tok.Text == "N" && tok.Kind == TokIdent {
			found = true
		}
	}
	if !found {
		t.Fatal("undef did not stop expansion")
	}
}

func TestParseSimpleFunction(t *testing.T) {
	f := mustParse(t, `
int add(int a, int b) {
	return a + b;
}
`)
	fn := f.Lookup("add")
	if fn == nil || len(fn.Params) != 2 {
		t.Fatalf("bad function: %+v", fn)
	}
	if !fn.Ret.Same(Int) {
		t.Fatalf("ret type %v", fn.Ret)
	}
	ret := fn.Body.Stmts[0].(*Return)
	if !ret.X.ExprType().Same(Int) {
		t.Fatalf("return expr type %v", ret.X.ExprType())
	}
}

func TestParsePointerArithmetic(t *testing.T) {
	f := mustParse(t, `
int check(char *buf, unsigned int len, char *buf_end) {
	if (buf + len >= buf_end)
		return 1;
	if (buf + len < buf)
		return 1;
	return 0;
}
`)
	fn := f.Lookup("check")
	iff := fn.Body.Stmts[0].(*If)
	cmp := iff.Cond.(*Binary)
	if cmp.Op != ">=" {
		t.Fatalf("op %q", cmp.Op)
	}
	add := cmp.X.(*Binary)
	if !add.ExprType().IsPointer() {
		t.Fatalf("buf+len type = %v, want pointer", add.ExprType())
	}
}

func TestParseStructArrow(t *testing.T) {
	f := mustParse(t, `
struct sock { int fd; };
struct tun_struct { struct sock *sk; int flags; };
int poll(struct tun_struct *tun) {
	struct sock *sk = tun->sk;
	if (!tun)
		return -1;
	return sk->fd;
}
`)
	fn := f.Lookup("poll")
	decl := fn.Body.Stmts[0].(*DeclStmt)
	if !decl.Type.IsPointer() || decl.Type.Elem.StructName != "sock" {
		t.Fatalf("decl type %v", decl.Type)
	}
	member := decl.Init.(*Member)
	if !member.Arrow || member.Field != "sk" {
		t.Fatalf("member %+v", member)
	}
}

func TestParseControlFlow(t *testing.T) {
	f := mustParse(t, `
int sum(int n) {
	int s = 0;
	for (int i = 0; i < n; i++) {
		if (i % 2 == 0)
			continue;
		s += i;
	}
	while (s > 100) { s /= 2; }
	do { s--; } while (s < 0);
	return s;
}
`)
	fn := f.Lookup("sum")
	if len(fn.Body.Stmts) != 5 {
		t.Fatalf("stmts = %d", len(fn.Body.Stmts))
	}
	if _, ok := fn.Body.Stmts[1].(*For); !ok {
		t.Fatalf("stmt 1 is %T", fn.Body.Stmts[1])
	}
	w := fn.Body.Stmts[3].(*While)
	if !w.DoWhile {
		t.Fatal("do-while flag missing")
	}
}

func TestParseTernaryAndCasts(t *testing.T) {
	f := mustParse(t, `
long clamp(long x) {
	unsigned int u = (unsigned int)x;
	return x < 0 ? 0 : (long)u;
}
`)
	fn := f.Lookup("clamp")
	decl := fn.Body.Stmts[0].(*DeclStmt)
	cast := decl.Init.(*Cast)
	if !cast.To.Same(UInt) {
		t.Fatalf("cast type %v", cast.To)
	}
	ret := fn.Body.Stmts[1].(*Return)
	if _, ok := ret.X.(*Cond); !ok {
		t.Fatalf("ternary missing: %T", ret.X)
	}
}

func TestParseSizeof(t *testing.T) {
	f := mustParse(t, `
unsigned long size(int *p) {
	return sizeof(int) + sizeof(*p) + sizeof p;
}
`)
	fn := f.Lookup("size")
	ret := fn.Body.Stmts[0].(*Return)
	if !ret.X.ExprType().Same(ULong) {
		t.Fatalf("sizeof sum type %v", ret.X.ExprType())
	}
}

func TestParseTypedef(t *testing.T) {
	f := mustParse(t, `
typedef unsigned int u32_alias;
typedef struct pair { int a; int b; } pair_t;
u32_alias f(pair_t *p) { return p->a + p->b; }
`)
	// typedef struct {...} NAME syntax: our parser handles
	// "typedef struct pair {..} pair_t;" via declarator after struct type.
	fn := f.Lookup("f")
	if fn == nil {
		t.Fatal("function missing")
	}
	if !fn.Ret.Same(UInt) {
		t.Fatalf("ret %v", fn.Ret)
	}
}

func TestParseArrays(t *testing.T) {
	f := mustParse(t, `
int get(int i) {
	char buf[15];
	buf[0] = 'x';
	return buf[i];
}
`)
	fn := f.Lookup("get")
	decl := fn.Body.Stmts[0].(*DeclStmt)
	if decl.Type.Kind != TypeArray || decl.Type.ArrayLen != 15 {
		t.Fatalf("array type %v", decl.Type)
	}
}

func TestParseBuiltinCalls(t *testing.T) {
	f := mustParse(t, `
int f(int x, char *dst, char *src, unsigned long n) {
	memcpy(dst, src, n);
	free(dst);
	return abs(x);
}
`)
	fn := f.Lookup("f")
	ret := fn.Body.Stmts[2].(*Return)
	call := ret.X.(*Call)
	if call.Func != "abs" || !call.ExprType().Same(Int) {
		t.Fatalf("abs call: %v %v", call.Func, call.ExprType())
	}
}

func TestParseInt64Literals(t *testing.T) {
	f := mustParse(t, `
long min(void) {
	long v = -9223372036854775807L;
	return v - 1;
}
`)
	if f.Lookup("min") == nil {
		t.Fatal("function missing")
	}
}

func TestUsualArithmeticConversions(t *testing.T) {
	cases := []struct {
		a, b, want *Type
	}{
		{Char, Char, Int},    // promotion
		{Int, UInt, UInt},    // unsigned wins at same width
		{UInt, Long, Long},   // wider signed can represent
		{ULong, Int, ULong},  // wider unsigned wins
		{Short, UShort, Int}, // both promote to int
		{Long, Long, Long},
	}
	for i, tc := range cases {
		if got := UsualArithmeticConversions(tc.a, tc.b); !got.Same(tc.want) {
			t.Errorf("case %d: UAC(%v,%v) = %v, want %v", i, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []string{
		"int f(void) { return undeclared_var; }",
		"int f(int x) { return *x; }",                              // deref non-pointer
		"struct s { int a; }; int f(struct s *p) { return p->b; }", // no field
		"int f(int x) { 5 = x; return 0; }",                        // non-lvalue
	}
	for i, src := range cases {
		f, err := Parse("t.c", src)
		if err != nil {
			continue // parse error also acceptable for the last case
		}
		if err := Check(f); err == nil {
			t.Errorf("case %d: expected type error", i)
		}
	}
}

func TestParseErrorsHavePositions(t *testing.T) {
	_, err := Parse("t.c", "int f( { }")
	if err == nil {
		t.Fatal("want parse error")
	}
	if !strings.Contains(err.Error(), "t.c:") {
		t.Fatalf("error lacks position: %v", err)
	}
}

func TestFieldOffset(t *testing.T) {
	f := mustParse(t, `
struct hdr { char tag; int len; long seq; };
int f(struct hdr *h) { return h->len; }
`)
	st := f.Structs[0].Type
	off, ft, ok := st.FieldOffset("len")
	if !ok || off != 1 || !ft.Same(Int) {
		t.Fatalf("FieldOffset(len) = %d %v %v", off, ft, ok)
	}
	off, _, _ = st.FieldOffset("seq")
	if off != 5 {
		t.Fatalf("FieldOffset(seq) = %d", off)
	}
}

func TestCommaOperator(t *testing.T) {
	f := mustParse(t, `int f(int a) { int b = (a = 1, a + 1); return b; }`)
	if f.Lookup("f") == nil {
		t.Fatal("missing")
	}
}

func TestUnsignedLiteralTypes(t *testing.T) {
	f := mustParse(t, `
unsigned long f(void) {
	return 1U + 2UL + 0x80000000;
}
`)
	if f.Lookup("f") == nil {
		t.Fatal("missing")
	}
}

// TestMacroOriginFlowsToAST verifies the §4.2 plumbing end to end:
// an expression produced by a macro carries the macro name.
func TestMacroOriginFlowsToAST(t *testing.T) {
	f := mustParse(t, `
#define IS_A(p) (p != 0)
int f(int q) {
	if (IS_A(q))
		return 1;
	return 0;
}
`)
	fn := f.Lookup("f")
	iff := fn.Body.Stmts[0].(*If)
	cmp := iff.Cond.(*Binary)
	if cmp.Origin != "IS_A" {
		t.Fatalf("condition origin = %q, want IS_A", cmp.Origin)
	}
}

func TestStructUnionIgnoredBitfields(t *testing.T) {
	f := mustParse(t, `
struct flags { int a : 1; int b : 2; };
int f(struct flags *x) { return x->a; }
`)
	if f.Lookup("f") == nil {
		t.Fatal("missing")
	}
}

func TestEnumSkipped(t *testing.T) {
	f := mustParse(t, `
enum color { RED, GREEN };
int f(int c) { return c; }
`)
	if f.Lookup("f") == nil {
		t.Fatal("missing")
	}
}
