package cc

import "fmt"

// Checker performs semantic analysis: it resolves identifiers,
// applies the C conversion rules, and annotates every expression with
// its type. It is deliberately lenient in the places real systems code
// is sloppy (implicit declarations, int/pointer mixing in conditions),
// because the corpus this frontend exists to analyze is systems code.
type Checker struct {
	file    *File
	globals map[string]*Type
	funcs   map[string]*FuncDecl
	scopes  []map[string]*Type
	curFunc *FuncDecl
}

// BuiltinFuncs are the library functions the analysis knows about
// (paper Fig. 3 library rows, plus common allocators and string
// helpers appearing in the paper's examples).
var BuiltinFuncs = map[string]*Type{
	"abs":            {Kind: TypeFunc, Ret: Int, Params: []*Type{Int}},
	"labs":           {Kind: TypeFunc, Ret: Long, Params: []*Type{Long}},
	"memcpy":         {Kind: TypeFunc, Ret: PointerTo(Void), Params: []*Type{PointerTo(Void), PointerTo(Void), ULong}},
	"memmove":        {Kind: TypeFunc, Ret: PointerTo(Void), Params: []*Type{PointerTo(Void), PointerTo(Void), ULong}},
	"memset":         {Kind: TypeFunc, Ret: PointerTo(Void), Params: []*Type{PointerTo(Void), Int, ULong}},
	"malloc":         {Kind: TypeFunc, Ret: PointerTo(Void), Params: []*Type{ULong}},
	"calloc":         {Kind: TypeFunc, Ret: PointerTo(Void), Params: []*Type{ULong, ULong}},
	"realloc":        {Kind: TypeFunc, Ret: PointerTo(Void), Params: []*Type{PointerTo(Void), ULong}},
	"free":           {Kind: TypeFunc, Ret: Void, Params: []*Type{PointerTo(Void)}},
	"strchr":         {Kind: TypeFunc, Ret: PointerTo(Char), Params: []*Type{PointerTo(Char), Int}},
	"strlen":         {Kind: TypeFunc, Ret: ULong, Params: []*Type{PointerTo(Char)}},
	"simple_strtoul": {Kind: TypeFunc, Ret: ULong, Params: []*Type{PointerTo(Char), PointerTo(PointerTo(Char)), Int}},
}

// Check type-checks the file in place.
func Check(f *File) error {
	c := &Checker{
		file:    f,
		globals: make(map[string]*Type),
		funcs:   make(map[string]*FuncDecl),
	}
	for _, v := range f.Vars {
		c.globals[v.Name] = v.Type
	}
	for _, fn := range f.Funcs {
		c.funcs[fn.Name] = fn
	}
	for _, v := range f.Vars {
		if v.Init != nil {
			if _, err := c.expr(v.Init); err != nil {
				return err
			}
		}
	}
	for _, fn := range f.Funcs {
		if fn.Body == nil {
			continue
		}
		if err := c.checkFunc(fn); err != nil {
			return err
		}
	}
	return nil
}

func (c *Checker) checkFunc(fn *FuncDecl) error {
	c.curFunc = fn
	c.scopes = []map[string]*Type{{}}
	for _, p := range fn.Params {
		if p.Name != "" {
			c.scopes[0][p.Name] = p.Type
		}
	}
	err := c.stmt(fn.Body)
	c.scopes = nil
	c.curFunc = nil
	return err
}

func (c *Checker) push() { c.scopes = append(c.scopes, map[string]*Type{}) }
func (c *Checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *Checker) declare(name string, t *Type) {
	c.scopes[len(c.scopes)-1][name] = t
}

func (c *Checker) lookup(name string) (*Type, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if t, ok := c.scopes[i][name]; ok {
			return t, true
		}
	}
	if t, ok := c.globals[name]; ok {
		return t, true
	}
	return nil, false
}

func (c *Checker) stmt(s Stmt) error {
	switch s := s.(type) {
	case *Block:
		c.push()
		defer c.pop()
		for _, st := range s.Stmts {
			if err := c.stmt(st); err != nil {
				return err
			}
		}
		return nil
	case *DeclStmt:
		if s.Init != nil {
			if _, err := c.expr(s.Init); err != nil {
				return err
			}
		}
		c.declare(s.Name, s.Type)
		return nil
	case *ExprStmt:
		_, err := c.expr(s.X)
		return err
	case *If:
		t, err := c.expr(s.Cond)
		if err != nil {
			return err
		}
		if !t.IsScalar() {
			return errf(s.Cond.Position(), "if condition has non-scalar type %v", t)
		}
		if err := c.stmt(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			return c.stmt(s.Else)
		}
		return nil
	case *While:
		t, err := c.expr(s.Cond)
		if err != nil {
			return err
		}
		if !t.IsScalar() {
			return errf(s.Cond.Position(), "loop condition has non-scalar type %v", t)
		}
		return c.stmt(s.Body)
	case *For:
		c.push()
		defer c.pop()
		if s.Init != nil {
			if err := c.stmt(s.Init); err != nil {
				return err
			}
		}
		if s.Cond != nil {
			if _, err := c.expr(s.Cond); err != nil {
				return err
			}
		}
		if s.Post != nil {
			if _, err := c.expr(s.Post); err != nil {
				return err
			}
		}
		return c.stmt(s.Body)
	case *Return:
		if s.X != nil {
			if _, err := c.expr(s.X); err != nil {
				return err
			}
		}
		return nil
	case *Break, *Continue, *Empty:
		return nil
	}
	return fmt.Errorf("cc: unknown statement %T", s)
}

// expr type-checks e and returns its type.
func (c *Checker) expr(e Expr) (*Type, error) {
	t, err := c.exprInner(e)
	if err != nil {
		return nil, err
	}
	e.setType(t)
	return t, nil
}

func (c *Checker) exprInner(e Expr) (*Type, error) {
	switch e := e.(type) {
	case *IntLit:
		switch {
		case e.Unsigned && e.Long:
			return ULong, nil
		case e.Unsigned:
			if uint64(e.Value) > 1<<32-1 {
				return ULong, nil
			}
			return UInt, nil
		case e.Long:
			return Long, nil
		default:
			if e.Value > 1<<31-1 || e.Value < -(1<<31) {
				return Long, nil
			}
			return Int, nil
		}
	case *StrLit:
		return PointerTo(Char), nil
	case *Ident:
		if t, ok := c.lookup(e.Name); ok {
			return t, nil
		}
		if e.Name == "NULL" {
			return PointerTo(Void), nil
		}
		return nil, errf(e.Position(), "undeclared identifier %q", e.Name)
	case *Unary:
		xt, err := c.expr(e.X)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "-", "+", "~":
			if !xt.IsArithmetic() {
				return nil, errf(e.Position(), "unary %s on non-arithmetic type %v", e.Op, xt)
			}
			return Promote(xt), nil
		case "!":
			if !xt.IsScalar() {
				return nil, errf(e.Position(), "! on non-scalar type %v", xt)
			}
			return Int, nil
		case "*":
			switch xt.Kind {
			case TypePointer:
				return xt.Elem, nil
			case TypeArray:
				return xt.Elem, nil
			}
			return nil, errf(e.Position(), "dereference of non-pointer type %v", xt)
		case "&":
			if at, ok := xt.decayedArray(); ok {
				return PointerTo(at), nil
			}
			return PointerTo(xt), nil
		case "++", "--":
			if !xt.IsScalar() {
				return nil, errf(e.Position(), "%s on non-scalar type %v", e.Op, xt)
			}
			return xt, nil
		}
		return nil, errf(e.Position(), "unknown unary operator %q", e.Op)
	case *Postfix:
		xt, err := c.expr(e.X)
		if err != nil {
			return nil, err
		}
		if !xt.IsScalar() {
			return nil, errf(e.Position(), "%s on non-scalar type %v", e.Op, xt)
		}
		return xt, nil
	case *Binary:
		return c.binary(e)
	case *Assign:
		xt, err := c.expr(e.X)
		if err != nil {
			return nil, err
		}
		if !isLvalue(e.X) {
			return nil, errf(e.Position(), "assignment to non-lvalue")
		}
		if _, err := c.expr(e.Y); err != nil {
			return nil, err
		}
		return xt, nil
	case *Cond:
		ct, err := c.expr(e.C)
		if err != nil {
			return nil, err
		}
		if !ct.IsScalar() {
			return nil, errf(e.Position(), "?: condition has non-scalar type %v", ct)
		}
		xt, err := c.expr(e.X)
		if err != nil {
			return nil, err
		}
		yt, err := c.expr(e.Y)
		if err != nil {
			return nil, err
		}
		xt = decay(xt)
		yt = decay(yt)
		if xt.IsArithmetic() && yt.IsArithmetic() {
			return UsualArithmeticConversions(xt, yt), nil
		}
		if xt.IsPointer() {
			return xt, nil
		}
		return yt, nil
	case *Call:
		return c.call(e)
	case *Index:
		xt, err := c.expr(e.X)
		if err != nil {
			return nil, err
		}
		it, err := c.expr(e.I)
		if err != nil {
			return nil, err
		}
		if !it.IsInteger() {
			return nil, errf(e.Position(), "array index has non-integer type %v", it)
		}
		switch xt.Kind {
		case TypePointer, TypeArray:
			return xt.Elem, nil
		}
		return nil, errf(e.Position(), "indexing non-pointer type %v", xt)
	case *Member:
		xt, err := c.expr(e.X)
		if err != nil {
			return nil, err
		}
		st := xt
		if e.Arrow {
			if !xt.IsPointer() {
				return nil, errf(e.Position(), "-> on non-pointer type %v", xt)
			}
			st = xt.Elem
		}
		if st.Kind != TypeStruct {
			return nil, errf(e.Position(), "member access on non-struct type %v", st)
		}
		_, ft, ok := st.FieldOffset(e.Field)
		if !ok {
			return nil, errf(e.Position(), "no field %q in %v", e.Field, st)
		}
		return ft, nil
	case *Cast:
		if _, err := c.expr(e.X); err != nil {
			return nil, err
		}
		return e.To, nil
	case *SizeofExpr:
		if e.X != nil {
			if _, err := c.expr(e.X); err != nil {
				return nil, err
			}
		}
		return ULong, nil
	}
	return nil, fmt.Errorf("cc: unknown expression %T", e)
}

func (c *Checker) binary(e *Binary) (*Type, error) {
	xt, err := c.expr(e.X)
	if err != nil {
		return nil, err
	}
	yt, err := c.expr(e.Y)
	if err != nil {
		return nil, err
	}
	xt, yt = decay(xt), decay(yt)
	switch e.Op {
	case ",":
		return yt, nil
	case "&&", "||":
		if !xt.IsScalar() || !yt.IsScalar() {
			return nil, errf(e.Position(), "%s on non-scalar operands", e.Op)
		}
		return Int, nil
	case "==", "!=", "<", ">", "<=", ">=":
		if xt.IsScalar() && yt.IsScalar() {
			return Int, nil
		}
		return nil, errf(e.Position(), "comparison of %v and %v", xt, yt)
	case "<<", ">>":
		if !xt.IsInteger() || !yt.IsInteger() {
			return nil, errf(e.Position(), "shift of %v by %v", xt, yt)
		}
		return Promote(xt), nil
	case "+":
		if xt.IsPointer() && yt.IsInteger() {
			return xt, nil
		}
		if xt.IsInteger() && yt.IsPointer() {
			return yt, nil
		}
		fallthrough
	case "*", "/", "%", "&", "|", "^":
		if e.Op == "-" || e.Op == "+" {
			break
		}
		if !xt.IsArithmetic() || !yt.IsArithmetic() {
			return nil, errf(e.Position(), "%s on %v and %v", e.Op, xt, yt)
		}
		return UsualArithmeticConversions(xt, yt), nil
	case "-":
		if xt.IsPointer() && yt.IsPointer() {
			return Long, nil // ptrdiff_t
		}
		if xt.IsPointer() && yt.IsInteger() {
			return xt, nil
		}
	}
	if xt.IsArithmetic() && yt.IsArithmetic() {
		return UsualArithmeticConversions(xt, yt), nil
	}
	return nil, errf(e.Position(), "invalid operands to %s: %v and %v", e.Op, xt, yt)
}

func (c *Checker) call(e *Call) (*Type, error) {
	for _, a := range e.Args {
		if _, err := c.expr(a); err != nil {
			return nil, err
		}
	}
	if fn, ok := c.funcs[e.Func]; ok {
		return fn.Ret, nil
	}
	if ft, ok := BuiltinFuncs[e.Func]; ok {
		return ft.Ret, nil
	}
	// Implicit declaration (C89): assume returning int. Real systems
	// code in the corpus calls externs freely.
	return Int, nil
}

// isLvalue reports whether e can be assigned to.
func isLvalue(e Expr) bool {
	switch e := e.(type) {
	case *Ident:
		return true
	case *Unary:
		return e.Op == "*"
	case *Index, *Member:
		return true
	case *Cast:
		return isLvalue(e.X) // lenient; some kernel code does this
	}
	return false
}

// decay converts array types to pointer types in rvalue contexts.
func decay(t *Type) *Type {
	if t.Kind == TypeArray {
		return PointerTo(t.Elem)
	}
	return t
}

// decayedArray returns the decayed element pointer for arrays.
func (t *Type) decayedArray() (*Type, bool) {
	if t.Kind == TypeArray {
		return t.Elem, true
	}
	return nil, false
}
