package cc

// Native fuzz targets for the frontend: lexer, preprocessor, and
// parser (plus the type checker on anything that parses). The frontend
// consumes untrusted archive sources in the whole-archive sweep, so
// its contract under arbitrary bytes is "error, never panic or hang".
// Seed corpora live in testdata/fuzz; CI runs each target for a short
// -fuzztime as a smoke stage, and `go test` replays the corpus as
// ordinary tests.

import (
	"strings"
	"testing"
)

// maxFuzzInput bounds fuzz inputs: recursion depth in the recursive-
// descent parser is proportional to input size, and multi-kilobyte
// inputs add coverage noise without new structure.
const maxFuzzInput = 4 << 10

var fuzzSeeds = []string{
	"",
	"int f(int x) { return x + 1; }\n",
	"int f(int x, int y) { if (x + y < x) return -1; return x / y; }\n",
	"#define N 16\nint g(int i) { int a[N]; return a[i << 2]; }\n",
	"#define MAX(a, b) ((a) > (b) ? (a) : (b))\nint h(int x) { return MAX(x, 0); }\n",
	"#ifdef FOO\nbroken(\n#else\nint ok;\n#endif\n",
	"struct s { int v; }; int r(struct s *p) { if (!p) return 0; return p->v; }\n",
	"unsigned long f(unsigned long p, long n) { return p + n; }\n",
	"/* comment */ // line\nchar c = 'x'; char *s = \"str\\n\";\n",
	"#define A B\n#define B A\nint x = A;\n",
	"int f() { return 0x7fffffff + 1; }\n",
}

// FuzzTokenize: the lexer must terminate with an error or a
// well-formed, EOF-terminated token stream on any input.
func FuzzTokenize(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > maxFuzzInput {
			t.Skip("oversized input")
		}
		toks, err := Tokenize("fuzz.c", src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF {
			t.Fatalf("token stream not EOF-terminated: %d tokens", len(toks))
		}
		for _, tok := range toks {
			if tok.Kind != TokEOF && tok.Pos.Line < 1 {
				t.Fatalf("token %q carries invalid position %+v", tok.Text, tok.Pos)
			}
		}
	})
}

// FuzzPreprocess: directive handling and macro expansion (including
// the recursion guard and the runaway-expansion budget) must never
// panic or blow up.
func FuzzPreprocess(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > maxFuzzInput {
			t.Skip("oversized input")
		}
		pp := NewPreprocessor()
		toks, err := pp.Preprocess("fuzz.c", src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF {
			t.Fatalf("preprocessed stream not EOF-terminated: %d tokens", len(toks))
		}
	})
}

// FuzzParse: anything the parser accepts must also survive the type
// checker without panicking (errors are fine — panics and hangs are
// the bugs this target hunts).
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > maxFuzzInput {
			t.Skip("oversized input")
		}
		// Reject pathological token floods early; they only test the
		// allocator.
		if strings.Count(src, "(") > 1024 || strings.Count(src, "{") > 1024 {
			t.Skip("pathological nesting")
		}
		file, err := Parse("fuzz.c", src)
		if err != nil {
			return
		}
		_ = Check(file)
	})
}
