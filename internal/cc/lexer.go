package cc

import (
	"strings"
)

// Lexer tokenizes C source. It handles comments, line continuations,
// and produces preprocessor directives as raw lines for the
// preprocessor to interpret.
type Lexer struct {
	src  string
	file string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src, attributing positions to file.
func NewLexer(file, src string) *Lexer {
	// Normalize line continuations up front; keep line accounting by
	// replacing "\\\n" with a marker-free join (column drift within
	// continued lines is acceptable for diagnostics).
	src = strings.ReplaceAll(src, "\\\r\n", "")
	src = strings.ReplaceAll(src, "\\\n", "")
	return &Lexer{src: src, file: file, line: 1, col: 1}
}

func (l *Lexer) at() Pos { return Pos{File: l.file, Line: l.line, Col: l.col} }

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// skipSpaceAndComments consumes whitespace and comments. It returns
// true if a newline was crossed (the preprocessor needs line
// structure).
func (l *Lexer) skipSpaceAndComments(stopAtNewline bool) bool {
	newline := false
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == '\n':
			if stopAtNewline {
				return true
			}
			newline = true
			l.advance()
		case c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			l.advance()
			l.advance()
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					break
				}
				if l.peek() == '\n' {
					newline = true
				}
				l.advance()
			}
		default:
			return newline
		}
	}
	return newline
}

// punctuators, longest first.
var puncts = []string{
	"<<=", ">>=", "...",
	"->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
	"+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
	"?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}", "#",
}

// Next returns the next token, skipping whitespace and comments
// (including newlines). Directive lines must be extracted with
// NextLineTokens by a preprocessor before using Next on raw source.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments(false)
	return l.lexOne()
}

// NextInLine returns the next token without crossing a newline; at end
// of line it returns an EOF-kind token.
func (l *Lexer) NextInLine() (Token, error) {
	if l.skipSpaceAndComments(true) || l.pos >= len(l.src) || l.peek() == '\n' {
		return Token{Kind: TokEOF, Pos: l.at()}, nil
	}
	return l.lexOne()
}

// AtLineStart reports whether the lexer is at the beginning of a line
// (only whitespace seen since the last newline).
func (l *Lexer) lexOne() (Token, error) {
	pos := l.at()
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Pos: pos}, nil
	case isDigit(c) || (c == '.' && isDigit(l.peek2())):
		start := l.pos
		// Accept a generous C numeric token; the parser validates.
		for l.pos < len(l.src) {
			ch := l.peek()
			if isIdentCont(ch) || ch == '.' {
				l.advance()
				continue
			}
			if (ch == '+' || ch == '-') && l.pos > start {
				prev := l.src[l.pos-1]
				if prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P' {
					l.advance()
					continue
				}
			}
			break
		}
		return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: pos}, nil
	case c == '\'':
		return l.lexCharOrString('\'', TokChar, pos)
	case c == '"':
		return l.lexCharOrString('"', TokString, pos)
	}
	for _, p := range puncts {
		if strings.HasPrefix(l.src[l.pos:], p) {
			for range p {
				l.advance()
			}
			return Token{Kind: TokPunct, Text: p, Pos: pos}, nil
		}
	}
	return Token{}, errf(pos, "unexpected character %q", string(c))
}

func (l *Lexer) lexCharOrString(quote byte, kind TokKind, pos Pos) (Token, error) {
	start := l.pos
	l.advance() // opening quote
	for l.pos < len(l.src) {
		c := l.peek()
		if c == '\\' {
			l.advance()
			if l.pos < len(l.src) {
				l.advance()
			}
			continue
		}
		if c == quote {
			l.advance()
			return Token{Kind: kind, Text: l.src[start:l.pos], Pos: pos}, nil
		}
		if c == '\n' {
			break
		}
		l.advance()
	}
	return Token{}, errf(pos, "unterminated %s literal", kind)
}

// Tokenize lexes an entire standalone string (no preprocessing).
func Tokenize(file, src string) ([]Token, error) {
	l := NewLexer(file, src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
