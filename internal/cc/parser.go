package cc

import (
	"strconv"
	"strings"
)

// Parser is a recursive-descent parser over preprocessed tokens.
type Parser struct {
	toks     []Token
	pos      int
	typedefs map[string]*Type
	structs  map[string]*Type
	file     *File
}

// Parse preprocesses and parses one translation unit.
func Parse(filename, src string) (*File, error) {
	pp := NewPreprocessor()
	toks, err := pp.Preprocess(filename, src)
	if err != nil {
		return nil, err
	}
	return ParseTokens(filename, toks)
}

// ParseTokens parses preprocessed tokens into a File.
func ParseTokens(filename string, toks []Token) (*File, error) {
	p := &Parser{
		toks:     toks,
		typedefs: builtinTypedefs(),
		structs:  make(map[string]*Type),
		file:     &File{Name: filename},
	}
	if err := p.parseFile(); err != nil {
		return nil, err
	}
	return p.file, nil
}

func builtinTypedefs() map[string]*Type {
	return map[string]*Type{
		"int8_t": Char, "uint8_t": UChar,
		"int16_t": Short, "uint16_t": UShort,
		"int32_t": Int, "uint32_t": UInt,
		"int64_t": Long, "uint64_t": ULong,
		"size_t": ULong, "ssize_t": Long,
		"intptr_t": Long, "uintptr_t": ULong,
		"ptrdiff_t": Long, "off_t": Long,
		"bool": Bool_, "u8": UChar, "u16": UShort, "u32": UInt, "u64": ULong,
		"s8": Char, "s16": Short, "s32": Int, "s64": Long,
	}
}

// --- token helpers ---------------------------------------------------------

func (p *Parser) cur() Token { return p.toks[p.pos] }
func (p *Parser) la(n int) Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) accept(text string) bool {
	if p.cur().Is(text) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(text string) (Token, error) {
	if p.cur().Is(text) {
		return p.next(), nil
	}
	return Token{}, errf(p.cur().Pos, "expected %q, found %q", text, p.cur().Text)
}

func (p *Parser) nodeAt(t Token) node {
	return node{Pos: t.Pos, Origin: t.Origin}
}

// --- type parsing ------------------------------------------------------------

// startsType reports whether the current token begins a type.
func (p *Parser) startsType() bool {
	t := p.cur()
	if t.Kind == TokKeyword {
		switch t.Text {
		case "void", "char", "short", "int", "long", "signed", "unsigned",
			"struct", "union", "const", "volatile", "static", "extern",
			"inline", "register", "auto", "typedef", "enum":
			return true
		}
		return false
	}
	if t.Kind == TokIdent {
		_, ok := p.typedefs[t.Text]
		return ok
	}
	return false
}

type declSpec struct {
	typ     *Type
	static  bool
	inline  bool
	typedef bool
}

// parseDeclSpec parses storage classes, qualifiers, and a base type.
func (p *Parser) parseDeclSpec() (declSpec, error) {
	ds := declSpec{}
	var (
		sawUnsigned, sawSigned bool
		longCount              int
		base                   string
	)
	for {
		t := p.cur()
		if t.Kind == TokKeyword {
			switch t.Text {
			case "const", "volatile", "register", "auto":
				p.next()
				continue
			case "static":
				ds.static = true
				p.next()
				continue
			case "extern":
				p.next()
				continue
			case "inline":
				ds.inline = true
				p.next()
				continue
			case "typedef":
				ds.typedef = true
				p.next()
				continue
			case "unsigned":
				sawUnsigned = true
				p.next()
				continue
			case "signed":
				sawSigned = true
				p.next()
				continue
			case "long":
				longCount++
				p.next()
				continue
			case "void", "char", "short", "int":
				if base != "" && !(base == "int" && t.Text == "int") {
					return ds, errf(t.Pos, "conflicting type specifiers %q and %q", base, t.Text)
				}
				base = t.Text
				p.next()
				continue
			case "struct", "union":
				st, err := p.parseStructType()
				if err != nil {
					return ds, err
				}
				ds.typ = st
				return ds, nil
			case "enum":
				if err := p.skipEnum(); err != nil {
					return ds, err
				}
				ds.typ = Int
				return ds, nil
			}
		}
		if t.Kind == TokIdent && base == "" && longCount == 0 && !sawSigned && !sawUnsigned {
			if td, ok := p.typedefs[t.Text]; ok {
				p.next()
				ds.typ = td
				return ds, nil
			}
		}
		break
	}
	// Assemble integer type from specifiers.
	switch {
	case base == "void":
		ds.typ = Void
	case base == "char":
		if sawUnsigned {
			ds.typ = UChar
		} else {
			ds.typ = Char
		}
	case base == "short":
		if sawUnsigned {
			ds.typ = UShort
		} else {
			ds.typ = Short
		}
	case longCount > 0:
		if sawUnsigned {
			ds.typ = ULong
		} else {
			ds.typ = Long
		}
	case sawUnsigned:
		ds.typ = UInt
	case base == "int" || sawSigned:
		ds.typ = Int
	default:
		return ds, errf(p.cur().Pos, "expected type, found %q", p.cur().Text)
	}
	if base == "short" && longCount > 0 {
		return ds, errf(p.cur().Pos, "both short and long")
	}
	return ds, nil
}

// parseStructType parses "struct NAME", "struct NAME { fields }", or
// "struct { fields }" (and treats union identically, which is a
// deliberate simplification: field overlap does not matter to the
// analysis because loads are modelled as fresh values).
func (p *Parser) parseStructType() (*Type, error) {
	kw := p.next() // struct/union
	name := ""
	if p.cur().Kind == TokIdent {
		name = p.next().Text
	}
	st := p.structs[name]
	if st == nil {
		st = &Type{Kind: TypeStruct, StructName: name}
		if name != "" {
			p.structs[name] = st
		}
	}
	if !p.cur().Is("{") {
		if name == "" {
			return nil, errf(kw.Pos, "anonymous struct without body")
		}
		return st, nil
	}
	p.next() // {
	st.Fields = nil
	for !p.cur().Is("}") {
		if p.cur().Kind == TokEOF {
			return nil, errf(kw.Pos, "unterminated struct body")
		}
		ds, err := p.parseDeclSpec()
		if err != nil {
			return nil, err
		}
		for {
			ft, fname, _, err := p.parseDeclarator(ds.typ)
			if err != nil {
				return nil, err
			}
			// Ignore bitfield widths ": N".
			if p.accept(":") {
				p.next()
			}
			st.Fields = append(st.Fields, Field{Name: fname, Type: ft})
			if !p.accept(",") {
				break
			}
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	p.next() // }
	return st, nil
}

func (p *Parser) skipEnum() error {
	p.next() // enum
	if p.cur().Kind == TokIdent {
		p.next()
	}
	if p.accept("{") {
		depth := 1
		for depth > 0 {
			t := p.next()
			if t.Kind == TokEOF {
				return errf(t.Pos, "unterminated enum")
			}
			if t.Is("{") {
				depth++
			}
			if t.Is("}") {
				depth--
			}
		}
	}
	return nil
}

// parseDeclarator parses pointer stars, a name, and array suffixes.
// It returns the full type, the declared name, and whether a function
// parameter list follows (detected, not consumed).
func (p *Parser) parseDeclarator(base *Type) (*Type, string, bool, error) {
	t := base
	for p.accept("*") {
		for p.cur().Is("const") || p.cur().Is("volatile") {
			p.next()
		}
		t = PointerTo(t)
	}
	if p.cur().Kind != TokIdent {
		return nil, "", false, errf(p.cur().Pos, "expected identifier, found %q", p.cur().Text)
	}
	name := p.next().Text
	isFunc := p.cur().Is("(")
	for p.cur().Is("[") {
		p.next()
		n := 0
		if p.cur().Kind == TokNumber {
			v, err := parseIntLit(p.cur())
			if err != nil {
				return nil, "", false, err
			}
			n = int(v.Value)
			p.next()
		}
		if _, err := p.expect("]"); err != nil {
			return nil, "", false, err
		}
		t = ArrayOf(t, n)
	}
	return t, name, isFunc, nil
}

// --- top level ----------------------------------------------------------------

func (p *Parser) parseFile() error {
	for p.cur().Kind != TokEOF {
		if p.accept(";") {
			continue
		}
		ds, err := p.parseDeclSpec()
		if err != nil {
			return err
		}
		// Bare type declaration: "struct S { ... };" or "enum E {...};".
		if p.cur().Is(";") && !ds.typedef {
			p.next()
			if ds.typ != nil && ds.typ.Kind == TypeStruct {
				p.file.Structs = append(p.file.Structs, &StructDecl{Type: ds.typ})
			}
			continue
		}
		if ds.typedef {
			t, name, _, err := p.parseDeclarator(ds.typ)
			if err != nil {
				return err
			}
			p.typedefs[name] = t
			p.file.Typedefs = append(p.file.Typedefs, &TypedefDecl{Name: name, Type: t})
			if _, err := p.expect(";"); err != nil {
				return err
			}
			continue
		}
		t, name, isFunc, err := p.parseDeclarator(ds.typ)
		if err != nil {
			return err
		}
		if isFunc {
			fn, err := p.parseFuncRest(t, name, ds)
			if err != nil {
				return err
			}
			if fn != nil {
				p.file.Funcs = append(p.file.Funcs, fn)
			}
			continue
		}
		// Global variable(s).
		for {
			var init Expr
			if p.accept("=") {
				init, err = p.parseAssignExpr()
				if err != nil {
					return err
				}
			}
			p.file.Vars = append(p.file.Vars, &VarDecl{Name: name, Type: t, Init: init})
			if !p.accept(",") {
				break
			}
			t, name, _, err = p.parseDeclarator(ds.typ)
			if err != nil {
				return err
			}
		}
		if _, err := p.expect(";"); err != nil {
			return err
		}
	}
	return nil
}

func (p *Parser) parseFuncRest(ret *Type, name string, ds declSpec) (*FuncDecl, error) {
	open, err := p.expect("(")
	if err != nil {
		return nil, err
	}
	fn := &FuncDecl{
		node:   node{Pos: open.Pos},
		Name:   name,
		Ret:    ret,
		Inline: ds.inline,
		Static: ds.static,
	}
	if p.cur().Is("void") && p.la(1).Is(")") {
		p.next()
	}
	for !p.cur().Is(")") {
		if p.cur().Is("...") {
			p.next()
			break
		}
		pds, err := p.parseDeclSpec()
		if err != nil {
			return nil, err
		}
		pt := pds.typ
		pname := ""
		if !p.cur().Is(",") && !p.cur().Is(")") {
			var err error
			pt, pname, _, err = p.parseDeclarator(pds.typ)
			if err != nil {
				return nil, err
			}
		}
		// Array parameters decay to pointers.
		if pt.Kind == TypeArray {
			pt = PointerTo(pt.Elem)
		}
		fn.Params = append(fn.Params, Param{Name: pname, Type: pt})
		if !p.accept(",") {
			break
		}
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	if p.accept(";") {
		return fn, nil // prototype
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

// --- statements -----------------------------------------------------------------

func (p *Parser) parseBlock() (*Block, error) {
	open, err := p.expect("{")
	if err != nil {
		return nil, err
	}
	b := &Block{stmtNode: stmtNode{p.nodeAt(open)}}
	for !p.cur().Is("}") {
		if p.cur().Kind == TokEOF {
			return nil, errf(open.Pos, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next()
	return b, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case t.Is("{"):
		return p.parseBlock()
	case t.Is(";"):
		p.next()
		return &Empty{stmtNode{p.nodeAt(t)}}, nil
	case t.Is("if"):
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		var els Stmt
		if p.accept("else") {
			els, err = p.parseStmt()
			if err != nil {
				return nil, err
			}
		}
		return &If{stmtNode: stmtNode{p.nodeAt(t)}, Cond: cond, Then: then, Else: els}, nil
	case t.Is("while"):
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &While{stmtNode: stmtNode{p.nodeAt(t)}, Cond: cond, Body: body}, nil
	case t.Is("do"):
		p.next()
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("while"); err != nil {
			return nil, err
		}
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &While{stmtNode: stmtNode{p.nodeAt(t)}, Cond: cond, Body: body, DoWhile: true}, nil
	case t.Is("for"):
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		var init Stmt
		if !p.cur().Is(";") {
			if p.startsType() {
				ds, err := p.parseDeclSpec()
				if err != nil {
					return nil, err
				}
				init, err = p.parseDeclRest(ds, t)
				if err != nil {
					return nil, err
				}
			} else {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				init = &ExprStmt{stmtNode: stmtNode{p.nodeAt(t)}, X: e}
				if _, err := p.expect(";"); err != nil {
					return nil, err
				}
			}
		} else {
			p.next()
		}
		var cond Expr
		var err error
		if !p.cur().Is(";") {
			cond, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		var post Expr
		if !p.cur().Is(")") {
			post, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &For{stmtNode: stmtNode{p.nodeAt(t)}, Init: init, Cond: cond, Post: post, Body: body}, nil
	case t.Is("return"):
		p.next()
		var x Expr
		var err error
		if !p.cur().Is(";") {
			x, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &Return{stmtNode: stmtNode{p.nodeAt(t)}, X: x}, nil
	case t.Is("break"):
		p.next()
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &Break{stmtNode{p.nodeAt(t)}}, nil
	case t.Is("continue"):
		p.next()
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &Continue{stmtNode{p.nodeAt(t)}}, nil
	case t.Is("goto"), t.Is("switch"), t.Is("case"), t.Is("default"):
		return nil, errf(t.Pos, "%s is not supported by this frontend subset", t.Text)
	}
	if p.startsType() {
		ds, err := p.parseDeclSpec()
		if err != nil {
			return nil, err
		}
		// A struct definition used as a local declaration type.
		if ds.typ != nil && ds.typ.Kind == TypeStruct && p.cur().Is(";") {
			p.next()
			return &Empty{stmtNode{p.nodeAt(t)}}, nil
		}
		return p.parseDeclRest(ds, t)
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return &ExprStmt{stmtNode: stmtNode{p.nodeAt(t)}, X: e}, nil
}

// parseDeclRest parses declarators after a decl-spec in a local
// declaration, producing a Block if multiple variables are declared.
func (p *Parser) parseDeclRest(ds declSpec, at Token) (Stmt, error) {
	var decls []Stmt
	for {
		t, name, _, err := p.parseDeclarator(ds.typ)
		if err != nil {
			return nil, err
		}
		var init Expr
		if p.accept("=") {
			init, err = p.parseAssignExpr()
			if err != nil {
				return nil, err
			}
		}
		decls = append(decls, &DeclStmt{stmtNode: stmtNode{p.nodeAt(at)}, Name: name, Type: t, Init: init})
		if !p.accept(",") {
			break
		}
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	if len(decls) == 1 {
		return decls[0], nil
	}
	return &Block{stmtNode: stmtNode{p.nodeAt(at)}, Stmts: decls}, nil
}

// --- expressions (precedence climbing) ------------------------------------------

func (p *Parser) parseExpr() (Expr, error) {
	e, err := p.parseAssignExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Is(",") {
		t := p.next()
		rhs, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		// The comma operator evaluates both; model as a Binary with
		// op "," (the IR builder evaluates left for effects).
		e = &Binary{exprNode: exprNode{node: p.nodeAt(t)}, Op: ",", X: e, Y: rhs}
	}
	return e, nil
}

var compoundAssign = map[string]string{
	"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
	"<<=": "<<", ">>=": ">>", "&=": "&", "|=": "|", "^=": "^",
}

func (p *Parser) parseAssignExpr() (Expr, error) {
	lhs, err := p.parseCondExpr()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Is("=") {
		p.next()
		rhs, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		return &Assign{exprNode: exprNode{node: p.nodeAt(t)}, X: lhs, Y: rhs}, nil
	}
	if op, ok := compoundAssign[t.Text]; ok && t.Kind == TokPunct {
		p.next()
		rhs, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		return &Assign{exprNode: exprNode{node: p.nodeAt(t)}, Op: op, X: lhs, Y: rhs}, nil
	}
	return lhs, nil
}

func (p *Parser) parseCondExpr() (Expr, error) {
	c, err := p.parseBinaryExpr(0)
	if err != nil {
		return nil, err
	}
	if !p.cur().Is("?") {
		return c, nil
	}
	t := p.next()
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(":"); err != nil {
		return nil, err
	}
	y, err := p.parseCondExpr()
	if err != nil {
		return nil, err
	}
	return &Cond{exprNode: exprNode{node: p.nodeAt(t)}, C: c, X: x, Y: y}, nil
}

// binary operator precedence, highest binds tightest.
var binPrec = map[string]int{
	"*": 10, "/": 10, "%": 10,
	"+": 9, "-": 9,
	"<<": 8, ">>": 8,
	"<": 7, ">": 7, "<=": 7, ">=": 7,
	"==": 6, "!=": 6,
	"&": 5, "^": 4, "|": 3,
	"&&": 2, "||": 1,
}

func (p *Parser) parseBinaryExpr(minPrec int) (Expr, error) {
	lhs, err := p.parseUnaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		prec, ok := binPrec[t.Text]
		if !ok || t.Kind != TokPunct || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseBinaryExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{exprNode: exprNode{node: p.nodeAt(t)}, Op: t.Text, X: lhs, Y: rhs}
	}
}

func (p *Parser) parseUnaryExpr() (Expr, error) {
	t := p.cur()
	switch {
	case t.Is("++"), t.Is("--"):
		p.next()
		x, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{exprNode: exprNode{node: p.nodeAt(t)}, Op: t.Text, X: x}, nil
	case t.Is("-"), t.Is("+"), t.Is("!"), t.Is("~"), t.Is("*"), t.Is("&"):
		p.next()
		x, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{exprNode: exprNode{node: p.nodeAt(t)}, Op: t.Text, X: x}, nil
	case t.Is("sizeof"):
		p.next()
		if p.cur().Is("(") && p.typeAfterParen() {
			p.next()
			ty, err := p.parseTypeName()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			return &SizeofExpr{exprNode: exprNode{node: p.nodeAt(t)}, OfType: ty}, nil
		}
		x, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		return &SizeofExpr{exprNode: exprNode{node: p.nodeAt(t)}, X: x}, nil
	case t.Is("(") && p.typeAfterParen():
		p.next()
		ty, err := p.parseTypeName()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		x, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		return &Cast{exprNode: exprNode{node: p.nodeAt(t)}, To: ty, X: x}, nil
	}
	return p.parsePostfixExpr()
}

// typeAfterParen reports whether "(" at the current position is
// followed by a type name (cast or sizeof(T)).
func (p *Parser) typeAfterParen() bool {
	t := p.la(1)
	if t.Kind == TokKeyword {
		switch t.Text {
		case "void", "char", "short", "int", "long", "signed", "unsigned",
			"struct", "union", "const", "volatile", "enum":
			return true
		}
		return false
	}
	if t.Kind == TokIdent {
		_, ok := p.typedefs[t.Text]
		return ok
	}
	return false
}

// parseTypeName parses "type *... [()]" in a cast or sizeof.
func (p *Parser) parseTypeName() (*Type, error) {
	ds, err := p.parseDeclSpec()
	if err != nil {
		return nil, err
	}
	t := ds.typ
	for p.accept("*") {
		for p.cur().Is("const") || p.cur().Is("volatile") {
			p.next()
		}
		t = PointerTo(t)
	}
	return t, nil
}

func (p *Parser) parsePostfixExpr() (Expr, error) {
	e, err := p.parsePrimaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case t.Is("["):
			p.next()
			i, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			e = &Index{exprNode: exprNode{node: p.nodeAt(t)}, X: e, I: i}
		case t.Is("."), t.Is("->"):
			p.next()
			f := p.cur()
			if f.Kind != TokIdent {
				return nil, errf(f.Pos, "expected field name after %q", t.Text)
			}
			p.next()
			e = &Member{exprNode: exprNode{node: p.nodeAt(t)}, X: e, Field: f.Text, Arrow: t.Is("->")}
		case t.Is("++"), t.Is("--"):
			p.next()
			e = &Postfix{exprNode: exprNode{node: p.nodeAt(t)}, Op: t.Text, X: e}
		default:
			return e, nil
		}
	}
}

func (p *Parser) parsePrimaryExpr() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.next()
		return parseIntLit(t)
	case TokChar:
		p.next()
		v, err := charValue(t)
		if err != nil {
			return nil, err
		}
		return &IntLit{exprNode: exprNode{node: node{Pos: t.Pos, Origin: t.Origin}}, Value: v}, nil
	case TokString:
		p.next()
		return &StrLit{exprNode: exprNode{node: node{Pos: t.Pos, Origin: t.Origin}}, Value: t.Text}, nil
	case TokIdent:
		// Function call or variable.
		if p.la(1).Is("(") {
			name := p.next().Text
			p.next() // (
			call := &Call{exprNode: exprNode{node: node{Pos: t.Pos, Origin: t.Origin}}, Func: name}
			for !p.cur().Is(")") {
				a, err := p.parseAssignExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if !p.accept(",") {
					break
				}
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		p.next()
		return &Ident{exprNode: exprNode{node: node{Pos: t.Pos, Origin: t.Origin}}, Name: t.Text}, nil
	}
	if t.Is("(") {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, errf(t.Pos, "unexpected token %q in expression", t.Text)
}

// parseIntLit decodes a C integer literal with suffixes.
func parseIntLit(t Token) (*IntLit, error) {
	text := t.Text
	lower := strings.ToLower(text)
	unsigned, long := false, false
	for strings.HasSuffix(lower, "u") || strings.HasSuffix(lower, "l") {
		if strings.HasSuffix(lower, "u") {
			unsigned = true
		} else {
			long = true
		}
		lower = lower[:len(lower)-1]
		text = text[:len(text)-1]
	}
	v, err := strconv.ParseUint(lower, 0, 64)
	if err != nil {
		return nil, errf(t.Pos, "bad integer literal %q: %v", t.Text, err)
	}
	return &IntLit{
		exprNode: exprNode{node: node{Pos: t.Pos, Origin: t.Origin}},
		Value:    int64(v),
		Unsigned: unsigned,
		Long:     long,
	}, nil
}

func charValue(t Token) (int64, error) {
	s := t.Text
	if len(s) < 3 || s[0] != '\'' || s[len(s)-1] != '\'' {
		return 0, errf(t.Pos, "bad char literal %q", s)
	}
	body := s[1 : len(s)-1]
	if body[0] != '\\' {
		return int64(body[0]), nil
	}
	if len(body) < 2 {
		return 0, errf(t.Pos, "bad escape in %q", s)
	}
	switch body[1] {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\':
		return '\\', nil
	case '\'':
		return '\'', nil
	case 'x':
		v, err := strconv.ParseUint(body[2:], 16, 8)
		if err != nil {
			return 0, errf(t.Pos, "bad hex escape %q", s)
		}
		return int64(v), nil
	}
	return 0, errf(t.Pos, "unsupported escape %q", s)
}
