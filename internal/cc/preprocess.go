package cc

import (
	"fmt"
	"strings"
)

// Macro is a preprocessor macro definition.
type Macro struct {
	Name     string
	Params   []string // nil for object-like macros
	Variadic bool
	Body     []Token
	Pos      Pos
}

// Preprocessor expands macros and interprets a practical subset of
// directives: #define, #undef, #ifdef, #ifndef, #else, #endif, #if 0/1,
// and #include (which is ignored; the checker is whole-translation-unit
// based and the corpus is self-contained). Every token produced by a
// macro expansion is tagged with the macro's name in Token.Origin, so
// that later stages can suppress warnings for compiler-generated code
// exactly as STACK does (paper §4.2).
type Preprocessor struct {
	Macros map[string]*Macro
	// expansions counts tokens flowing through expansion rescans within
	// one run, bounding the output of mutually recursive macro chains
	// ("billion laughs"): the hide set stops direct recursion but not
	// exponential growth through distinct names, so a budget turns that
	// into an error instead of an out-of-memory. Top-level source
	// tokens are never charged; only expansion-produced ones.
	expansions int
}

// maxMacroExpansions bounds the number of expansion steps per
// translation unit; orders of magnitude above any legitimate input.
const maxMacroExpansions = 1 << 20

// NewPreprocessor returns a preprocessor with no predefined macros.
func NewPreprocessor() *Preprocessor {
	return &Preprocessor{Macros: make(map[string]*Macro)}
}

// Preprocess tokenizes and macro-expands src.
func (pp *Preprocessor) Preprocess(file, src string) ([]Token, error) {
	toks, err := Tokenize(file, src)
	if err != nil {
		return nil, err
	}
	return pp.run(toks)
}

// lineOf groups raw tokens into directive lines vs. ordinary tokens.
func (pp *Preprocessor) run(toks []Token) ([]Token, error) {
	pp.expansions = 0
	var out []Token
	// Conditional-inclusion stack: each entry records whether the
	// current branch is active and whether any branch was taken.
	type cond struct{ active, taken bool }
	var conds []cond
	active := func() bool {
		for _, c := range conds {
			if !c.active {
				return false
			}
		}
		return true
	}

	i := 0
	prevLine := -1
	for i < len(toks) {
		t := toks[i]
		if t.Kind == TokEOF {
			out = append(out, t)
			break
		}
		atLineStart := t.Pos.Line != prevLine
		prevLine = t.Pos.Line
		if atLineStart && t.Is("#") {
			// Collect the directive line.
			j := i + 1
			for j < len(toks) && toks[j].Kind != TokEOF && toks[j].Pos.Line == t.Pos.Line {
				j++
			}
			line := toks[i+1 : j]
			if j <= len(toks) && j > i+1 {
				prevLine = toks[j-1].Pos.Line
			}
			i = j
			if len(line) == 0 {
				continue // null directive
			}
			name := line[0].Text
			switch name {
			case "define":
				if !active() {
					continue
				}
				if err := pp.define(line[1:], t.Pos); err != nil {
					return nil, err
				}
			case "undef":
				if !active() {
					continue
				}
				if len(line) >= 2 {
					delete(pp.Macros, line[1].Text)
				}
			case "include":
				// Ignored: the corpus is self-contained.
			case "ifdef", "ifndef":
				def := len(line) >= 2 && pp.Macros[line[1].Text] != nil
				take := def == (name == "ifdef")
				conds = append(conds, cond{active: take, taken: take})
			case "if":
				// Minimal: literal 0/1 and defined(NAME).
				take := pp.evalIf(line[1:])
				conds = append(conds, cond{active: take, taken: take})
			case "else":
				if len(conds) == 0 {
					return nil, errf(t.Pos, "#else without #if")
				}
				c := &conds[len(conds)-1]
				c.active = !c.taken
				c.taken = true
			case "endif":
				if len(conds) == 0 {
					return nil, errf(t.Pos, "#endif without #if")
				}
				conds = conds[:len(conds)-1]
			case "pragma", "error", "warning", "line":
				// Ignored.
			default:
				return nil, errf(t.Pos, "unsupported directive #%s", name)
			}
			continue
		}
		if !active() {
			i++
			continue
		}
		// Ordinary token: macro-expand.
		exp, n, err := pp.expand(toks, i, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, exp...)
		i += n
	}
	if len(out) == 0 || out[len(out)-1].Kind != TokEOF {
		out = append(out, Token{Kind: TokEOF})
	}
	return out, nil
}

func (pp *Preprocessor) evalIf(line []Token) bool {
	if len(line) == 1 && line[0].Kind == TokNumber {
		return line[0].Text != "0"
	}
	if len(line) >= 1 && line[0].Text == "defined" {
		// defined(NAME) or defined NAME
		for _, t := range line[1:] {
			if t.Kind == TokIdent {
				return pp.Macros[t.Text] != nil
			}
		}
	}
	if len(line) >= 2 && line[0].Is("!") && line[1].Text == "defined" {
		for _, t := range line[2:] {
			if t.Kind == TokIdent {
				return pp.Macros[t.Text] == nil
			}
		}
	}
	// Unknown conditions default to false (conservative).
	return false
}

// define parses "#define NAME body" or "#define NAME(params) body".
func (pp *Preprocessor) define(line []Token, pos Pos) error {
	if len(line) == 0 || (line[0].Kind != TokIdent && line[0].Kind != TokKeyword) {
		return errf(pos, "malformed #define")
	}
	m := &Macro{Name: line[0].Text, Pos: pos}
	rest := line[1:]
	// Function-like only if '(' immediately follows the name. Since we
	// lost intra-line spacing, use column adjacency.
	if len(rest) > 0 && rest[0].Is("(") &&
		rest[0].Pos.Col == line[0].Pos.Col+len(line[0].Text) {
		m.Params = []string{}
		i := 1
		for i < len(rest) && !rest[i].Is(")") {
			switch {
			case rest[i].Kind == TokIdent:
				m.Params = append(m.Params, rest[i].Text)
			case rest[i].Is("..."):
				m.Variadic = true
			case rest[i].Is(","):
			default:
				return errf(rest[i].Pos, "malformed macro parameter list")
			}
			i++
		}
		if i >= len(rest) {
			return errf(pos, "unterminated macro parameter list")
		}
		m.Body = rest[i+1:]
	} else {
		m.Body = rest
	}
	pp.Macros[m.Name] = m
	return nil
}

// expand expands the macro invocation (if any) at toks[i]. It returns
// the expansion, the number of input tokens consumed, and an error.
// hide is the set of macro names not to re-expand (recursion guard).
func (pp *Preprocessor) expand(toks []Token, i int, hide map[string]bool) ([]Token, int, error) {
	t := toks[i]
	if t.Kind != TokIdent {
		return []Token{t}, 1, nil
	}
	m := pp.Macros[t.Text]
	if m == nil || hide[t.Text] {
		return []Token{t}, 1, nil
	}
	origin := t.Origin
	if origin == "" {
		origin = m.Name
	}
	if m.Params == nil {
		// Object-like.
		body := retag(m.Body, t.Pos, origin)
		return pp.rescan(body, childHide(hide, m.Name))
	}
	// Function-like: require '(' next; otherwise leave the identifier.
	if i+1 >= len(toks) || !toks[i+1].Is("(") {
		return []Token{t}, 1, nil
	}
	args, consumed, err := parseMacroArgs(toks, i+1)
	if err != nil {
		return nil, 0, err
	}
	if !m.Variadic && len(args) != len(m.Params) && !(len(m.Params) == 0 && len(args) == 1 && len(args[0]) == 0) {
		return nil, 0, errf(t.Pos, "macro %s expects %d args, got %d", m.Name, len(m.Params), len(args))
	}
	argMap := make(map[string][]Token, len(m.Params))
	for k, p := range m.Params {
		if k < len(args) {
			argMap[p] = args[k]
		} else {
			argMap[p] = nil
		}
	}
	var body []Token
	for _, bt := range m.Body {
		if bt.Kind == TokIdent {
			if arg, ok := argMap[bt.Text]; ok {
				// Arguments are themselves macro-expanded before
				// substitution (approximation of C99 semantics
				// without # and ## operators).
				expArg, err := pp.expandAll(arg, hide)
				if err != nil {
					return nil, 0, err
				}
				body = append(body, retag(expArg, t.Pos, origin)...)
				continue
			}
		}
		body = append(body, bt)
	}
	body = retag(body, t.Pos, origin)
	exp, _, err2 := pp.rescanAll(body, childHide(hide, m.Name))
	if err2 != nil {
		return nil, 0, err2
	}
	return exp, 1 + consumed, nil
}

func childHide(hide map[string]bool, name string) map[string]bool {
	ch := make(map[string]bool, len(hide)+1)
	for k := range hide {
		ch[k] = true
	}
	ch[name] = true
	return ch
}

// retag stamps position and origin onto expanded tokens (first origin
// wins so nested expansions report the outermost user-written macro).
func retag(body []Token, pos Pos, origin string) []Token {
	out := make([]Token, len(body))
	for i, b := range body {
		b.Pos = pos
		if b.Origin == "" {
			b.Origin = origin
		}
		out[i] = b
	}
	return out
}

// rescan re-expands an object-like macro body.
func (pp *Preprocessor) rescan(body []Token, hide map[string]bool) ([]Token, int, error) {
	out, _, err := pp.rescanAll(body, hide)
	return out, 1, err
}

func (pp *Preprocessor) rescanAll(body []Token, hide map[string]bool) ([]Token, int, error) {
	var out []Token
	for i := 0; i < len(body); {
		// Every token here was produced by an expansion (top-level
		// source tokens never pass through a rescan), so charging the
		// budget per rescanned token bounds total expansion output: a
		// macro-free file of any size never trips it, while mutually
		// recursive doubling chains ("billion laughs") hit the ceiling
		// long before exhausting memory.
		if pp.expansions++; pp.expansions > maxMacroExpansions {
			return nil, 0, errf(body[i].Pos, "macro expansion exceeds %d tokens (runaway expansion)", maxMacroExpansions)
		}
		exp, n, err := pp.expand(body, i, hide)
		if err != nil {
			return nil, 0, err
		}
		out = append(out, exp...)
		i += n
	}
	return out, len(body), nil
}

func (pp *Preprocessor) expandAll(toks []Token, hide map[string]bool) ([]Token, error) {
	out, _, err := pp.rescanAll(toks, hide)
	return out, err
}

// parseMacroArgs parses "(arg, arg, ...)" starting at the '(' token,
// honoring nested parentheses. It returns the args and tokens consumed
// including both parens.
func parseMacroArgs(toks []Token, open int) ([][]Token, int, error) {
	depth := 0
	var args [][]Token
	var cur []Token
	i := open
	for ; i < len(toks); i++ {
		t := toks[i]
		if t.Kind == TokEOF {
			break
		}
		switch {
		case t.Is("("):
			depth++
			if depth > 1 {
				cur = append(cur, t)
			}
		case t.Is(")"):
			depth--
			if depth == 0 {
				args = append(args, cur)
				return args, i - open + 1, nil
			}
			cur = append(cur, t)
		case t.Is(",") && depth == 1:
			args = append(args, cur)
			cur = nil
		default:
			cur = append(cur, t)
		}
	}
	return nil, 0, errf(toks[open].Pos, "unterminated macro argument list")
}

// PredefineObject adds an object-like macro NAME with the given token
// text as its body (a convenience for tests and the driver).
func (pp *Preprocessor) PredefineObject(name, body string) error {
	toks, err := Tokenize("<predef>", body)
	if err != nil {
		return err
	}
	if n := len(toks); n > 0 && toks[n-1].Kind == TokEOF {
		toks = toks[:n-1]
	}
	pp.Macros[name] = &Macro{Name: name, Body: toks}
	return nil
}

// String renders the macro table, for debugging.
func (pp *Preprocessor) String() string {
	var b strings.Builder
	for name, m := range pp.Macros {
		fmt.Fprintf(&b, "%s/%d ", name, len(m.Params))
	}
	return b.String()
}
