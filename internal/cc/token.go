// Package cc implements a compiler frontend for the C subset that the
// STACK paper's analysis consumes: a lexer, a preprocessor with macro
// origin tracking (paper §4.2), a recursive-descent parser, and a type
// checker. It stands in for the clang frontend of the original system.
//
// The subset covers every construct with undefined behavior listed in
// the paper's Figure 3 — pointer and integer arithmetic, memory
// access, division, shifts, array indexing — plus the library calls
// (abs, memcpy, free, realloc) whose UB conditions STACK models.
package cc

import "fmt"

// Pos is a source position.
type Pos struct {
	File string
	Line int
	Col  int
}

func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// IsValid reports whether the position is set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// TokKind enumerates token kinds.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokChar
	TokString
	TokPunct
)

var tokKindNames = map[TokKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokKeyword: "keyword",
	TokNumber: "number", TokChar: "char", TokString: "string",
	TokPunct: "punctuator",
}

func (k TokKind) String() string { return tokKindNames[k] }

// Token is a lexical token. Text preserves the source spelling.
// Origin, when nonempty, names the macro whose expansion produced this
// token — the hook STACK's origin-tracking false-warning suppression
// (paper §4.2) relies on.
type Token struct {
	Kind   TokKind
	Text   string
	Pos    Pos
	Origin string
}

func (t Token) String() string {
	return fmt.Sprintf("%s %q at %s", t.Kind, t.Text, t.Pos)
}

// Is reports whether the token is a punctuator or keyword with the
// given spelling.
func (t Token) Is(text string) bool {
	return (t.Kind == TokPunct || t.Kind == TokKeyword) && t.Text == text
}

var keywords = map[string]bool{
	"auto": true, "break": true, "case": true, "char": true,
	"const": true, "continue": true, "default": true, "do": true,
	"double": true, "else": true, "enum": true, "extern": true,
	"float": true, "for": true, "goto": true, "if": true,
	"inline": true, "int": true, "long": true, "register": true,
	"return": true, "short": true, "signed": true, "sizeof": true,
	"static": true, "struct": true, "switch": true, "typedef": true,
	"union": true, "unsigned": true, "void": true, "volatile": true,
	"while": true,
}

// Error is a frontend diagnostic carrying a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...interface{}) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
