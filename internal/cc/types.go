package cc

import (
	"fmt"
	"strings"
)

// TypeKind classifies C types.
type TypeKind int

// Type kinds.
const (
	TypeVoid TypeKind = iota
	TypeInt           // integer of some width/signedness (incl. char, _Bool-free subset)
	TypePointer
	TypeArray
	TypeStruct
	TypeFunc
)

// Type describes a C type. Types are structural; compare with Same.
type Type struct {
	Kind     TypeKind
	Width    int   // TypeInt: bits
	Signed   bool  // TypeInt
	Elem     *Type // TypePointer, TypeArray
	ArrayLen int   // TypeArray
	// TypeStruct
	StructName string
	Fields     []Field
	// TypeFunc
	Ret    *Type
	Params []*Type
}

// Field is a struct member.
type Field struct {
	Name string
	Type *Type
}

// PointerWidth is the width of pointers in the target model; the
// paper's examples and the C* dialect (§3.1) assume a flat 64-bit
// address space.
const PointerWidth = 64

// Builtin integer types.
var (
	Void   = &Type{Kind: TypeVoid}
	Bool_  = &Type{Kind: TypeInt, Width: 1, Signed: false}
	Char   = &Type{Kind: TypeInt, Width: 8, Signed: true}
	UChar  = &Type{Kind: TypeInt, Width: 8, Signed: false}
	Short  = &Type{Kind: TypeInt, Width: 16, Signed: true}
	UShort = &Type{Kind: TypeInt, Width: 16, Signed: false}
	Int    = &Type{Kind: TypeInt, Width: 32, Signed: true}
	UInt   = &Type{Kind: TypeInt, Width: 32, Signed: false}
	Long   = &Type{Kind: TypeInt, Width: 64, Signed: true}
	ULong  = &Type{Kind: TypeInt, Width: 64, Signed: false}
)

// PointerTo returns a pointer type to elem.
func PointerTo(elem *Type) *Type { return &Type{Kind: TypePointer, Elem: elem} }

// ArrayOf returns an array type.
func ArrayOf(elem *Type, n int) *Type {
	return &Type{Kind: TypeArray, Elem: elem, ArrayLen: n}
}

// IsInteger reports whether t is an integer type.
func (t *Type) IsInteger() bool { return t != nil && t.Kind == TypeInt }

// IsPointer reports whether t is a pointer type.
func (t *Type) IsPointer() bool { return t != nil && t.Kind == TypePointer }

// IsArithmetic reports integer (this subset has no floating point).
func (t *Type) IsArithmetic() bool { return t.IsInteger() }

// IsScalar reports integer or pointer.
func (t *Type) IsScalar() bool { return t.IsInteger() || t.IsPointer() }

// BitWidth returns the width in bits as used by the IR: pointers have
// PointerWidth, integers their own width.
func (t *Type) BitWidth() int {
	switch t.Kind {
	case TypeInt:
		return t.Width
	case TypePointer:
		return PointerWidth
	}
	panic(fmt.Sprintf("cc: BitWidth of non-scalar %v", t))
}

// SizeBytes returns the size of the type in bytes for pointer
// arithmetic scaling and sizeof.
func (t *Type) SizeBytes() int {
	switch t.Kind {
	case TypeVoid:
		return 1 // GNU-style: sizeof(void) == 1, void* arithmetic scales by 1
	case TypeInt:
		w := t.Width / 8
		if w == 0 {
			w = 1
		}
		return w
	case TypePointer:
		return PointerWidth / 8
	case TypeArray:
		return t.ArrayLen * t.Elem.SizeBytes()
	case TypeStruct:
		n := 0
		for _, f := range t.Fields {
			n += f.Type.SizeBytes()
		}
		if n == 0 {
			n = 1
		}
		return n
	}
	panic(fmt.Sprintf("cc: SizeBytes of %v", t))
}

// FieldOffset returns the byte offset of the named field and its type.
func (t *Type) FieldOffset(name string) (int, *Type, bool) {
	off := 0
	for _, f := range t.Fields {
		if f.Name == name {
			return off, f.Type, true
		}
		off += f.Type.SizeBytes()
	}
	return 0, nil, false
}

// Same reports structural type equality.
func (t *Type) Same(u *Type) bool {
	if t == u {
		return true
	}
	if t == nil || u == nil || t.Kind != u.Kind {
		return false
	}
	switch t.Kind {
	case TypeVoid:
		return true
	case TypeInt:
		return t.Width == u.Width && t.Signed == u.Signed
	case TypePointer:
		return t.Elem.Same(u.Elem)
	case TypeArray:
		return t.ArrayLen == u.ArrayLen && t.Elem.Same(u.Elem)
	case TypeStruct:
		return t.StructName == u.StructName
	case TypeFunc:
		if !t.Ret.Same(u.Ret) || len(t.Params) != len(u.Params) {
			return false
		}
		for i := range t.Params {
			if !t.Params[i].Same(u.Params[i]) {
				return false
			}
		}
		return true
	}
	return false
}

func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case TypeVoid:
		return "void"
	case TypeInt:
		sign := ""
		if !t.Signed {
			sign = "unsigned "
		}
		switch t.Width {
		case 1:
			return "_Bool"
		case 8:
			if t.Signed {
				return "char"
			}
			return "unsigned char"
		case 16:
			return sign + "short"
		case 32:
			return sign + "int"
		case 64:
			return sign + "long"
		}
		return fmt.Sprintf("%sint%d", sign, t.Width)
	case TypePointer:
		return t.Elem.String() + "*"
	case TypeArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.ArrayLen)
	case TypeStruct:
		return "struct " + t.StructName
	case TypeFunc:
		var ps []string
		for _, p := range t.Params {
			ps = append(ps, p.String())
		}
		return fmt.Sprintf("%s(%s)", t.Ret, strings.Join(ps, ", "))
	}
	return "?"
}

// Promote applies the C integer promotions: integer types narrower
// than int are converted to int.
func Promote(t *Type) *Type {
	if t.IsInteger() && t.Width < 32 {
		return Int
	}
	return t
}

// UsualArithmeticConversions returns the common type of a binary
// arithmetic operation per C11 §6.3.1.8 (integer-only subset).
func UsualArithmeticConversions(a, b *Type) *Type {
	a, b = Promote(a), Promote(b)
	if a.Same(b) {
		return a
	}
	if a.Signed == b.Signed {
		if a.Width >= b.Width {
			return a
		}
		return b
	}
	u, s := a, b
	if b.Signed == false {
		u, s = b, a
	}
	if u.Width >= s.Width {
		return u
	}
	// Signed type can represent all values of the unsigned type.
	if s.Width > u.Width {
		return s
	}
	return &Type{Kind: TypeInt, Width: s.Width, Signed: false}
}
