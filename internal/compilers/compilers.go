// Package compilers models the 16 compiler versions surveyed in the
// paper's §2.3/Figure 4: which undefined-behavior-exploiting
// optimizations each performs, and at which -O level they kick in.
// The optimizations themselves are real IR transformations implemented
// in internal/opt; this package only encodes the per-compiler
// enablement matrix measured by the paper, and provides the harness
// that regenerates Figure 4 by actually optimizing the six canonical
// unstable-code examples.
package compilers

import (
	"fmt"
	"strings"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/opt"
)

// Model describes one compiler version's UB-exploiting behavior:
// FoldLevels[o] is the lowest optimization level at which it performs
// optimization o, or -1 if it never does.
type Model struct {
	Name       string
	FoldLevels [opt.NumUBOpts]int
}

// ConfigAt returns the optimizer configuration for -On.
func (m *Model) ConfigAt(level int) opt.Config {
	var cfg opt.Config
	for i, l := range m.FoldLevels {
		cfg.Enabled[i] = l >= 0 && l <= level
	}
	return cfg
}

// Discards reports whether the model ever performs optimization o.
func (m *Model) Discards(o opt.UBOpt) bool { return m.FoldLevels[o] >= 0 }

// lv is shorthand for building FoldLevels rows; -1 means never.
func lv(ptr, null, signed, vrp, shift, abs int) [opt.NumUBOpts]int {
	return [opt.NumUBOpts]int{ptr, null, signed, vrp, shift, abs}
}

// Models is the Figure 4 matrix: 16 compiler versions and the lowest
// -On at which each discards each of the six example checks.
var Models = []*Model{
	{"gcc-2.95.3", lv(-1, -1, 1, -1, -1, -1)},
	{"gcc-3.4.6", lv(-1, 2, 1, -1, -1, -1)},
	{"gcc-4.2.1", lv(0, -1, 2, -1, -1, 2)},
	{"gcc-4.8.1", lv(2, 2, 2, 2, -1, 2)},
	{"clang-1.0", lv(1, -1, -1, -1, -1, -1)},
	{"clang-3.3", lv(1, -1, 1, -1, 1, -1)},
	{"aCC-6.25", lv(-1, -1, -1, -1, -1, 3)},
	{"armcc-5.02", lv(-1, -1, 2, -1, -1, -1)},
	{"icc-14.0.0", lv(-1, 2, 1, 2, -1, -1)},
	{"msvc-11.0", lv(-1, 1, -1, -1, -1, -1)},
	{"open64-4.5.2", lv(1, -1, 2, -1, -1, 2)},
	{"pathcc-1.0.0", lv(1, -1, 2, -1, -1, 2)},
	{"suncc-5.12", lv(-1, 3, -1, -1, -1, -1)},
	{"ti-7.4.2", lv(0, -1, 0, 2, -1, -1)},
	{"windriver-5.9.2", lv(-1, -1, 0, -1, -1, -1)},
	{"xlc-12.1", lv(3, -1, -1, -1, -1, -1)},
}

// Lookup returns the model with the given name, or nil.
func Lookup(name string) *Model {
	for _, m := range Models {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// NumExamples is the number of Figure 4 columns.
const NumExamples = 6

// Examples are the six unstable-code checks of Figure 4's columns, as
// complete functions. Each returns 1 exactly when its sanity check
// fires; a compiler that discards the check removes every path
// returning 1.
var Examples = []struct {
	Label string // the paper's column header
	Opt   opt.UBOpt
	Src   string
}{
	{"if (p + 100 < p)", opt.OptPtrOverflow, `
int check(char *p) {
	if (p + 100 < p)
		return 1;
	return 0;
}
`},
	{"*p; if (!p)", opt.OptNullCheck, `
int check(int *p) {
	*p = 0;
	if (!p)
		return 1;
	return 0;
}
`},
	{"if (x + 100 < x)", opt.OptSignedOverflow, `
int check(int x) {
	if (x + 100 < x)
		return 1;
	return 0;
}
`},
	{"if (x+ + 100 < 0)", opt.OptValueRange, `
int check(int x) {
	if (x > 0) {
		if (x + 100 < 0)
			return 1;
	}
	return 0;
}
`},
	{"if (!(1 << x))", opt.OptShift, `
int check(int x) {
	if (!(1 << x))
		return 1;
	return 0;
}
`},
	{"if (abs(x) < 0)", opt.OptAbs, `
int check(int x) {
	if (abs(x) < 0)
		return 1;
	return 0;
}
`},
}

// buildExample compiles one example to IR.
func buildExample(src string) (*ir.Func, error) {
	f, err := cc.Parse("example.c", src)
	if err != nil {
		return nil, err
	}
	if err := cc.Check(f); err != nil {
		return nil, err
	}
	p, err := ir.Build(f)
	if err != nil {
		return nil, err
	}
	fn := p.Lookup("check")
	if fn == nil {
		return nil, fmt.Errorf("compilers: example lacks check()")
	}
	return fn, nil
}

// checkDiscarded reports whether the optimized function no longer has
// any path returning 1 — i.e. the sanity check vanished.
func checkDiscarded(f *ir.Func) bool {
	for _, b := range f.Blocks {
		if b.Term == nil || b.Term.Op != ir.OpRet || len(b.Term.Args) == 0 {
			continue
		}
		v := b.Term.Args[0]
		if v.Op == ir.OpConst && v.Aux == 1 {
			return false
		}
		if v.Op != ir.OpConst {
			// A phi or computed return might still produce 1; treat
			// any non-constant as "check may fire" for phis carrying a
			// literal 1.
			if mayYieldOne(v, 4) {
				return false
			}
		}
	}
	return true
}

func mayYieldOne(v *ir.Value, depth int) bool {
	if depth == 0 {
		return true // unknown: be conservative
	}
	switch v.Op {
	case ir.OpConst:
		return v.Aux == 1
	case ir.OpPhi, ir.OpSelect:
		for _, a := range v.Args {
			if a != nil && mayYieldOne(a, depth-1) {
				return true
			}
		}
		return false
	case ir.OpZExt, ir.OpSExt, ir.OpTrunc:
		return mayYieldOne(v.Args[0], depth-1)
	}
	return true // loads, params, arithmetic: unknown
}

// DiscardLevel runs the real optimizer at each level and returns the
// lowest -On at which the model discards example ex, or -1.
func DiscardLevel(m *Model, ex int) (int, error) {
	for level := 0; level <= 3; level++ {
		fn, err := buildExample(Examples[ex].Src)
		if err != nil {
			return 0, err
		}
		opt.Optimize(fn, m.ConfigAt(level))
		if checkDiscarded(fn) {
			return level, nil
		}
	}
	return -1, nil
}

// SurveyRow regenerates one row of Figure 4 by optimizing all six
// examples under the model.
func SurveyRow(m *Model) ([NumExamples]int, error) {
	var row [NumExamples]int
	for i := range Examples {
		l, err := DiscardLevel(m, i)
		if err != nil {
			return row, err
		}
		row[i] = l
	}
	return row, nil
}

// Survey regenerates the full Figure 4 matrix.
func Survey() (map[string][NumExamples]int, error) {
	out := make(map[string][NumExamples]int, len(Models))
	for _, m := range Models {
		row, err := SurveyRow(m)
		if err != nil {
			return nil, err
		}
		out[m.Name] = row
	}
	return out, nil
}

// FormatSurvey renders the matrix in the paper's form: "On" or "–".
func FormatSurvey(rows map[string][NumExamples]int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s", "")
	for _, ex := range Examples {
		fmt.Fprintf(&b, " %-20s", ex.Label)
	}
	b.WriteByte('\n')
	for _, m := range Models {
		fmt.Fprintf(&b, "%-18s", m.Name)
		row := rows[m.Name]
		for _, l := range row {
			cell := "–"
			if l >= 0 {
				cell = fmt.Sprintf("O%d", l)
			}
			fmt.Fprintf(&b, " %-20s", cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ubOptToKind maps optimizer folds to the checker's UB kinds.
var ubOptToKind = map[opt.UBOpt]core.UBKind{
	opt.OptPtrOverflow:    core.UBPointerOverflow,
	opt.OptNullCheck:      core.UBNullDeref,
	opt.OptSignedOverflow: core.UBSignedOverflow,
	opt.OptValueRange:     core.UBSignedOverflow,
	opt.OptShift:          core.UBOversizedShift,
	opt.OptAbs:            core.UBAbsOverflow,
}

// AnyModelDiscards is a core.DiscardPredicate over the whole survey:
// does any modeled compiler exploit UB of kind k? Used to classify
// reports as urgent optimization bugs vs. time bombs (§6.2).
func AnyModelDiscards(k core.UBKind) bool {
	for _, m := range Models {
		for o, kind := range ubOptToKind {
			if kind == k && m.Discards(o) {
				return true
			}
		}
	}
	return false
}
