package compilers

import (
	"testing"

	"repro/internal/core"
	"repro/internal/opt"
)

// TestFigure4Matrix is the reproduction of the paper's Figure 4: for
// every one of the 16 compiler models and 6 unstable-code examples,
// running the real optimizer with the model's configuration must
// discard the check at exactly the level the paper measured.
func TestFigure4Matrix(t *testing.T) {
	for _, m := range Models {
		row, err := SurveyRow(m)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		for i, got := range row {
			want := m.FoldLevels[Examples[i].Opt]
			if got != want {
				t.Errorf("%s × %q: discard level %d, want %d",
					m.Name, Examples[i].Label, got, want)
			}
		}
	}
}

// TestGcc295FoldsSignedAdd pins §2.3's observation that even
// gcc 2.95.3 (2001) eliminated x + 100 < x.
func TestGcc295FoldsSignedAdd(t *testing.T) {
	m := Lookup("gcc-2.95.3")
	if m == nil {
		t.Fatal("model missing")
	}
	l, err := DiscardLevel(m, 2) // column 3: x + 100 < x
	if err != nil {
		t.Fatal(err)
	}
	if l != 1 {
		t.Errorf("gcc-2.95.3 folds x+100<x at O%d, want O1", l)
	}
}

// TestEvolutionMoreAggressive pins the paper's observation that
// compilers discard more unstable code as they evolve: gcc 4.8.1
// discards strictly more of the examples than gcc 2.95.3.
func TestEvolutionMoreAggressive(t *testing.T) {
	count := func(name string) int {
		m := Lookup(name)
		n := 0
		for _, l := range m.FoldLevels {
			if l >= 0 {
				n++
			}
		}
		return n
	}
	old := count("gcc-2.95.3")
	new48 := count("gcc-4.8.1")
	if new48 <= old {
		t.Errorf("gcc-4.8.1 discards %d kinds, gcc-2.95.3 %d; evolution not captured", new48, old)
	}
	if c10, c33 := count("clang-1.0"), count("clang-3.3"); c33 <= c10 {
		t.Errorf("clang-3.3 discards %d kinds, clang-1.0 %d", c33, c10)
	}
}

// TestMostDiscardingAtO2OrLower pins §2.3's point that discarding
// happens at standard release optimization levels.
func TestMostDiscardingAtO2OrLower(t *testing.T) {
	atO2, above := 0, 0
	for _, m := range Models {
		for _, l := range m.FoldLevels {
			if l < 0 {
				continue
			}
			if l <= 2 {
				atO2++
			} else {
				above++
			}
		}
	}
	if atO2 <= above {
		t.Errorf("%d folds at O2 or below vs %d above; expected mostly at/below O2", atO2, above)
	}
}

// TestSomeDiscardAtO0 pins that a few compilers discard even at -O0
// (gcc-4.2.1 and TI on pointer overflow, TI/windriver on signed).
func TestSomeDiscardAtO0(t *testing.T) {
	found := false
	for _, m := range Models {
		for _, l := range m.FoldLevels {
			if l == 0 {
				found = true
			}
		}
	}
	if !found {
		t.Error("no model discards at O0; Fig. 4 has several")
	}
}

func TestConfigAtCumulative(t *testing.T) {
	m := Lookup("gcc-4.8.1")
	c0 := m.ConfigAt(0)
	c2 := m.ConfigAt(2)
	for i := range c0.Enabled {
		if c0.Enabled[i] && !c2.Enabled[i] {
			t.Errorf("opt %d enabled at O0 but not O2", i)
		}
	}
	if c0.Enabled[opt.OptPtrOverflow] {
		t.Error("gcc-4.8.1 should not fold pointer overflow at O0")
	}
	if !c2.Enabled[opt.OptPtrOverflow] {
		t.Error("gcc-4.8.1 should fold pointer overflow at O2")
	}
}

func TestAnyModelDiscards(t *testing.T) {
	for _, k := range []core.UBKind{
		core.UBPointerOverflow, core.UBNullDeref, core.UBSignedOverflow,
		core.UBOversizedShift, core.UBAbsOverflow,
	} {
		if !AnyModelDiscards(k) {
			t.Errorf("some surveyed compiler discards %v", k)
		}
	}
	// No surveyed model folds based on use-after-free aliasing.
	if AnyModelDiscards(core.UBUseAfterFree) {
		t.Error("no surveyed compiler exploits use-after-free")
	}
}

func TestFormatSurvey(t *testing.T) {
	rows, err := Survey()
	if err != nil {
		t.Fatal(err)
	}
	s := FormatSurvey(rows)
	for _, want := range []string{"gcc-4.8.1", "clang-3.3", "O2", "–"} {
		if !contains(s, want) {
			t.Errorf("survey output missing %q", want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
