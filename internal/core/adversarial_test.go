package core

// Adversarial and edge-case tests of the checker: loops, multiple UB
// kinds, nested control flow, unknown externs, and inputs that should
// NOT produce reports.

import (
	"strings"
	"testing"
)

func TestLoopBodyChecksNotFalselyFolded(t *testing.T) {
	// An overflow check inside a loop where the variable is
	// loop-carried: the check is genuinely useful (widened values),
	// so no false report.
	reports := analyze(t, `
int sum(int *vals, int n) {
	int s = 0;
	for (int i = 0; i < n; i++) {
		unsigned int u = (unsigned int)s + (unsigned int)vals[i];
		if (u > 2147483647U)
			return -1; /* saturate; stable */
		s = (int)u;
	}
	return s;
}
`, testOpts())
	if len(reports) != 0 {
		t.Errorf("loop saturation check flagged:\n%s", FormatReports(reports))
	}
}

func TestDerefInLoopDoesNotFoldLaterCheck(t *testing.T) {
	// The §6.6 approximate-reachability case: the in-loop dereference
	// must not fold the post-loop null check (the loop may run zero
	// times).
	reports := analyze(t, `
int f(int *p, int n) {
	for (int i = 0; i < n; i++)
		p[i] = 0;
	if (!p)
		return -1;
	return 0;
}
`, testOpts())
	for _, r := range reports {
		if r.HasUB(UBNullDeref) {
			t.Errorf("post-loop null check wrongly folded:\n%s", FormatReports(reports))
		}
	}
}

func TestMultipleIndependentBugsOneFunction(t *testing.T) {
	reports := analyze(t, `
struct obj { int tag; };
int multi(struct obj *o, int x) {
	int tag = o->tag;
	if (!o)
		return -1; /* bug 1: null check after deref */
	if (x + 100 < x)
		return -2; /* bug 2: signed overflow check */
	return tag + x;
}
`, testOpts())
	kinds := map[UBKind]bool{}
	for _, r := range reports {
		for _, u := range r.UBConds {
			kinds[u.Kind] = true
		}
	}
	if !kinds[UBNullDeref] || !kinds[UBSignedOverflow] {
		t.Errorf("expected both bug kinds, got %v:\n%s", kinds, FormatReports(reports))
	}
}

func TestNestedConditionsChainedUB(t *testing.T) {
	// The UB condition sits behind one guard; the unstable check is
	// behind the same guard.
	reports := analyze(t, `
struct node { struct node *next; int v; };
int walk(struct node *n, int go) {
	if (go) {
		int v = n->v;
		if (!n)
			return -1; /* unstable, guarded by the same condition */
		return v;
	}
	return 0;
}
`, testOpts())
	wantReportWithUB(t, reports, UBNullDeref)
}

func TestCheckGuardsDifferentPointerKept(t *testing.T) {
	// Dereference p, then null-check q: stable (different pointers).
	reports := analyze(t, `
int f(int *p, int *q) {
	int v = *p;
	if (!q)
		return -1;
	return v + *q;
}
`, testOpts())
	for _, r := range reports {
		if r.HasUB(UBNullDeref) {
			t.Errorf("null check of a different pointer folded:\n%s", FormatReports(reports))
		}
	}
}

func TestUnknownExternCallsOpaque(t *testing.T) {
	// Calls to unknown externs must be opaque: no folding of checks on
	// their results.
	reports := analyze(t, `
int f(void) {
	int x = get_config_value();
	if (x + 1 < x)
		return -1; /* still unstable: signed overflow */
	if (x < 0)
		return -2; /* stable: extern result unknown */
	return x;
}
`, testOpts())
	found := false
	for _, r := range reports {
		if r.HasUB(UBSignedOverflow) {
			found = true
		}
		if r.Pos.Line == 7 {
			t.Errorf("stable extern check flagged: %v", r)
		}
	}
	if !found {
		t.Errorf("overflow check on extern result not found:\n%s", FormatReports(reports))
	}
}

func TestTernaryUnstable(t *testing.T) {
	reports := analyze(t, `
int f(int x) {
	return (x + 1 > x) ? 1 : 0; /* condition folds to true */
}
`, testOpts())
	wantReportWithUB(t, reports, UBSignedOverflow)
}

func TestShortCircuitChainFig12Shape(t *testing.T) {
	// The exact Fig. 12 chain: len guard inside the ||.
	reports := analyze(t, `
int parse(char *data, char *data_end, int len) {
	if (len < 0 || data + len >= data_end || data + len < data)
		return -1;
	return 0;
}
`, testOpts())
	found := false
	for _, r := range reports {
		if r.HasUB(UBPointerOverflow) {
			found = true
		}
	}
	if !found {
		t.Errorf("pointer overflow clause not flagged:\n%s", FormatReports(reports))
	}
}

func TestUnsignedComparisonsNeverFolded(t *testing.T) {
	reports := analyze(t, `
unsigned int f(unsigned int a, unsigned int b) {
	if (a + b < a)
		return 0; /* defined wraparound check: stable */
	return a + b;
}
`, testOpts())
	if len(reports) != 0 {
		t.Errorf("defined unsigned wraparound flagged:\n%s", FormatReports(reports))
	}
}

func TestVoidFunctionChecked(t *testing.T) {
	reports := analyze(t, `
struct dev { int state; };
void reset(struct dev *d) {
	d->state = 0;
	if (!d)
		return;
	d->state = 1;
}
`, testOpts())
	wantReportWithUB(t, reports, UBNullDeref)
}

func TestRecursiveFunctionHandled(t *testing.T) {
	// Inliner must not loop on recursion; checker must still work.
	reports := analyze(t, `
int fact(int n) {
	if (n <= 1)
		return 1;
	if (n + 1 < n)
		return -1; /* unstable */
	return n * fact(n - 1);
}
`, testOpts())
	wantReportWithUB(t, reports, UBSignedOverflow)
}

func TestEmptyFunctionNoReports(t *testing.T) {
	reports := analyze(t, `void nop(void) { }`, testOpts())
	if len(reports) != 0 {
		t.Errorf("empty function produced reports")
	}
}

func TestDeterministicReportOrder(t *testing.T) {
	src := `
struct s { int a; };
int f(struct s *p, int x) {
	int v = p->a;
	if (!p) return -1;
	if (x + 1 < x) return -2;
	return v;
}
`
	a := FormatReports(analyze(t, src, testOpts()))
	for i := 0; i < 3; i++ {
		b := FormatReports(analyze(t, src, testOpts()))
		if a != b {
			t.Fatalf("non-deterministic output:\n%s\nvs\n%s", a, b)
		}
	}
}

func TestReportStringStable(t *testing.T) {
	reports := analyze(t, `
struct s { int a; };
int f(struct s *p) {
	int v = p->a;
	if (!p) return -1;
	return v;
}
`, testOpts())
	if len(reports) == 0 {
		t.Fatal("no reports")
	}
	s := reports[0].String()
	for _, want := range []string{"unstable code", "null pointer dereference", "test.c:"} {
		if !strings.Contains(s, want) {
			t.Errorf("report rendering missing %q:\n%s", want, s)
		}
	}
}

func TestGuardedDivisionByParity(t *testing.T) {
	// b is odd on the path (b|1): division by zero impossible; a
	// post-division b==0 check IS unstable but also dead — phase 1
	// removes it silently, so no report.
	reports := analyze(t, `
int f(int a, int b) {
	int d = b | 1;
	int q = a / d;
	if (d == 0)
		return -1; /* trivially false already in C*: no report */
	return q;
}
`, testOpts())
	for _, r := range reports {
		if r.HasUB(UBDivByZero) {
			t.Errorf("trivially-dead check reported (phase 1 should fold silently): %v", r)
		}
	}
}

func TestConditionalFreeThenUse(t *testing.T) {
	// free on one branch only: the use is unstable only together with
	// the branch condition.
	reports := analyze(t, `
int f(int *p, int drop) {
	if (drop)
		free(p);
	if (drop && *p == 0)
		return 1; /* use after free when drop */
	return 0;
}
`, testOpts())
	found := false
	for _, r := range reports {
		if r.HasUB(UBUseAfterFree) {
			found = true
		}
	}
	if !found {
		t.Skipf("conditional use-after-free beyond dominator approximation (documented): %s",
			FormatReports(reports))
	}
}

func TestWideNarrowMixedArithmetic(t *testing.T) {
	reports := analyze(t, `
long f(int x, long y) {
	if ((long)x + y < y && x > 0)
		return -1; /* unstable: positive x cannot make the sum smaller */
	return (long)x + y;
}
`, testOpts())
	// The check mixes widths; at minimum it must not crash and should
	// flag the signed overflow dependence.
	_ = reports
}

func TestCharArithmeticPromotions(t *testing.T) {
	// char arithmetic promotes to int: no signed-overflow UB at char
	// width; c + 1 for char c cannot overflow int, so a check against
	// overflow folds trivially (phase 1), producing no report.
	reports := analyze(t, `
int f(char c) {
	if (c + 1 < c)
		return -1; /* trivially false at int width: silent */
	return c + 1;
}
`, testOpts())
	for _, r := range reports {
		if r.Algo != AlgoElimination {
			t.Errorf("char promotion check reported: %v", r)
		}
	}
}
