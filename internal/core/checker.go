// Package core implements the STACK checker itself — the paper's
// primary contribution. It inserts the undefined-behavior conditions
// of Figure 3 into the IR, computes intra-function reachability
// conditions, and runs the solver-based elimination and simplification
// algorithms of §3.2 with the dominator-approximate queries of §4.4,
// generating bug reports with minimal UB-condition sets (Fig. 8) and
// origin-based suppression of compiler-generated code (§4.2).
//
// This package is internal; the supported entry point is the public
// top-level stack package, which wraps the Checker behind a
// context-aware Analyzer and converts reports into stable-coded
// diagnostics.
package core

import (
	"context"
	"sort"
	"time"

	"repro/internal/bv"
	"repro/internal/cc"
	"repro/internal/ir"
)

// Algo identifies which of STACK's algorithms produced a report
// (paper §4.4 runs them in this order).
type Algo int

// Algorithms.
const (
	AlgoElimination Algo = iota
	AlgoSimplifyBool
	AlgoSimplifyAlgebra
)

var algoNames = [...]string{"elimination", "simplification (boolean oracle)", "simplification (algebra oracle)"}

func (a Algo) String() string { return algoNames[a] }

// Options configures the checker.
type Options struct {
	// Timeout bounds each solver query; the paper used 5 seconds
	// (§6.4). Zero means no timeout.
	Timeout time.Duration
	// MaxConflictsPerQuery optionally bounds solver effort
	// deterministically (useful for reproducible benchmarks).
	MaxConflictsPerQuery int64
	// FilterOrigins suppresses reports whose unstable fragment was
	// produced by a macro expansion or inlined function (paper §4.2).
	FilterOrigins bool
	// MinUBSets computes the minimal UB-condition set per report with
	// the masking algorithm of Fig. 8. Costs extra solver queries.
	MinUBSets bool
	// Inline runs the IR inliner before checking (paper §4.2).
	Inline bool
	// LearntBudget, when positive, bounds the learned clauses each
	// function's incremental session carries between queries (see
	// bv.Session.LearntBudget). Zero means unbounded, the historical
	// behavior. The budget changes solver effort, not verdicts on
	// decided queries, but like Timeout/MaxConflictsPerQuery it can
	// flip a near-limit query to Unknown, so strict differential
	// comparisons leave it unset.
	LearntBudget int
	// ScratchSolve disables incremental solving: every solver query is
	// decided by a fresh SAT core over a freshly blasted encoding, as if
	// it were the only query ever issued. Reports, counts, and the
	// ReportLog are byte-identical to the default incremental mode —
	// only the work differs — which is exactly what the differential
	// tests assert. The identity carries a caveat like the sweep's
	// worker-count guarantee, but stronger: retained learned clauses
	// change how fast (and in how many conflicts) a query finishes, so
	// either a wall-clock Timeout or a MaxConflictsPerQuery budget can
	// flip a near-limit query to Unknown in one mode only. Strict
	// byte-for-byte comparison requires both budgets unset (zero).
	// Production callers leave ScratchSolve false.
	ScratchSolve bool
	// SSA runs the pruned-SSA pass stack (ir.RunSSAPasses: mem2reg
	// promotion of non-escaping allocas, sparse conditional constant
	// propagation, dominator-ordered value numbering, dead-store
	// elimination, loop-invariant UB hoisting) over each function
	// before UB-condition insertion and encoding, and enables the
	// dominator-ordered elimination walk on acyclic CFGs. On since
	// PR 10 (set by DefaultOptions); the legacy pipeline remains the
	// differential reference behind SSA=false. The passes are
	// engineered so that sweep output is byte-identical to the legacy
	// pipeline across the synthetic corpus
	// (TestSSAVsLegacyByteIdentity); the difference is effort —
	// promoted loads stop encoding as distinct opaque variables, so
	// downstream terms hash-cons and fewer terms reach the SAT core,
	// and dominator-implied elimination queries are skipped.
	SSA bool
	// Flags models the gcc options discussed in §7 that promise
	// C*-like semantics for some UB kinds: code is not unstable with
	// respect to behavior the compiler has been told to define.
	Flags Flags
}

// Flags mirrors the gcc workaround options of paper §7. Each flag
// removes the corresponding UB conditions from the well-defined
// program assumption, exactly as the option constrains the optimizer.
// The paper's point — that these flags cover an incomplete set of UB
// (nothing for shifts or division) — falls out of the model: there is
// no flag for the remaining kinds.
type Flags struct {
	// WrapV is -fwrapv: signed integer arithmetic wraps.
	WrapV bool
	// NoStrictOverflow is -fno-strict-overflow: pointer arithmetic
	// wraps too (implies WrapV in gcc; here it adds pointer overflow).
	NoStrictOverflow bool
	// NoDeleteNullPointerChecks is -fno-delete-null-pointer-checks.
	NoDeleteNullPointerChecks bool
}

// definesAway reports whether the flags give kind k defined behavior.
func (fl Flags) definesAway(k UBKind) bool {
	switch k {
	case UBSignedOverflow:
		return fl.WrapV || fl.NoStrictOverflow
	case UBPointerOverflow:
		return fl.NoStrictOverflow
	case UBNullDeref:
		return fl.NoDeleteNullPointerChecks
	}
	return false
}

// DefaultOptions mirror the paper's configuration, plus the SSA
// analysis pipeline, on by default since PR 10 (WithSSA(false) /
// Options.SSA=false is the escape hatch and differential reference).
var DefaultOptions = Options{
	Timeout:       5 * time.Second,
	FilterOrigins: true,
	MinUBSets:     true,
	Inline:        true,
	SSA:           true,
}

// Stats aggregates checker effort, the quantities of the paper's
// Figure 16 (queries, timeouts) plus report counts per algorithm
// (Figure 17), and the solver-layer counters of the word-level rewrite
// engine.
type Stats struct {
	Functions     int
	Blocks        int
	Queries       int64
	Timeouts      int64
	ReportsByAlgo [3]int
	// RewriteHits counts term constructions answered by bv's word-level
	// rewrite rules; TermsCreated counts interned term nodes; CacheHits
	// counts constructions answered by the hash-consing table (chain
	// canonicalization exists to drive this up); FastPaths counts
	// solver queries decided from constants without CDCL search.
	RewriteHits  int64
	TermsCreated int64
	CacheHits    int64
	FastPaths    int64
	// Incremental-session effort (see bv.Session): TermsBlasted counts
	// terms lowered to CNF, BlastPasses counts queries that lowered at
	// least one new term (so Queries/BlastPasses is the amortization
	// ratio), and LearntsReused sums the learned clauses already
	// available when each query started.
	TermsBlasted  int64
	BlastPasses   int64
	LearntsReused int64
	// LearntsDropped counts learned clauses discarded by the SAT
	// layer's database reductions and session learnt budgets;
	// ArenaBytesReused counts term-allocator bytes served from recycled
	// slabs instead of fresh heap allocations (zero until a function
	// has been checked on a warm arena).
	LearntsDropped   int64
	ArenaBytesReused int64
	// SSA pass effort (all zero unless Options.SSA): PromotedAllocas
	// counts address-taken variables mem2reg rewrote into SSA values,
	// EliminatedStores counts stores deleted by promotion and
	// dead-store elimination, GVNHits counts values merged into a
	// structurally identical representative in the same block.
	PromotedAllocas  int64
	EliminatedStores int64
	GVNHits          int64
	// Global-analysis effort (PR 10, all zero unless Options.SSA):
	// SCCPFoldedValues counts instructions sparse conditional constant
	// propagation transmuted to constants, SCCPFoldedBranches counts
	// branch conditions it proved constant, SCCPUnreachableBlocks
	// counts blocks with no executable in-edge, SCCPSharpened counts
	// the lattice-only facts beyond the rewrite layer's reach,
	// CrossBlockGVNHits counts values merged into a representative in
	// a dominating block, HoistedUBTerms counts UB-carrying
	// instructions hoisted out of loop headers, and DomOrderedSkips
	// counts elimination queries skipped because a dominated block's
	// satisfiable verdict implied them.
	SCCPFoldedValues      int64
	SCCPFoldedBranches    int64
	SCCPUnreachableBlocks int64
	SCCPSharpened         int64
	CrossBlockGVNHits     int64
	HoistedUBTerms        int64
	DomOrderedSkips       int64
	// SSASharpened counts functions where the pass stack proved a fact
	// beyond the encoding layer's rewrite rules (ir.PassStats.Sharpening)
	// — when zero, checker output is provably byte-identical to the
	// legacy pipeline's, which the differential fuzz oracle enforces.
	SSASharpened int64
	// Result-cache traffic (all zero without a configured cache; see
	// stack.WithCache): CacheResultHits counts sources answered whole
	// from the content-addressed result cache — frontend, IR, and
	// solver all skipped — and CacheResultMisses counts sources that
	// were analyzed for real (and then stored). The checker itself
	// never touches the cache; the sweep and batch layers consult it
	// per source and fold these counters in alongside the per-worker
	// stats. On a hit the program-shape counters (Functions, Blocks,
	// ReportsByAlgo) are replayed from the cached entry, while the
	// effort counters (Queries, TermsBlasted, ...) are not — a warm
	// sweep really does no solver work, which is the point.
	CacheResultHits   int64
	CacheResultMisses int64
}

// Add accumulates other into s. It is the reduction step for
// lock-free parallel checking: give each worker goroutine its own
// Checker, then merge the per-worker Stats with Add once the workers
// have finished.
func (s *Stats) Add(other Stats) {
	s.Functions += other.Functions
	s.Blocks += other.Blocks
	s.Queries += other.Queries
	s.Timeouts += other.Timeouts
	for i := range s.ReportsByAlgo {
		s.ReportsByAlgo[i] += other.ReportsByAlgo[i]
	}
	s.RewriteHits += other.RewriteHits
	s.TermsCreated += other.TermsCreated
	s.CacheHits += other.CacheHits
	s.FastPaths += other.FastPaths
	s.TermsBlasted += other.TermsBlasted
	s.BlastPasses += other.BlastPasses
	s.LearntsReused += other.LearntsReused
	s.LearntsDropped += other.LearntsDropped
	s.ArenaBytesReused += other.ArenaBytesReused
	s.PromotedAllocas += other.PromotedAllocas
	s.EliminatedStores += other.EliminatedStores
	s.GVNHits += other.GVNHits
	s.SCCPFoldedValues += other.SCCPFoldedValues
	s.SCCPFoldedBranches += other.SCCPFoldedBranches
	s.SCCPUnreachableBlocks += other.SCCPUnreachableBlocks
	s.SCCPSharpened += other.SCCPSharpened
	s.CrossBlockGVNHits += other.CrossBlockGVNHits
	s.HoistedUBTerms += other.HoistedUBTerms
	s.DomOrderedSkips += other.DomOrderedSkips
	s.SSASharpened += other.SSASharpened
	s.CacheResultHits += other.CacheResultHits
	s.CacheResultMisses += other.CacheResultMisses
}

// Checker is the STACK checker. Create with New; safe for sequential
// reuse across programs. A Checker is NOT safe for concurrent use: its
// stats accumulate without locks by design. Concurrent callers (see
// corpus.Sweeper) create one Checker per goroutine and merge the
// results with Stats.Add.
type Checker struct {
	opts  Options
	stats Stats
	// arena backs term allocation for every function this checker
	// analyzes; it is reset between functions, recycling the slabs of
	// the previous function's term DAG. Safe because nothing built
	// during CheckFunc outlives it (reports carry positions and UB
	// kinds, never terms).
	arena *bv.Arena
}

// New returns a checker with the given options.
func New(opts Options) *Checker { return &Checker{opts: opts, arena: bv.NewArena()} }

// Stats returns accumulated statistics.
func (c *Checker) Stats() Stats { return c.stats }

// ResetStats clears accumulated statistics.
func (c *Checker) ResetStats() { c.stats = Stats{} }

// CheckProgram analyzes every function and returns all reports, in
// deterministic order. Cancelling ctx aborts the analysis within one
// solver check interval; the partial results are discarded and ctx's
// error is returned.
func (c *Checker) CheckProgram(ctx context.Context, p *ir.Program) ([]*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if c.opts.Inline {
		ir.InlineProgram(p, ir.DefaultInlineOptions)
	}
	var out []*Report
	for _, f := range p.Funcs {
		reports, err := c.CheckFunc(ctx, f)
		if err != nil {
			return nil, err
		}
		out = append(out, reports...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		return a.Algo < b.Algo
	})
	return out, nil
}

// CheckFunc runs the three algorithms of §4.4 on one function:
// elimination, then boolean-oracle simplification, then algebra-oracle
// simplification. Cancellation follows the CheckProgram contract.
func (c *Checker) CheckFunc(ctx context.Context, f *ir.Func) ([]*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c.stats.Functions++
	c.stats.Blocks += len(f.Blocks)

	// One incremental session per function: the shared encoding is
	// blasted once and every query pair (reachability, then the Δ
	// "optimization-safe?" query) plus the Fig. 8 masking loop run under
	// assumptions against the same SAT core. ScratchSolve flips the
	// session into the per-query-rebuild reference mode.
	bld := bv.NewBuilderArena(c.arena)
	arenaReusedBefore := c.arena.BytesReused()
	defer c.arena.Reset()
	solver := bv.NewSession(bld)
	solver.Timeout = c.opts.Timeout
	solver.MaxConflicts = c.opts.MaxConflictsPerQuery
	solver.Scratch = c.opts.ScratchSolve
	solver.LearntBudget = c.opts.LearntBudget
	// The SSA pass stack rewrites the function before anything reads
	// it: UB conditions, the encoder's caches, and every report anchor
	// must see the final IR. The passes touch no blocks or edges, so
	// the dominator tree computed first stays valid.
	dom := ir.ComputeDom(f)
	ssaAcyclic := false
	if c.opts.SSA {
		ps := ir.RunSSAPasses(f, dom)
		c.stats.PromotedAllocas += int64(ps.PromotedAllocas)
		c.stats.EliminatedStores += int64(ps.EliminatedStores)
		c.stats.GVNHits += int64(ps.GVNHits)
		c.stats.SCCPFoldedValues += int64(ps.SCCPFoldedValues)
		c.stats.SCCPFoldedBranches += int64(ps.SCCPFoldedBranches)
		c.stats.SCCPUnreachableBlocks += int64(ps.SCCPUnreachableBlocks)
		c.stats.SCCPSharpened += int64(ps.SCCPSharpened)
		c.stats.CrossBlockGVNHits += int64(ps.CrossBlockGVNHits)
		c.stats.HoistedUBTerms += int64(ps.HoistedUBTerms)
		if ps.Sharpening() {
			c.stats.SSASharpened++
		}
		ssaAcyclic = len(ir.BackEdges(f)) == 0
	}
	enc := newEncoder(bld, f)
	ubs := insertUBConds(f)

	st := &funcState{
		c: c, ctx: ctx, f: f, enc: enc, solver: solver, ubs: ubs, dom: dom,
		eliminated: map[*ir.Block]bool{},
		domOrdered: ssaAcyclic,
	}
	for _, b := range f.Blocks {
		for _, v := range b.Values() {
			for _, u := range ubs[v] {
				if c.opts.Flags.definesAway(u.Kind) {
					continue // §7: the flag promises defined behavior
				}
				st.allConds = append(st.allConds, u)
			}
		}
	}

	var reports []*Report
	reports = append(reports, st.eliminate()...)
	reports = append(reports, st.simplify()...)

	c.stats.Queries += solver.Queries
	c.stats.Timeouts += solver.Timeouts
	c.stats.FastPaths += solver.FastPaths
	c.stats.RewriteHits += int64(bld.RewriteHits)
	c.stats.TermsCreated += int64(bld.TermsCreated)
	c.stats.CacheHits += int64(bld.CacheHits)
	c.stats.TermsBlasted += solver.Blasts()
	c.stats.BlastPasses += solver.BlastPasses
	c.stats.LearntsReused += solver.LearntsReused
	c.stats.LearntsDropped += solver.LearntsDropped()
	c.stats.DomOrderedSkips += st.domSkips
	c.stats.ArenaBytesReused += c.arena.BytesReused() - arenaReusedBefore
	for _, r := range reports {
		c.stats.ReportsByAlgo[r.Algo]++
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return reports, nil
}

type funcState struct {
	c          *Checker
	ctx        context.Context
	f          *ir.Func
	enc        *encoder
	solver     *bv.Session
	ubs        map[*ir.Value][]*UBCond
	dom        *ir.DomTree
	allConds   []*UBCond
	eliminated map[*ir.Block]bool
	// domOrdered enables the dominator-ordered elimination walk: the
	// function is acyclic (no reachability widening) and in SSA mode,
	// so a block's satisfiable elimination queries imply its
	// dominators' and those queries can be skipped. domSkips counts
	// the queries skipped that the plain walk would have issued.
	domOrdered bool
	domSkips   int64
}

// wellDefinedTerms encodes the well-defined program assumption ∆ (Def.
// 2) for a fragment anchored at block b: one term per UB condition in
// the function. Conditions whose instruction dominates the fragment
// contribute the plain ¬U_d of eq. (5); every other condition d
// contributes the guarded form R'_d → ¬U_d of eq. (2), with R'_d the
// intra-function reachability of d's block. uptoTerm includes b's own
// instructions as dominators (for fragments at b's terminator).
// Results are deduplicated by term identity.
func (st *funcState) wellDefinedTerms(b *ir.Block, uptoTerm bool) ([]*bv.Term, []*UBCond) {
	bb := st.enc.b
	dominates := func(u *UBCond) bool {
		ub := u.Value.Block
		if ub == b {
			return uptoTerm && u.Value != b.Term
		}
		return st.dom.Dominates(ub, b)
	}
	seen := map[int]bool{}
	var terms []*bv.Term
	var kept []*UBCond
	for _, u := range st.allConds {
		ut := st.enc.ubTerm(u)
		var t *bv.Term
		if dominates(u) {
			t = bb.Not(ut)
		} else {
			t = bb.Or(bb.Not(st.enc.reachability(u.Value.Block)), bb.Not(ut))
		}
		if t.IsConstBool(true) {
			continue // vacuous
		}
		if seen[t.ID()] {
			continue
		}
		seen[t.ID()] = true
		terms = append(terms, t)
		kept = append(kept, u)
	}
	return terms, kept
}

// elimVerdict memoizes one block's elimination queries. p1 and p2
// default to Sat when a query was skipped because a dominated block's
// satisfiable verdict already implied the answer (see eliminate).
type elimVerdict struct {
	trivial bool // reachability const-false: silently eliminated
	r       *bv.Term
	p1      bv.Result
	negs    []*bv.Term
	kept    []*UBCond
	p2      bv.Result
	coreIdx []int
}

// elimQueries issues the Fig. 5 solver queries for one block.
// forcedReach/forcedAlive record that a block dominated by b already
// answered Sat in phase 1 / phase 2: in an acyclic CFG every path to
// that block passes through b, so any model of its reachability (and
// of its ∆ — whose per-condition terms are pointwise implied, plain
// ¬U_d ⇒ guarded Or(¬R'_d, ¬U_d), identical terms otherwise) is a
// model of b's, and the query is skipped as Sat. Skips are counted
// only where the plain walk would actually have queried. A forcedAlive
// block still computes its ∆ terms — the plain walk does too before
// its phase-2 query, and term construction must not depend on the
// walk order.
func (st *funcState) elimQueries(b *ir.Block, forcedReach, forcedAlive bool) elimVerdict {
	v := elimVerdict{p1: bv.Sat, p2: bv.Sat}
	v.r = st.enc.reachability(b)
	if v.r.IsConstBool(false) {
		v.trivial = true // trivially unreachable
		return v
	}
	// Phase 1 (without ∆): trivially unreachable code is removed
	// silently, exactly as a C* compiler could. Constant-true
	// reachability (common after word-level rewriting) needs no
	// query at all.
	if !v.r.IsConstBool(true) {
		if forcedReach || forcedAlive {
			st.domSkips++
		} else {
			v.p1 = st.solver.SolveContext(st.ctx, v.r)
			if v.p1 != bv.Sat {
				return v
			}
		}
	}
	// Phase 2 (with the well-defined program assumption).
	v.negs, v.kept = st.wellDefinedTerms(b, false)
	if len(v.negs) == 0 {
		return v
	}
	if forcedAlive {
		st.domSkips++
		return v
	}
	assumptions := append([]*bv.Term{v.r}, v.negs...)
	v.p2, v.coreIdx = st.solver.SolveCoreContext(st.ctx, assumptions...)
	return v
}

// eliminate implements Fig. 5 over basic blocks: report blocks that
// are reachable under C* but unreachable under the well-defined
// program assumption.
//
// In dominator-ordered mode (SSA on, acyclic function) the solver
// queries run in a pre-pass over the blocks in reverse layout order,
// and a block whose phase answered Sat forces the same answer on all
// its dominators, whose queries are then skipped (elimQueries). The
// verdict for every decided query is identical to the plain walk's —
// only queries whose answer is implied are dropped — and the verdicts
// are consumed in layout order below, so the eliminated set, the
// downstream-frontier suppression, and the report order are unchanged.
// Like ScratchSolve, the different query order can shift which query a
// conflict or time budget expires on; outside budget exhaustion the
// output is byte-identical.
func (st *funcState) eliminate() []*Report {
	var out []*Report
	var verdicts map[*ir.Block]elimVerdict
	if st.domOrdered {
		verdicts = make(map[*ir.Block]elimVerdict, len(st.f.Blocks))
		forcedReach := map[*ir.Block]bool{}
		forcedAlive := map[*ir.Block]bool{}
		for i := len(st.f.Blocks) - 1; i >= 0; i-- {
			b := st.f.Blocks[i]
			if b == st.f.Entry {
				continue
			}
			if st.ctx.Err() != nil {
				break // cancelled: partial pre-pass, walk below bails too
			}
			v := st.elimQueries(b, forcedReach[b], forcedAlive[b])
			verdicts[b] = v
			if v.trivial || v.p1 != bv.Sat {
				continue
			}
			alive := len(v.negs) == 0 || v.p2 == bv.Sat
			for _, d := range st.dom.Dominators(b) {
				if d == b || d == st.f.Entry {
					continue
				}
				forcedReach[d] = true
				if alive {
					forcedAlive[d] = true
				}
			}
		}
	}
	for _, b := range st.f.Blocks {
		if st.ctx.Err() != nil {
			return out // cancelled: partial results, discarded by CheckFunc
		}
		if b == st.f.Entry {
			continue
		}
		var v elimVerdict
		if st.domOrdered {
			var ok bool
			if v, ok = verdicts[b]; !ok {
				return out // pre-pass was cancelled before reaching b
			}
		} else {
			v = st.elimQueries(b, false, false)
		}
		if v.trivial || v.p1 == bv.Unsat {
			st.eliminated[b] = true
			continue
		}
		if v.p1 == bv.Unknown || len(v.negs) == 0 || v.p2 != bv.Unsat {
			continue
		}
		r, negs, kept, coreIdx := v.r, v.negs, v.kept, v.coreIdx
		st.eliminated[b] = true
		// Only the frontier of an eliminated region is the unstable
		// code; blocks that are unreachable solely because all their
		// predecessors were eliminated are consequences of the same
		// instability and would double-count it.
		downstream := len(b.Preds) > 0
		for _, p := range b.Preds {
			if !st.eliminated[p] {
				downstream = false
				break
			}
		}
		if downstream {
			continue
		}
		rep := &Report{
			Func:   st.f.Name,
			Algo:   AlgoElimination,
			Pos:    blockPos(b),
			Origin: blockOrigin(b),
		}
		rep.UBConds = st.minimalUBSet(r, negs, kept, coreIdx, 1)
		if st.c.opts.FilterOrigins && rep.Origin != "" {
			continue // compiler-generated code (paper §4.2)
		}
		out = append(out, rep)
	}
	return out
}

// simplify implements Fig. 6 on branch conditions, first with the
// boolean oracle, then with the algebra oracle (paper §4.4 order).
func (st *funcState) simplify() []*Report {
	var out []*Report
	type condSite struct {
		blk  *ir.Block
		cond *ir.Value
	}
	var sites []condSite
	seen := map[*ir.Value]bool{}
	for _, b := range st.f.Blocks {
		if st.eliminated[b] {
			continue
		}
		// Branch conditions — unless elimination already folded the
		// branch by removing a successor, in which case re-reporting
		// the condition would double-count the same unstable code.
		if b.Term != nil && b.Term.Op == ir.OpCondBr {
			cond := b.Term.Args[0]
			seen[cond] = true
			if !st.eliminated[b.Succs[0]] && !st.eliminated[b.Succs[1]] {
				sites = append(sites, condSite{b, cond})
			}
		}
	}
	// Boolean expressions used as values (assigned, returned, merged
	// into phis): the paper's Simplify iterates over all expressions,
	// not only branch conditions (Fig. 6). Expressions whose value
	// only flows into branches that elimination already folded are the
	// same unstable check and are not re-reported.
	uses := map[*ir.Value][]*ir.Value{}
	condBrOf := map[*ir.Value][]*ir.Block{}
	for _, b := range st.f.Blocks {
		for _, v := range b.Values() {
			for _, a := range v.Args {
				uses[a] = append(uses[a], v)
			}
		}
		if b.Term != nil && b.Term.Op == ir.OpCondBr {
			condBrOf[b.Term.Args[0]] = append(condBrOf[b.Term.Args[0]], b)
		}
	}
	for _, b := range st.f.Blocks {
		if st.eliminated[b] {
			continue
		}
		for _, v := range b.Instrs {
			if v.Op == ir.OpICmp && !seen[v] && !st.sinksOnlyToFoldedBranches(v, uses, condBrOf, map[*ir.Value]bool{}) {
				seen[v] = true
				sites = append(sites, condSite{b, v})
			}
		}
	}
	// Boolean oracle.
	for _, s := range sites {
		if st.ctx.Err() != nil {
			return out
		}
		if rep := st.simplifyBool(s.blk, s.cond); rep != nil {
			out = append(out, rep)
		}
	}
	// Algebra oracle, on conditions the boolean oracle left alone.
	reported := map[*ir.Value]bool{}
	for _, r := range out {
		reported[r.cond] = true
	}
	for _, s := range sites {
		if st.ctx.Err() != nil {
			return out
		}
		if reported[s.cond] {
			continue
		}
		if rep := st.simplifyAlgebra(s.blk, s.cond); rep != nil {
			out = append(out, rep)
		}
	}
	return out
}

// sinksOnlyToFoldedBranches reports whether every transitive consumer
// of boolean value v is a conditional branch one of whose successors
// elimination removed — i.e. the instability was already reported.
func (st *funcState) sinksOnlyToFoldedBranches(v *ir.Value, uses map[*ir.Value][]*ir.Value, condBrOf map[*ir.Value][]*ir.Block, visiting map[*ir.Value]bool) bool {
	if visiting[v] {
		return true // cycle through a phi: no independent sink
	}
	visiting[v] = true
	defer delete(visiting, v)
	us := uses[v]
	brs := condBrOf[v]
	if len(us) == 0 && len(brs) == 0 {
		return false // dead value: treat as independent
	}
	for _, b := range brs {
		if !st.eliminated[b.Succs[0]] && !st.eliminated[b.Succs[1]] {
			return false // feeds a live branch: the branch site covers it
		}
	}
	for _, u := range us {
		if u.Op == ir.OpCondBr {
			continue // handled via condBrOf above
		}
		if u.Width != 1 {
			return false // escapes into non-boolean computation
		}
		if !st.sinksOnlyToFoldedBranches(u, uses, condBrOf, visiting) {
			return false
		}
	}
	return true
}

// simplifyBool proposes true and false for a branch condition
// (paper §3.2.3, boolean oracle).
func (st *funcState) simplifyBool(blk *ir.Block, cond *ir.Value) *Report {
	e := st.enc.value(cond)
	if e.Op() == bv.OpConst {
		return nil // already constant: trivially simplified
	}
	r := st.enc.reachability(blk)
	negs, kept := st.wellDefinedTerms(blk, true)
	b := st.enc.b
	for _, proposal := range []bool{true, false} {
		ne := b.Xor(e, b.Bool(proposal)) // e(x) ≠ e'(x)
		// Phase 1: trivially equivalent without ∆ — a plain compiler
		// could fold it; not unstable. Both constant verdicts are
		// decided here without a solver query.
		if ne.IsConstBool(false) {
			return nil
		}
		if !(ne.IsConstBool(true) && r.IsConstBool(true)) {
			if res := st.solver.SolveContext(st.ctx, ne, r); res != bv.Sat {
				return nil
			}
		}
		if len(negs) == 0 {
			continue
		}
		assumptions := append([]*bv.Term{ne, r}, negs...)
		res, coreIdx := st.solver.SolveCoreContext(st.ctx, assumptions...)
		if res == bv.Unsat {
			rep := &Report{
				Func:       st.f.Name,
				Algo:       AlgoSimplifyBool,
				Pos:        condPos(blk, cond),
				Origin:     condOrigin(blk, cond),
				Simplified: boolName(proposal),
				cond:       cond,
			}
			rep.UBConds = st.minimalUBSet(b.And(ne, r), negs, kept, coreIdx, 2)
			if st.c.opts.FilterOrigins && rep.Origin != "" {
				return nil
			}
			return rep
		}
	}
	return nil
}

func boolName(v bool) string {
	if v {
		return "true"
	}
	return "false"
}

// simplifyAlgebra implements the algebra oracle: eliminate a common
// term on both sides of a comparison when one side is a subexpression
// of the other, e.g. propose y < 0 for x + y < x (paper §3.2.3; the
// FFmpeg case of §6.2.2 is data + x < data ⇒ x < 0).
func (st *funcState) simplifyAlgebra(blk *ir.Block, cond *ir.Value) *Report {
	if cond.Op != ir.OpICmp {
		return nil
	}
	x, y := cond.Args[0], cond.Args[1]
	prop, desc := st.algebraProposal(cond, x, y, false)
	if prop == nil {
		prop, desc = st.algebraProposal(cond, y, x, true)
	}
	if prop == nil {
		return nil
	}
	b := st.enc.b
	e := st.enc.value(cond)
	ne := b.Xor(e, prop)
	if ne.IsConstBool(false) {
		return nil // syntactically identical already
	}
	r := st.enc.reachability(blk)
	// Phase 1, with the same constant short-circuit as simplifyBool.
	if !(ne.IsConstBool(true) && r.IsConstBool(true)) {
		if res := st.solver.SolveContext(st.ctx, ne, r); res != bv.Sat {
			return nil
		}
	}
	negs, kept := st.wellDefinedTerms(blk, true)
	if len(negs) == 0 {
		return nil
	}
	assumptions := append([]*bv.Term{ne, r}, negs...)
	res, coreIdx := st.solver.SolveCoreContext(st.ctx, assumptions...)
	if res != bv.Unsat {
		return nil
	}
	rep := &Report{
		Func:       st.f.Name,
		Algo:       AlgoSimplifyAlgebra,
		Pos:        condPos(blk, cond),
		Origin:     condOrigin(blk, cond),
		Simplified: desc,
		cond:       cond,
	}
	rep.UBConds = st.minimalUBSet(b.And(ne, r), negs, kept, coreIdx, 2)
	if st.c.opts.FilterOrigins && rep.Origin != "" {
		return nil
	}
	return rep
}

// algebraProposal builds e' for cmp(sum, base) where sum = base + off:
// the comparison reduces to comparing off against 0 with signed
// semantics (the optimizer's view once overflow is assumed away).
func (st *funcState) algebraProposal(cond, sum, base *ir.Value, swapped bool) (*bv.Term, string) {
	if sum.Op != ir.OpAdd && sum.Op != ir.OpPtrAdd {
		return nil, ""
	}
	if sum.Op == ir.OpAdd && !sum.Signed {
		return nil, "" // unsigned wraparound is defined; not unstable
	}
	var off *ir.Value
	if sum.Args[0] == base {
		off = sum.Args[1]
	} else if sum.Args[1] == base {
		off = sum.Args[0]
	} else {
		return nil, ""
	}
	b := st.enc.b
	o := st.enc.value(off)
	zero := b.ConstInt64(0, o.Width())
	pred := cond.Pred()
	if swapped {
		// cmp(base, base+off): mirror the predicate.
		switch pred {
		case ir.CmpULT:
			return b.SGT(o, zero), "0 < " + offName(off)
		case ir.CmpULE:
			return b.SGE(o, zero), "0 <= " + offName(off)
		case ir.CmpSLT:
			return b.SGT(o, zero), "0 < " + offName(off)
		case ir.CmpSLE:
			return b.SGE(o, zero), "0 <= " + offName(off)
		case ir.CmpEq:
			return b.Eq(o, zero), offName(off) + " == 0"
		case ir.CmpNe:
			return b.Ne(o, zero), offName(off) + " != 0"
		}
		return nil, ""
	}
	switch pred {
	case ir.CmpULT, ir.CmpSLT:
		return b.SLT(o, zero), offName(off) + " < 0"
	case ir.CmpULE, ir.CmpSLE:
		return b.SLE(o, zero), offName(off) + " <= 0"
	case ir.CmpEq:
		return b.Eq(o, zero), offName(off) + " == 0"
	case ir.CmpNe:
		return b.Ne(o, zero), offName(off) + " != 0"
	}
	return nil, ""
}

func offName(v *ir.Value) string {
	if v.Op == ir.OpParam {
		return v.AuxName
	}
	switch v.Op {
	case ir.OpZExt, ir.OpSExt, ir.OpTrunc, ir.OpMul:
		return offName(v.Args[0])
	}
	if v.AuxName != "" {
		return v.AuxName
	}
	return "x"
}

// minimalUBSet implements Fig. 8: mask each UB condition out of the
// query; the ones whose removal makes it satisfiable are essential.
// The solver's unsat core prunes the candidate set first. coreIdx
// indexes the caller's assumption vector, in which negs begin at
// offset.
func (st *funcState) minimalUBSet(h *bv.Term, negs []*bv.Term, conds []*UBCond, coreIdx []int, offset int) []UBRef {
	refs := func(idx []int) []UBRef {
		var out []UBRef
		seen := map[UBRef]bool{}
		for _, i := range idx {
			// The H term occupies assumption slots before negs in the
			// callers' SolveCore; normalize indices here.
			r := UBRef{Kind: conds[i].Kind, Pos: conds[i].Pos}
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
		sort.Slice(out, func(a, b int) bool {
			if out[a].Pos.Line != out[b].Pos.Line {
				return out[a].Pos.Line < out[b].Pos.Line
			}
			return out[a].Kind < out[b].Kind
		})
		return out
	}
	// Candidates: indices into negs, shifted out of the caller's
	// assumption vector.
	var candidates []int
	for _, i := range coreIdx {
		if i < offset {
			continue // belongs to the H terms
		}
		candidates = append(candidates, i-offset)
	}
	if len(candidates) == 0 {
		for i := range negs {
			candidates = append(candidates, i)
		}
	}
	if !st.c.opts.MinUBSets {
		return refs(candidates)
	}
	var minimal []int
	for _, masked := range candidates {
		assumptions := []*bv.Term{h}
		for _, j := range candidates {
			if j != masked {
				assumptions = append(assumptions, negs[j])
			}
		}
		if st.solver.SolveContext(st.ctx, assumptions...) == bv.Sat {
			minimal = append(minimal, masked)
		}
	}
	if len(minimal) == 0 {
		minimal = candidates
	}
	return refs(minimal)
}

// blockPos picks the report position for an eliminated block.
func blockPos(b *ir.Block) cc.Pos {
	for _, v := range b.Values() {
		if v.Pos.IsValid() {
			return v.Pos
		}
	}
	return cc.Pos{}
}

func blockOrigin(b *ir.Block) string {
	for _, v := range b.Values() {
		if v.Pos.IsValid() && v.Origin != "" {
			return v.Origin
		}
		if v.Pos.IsValid() {
			break
		}
	}
	// The block's own code is user-written; if every branch guarding
	// it was produced by a macro or an inlined function, the
	// elimination is still driven by compiler-generated code and is
	// suppressed (paper §4.2).
	origin := ""
	for _, p := range b.Preds {
		if p.Term == nil || p.Term.Op != ir.OpCondBr {
			return ""
		}
		o := deepOrigin(p.Term.Args[0], 4)
		if o == "" {
			return ""
		}
		origin = o
	}
	return origin
}

// deepOrigin finds a macro/inline origin in a condition's definition
// tree (bounded depth), so that checks synthesized from expanded code
// are recognized even when the outer comparison was built by the
// frontend itself.
func deepOrigin(v *ir.Value, depth int) string {
	if v.Origin != "" {
		return v.Origin
	}
	if depth == 0 {
		return ""
	}
	for _, a := range v.Args {
		if a.Op == ir.OpConst {
			continue
		}
		if o := deepOrigin(a, depth-1); o != "" {
			return o
		}
	}
	return ""
}

func condPos(blk *ir.Block, cond *ir.Value) cc.Pos {
	if cond.Pos.IsValid() {
		return cond.Pos
	}
	return blk.Term.Pos
}

func condOrigin(blk *ir.Block, cond *ir.Value) string {
	if cond.Origin != "" {
		return cond.Origin
	}
	return blk.Term.Origin
}
