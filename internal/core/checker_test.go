package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/ir"
)

func analyze(t *testing.T, src string, opts Options) []*Report {
	t.Helper()
	f, err := cc.Parse("test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := cc.Check(f); err != nil {
		t.Fatalf("check: %v", err)
	}
	p, err := ir.Build(f)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	c := New(opts)
	reports, err := c.CheckProgram(context.Background(), p)
	if err != nil {
		t.Fatalf("CheckProgram: %v", err)
	}
	return reports
}

func testOpts() Options {
	return Options{
		Timeout:       10 * time.Second,
		FilterOrigins: true,
		MinUBSets:     true,
		Inline:        true,
	}
}

func wantReportWithUB(t *testing.T, reports []*Report, kind UBKind) *Report {
	t.Helper()
	for _, r := range reports {
		if r.HasUB(kind) {
			return r
		}
	}
	t.Fatalf("no report with UB kind %q; got:\n%s", kind, FormatReports(reports))
	return nil
}

// TestFig1PointerOverflowCheck is the paper's opening example: the
// second check in Figure 1 is unstable because an overflowed pointer
// is undefined, so gcc deletes it.
func TestFig1PointerOverflowCheck(t *testing.T) {
	reports := analyze(t, `
int parse(char *buf, char *buf_end, unsigned int len) {
	if (buf + len >= buf_end)
		return -1; /* len too large */
	if (buf + len < buf)
		return -1; /* overflow */
	return 0;
}
`, testOpts())
	r := wantReportWithUB(t, reports, UBPointerOverflow)
	if r.Pos.Line != 6 && r.Pos.Line != 7 {
		t.Errorf("report at line %d, want the overflow check (6-7)", r.Pos.Line)
	}
}

// TestFig2NullCheckAfterDeref is CVE-2009-1897: tun->sk dereferences
// before the null check, making the check unstable (elimination).
func TestFig2NullCheckAfterDeref(t *testing.T) {
	reports := analyze(t, `
struct sock { int fd; };
struct tun_struct { struct sock *sk; };
int poll(struct tun_struct *tun) {
	struct sock *sk = tun->sk;
	if (!tun)
		return -22; /* POLLERR */
	return sk->fd;
}
`, testOpts())
	r := wantReportWithUB(t, reports, UBNullDeref)
	if len(r.UBConds) != 1 {
		t.Errorf("minimal UB set size %d, want 1: %v", len(r.UBConds), r.UBConds)
	}
	// The dereference is at line 5.
	if r.UBConds[0].Pos.Line != 5 {
		t.Errorf("UB condition at line %d, want 5", r.UBConds[0].Pos.Line)
	}
}

// TestSignedAddOverflowCheck is Fig. 4 column 3: x + 100 < x with
// signed x folds to false under the no-overflow assumption.
func TestSignedAddOverflowCheck(t *testing.T) {
	reports := analyze(t, `
int f(int x) {
	if (x + 100 < x)
		return 1; /* overflow happened */
	return 0;
}
`, testOpts())
	r := wantReportWithUB(t, reports, UBSignedOverflow)
	if r.Algo == AlgoElimination {
		// Either the then-block is eliminated or the condition is
		// simplified; both identify the same unstable code.
		return
	}
	if r.Simplified != "false" && r.Simplified != "x < 0" {
		t.Errorf("unexpected simplification %q", r.Simplified)
	}
}

// TestPositiveSignedCheck is Fig. 4 column 4: x+ + 100 < 0 where x is
// known positive needs reasoning from the guard.
func TestPositiveSignedCheck(t *testing.T) {
	reports := analyze(t, `
int f(int x) {
	if (x > 0) {
		if (x + 100 < 0)
			return 1;
	}
	return 0;
}
`, testOpts())
	wantReportWithUB(t, reports, UBSignedOverflow)
}

// TestOversizedShiftCheck is Fig. 4 column 5 / the ext4 patch: the
// !(1 << x) test for an oversized shift is itself unstable.
func TestOversizedShiftCheck(t *testing.T) {
	reports := analyze(t, `
int f(int x) {
	if (!(1 << x))
		return -1; /* x too large */
	return 0;
}
`, testOpts())
	wantReportWithUB(t, reports, UBOversizedShift)
}

// TestAbsCheck is Fig. 4 column 6 / the PHP case: abs(x) < 0 becomes
// dead once abs is assumed not to overflow.
func TestAbsCheck(t *testing.T) {
	reports := analyze(t, `
int f(int x) {
	if (abs(x) < 0)
		return -1; /* INT_MIN */
	return 0;
}
`, testOpts())
	wantReportWithUB(t, reports, UBAbsOverflow)
}

// TestFFmpegAlgebraOracle is Fig. 12 / §6.2.2: data + len < data with
// signed len is not always-false, but simplifies to len < 0 under the
// no-pointer-overflow assumption; only the algebra oracle catches it.
func TestFFmpegAlgebraOracle(t *testing.T) {
	reports := analyze(t, `
int parse(char *data, char *data_end, int len) {
	if (data + len >= data_end)
		return -1;
	if (data + len < data)
		return -1;
	return 0;
}
`, testOpts())
	var algebra *Report
	for _, r := range reports {
		if r.Algo == AlgoSimplifyAlgebra {
			algebra = r
		}
	}
	if algebra == nil {
		t.Fatalf("algebra oracle produced nothing:\n%s", FormatReports(reports))
	}
	if !algebra.HasUB(UBPointerOverflow) {
		t.Errorf("algebra report lacks pointer overflow: %v", algebra.UBConds)
	}
}

// TestPostgresDivisionCheck is Fig. 10: the post-division overflow
// check is unstable because the division's own UB condition implies
// the check is false.
func TestPostgresDivisionCheck(t *testing.T) {
	reports := analyze(t, `
long divide(long arg1, long arg2) {
	long result;
	if (arg2 == 0)
		return -1;
	result = arg1 / arg2;
	if (arg2 == -1 && arg1 < 0 && result <= 0)
		return -1; /* overflow check: unstable */
	return result;
}
`, testOpts())
	wantReportWithUB(t, reports, UBDivByZero)
}

// TestPostgresNegationTimeBomb is Fig. 14: arg1 != 0 && (-arg1 < 0) ==
// (arg1 < 0) is unstable via the negation's signed-overflow UB.
func TestPostgresNegationTimeBomb(t *testing.T) {
	reports := analyze(t, `
int check_min(long arg1) {
	if (arg1 != 0 && ((-arg1 < 0) == (arg1 < 0)))
		return 1; /* thinks arg1 == INT64_MIN */
	return 0;
}
`, testOpts())
	wantReportWithUB(t, reports, UBSignedOverflow)
}

// TestPlan9PdecCheck is Fig. 13: within k < 0, the check -k >= 0 is
// unstable (gcc folds it to true).
func TestPlan9PdecCheck(t *testing.T) {
	reports := analyze(t, `
int pdec(int k) {
	if (k < 0) {
		if (-k >= 0)
			return 1; /* print normally */
		return 2; /* INT_MIN path */
	}
	return 0;
}
`, testOpts())
	wantReportWithUB(t, reports, UBSignedOverflow)
}

// TestLinuxStrchrCheck is Fig. 11: !nodep where nodep = strchr(..)+1
// is unstable under no-pointer-overflow.
func TestLinuxStrchrCheck(t *testing.T) {
	reports := analyze(t, `
long parse_addr(char *buf) {
	char *nodep = strchr(buf, '.') + 1;
	if (!nodep)
		return -5; /* EIO */
	return simple_strtoul(nodep, NULL, 10);
}
`, testOpts())
	wantReportWithUB(t, reports, UBPointerOverflow)
}

// TestRedundantNullCheck is Fig. 15: the c->trans dereference makes
// the later if (c) unstable; STACK reports it (classification as
// redundant is the corpus's ground truth, §6.2.4).
func TestRedundantNullCheck(t *testing.T) {
	reports := analyze(t, `
struct p9_trans { int x; };
struct p9_client { struct p9_trans *trans; int status; };
void disconnect(struct p9_client *c) {
	struct p9_trans *rdma = c->trans;
	if (c)
		c->status = 2; /* Disconnected */
}
`, testOpts())
	wantReportWithUB(t, reports, UBNullDeref)
}

// TestStableCodeCleanPrograms: correct idiomatic checks must produce
// no reports (precision, §6.3).
func TestStableCodeCleanPrograms(t *testing.T) {
	clean := []string{
		// Null check before dereference: stable.
		`
struct s { int x; };
int f(struct s *p) {
	if (!p)
		return -1;
	return p->x;
}
`,
		// Overflow check before the addition, in the unsigned domain.
		`
int f(unsigned int x) {
	if (x > 4294967295U - 100)
		return -1;
	return (int)(x + 100);
}
`,
		// Division guarded against both zero and INT_MIN/-1.
		`
long f(long a, long b) {
	if (b == 0)
		return -1;
	if (a == (-9223372036854775807L - 1) && b == -1)
		return -1;
	return a / b;
}
`,
		// Ordinary control flow with no UB at all.
		`
int f(int n) {
	int s = 0;
	for (int i = 0; i < n; i++)
		s += i % 7;
	return s;
}
`,
		// Shift guarded by a correct range check.
		`
int f(int x) {
	if (x < 0 || x >= 32)
		return -1;
	return 1 << x;
}
`,
	}
	for i, src := range clean {
		reports := analyze(t, src, testOpts())
		filtered := reports[:0]
		for _, r := range reports {
			filtered = append(filtered, r)
		}
		if len(filtered) != 0 {
			t.Errorf("clean program %d got reports:\n%s", i, FormatReports(reports))
		}
	}
}

// TestMacroOriginSuppression is the §4.2 IS_A example: the null check
// comes from a macro, so the report must be suppressed by default and
// visible with FilterOrigins off.
func TestMacroOriginSuppression(t *testing.T) {
	src := `
#define TAG_A 1
#define IS_A(p) (p != NULL && p->tag == TAG_A)
struct node { int tag; };
int f(struct node *p) {
	p->tag = 0;
	if (IS_A(p))
		return 1;
	return 0;
}
`
	withFilter := analyze(t, src, testOpts())
	for _, r := range withFilter {
		if r.HasUB(UBNullDeref) {
			t.Errorf("macro-origin report not suppressed: %v", r)
		}
	}
	opts := testOpts()
	opts.FilterOrigins = false
	withoutFilter := analyze(t, src, opts)
	found := false
	for _, r := range withoutFilter {
		if r.HasUB(UBNullDeref) {
			found = true
		}
	}
	if !found {
		t.Errorf("expected the unstable macro check to appear with FilterOrigins=false:\n%s",
			FormatReports(withoutFilter))
	}
}

// TestInlineOriginSuppression: the same unstable pattern via an
// inlined helper is compiler-generated at the call site and must be
// suppressed (paper §4.2).
func TestInlineOriginSuppression(t *testing.T) {
	src := `
struct node { int tag; };
static int is_valid(struct node *p) {
	return p != NULL;
}
int f(struct node *p) {
	p->tag = 0;
	if (is_valid(p))
		return 1;
	return 0;
}
`
	reports := analyze(t, src, testOpts())
	for _, r := range reports {
		if r.HasUB(UBNullDeref) && r.Origin == "" {
			t.Errorf("inline-origin report not suppressed: %v", r)
		}
	}
}

// TestUseAfterFree covers the Fig. 3 library rows: a load from p after
// free(p) has the alias UB condition, making a subsequent null-style
// check unstable.
func TestUseAfterFree(t *testing.T) {
	reports := analyze(t, `
int f(int *p) {
	free(p);
	if (*p == 0)
		return 1;
	return 0;
}
`, testOpts())
	wantReportWithUB(t, reports, UBUseAfterFree)
}

// TestMemcpyOverlap: copying a buffer onto itself is UB; a dominating
// memcpy(p, p, n) with n > 0 makes later n-dependent checks unstable.
func TestMemcpyOverlap(t *testing.T) {
	reports := analyze(t, `
void f(char *dst, char *src, unsigned long n) {
	memcpy(dst, src, n);
	if (dst == src && n > 0)
		return; /* unstable: overlap UB implies this is false */
}
`, testOpts())
	wantReportWithUB(t, reports, UBMemcpyOverlap)
}

// TestBufferOverflowIndex: a constant-size array with a dominating
// store at index i makes a later bounds check on i unstable.
func TestBufferOverflowIndex(t *testing.T) {
	reports := analyze(t, `
int f(int i) {
	int arr[8];
	arr[i] = 1;
	if (i < 0 || i >= 8)
		return -1; /* too late: unstable */
	return arr[i];
}
`, testOpts())
	wantReportWithUB(t, reports, UBBufferOverflow)
}

// TestDivByZeroCheckAfterDivision: checking the divisor after
// dividing is unstable.
func TestDivByZeroCheckAfterDivision(t *testing.T) {
	reports := analyze(t, `
int f(int a, int b) {
	int q = a / b;
	if (b == 0)
		return -1;
	return q;
}
`, testOpts())
	wantReportWithUB(t, reports, UBDivByZero)
}

// TestMinimalUBSetMultiple: two independent dereferences both make the
// check unstable; Fig. 8's greedy masking keeps only conditions whose
// removal makes the query satisfiable. With two sufficient conditions,
// masking either leaves the other, so the "minimal" set by the paper's
// algorithm is empty-safe — our implementation falls back to the core.
func TestMinimalUBSetReported(t *testing.T) {
	reports := analyze(t, `
struct s { int a; };
int f(struct s *p) {
	int v = p->a;
	if (!p)
		return -1;
	return v;
}
`, testOpts())
	r := wantReportWithUB(t, reports, UBNullDeref)
	if len(r.UBConds) == 0 {
		t.Errorf("empty UB set in report")
	}
}

func TestStatsAccounting(t *testing.T) {
	f, err := cc.Parse("t.c", `
int f(int x) {
	if (x + 1 < x)
		return 1;
	return 0;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := cc.Check(f); err != nil {
		t.Fatal(err)
	}
	p, err := ir.Build(f)
	if err != nil {
		t.Fatal(err)
	}
	c := New(testOpts())
	reports, err := c.CheckProgram(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Functions != 1 || st.Queries == 0 {
		t.Errorf("stats: %+v", st)
	}
	total := 0
	for _, n := range st.ReportsByAlgo {
		total += n
	}
	if total != len(reports) {
		t.Errorf("ReportsByAlgo sums to %d, want %d", total, len(reports))
	}
}

func TestCountHelpers(t *testing.T) {
	reports := []*Report{
		{Algo: AlgoElimination, UBConds: []UBRef{{Kind: UBNullDeref}}},
		{Algo: AlgoSimplifyBool, UBConds: []UBRef{{Kind: UBNullDeref}, {Kind: UBSignedOverflow}}},
		{Algo: AlgoSimplifyBool, UBConds: []UBRef{{Kind: UBPointerOverflow}}},
	}
	byKind := CountByUBKind(reports)
	if byKind[UBNullDeref] != 2 || byKind[UBSignedOverflow] != 1 {
		t.Errorf("CountByUBKind: %v", byKind)
	}
	byAlgo := CountByAlgo(reports)
	if byAlgo[AlgoSimplifyBool] != 2 {
		t.Errorf("CountByAlgo: %v", byAlgo)
	}
	hist := MinSetSizeHistogram(reports)
	if hist[1] != 2 || hist[2] != 1 {
		t.Errorf("histogram: %v", hist)
	}
}

func TestClassify(t *testing.T) {
	div := &Report{UBConds: []UBRef{{Kind: UBDivByZero}}}
	if Classify(div, nil) != CategoryNonOptimization {
		t.Errorf("division UB should be non-optimization")
	}
	ptr := &Report{Algo: AlgoSimplifyBool, UBConds: []UBRef{{Kind: UBPointerOverflow}}}
	discardsPtr := func(k UBKind) bool { return k == UBPointerOverflow }
	if Classify(ptr, discardsPtr) != CategoryUrgent {
		t.Errorf("discarded-by-compiler should be urgent")
	}
	discardsNone := func(k UBKind) bool { return false }
	if Classify(ptr, discardsNone) != CategoryTimeBomb {
		t.Errorf("not-yet-discarded should be a time bomb")
	}
}
