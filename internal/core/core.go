package core
