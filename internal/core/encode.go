package core

import (
	"fmt"
	"math/big"

	"repro/internal/bv"
	"repro/internal/ir"
)

// encoder lowers IR values, reachability conditions, and UB conditions
// into bit-vector terms for one function. It implements the gated
// path-condition computation of Tu & Padua that STACK uses for
// intra-function reachability (paper §4.4), with back edges widened to
// fresh booleans (an acyclic approximation; see DESIGN.md).
type encoder struct {
	b        *bv.Builder
	fn       *ir.Func
	vals     map[*ir.Value]*bv.Term
	reach    map[*ir.Block]*bv.Term
	back     map[[2]*ir.Block]bool
	encoding map[*ir.Value]bool // cycle guard during value encoding
}

func newEncoder(b *bv.Builder, fn *ir.Func) *encoder {
	return &encoder{
		b:        b,
		fn:       fn,
		vals:     make(map[*ir.Value]*bv.Term),
		reach:    make(map[*ir.Block]*bv.Term),
		back:     ir.BackEdges(fn),
		encoding: make(map[*ir.Value]bool),
	}
}

// fresh returns a distinct free variable for v.
func (e *encoder) fresh(v *ir.Value, tag string) *bv.Term {
	w := v.Width
	if w == 0 {
		w = 1
	}
	return e.b.Var(fmt.Sprintf("%s.v%d", tag, v.ID), w)
}

// value returns the term for v, encoding on demand.
func (e *encoder) value(v *ir.Value) *bv.Term {
	if t, ok := e.vals[v]; ok {
		return t
	}
	if e.encoding[v] {
		// Value cycle (through loop phis): widen.
		t := e.fresh(v, "cycle")
		e.vals[v] = t
		return t
	}
	e.encoding[v] = true
	t := e.encodeValue(v)
	delete(e.encoding, v)
	e.vals[v] = t
	return t
}

func (e *encoder) encodeValue(v *ir.Value) *bv.Term {
	b := e.b
	arg := func(i int) *bv.Term { return e.value(v.Args[i]) }
	switch v.Op {
	case ir.OpConst:
		return b.Const(big.NewInt(v.Aux), v.Width)
	case ir.OpParam:
		return b.Var("param."+v.AuxName, v.Width)
	case ir.OpGlobal:
		return b.Var("global."+v.AuxName, v.Width)
	case ir.OpString:
		return e.fresh(v, "str")
	case ir.OpUnknown:
		name := v.AuxName
		if name == "" {
			name = "unknown"
		}
		return b.Var(fmt.Sprintf("%s.v%d", name, v.ID), v.Width)
	case ir.OpAdd:
		return b.Add(arg(0), arg(1))
	case ir.OpSub:
		return b.Sub(arg(0), arg(1))
	case ir.OpMul:
		return b.Mul(arg(0), arg(1))
	case ir.OpUDiv:
		return b.UDiv(arg(0), arg(1))
	case ir.OpSDiv:
		return b.SDiv(arg(0), arg(1))
	case ir.OpURem:
		return b.URem(arg(0), arg(1))
	case ir.OpSRem:
		return b.SRem(arg(0), arg(1))
	case ir.OpNeg:
		return b.Neg(arg(0))
	case ir.OpAnd:
		return b.And(arg(0), arg(1))
	case ir.OpOr:
		return b.Or(arg(0), arg(1))
	case ir.OpXor:
		return b.Xor(arg(0), arg(1))
	case ir.OpNot:
		return b.Not(arg(0))
	case ir.OpShl:
		return b.Shl(arg(0), arg(1))
	case ir.OpLShr:
		return b.LShr(arg(0), arg(1))
	case ir.OpAShr:
		return b.AShr(arg(0), arg(1))
	case ir.OpICmp:
		x, y := arg(0), arg(1)
		switch v.Pred() {
		case ir.CmpEq:
			return b.Eq(x, y)
		case ir.CmpNe:
			return b.Ne(x, y)
		case ir.CmpULT:
			return b.ULT(x, y)
		case ir.CmpULE:
			return b.ULE(x, y)
		case ir.CmpSLT:
			return b.SLT(x, y)
		case ir.CmpSLE:
			return b.SLE(x, y)
		}
	case ir.OpZExt:
		return b.ZExt(arg(0), v.Width)
	case ir.OpSExt:
		return b.SExt(arg(0), v.Width)
	case ir.OpTrunc:
		return b.Truncate(arg(0), v.Width)
	case ir.OpSelect:
		return b.ITE(arg(0), arg(1), arg(2))
	case ir.OpPtrAdd:
		return b.Add(arg(0), arg(1))
	case ir.OpIndexAddr:
		idx := arg(1)
		scaled := b.Mul(idx, b.ConstInt64(v.Aux, idx.Width()))
		return b.Add(arg(0), scaled)
	case ir.OpLoad:
		// Loads are opaque: memory is not modelled (paper §4.4 scales
		// by approximation; DESIGN.md documents this choice).
		return e.fresh(v, "load")
	case ir.OpCall:
		return e.encodeCall(v)
	case ir.OpPhi:
		return e.encodePhi(v)
	}
	panic(fmt.Sprintf("core: cannot encode %v", v.Op))
}

// encodeCall gives known pure library functions their semantics and
// treats everything else as opaque.
func (e *encoder) encodeCall(v *ir.Value) *bv.Term {
	b := e.b
	switch v.AuxName {
	case "abs", "labs":
		if len(v.Args) == 1 {
			x := e.value(v.Args[0])
			// C*: abs(INT_MIN) wraps to INT_MIN; matches the UB model.
			return b.ITE(b.SLT(x, b.ConstInt64(0, x.Width())), b.Neg(x), x)
		}
	}
	if v.Width == 0 {
		return b.Bool(true) // void call; value unused
	}
	return e.fresh(v, "call."+v.AuxName)
}

// encodePhi builds the gated-SSA gamma: an ITE chain over incoming
// edge conditions. Values arriving along back edges are widened to
// fresh variables.
func (e *encoder) encodePhi(v *ir.Value) *bv.Term {
	blk := v.Block
	for _, p := range blk.Preds {
		if e.back[[2]*ir.Block{p, blk}] {
			return e.fresh(v, "loop")
		}
	}
	if len(v.Args) == 0 {
		return e.fresh(v, "phi")
	}
	// Build right-to-left so the first predecessor's condition has
	// priority; the last value is the default arm.
	t := e.value(v.Args[len(v.Args)-1])
	for i := len(v.Args) - 2; i >= 0; i-- {
		cond := e.edgeCond(blk.Preds[i], blk)
		t = e.b.ITE(cond, e.value(v.Args[i]), t)
	}
	return t
}

// edgeCond is the condition under which control flows p -> b:
// R'(p) ∧ branch-condition.
func (e *encoder) edgeCond(p, b *ir.Block) *bv.Term {
	r := e.reachability(p)
	t := p.Term
	if t == nil || t.Op != ir.OpCondBr {
		return r
	}
	cond := e.value(t.Args[0])
	if len(p.Succs) == 2 && p.Succs[0] == b && p.Succs[1] == b {
		return r // degenerate both-edges
	}
	if p.Succs[0] == b {
		return e.b.And(r, cond)
	}
	return e.b.And(r, e.b.Not(cond))
}

// reachability returns R'(b), the reachability condition from the
// function entry (paper §4.4). Back edges contribute a fresh boolean
// (sound widening: it can only make more inputs reach b, which makes
// elimination queries harder to satisfy as UNSAT, i.e. conservative).
func (e *encoder) reachability(b *ir.Block) *bv.Term {
	if t, ok := e.reach[b]; ok {
		return t
	}
	// Guard against pathological pred cycles (only through back edges,
	// which we cut below; the placeholder is replaced before return).
	if b == e.fn.Entry {
		t := e.b.Bool(true)
		e.reach[b] = t
		return t
	}
	e.reach[b] = e.b.Var(fmt.Sprintf("reach.b%d.tmp", b.ID), 1)
	acc := e.b.Bool(false)
	for _, p := range b.Preds {
		if e.back[[2]*ir.Block{p, b}] {
			acc = e.b.Or(acc, e.b.Var(fmt.Sprintf("backedge.b%d_b%d", p.ID, b.ID), 1))
			continue
		}
		acc = e.b.Or(acc, e.edgeCond(p, b))
	}
	e.reach[b] = acc
	return acc
}

// rootPointer walks PtrAdd/IndexAddr chains back to the base pointer,
// the p of Fig. 3's null-dereference row.
func rootPointer(v *ir.Value) *ir.Value {
	for {
		switch v.Op {
		case ir.OpPtrAdd, ir.OpIndexAddr:
			v = v.Args[0]
		default:
			return v
		}
	}
}

// ubTerm encodes one Figure 3 condition as a boolean term.
func (e *encoder) ubTerm(u *UBCond) *bv.Term {
	b := e.b
	v := u.Value
	switch u.Kind {
	case UBPointerOverflow:
		// p∞ + x∞ ∉ [0, 2^n − 1]: evaluate in n+2 bits with p unsigned
		// and x signed.
		p := e.value(v.Args[0])
		x := e.value(v.Args[1])
		n := p.Width()
		pe := b.ZExt(p, n+2)
		xe := b.SExt(x, n+2)
		sum := b.Add(pe, xe)
		maxAddr := new(big.Int).Lsh(big.NewInt(1), uint(n))
		maxAddr.Sub(maxAddr, big.NewInt(1))
		return b.Or(
			b.SLT(sum, b.ConstInt64(0, n+2)),
			b.SGT(sum, b.Const(maxAddr, n+2)),
		)
	case UBNullDeref:
		base := rootPointer(v.Args[0])
		p := e.value(base)
		return b.Eq(p, b.ConstInt64(0, p.Width()))
	case UBSignedOverflow:
		switch v.Op {
		case ir.OpNeg:
			x := e.value(v.Args[0])
			return b.Eq(x, b.Const(minSigned(x.Width()), x.Width()))
		case ir.OpMul:
			x, y := e.value(v.Args[0]), e.value(v.Args[1])
			n := x.Width()
			prod := b.Mul(b.SExt(x, 2*n), b.SExt(y, 2*n))
			return b.Or(
				b.SLT(prod, b.Const(minSigned(n), 2*n)),
				b.SGT(prod, b.Const(maxSigned(n), 2*n)),
			)
		default: // Add, Sub
			x, y := e.value(v.Args[0]), e.value(v.Args[1])
			n := x.Width()
			xe, ye := b.SExt(x, n+1), b.SExt(y, n+1)
			var s *bv.Term
			if v.Op == ir.OpAdd {
				s = b.Add(xe, ye)
			} else {
				s = b.Sub(xe, ye)
			}
			return b.Or(
				b.SLT(s, b.Const(minSigned(n), n+1)),
				b.SGT(s, b.Const(maxSigned(n), n+1)),
			)
		}
	case UBDivByZero:
		y := e.value(v.Args[1])
		zero := b.Eq(y, b.ConstInt64(0, y.Width()))
		if v.Op == ir.OpSDiv || v.Op == ir.OpSRem {
			x := e.value(v.Args[0])
			n := x.Width()
			ovf := b.And(
				b.Eq(x, b.Const(minSigned(n), n)),
				b.Eq(y, b.ConstInt64(-1, n)),
			)
			return b.Or(zero, ovf)
		}
		return zero
	case UBOversizedShift:
		y := e.value(v.Args[1])
		// y < 0 ∨ y ≥ n; for signed amounts the unsigned comparison
		// subsumes the negative case.
		return b.UGE(y, b.ConstInt64(int64(v.Width), y.Width()))
	case UBBufferOverflow:
		idx := e.value(v.Args[1])
		n := idx.Width()
		return b.Or(
			b.SLT(idx, b.ConstInt64(0, n)),
			b.SGE(idx, b.ConstInt64(v.Aux2, n)),
		)
	case UBAbsOverflow:
		x := e.value(v.Args[0])
		return b.Eq(x, b.Const(minSigned(x.Width()), x.Width()))
	case UBMemcpyOverlap:
		if len(v.Args) < 3 {
			return b.Bool(false)
		}
		dst, src, ln := e.value(v.Args[0]), e.value(v.Args[1]), e.value(v.Args[2])
		ln = b.ZExt(ln, dst.Width())
		return b.Or(
			b.ULT(b.Sub(dst, src), ln),
			b.ULT(b.Sub(src, dst), ln),
		)
	case UBUseAfterFree:
		q := e.value(rootPointer(v.Args[0]))
		p := e.value(u.aux.Args[0]) // the freed pointer
		return b.Eq(p, q)           // alias(p, q) modelled as equality
	case UBUseAfterRealloc:
		q := e.value(rootPointer(v.Args[0]))
		p := e.value(u.aux.Args[0])
		np := e.value(u.aux) // realloc's result p′
		return b.And(b.Eq(p, q), b.Ne(np, b.ConstInt64(0, np.Width())))
	}
	panic("core: unhandled UB kind")
}

func minSigned(n int) *big.Int {
	v := new(big.Int).Lsh(big.NewInt(1), uint(n-1))
	return v.Neg(v)
}

func maxSigned(n int) *big.Int {
	v := new(big.Int).Lsh(big.NewInt(1), uint(n-1))
	return v.Sub(v, big.NewInt(1))
}
