package core

// Tests of the §7 compiler-flag model: -fwrapv and friends promise
// defined behavior for some UB kinds, which removes the corresponding
// instability — and only it (the paper's point is that the flags cover
// an incomplete set of UB kinds).

import "testing"

func TestWrapVSilencesSignedOverflow(t *testing.T) {
	src := `
int f(int x) {
	if (x + 100 < x)
		return -1;
	return x + 100;
}
`
	base := analyze(t, src, testOpts())
	if len(base) == 0 {
		t.Fatal("baseline must flag the overflow check")
	}
	opts := testOpts()
	opts.Flags.WrapV = true
	with := analyze(t, src, opts)
	for _, r := range with {
		if r.HasUB(UBSignedOverflow) {
			t.Errorf("-fwrapv code still flagged: %v", r)
		}
	}
}

func TestWrapVDoesNotSilencePointerOverflow(t *testing.T) {
	src := `
int f(char *p, unsigned int len) {
	if (p + len < p)
		return -1;
	return 0;
}
`
	opts := testOpts()
	opts.Flags.WrapV = true
	reports := analyze(t, src, opts)
	found := false
	for _, r := range reports {
		if r.HasUB(UBPointerOverflow) {
			found = true
		}
	}
	if !found {
		t.Error("-fwrapv must not define pointer arithmetic (that is -fno-strict-overflow)")
	}
}

func TestNoStrictOverflowSilencesPointerChecks(t *testing.T) {
	src := `
int f(char *p, unsigned int len) {
	if (p + len < p)
		return -1;
	return 0;
}
`
	opts := testOpts()
	opts.Flags.NoStrictOverflow = true
	reports := analyze(t, src, opts)
	for _, r := range reports {
		if r.HasUB(UBPointerOverflow) {
			t.Errorf("-fno-strict-overflow code still flagged: %v", r)
		}
	}
}

func TestNoDeleteNullPointerChecks(t *testing.T) {
	src := `
struct s { int a; };
int f(struct s *p) {
	int v = p->a;
	if (!p)
		return -1;
	return v;
}
`
	opts := testOpts()
	opts.Flags.NoDeleteNullPointerChecks = true
	reports := analyze(t, src, opts)
	for _, r := range reports {
		if r.HasUB(UBNullDeref) {
			t.Errorf("null check flagged despite -fno-delete-null-pointer-checks: %v", r)
		}
	}
}

// TestFlagsCoverIncompleteSet reproduces the paper's §7 criticism: the
// gcc options cover no UB kinds beyond the three; oversized shifts and
// division stay unstable under every flag combination.
func TestFlagsCoverIncompleteSet(t *testing.T) {
	src := `
int f(int x, int a, int b) {
	if (!(1 << x))
		return -1;
	int q = a / b;
	if (b == 0)
		return -2;
	return q;
}
`
	opts := testOpts()
	opts.Flags = Flags{WrapV: true, NoStrictOverflow: true, NoDeleteNullPointerChecks: true}
	reports := analyze(t, src, opts)
	var shift, div bool
	for _, r := range reports {
		if r.HasUB(UBOversizedShift) {
			shift = true
		}
		if r.HasUB(UBDivByZero) {
			div = true
		}
	}
	if !shift || !div {
		t.Errorf("shift=%v div=%v: the flags must not silence shift/division instability (no gcc option exists)",
			shift, div)
	}
}

func TestDefinesAwayTable(t *testing.T) {
	all := Flags{WrapV: true, NoStrictOverflow: true, NoDeleteNullPointerChecks: true}
	covered := 0
	for k := UBKind(0); k < UBKind(NumUBKinds); k++ {
		if all.definesAway(k) {
			covered++
		}
	}
	if covered != 3 {
		t.Errorf("flags cover %d kinds, want exactly 3 (signed, pointer, null)", covered)
	}
	if (Flags{}).definesAway(UBSignedOverflow) {
		t.Error("zero flags must define nothing away")
	}
	if !(Flags{NoStrictOverflow: true}).definesAway(UBSignedOverflow) {
		t.Error("-fno-strict-overflow implies -fwrapv semantics")
	}
}
