package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/ir"
)

// FuzzSSADifferential feeds arbitrary C sources through the checker
// with and without the SSA pass stack. This is the fuzzing analogue of
// the corpus-level TestSSAVsLegacyByteIdentity gate: the sweep corpus
// only covers the generator's templates, while the fuzzer explores the
// grammar around them — address-taken locals, duplicate
// subexpressions, overwritten stores, and whatever the mutator
// invents.
//
// The oracle is exactly the contract the passes make, keyed on
// Stats.SSASharpened (ir.PassStats.Sharpening aggregated over
// functions). Value numbering is report-preserving on every program
// (the victim's terms are interned to the representative's, so the
// deduplicated assumption list is unchanged), SCCP folds of
// already-constant operands reproduce the very terms the rewrite layer
// would have built, and the dominator-ordered elimination walk only
// skips queries whose answers are implied — so when no function
// sharpened, the reports must be byte-identical. The sharpening
// transforms (promotion, store elimination, lattice-only SCCP facts,
// hoisting) are semantics-preserving but precision-sharpening:
// promotion can prove a pointer constant (turning an opaque load into
// a value the solver folds — e.g. `int *p = *&s;` makes *p a provable
// null deref), a lattice fact can fold a loop-carried constant the
// encoder would have widened, and a hoisted condition's ∆ term
// switches from the guarded to the plain form. For those the fuzzer
// requires the SSA run to succeed (the per-pass exec-differential
// fuzzers in internal/ir pin their concrete semantics); the corpus
// gate pins their output on the distribution that matters.
func FuzzSSADifferential(f *testing.F) {
	seeds := []string{
		`int f(int a) { int x = a; int *p = &x; *p = *p + 1; return x + *p; }`,
		`int f(int a, int b) { int x = (a + b) * 3; int y = (a + b) * 3; return x - y; }`,
		`int f(int a) { int x = 1; int *p = &x; *p = 2; *p = a; return *p; }`,
		`int f(int a) { int x; int *p = &x; if (a) *p = 7; return *p; }`,
		`int f(int n) { int s = 0; int *p = &s; for (int i = 0; i < n; i++) *p = *p + i; return *p; }`,
		`int f(char *p, int o) { char *q = p + o; if (q < p) return 0; return 1; }`,
		`int f(int x) { if (x + 100 < x) return 0; return x + 100; }`,
		`int f(int a, int b) { if (b == 0) return 0; int q = a / b; int r = a / b; return q + r; }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4<<10 {
			return
		}
		reports := func(ssa bool) (string, Stats, bool) {
			file, err := cc.Parse("fuzz.c", src)
			if err != nil {
				return "", Stats{}, false
			}
			if err := cc.Check(file); err != nil {
				return "", Stats{}, false
			}
			p, err := ir.Build(file)
			if err != nil {
				return "", Stats{}, false
			}
			c := New(Options{
				Timeout: 10 * time.Second, FilterOrigins: true,
				MinUBSets: true, Inline: true, SSA: ssa,
			})
			rs, err := c.CheckProgram(context.Background(), p)
			if err != nil {
				return "", Stats{}, false
			}
			return FormatReports(rs), c.Stats(), true
		}
		legacy, _, ok := reports(false)
		if !ok {
			return // not a checkable program; nothing to compare
		}
		ssa, stats, ok := reports(true)
		if !ok {
			t.Fatal("program checked without SSA but failed with it")
		}
		if stats.SSASharpened == 0 && legacy != ssa {
			t.Fatalf("reports diverge though nothing sharpened:\n--- legacy\n%s--- ssa\n%s", legacy, ssa)
		}
	})
}
