package core

import (
	"fmt"
	"strings"

	"repro/internal/cc"
	"repro/internal/ir"
)

// UBRef references one undefined-behavior condition in a report: its
// kind and the source position of the construct carrying it.
type UBRef struct {
	Kind UBKind
	Pos  cc.Pos
}

func (r UBRef) String() string { return fmt.Sprintf("%s at %s", r.Kind, r.Pos) }

// Report is one unstable-code finding (paper §4.5): the fragment the
// solver-based optimizer discarded or simplified, together with the
// minimal set of UB conditions that made it unstable.
type Report struct {
	Func       string
	Algo       Algo
	Pos        cc.Pos
	Simplified string // proposed e' for simplification reports
	UBConds    []UBRef
	Origin     string // macro/inline origin, "" for programmer-written

	cond *ir.Value // internal: the simplified condition, for dedup
}

func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: unstable code in %s [%s]", r.Pos, r.Func, r.Algo)
	if r.Simplified != "" {
		fmt.Fprintf(&b, " — simplifies to %s", r.Simplified)
	}
	if len(r.UBConds) > 0 {
		b.WriteString("\n  due to undefined behavior:")
		for _, u := range r.UBConds {
			fmt.Fprintf(&b, "\n    %s", u)
		}
	}
	return b.String()
}

// HasUB reports whether the minimal set includes kind k.
func (r *Report) HasUB(k UBKind) bool {
	for _, u := range r.UBConds {
		if u.Kind == k {
			return true
		}
	}
	return false
}

// Category is the four-way classification of §6.2.
type Category int

// Report categories (paper §6.2).
const (
	// CategoryNonOptimization: causes problems regardless of
	// optimizations (e.g. the Postgres division of Fig. 10).
	CategoryNonOptimization Category = iota
	// CategoryUrgent: a surveyed compiler already discards the code.
	CategoryUrgent
	// CategoryTimeBomb: no surveyed compiler discards it today.
	CategoryTimeBomb
	// CategoryRedundant: a false warning; useless-but-harmless code.
	CategoryRedundant
)

var categoryNames = [...]string{
	"non-optimization bug", "urgent optimization bug", "time bomb", "redundant code",
}

func (c Category) String() string { return categoryNames[c] }

// DiscardPredicate reports whether some compiler model discards
// unstable code caused by UB kind k — supplied by the compilers
// package to avoid an import cycle.
type DiscardPredicate func(k UBKind) bool

// Classify applies the §6.2 decision procedure to a report:
// immediately-dangerous UB (division trap, null dereference before the
// check) is a non-optimization bug; UB a current compiler exploits is
// urgent; everything else is a time bomb. Redundant-code
// classification needs ground truth about intent and is the corpus's
// job (§6.2.4).
func Classify(r *Report, discards DiscardPredicate) Category {
	// Division by zero / overflow traps at runtime on x86 regardless
	// of optimization; null dereference before a check oopses.
	if r.HasUB(UBDivByZero) {
		return CategoryNonOptimization
	}
	if r.HasUB(UBNullDeref) && r.Algo != AlgoElimination {
		// The dereference precedes the (unstable) check: the program
		// already misbehaves on a null input without any optimizer.
		return CategoryNonOptimization
	}
	if discards != nil {
		for _, u := range r.UBConds {
			if discards(u.Kind) {
				return CategoryUrgent
			}
		}
		return CategoryTimeBomb
	}
	return CategoryUrgent
}

// FormatReports renders reports in the stable textual form used by
// cmd/stack and the examples.
func FormatReports(reports []*Report) string {
	if len(reports) == 0 {
		return "no unstable code found\n"
	}
	var b strings.Builder
	for _, r := range reports {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%d report(s)\n", len(reports))
	return b.String()
}

// CountByUBKind tallies reports per UB kind (paper Fig. 18); a report
// with a multi-condition minimal set counts once per kind involved.
func CountByUBKind(reports []*Report) map[UBKind]int {
	out := map[UBKind]int{}
	for _, r := range reports {
		seen := map[UBKind]bool{}
		for _, u := range r.UBConds {
			if !seen[u.Kind] {
				seen[u.Kind] = true
				out[u.Kind]++
			}
		}
	}
	return out
}

// CountByAlgo tallies reports per algorithm (paper Fig. 17).
func CountByAlgo(reports []*Report) map[Algo]int {
	out := map[Algo]int{}
	for _, r := range reports {
		out[r.Algo]++
	}
	return out
}

// MinSetSizeHistogram returns how many reports have minimal UB sets of
// each size (paper §6.5: 69,301 with one condition, 2,579 with more,
// up to eight).
func MinSetSizeHistogram(reports []*Report) map[int]int {
	out := map[int]int{}
	for _, r := range reports {
		out[len(r.UBConds)]++
	}
	return out
}
