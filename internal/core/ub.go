package core

import (
	"fmt"

	"repro/internal/cc"
	"repro/internal/ir"
)

// UBKind labels one row of the paper's Figure 3.
type UBKind int

// UB kinds, in the order of the paper's Figure 9 breakdown.
const (
	UBPointerOverflow UBKind = iota // p + x out of address space
	UBNullDeref                     // *p with p == NULL
	UBSignedOverflow                // x ops y out of signed range
	UBDivByZero                     // x/0, x%0 (incl. INT_MIN/-1)
	UBOversizedShift                // shift amount < 0 or >= width
	UBBufferOverflow                // a[x] with x out of bounds
	UBAbsOverflow                   // abs(INT_MIN)
	UBMemcpyOverlap                 // overlapping memcpy
	UBUseAfterFree                  // use q after free(p), alias(p,q)
	UBUseAfterRealloc               // use q after realloc(p), alias(p,q)
	numUBKinds
)

var ubKindNames = [...]string{
	"pointer overflow", "null pointer dereference",
	"signed integer overflow", "division by zero", "oversized shift",
	"buffer overflow", "absolute value overflow",
	"overlapping memory copy", "use after free", "use after realloc",
}

func (k UBKind) String() string { return ubKindNames[k] }

// NumUBKinds is the number of modelled UB kinds (Fig. 3).
const NumUBKinds = int(numUBKinds)

// UBCond is one inserted bug_on condition (paper §4.3): the value it
// is attached to, its kind, and the source position for reporting.
type UBCond struct {
	Kind  UBKind
	Value *ir.Value // the instruction whose execution has this UB condition
	Pos   cc.Pos
	// aux carries extra operands for conditions that relate two
	// values (use-after-free pairs).
	aux *ir.Value
}

func (u *UBCond) String() string {
	return fmt.Sprintf("%s at %s", u.Kind, u.Pos)
}

// insertUBConds computes the Figure 3 conditions for every instruction
// in f, in block order. It returns them grouped by value. This is the
// analogue of STACK's bug_on insertion stage: the conditions become
// the ∆(x) terms of the well-defined program assumption (Def. 2).
func insertUBConds(f *ir.Func) map[*ir.Value][]*UBCond {
	out := make(map[*ir.Value][]*UBCond)
	add := func(v *ir.Value, k UBKind, aux *ir.Value) {
		out[v] = append(out[v], &UBCond{Kind: k, Value: v, Pos: v.Pos, aux: aux})
	}
	// Track free/realloc calls for use-after-free conditions: any
	// memory access or pointer use dominated by free(p) carries the
	// condition alias(p, q). The dominance check happens at query
	// time; here we record the pairs per accessing value.
	var frees []*ir.Value    // free(p) calls
	var reallocs []*ir.Value // realloc(p, n) calls
	for _, b := range f.Blocks {
		for _, v := range b.Values() {
			switch v.Op {
			case ir.OpPtrAdd:
				add(v, UBPointerOverflow, nil)
			case ir.OpLoad, ir.OpStore:
				add(v, UBNullDeref, nil)
				for _, fr := range frees {
					add(v, UBUseAfterFree, fr)
				}
				for _, ra := range reallocs {
					add(v, UBUseAfterRealloc, ra)
				}
			case ir.OpAdd, ir.OpSub, ir.OpMul:
				if v.Signed {
					add(v, UBSignedOverflow, nil)
				}
			case ir.OpNeg:
				if v.Signed {
					add(v, UBSignedOverflow, nil)
				}
			case ir.OpSDiv, ir.OpSRem, ir.OpUDiv, ir.OpURem:
				add(v, UBDivByZero, nil)
			case ir.OpShl, ir.OpLShr, ir.OpAShr:
				add(v, UBOversizedShift, nil)
			case ir.OpIndexAddr:
				if v.Aux2 > 0 {
					add(v, UBBufferOverflow, nil)
				}
			case ir.OpCall:
				switch v.AuxName {
				case "abs", "labs":
					add(v, UBAbsOverflow, nil)
				case "memcpy":
					add(v, UBMemcpyOverlap, nil)
				case "free":
					frees = append(frees, v)
				case "realloc":
					reallocs = append(reallocs, v)
				}
			}
		}
	}
	return out
}
