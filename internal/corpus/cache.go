package corpus

import "repro/internal/core"

// CachedFile is one source file's finished analysis as a result cache
// stores and replays it: everything a sweep needs to emit the file
// without running the frontend, IR construction, or the solver.
//
// Functions and Blocks are the program-shape quantities the checker
// would have added to its stats for this file; replaying them keeps a
// warm sweep's shape counters (and the Functions column of per-file
// results) byte-identical to a cold one. Solver-effort counters are
// deliberately absent: a cache hit does no solver work, and the stats
// are honest about it.
type CachedFile struct {
	Functions int
	Blocks    int
	Reports   []*core.Report
}

// ResultCache answers whole per-file analyses by source content. The
// sweep consults it per file before the frontend runs; a hit skips
// every stage and the cached reports flow through the in-order emitter
// exactly like fresh ones, so ordering and byte-identity of the
// diagnostic stream are untouched.
//
// The cache is keyed by content, not by name — Lookup receives the
// display name only so implementations can rehydrate name-dependent
// report positions (every span in a cached report names the file that
// was analyzed when the entry was stored; the stack layer rewrites
// them to the requesting name). Implementations must be safe for
// concurrent use: one ResultCache serves every worker of a sweep.
// Lookup must treat any unreadable, truncated, or corrupt entry as a
// miss — never as an error, and never as a payload.
type ResultCache interface {
	Lookup(name, src string) (CachedFile, bool)
	Store(name, src string, cf CachedFile)
}
