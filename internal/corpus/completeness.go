package corpus

import "repro/internal/core"

// CompletenessTest is one entry of the §6.6 benchmark, collected from
// Regehr's "undefined behavior consequences contest" winners and Wang
// et al.'s survey: ten tests from real systems. STACK identifies seven;
// it misses two whose UB kinds it deliberately does not implement
// (strict aliasing, uninitialized variables — paper §4.6) and one due
// to approximate reachability conditions.
type CompletenessTest struct {
	Name     string
	Source   string
	Kind     core.UBKind // expected UB kind when Expected is true
	Expected bool        // should STACK find it?
	WhyMiss  string      // for Expected == false
}

// CompletenessSuite is the ten-test benchmark.
var CompletenessSuite = []CompletenessTest{
	{
		Name: "pointer-overflow-check (Chromium/CERT VU#162289)",
		Source: `
int t1(char *buf, char *buf_end, unsigned int len) {
	if (buf + len >= buf_end)
		return -1;
	if (buf + len < buf)
		return -1;
	return 0;
}`,
		Kind:     core.UBPointerOverflow,
		Expected: true,
	},
	{
		Name: "null-check-after-deref (Linux CVE-2009-1897)",
		Source: `
struct sock { int fd; };
struct tun { struct sock *sk; };
int t2(struct tun *tun) {
	struct sock *sk = tun->sk;
	if (!tun)
		return -1;
	return sk->fd;
}`,
		Kind:     core.UBNullDeref,
		Expected: true,
	},
	{
		Name: "signed-overflow-check (gcc bug 30475)",
		Source: `
int t3(int x) {
	if (x + 100 < x)
		return -1;
	return 0;
}`,
		Kind:     core.UBSignedOverflow,
		Expected: true,
	},
	{
		Name: "oversized-shift-check (Linux ext4 bug 14287)",
		Source: `
int t4(int groups_per_flex) {
	if (!(1 << groups_per_flex))
		return -1;
	return 1 << groups_per_flex;
}`,
		Kind:     core.UBOversizedShift,
		Expected: true,
	},
	{
		Name: "abs-check (PHP / gcc bug 49820)",
		Source: `
int t5(int x) {
	if (abs(x) < 0)
		return -1;
	return abs(x);
}`,
		Kind:     core.UBAbsOverflow,
		Expected: true,
	},
	{
		Name: "division-overflow-check (Postgres)",
		Source: `
long t6(long a, long b) {
	long r;
	if (b == 0)
		return -1;
	r = a / b;
	if (b == -1 && a < 0 && r <= 0)
		return -1;
	return r;
}`,
		Kind:     core.UBDivByZero,
		Expected: true,
	},
	{
		Name: "negation-check (plan9port pdec)",
		Source: `
int t7(int k) {
	if (k < 0) {
		if (-k >= 0)
			return 1;
		return 2;
	}
	return 0;
}`,
		Kind:     core.UBSignedOverflow,
		Expected: true,
	},
	{
		Name: "strict-aliasing violation (not implemented, §4.6)",
		Source: `
int t8(int *ip, short *sp) {
	*ip = 1;
	*sp = 2; /* may alias *ip through incompatible type: UB */
	return *ip;
}`,
		Expected: false,
		WhyMiss:  "strict-aliasing UB conditions deliberately not implemented (gcc warns already)",
	},
	{
		Name: "uninitialized-variable use (not implemented, §4.6)",
		Source: `
int t9(int c) {
	int x;
	if (c)
		x = 1;
	return x; /* uninitialized when !c: UB */
}`,
		Expected: false,
		WhyMiss:  "uninitialized-use UB conditions deliberately not implemented",
	},
	{
		Name: "loop-guarded check (approximate reachability, §4.6)",
		Source: `
int t10(int *p, int n) {
	int i = 0;
	while (i < n) {
		*p = i; /* dereference inside the loop */
		i++;
	}
	if (!p)
		return -1; /* unstable only if the loop body executed */
	return 0;
}`,
		Expected: false,
		WhyMiss:  "back-edge widening makes the in-loop dereference's reachability opaque",
	},
}
