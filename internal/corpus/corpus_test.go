package corpus

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/ir"
)

func checkSource(t *testing.T, name, src string) []*core.Report {
	t.Helper()
	f, err := cc.Parse(name, src)
	if err != nil {
		t.Fatalf("%s: parse: %v", name, err)
	}
	if err := cc.Check(f); err != nil {
		t.Fatalf("%s: check: %v", name, err)
	}
	p, err := ir.Build(f)
	if err != nil {
		t.Fatalf("%s: build: %v", name, err)
	}
	c := core.New(core.Options{
		Timeout: 10 * time.Second, FilterOrigins: true, MinUBSets: true, Inline: true,
	})
	reports, err := c.CheckProgram(context.Background(), p)
	if err != nil {
		t.Fatalf("%s: CheckProgram: %v", name, err)
	}
	return reports
}

func TestFig9DistributionTotals(t *testing.T) {
	total, byKind := Fig9Totals()
	if total != 160 {
		t.Errorf("corpus total = %d, want 160", total)
	}
	want := map[core.UBKind]int{
		core.UBPointerOverflow: 29, core.UBNullDeref: 44,
		core.UBSignedOverflow: 23, core.UBDivByZero: 7,
		core.UBOversizedShift: 23, core.UBBufferOverflow: 14,
		core.UBAbsOverflow: 1, core.UBMemcpyOverlap: 7,
		core.UBUseAfterFree: 9, core.UBUseAfterRealloc: 3,
	}
	for k, n := range want {
		if byKind[k] != n {
			t.Errorf("%v: corpus has %d, paper column total is %d", k, byKind[k], n)
		}
	}
	if len(Fig9) != 24 {
		t.Errorf("rows = %d, want 24", len(Fig9))
	}
}

func TestFig9RowTotals(t *testing.T) {
	want := map[string]int{
		"Binutils": 8, "e2fsprogs": 3, "FFmpeg+Libav": 21, "FreeType": 3,
		"GRUB": 2, "HiStar": 3, "Kerberos": 11, "libX11": 2,
		"libarchive": 2, "libgcrypt": 2, "Linux kernel": 32, "Mozilla": 3,
		"OpenAFS": 11, "plan9port": 3, "Postgres": 9, "Python": 5,
		"QEMU": 4, "Ruby+Rubinius": 2, "Sane": 8, "uClibc": 2,
		"VLC": 2, "Xen": 3, "Xpdf": 9, "others": 10,
	}
	for _, row := range Fig9 {
		if row.Total() != want[row.System] {
			t.Errorf("%s: row total %d, want %d", row.System, row.Total(), want[row.System])
		}
	}
}

// TestFig9CorpusDetection is the Figure 9 reproduction: STACK must
// detect every planted bug in the generated corpus (the paper's 160
// developer-confirmed bugs), with the right UB kind, and produce no
// reports on the stable filler functions.
func TestFig9CorpusDetection(t *testing.T) {
	sources := GenerateFig9()
	if len(sources) != 24 {
		t.Fatalf("generated %d systems, want 24", len(sources))
	}
	totalDetected := 0
	detectedByKind := map[core.UBKind]int{}
	for _, ss := range sources {
		reports := checkSource(t, sanitize(ss.System)+".c", ss.Source)
		// Group reports by function.
		byFunc := map[string][]*core.Report{}
		for _, r := range reports {
			byFunc[r.Func] = append(byFunc[r.Func], r)
		}
		for _, bug := range ss.Bugs {
			found := false
			for _, r := range byFunc[bug.FuncName] {
				if r.HasUB(bug.Kind) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: planted %v bug in %s not detected", ss.System, bug.Kind, bug.FuncName)
				continue
			}
			totalDetected++
			detectedByKind[bug.Kind]++
		}
		// Precision: stable fillers must stay clean.
		for fn := range byFunc {
			if strings.Contains(fn, "_f") && !strings.ContainsAny(fn[len(fn)-1:], "0123456789") {
				continue
			}
			planted := false
			for _, bug := range ss.Bugs {
				if bug.FuncName == fn {
					planted = true
				}
			}
			if !planted {
				t.Errorf("%s: false warning in stable function %s:\n%s",
					ss.System, fn, core.FormatReports(byFunc[fn]))
			}
		}
	}
	if totalDetected != 160 {
		t.Errorf("detected %d/160 planted bugs", totalDetected)
	}
	if detectedByKind[core.UBNullDeref] != 44 {
		t.Errorf("null-deref bugs detected: %d, want 44", detectedByKind[core.UBNullDeref])
	}
}

// TestCompletenessSuite reproduces §6.6: 7 of 10 found; the strict
// aliasing, uninitialized-use, and loop-reachability cases missed.
func TestCompletenessSuite(t *testing.T) {
	if len(CompletenessSuite) != 10 {
		t.Fatalf("suite has %d tests, want 10", len(CompletenessSuite))
	}
	found := 0
	for _, tc := range CompletenessSuite {
		reports := checkSource(t, "completeness.c", tc.Source)
		detected := false
		for _, r := range reports {
			if !tc.Expected || r.HasUB(tc.Kind) {
				detected = len(reports) > 0
				if tc.Expected && r.HasUB(tc.Kind) {
					detected = true
					break
				}
			}
		}
		if tc.Expected && !detected {
			t.Errorf("%s: expected detection, got none", tc.Name)
		}
		if !tc.Expected && len(reports) > 0 {
			t.Errorf("%s: expected miss (%s), got:\n%s", tc.Name, tc.WhyMiss, core.FormatReports(reports))
		}
		if detected && tc.Expected {
			found++
		}
	}
	if found != 7 {
		t.Errorf("found %d/10, paper reports 7/10", found)
	}
}

func TestGenerateArchiveDeterministic(t *testing.T) {
	cfg := ArchiveConfig{Packages: 10, FilesPerPackage: 2, FuncsPerFile: 4, UnstableFraction: 0.5, Seed: 7}
	a := GenerateArchive(cfg)
	b := GenerateArchive(cfg)
	if len(a) != len(b) || len(a) != 10 {
		t.Fatalf("lengths differ: %d %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i].Files) != len(b[i].Files) {
			t.Fatalf("pkg %d files differ", i)
		}
		for j := range a[i].Files {
			if a[i].Files[j] != b[i].Files[j] {
				t.Fatalf("pkg %d file %d not deterministic", i, j)
			}
		}
	}
}

// TestSweepSmall runs a small archive end to end and checks the §6.5
// shape: a plausible fraction of packages with reports, null-deref the
// dominant UB kind, every planted kind detected somewhere.
func TestSweepSmall(t *testing.T) {
	cfg := ArchiveConfig{
		Packages: 40, FilesPerPackage: 2, FuncsPerFile: 5,
		UnstableFraction: 0.405, Seed: 20130324,
	}
	pkgs := GenerateArchive(cfg)
	res, err := Sweep(context.Background(), pkgs, core.Options{
		Timeout: 10 * time.Second, FilterOrigins: true, MinUBSets: true, Inline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Packages != 40 {
		t.Fatalf("packages = %d", res.Packages)
	}
	// Every package with planted bugs must have reports; none without.
	planted := 0
	for _, p := range pkgs {
		if len(p.Planted) > 0 {
			planted++
		}
	}
	if res.PackagesWithReports != planted {
		t.Errorf("packages with reports = %d, packages with planted bugs = %d",
			res.PackagesWithReports, planted)
	}
	if res.Queries == 0 {
		t.Error("no solver queries recorded")
	}
	// Null-deref dominates the Fig. 18 distribution.
	maxKind, maxN := core.UBKind(0), -1
	totalPlantedNull := 0
	for _, p := range pkgs {
		totalPlantedNull += p.Planted[core.UBNullDeref]
	}
	for k, n := range res.ReportsByKind {
		if n > maxN {
			maxKind, maxN = k, n
		}
	}
	if totalPlantedNull > 5 && maxKind != core.UBNullDeref {
		t.Errorf("dominant UB kind = %v (%d), want null-deref per Fig. 18", maxKind, maxN)
	}
	s := res.Format()
	for _, want := range []string{"packages checked", "Fig. 17", "Fig. 18"} {
		if !strings.Contains(s, want) {
			t.Errorf("format output missing %q", want)
		}
	}
}

// TestTemplatesAllDetected checks each template variant individually:
// one report of the right kind, so corpus counts stay exact.
func TestTemplatesAllDetected(t *testing.T) {
	pools := []map[core.UBKind][]string{templates, valueTemplates}
	for pi, pool := range pools {
		for kind, tpls := range pool {
			for vi, tpl := range tpls {
				src := instantiate(tpl, "probe")
				reports := checkSource(t, "tpl.c", src)
				found := false
				for _, r := range reports {
					if r.HasUB(kind) {
						found = true
					}
				}
				if !found {
					t.Errorf("pool %d template %v variant %d undetected:\n%s\nreports:\n%s",
						pi, kind, vi, src, core.FormatReports(reports))
				}
			}
		}
	}
}

// TestValueTemplatesYieldSimplification: the value-form templates must
// produce simplification (not elimination) reports, preserving the
// Fig. 17 report-shape of the Debian sweep.
func TestValueTemplatesYieldSimplification(t *testing.T) {
	for kind, tpls := range valueTemplates {
		for vi, tpl := range tpls {
			src := instantiate(tpl, "probe")
			reports := checkSource(t, "tpl.c", src)
			hasSimplify := false
			for _, r := range reports {
				if r.Algo == core.AlgoSimplifyBool || r.Algo == core.AlgoSimplifyAlgebra {
					hasSimplify = true
				}
			}
			if !hasSimplify {
				t.Errorf("value template %v variant %d produced no simplification report:\n%s",
					kind, vi, core.FormatReports(reports))
			}
		}
	}
}

// TestFillersAllClean checks that stable fillers never produce
// reports (corpus precision baseline).
func TestFillersAllClean(t *testing.T) {
	for i, tpl := range stableFillers {
		src := instantiate(tpl, "clean")
		reports := checkSource(t, "filler.c", src)
		if len(reports) != 0 {
			t.Errorf("filler %d produced reports:\n%s", i, core.FormatReports(reports))
		}
	}
}

// TestKerberosPrecisionAfterFixes reproduces the §6.3 Kerberos result:
// the row's 11 bugs are detected; after applying the fixes, STACK
// produces zero reports.
func TestKerberosPrecisionAfterFixes(t *testing.T) {
	var row Fig9Row
	for _, r := range Fig9 {
		if r.System == "Kerberos" {
			row = r
		}
	}
	if row.Total() != 11 {
		t.Fatalf("Kerberos row total %d, want 11", row.Total())
	}
	fixed := GenerateFixedRow(row)
	reports := checkSource(t, "kerberos_fixed.c", fixed.Source)
	if len(reports) != 0 {
		t.Errorf("fixed Kerberos corpus still yields reports:\n%s", core.FormatReports(reports))
	}
}

// TestAllFixedTemplatesClean: every corrected template must be report-
// free — the fixes the checker's reports are supposed to motivate.
func TestAllFixedTemplatesClean(t *testing.T) {
	for kind, tpls := range FixedTemplates {
		for vi, tpl := range tpls {
			src := instantiate(tpl, "fixedprobe")
			reports := checkSource(t, "fixed.c", src)
			if len(reports) != 0 {
				t.Errorf("fixed template %v variant %d yields reports:\n%s",
					kind, vi, core.FormatReports(reports))
			}
		}
	}
}

// TestFixedCorpusAllRows extends the zero-report property to every
// Figure 9 row's fixed form.
func TestFixedCorpusAllRows(t *testing.T) {
	for _, row := range Fig9 {
		fixed := GenerateFixedRow(row)
		reports := checkSource(t, sanitize(row.System)+"_fixed.c", fixed.Source)
		if len(reports) != 0 {
			t.Errorf("%s fixed: %d report(s):\n%s", row.System, len(reports), core.FormatReports(reports))
		}
	}
}
