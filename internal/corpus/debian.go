package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
)

// The paper checked the 8,575 Debian Wheezy packages containing C/C++
// (§6.5), finding unstable code in 3,471 (~40%), with reports
// distributed over UB kinds per Figure 18. This generator produces a
// synthetic archive whose planted-bug mix follows that measured
// distribution, scaled down to laptop size, so the full pipeline
// (preprocess → parse → IR → solver) runs the same work per package.

// Fig18Weights is the measured report distribution over the UB kinds
// this reproduction models (paper Fig. 18; the aliasing and cttz/ctlz
// rows concern UB kinds outside Fig. 3's implemented set — see
// EXPERIMENTS.md).
var Fig18Weights = map[core.UBKind]int{
	core.UBNullDeref:       59230,
	core.UBBufferOverflow:  5795,
	core.UBSignedOverflow:  4364,
	core.UBPointerOverflow: 3680,
	core.UBOversizedShift:  594,
	core.UBMemcpyOverlap:   227,
	core.UBDivByZero:       226,
	core.UBUseAfterFree:    156,
	core.UBAbsOverflow:     86,
	core.UBUseAfterRealloc: 22,
}

// ArchiveConfig sizes a synthetic archive.
type ArchiveConfig struct {
	Packages         int
	FilesPerPackage  int
	FuncsPerFile     int
	UnstableFraction float64 // fraction of packages containing unstable code (paper: ~0.40)
	Seed             int64
}

// DefaultArchive is a laptop-scale stand-in for the Wheezy sweep.
var DefaultArchive = ArchiveConfig{
	Packages:         120,
	FilesPerPackage:  3,
	FuncsPerFile:     6,
	UnstableFraction: 0.405, // 3,471 / 8,575
	Seed:             20130324,
}

// Package is one generated package.
type Package struct {
	Name    string
	Files   []string // C sources
	Planted map[core.UBKind]int
}

// GenerateArchive deterministically generates the synthetic archive.
func GenerateArchive(cfg ArchiveConfig) []Package {
	rng := rand.New(rand.NewSource(cfg.Seed))
	kinds, cum, total := weightTable()
	pkgs := make([]Package, 0, cfg.Packages)
	for pi := 0; pi < cfg.Packages; pi++ {
		name := fmt.Sprintf("pkg%03d", pi)
		unstable := rng.Float64() < cfg.UnstableFraction
		p := Package{Name: name, Planted: map[core.UBKind]int{}}
		for fi := 0; fi < cfg.FilesPerPackage; fi++ {
			var src strings.Builder
			fmt.Fprintf(&src, "/* %s file %d */\n", name, fi)
			for fn := 0; fn < cfg.FuncsPerFile; fn++ {
				fname := fmt.Sprintf("%s_f%d_%d", name, fi, fn)
				// In unstable packages, roughly one function in four
				// carries a planted bug.
				if unstable && rng.Intn(4) == 0 {
					kind := pickKind(rng, kinds, cum, total)
					// A small slice of plants use the data+x<data shape
					// that only the algebra oracle simplifies (paper:
					// 871 of ~71,880 reports, ≈1.2%).
					if rng.Intn(64) == 0 {
						kind = core.UBPointerOverflow
						src.WriteString(instantiate(templates[kind][2], fname))
						p.Planted[kind]++
						src.WriteByte('\n')
						continue
					}
					// Prefer value-form unstable expressions 2:1 over
					// branch-form checks, matching the Fig. 17 ratio of
					// boolean-oracle to elimination reports.
					tpls := templates[kind]
					if vts := valueTemplates[kind]; len(vts) > 0 && rng.Intn(3) != 0 {
						tpls = vts
					}
					tpl := tpls[rng.Intn(len(tpls))]
					src.WriteString(instantiate(tpl, fname))
					p.Planted[kind]++
				} else {
					filler := stableFillers[rng.Intn(len(stableFillers))]
					src.WriteString(instantiate(filler, fname))
				}
				src.WriteByte('\n')
			}
			p.Files = append(p.Files, src.String())
		}
		pkgs = append(pkgs, p)
	}
	return pkgs
}

func weightTable() (kinds []core.UBKind, cum []int, total int) {
	for _, k := range kindOrder {
		w := Fig18Weights[k]
		if w == 0 {
			continue
		}
		total += w
		kinds = append(kinds, k)
		cum = append(cum, total)
	}
	return kinds, cum, total
}

func pickKind(rng *rand.Rand, kinds []core.UBKind, cum []int, total int) core.UBKind {
	x := rng.Intn(total)
	for i, c := range cum {
		if x < c {
			return kinds[i]
		}
	}
	return kinds[len(kinds)-1]
}
