package corpus

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/ir"
)

// The paper checked the 8,575 Debian Wheezy packages containing C/C++
// (§6.5), finding unstable code in 3,471 (~40%), with reports
// distributed over UB kinds per Figure 18. This generator produces a
// synthetic archive whose planted-bug mix follows that measured
// distribution, scaled down to laptop size, so the full pipeline
// (preprocess → parse → IR → solver) runs the same work per package.

// Fig18Weights is the measured report distribution over the UB kinds
// this reproduction models (paper Fig. 18; the aliasing and cttz/ctlz
// rows concern UB kinds outside Fig. 3's implemented set — see
// EXPERIMENTS.md).
var Fig18Weights = map[core.UBKind]int{
	core.UBNullDeref:       59230,
	core.UBBufferOverflow:  5795,
	core.UBSignedOverflow:  4364,
	core.UBPointerOverflow: 3680,
	core.UBOversizedShift:  594,
	core.UBMemcpyOverlap:   227,
	core.UBDivByZero:       226,
	core.UBUseAfterFree:    156,
	core.UBAbsOverflow:     86,
	core.UBUseAfterRealloc: 22,
}

// ArchiveConfig sizes a synthetic archive.
type ArchiveConfig struct {
	Packages         int
	FilesPerPackage  int
	FuncsPerFile     int
	UnstableFraction float64 // fraction of packages containing unstable code (paper: ~0.40)
	Seed             int64
}

// DefaultArchive is a laptop-scale stand-in for the Wheezy sweep.
var DefaultArchive = ArchiveConfig{
	Packages:         120,
	FilesPerPackage:  3,
	FuncsPerFile:     6,
	UnstableFraction: 0.405, // 3,471 / 8,575
	Seed:             20130324,
}

// Package is one generated package.
type Package struct {
	Name    string
	Files   []string // C sources
	Planted map[core.UBKind]int
}

// GenerateArchive deterministically generates the synthetic archive.
func GenerateArchive(cfg ArchiveConfig) []Package {
	rng := rand.New(rand.NewSource(cfg.Seed))
	kinds, cum, total := weightTable()
	pkgs := make([]Package, 0, cfg.Packages)
	for pi := 0; pi < cfg.Packages; pi++ {
		name := fmt.Sprintf("pkg%03d", pi)
		unstable := rng.Float64() < cfg.UnstableFraction
		p := Package{Name: name, Planted: map[core.UBKind]int{}}
		for fi := 0; fi < cfg.FilesPerPackage; fi++ {
			var src strings.Builder
			fmt.Fprintf(&src, "/* %s file %d */\n", name, fi)
			for fn := 0; fn < cfg.FuncsPerFile; fn++ {
				fname := fmt.Sprintf("%s_f%d_%d", name, fi, fn)
				// In unstable packages, roughly one function in four
				// carries a planted bug.
				if unstable && rng.Intn(4) == 0 {
					kind := pickKind(rng, kinds, cum, total)
					// A small slice of plants use the data+x<data shape
					// that only the algebra oracle simplifies (paper:
					// 871 of ~71,880 reports, ≈1.2%).
					if rng.Intn(64) == 0 {
						kind = core.UBPointerOverflow
						src.WriteString(instantiate(templates[kind][2], fname))
						p.Planted[kind]++
						src.WriteByte('\n')
						continue
					}
					// Prefer value-form unstable expressions 2:1 over
					// branch-form checks, matching the Fig. 17 ratio of
					// boolean-oracle to elimination reports.
					tpls := templates[kind]
					if vts := valueTemplates[kind]; len(vts) > 0 && rng.Intn(3) != 0 {
						tpls = vts
					}
					tpl := tpls[rng.Intn(len(tpls))]
					src.WriteString(instantiate(tpl, fname))
					p.Planted[kind]++
				} else {
					filler := stableFillers[rng.Intn(len(stableFillers))]
					src.WriteString(instantiate(filler, fname))
				}
				src.WriteByte('\n')
			}
			p.Files = append(p.Files, src.String())
		}
		pkgs = append(pkgs, p)
	}
	return pkgs
}

func weightTable() (kinds []core.UBKind, cum []int, total int) {
	for _, k := range kindOrder {
		w := Fig18Weights[k]
		if w == 0 {
			continue
		}
		total += w
		kinds = append(kinds, k)
		cum = append(cum, total)
	}
	return kinds, cum, total
}

func pickKind(rng *rand.Rand, kinds []core.UBKind, cum []int, total int) core.UBKind {
	x := rng.Intn(total)
	for i, c := range cum {
		if x < c {
			return kinds[i]
		}
	}
	return kinds[len(kinds)-1]
}

// SweepResult aggregates a whole-archive run: the quantities of the
// paper's Figures 16, 17, and 18 plus the §6.5 minimal-set histogram.
type SweepResult struct {
	Packages            int
	PackagesWithReports int
	Files               int
	Functions           int
	Reports             int
	ReportsByAlgo       map[core.Algo]int
	ReportsByKind       map[core.UBKind]int
	MinSetHistogram     map[int]int
	Queries             int64
	Timeouts            int64
	BuildTime           time.Duration // frontend + IR construction
	AnalysisTime        time.Duration // solver-based checking
}

// Sweep runs the checker over every package.
func Sweep(pkgs []Package, opts core.Options) (*SweepResult, error) {
	res := &SweepResult{
		Packages:        len(pkgs),
		ReportsByAlgo:   map[core.Algo]int{},
		ReportsByKind:   map[core.UBKind]int{},
		MinSetHistogram: map[int]int{},
	}
	checker := core.New(opts)
	for _, p := range pkgs {
		had := false
		for fi, src := range p.Files {
			t0 := time.Now()
			file, err := cc.Parse(fmt.Sprintf("%s_%d.c", p.Name, fi), src)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", p.Name, err)
			}
			if err := cc.Check(file); err != nil {
				return nil, fmt.Errorf("%s: %w", p.Name, err)
			}
			prog, err := ir.Build(file)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", p.Name, err)
			}
			res.BuildTime += time.Since(t0)
			res.Files++
			res.Functions += len(prog.Funcs)

			t1 := time.Now()
			reports := checker.CheckProgram(prog)
			res.AnalysisTime += time.Since(t1)

			if len(reports) > 0 {
				had = true
			}
			res.Reports += len(reports)
			for a, n := range core.CountByAlgo(reports) {
				res.ReportsByAlgo[a] += n
			}
			for k, n := range core.CountByUBKind(reports) {
				res.ReportsByKind[k] += n
			}
			for s, n := range core.MinSetSizeHistogram(reports) {
				res.MinSetHistogram[s] += n
			}
		}
		if had {
			res.PackagesWithReports++
		}
	}
	st := checker.Stats()
	res.Queries = st.Queries
	res.Timeouts = st.Timeouts
	return res, nil
}

// Format renders the sweep in the style of the paper's §6.5 figures.
func (r *SweepResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "packages checked:        %d\n", r.Packages)
	fmt.Fprintf(&b, "packages with reports:   %d (%.1f%%)\n",
		r.PackagesWithReports, 100*float64(r.PackagesWithReports)/float64(max(1, r.Packages)))
	fmt.Fprintf(&b, "files / functions:       %d / %d\n", r.Files, r.Functions)
	fmt.Fprintf(&b, "build time / analysis:   %v / %v\n", r.BuildTime.Round(time.Millisecond), r.AnalysisTime.Round(time.Millisecond))
	fmt.Fprintf(&b, "solver queries:          %d (%d timeouts)\n", r.Queries, r.Timeouts)
	b.WriteString("\nreports by algorithm (Fig. 17):\n")
	for a := core.AlgoElimination; a <= core.AlgoSimplifyAlgebra; a++ {
		fmt.Fprintf(&b, "  %-34s %d\n", a.String(), r.ReportsByAlgo[a])
	}
	b.WriteString("\nreports by UB condition (Fig. 18):\n")
	for _, k := range kindOrder {
		if n := r.ReportsByKind[k]; n > 0 {
			fmt.Fprintf(&b, "  %-26s %d\n", k.String(), n)
		}
	}
	b.WriteString("\nminimal UB-set sizes (§6.5):\n")
	for s := 1; s <= 8; s++ {
		if n := r.MinSetHistogram[s]; n > 0 {
			fmt.Fprintf(&b, "  %d condition(s): %d report(s)\n", s, n)
		}
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
