// Package corpus provides the evaluation workloads of the paper:
//
//   - the Figure 9 bug corpus: 160 unstable-code bugs across 24 system
//     rows, reconstructed from the paper's per-system, per-UB-kind
//     breakdown (row multisets and column totals are exact; the cell
//     assignment is the unique-style solution documented in
//     EXPERIMENTS.md);
//   - the §6.6 completeness benchmark (ten tests from Regehr's contest
//     and Wang et al.'s survey, of which STACK finds seven); and
//   - a deterministic synthetic "Debian archive" generator used to
//     reproduce Figures 16, 17, and 18 at laptop scale.
package corpus

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Fig9Row is one system row of the paper's Figure 9.
type Fig9Row struct {
	System string
	Bugs   map[core.UBKind]int
}

// Total returns the row's bug count.
func (r Fig9Row) Total() int {
	n := 0
	for _, v := range r.Bugs {
		n += v
	}
	return n
}

// Fig9 is the reconstructed Figure 9 distribution. Row totals and the
// per-kind column totals (29 pointer, 44 null, 23 integer, 7 div, 23
// shift, 14 buffer, 1 abs, 7 memcpy, 9 free, 3 realloc = 160) match
// the paper exactly.
var Fig9 = []Fig9Row{
	{"Binutils", map[core.UBKind]int{core.UBNullDeref: 6, core.UBPointerOverflow: 1, core.UBSignedOverflow: 1}},
	{"e2fsprogs", map[core.UBKind]int{core.UBOversizedShift: 1, core.UBBufferOverflow: 1, core.UBAbsOverflow: 1}},
	{"FFmpeg+Libav", map[core.UBKind]int{core.UBPointerOverflow: 9, core.UBNullDeref: 6, core.UBSignedOverflow: 1, core.UBDivByZero: 1, core.UBOversizedShift: 3, core.UBBufferOverflow: 1}},
	{"FreeType", map[core.UBKind]int{core.UBNullDeref: 3}},
	{"GRUB", map[core.UBKind]int{core.UBNullDeref: 2}},
	{"HiStar", map[core.UBKind]int{core.UBNullDeref: 1, core.UBOversizedShift: 2}},
	{"Kerberos", map[core.UBKind]int{core.UBSignedOverflow: 9, core.UBMemcpyOverlap: 1, core.UBUseAfterFree: 1}},
	{"libX11", map[core.UBKind]int{core.UBOversizedShift: 2}},
	{"libarchive", map[core.UBKind]int{core.UBBufferOverflow: 2}},
	{"libgcrypt", map[core.UBKind]int{core.UBBufferOverflow: 2}},
	{"Linux kernel", map[core.UBKind]int{core.UBPointerOverflow: 1, core.UBNullDeref: 6, core.UBSignedOverflow: 1, core.UBDivByZero: 2, core.UBOversizedShift: 10, core.UBBufferOverflow: 5, core.UBMemcpyOverlap: 5, core.UBUseAfterFree: 2}},
	{"Mozilla", map[core.UBKind]int{core.UBNullDeref: 2, core.UBDivByZero: 1}},
	{"OpenAFS", map[core.UBKind]int{core.UBNullDeref: 6, core.UBPointerOverflow: 4, core.UBSignedOverflow: 1}},
	{"plan9port", map[core.UBKind]int{core.UBSignedOverflow: 1, core.UBUseAfterFree: 1, core.UBUseAfterRealloc: 1}},
	{"Postgres", map[core.UBKind]int{core.UBSignedOverflow: 7, core.UBDivByZero: 1, core.UBUseAfterFree: 1}},
	{"Python", map[core.UBKind]int{core.UBPointerOverflow: 5}},
	{"QEMU", map[core.UBKind]int{core.UBNullDeref: 3, core.UBDivByZero: 1}},
	{"Ruby+Rubinius", map[core.UBKind]int{core.UBUseAfterFree: 1, core.UBUseAfterRealloc: 1}},
	{"Sane", map[core.UBKind]int{core.UBPointerOverflow: 1, core.UBNullDeref: 7}},
	{"uClibc", map[core.UBKind]int{core.UBBufferOverflow: 2}},
	{"VLC", map[core.UBKind]int{core.UBUseAfterFree: 2}},
	{"Xen", map[core.UBKind]int{core.UBMemcpyOverlap: 1, core.UBUseAfterFree: 1, core.UBUseAfterRealloc: 1}},
	{"Xpdf", map[core.UBKind]int{core.UBPointerOverflow: 8, core.UBNullDeref: 1}},
	{"others", map[core.UBKind]int{core.UBNullDeref: 1, core.UBOversizedShift: 5, core.UBSignedOverflow: 2, core.UBDivByZero: 1, core.UBBufferOverflow: 1}},
}

// Fig9Totals returns the per-kind column totals (the "all" row).
func Fig9Totals() (int, map[core.UBKind]int) {
	total := 0
	byKind := map[core.UBKind]int{}
	for _, r := range Fig9 {
		for k, n := range r.Bugs {
			total += n
			byKind[k] += n
		}
	}
	return total, byKind
}

// templates holds, per UB kind, function bodies each containing
// exactly one unstable-code bug of that kind. %s is the function name
// suffix. Variants rotate to avoid literal copy-paste.
var templates = map[core.UBKind][]string{
	core.UBPointerOverflow: {
		`
int %s(char *buf, char *buf_end, unsigned int len) {
	if (buf + len >= buf_end)
		return -1;
	if (buf + len < buf)
		return -1; /* unstable: pointer overflow */
	return 0;
}`,
		`
long %s(char *buf) {
	char *nodep = strchr(buf, '.') + 1;
	if (!nodep)
		return -5; /* unstable: p+1 assumed non-null */
	return simple_strtoul(nodep, NULL, 10);
}`,
		`
int %s(char *data, char *data_end, int size) {
	if (data + size >= data_end || data + size < data)
		return -1; /* second clause unstable: simplifies to size < 0 */
	return 0;
}`,
	},
	core.UBNullDeref: {
		`
struct %s_dev { int *ring; int head; };
int %s(struct %s_dev *dev) {
	int head = dev->head;
	if (!dev)
		return -19; /* unstable: dereference above */
	return head;
}`,
		`
struct %s_ctx { int state; };
int %s(struct %s_ctx *c) {
	c->state = 1;
	if (c == NULL)
		return -1; /* unstable */
	return 0;
}`,
		`
int %s(int *p, int v) {
	*p = v;
	if (!p)
		return -1; /* unstable */
	return *p;
}`,
	},
	core.UBSignedOverflow: {
		`
int %s(int x) {
	if (x + 100 < x)
		return -1; /* unstable: signed overflow assumed away */
	return x + 100;
}`,
		`
int %s(int k) {
	if (k < 0) {
		if (-k >= 0)
			return 1; /* unstable under k < 0 */
		return 2;
	}
	return 0;
}`,
		`
long %s(long arg1) {
	if (arg1 != 0 && ((-arg1 < 0) == (arg1 < 0)))
		return 1; /* unstable INT64_MIN probe */
	return 0;
}`,
		`
int %s(int len) {
	int ok = (len + 1 > len);
	return ok; /* unstable: folds to true */
}`,
	},
	core.UBDivByZero: {
		`
long %s(long arg1, long arg2) {
	long result;
	if (arg2 == 0)
		return -1;
	result = arg1 / arg2;
	if (arg2 == -1 && arg1 < 0 && result <= 0)
		return -1; /* unstable: overflow check after division */
	return result;
}`,
		`
int %s(int a, int b) {
	int q = a / b;
	if (b == 0)
		return -1; /* unstable: checked after dividing */
	return q;
}`,
	},
	core.UBOversizedShift: {
		`
int %s(int x) {
	if (!(1 << x))
		return -1; /* unstable: oversized shift assumed away */
	return 1 << x;
}`,
		`
unsigned int %s(unsigned int val, int order) {
	unsigned int size = 1U << order;
	if (size == 0)
		return 0; /* unstable */
	return val / size;
}`,
		`
int %s(int n) {
	int bad = ((1 << n) == 0);
	return bad; /* unstable: folds to false */
}`,
	},
	core.UBBufferOverflow: {
		`
int %s(int i) {
	int table[16];
	table[i] = i;
	if (i < 0 || i >= 16)
		return -1; /* unstable: bounds check after access */
	return table[i];
}`,
		`
int %s(int idx, int v) {
	char map[32];
	map[idx] = (char)v;
	if (idx >= 32)
		return -1; /* unstable */
	return map[idx];
}`,
	},
	core.UBAbsOverflow: {
		`
int %s(int x) {
	if (abs(x) < 0)
		return -1; /* unstable: abs(INT_MIN) assumed away */
	return abs(x);
}`,
	},
	core.UBMemcpyOverlap: {
		`
int %s(char *dst, char *src, unsigned long n) {
	memcpy(dst, src, n);
	if (dst == src && n > 0)
		return -1; /* unstable: overlap is UB */
	return 0;
}`,
		`
int %s(char *a, char *b, unsigned long len) {
	memcpy(a, b, len);
	if (a == b && len != 0)
		return 1; /* unstable */
	return 0;
}`,
	},
	core.UBUseAfterFree: {
		`
int %s(int *p) {
	free(p);
	if (*p == 0)
		return 1; /* unstable: use after free */
	return 0;
}`,
		`
int %s(char *buf) {
	free(buf);
	if (buf[0] == 'x')
		return 1; /* unstable */
	return 0;
}`,
	},
	core.UBUseAfterRealloc: {
		`
int %s(char *p, unsigned long n) {
	char *q = realloc(p, n);
	if (!q)
		return -1;
	if (*p == 'x')
		return 1; /* unstable: use after successful realloc */
	return 0;
}`,
	},
}

// valueTemplates contain unstable boolean *expressions* (assigned or
// returned rather than branched on), which STACK's simplification
// reports without any elimination — the dominant report shape in the
// paper's Debian sweep (Fig. 17: the boolean oracle produced twice as
// many reports as elimination). Used by the Debian generator.
var valueTemplates = map[core.UBKind][]string{
	core.UBPointerOverflow: {
		`
int %s(char *p, unsigned int len) {
	char *q = p + len;
	int wrapped = (q < p); /* unstable: folds to false */
	return wrapped;
}`,
	},
	core.UBNullDeref: {
		`
struct %s_ctx { int magic; };
int %s(struct %s_ctx *c) {
	int m = c->magic;
	int ok = (c != NULL); /* unstable: folds to true */
	return m + ok;
}`,
		`
int %s(int *p) {
	*p = 7;
	int valid = (p != NULL); /* unstable */
	return valid;
}`,
	},
	core.UBSignedOverflow: {
		`
int %s(int len) {
	int ok = (len + 1 > len); /* unstable: folds to true */
	return ok;
}`,
		`
int %s(int x) {
	int sane = (x + 100 >= x); /* unstable */
	return sane;
}`,
	},
	core.UBDivByZero: {
		`
int %s(int a, int b) {
	int q = a / b;
	int zero = (b == 0); /* unstable: folds to false */
	return q + zero;
}`,
	},
	core.UBOversizedShift: {
		`
int %s(int n) {
	int nonzero = ((1 << n) != 0); /* unstable: folds to true */
	return nonzero;
}`,
	},
	core.UBBufferOverflow: {
		`
int %s(int i) {
	int tab[16];
	tab[i] = i;
	int inrange = (i < 16); /* unstable: folds to true */
	return tab[i] + inrange;
}`,
	},
	core.UBAbsOverflow: {
		`
int %s(int x) {
	int nonneg = (abs(x) >= 0); /* unstable: folds to true */
	return nonneg;
}`,
	},
	core.UBMemcpyOverlap: {
		`
int %s(char *dst, char *src, unsigned long n) {
	memcpy(dst, src, n);
	int distinct = (dst != src || n == 0); /* unstable */
	return distinct;
}`,
	},
}

// stableFillers are correct functions mixed into every file so the
// corpus also measures precision (no reports expected on them).
var stableFillers = []string{
	`
static int %s_min(int a, int b) {
	if (a < b)
		return a;
	return b;
}`,
	`
int %s_sum(int n) {
	int s = 0;
	for (int i = 0; i < n; i++)
		s += i;
	return s;
}`,
	`
struct %s_obj { int refs; };
int %s_get(struct %s_obj *o) {
	if (!o)
		return -1;
	o->refs = o->refs + 1;
	return o->refs;
}`,
	`
long %s_div(long a, long b) {
	if (b == 0)
		return 0;
	if (a == (-9223372036854775807L - 1) && b == -1)
		return 0;
	return a / b;
}`,
}

// PlantedBug identifies one generated bug.
type PlantedBug struct {
	System   string
	Kind     core.UBKind
	FuncName string
}

// SystemSource is one generated translation unit plus its plants.
type SystemSource struct {
	System string
	Source string
	Bugs   []PlantedBug
}

// sanitize converts a system name to a C identifier fragment.
func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return strings.ToLower(b.String())
}

// kindOrder fixes generation order for determinism.
var kindOrder = []core.UBKind{
	core.UBPointerOverflow, core.UBNullDeref, core.UBSignedOverflow,
	core.UBDivByZero, core.UBOversizedShift, core.UBBufferOverflow,
	core.UBAbsOverflow, core.UBMemcpyOverlap, core.UBUseAfterFree,
	core.UBUseAfterRealloc,
}

// GenerateFig9 emits one translation unit per Figure 9 row, containing
// exactly the row's number of unstable functions of each kind plus
// stable fillers.
func GenerateFig9() []SystemSource {
	var out []SystemSource
	for _, row := range Fig9 {
		sys := sanitize(row.System)
		var src strings.Builder
		src.WriteString("/* synthetic corpus: " + row.System + " */\n")
		var bugs []PlantedBug
		for fi, filler := range stableFillers {
			name := fmt.Sprintf("%s_f%d", sys, fi)
			src.WriteString(instantiate(filler, name))
			src.WriteByte('\n')
		}
		for _, kind := range kindOrder {
			n := row.Bugs[kind]
			tpls := templates[kind]
			for i := 0; i < n; i++ {
				name := fmt.Sprintf("%s_%s_%d", sys, shortKind(kind), i)
				tpl := tpls[i%len(tpls)]
				src.WriteString(instantiate(tpl, name))
				src.WriteByte('\n')
				bugs = append(bugs, PlantedBug{System: row.System, Kind: kind, FuncName: name})
			}
		}
		out = append(out, SystemSource{System: row.System, Source: src.String(), Bugs: bugs})
	}
	return out
}

// instantiate substitutes every %s with name.
func instantiate(tpl, name string) string {
	return strings.ReplaceAll(tpl, "%s", name)
}

func shortKind(k core.UBKind) string {
	switch k {
	case core.UBPointerOverflow:
		return "ptr"
	case core.UBNullDeref:
		return "null"
	case core.UBSignedOverflow:
		return "int"
	case core.UBDivByZero:
		return "div"
	case core.UBOversizedShift:
		return "shift"
	case core.UBBufferOverflow:
		return "buf"
	case core.UBAbsOverflow:
		return "abs"
	case core.UBMemcpyOverlap:
		return "memcpy"
	case core.UBUseAfterFree:
		return "free"
	case core.UBUseAfterRealloc:
		return "realloc"
	}
	return "ub"
}
