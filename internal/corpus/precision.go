package corpus

import "repro/internal/core"

// FixedTemplates give the corrected form of each bug template —
// the fixes the paper's reports led developers to apply (§6.2/§6.3).
// After fixing, STACK must produce zero reports (the paper's Kerberos
// result: 11 bugs fixed, then zero reports).
var FixedTemplates = map[core.UBKind][]string{
	core.UBPointerOverflow: {
		`
int %s(char *buf, char *buf_end, unsigned int len) {
	if (len >= (unsigned long)(buf_end - buf))
		return -1; /* fixed: compare lengths, no overflowing pointer */
	return 0;
}`,
	},
	core.UBNullDeref: {
		`
struct %s_dev { int *ring; int head; };
int %s(struct %s_dev *dev) {
	if (!dev)
		return -19; /* fixed: check before dereference */
	return dev->head;
}`,
	},
	core.UBSignedOverflow: {
		`
int %s(int x) {
	if (x > 2147483647 - 100)
		return -1; /* fixed: check against INT_MAX before adding */
	return x + 100;
}`,
		`
int %s(int k) {
	if (k < 0) {
		if (k == (-2147483647 - 1))
			return 2; /* fixed: compare against INT_MIN directly */
		return 1;
	}
	return 0;
}`,
	},
	core.UBDivByZero: {
		`
long %s(long arg1, long arg2) {
	if (arg2 == 0)
		return -1;
	if (arg1 == (-9223372036854775807L - 1) && arg2 == -1)
		return -1; /* fixed: overflow check before the division */
	return arg1 / arg2;
}`,
	},
	core.UBOversizedShift: {
		`
int %s(int x) {
	if (x < 0 || x >= 32)
		return -1; /* fixed: range-check the amount itself */
	return 1 << x;
}`,
	},
	core.UBBufferOverflow: {
		`
int %s(int i) {
	int table[16];
	if (i < 0 || i >= 16)
		return -1; /* fixed: bounds check before the access */
	table[i] = i;
	return table[i];
}`,
	},
	core.UBAbsOverflow: {
		`
int %s(int x) {
	if (x == (-2147483647 - 1))
		return -1; /* fixed: reject INT_MIN before abs */
	return abs(x);
}`,
	},
	core.UBMemcpyOverlap: {
		`
int %s(char *dst, char *src, unsigned long n) {
	if (dst == src)
		return -1; /* fixed: reject overlap before copying */
	memcpy(dst, src, n);
	return 0;
}`,
	},
	core.UBUseAfterFree: {
		`
int %s(int *p) {
	int v = *p;
	free(p); /* fixed: read before freeing */
	return v == 0;
}`,
	},
	core.UBUseAfterRealloc: {
		`
int %s(char *p, unsigned long n) {
	char *q = realloc(p, n);
	if (!q)
		return -1;
	if (*q == 'x')
		return 1; /* fixed: use the new pointer */
	return 0;
}`,
	},
}

// GenerateFixedRow emits a translation unit for one Figure 9 row with
// every bug replaced by its corrected form.
func GenerateFixedRow(row Fig9Row) SystemSource {
	sys := sanitize(row.System)
	var src []byte
	src = append(src, []byte("/* fixed corpus: "+row.System+" */\n")...)
	for _, kind := range kindOrder {
		n := row.Bugs[kind]
		tpls := FixedTemplates[kind]
		for i := 0; i < n; i++ {
			name := sys + "_fixed_" + shortKind(kind) + "_" + itoa(i)
			tpl := tpls[i%len(tpls)]
			src = append(src, []byte(instantiate(tpl, name))...)
			src = append(src, '\n')
		}
	}
	return SystemSource{System: row.System, Source: string(src)}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}
