package corpus

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
)

// TestSSAVsLegacyByteIdentity is the differential gate for the SSA
// pass stack, which is on by default since the global analysis suite
// landed: with Options.SSA the sweep must produce byte-identical
// reports — same files, same lines, same algorithms, same minimal UB
// sets — and identical verdict counts, across worker counts and both
// sweep strategies (streaming and buffered), versus the SSA-off legacy
// reference. The SSA passes may only change how much work the solver
// does (fewer blasted terms, skipped queries, more cache hits), never
// what the checker says.
func TestSSAVsLegacyByteIdentity(t *testing.T) {
	cfg := ArchiveConfig{
		Packages: 24, FilesPerPackage: 2, FuncsPerFile: 5,
		UnstableFraction: 0.5, Seed: 99,
	}
	pkgs := GenerateArchive(cfg)

	legacy, err := (&Sweeper{Options: sweepOpts(), Workers: 1}).Run(context.Background(), pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Reports == 0 {
		t.Fatal("archive produced no reports; test is vacuous")
	}
	legacyLog := reportLogLines(legacy)

	ssaOpts := sweepOpts()
	ssaOpts.SSA = true
	sawGVN := false
	for _, workers := range []int{1, 4, 16} {
		for _, buffered := range []bool{false, true} {
			mode := "streaming"
			if buffered {
				mode = "buffered"
			}
			t.Run(fmt.Sprintf("workers=%d/%s", workers, mode), func(t *testing.T) {
				ssa, err := (&Sweeper{Options: ssaOpts, Workers: workers, Buffered: buffered}).Run(context.Background(), pkgs)
				if err != nil {
					t.Fatal(err)
				}
				type verdicts struct {
					Packages, PackagesWithReports, Files, Functions, Reports int
					Elimination, BoolOracle, AlgebraOracle, SingleCondSets   int
				}
				v := func(r *SweepResult) verdicts {
					return verdicts{
						r.Packages, r.PackagesWithReports, r.Files, r.Functions, r.Reports,
						r.ReportsByAlgo[core.AlgoElimination],
						r.ReportsByAlgo[core.AlgoSimplifyBool],
						r.ReportsByAlgo[core.AlgoSimplifyAlgebra],
						r.MinSetHistogram[1],
					}
				}
				if v(ssa) != v(legacy) {
					t.Errorf("verdict counts differ:\n legacy: %+v\n ssa:    %+v", v(legacy), v(ssa))
				}
				if log := reportLogLines(ssa); log != legacyLog {
					t.Errorf("report logs differ:\n--- legacy\n%s--- ssa workers=%d %s\n%s", legacyLog, workers, mode, log)
				}
				if ssa.GVNHits > 0 {
					sawGVN = true
				}
			})
		}
	}
	if !sawGVN {
		t.Error("SSA sweeps recorded no GVN hits; the differential gate is not exercising the passes")
	}
}

// TestSSASweepDoesLessSolverWork: on the same archive, SSA must
// strictly reduce the terms the solver blasts — that is the point of
// promoting loads into shared SSA values — while keeping every
// verdict (checked byte-for-byte above).
func TestSSASweepDoesLessSolverWork(t *testing.T) {
	cfg := ArchiveConfig{
		Packages: 12, FilesPerPackage: 2, FuncsPerFile: 5,
		UnstableFraction: 0.5, Seed: 7,
	}
	pkgs := GenerateArchive(cfg)

	legacy, err := Sweep(context.Background(), pkgs, sweepOpts())
	if err != nil {
		t.Fatal(err)
	}
	ssaOpts := sweepOpts()
	ssaOpts.SSA = true
	ssa, err := Sweep(context.Background(), pkgs, ssaOpts)
	if err != nil {
		t.Fatal(err)
	}
	if ssa.TermsBlasted > legacy.TermsBlasted {
		t.Errorf("TermsBlasted rose under SSA: legacy %d, ssa %d", legacy.TermsBlasted, ssa.TermsBlasted)
	}
	if ssa.GVNHits == 0 {
		t.Error("GVNHits = 0; the archive should contain duplicate computations")
	}
}
