package corpus

// Whole-archive sweeping. The paper ran its checker over all 8,575
// Debian Wheezy packages on a 16-core Xeon (§6.4); checking distinct
// files is embarrassingly parallel because each function gets a fresh
// builder and solver, so Sweeper fans the archive out over a two-stage
// worker pipeline:
//
//	feeder → [build workers: preprocess → parse → typecheck → IR]
//	       → [check workers: one core.Checker + bv solver each]
//	       → indexed result slice → deterministic merge
//
// Per-worker state is fully isolated — stats accumulate lock-free in
// each worker's Checker and are reduced with core.Stats.Add at the end
// — and results land in a slice slot keyed by the file's position in
// the archive, so every count and report in the merged SweepResult
// (including the sorted report log) is byte-identical for any worker
// count. The only fields outside that guarantee are BuildTime and
// AnalysisTime, which are wall-clock sums over workers and vary run
// to run like any measured duration.
//
// One caveat bounds that guarantee: it assumes each solver query's
// verdict is itself reproducible. With Options.Timeout set, a query
// running near the wall-clock deadline can flip between a verdict and
// Unknown depending on machine load (which -j changes), perturbing
// reports and the Timeouts count. For strict byte-identical output use
// Timeout = 0, optionally with MaxConflictsPerQuery as a deterministic
// effort bound. In practice the archive generator's queries finish
// orders of magnitude under the paper's 5s timeout, so the default
// configuration is stable too.

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/ir"
)

// Sweeper configures a whole-archive run.
type Sweeper struct {
	// Options configures each per-worker checker.
	Options core.Options
	// Workers sets the number of goroutines per pipeline stage;
	// values <= 0 mean runtime.GOMAXPROCS(0). All counts and reports
	// are identical for every worker count (see the package caveats on
	// timing fields and wall-clock query timeouts).
	Workers int
}

// FileReport pairs a report with the archive file that produced it.
type FileReport struct {
	File   string
	Report *core.Report
}

// SweepResult aggregates a whole-archive run: the quantities of the
// paper's Figures 16, 17, and 18 plus the §6.5 minimal-set histogram.
type SweepResult struct {
	Packages            int
	PackagesWithReports int
	Files               int
	Functions           int
	Reports             int
	ReportsByAlgo       map[core.Algo]int
	ReportsByKind       map[core.UBKind]int
	MinSetHistogram     map[int]int
	Queries             int64
	Timeouts            int64
	BuildTime           time.Duration // frontend + IR construction, summed over workers
	AnalysisTime        time.Duration // solver-based checking, summed over workers
	// RewriteHits / TermsCreated / FastPaths surface the word-level
	// rewrite layer (see internal/bv/rewrite.go).
	RewriteHits  int64
	TermsCreated int64
	FastPaths    int64
	// ReportLog lists every report with its file, sorted by file, then
	// position, then algorithm — the deterministic flat view of the
	// sweep, independent of worker count and scheduling.
	ReportLog []FileReport
}

// Sweep runs the checker over every package with the default worker
// count (one per CPU).
func Sweep(pkgs []Package, opts core.Options) (*SweepResult, error) {
	return (&Sweeper{Options: opts}).Run(pkgs)
}

// fileJob is one archive file, numbered by archive position.
type fileJob struct {
	idx    int // global file index; fixes the output slot
	pkgIdx int
	name   string
	src    string
}

// builtUnit is a fileJob after the frontend stage.
type builtUnit struct {
	fileJob
	prog      *ir.Program
	buildTime time.Duration
}

// fileResult is the check stage's output for one file.
type fileResult struct {
	pkgIdx       int
	name         string
	funcs        int
	reports      []*core.Report
	buildTime    time.Duration
	analysisTime time.Duration
}

// Run sweeps the archive through the parallel pipeline.
func (s *Sweeper) Run(pkgs []Package) (*SweepResult, error) {
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	var jobs []fileJob
	for pi, p := range pkgs {
		for fi, src := range p.Files {
			jobs = append(jobs, fileJob{
				idx:    len(jobs),
				pkgIdx: pi,
				name:   fmt.Sprintf("%s_%d.c", p.Name, fi),
				src:    src,
			})
		}
	}

	results := make([]fileResult, len(jobs))   // disjoint per-index writes
	workerStats := make([]core.Stats, workers) // lock-free per-worker accumulation

	jobCh := make(chan fileJob)
	builtCh := make(chan builtUnit, workers)
	stop := make(chan struct{})
	var firstErr error
	var errOnce sync.Once
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			close(stop)
		})
	}

	var buildWG, checkWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		buildWG.Add(1)
		go func() {
			defer buildWG.Done()
			for j := range jobCh {
				t0 := time.Now()
				file, err := cc.Parse(j.name, j.src)
				if err != nil {
					fail(fmt.Errorf("%s: %w", j.name, err))
					return
				}
				if err := cc.Check(file); err != nil {
					fail(fmt.Errorf("%s: %w", j.name, err))
					return
				}
				prog, err := ir.Build(file)
				if err != nil {
					fail(fmt.Errorf("%s: %w", j.name, err))
					return
				}
				u := builtUnit{fileJob: j, prog: prog, buildTime: time.Since(t0)}
				select {
				case builtCh <- u:
				case <-stop:
					return
				}
			}
		}()

		checkWG.Add(1)
		go func(w int) {
			defer checkWG.Done()
			checker := core.New(s.Options)
			for u := range builtCh {
				funcs := len(u.prog.Funcs)
				t1 := time.Now()
				reports := checker.CheckProgram(u.prog)
				results[u.idx] = fileResult{
					pkgIdx:       u.pkgIdx,
					name:         u.name,
					funcs:        funcs,
					reports:      reports,
					buildTime:    u.buildTime,
					analysisTime: time.Since(t1),
				}
			}
			workerStats[w] = checker.Stats()
		}(w)
	}

	go func() {
		defer close(jobCh)
		for _, j := range jobs {
			select {
			case jobCh <- j:
			case <-stop:
				return
			}
		}
	}()

	buildWG.Wait()
	close(builtCh)
	checkWG.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return s.merge(pkgs, results, workerStats), nil
}

// merge reduces per-file results and per-worker stats into one
// SweepResult, in archive order, so the output is independent of how
// the pipeline interleaved the work.
func (s *Sweeper) merge(pkgs []Package, results []fileResult, workerStats []core.Stats) *SweepResult {
	res := &SweepResult{
		Packages:        len(pkgs),
		ReportsByAlgo:   map[core.Algo]int{},
		ReportsByKind:   map[core.UBKind]int{},
		MinSetHistogram: map[int]int{},
	}
	pkgHadReports := make([]bool, len(pkgs))
	for i := range results {
		fr := &results[i]
		res.Files++
		res.Functions += fr.funcs
		res.BuildTime += fr.buildTime
		res.AnalysisTime += fr.analysisTime
		res.Reports += len(fr.reports)
		if len(fr.reports) > 0 {
			pkgHadReports[fr.pkgIdx] = true
		}
		for a, n := range core.CountByAlgo(fr.reports) {
			res.ReportsByAlgo[a] += n
		}
		for k, n := range core.CountByUBKind(fr.reports) {
			res.ReportsByKind[k] += n
		}
		for sz, n := range core.MinSetSizeHistogram(fr.reports) {
			res.MinSetHistogram[sz] += n
		}
		for _, r := range fr.reports {
			res.ReportLog = append(res.ReportLog, FileReport{File: fr.name, Report: r})
		}
	}
	for _, had := range pkgHadReports {
		if had {
			res.PackagesWithReports++
		}
	}
	var st core.Stats
	for _, ws := range workerStats {
		st.Add(ws)
	}
	res.Queries = st.Queries
	res.Timeouts = st.Timeouts
	res.RewriteHits = st.RewriteHits
	res.TermsCreated = st.TermsCreated
	res.FastPaths = st.FastPaths

	sort.SliceStable(res.ReportLog, func(i, j int) bool {
		a, b := res.ReportLog[i], res.ReportLog[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Report.Pos.Line != b.Report.Pos.Line {
			return a.Report.Pos.Line < b.Report.Pos.Line
		}
		if a.Report.Pos.Col != b.Report.Pos.Col {
			return a.Report.Pos.Col < b.Report.Pos.Col
		}
		return a.Report.Algo < b.Report.Algo
	})
	return res
}

// Format renders the sweep in the style of the paper's §6.5 figures.
// It is total: an empty archive renders without dividing by zero.
func (r *SweepResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "packages checked:        %d\n", r.Packages)
	fmt.Fprintf(&b, "packages with reports:   %d (%.1f%%)\n",
		r.PackagesWithReports, 100*float64(r.PackagesWithReports)/float64(max(1, r.Packages)))
	fmt.Fprintf(&b, "files / functions:       %d / %d\n", r.Files, r.Functions)
	fmt.Fprintf(&b, "build time / analysis:   %v / %v\n", r.BuildTime.Round(time.Millisecond), r.AnalysisTime.Round(time.Millisecond))
	fmt.Fprintf(&b, "solver queries:          %d (%d timeouts)\n", r.Queries, r.Timeouts)
	fmt.Fprintf(&b, "rewrite hits / fast paths: %d / %d\n", r.RewriteHits, r.FastPaths)
	b.WriteString("\nreports by algorithm (Fig. 17):\n")
	for a := core.AlgoElimination; a <= core.AlgoSimplifyAlgebra; a++ {
		fmt.Fprintf(&b, "  %-34s %d\n", a.String(), r.ReportsByAlgo[a])
	}
	b.WriteString("\nreports by UB condition (Fig. 18):\n")
	for _, k := range kindOrder {
		if n := r.ReportsByKind[k]; n > 0 {
			fmt.Fprintf(&b, "  %-26s %d\n", k.String(), n)
		}
	}
	b.WriteString("\nminimal UB-set sizes (§6.5):\n")
	for s := 1; s <= 8; s++ {
		if n := r.MinSetHistogram[s]; n > 0 {
			fmt.Fprintf(&b, "  %d condition(s): %d report(s)\n", s, n)
		}
	}
	return b.String()
}
