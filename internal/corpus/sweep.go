package corpus

// Whole-archive sweeping. The paper ran its checker over all 8,575
// Debian Wheezy packages on a 16-core Xeon (§6.4); checking distinct
// files is embarrassingly parallel because each function gets a fresh
// builder and solver, so Sweeper fans the archive out over a two-stage
// worker pipeline:
//
//	feeder → [build workers: preprocess → parse → typecheck → IR]
//	       → [check workers: one core.Checker + bv solver each]
//	       → indexed result slice → deterministic merge
//
// Per-worker state is fully isolated — stats accumulate lock-free in
// each worker's Checker and are reduced with core.Stats.Add at the end
// — and per-file results are re-sequenced into archive order by the
// shared deterministic in-order emitter (emit.Ordered) before they
// touch the aggregate, so
// every count and report in the merged SweepResult (including the
// sorted report log) is byte-identical for any worker count. The only
// fields outside that guarantee are BuildTime and AnalysisTime, which
// are wall-clock sums over workers and vary run to run like any
// measured duration.
//
// By default results stream: check workers hand each finished file to
// the emitter over a bounded channel, the emitter holds only the
// out-of-order files currently in flight (O(Workers), not O(archive)),
// and the aggregate — plus the caller's RunStream callback, if any —
// consumes files strictly in archive order. Sweeper.Buffered selects
// the legacy collect-everything-then-merge path instead; both modes
// produce byte-identical SweepResult values, which sweep tests assert.
//
// One caveat bounds that guarantee: it assumes each solver query's
// verdict is itself reproducible. With Options.Timeout set, a query
// running near the wall-clock deadline can flip between a verdict and
// Unknown depending on machine load (which -j changes), perturbing
// reports and the Timeouts count. For strict byte-identical output use
// Timeout = 0, optionally with MaxConflictsPerQuery as a deterministic
// effort bound. In practice the archive generator's queries finish
// orders of magnitude under the paper's 5s timeout, so the default
// configuration is stable too.

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/emit"
	"repro/internal/ir"
)

// Sweeper configures a whole-archive run.
type Sweeper struct {
	// Options configures each per-worker checker.
	Options core.Options
	// Workers sets the number of goroutines per pipeline stage;
	// values <= 0 mean runtime.GOMAXPROCS(0). All counts and reports
	// are identical for every worker count (see the package caveats on
	// timing fields and wall-clock query timeouts).
	Workers int
	// Buffered selects the legacy merge strategy: collect every file's
	// result in an archive-sized slice, then reduce. The default
	// (false) streams results through the in-order emitter with
	// O(Workers) buffering. Output is byte-identical either way.
	Buffered bool
	// Cache, when non-nil, is consulted per file before the frontend
	// runs: a hit delivers the cached reports straight to the in-order
	// emitter (no parse, no IR, no solver), a miss analyzes the file
	// and stores the finished result. Because hits and fresh results
	// flow through the same ordered delivery path, a warm sweep's
	// diagnostic stream is byte-identical to a cold one for any worker
	// count. Workers and Buffered never enter the cache key — they
	// cannot change results, only how results are computed.
	Cache ResultCache
}

// FileReport pairs a report with the archive file that produced it.
type FileReport struct {
	File   string
	Report *core.Report
}

// FileResult is one archive file's finished analysis, as delivered to
// RunStream callbacks in archive order.
type FileResult struct {
	// Index is the file's position in the archive; callbacks observe
	// strictly increasing indices 0, 1, 2, ...
	Index        int
	Package      string
	File         string
	Functions    int
	Reports      []*core.Report
	BuildTime    time.Duration
	AnalysisTime time.Duration
}

// SweepResult aggregates a whole-archive run: the quantities of the
// paper's Figures 16, 17, and 18 plus the §6.5 minimal-set histogram.
type SweepResult struct {
	Packages            int
	PackagesWithReports int
	Files               int
	Functions           int
	Reports             int
	ReportsByAlgo       map[core.Algo]int
	ReportsByKind       map[core.UBKind]int
	MinSetHistogram     map[int]int
	Queries             int64
	Timeouts            int64
	BuildTime           time.Duration // frontend + IR construction, summed over workers
	AnalysisTime        time.Duration // solver-based checking, summed over workers
	// RewriteHits / TermsCreated / FastPaths surface the word-level
	// rewrite layer (see internal/bv/rewrite.go).
	RewriteHits  int64
	TermsCreated int64
	FastPaths    int64
	// TermsBlasted / BlastPasses / LearntsReused surface the
	// incremental solving sessions (see bv.Session): terms lowered to
	// CNF, queries that lowered anything new, and learned clauses
	// already retained when each query began.
	TermsBlasted  int64
	BlastPasses   int64
	LearntsReused int64
	// CacheHits counts term constructions answered from the builder's
	// hash-consing table — chains the canonicalizer folded onto an
	// existing node count here. LearntsDropped counts learned clauses
	// discarded by database reductions and session budget trims.
	// ArenaBytesReused counts bytes the term arenas served from recycled
	// slabs instead of fresh heap allocations.
	CacheHits        int64
	LearntsDropped   int64
	ArenaBytesReused int64
	// The SSA pass stack and the dominator-ordered elimination walk
	// (ir.RunSSAPasses, core.Options.SSA; all zero with SSA off). Like
	// ArenaBytesReused these are deliberately absent from Format():
	// they track solver-side effort, not analysis results, and the text
	// block stays byte-identical between the SSA and legacy pipelines.
	PromotedAllocas       int64
	EliminatedStores      int64
	GVNHits               int64
	SCCPFoldedValues      int64
	SCCPFoldedBranches    int64
	SCCPUnreachableBlocks int64
	CrossBlockGVNHits     int64
	HoistedUBTerms        int64
	DomOrderedSkips       int64
	// CacheResultHits / CacheResultMisses count files answered whole
	// from the Sweeper.Cache result cache versus analyzed for real.
	// Both are zero without a configured cache. Like ArenaBytesReused
	// they are deliberately absent from Format(): whether a result came
	// from the cache is an operational fact, not an analysis result,
	// and the text block stays byte-identical between cold and warm
	// runs.
	CacheResultHits   int64
	CacheResultMisses int64
	// ReportLog lists every report with its file, sorted by file, then
	// position, then algorithm — the deterministic flat view of the
	// sweep, independent of worker count and scheduling.
	ReportLog []FileReport
}

// Sweep runs the checker over every package with the default worker
// count (one per CPU).
func Sweep(ctx context.Context, pkgs []Package, opts core.Options) (*SweepResult, error) {
	return (&Sweeper{Options: opts}).Run(ctx, pkgs)
}

// fileJob is one archive file, numbered by archive position.
type fileJob struct {
	idx    int // global file index; fixes the emit order
	pkgIdx int
	name   string
	src    string
}

// builtUnit is a fileJob after the frontend stage.
type builtUnit struct {
	fileJob
	prog      *ir.Program
	buildTime time.Duration
}

// fileResult is the check stage's output for one file.
type fileResult struct {
	idx          int
	pkgIdx       int
	name         string
	funcs        int
	reports      []*core.Report
	buildTime    time.Duration
	analysisTime time.Duration
}

func makeJobs(pkgs []Package) []fileJob {
	var jobs []fileJob
	for pi, p := range pkgs {
		for fi, src := range p.Files {
			jobs = append(jobs, fileJob{
				idx:    len(jobs),
				pkgIdx: pi,
				name:   fmt.Sprintf("%s_%d.c", p.Name, fi),
				src:    src,
			})
		}
	}
	return jobs
}

func (s *Sweeper) workerCount() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run sweeps the archive through the parallel pipeline and returns the
// merged result. The default implementation streams (see RunStream);
// Buffered selects the legacy archive-sized collection slice.
// Cancelling ctx shuts the pipeline down without deadlock — each
// in-flight solver query returns within one check interval — and Run
// returns ctx's error.
func (s *Sweeper) Run(ctx context.Context, pkgs []Package) (*SweepResult, error) {
	if s.Buffered {
		return s.runBuffered(ctx, pkgs)
	}
	return s.RunStream(ctx, pkgs, nil)
}

// RunStream sweeps the archive and additionally calls emitFn (if
// non-nil) once per file, in archive order, as soon as the file and
// every earlier one have been checked — long before the whole archive
// finishes. Results never accumulate beyond the files currently in
// flight, so memory is O(Workers) regardless of archive size. emitFn
// runs on the emitter goroutine; a slow callback backpressures the
// pipeline rather than growing a buffer. The returned SweepResult is
// byte-identical to Run's for any worker count.
//
// The in-order re-sequencing itself is emit.Ordered — the one shared
// emitter implementation — with the feeder acquiring an admission slot
// per file, so no more than 4*Workers files ever sit between the
// feeder and delivery, even when one pathological file stalls a
// checker while every other worker races ahead.
func (s *Sweeper) RunStream(ctx context.Context, pkgs []Package, emitFn func(FileResult)) (*SweepResult, error) {
	workers := s.workerCount()
	acc := newAccumulator(pkgs)
	ord := emit.NewOrdered(4*workers, func(_ int, fr fileResult) {
		acc.add(fr)
		if emitFn != nil {
			emitFn(FileResult{
				Index:        fr.idx,
				Package:      pkgs[fr.pkgIdx].Name,
				File:         fr.name,
				Functions:    fr.funcs,
				Reports:      fr.reports,
				BuildTime:    fr.buildTime,
				AnalysisTime: fr.analysisTime,
			})
		}
	})
	workerStats, err := s.runPipeline(ctx, pkgs, workers, ord.Admit, func(r fileResult) { ord.Put(r.idx, r) })
	ord.Close()
	if err != nil {
		return nil, err
	}
	return acc.finish(workerStats), nil
}

// runBuffered is the legacy merge strategy: every file's result lands
// in an archive-sized slice slot, reduced only after the pipeline
// drains.
func (s *Sweeper) runBuffered(ctx context.Context, pkgs []Package) (*SweepResult, error) {
	workers := s.workerCount()
	files := 0
	for _, p := range pkgs {
		files += len(p.Files)
	}
	results := make([]fileResult, files) // disjoint per-index writes
	workerStats, err := s.runPipeline(ctx, pkgs, workers, nil, func(r fileResult) { results[r.idx] = r })
	if err != nil {
		return nil, err
	}
	acc := newAccumulator(pkgs)
	for i := range results {
		acc.add(results[i])
	}
	return acc.finish(workerStats), nil
}

// runPipeline runs the feeder→build→check stages over the archive,
// invoking deliver from check workers (possibly concurrently) for each
// finished file. When admit is non-nil the feeder calls it per file
// before feeding (the streaming emitter's admission window; slots free
// as delivery advances), bounding the files in flight. It returns the
// per-worker checker stats and the first error; on error the pipeline
// shuts down without deadlocking (feeder and builders select on the
// stop channel — which admit also observes) and undelivered files are
// simply absent.
func (s *Sweeper) runPipeline(ctx context.Context, pkgs []Package, workers int, admit func(stop <-chan struct{}) bool, deliver func(fileResult)) ([]core.Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	jobs := makeJobs(pkgs)
	workerStats := make([]core.Stats, workers) // lock-free per-worker accumulation
	cacheStats := make([]core.Stats, workers)  // per-build-worker cache traffic, same reduction

	jobCh := make(chan fileJob)
	builtCh := make(chan builtUnit, workers)
	stop := make(chan struct{})
	done := make(chan struct{})
	defer close(done)
	var firstErr error
	var errOnce sync.Once
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			close(stop)
		})
	}
	// Translate context cancellation into the pipeline's own shutdown
	// mechanism exactly once: every stage already selects on stop, and
	// the checker inside each worker observes ctx directly, so a cancel
	// mid-CDCL unwinds within one solver check interval.
	go func() {
		select {
		case <-ctx.Done():
			fail(ctx.Err())
		case <-stop:
		case <-done:
		}
	}()

	var buildWG, checkWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		buildWG.Add(1)
		go func(w int) {
			defer buildWG.Done()
			for j := range jobCh {
				t0 := time.Now()
				if s.Cache != nil {
					if cf, ok := s.Cache.Lookup(j.name, j.src); ok {
						// Replay the program-shape counters the checker
						// would have accumulated; effort counters stay
						// zero because no solver work happened.
						cs := &cacheStats[w]
						cs.CacheResultHits++
						cs.Functions += cf.Functions
						cs.Blocks += cf.Blocks
						for _, r := range cf.Reports {
							cs.ReportsByAlgo[r.Algo]++
						}
						deliver(fileResult{
							idx:       j.idx,
							pkgIdx:    j.pkgIdx,
							name:      j.name,
							funcs:     cf.Functions,
							reports:   cf.Reports,
							buildTime: time.Since(t0),
						})
						continue
					}
					cacheStats[w].CacheResultMisses++
				}
				file, err := cc.Parse(j.name, j.src)
				if err != nil {
					fail(fmt.Errorf("%s: %w", j.name, err))
					return
				}
				if err := cc.Check(file); err != nil {
					fail(fmt.Errorf("%s: %w", j.name, err))
					return
				}
				prog, err := ir.Build(file)
				if err != nil {
					fail(fmt.Errorf("%s: %w", j.name, err))
					return
				}
				u := builtUnit{fileJob: j, prog: prog, buildTime: time.Since(t0)}
				select {
				case builtCh <- u:
				case <-stop:
					return
				}
			}
		}(w)

		checkWG.Add(1)
		go func(w int) {
			defer checkWG.Done()
			checker := core.New(s.Options)
			for u := range builtCh {
				funcs := len(u.prog.Funcs)
				before := checker.Stats()
				t1 := time.Now()
				reports, err := checker.CheckProgram(ctx, u.prog)
				if err != nil {
					fail(err)
					break
				}
				if s.Cache != nil {
					// Every built unit is a cache miss (hits never reach
					// this stage), so store the finished analysis. The
					// shape deltas come from the checker's own books —
					// exactly what a warm hit must replay.
					after := checker.Stats()
					s.Cache.Store(u.name, u.src, CachedFile{
						Functions: after.Functions - before.Functions,
						Blocks:    after.Blocks - before.Blocks,
						Reports:   reports,
					})
				}
				deliver(fileResult{
					idx:          u.idx,
					pkgIdx:       u.pkgIdx,
					name:         u.name,
					funcs:        funcs,
					reports:      reports,
					buildTime:    u.buildTime,
					analysisTime: time.Since(t1),
				})
			}
			workerStats[w] = checker.Stats()
		}(w)
	}

	go func() {
		defer close(jobCh)
		for _, j := range jobs {
			if admit != nil && !admit(stop) {
				return
			}
			select {
			case jobCh <- j:
			case <-stop:
				return
			}
		}
	}()

	buildWG.Wait()
	close(builtCh)
	checkWG.Wait()
	return append(workerStats, cacheStats...), firstErr
}

// accumulator folds per-file results, delivered in archive order, into
// a SweepResult. Sharing it between the streaming and buffered paths is
// what makes their outputs byte-identical.
type accumulator struct {
	res           *SweepResult
	pkgHadReports []bool
}

func newAccumulator(pkgs []Package) *accumulator {
	return &accumulator{
		res: &SweepResult{
			Packages:        len(pkgs),
			ReportsByAlgo:   map[core.Algo]int{},
			ReportsByKind:   map[core.UBKind]int{},
			MinSetHistogram: map[int]int{},
		},
		pkgHadReports: make([]bool, len(pkgs)),
	}
}

func (a *accumulator) add(fr fileResult) {
	res := a.res
	res.Files++
	res.Functions += fr.funcs
	res.BuildTime += fr.buildTime
	res.AnalysisTime += fr.analysisTime
	res.Reports += len(fr.reports)
	if len(fr.reports) > 0 {
		a.pkgHadReports[fr.pkgIdx] = true
	}
	for alg, n := range core.CountByAlgo(fr.reports) {
		res.ReportsByAlgo[alg] += n
	}
	for k, n := range core.CountByUBKind(fr.reports) {
		res.ReportsByKind[k] += n
	}
	for sz, n := range core.MinSetSizeHistogram(fr.reports) {
		res.MinSetHistogram[sz] += n
	}
	for _, r := range fr.reports {
		res.ReportLog = append(res.ReportLog, FileReport{File: fr.name, Report: r})
	}
}

func (a *accumulator) finish(workerStats []core.Stats) *SweepResult {
	res := a.res
	for _, had := range a.pkgHadReports {
		if had {
			res.PackagesWithReports++
		}
	}
	var st core.Stats
	for _, ws := range workerStats {
		st.Add(ws)
	}
	res.Queries = st.Queries
	res.Timeouts = st.Timeouts
	res.RewriteHits = st.RewriteHits
	res.TermsCreated = st.TermsCreated
	res.FastPaths = st.FastPaths
	res.TermsBlasted = st.TermsBlasted
	res.BlastPasses = st.BlastPasses
	res.LearntsReused = st.LearntsReused
	res.CacheHits = st.CacheHits
	res.LearntsDropped = st.LearntsDropped
	res.ArenaBytesReused = st.ArenaBytesReused
	res.PromotedAllocas = st.PromotedAllocas
	res.EliminatedStores = st.EliminatedStores
	res.GVNHits = st.GVNHits
	res.SCCPFoldedValues = st.SCCPFoldedValues
	res.SCCPFoldedBranches = st.SCCPFoldedBranches
	res.SCCPUnreachableBlocks = st.SCCPUnreachableBlocks
	res.CrossBlockGVNHits = st.CrossBlockGVNHits
	res.HoistedUBTerms = st.HoistedUBTerms
	res.DomOrderedSkips = st.DomOrderedSkips
	res.CacheResultHits = st.CacheResultHits
	res.CacheResultMisses = st.CacheResultMisses

	sort.SliceStable(res.ReportLog, func(i, j int) bool {
		a, b := res.ReportLog[i], res.ReportLog[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Report.Pos.Line != b.Report.Pos.Line {
			return a.Report.Pos.Line < b.Report.Pos.Line
		}
		if a.Report.Pos.Col != b.Report.Pos.Col {
			return a.Report.Pos.Col < b.Report.Pos.Col
		}
		return a.Report.Algo < b.Report.Algo
	})
	return res
}

// Format renders the sweep in the style of the paper's §6.5 figures.
// It is total: an empty archive renders without dividing by zero.
func (r *SweepResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "packages checked:        %d\n", r.Packages)
	fmt.Fprintf(&b, "packages with reports:   %d (%.1f%%)\n",
		r.PackagesWithReports, 100*float64(r.PackagesWithReports)/float64(max(1, r.Packages)))
	fmt.Fprintf(&b, "files / functions:       %d / %d\n", r.Files, r.Functions)
	fmt.Fprintf(&b, "build time / analysis:   %v / %v\n", r.BuildTime.Round(time.Millisecond), r.AnalysisTime.Round(time.Millisecond))
	fmt.Fprintf(&b, "solver queries:          %d (%d timeouts)\n", r.Queries, r.Timeouts)
	fmt.Fprintf(&b, "rewrite hits / fast paths: %d / %d\n", r.RewriteHits, r.FastPaths)
	fmt.Fprintf(&b, "terms blasted / blast passes: %d / %d (learnt reuse %d)\n",
		r.TermsBlasted, r.BlastPasses, r.LearntsReused)
	// ArenaBytesReused is deliberately absent here: it tracks per-process
	// allocator reuse, which varies with worker count, and this text
	// block is byte-identical for any -j. It stays available in the
	// struct and the JSON stats encodings.
	fmt.Fprintf(&b, "builder cache hits / learnts dropped: %d / %d\n",
		r.CacheHits, r.LearntsDropped)
	b.WriteString("\nreports by algorithm (Fig. 17):\n")
	for a := core.AlgoElimination; a <= core.AlgoSimplifyAlgebra; a++ {
		fmt.Fprintf(&b, "  %-34s %d\n", a.String(), r.ReportsByAlgo[a])
	}
	b.WriteString("\nreports by UB condition (Fig. 18):\n")
	for _, k := range kindOrder {
		if n := r.ReportsByKind[k]; n > 0 {
			fmt.Fprintf(&b, "  %-26s %d\n", k.String(), n)
		}
	}
	b.WriteString("\nminimal UB-set sizes (§6.5):\n")
	for s := 1; s <= 8; s++ {
		if n := r.MinSetHistogram[s]; n > 0 {
			fmt.Fprintf(&b, "  %d condition(s): %d report(s)\n", s, n)
		}
	}
	return b.String()
}
