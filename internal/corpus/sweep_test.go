package corpus

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func sweepOpts() core.Options {
	// Timeout 0 (no wall-clock deadline): the determinism tests compare
	// runs byte for byte, and a deadline could flip a near-limit query
	// to Unknown under load. These archives' queries all finish in
	// milliseconds, so no bound is needed.
	return core.Options{
		FilterOrigins: true, MinUBSets: true, Inline: true,
	}
}

// reportLogLines renders the sorted report log in a canonical textual
// form for byte-level comparison.
func reportLogLines(res *SweepResult) string {
	var b strings.Builder
	for _, fr := range res.ReportLog {
		fmt.Fprintf(&b, "%s: %s\n", fr.File, fr.Report)
	}
	return b.String()
}

// TestSweepDeterministicAcrossWorkers is the pipeline's core contract:
// Workers=1 and Workers=8 produce identical aggregate counts and
// byte-identical sorted report logs. Run under -race this also checks
// that the worker pipeline is free of data races.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	cfg := ArchiveConfig{
		Packages: 24, FilesPerPackage: 2, FuncsPerFile: 5,
		UnstableFraction: 0.5, Seed: 99,
	}
	pkgs := GenerateArchive(cfg)

	serial, err := (&Sweeper{Options: sweepOpts(), Workers: 1}).Run(context.Background(), pkgs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := (&Sweeper{Options: sweepOpts(), Workers: 8}).Run(context.Background(), pkgs)
	if err != nil {
		t.Fatal(err)
	}

	if serial.Reports == 0 {
		t.Fatal("archive produced no reports; test is vacuous")
	}
	type counts struct {
		Packages, PackagesWithReports, Files, Functions, Reports int
		Queries, Timeouts, RewriteHits, TermsCreated             int64
	}
	c := func(r *SweepResult) counts {
		return counts{r.Packages, r.PackagesWithReports, r.Files, r.Functions,
			r.Reports, r.Queries, r.Timeouts, r.RewriteHits, r.TermsCreated}
	}
	if c(serial) != c(parallel) {
		t.Errorf("counts differ:\n workers=1: %+v\n workers=8: %+v", c(serial), c(parallel))
	}
	for _, m := range []struct {
		name string
		a, b int
	}{
		{"elimination", serial.ReportsByAlgo[core.AlgoElimination], parallel.ReportsByAlgo[core.AlgoElimination]},
		{"boolean-oracle", serial.ReportsByAlgo[core.AlgoSimplifyBool], parallel.ReportsByAlgo[core.AlgoSimplifyBool]},
		{"algebra-oracle", serial.ReportsByAlgo[core.AlgoSimplifyAlgebra], parallel.ReportsByAlgo[core.AlgoSimplifyAlgebra]},
		{"single-cond-minsets", serial.MinSetHistogram[1], parallel.MinSetHistogram[1]},
	} {
		if m.a != m.b {
			t.Errorf("%s: workers=1 got %d, workers=8 got %d", m.name, m.a, m.b)
		}
	}
	sLog, pLog := reportLogLines(serial), reportLogLines(parallel)
	if sLog != pLog {
		t.Errorf("report logs differ between worker counts:\n--- workers=1\n%s--- workers=8\n%s", sLog, pLog)
	}
}

// TestSweepEmptyArchive: the degenerate sweep must succeed and Format
// must not divide by zero.
func TestSweepEmptyArchive(t *testing.T) {
	res, err := Sweep(context.Background(), nil, sweepOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Packages != 0 || res.Files != 0 || res.Reports != 0 {
		t.Fatalf("empty archive produced work: %+v", res)
	}
	if !strings.Contains(res.Format(), "packages checked:        0") {
		t.Errorf("Format output unexpected:\n%s", res.Format())
	}
}

// TestSweepErrorPropagation: a file the frontend rejects must surface
// as an error (not a hang or partial result), from any pipeline stage.
func TestSweepErrorPropagation(t *testing.T) {
	pkgs := []Package{
		{Name: "good", Files: []string{"int f(int x) { return x + 1; }\n"}},
		{Name: "bad", Files: []string{"int broken( {\n"}},
	}
	for _, workers := range []int{1, 4} {
		_, err := (&Sweeper{Options: sweepOpts(), Workers: workers}).Run(context.Background(), pkgs)
		if err == nil {
			t.Errorf("workers=%d: sweep of invalid source succeeded", workers)
		} else if !strings.Contains(err.Error(), "bad_0.c") {
			t.Errorf("workers=%d: error does not name the file: %v", workers, err)
		}
	}
}

// sweepCounts is the comparable aggregate of a SweepResult (everything
// except the wall-clock timing fields).
type sweepCounts struct {
	Packages, PackagesWithReports, Files, Functions, Reports  int
	Queries, Timeouts, RewriteHits, TermsCreated, FastPaths   int64
	TermsBlasted, BlastPasses, LearntsReused                  int64
	Elimination, SimplifyBool, SimplifyAlgebra, SingleMinSets int
}

func countsOf(r *SweepResult) sweepCounts {
	return sweepCounts{
		r.Packages, r.PackagesWithReports, r.Files, r.Functions, r.Reports,
		r.Queries, r.Timeouts, r.RewriteHits, r.TermsCreated, r.FastPaths,
		r.TermsBlasted, r.BlastPasses, r.LearntsReused,
		r.ReportsByAlgo[core.AlgoElimination], r.ReportsByAlgo[core.AlgoSimplifyBool],
		r.ReportsByAlgo[core.AlgoSimplifyAlgebra], r.MinSetHistogram[1],
	}
}

// TestSweepByteIdenticalAcrossWorkersAndModes is the streaming sweep's
// contract: every combination of Workers ∈ {1, 4, 16} and
// buffered-vs-streaming merge produces identical aggregate counts and a
// byte-identical sorted report log.
func TestSweepByteIdenticalAcrossWorkersAndModes(t *testing.T) {
	cfg := ArchiveConfig{
		Packages: 16, FilesPerPackage: 2, FuncsPerFile: 5,
		UnstableFraction: 0.5, Seed: 21,
	}
	pkgs := GenerateArchive(cfg)

	var baseCounts *sweepCounts
	var baseLog string
	for _, workers := range []int{1, 4, 16} {
		for _, buffered := range []bool{false, true} {
			res, err := (&Sweeper{Options: sweepOpts(), Workers: workers, Buffered: buffered}).Run(context.Background(), pkgs)
			if err != nil {
				t.Fatalf("workers=%d buffered=%v: %v", workers, buffered, err)
			}
			c, log := countsOf(res), reportLogLines(res)
			if baseCounts == nil {
				if res.Reports == 0 {
					t.Fatal("archive produced no reports; test is vacuous")
				}
				baseCounts, baseLog = &c, log
				continue
			}
			if c != *baseCounts {
				t.Errorf("workers=%d buffered=%v: counts diverge:\n got  %+v\n want %+v",
					workers, buffered, c, *baseCounts)
			}
			if log != baseLog {
				t.Errorf("workers=%d buffered=%v: report log diverges:\n--- got\n%s--- want\n%s",
					workers, buffered, log, baseLog)
			}
		}
	}
}

// TestSweepStreamingEmitsInOrder: RunStream must deliver every file
// exactly once, in archive order, with the streamed per-file reports
// adding up to the final result.
func TestSweepStreamingEmitsInOrder(t *testing.T) {
	cfg := ArchiveConfig{
		Packages: 10, FilesPerPackage: 3, FuncsPerFile: 4,
		UnstableFraction: 0.5, Seed: 7,
	}
	pkgs := GenerateArchive(cfg)
	var streamed []FileResult
	res, err := (&Sweeper{Options: sweepOpts(), Workers: 8}).RunStream(context.Background(), pkgs, func(fr FileResult) {
		streamed = append(streamed, fr)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != res.Files {
		t.Fatalf("emitted %d files, result has %d", len(streamed), res.Files)
	}
	total := 0
	for i, fr := range streamed {
		if fr.Index != i {
			t.Fatalf("emission %d carries index %d; want strict archive order", i, fr.Index)
		}
		if fr.File == "" || fr.Package == "" {
			t.Errorf("emission %d missing file/package metadata: %+v", i, fr)
		}
		total += len(fr.Reports)
	}
	if total != res.Reports {
		t.Errorf("streamed reports = %d, aggregate = %d", total, res.Reports)
	}
}

// TestSweepErrorShutdownNoDeadlock: a failing file mid-archive must
// shut the pipeline down promptly in both merge modes and at high
// worker counts — no deadlock between feeder, builders, checkers, and
// the emitter. Run under -race this doubles as the shutdown race test.
func TestSweepErrorShutdownNoDeadlock(t *testing.T) {
	var pkgs []Package
	for i := 0; i < 30; i++ {
		pkgs = append(pkgs, Package{
			Name:  fmt.Sprintf("p%02d", i),
			Files: []string{"int f(int x) { return x + 1; }\n"},
		})
	}
	pkgs[17].Files = append(pkgs[17].Files, "int broken( {\n")

	for _, buffered := range []bool{false, true} {
		for _, workers := range []int{4, 16} {
			done := make(chan error, 1)
			go func() {
				_, err := (&Sweeper{Options: sweepOpts(), Workers: workers, Buffered: buffered}).Run(context.Background(), pkgs)
				done <- err
			}()
			select {
			case err := <-done:
				if err == nil {
					t.Errorf("buffered=%v workers=%d: sweep of invalid archive succeeded", buffered, workers)
				} else if !strings.Contains(err.Error(), "p17_1.c") {
					t.Errorf("buffered=%v workers=%d: error does not name the file: %v", buffered, workers, err)
				}
			case <-time.After(30 * time.Second):
				t.Fatalf("buffered=%v workers=%d: sweep deadlocked on error shutdown", buffered, workers)
			}
		}
	}
}

// TestSweepIncrementalVsScratch is the checker-level differential
// contract of the incremental solving subsystem: per-function sessions
// that reuse one SAT core across a function's queries must produce
// byte-identical reports, counts, and report log to scratch solving,
// which rebuilds solver and encoding for every query.
func TestSweepIncrementalVsScratch(t *testing.T) {
	cfg := ArchiveConfig{
		Packages: 16, FilesPerPackage: 2, FuncsPerFile: 5,
		UnstableFraction: 0.7, Seed: 33,
	}
	pkgs := GenerateArchive(cfg)

	inc, err := (&Sweeper{Options: sweepOpts(), Workers: 4}).Run(context.Background(), pkgs)
	if err != nil {
		t.Fatal(err)
	}
	scratchOpts := sweepOpts()
	scratchOpts.ScratchSolve = true
	scr, err := (&Sweeper{Options: scratchOpts, Workers: 4}).Run(context.Background(), pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Reports == 0 {
		t.Fatal("archive produced no reports; test is vacuous")
	}

	// Verdict-level outputs are identical; only effort differs.
	ci, cs := countsOf(inc), countsOf(scr)
	ci.TermsBlasted, ci.BlastPasses, ci.LearntsReused = 0, 0, 0
	cs.TermsBlasted, cs.BlastPasses, cs.LearntsReused = 0, 0, 0
	if ci != cs {
		t.Errorf("counts diverge:\n incremental: %+v\n scratch:     %+v", ci, cs)
	}
	if il, sl := reportLogLines(inc), reportLogLines(scr); il != sl {
		t.Errorf("report logs diverge:\n--- incremental\n%s--- scratch\n%s", il, sl)
	}

	// And the effort asymmetry that is the point of the subsystem:
	// scratch re-blasts what the session amortizes.
	if inc.TermsBlasted >= scr.TermsBlasted {
		t.Errorf("incremental blasted %d terms, scratch %d; expected strictly fewer",
			inc.TermsBlasted, scr.TermsBlasted)
	}
	if inc.BlastPasses >= scr.BlastPasses {
		t.Errorf("incremental blast passes %d, scratch %d; expected strictly fewer",
			inc.BlastPasses, scr.BlastPasses)
	}
	if scr.LearntsReused != 0 {
		t.Errorf("scratch mode reused %d learned clauses; must be 0", scr.LearntsReused)
	}
}

// TestSweepRewriteLayerEngaged: the word-level rewrite layer must fire
// during a sweep and its solver fast paths must be visible in the
// result, so regressions that silently disable it are caught here.
func TestSweepRewriteLayerEngaged(t *testing.T) {
	cfg := ArchiveConfig{
		Packages: 8, FilesPerPackage: 2, FuncsPerFile: 4,
		UnstableFraction: 1, Seed: 5,
	}
	res, err := Sweep(context.Background(), GenerateArchive(cfg), sweepOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.RewriteHits == 0 {
		t.Error("sweep recorded zero rewrite hits")
	}
	if res.TermsCreated == 0 {
		t.Error("sweep recorded zero terms created")
	}
	if res.CacheHits == 0 {
		t.Error("sweep recorded zero builder cache hits")
	}
	if res.ArenaBytesReused == 0 {
		t.Error("sweep recorded zero arena bytes reused; per-function arena recycling is off")
	}
}
