package corpus

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
)

func sweepOpts() core.Options {
	// Timeout 0 (no wall-clock deadline): the determinism tests compare
	// runs byte for byte, and a deadline could flip a near-limit query
	// to Unknown under load. These archives' queries all finish in
	// milliseconds, so no bound is needed.
	return core.Options{
		FilterOrigins: true, MinUBSets: true, Inline: true,
	}
}

// reportLogLines renders the sorted report log in a canonical textual
// form for byte-level comparison.
func reportLogLines(res *SweepResult) string {
	var b strings.Builder
	for _, fr := range res.ReportLog {
		fmt.Fprintf(&b, "%s: %s\n", fr.File, fr.Report)
	}
	return b.String()
}

// TestSweepDeterministicAcrossWorkers is the pipeline's core contract:
// Workers=1 and Workers=8 produce identical aggregate counts and
// byte-identical sorted report logs. Run under -race this also checks
// that the worker pipeline is free of data races.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	cfg := ArchiveConfig{
		Packages: 24, FilesPerPackage: 2, FuncsPerFile: 5,
		UnstableFraction: 0.5, Seed: 99,
	}
	pkgs := GenerateArchive(cfg)

	serial, err := (&Sweeper{Options: sweepOpts(), Workers: 1}).Run(pkgs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := (&Sweeper{Options: sweepOpts(), Workers: 8}).Run(pkgs)
	if err != nil {
		t.Fatal(err)
	}

	if serial.Reports == 0 {
		t.Fatal("archive produced no reports; test is vacuous")
	}
	type counts struct {
		Packages, PackagesWithReports, Files, Functions, Reports int
		Queries, Timeouts, RewriteHits, TermsCreated             int64
	}
	c := func(r *SweepResult) counts {
		return counts{r.Packages, r.PackagesWithReports, r.Files, r.Functions,
			r.Reports, r.Queries, r.Timeouts, r.RewriteHits, r.TermsCreated}
	}
	if c(serial) != c(parallel) {
		t.Errorf("counts differ:\n workers=1: %+v\n workers=8: %+v", c(serial), c(parallel))
	}
	for _, m := range []struct {
		name string
		a, b int
	}{
		{"elimination", serial.ReportsByAlgo[core.AlgoElimination], parallel.ReportsByAlgo[core.AlgoElimination]},
		{"boolean-oracle", serial.ReportsByAlgo[core.AlgoSimplifyBool], parallel.ReportsByAlgo[core.AlgoSimplifyBool]},
		{"algebra-oracle", serial.ReportsByAlgo[core.AlgoSimplifyAlgebra], parallel.ReportsByAlgo[core.AlgoSimplifyAlgebra]},
		{"single-cond-minsets", serial.MinSetHistogram[1], parallel.MinSetHistogram[1]},
	} {
		if m.a != m.b {
			t.Errorf("%s: workers=1 got %d, workers=8 got %d", m.name, m.a, m.b)
		}
	}
	sLog, pLog := reportLogLines(serial), reportLogLines(parallel)
	if sLog != pLog {
		t.Errorf("report logs differ between worker counts:\n--- workers=1\n%s--- workers=8\n%s", sLog, pLog)
	}
}

// TestSweepEmptyArchive: the degenerate sweep must succeed and Format
// must not divide by zero.
func TestSweepEmptyArchive(t *testing.T) {
	res, err := Sweep(nil, sweepOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Packages != 0 || res.Files != 0 || res.Reports != 0 {
		t.Fatalf("empty archive produced work: %+v", res)
	}
	if !strings.Contains(res.Format(), "packages checked:        0") {
		t.Errorf("Format output unexpected:\n%s", res.Format())
	}
}

// TestSweepErrorPropagation: a file the frontend rejects must surface
// as an error (not a hang or partial result), from any pipeline stage.
func TestSweepErrorPropagation(t *testing.T) {
	pkgs := []Package{
		{Name: "good", Files: []string{"int f(int x) { return x + 1; }\n"}},
		{Name: "bad", Files: []string{"int broken( {\n"}},
	}
	for _, workers := range []int{1, 4} {
		_, err := (&Sweeper{Options: sweepOpts(), Workers: workers}).Run(pkgs)
		if err == nil {
			t.Errorf("workers=%d: sweep of invalid source succeeded", workers)
		} else if !strings.Contains(err.Error(), "bad_0.c") {
			t.Errorf("workers=%d: error does not name the file: %v", workers, err)
		}
	}
}

// TestSweepRewriteLayerEngaged: the word-level rewrite layer must fire
// during a sweep and its solver fast paths must be visible in the
// result, so regressions that silently disable it are caught here.
func TestSweepRewriteLayerEngaged(t *testing.T) {
	cfg := ArchiveConfig{
		Packages: 8, FilesPerPackage: 2, FuncsPerFile: 4,
		UnstableFraction: 1, Seed: 5,
	}
	res, err := Sweep(GenerateArchive(cfg), sweepOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.RewriteHits == 0 {
		t.Error("sweep recorded zero rewrite hits")
	}
	if res.TermsCreated == 0 {
		t.Error("sweep recorded zero terms created")
	}
}
