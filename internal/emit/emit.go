// Package emit provides the deterministic in-order emitter shared by
// every streaming surface of the checker: the archive sweep
// (corpus.Sweeper), the batch API (stack.CheckSources), and the
// sharded dispatcher (stack/shard), which re-sequences replica
// streams. It exists so the admission-window + pending-map machinery
// is implemented exactly once; before this package, corpus and stack
// each hand-rolled a copy.
//
// The protocol has three moves:
//
//	producer side                emitter side
//	-------------                ------------
//	Admit(stop)  — reserve a     deliver(idx, v) runs on one
//	  window slot for one          goroutine, in strictly
//	  upcoming result              increasing idx order with no
//	Put(idx, v)  — hand over       gaps; each delivery releases
//	  the finished result          the result's window slot
//	Close()      — no more Puts;
//	  drain and stop
//
// The admission window is what makes the O(window) memory claim true
// rather than merely likely: at most `window` results can sit between
// Admit and delivery — even when one pathological item stalls while
// every other producer races ahead — because a slot frees only when
// its result is delivered in order. A Put preceded by Admit therefore
// never blocks (the internal channel holds the whole window), so
// producers only ever wait in Admit; backpressure from a slow deliver
// callback propagates through slot starvation, not buffer growth.
//
// Error/cancel drain semantics: when a producer fails, indices it
// admitted but never Put leave a gap in the sequence. Delivery stalls
// at the first gap — later results are held, never delivered out of
// order — and Close discards them, so a shut-down pipeline drains
// without deadlock and callers observe a clean prefix of the stream.
package emit

// Ordered re-sequences index-tagged results produced concurrently and
// out of order into a single strictly-increasing delivery stream with
// at most `window` results buffered. The zero value is not usable;
// construct with NewOrdered.
type Ordered[T any] struct {
	window  chan struct{}
	results chan indexed[T]
	done    chan struct{}
	deliver func(idx int, v T)
}

type indexed[T any] struct {
	idx int
	v   T
}

// NewOrdered returns an emitter delivering results for indices
// 0, 1, 2, ... through deliver, which runs on the emitter's own
// goroutine — deliveries never race each other and arrive in strictly
// increasing index order. window (> 0) bounds the results buffered
// between Admit and delivery.
func NewOrdered[T any](window int, deliver func(idx int, v T)) *Ordered[T] {
	if window <= 0 {
		panic("emit: NewOrdered window must be > 0")
	}
	o := &Ordered[T]{
		window:  make(chan struct{}, window),
		results: make(chan indexed[T], window),
		done:    make(chan struct{}),
		deliver: deliver,
	}
	go o.run()
	return o
}

func (o *Ordered[T]) run() {
	defer close(o.done)
	next := 0
	pending := make(map[int]indexed[T])
	for r := range o.results {
		pending[r.idx] = r
		for {
			cur, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			o.deliver(cur.idx, cur.v)
			next++
			<-o.window
		}
	}
}

// Admit reserves a window slot for one upcoming result, blocking while
// the window is full. It returns false — without reserving — once stop
// is closed, so a failing pipeline can unwind producers that would
// otherwise wait on slots a vanished result will never free. A nil
// stop waits indefinitely.
func (o *Ordered[T]) Admit(stop <-chan struct{}) bool {
	if stop == nil {
		o.window <- struct{}{}
		return true
	}
	select {
	case o.window <- struct{}{}:
		return true
	case <-stop:
		return false
	}
}

// Put hands index idx's finished result to the emitter. Every Put must
// be covered by a prior successful Admit (one slot per result, in any
// producer); under that discipline Put never blocks. Each index must
// be Put at most once.
func (o *Ordered[T]) Put(idx int, v T) {
	o.results <- indexed[T]{idx, v}
}

// Close signals that no more results will arrive, waits until every
// deliverable result has been delivered, and discards results stranded
// behind a gap (an admitted index that was never Put). No Admit or Put
// may follow Close.
func (o *Ordered[T]) Close() {
	close(o.results)
	<-o.done
}
