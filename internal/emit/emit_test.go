package emit

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestOrderedDelivery: results Put in a scrambled order are delivered
// strictly in increasing index order, with no gaps and no duplicates.
func TestOrderedDelivery(t *testing.T) {
	const n = 500
	var got []int
	o := NewOrdered(n, func(idx int, v int) {
		if v != idx*3 {
			t.Errorf("index %d delivered value %d, want %d", idx, v, idx*3)
		}
		got = append(got, idx)
	})
	perm := rand.New(rand.NewSource(1)).Perm(n)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := w; j < n; j += 8 {
				idx := perm[j]
				o.Admit(nil)
				o.Put(idx, idx*3)
			}
		}(w)
	}
	wg.Wait()
	o.Close()
	if len(got) != n {
		t.Fatalf("delivered %d results, want %d", len(got), n)
	}
	for i, idx := range got {
		if idx != i {
			t.Fatalf("delivery %d has index %d; order must be strictly increasing from 0", i, idx)
		}
	}
}

// TestOrderedWindowBound: with window W and delivery stalled at index
// 0, the (W+1)-th Admit blocks until a slot frees.
func TestOrderedWindowBound(t *testing.T) {
	const window = 4
	o := NewOrdered(window, func(int, struct{}) {})
	// Fill the window without ever producing index 0: delivery stalls,
	// so no slot is released.
	for i := 0; i < window; i++ {
		o.Admit(nil)
		if i > 0 {
			o.Put(i, struct{}{})
		}
	}
	admitted := make(chan struct{})
	go func() {
		o.Admit(nil)
		close(admitted)
	}()
	select {
	case <-admitted:
		t.Fatal("Admit beyond the window succeeded while delivery was stalled")
	case <-time.After(50 * time.Millisecond):
	}
	// Producing index 0 unblocks the whole prefix; all slots free.
	o.Put(0, struct{}{})
	select {
	case <-admitted:
	case <-time.After(5 * time.Second):
		t.Fatal("Admit still blocked after the window drained")
	}
	o.Put(window, struct{}{})
	o.Close()
}

// TestOrderedStop: a closed stop channel fails Admit without consuming
// a slot.
func TestOrderedStop(t *testing.T) {
	o := NewOrdered(1, func(int, int) {})
	stop := make(chan struct{})
	o.Admit(stop) // occupy the only slot; index 0 never produced
	close(stop)
	if o.Admit(stop) {
		t.Fatal("Admit succeeded after stop closed with a full window")
	}
	o.Close()
}

// TestOrderedDrainWithGap: Close returns even when an admitted index
// was never Put, delivering only the contiguous prefix — the
// error-shutdown drain semantics.
func TestOrderedDrainWithGap(t *testing.T) {
	var got []int
	o := NewOrdered(8, func(idx int, _ struct{}) { got = append(got, idx) })
	for i := 0; i < 4; i++ {
		o.Admit(nil)
	}
	o.Put(0, struct{}{})
	// Index 1 is the gap; 2 and 3 finished out of order.
	o.Put(2, struct{}{})
	o.Put(3, struct{}{})
	done := make(chan struct{})
	go func() { o.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close deadlocked on a gapped sequence")
	}
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("delivered %v, want exactly the contiguous prefix [0]", got)
	}
}
