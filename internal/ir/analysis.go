package ir

// SSA-form analyses run by the checker before encoding: global value
// numbering and dead-store elimination. Both are deliberately
// conservative — the checker's output with them enabled must stay
// byte-identical to the legacy pipeline across the sweep corpus
// (TestSSAVsLegacyByteIdentity) — so every rule below is justified
// against how internal/core consumes the IR:
//
//   - Report positions anchor at a block's first position-carrying
//     instruction, so neither pass removes that anchor instruction
//     (GVN keeps it in place and only redirects its uses).
//   - The well-defined-program assumption ∆ deduplicates UB-condition
//     terms by interned term identity, keeping the first condition in
//     block order. GVN therefore only merges a value into a
//     representative that precedes it in the same block: the victim's
//     conditions encode to the very terms the representative's
//     conditions already produced, so the deduplicated assumption list
//     (and every solver query) is unchanged.
//   - Origin metadata feeds macro/inline report filtering through
//     transitive argument walks, so GVN requires the representative
//     and victim to carry the same origin.
//   - simplify() creates one site per OpICmp instruction and traces
//     boolean (width-1) use chains, so comparisons are never merged
//     and no candidate may consume a width-1 operand.
//
// Value numbering is structural: two instructions are congruent when
// they have the same operation, width, signedness, auxiliary fields,
// and identical (already-renumbered) operands in order. This is
// exactly the equivalence the bv builder's hash-consing assigns to
// their encodings, computed before encoding happens — term interning
// as a value-numbering oracle, under-approximated by not modeling the
// rewrite rules (a rewrite can merge terms whose UB side conditions
// differ, which ∆ must keep apart).

// PassStats aggregates what one RunSSAPasses invocation did. Every
// pass registered in RunSSAPasses surfaces at least one counter here;
// scripts/invariants.sh enforces that each counter reaches core.Stats
// and that each pass has a differential oracle.
type PassStats struct {
	PromotedAllocas  int
	PlacedPhis       int
	EliminatedLoads  int
	EliminatedStores int
	GVNHits          int

	SCCPFoldedValues      int
	SCCPFoldedBranches    int
	SCCPUnreachableBlocks int
	CrossBlockGVNHits     int
	HoistedUBTerms        int

	// Sharpening indicators, used by the differential oracles: facts
	// only the optimistic SCCP iteration could prove (beyond the bv
	// rewrite layer's reach) and the total number of instructions
	// hoisting moved. When promotion, store elimination, these, and
	// HoistedValues are all zero, the pass stack provably changed no
	// encoding and the checker's output is byte-identical to the
	// legacy pipeline's.
	SCCPSharpened int
	HoistedValues int
}

// Sharpening reports whether any pass transformed the function beyond
// what the encoding layer's rewrite rules would have seen through —
// i.e. whether byte-identical checker output versus the legacy
// pipeline is still guaranteed (false) or only semantic equivalence is
// (true). The differential fuzz oracles key their strictness on this.
func (ps PassStats) Sharpening() bool {
	return ps.PromotedAllocas > 0 || ps.EliminatedStores > 0 ||
		ps.EliminatedLoads > 0 || ps.SCCPSharpened > 0 || ps.HoistedValues > 0
}

// RunSSAPasses runs the SSA pass stack over f: mem2reg promotion of
// non-escaping allocas (ssa.go), then sparse conditional constant
// propagation (sccp.go) over the promoted form, then dominator-ordered
// value numbering, dead-store elimination, and loop-invariant UB
// hoisting (licm.go). dom must be f's dominator tree; the passes
// change no blocks or edges, so it stays valid. UB-condition insertion
// and encoding must happen after this.
func RunSSAPasses(f *Func, dom *DomTree) PassStats {
	m2r := PromoteAllocas(f, dom)
	sccp := SCCP(f)
	sameGVN, crossGVN := GVN(f, dom)
	dse := DSE(f)
	hoistedUB, hoistedAll := HoistLoopInvariantUB(f, dom)
	return PassStats{
		PromotedAllocas:  m2r.PromotedAllocas,
		PlacedPhis:       m2r.PlacedPhis,
		EliminatedLoads:  m2r.RemovedLoads,
		EliminatedStores: m2r.RemovedStores + dse,
		GVNHits:          sameGVN,

		SCCPFoldedValues:      sccp.FoldedValues,
		SCCPFoldedBranches:    sccp.FoldedBranches,
		SCCPUnreachableBlocks: sccp.UnreachableBlocks,
		CrossBlockGVNHits:     crossGVN,
		HoistedUBTerms:        hoistedUB,

		SCCPSharpened: sccp.Sharpened,
		HoistedValues: hoistedAll,
	}
}

// gvnKey is the structural identity of a candidate instruction. Args
// are value IDs after renumbering (candidates have at most two).
type gvnKey struct {
	op         Op
	width      int
	signed     bool
	aux, aux2  int64
	arg0, arg1 int
}

// gvnCandidate reports whether v may participate in value numbering.
// Pure computations and constants only: no memory, calls, phis,
// opaque leaves, or terminators (OpUnknown is a fresh value each time
// by definition and must never merge). OpICmp is excluded because the
// simplification algorithm creates one report site per comparison
// instruction; width-1 results and operands are excluded because
// boolean use chains feed the sinks-only-to-folded-branches analysis;
// OpSelect is excluded by the width-1-operand rule (its condition).
func gvnCandidate(v *Value) bool {
	switch v.Op {
	case OpConst,
		OpAdd, OpSub, OpMul, OpUDiv, OpSDiv, OpURem, OpSRem, OpNeg,
		OpAnd, OpOr, OpXor, OpNot, OpShl, OpLShr, OpAShr,
		OpZExt, OpSExt, OpTrunc, OpPtrAdd, OpIndexAddr:
	default:
		return false
	}
	if v.Width <= 1 {
		return false
	}
	for _, a := range v.Args {
		if a.Width <= 1 {
			return false
		}
	}
	return true
}

// firstAnchor returns the block's first position-carrying value — the
// instruction report positions anchor at — or nil.
func firstAnchor(b *Block) *Value {
	for _, v := range b.Values() {
		if v.Pos.IsValid() {
			return v
		}
	}
	return nil
}

// gvnCarriesUBCond reports whether v is an operation insertUBConds
// attaches a condition to (among the gvnCandidate ops). A cross-block
// victim carrying a UB condition is never deleted: its condition's
// guarded ∆ form Or(¬R'_d, ¬U_d) names its *own* block's reachability,
// which differs from the representative's, so deleting it would drop a
// term the legacy pipeline keeps. The instruction stays in place as a
// condition carrier with its uses redirected.
func gvnCarriesUBCond(v *Value) bool {
	switch v.Op {
	case OpPtrAdd, OpUDiv, OpSDiv, OpURem, OpSRem, OpShl, OpLShr, OpAShr:
		return true
	case OpAdd, OpSub, OpMul, OpNeg:
		return v.Signed
	case OpIndexAddr:
		return v.Aux2 > 0
	}
	return false
}

// GVN merges structurally identical pure computations with
// dominator-ordered availability: a value computed in a block is
// available in every block it dominates, so the table is scoped to the
// dominator-tree walk. Within a block the representative must precede
// the victim; across blocks the representative's block must dominate
// the victim's block *and* precede it in layout order, so that the ∆
// deduplication (which keeps the first condition in block order) sees
// the same survivor either way. Uses of the victim are redirected to
// the representative and the victim is deleted, unless it is its
// block's report-position anchor or a cross-block UB-condition carrier
// (see gvnCarriesUBCond). Returns the same-block and cross-block merge
// counts.
func GVN(f *Func, dom *DomTree) (sameBlock, crossBlock int) {
	redirect := map[*Value]*Value{}
	resolve := func(v *Value) *Value {
		for {
			r, ok := redirect[v]
			if !ok {
				return v
			}
			v = r
		}
	}
	remove := map[*Value]bool{}
	blockIdx := make(map[*Block]int, len(f.Blocks))
	for i, b := range f.Blocks {
		blockIdx[b] = i
	}
	children := domChildren(f, dom)
	table := map[gvnKey][]*Value{}
	var scope []gvnKey // undo log: pop table entries when leaving a block

	var walk func(b *Block)
	walk = func(b *Block) {
		mark := len(scope)
		anchor := firstAnchor(b)
		for _, v := range b.Instrs {
			// Renumber operands first so chains of congruences close
			// through dominators.
			for i, a := range v.Args {
				v.Args[i] = resolve(a)
			}
			if !gvnCandidate(v) {
				continue
			}
			key := gvnKey{
				op: v.Op, width: v.Width, signed: v.Signed,
				aux: v.Aux, aux2: v.Aux2, arg0: -1, arg1: -1,
			}
			if len(v.Args) > 0 {
				key.arg0 = v.Args[0].ID
			}
			if len(v.Args) > 1 {
				key.arg1 = v.Args[1].ID
			}
			merged := false
			for _, rep := range table[key] {
				// Same origin keeps the transitive origin walks behind
				// macro/inline filtering unchanged.
				if rep.Origin != v.Origin {
					continue
				}
				inBlock := rep.Block == b
				if !inBlock && blockIdx[rep.Block] >= blockIdx[b] {
					continue // ∆ dedup keeps the first in block order
				}
				redirect[v] = rep
				if inBlock {
					sameBlock++
				} else {
					crossBlock++
				}
				if v != anchor && (inBlock || !gvnCarriesUBCond(v)) {
					remove[v] = true
				}
				merged = true
				break
			}
			if !merged {
				table[key] = append(table[key], v)
				scope = append(scope, key)
			}
		}
		if b.Term != nil {
			for i, a := range b.Term.Args {
				b.Term.Args[i] = resolve(a)
			}
		}
		for _, c := range children[b] {
			walk(c)
		}
		for len(scope) > mark {
			k := scope[len(scope)-1]
			scope = scope[:len(scope)-1]
			table[k] = table[k][:len(table[k])-1]
		}
	}
	if f.Entry != nil {
		walk(f.Entry)
	}
	hits := sameBlock + crossBlock
	if hits == 0 {
		return 0, 0
	}
	// Cross-block uses of merged values (including phi operands in
	// blocks processed before the victim's block).
	for _, b := range f.Blocks {
		for _, v := range b.Values() {
			for i, a := range v.Args {
				if a != nil {
					v.Args[i] = resolve(a)
				}
			}
		}
	}
	if len(remove) > 0 {
		for _, b := range f.Blocks {
			kept := b.Instrs[:0]
			for _, v := range b.Instrs {
				if !remove[v] {
					kept = append(kept, v)
				}
			}
			b.Instrs = kept
		}
	}
	return sameBlock, crossBlock
}

// DSE deletes stores that are fully overwritten within their own
// block: a store to the same address value, of at least the same
// width, with no load or call in between (an intervening store to a
// different address cannot resurrect the dead bytes — the overwriting
// store is last either way). The block's report-position anchor is
// never deleted. Returns the number of stores removed.
func DSE(f *Func) int {
	removed := 0
	for _, b := range f.Blocks {
		anchor := firstAnchor(b)
		last := map[*Value]*Value{} // address value -> latest store
		var dead []*Value
		for _, v := range b.Instrs {
			switch v.Op {
			case OpLoad, OpCall:
				// Either may observe stored bytes (a call can load
				// through any escaped pointer); everything pending is
				// live.
				clear(last)
			case OpStore:
				addr := v.Args[0]
				if prev := last[addr]; prev != nil &&
					v.Args[1].Width >= prev.Args[1].Width &&
					prev != anchor {
					dead = append(dead, prev)
					removed++
				}
				last[addr] = v
			}
		}
		if len(dead) == 0 {
			continue
		}
		deadSet := map[*Value]bool{}
		for _, v := range dead {
			deadSet[v] = true
		}
		kept := b.Instrs[:0]
		for _, v := range b.Instrs {
			if !deadSet[v] {
				kept = append(kept, v)
			}
		}
		b.Instrs = kept
	}
	return removed
}
