package ir

import "testing"

func TestGVNMergesDuplicateArithmetic(t *testing.T) {
	src := `
int f(int a, int b) {
	int x = (a + b) * 3;
	int y = (a + b) * 3;
	return x - y;
}
`
	execDiff(t, src, "f", [][]uint64{{1, 2}, {7, 9}, {0, 0}}, func(f *Func) {
		if hits, _ := GVN(f, ComputeDom(f)); hits < 2 {
			t.Errorf("GVN hits = %d, want >= 2 (add and mul each duplicated)", hits)
		}
	})
	f := fn(t, build(t, src), "f")
	GVN(f, ComputeDom(f))
	if n := countOp(f, OpAdd); n != 1 {
		t.Errorf("%d adds remain, want 1", n)
	}
	if n := countOp(f, OpMul); n != 1 {
		t.Errorf("%d muls remain, want 1", n)
	}
}

// TestGVNChainsCongruence: renumbering operands before hashing closes
// congruence chains — the second mul only merges because the second
// add was already renumbered to the first.
func TestGVNChainsCongruence(t *testing.T) {
	src := `
int f(int a, int b, int c) {
	int x = (a + b) * c;
	int y = (a + b) * c;
	int z = (a + b) * c;
	return x + y + z;
}
`
	f := fn(t, build(t, src), "f")
	adds := countOp(f, OpAdd)
	GVN(f, ComputeDom(f))
	// Three duplicated (a+b) collapse to one; three muls to one; the
	// result sum adds stay.
	if n := countOp(f, OpMul); n != 1 {
		t.Errorf("%d muls remain, want 1", n)
	}
	if n := countOp(f, OpAdd); n != adds-2 {
		t.Errorf("%d adds remain, want %d", n, adds-2)
	}
}

// TestGVNRespectsOrigin: values carrying different macro/inline origin
// strings must not merge, because report filtering walks origins
// transitively through arguments.
func TestGVNRespectsOrigin(t *testing.T) {
	src := `
int f(int a, int b) {
	int x = a * b;
	int y = a * b;
	return x - y;
}
`
	f := fn(t, build(t, src), "f")
	var muls []*Value
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Op == OpMul {
				muls = append(muls, v)
			}
		}
	}
	if len(muls) != 2 {
		t.Fatalf("test setup: %d muls, want 2", len(muls))
	}
	muls[1].Origin = "MACRO_Y"
	if same, cross := GVN(f, ComputeDom(f)); same+cross != 0 {
		t.Errorf("GVN hits = %d+%d, want 0 across differing origins", same, cross)
	}
	if n := countOp(f, OpMul); n != 2 {
		t.Errorf("%d muls remain, want 2", n)
	}
}

// TestGVNSkipsComparisonsAndBooleans: OpICmp is one report site per
// instruction and width-1 values feed boolean sink analysis; neither
// may merge.
func TestGVNSkipsComparisonsAndBooleans(t *testing.T) {
	src := `
int f(int a, int b) {
	int x = (a < b);
	int y = (a < b);
	return x + y;
}
`
	f := fn(t, build(t, src), "f")
	before := countOp(f, OpICmp)
	if before != 2 {
		t.Fatalf("test setup: %d icmps, want 2", before)
	}
	GVN(f, ComputeDom(f))
	if n := countOp(f, OpICmp); n != 2 {
		t.Errorf("%d icmps remain, want 2 (comparisons never merge)", n)
	}
}

// TestGVNDoesNotMergeSiblings: duplicates in sibling branches stay
// separate — neither block dominates the other, so the value is not
// available across them.
func TestGVNDoesNotMergeSiblings(t *testing.T) {
	src := `
int f(int a, int b) {
	int x = 0;
	if (a) {
		x = a * b;
	} else {
		x = a * b;
	}
	return x;
}
`
	f := fn(t, build(t, src), "f")
	if n := countOp(f, OpMul); n != 2 {
		t.Fatalf("test setup: %d muls, want 2", n)
	}
	GVN(f, ComputeDom(f))
	if n := countOp(f, OpMul); n != 2 {
		t.Errorf("%d muls remain, want 2 (the duplicates live in sibling blocks)", n)
	}
}

func TestDSERemovesOverwrittenStores(t *testing.T) {
	src := `
int f(int a) {
	int x = 1;
	int *p = &x;
	*p = 2;
	*p = a;
	return *p;
}
`
	execDiff(t, src, "f", [][]uint64{{0}, {9}}, func(f *Func) {
		if removed := DSE(f); removed == 0 {
			t.Error("DSE removed nothing; the first two stores are dead")
		}
	})
}

func TestDSEKeepsStoreBeforeLoad(t *testing.T) {
	src := `
int f(int a) {
	int x = 1;
	int *p = &x;
	int y = *p;
	*p = a;
	return y + *p;
}
`
	execDiff(t, src, "f", [][]uint64{{0}, {4}}, func(f *Func) {
		if removed := DSE(f); removed != 0 {
			t.Errorf("DSE removed %d stores; the load observes the first", removed)
		}
	})
}

func TestDSEKeepsStoreBeforeCall(t *testing.T) {
	src := `
int g(int *p) { return *p; }
int f() {
	int x = 1;
	g(&x);
	x = 2;
	return x;
}
`
	f := fn(t, build(t, src), "f")
	if removed := DSE(f); removed != 0 {
		t.Errorf("DSE removed %d stores; the call may observe the escaped slot", removed)
	}
}

// TestRunSSAPassesExecDifferential drives the full pass stack over a
// function exercising promotion, numbering, and store elimination at
// once.
func TestRunSSAPassesExecDifferential(t *testing.T) {
	src := `
int f(int a, int b) {
	int x = 0;
	int *p = &x;
	*p = a + b;
	*p = a + b + 1;
	int s = 0;
	for (int i = 0; i < *p; i++) {
		s = s + (a + b);
	}
	if (s > 10) {
		*p = s;
	}
	return *p + s;
}
`
	var ps PassStats
	execDiff(t, src, "f",
		[][]uint64{{0, 0}, {1, 2}, {3, 4}, {10, 0}},
		func(f *Func) { ps = RunSSAPasses(f, ComputeDom(f)) })
	if ps.PromotedAllocas != 1 {
		t.Errorf("PromotedAllocas = %d, want 1", ps.PromotedAllocas)
	}
	if ps.EliminatedStores == 0 {
		t.Error("EliminatedStores = 0, want > 0 (promotion deletes the stores)")
	}
}
