package ir

import (
	"fmt"

	"repro/internal/cc"
)

// Build lowers a type-checked translation unit to IR, one Func per
// function with a body. SSA form is constructed on the fly following
// Braun et al. (simple and efficient SSA construction), which suits a
// single-pass lowering from a structured AST.
func Build(file *cc.File) (*Program, error) {
	p := &Program{File: file.Name}
	for _, fn := range file.Funcs {
		if fn.Body == nil {
			continue
		}
		f, err := buildFunc(file, fn)
		if err != nil {
			return nil, err
		}
		p.Funcs = append(p.Funcs, f)
	}
	return p, nil
}

type builder struct {
	file *cc.File
	fn   *Func
	cur  *Block

	defs       map[*Block]map[string]*Value
	sealed     map[*Block]bool
	incomplete map[*Block]map[string]*Value
	varTypes   map[string]*cc.Type // unique var key -> C type
	memVars    map[string]*Value   // address-taken/aggregate vars -> address value
	scopes     []map[string]string // source name -> unique key
	nextVarID  int

	breakTargets    []*Block
	continueTargets []*Block
}

func buildFunc(file *cc.File, decl *cc.FuncDecl) (f *Func, err error) {
	defer func() {
		if r := recover(); r != nil {
			if be, ok := r.(buildError); ok {
				f, err = nil, be.err
				return
			}
			panic(r)
		}
	}()
	b := &builder{
		file:       file,
		fn:         &Func{Name: decl.Name},
		defs:       map[*Block]map[string]*Value{},
		sealed:     map[*Block]bool{},
		incomplete: map[*Block]map[string]*Value{},
		varTypes:   map[string]*cc.Type{},
		memVars:    map[string]*Value{},
	}
	if decl.Ret.IsScalar() {
		b.fn.RetWidth = decl.Ret.BitWidth()
	}
	entry := b.fn.NewBlock()
	b.fn.Entry = entry
	b.cur = entry
	b.seal(entry)
	b.pushScope()
	for _, prm := range decl.Params {
		v := b.emit(&Value{Op: OpParam, Width: prm.Type.BitWidth(), AuxName: prm.Name, Pos: decl.Position()})
		b.fn.Params = append(b.fn.Params, v)
		if prm.Name != "" {
			key := b.declareVar(prm.Name, prm.Type)
			b.writeVar(key, b.cur, v)
		}
	}
	b.stmt(decl.Body)
	if b.cur.Term == nil {
		// Fall off the end: implicit return.
		b.cur.Term = b.val(&Value{Op: OpRet, Pos: decl.Position()})
	}
	b.popScope()
	b.fn.RemoveUnreachableBlocks()
	return b.fn, nil
}

type buildError struct{ err error }

func (b *builder) failf(pos cc.Pos, format string, args ...interface{}) {
	panic(buildError{&cc.Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}})
}

// --- scopes and SSA bookkeeping -------------------------------------------

func (b *builder) pushScope() { b.scopes = append(b.scopes, map[string]string{}) }
func (b *builder) popScope()  { b.scopes = b.scopes[:len(b.scopes)-1] }

func (b *builder) declareVar(name string, t *cc.Type) string {
	b.nextVarID++
	key := fmt.Sprintf("%s#%d", name, b.nextVarID)
	b.scopes[len(b.scopes)-1][name] = key
	b.varTypes[key] = t
	return key
}

func (b *builder) resolveVar(name string) (string, bool) {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		if key, ok := b.scopes[i][name]; ok {
			return key, true
		}
	}
	return "", false
}

func (b *builder) writeVar(key string, blk *Block, v *Value) {
	m := b.defs[blk]
	if m == nil {
		m = map[string]*Value{}
		b.defs[blk] = m
	}
	m[key] = v
}

func (b *builder) readVar(key string, blk *Block) *Value {
	if v, ok := b.defs[blk][key]; ok {
		return v
	}
	return b.readVarRecursive(key, blk)
}

func (b *builder) varWidth(key string) int {
	t := b.varTypes[key]
	if t == nil || !t.IsScalar() {
		return 64
	}
	return t.BitWidth()
}

func (b *builder) readVarRecursive(key string, blk *Block) *Value {
	var v *Value
	switch {
	case !b.sealed[blk]:
		v = b.newPhi(blk, b.varWidth(key))
		if b.incomplete[blk] == nil {
			b.incomplete[blk] = map[string]*Value{}
		}
		b.incomplete[blk][key] = v
	case len(blk.Preds) == 0:
		// Entry reached without a definition: the variable is
		// uninitialized here. The paper's checker deliberately does not
		// model uninitialized-use UB (§4.6); an opaque value matches.
		v = b.valIn(blk, &Value{Op: OpUnknown, Width: b.varWidth(key), AuxName: "uninit." + key})
		blk.Instrs = append([]*Value{v}, blk.Instrs...)
	case len(blk.Preds) == 1:
		v = b.readVar(key, blk.Preds[0])
	default:
		phi := b.newPhi(blk, b.varWidth(key))
		b.writeVar(key, blk, phi)
		v = b.addPhiOperands(key, phi)
	}
	b.writeVar(key, blk, v)
	return v
}

func (b *builder) newPhi(blk *Block, width int) *Value {
	v := b.valIn(blk, &Value{Op: OpPhi, Width: width})
	blk.Instrs = append([]*Value{v}, blk.Instrs...)
	return v
}

func (b *builder) addPhiOperands(key string, phi *Value) *Value {
	for _, pred := range phi.Block.Preds {
		phi.Args = append(phi.Args, b.readVar(key, pred))
	}
	return b.tryRemoveTrivialPhi(phi)
}

// tryRemoveTrivialPhi replaces a phi whose operands are all the same
// value (or the phi itself) with that value.
func (b *builder) tryRemoveTrivialPhi(phi *Value) *Value {
	var same *Value
	for _, a := range phi.Args {
		if a == phi || a == same {
			continue
		}
		if same != nil {
			return phi // not trivial
		}
		same = a
	}
	if same == nil {
		return phi // self-referential only; keep (degenerate loop)
	}
	// Rewrite uses of phi to same.
	for _, blk := range b.fn.Blocks {
		for _, v := range blk.Values() {
			for i, a := range v.Args {
				if a == phi {
					v.Args[i] = same
				}
			}
		}
	}
	// Remove phi from its block.
	instrs := phi.Block.Instrs
	for i, v := range instrs {
		if v == phi {
			phi.Block.Instrs = append(instrs[:i:i], instrs[i+1:]...)
			break
		}
	}
	// Variable defs pointing at phi must follow.
	for _, m := range b.defs {
		for k, v := range m {
			if v == phi {
				m[k] = same
			}
		}
	}
	return same
}

func (b *builder) seal(blk *Block) {
	if b.sealed[blk] {
		return
	}
	b.sealed[blk] = true
	for key, phi := range b.incomplete[blk] {
		b.addPhiOperands(key, phi)
	}
	delete(b.incomplete, blk)
}

// --- emit helpers -----------------------------------------------------------

func (b *builder) valIn(blk *Block, v *Value) *Value {
	v.ID = b.fn.NewValueID()
	v.Block = blk
	return v
}

func (b *builder) val(v *Value) *Value { return b.valIn(b.cur, v) }

func (b *builder) emit(v *Value) *Value {
	v = b.val(v)
	b.cur.Instrs = append(b.cur.Instrs, v)
	return v
}

func (b *builder) konst(val int64, width int) *Value {
	return b.emit(&Value{Op: OpConst, Width: width, Aux: val})
}

func (b *builder) branch(to *Block, pos cc.Pos) {
	if b.cur.Term != nil {
		return
	}
	b.cur.Term = b.val(&Value{Op: OpBr, Pos: pos})
	b.cur.Succs = []*Block{to}
	to.Preds = append(to.Preds, b.cur)
}

func (b *builder) condBranch(cond *Value, t, f *Block, pos cc.Pos, origin string) {
	if b.cur.Term != nil {
		return
	}
	b.cur.Term = b.val(&Value{Op: OpCondBr, Args: []*Value{cond}, Pos: pos, Origin: origin})
	b.cur.Succs = []*Block{t, f}
	t.Preds = append(t.Preds, b.cur)
	f.Preds = append(f.Preds, b.cur)
}

// startDeadBlock begins an unreachable continuation after ret/break.
func (b *builder) startDeadBlock() {
	blk := b.fn.NewBlock()
	b.seal(blk)
	b.cur = blk
}

// coerce converts v (typed from) to the width/signedness of target.
func (b *builder) coerce(v *Value, from *cc.Type, to *cc.Type) *Value {
	if !to.IsScalar() {
		return v
	}
	tw := to.BitWidth()
	if v.Width == tw {
		return v
	}
	if v.Width > tw {
		return b.emit(&Value{Op: OpTrunc, Width: tw, Args: []*Value{v}, Pos: v.Pos, Origin: v.Origin})
	}
	op := OpZExt
	if from != nil && from.IsInteger() && from.Signed {
		op = OpSExt
	}
	return b.emit(&Value{Op: op, Width: tw, Args: []*Value{v}, Pos: v.Pos, Origin: v.Origin})
}

// asBool reduces a value to width 1 (v != 0).
func (b *builder) asBool(v *Value) *Value {
	if v.Width == 1 {
		return v
	}
	zero := b.konst(0, v.Width)
	return b.emit(&Value{Op: OpICmp, Width: 1, Aux: int64(CmpNe), Args: []*Value{v, zero}, Pos: v.Pos, Origin: v.Origin})
}

// --- statements ---------------------------------------------------------------

func (b *builder) stmt(s cc.Stmt) {
	switch s := s.(type) {
	case *cc.Block:
		b.pushScope()
		for _, st := range s.Stmts {
			b.stmt(st)
		}
		b.popScope()
	case *cc.Empty:
	case *cc.DeclStmt:
		b.declStmt(s)
	case *cc.ExprStmt:
		b.expr(s.X)
	case *cc.If:
		b.ifStmt(s)
	case *cc.While:
		b.whileStmt(s)
	case *cc.For:
		b.forStmt(s)
	case *cc.Return:
		var args []*Value
		if s.X != nil {
			v := b.expr(s.X)
			if b.fn.RetWidth > 0 {
				v = b.coerce(v, s.X.ExprType(), widthType(b.fn.RetWidth, true))
				args = []*Value{v}
			}
		}
		b.cur.Term = b.val(&Value{Op: OpRet, Args: args, Pos: s.Position()})
		b.startDeadBlock()
	case *cc.Break:
		if len(b.breakTargets) == 0 {
			b.failf(s.Position(), "break outside loop")
		}
		b.branch(b.breakTargets[len(b.breakTargets)-1], s.Position())
		b.startDeadBlock()
	case *cc.Continue:
		if len(b.continueTargets) == 0 {
			b.failf(s.Position(), "continue outside loop")
		}
		b.branch(b.continueTargets[len(b.continueTargets)-1], s.Position())
		b.startDeadBlock()
	default:
		b.failf(s.Position(), "ir: unsupported statement %T", s)
	}
}

// widthType fabricates a scalar cc.Type of the given width for coerce.
func widthType(w int, signed bool) *cc.Type {
	return &cc.Type{Kind: cc.TypeInt, Width: w, Signed: signed}
}

func (b *builder) declStmt(s *cc.DeclStmt) {
	key := b.declareVar(s.Name, s.Type)
	// Aggregates and arrays live in memory; their "value" is a stable
	// abstract address.
	if !s.Type.IsScalar() {
		addr := b.emit(&Value{Op: OpUnknown, Width: cc.PointerWidth, AuxName: "addrof." + key, Pos: s.Position()})
		b.memVars[key] = addr
		return
	}
	if s.Init != nil {
		v := b.expr(s.Init)
		v = b.coerce(v, s.Init.ExprType(), s.Type)
		b.writeVar(key, b.cur, v)
	}
}

func (b *builder) ifStmt(s *cc.If) {
	thenB := b.fn.NewBlock()
	elseB := b.fn.NewBlock()
	exitB := b.fn.NewBlock()
	cond := b.asBool(b.expr(s.Cond))
	origin := macroOriginOf(s.Cond)
	b.condBranch(cond, thenB, elseB, s.Position(), origin)
	b.seal(thenB)
	b.seal(elseB)

	b.cur = thenB
	b.stmt(s.Then)
	b.branch(exitB, s.Position())

	b.cur = elseB
	if s.Else != nil {
		b.stmt(s.Else)
	}
	b.branch(exitB, s.Position())

	b.seal(exitB)
	b.cur = exitB
}

func (b *builder) whileStmt(s *cc.While) {
	header := b.fn.NewBlock()
	body := b.fn.NewBlock()
	exit := b.fn.NewBlock()
	if s.DoWhile {
		b.branch(body, s.Position())
	} else {
		b.branch(header, s.Position())
	}

	b.cur = header // unsealed: back edge incoming
	cond := b.asBool(b.expr(s.Cond))
	b.condBranch(cond, body, exit, s.Position(), macroOriginOf(s.Cond))

	b.breakTargets = append(b.breakTargets, exit)
	b.continueTargets = append(b.continueTargets, header)
	if s.DoWhile {
		b.seal(body)
	}
	b.cur = body
	b.stmt(s.Body)
	b.branch(header, s.Position())
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]

	b.seal(header)
	if !s.DoWhile {
		b.seal(body)
	}
	b.seal(exit)
	b.cur = exit
}

func (b *builder) forStmt(s *cc.For) {
	b.pushScope()
	defer b.popScope()
	if s.Init != nil {
		b.stmt(s.Init)
	}
	header := b.fn.NewBlock()
	body := b.fn.NewBlock()
	post := b.fn.NewBlock()
	exit := b.fn.NewBlock()
	b.branch(header, s.Position())

	b.cur = header // unsealed: back edge from post
	if s.Cond != nil {
		cond := b.asBool(b.expr(s.Cond))
		b.condBranch(cond, body, exit, s.Position(), macroOriginOf(s.Cond))
	} else {
		b.branch(body, s.Position())
	}
	b.seal(body)

	b.breakTargets = append(b.breakTargets, exit)
	b.continueTargets = append(b.continueTargets, post)
	b.cur = body
	b.stmt(s.Body)
	b.branch(post, s.Position())
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]

	b.seal(post)
	b.cur = post
	if s.Post != nil {
		b.expr(s.Post)
	}
	b.branch(header, s.Position())
	b.seal(header)
	b.seal(exit)
	b.cur = exit
}

func macroOriginOf(e cc.Expr) string {
	type origined interface{ MacroOrigin() string }
	if o, ok := e.(origined); ok {
		return o.MacroOrigin()
	}
	return ""
}

// --- expressions ------------------------------------------------------------------

// expr lowers e and returns its value (width = e's C type width; for
// comparisons and logical operators, width 1, to be coerced by
// consumers that need an int).
func (b *builder) expr(e cc.Expr) *Value {
	switch e := e.(type) {
	case *cc.IntLit:
		return b.emitAt(e, &Value{Op: OpConst, Width: e.ExprType().BitWidth(), Aux: e.Value})
	case *cc.StrLit:
		return b.emitAt(e, &Value{Op: OpString, Width: cc.PointerWidth, AuxName: e.Value})
	case *cc.Ident:
		return b.identValue(e)
	case *cc.Unary:
		return b.unary(e)
	case *cc.Postfix:
		old, _ := b.loadLvalue(e.X)
		one := b.konst(1, old.Width)
		op := OpAdd
		if e.Op == "--" {
			op = OpSub
		}
		t := e.X.ExprType()
		var updated *Value
		if t.IsPointer() {
			off := b.konst(int64(t.Elem.SizeBytes()), cc.PointerWidth)
			if e.Op == "--" {
				off = b.emitAt(e, &Value{Op: OpNeg, Width: cc.PointerWidth, Args: []*Value{off}})
			}
			updated = b.emitAt(e, &Value{Op: OpPtrAdd, Width: cc.PointerWidth, Args: []*Value{old, off}})
		} else {
			updated = b.emitAt(e, &Value{Op: op, Width: old.Width, Signed: t.IsInteger() && t.Signed, Args: []*Value{old, one}})
		}
		b.storeLvalue(e.X, updated)
		return old
	case *cc.Binary:
		return b.binary(e)
	case *cc.Assign:
		return b.assign(e)
	case *cc.Cond:
		return b.condExpr(e)
	case *cc.Call:
		return b.call(e)
	case *cc.Index, *cc.Member:
		v, _ := b.loadLvalue(e)
		return v
	case *cc.Cast:
		x := b.expr(e.X)
		return b.coerce(x, e.X.ExprType(), e.To)
	case *cc.SizeofExpr:
		t := e.OfType
		if t == nil {
			t = e.X.ExprType()
		}
		return b.emitAt(e, &Value{Op: OpConst, Width: 64, Aux: int64(t.SizeBytes())})
	}
	b.failf(e.Position(), "ir: unsupported expression %T", e)
	return nil
}

func (b *builder) emitAt(e cc.Expr, v *Value) *Value {
	v.Pos = e.Position()
	v.Origin = macroOriginOf(e)
	return b.emitVal(v)
}

func (b *builder) emitVal(v *Value) *Value {
	v = b.val(v)
	b.cur.Instrs = append(b.cur.Instrs, v)
	return v
}

func (b *builder) identValue(e *cc.Ident) *Value {
	if e.Name == "NULL" {
		if _, ok := b.resolveVar("NULL"); !ok {
			return b.emitAt(e, &Value{Op: OpConst, Width: cc.PointerWidth, Aux: 0})
		}
	}
	if key, ok := b.resolveVar(e.Name); ok {
		if addr, isMem := b.memVars[key]; isMem {
			t := b.varTypes[key]
			if t.Kind == cc.TypeArray {
				return addr // arrays decay to their address
			}
			if t.Kind == cc.TypeStruct {
				return addr
			}
			return b.emitAt(e, &Value{Op: OpLoad, Width: t.BitWidth(), Args: []*Value{addr}})
		}
		return b.readVar(key, b.cur)
	}
	// Global variable.
	for _, g := range b.file.Vars {
		if g.Name == e.Name {
			addr := b.emitAt(e, &Value{Op: OpGlobal, Width: cc.PointerWidth, AuxName: e.Name})
			if g.Type.Kind == cc.TypeArray || g.Type.Kind == cc.TypeStruct {
				return addr
			}
			return b.emitAt(e, &Value{Op: OpLoad, Width: g.Type.BitWidth(), Args: []*Value{addr}})
		}
	}
	b.failf(e.Position(), "ir: unresolved identifier %q", e.Name)
	return nil
}

func (b *builder) unary(e *cc.Unary) *Value {
	switch e.Op {
	case "-":
		x := b.expr(e.X)
		x = b.coerce(x, e.X.ExprType(), e.ExprType())
		t := e.ExprType()
		return b.emitAt(e, &Value{Op: OpNeg, Width: x.Width, Signed: t.IsInteger() && t.Signed, Args: []*Value{x}})
	case "+":
		x := b.expr(e.X)
		return b.coerce(x, e.X.ExprType(), e.ExprType())
	case "~":
		x := b.expr(e.X)
		x = b.coerce(x, e.X.ExprType(), e.ExprType())
		return b.emitAt(e, &Value{Op: OpNot, Width: x.Width, Args: []*Value{x}})
	case "!":
		x := b.asBool(b.expr(e.X))
		zero := b.konst(0, 1)
		return b.emitAt(e, &Value{Op: OpICmp, Width: 1, Aux: int64(CmpEq), Args: []*Value{x, zero}})
	case "*":
		addr := b.expr(e.X)
		t := e.ExprType()
		if !t.IsScalar() {
			return addr // *p on aggregate: address
		}
		return b.emitAt(e, &Value{Op: OpLoad, Width: t.BitWidth(), Args: []*Value{addr}})
	case "&":
		addr, ok := b.addressOf(e.X)
		if !ok {
			b.failf(e.Position(), "ir: cannot take address of %T", e.X)
		}
		return addr
	case "++", "--":
		old, _ := b.loadLvalue(e.X)
		t := e.X.ExprType()
		var updated *Value
		if t.IsPointer() {
			off := b.konst(int64(t.Elem.SizeBytes()), cc.PointerWidth)
			if e.Op == "--" {
				off = b.emitAt(e, &Value{Op: OpNeg, Width: cc.PointerWidth, Args: []*Value{off}})
			}
			updated = b.emitAt(e, &Value{Op: OpPtrAdd, Width: cc.PointerWidth, Args: []*Value{old, off}})
		} else {
			one := b.konst(1, old.Width)
			op := OpAdd
			if e.Op == "--" {
				op = OpSub
			}
			updated = b.emitAt(e, &Value{Op: op, Width: old.Width, Signed: t.IsInteger() && t.Signed, Args: []*Value{old, one}})
		}
		b.storeLvalue(e.X, updated)
		return updated
	}
	b.failf(e.Position(), "ir: unsupported unary %q", e.Op)
	return nil
}

// addressOf lowers &x; for SSA variables this demotes the variable to
// a memory variable for the rest of the function (a simplification:
// prior SSA uses keep their values, which preserves the analysis
// semantics for the corpus, where & appears before other uses).
func (b *builder) addressOf(e cc.Expr) (*Value, bool) {
	switch e := e.(type) {
	case *cc.Ident:
		key, ok := b.resolveVar(e.Name)
		if !ok {
			// Global.
			for _, g := range b.file.Vars {
				if g.Name == e.Name {
					return b.emitAt(e, &Value{Op: OpGlobal, Width: cc.PointerWidth, AuxName: e.Name}), true
				}
			}
			return nil, false
		}
		addr, isMem := b.memVars[key]
		if !isMem {
			addr = b.emitAt(e, &Value{Op: OpUnknown, Width: cc.PointerWidth, AuxName: "addrof." + key})
			b.memVars[key] = addr
			// Flush the current SSA value into memory so later loads
			// observe it.
			if cur, ok := b.defs[b.cur][key]; ok {
				b.emitAt(e, &Value{Op: OpStore, Args: []*Value{addr, cur}})
			}
		}
		return addr, true
	case *cc.Unary:
		if e.Op == "*" {
			return b.expr(e.X), true
		}
	case *cc.Index:
		return b.indexAddr(e), true
	case *cc.Member:
		return b.memberAddr(e), true
	}
	return nil, false
}

func (b *builder) indexAddr(e *cc.Index) *Value {
	base := b.expr(e.X)
	idx := b.expr(e.I)
	idx = b.coerce(idx, e.I.ExprType(), widthType(cc.PointerWidth, e.I.ExprType().IsInteger() && e.I.ExprType().Signed))
	xt := e.X.ExprType()
	var elem *cc.Type
	arrLen := int64(0)
	switch xt.Kind {
	case cc.TypeArray:
		elem = xt.Elem
		arrLen = int64(xt.ArrayLen)
	case cc.TypePointer:
		elem = xt.Elem
	default:
		b.failf(e.Position(), "ir: indexing %v", xt)
	}
	return b.emitAt(e, &Value{
		Op: OpIndexAddr, Width: cc.PointerWidth,
		Args: []*Value{base, idx},
		Aux:  int64(elem.SizeBytes()), Aux2: arrLen,
	})
}

func (b *builder) memberAddr(e *cc.Member) *Value {
	var base *Value
	var st *cc.Type
	if e.Arrow {
		base = b.expr(e.X)
		st = e.X.ExprType().Elem
	} else {
		a, ok := b.addressOf(e.X)
		if !ok {
			// rvalue struct (e.g. returned): base is its address value
			base = b.expr(e.X)
		} else {
			base = a
		}
		st = e.X.ExprType()
	}
	off, _, ok := st.FieldOffset(e.Field)
	if !ok {
		b.failf(e.Position(), "ir: no field %q", e.Field)
	}
	offV := b.konst(int64(off), cc.PointerWidth)
	return b.emitAt(e, &Value{Op: OpPtrAdd, Width: cc.PointerWidth, Args: []*Value{base, offV}})
}

// loadLvalue returns the current value of an lvalue and a token for
// storeLvalue.
func (b *builder) loadLvalue(e cc.Expr) (*Value, *cc.Type) {
	t := e.ExprType()
	switch e := e.(type) {
	case *cc.Ident:
		return b.identValue(e), t
	case *cc.Unary:
		if e.Op == "*" {
			addr := b.expr(e.X)
			return b.emitAt(e, &Value{Op: OpLoad, Width: t.BitWidth(), Args: []*Value{addr}}), t
		}
	case *cc.Index:
		addr := b.indexAddr(e)
		if !t.IsScalar() {
			return addr, t
		}
		return b.emitAt(e, &Value{Op: OpLoad, Width: t.BitWidth(), Args: []*Value{addr}}), t
	case *cc.Member:
		addr := b.memberAddr(e)
		if !t.IsScalar() {
			return addr, t
		}
		return b.emitAt(e, &Value{Op: OpLoad, Width: t.BitWidth(), Args: []*Value{addr}}), t
	case *cc.Cast:
		v, _ := b.loadLvalue(e.X)
		return b.coerce(v, e.X.ExprType(), e.To), t
	}
	b.failf(e.Position(), "ir: not an lvalue: %T", e)
	return nil, nil
}

func (b *builder) storeLvalue(e cc.Expr, v *Value) {
	switch e := e.(type) {
	case *cc.Ident:
		key, ok := b.resolveVar(e.Name)
		if ok {
			if addr, isMem := b.memVars[key]; isMem {
				b.emitAt(e, &Value{Op: OpStore, Args: []*Value{addr, v}})
				return
			}
			b.writeVar(key, b.cur, v)
			return
		}
		for _, g := range b.file.Vars {
			if g.Name == e.Name {
				addr := b.emitAt(e, &Value{Op: OpGlobal, Width: cc.PointerWidth, AuxName: e.Name})
				b.emitAt(e, &Value{Op: OpStore, Args: []*Value{addr, v}})
				return
			}
		}
		b.failf(e.Position(), "ir: unresolved store target %q", e.Name)
	case *cc.Unary:
		if e.Op == "*" {
			addr := b.expr(e.X)
			b.emitAt(e, &Value{Op: OpStore, Args: []*Value{addr, v}})
			return
		}
		b.failf(e.Position(), "ir: bad store target")
	case *cc.Index:
		addr := b.indexAddr(e)
		b.emitAt(e, &Value{Op: OpStore, Args: []*Value{addr, v}})
	case *cc.Member:
		addr := b.memberAddr(e)
		b.emitAt(e, &Value{Op: OpStore, Args: []*Value{addr, v}})
	case *cc.Cast:
		b.storeLvalue(e.X, v)
	default:
		b.failf(e.Position(), "ir: bad store target %T", e)
	}
}

func (b *builder) assign(e *cc.Assign) *Value {
	if e.Op == "" {
		v := b.expr(e.Y)
		v = b.coerce(v, e.Y.ExprType(), e.X.ExprType())
		b.storeLvalue(e.X, v)
		return v
	}
	// Compound assignment: x op= y.
	old, _ := b.loadLvalue(e.X)
	y := b.expr(e.Y)
	xt, yt := e.X.ExprType(), e.Y.ExprType()
	var v *Value
	if xt.IsPointer() {
		v = b.pointerArith(e, e.Op, old, y, xt, yt)
	} else {
		common := cc.UsualArithmeticConversions(xt, yt)
		lx := b.coerce(old, xt, common)
		ly := b.coerce(y, yt, common)
		if e.Op == "<<" || e.Op == ">>" {
			common = cc.Promote(xt)
			lx = b.coerce(old, xt, common)
			ly = b.coerce(y, yt, cc.Promote(yt))
		}
		v = b.arith(e, e.Op, lx, ly, common)
	}
	v = b.coerce(v, nil, xt)
	b.storeLvalue(e.X, v)
	return v
}

func (b *builder) condExpr(e *cc.Cond) *Value {
	thenB := b.fn.NewBlock()
	elseB := b.fn.NewBlock()
	exitB := b.fn.NewBlock()
	c := b.asBool(b.expr(e.C))
	b.condBranch(c, thenB, elseB, e.Position(), macroOriginOf(e))
	b.seal(thenB)
	b.seal(elseB)
	t := e.ExprType()

	b.cur = thenB
	x := b.expr(e.X)
	x = b.coerce(x, e.X.ExprType(), t)
	thenOut := b.cur
	b.branch(exitB, e.Position())

	b.cur = elseB
	y := b.expr(e.Y)
	y = b.coerce(y, e.Y.ExprType(), t)
	b.branch(exitB, e.Position())

	b.seal(exitB)
	b.cur = exitB
	w := 64
	if t.IsScalar() {
		w = t.BitWidth()
	}
	phi := b.val(&Value{Op: OpPhi, Width: w, Pos: e.Position(), Origin: macroOriginOf(e)})
	// Operand order must match exitB.Preds.
	for _, p := range exitB.Preds {
		if p == thenOut {
			phi.Args = append(phi.Args, x)
		} else {
			phi.Args = append(phi.Args, y)
		}
	}
	exitB.Instrs = append([]*Value{phi}, exitB.Instrs...)
	return phi
}

func (b *builder) binary(e *cc.Binary) *Value {
	switch e.Op {
	case ",":
		b.expr(e.X)
		return b.expr(e.Y)
	case "&&", "||":
		return b.shortCircuit(e)
	}
	xt, yt := e.X.ExprType(), e.Y.ExprType()
	x := b.expr(e.X)
	y := b.expr(e.Y)

	// Pointer arithmetic and comparisons.
	if xt.IsPointer() || yt.IsPointer() || xt.Kind == cc.TypeArray || yt.Kind == cc.TypeArray {
		return b.pointerBinary(e, x, y)
	}

	switch e.Op {
	case "==", "!=", "<", ">", "<=", ">=":
		common := cc.UsualArithmeticConversions(xt, yt)
		lx := b.coerce(x, xt, common)
		ly := b.coerce(y, yt, common)
		return b.icmp(e, e.Op, lx, ly, common.Signed)
	case "<<", ">>":
		lt := cc.Promote(xt)
		lx := b.coerce(x, xt, lt)
		ly := b.coerce(y, yt, cc.Promote(yt))
		// Shift amount coerced to the left operand's width for the IR.
		ly = b.coerce(ly, cc.Promote(yt), lt)
		op := OpShl
		if e.Op == ">>" {
			if lt.Signed {
				op = OpAShr
			} else {
				op = OpLShr
			}
		}
		return b.emitAt(e, &Value{Op: op, Width: lx.Width, Signed: lt.Signed, Args: []*Value{lx, ly}})
	default:
		common := cc.UsualArithmeticConversions(xt, yt)
		lx := b.coerce(x, xt, common)
		ly := b.coerce(y, yt, common)
		return b.arith(e, e.Op, lx, ly, common)
	}
}

func (b *builder) arith(e cc.Expr, op string, x, y *Value, t *cc.Type) *Value {
	signed := t.IsInteger() && t.Signed
	var o Op
	switch op {
	case "+":
		o = OpAdd
	case "-":
		o = OpSub
	case "*":
		o = OpMul
	case "/":
		if signed {
			o = OpSDiv
		} else {
			o = OpUDiv
		}
	case "%":
		if signed {
			o = OpSRem
		} else {
			o = OpURem
		}
	case "&":
		o = OpAnd
	case "|":
		o = OpOr
	case "^":
		o = OpXor
	case "<<":
		o = OpShl
	case ">>":
		if signed {
			o = OpAShr
		} else {
			o = OpLShr
		}
	default:
		b.failf(e.Position(), "ir: unsupported arithmetic %q", op)
	}
	return b.emitAt(e, &Value{Op: o, Width: x.Width, Signed: signed, Args: []*Value{x, y}})
}

func (b *builder) icmp(e cc.Expr, op string, x, y *Value, signed bool) *Value {
	var pred Cmp
	swap := false
	switch op {
	case "==":
		pred = CmpEq
	case "!=":
		pred = CmpNe
	case "<":
		pred = CmpSLT
	case "<=":
		pred = CmpSLE
	case ">":
		pred, swap = CmpSLT, true
	case ">=":
		pred, swap = CmpSLE, true
	}
	if !signed {
		switch pred {
		case CmpSLT:
			pred = CmpULT
		case CmpSLE:
			pred = CmpULE
		}
	}
	if swap {
		x, y = y, x
	}
	return b.emitAt(e, &Value{Op: OpICmp, Width: 1, Aux: int64(pred), Args: []*Value{x, y}})
}

// pointerBinary lowers +, -, and comparisons involving pointers.
func (b *builder) pointerBinary(e *cc.Binary, x, y *Value) *Value {
	xt, yt := e.X.ExprType(), e.Y.ExprType()
	switch e.Op {
	case "+", "-":
		if xt.IsPointer() || xt.Kind == cc.TypeArray {
			if yt.IsPointer() || yt.Kind == cc.TypeArray {
				// pointer - pointer
				diff := b.emitAt(e, &Value{Op: OpSub, Width: cc.PointerWidth, Args: []*Value{x, y}})
				size := int64(elemType(xt).SizeBytes())
				if size > 1 {
					sz := b.konst(size, cc.PointerWidth)
					return b.emitAt(e, &Value{Op: OpSDiv, Width: cc.PointerWidth, Args: []*Value{diff, sz}})
				}
				return diff
			}
			return b.pointerArith(e, e.Op, x, y, xt, yt)
		}
		// int + pointer
		return b.pointerArith(e, e.Op, y, x, yt, xt)
	case "==", "!=", "<", ">", "<=", ">=":
		// Pointer comparisons are unsigned on addresses.
		lx := b.coerce(x, xt, widthType(cc.PointerWidth, false))
		ly := b.coerce(y, yt, widthType(cc.PointerWidth, false))
		return b.icmp(e, e.Op, lx, ly, false)
	}
	b.failf(e.Position(), "ir: unsupported pointer operation %q", e.Op)
	return nil
}

func elemType(t *cc.Type) *cc.Type {
	if t.Elem != nil {
		return t.Elem
	}
	return cc.Char
}

// pointerArith emits ptr ± idx*size as OpPtrAdd, which carries the
// pointer-overflow UB condition.
func (b *builder) pointerArith(e cc.Expr, op string, ptr, idx *Value, pt, it *cc.Type) *Value {
	signedIdx := it.IsInteger() && it.Signed
	off := b.coerce(idx, it, widthType(cc.PointerWidth, signedIdx))
	size := int64(elemType(pt).SizeBytes())
	if size > 1 {
		sz := b.konst(size, cc.PointerWidth)
		off = b.emitAt(e, &Value{Op: OpMul, Width: cc.PointerWidth, Args: []*Value{off, sz}})
	}
	if op == "-" {
		off = b.emitAt(e, &Value{Op: OpNeg, Width: cc.PointerWidth, Args: []*Value{off}})
	}
	return b.emitAt(e, &Value{Op: OpPtrAdd, Width: cc.PointerWidth, Args: []*Value{ptr, off}})
}

// shortCircuit lowers && and || with control flow so each operand gets
// its own reachability condition — exactly what STACK's per-fragment
// analysis needs for chained sanity checks (e.g. paper Fig. 12).
func (b *builder) shortCircuit(e *cc.Binary) *Value {
	rhsB := b.fn.NewBlock()
	exitB := b.fn.NewBlock()
	x := b.asBool(b.expr(e.X))
	lhsOut := b.cur
	if e.Op == "&&" {
		b.condBranch(x, rhsB, exitB, e.Position(), macroOriginOf(e))
	} else {
		b.condBranch(x, exitB, rhsB, e.Position(), macroOriginOf(e))
	}
	b.seal(rhsB)
	b.cur = rhsB
	y := b.asBool(b.expr(e.Y))
	b.branch(exitB, e.Position())
	b.seal(exitB)
	b.cur = exitB
	phi := b.val(&Value{Op: OpPhi, Width: 1, Pos: e.Position(), Origin: macroOriginOf(e)})
	short := int64(0)
	if e.Op == "||" {
		short = 1
	}
	for _, p := range exitB.Preds {
		if p == lhsOut {
			c := b.val(&Value{Op: OpConst, Width: 1, Aux: short})
			exitB.Instrs = append(exitB.Instrs, c)
			phi.Args = append(phi.Args, c)
		} else {
			phi.Args = append(phi.Args, y)
		}
	}
	exitB.Instrs = append([]*Value{phi}, exitB.Instrs...)
	return phi
}

func (b *builder) call(e *cc.Call) *Value {
	var args []*Value
	for _, a := range e.Args {
		v := b.expr(a)
		// Scalars pass as-is; aggregates pass their address.
		args = append(args, v)
	}
	t := e.ExprType()
	w := 0
	if t.IsScalar() {
		w = t.BitWidth()
	}
	return b.emitAt(e, &Value{Op: OpCall, Width: w, AuxName: e.Func, Args: args})
}
