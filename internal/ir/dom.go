package ir

// Dominator-tree computation using the Cooper–Harvey–Kennedy iterative
// algorithm over a reverse postorder. STACK restricts the well-defined
// program assumption for a fragment e to e's dominators (paper §4.4,
// eq. 5/6), so this analysis is on the checker's hot path.

// DomTree holds immediate dominators and derived queries for one Func.
type DomTree struct {
	fn       *Func
	idom     map[*Block]*Block
	rpo      []*Block
	rpoIndex map[*Block]int
}

// ComputeDom returns the dominator tree of f. Blocks unreachable from
// the entry must have been removed first.
func ComputeDom(f *Func) *DomTree {
	d := &DomTree{
		fn:       f,
		idom:     make(map[*Block]*Block, len(f.Blocks)),
		rpoIndex: make(map[*Block]int, len(f.Blocks)),
	}
	d.rpo = ReversePostorder(f)
	for i, b := range d.rpo {
		d.rpoIndex[b] = i
	}
	if len(d.rpo) == 0 {
		return d
	}
	entry := d.rpo[0]
	d.idom[entry] = entry
	for changed := true; changed; {
		changed = false
		for _, b := range d.rpo[1:] {
			var newIdom *Block
			for _, p := range b.Preds {
				if d.idom[p] == nil {
					continue // not yet processed
				}
				if newIdom == nil {
					newIdom = p
					continue
				}
				newIdom = d.intersect(p, newIdom)
			}
			if newIdom != nil && d.idom[b] != newIdom {
				d.idom[b] = newIdom
				changed = true
			}
		}
	}
	return d
}

func (d *DomTree) intersect(a, b *Block) *Block {
	for a != b {
		for d.rpoIndex[a] > d.rpoIndex[b] {
			a = d.idom[a]
		}
		for d.rpoIndex[b] > d.rpoIndex[a] {
			b = d.idom[b]
		}
	}
	return a
}

// IDom returns the immediate dominator of b (the entry dominates
// itself).
func (d *DomTree) IDom(b *Block) *Block { return d.idom[b] }

// Dominates reports whether a dominates b (reflexive).
func (d *DomTree) Dominates(a, b *Block) bool {
	for {
		if a == b {
			return true
		}
		parent := d.idom[b]
		if parent == nil || parent == b {
			return false
		}
		b = parent
	}
}

// Dominators returns b's dominators from entry down to b itself.
func (d *DomTree) Dominators(b *Block) []*Block {
	var rev []*Block
	for {
		rev = append(rev, b)
		parent := d.idom[b]
		if parent == nil || parent == b {
			break
		}
		b = parent
	}
	out := make([]*Block, len(rev))
	for i, blk := range rev {
		out[len(rev)-1-i] = blk
	}
	return out
}

// ReversePostorder returns f's blocks in reverse postorder of a DFS
// from the entry.
func ReversePostorder(f *Func) []*Block {
	var order []*Block
	seen := make(map[*Block]bool, len(f.Blocks))
	var dfs func(*Block)
	dfs = func(b *Block) {
		seen[b] = true
		for _, s := range b.Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	if f.Entry != nil {
		dfs(f.Entry)
	}
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// BackEdges returns the set of CFG edges (from, to) where to is an
// ancestor of from in the DFS tree — loop back edges. STACK's
// intra-function reachability analysis widens values that flow along
// these edges (DESIGN.md: approximations).
func BackEdges(f *Func) map[[2]*Block]bool {
	back := map[[2]*Block]bool{}
	state := map[*Block]int{} // 0 unvisited, 1 on stack, 2 done
	var dfs func(*Block)
	dfs = func(b *Block) {
		state[b] = 1
		for _, s := range b.Succs {
			switch state[s] {
			case 0:
				dfs(s)
			case 1:
				back[[2]*Block{b, s}] = true
			}
		}
		state[b] = 2
	}
	if f.Entry != nil {
		dfs(f.Entry)
	}
	return back
}
