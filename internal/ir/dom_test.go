package ir

import (
	"sort"
	"testing"
)

// link wires a CFG edge, keeping Preds and Succs consistent.
func link(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// cfg builds a Func with n blocks and the given edges (by index);
// block 0 is the entry.
func cfg(t *testing.T, n int, edges [][2]int) (*Func, []*Block) {
	t.Helper()
	f := &Func{Name: "t"}
	blocks := make([]*Block, n)
	for i := range blocks {
		blocks[i] = f.NewBlock()
	}
	f.Entry = blocks[0]
	for _, e := range edges {
		link(blocks[e[0]], blocks[e[1]])
	}
	return f, blocks
}

func frontierIDs(df map[*Block][]*Block, b *Block) []int {
	var ids []int
	for _, w := range df[b] {
		ids = append(ids, w.ID)
	}
	sort.Ints(ids)
	return ids
}

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDomDiamond: the classic if/else diamond.
//
//	0 → 1, 0 → 2, 1 → 3, 2 → 3
func TestDomDiamond(t *testing.T) {
	f, b := cfg(t, 4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	d := ComputeDom(f)

	wantIdom := map[int]int{0: 0, 1: 0, 2: 0, 3: 0}
	for id, want := range wantIdom {
		if got := d.IDom(b[id]); got != b[want] {
			t.Errorf("idom(b%d) = %v, want b%d", id, got, want)
		}
	}
	if !d.Dominates(b[0], b[3]) {
		t.Error("entry must dominate the join")
	}
	if d.Dominates(b[1], b[3]) || d.Dominates(b[2], b[3]) {
		t.Error("neither arm dominates the join")
	}
	if doms := d.Dominators(b[3]); len(doms) != 2 || doms[0] != b[0] || doms[1] != b[3] {
		t.Errorf("Dominators(b3) = %v, want [b0 b3]", doms)
	}

	df := d.DominanceFrontier()
	if got := frontierIDs(df, b[1]); !eqInts(got, []int{3}) {
		t.Errorf("DF(b1) = %v, want [3]", got)
	}
	if got := frontierIDs(df, b[2]); !eqInts(got, []int{3}) {
		t.Errorf("DF(b2) = %v, want [3]", got)
	}
	if got := frontierIDs(df, b[0]); len(got) != 0 {
		t.Errorf("DF(b0) = %v, want empty (entry dominates the join)", got)
	}
	if got := frontierIDs(df, b[3]); len(got) != 0 {
		t.Errorf("DF(b3) = %v, want empty", got)
	}
	if be := BackEdges(f); len(be) != 0 {
		t.Errorf("diamond has no back edges, got %v", be)
	}
}

// TestDomLoop: a while loop with a header, body, and exit.
//
//	0 → 1 (header), 1 → 2 (body), 2 → 1 (back edge), 1 → 3 (exit)
func TestDomLoop(t *testing.T) {
	f, b := cfg(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 1}, {1, 3}})
	d := ComputeDom(f)

	wantIdom := map[int]int{1: 0, 2: 1, 3: 1}
	for id, want := range wantIdom {
		if got := d.IDom(b[id]); got != b[want] {
			t.Errorf("idom(b%d) = %v, want b%d", id, got, want)
		}
	}
	if !d.Dominates(b[1], b[2]) || !d.Dominates(b[1], b[3]) {
		t.Error("the header dominates the body and the exit")
	}
	if d.Dominates(b[2], b[3]) {
		t.Error("the body does not dominate the exit")
	}

	df := d.DominanceFrontier()
	// The body's frontier is the header (it feeds the back edge); the
	// header is in its own frontier, which is what places loop phis.
	if got := frontierIDs(df, b[2]); !eqInts(got, []int{1}) {
		t.Errorf("DF(b2) = %v, want [1]", got)
	}
	if got := frontierIDs(df, b[1]); !eqInts(got, []int{1}) {
		t.Errorf("DF(b1) = %v, want [1] (loop header is in its own frontier)", got)
	}

	be := BackEdges(f)
	if len(be) != 1 || !be[[2]*Block{b[2], b[1]}] {
		t.Errorf("BackEdges = %v, want exactly {b2→b1}", be)
	}
}

// TestDomIrreducible: a loop with two entries — the canonical
// irreducible CFG. Neither loop block dominates the other, so both
// idoms collapse to the branch block.
//
//	0 → 1, 0 → 2, 1 → 2, 2 → 1, 1 → 3
func TestDomIrreducible(t *testing.T) {
	f, b := cfg(t, 4, [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 1}, {1, 3}})
	d := ComputeDom(f)

	wantIdom := map[int]int{1: 0, 2: 0, 3: 1}
	for id, want := range wantIdom {
		if got := d.IDom(b[id]); got != b[want] {
			t.Errorf("idom(b%d) = %v, want b%d", id, got, want)
		}
	}
	if d.Dominates(b[1], b[2]) || d.Dominates(b[2], b[1]) {
		t.Error("neither entry of an irreducible loop dominates the other")
	}

	df := d.DominanceFrontier()
	// Each loop block is in the other's frontier (it feeds the other's
	// merge), but neither is in its own: a block's predecessors here are
	// never dominated by the block itself.
	if got := frontierIDs(df, b[1]); !eqInts(got, []int{2}) {
		t.Errorf("DF(b1) = %v, want [2]", got)
	}
	if got := frontierIDs(df, b[2]); !eqInts(got, []int{1}) {
		t.Errorf("DF(b2) = %v, want [1]", got)
	}
}

// TestDomLinear: a straight-line chain has trivial dominators and
// empty frontiers.
func TestDomLinear(t *testing.T) {
	f, b := cfg(t, 3, [][2]int{{0, 1}, {1, 2}})
	d := ComputeDom(f)
	if d.IDom(b[2]) != b[1] || d.IDom(b[1]) != b[0] {
		t.Error("chain idoms must follow the chain")
	}
	if df := d.DominanceFrontier(); len(df) != 0 {
		t.Errorf("chain has no merge points, DF = %v", df)
	}
	rpo := ReversePostorder(f)
	if len(rpo) != 3 || rpo[0] != b[0] || rpo[2] != b[2] {
		t.Errorf("ReversePostorder = %v", rpo)
	}
}

// TestDomNestedLoops: an outer loop containing an inner loop; the
// inner header's frontier reaches both headers.
//
//	0 → 1 (outer header), 1 → 2 (inner header), 2 → 2 (self loop),
//	2 → 1 (outer back edge), 1 → 3 (exit)
func TestDomNestedLoops(t *testing.T) {
	f, b := cfg(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 2}, {2, 1}, {1, 3}})
	d := ComputeDom(f)
	if d.IDom(b[2]) != b[1] {
		t.Errorf("idom(b2) = %v, want b1", d.IDom(b[2]))
	}
	df := d.DominanceFrontier()
	if got := frontierIDs(df, b[2]); !eqInts(got, []int{1, 2}) {
		t.Errorf("DF(b2) = %v, want [1 2] (both loop headers)", got)
	}
	be := BackEdges(f)
	if len(be) != 2 || !be[[2]*Block{b[2], b[2]}] || !be[[2]*Block{b[2], b[1]}] {
		t.Errorf("BackEdges = %v, want {b2→b2, b2→b1}", be)
	}
}
