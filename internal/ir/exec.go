package ir

import (
	"errors"
	"fmt"
)

// This file implements a concrete evaluator for the C* dialect of the
// paper (§3.1): flat address space, null at address zero, wrap-around
// pointer and integer arithmetic. Division and shift follow the
// selected hardware architecture, which is exactly the distinction the
// paper draws in §2.1 (IDIV traps on x86 but wraps silently via lldiv
// on x86-32; shifts mask differently on x86/ARM/PowerPC). Tests use it
// to demonstrate the end-to-end consequences of unstable code, e.g.
// the Postgres −2⁶³/−1 crash (paper Fig. 10).

// Arch selects hardware behavior for division and shifts.
type Arch int

// Architectures distinguished by the paper's §2.1 survey.
const (
	ArchX86 Arch = iota // IDIV traps; shift amount masked to width bits
	ArchARM             // division yields 0; shifts ≥ width yield 0
	ArchPPC             // division undefined-but-silent; shift masked wider
)

func (a Arch) String() string {
	switch a {
	case ArchX86:
		return "x86"
	case ArchARM:
		return "arm"
	default:
		return "powerpc"
	}
}

// Trap is a hardware trap raised during evaluation (e.g. x86 IDIV on
// overflow or divide-by-zero).
type Trap struct{ Msg string }

func (t *Trap) Error() string { return "trap: " + t.Msg }

// ErrSteps is returned when evaluation exceeds the step budget —
// how the tests detect the paper's infinite-loop bugs (Fig. 13).
var ErrSteps = errors.New("ir: step budget exhausted (possible infinite loop)")

// ExecOptions configures evaluation.
type ExecOptions struct {
	Arch     Arch
	MaxSteps int // 0 = default 1,000,000
	// Globals provides initial scalar values for OpGlobal loads.
	Globals map[string]uint64
	// Calls intercepts external calls: fn(args) -> result.
	Calls map[string]func(args []uint64) uint64
	// Program, when set, resolves calls to other functions defined in
	// the same translation unit (executed in the same memory).
	Program *Program
}

// ExecResult is the outcome of running a function.
type ExecResult struct {
	Ret      uint64
	Returned bool // false for void return
	Steps    int
}

type machine struct {
	opts   ExecOptions
	mem    map[uint64]byte
	vals   map[*Value]uint64
	heap   uint64
	steps  int
	max    int
	global map[string]uint64 // name -> address
}

// Exec runs f with the given arguments under C* semantics.
func Exec(f *Func, args []uint64, opts ExecOptions) (ExecResult, error) {
	m := &machine{
		opts:   opts,
		mem:    make(map[uint64]byte),
		heap:   0x10000,
		max:    opts.MaxSteps,
		global: map[string]uint64{},
	}
	if m.max == 0 {
		m.max = 1_000_000
	}
	return m.run(f, args)
}

func maskW(v uint64, w int) uint64 {
	if w >= 64 {
		return v
	}
	return v & (1<<uint(w) - 1)
}

func signExt(v uint64, w int) int64 {
	if w >= 64 {
		return int64(v)
	}
	v = maskW(v, w)
	if v&(1<<uint(w-1)) != 0 {
		return int64(v | ^uint64(0)<<uint(w))
	}
	return int64(v)
}

func (m *machine) run(f *Func, args []uint64) (ExecResult, error) {
	m.vals = make(map[*Value]uint64)
	for i, p := range f.Params {
		if i < len(args) {
			m.vals[p] = maskW(args[i], p.Width)
		}
	}
	blk := f.Entry
	var prev *Block
	for {
		// Phis first, evaluated simultaneously from the incoming edge.
		// They are scanned by op, not as a positional prefix: SCCP
		// transmutes proven-constant phis to OpConst in place, so
		// constants may interleave the leading phi run.
		var phiVals []uint64
		var phis []*Value
		for _, v := range blk.Instrs {
			if v.Op != OpPhi {
				continue
			}
			phis = append(phis, v)
			idx := -1
			for i, p := range blk.Preds {
				if p == prev {
					idx = i
					break
				}
			}
			if idx < 0 || idx >= len(v.Args) || v.Args[idx] == nil {
				phiVals = append(phiVals, 0)
				continue
			}
			phiVals = append(phiVals, m.vals[v.Args[idx]])
		}
		for i, v := range phis {
			m.vals[v] = maskW(phiVals[i], v.Width)
		}
		for _, v := range blk.Instrs {
			if v.Op == OpPhi {
				continue // evaluated above
			}
			m.steps++
			if m.steps > m.max {
				return ExecResult{Steps: m.steps}, ErrSteps
			}
			if err := m.eval(v); err != nil {
				return ExecResult{Steps: m.steps}, err
			}
		}
		t := blk.Term
		m.steps++
		if m.steps > m.max {
			return ExecResult{Steps: m.steps}, ErrSteps
		}
		switch t.Op {
		case OpRet:
			if len(t.Args) > 0 {
				return ExecResult{Ret: m.vals[t.Args[0]], Returned: true, Steps: m.steps}, nil
			}
			return ExecResult{Steps: m.steps}, nil
		case OpBr:
			prev, blk = blk, blk.Succs[0]
		case OpCondBr:
			if m.vals[t.Args[0]] != 0 {
				prev, blk = blk, blk.Succs[0]
			} else {
				prev, blk = blk, blk.Succs[1]
			}
		case OpUnreachable:
			return ExecResult{Steps: m.steps}, &Trap{Msg: "unreachable executed"}
		default:
			return ExecResult{Steps: m.steps}, fmt.Errorf("ir: bad terminator %v", t.Op)
		}
	}
}

func (m *machine) eval(v *Value) error {
	arg := func(i int) uint64 { return m.vals[v.Args[i]] }
	w := v.Width
	switch v.Op {
	case OpConst:
		m.vals[v] = maskW(uint64(v.Aux), w)
	case OpParam:
		// Already set; missing args default to 0.
	case OpUnknown:
		if _, ok := m.vals[v]; !ok {
			// Abstract addresses get distinct heap slots.
			m.vals[v] = m.alloc(64)
		}
	case OpGlobal:
		addr, ok := m.global[v.AuxName]
		if !ok {
			addr = m.alloc(64)
			m.global[v.AuxName] = addr
			if init, ok := m.opts.Globals[v.AuxName]; ok {
				m.store(addr, init, 64)
			}
		}
		m.vals[v] = addr
	case OpString:
		addr := m.alloc(uint64(len(v.AuxName) + 1))
		for i := 0; i < len(v.AuxName); i++ {
			m.mem[addr+uint64(i)] = v.AuxName[i]
		}
		m.vals[v] = addr
	case OpAdd:
		m.vals[v] = maskW(arg(0)+arg(1), w)
	case OpSub:
		m.vals[v] = maskW(arg(0)-arg(1), w)
	case OpMul:
		m.vals[v] = maskW(arg(0)*arg(1), w)
	case OpUDiv, OpURem:
		x, y := maskW(arg(0), w), maskW(arg(1), w)
		if y == 0 {
			if m.opts.Arch == ArchX86 {
				return &Trap{Msg: "integer divide by zero"}
			}
			m.vals[v] = 0
			return nil
		}
		if v.Op == OpUDiv {
			m.vals[v] = maskW(x/y, w)
		} else {
			m.vals[v] = maskW(x%y, w)
		}
	case OpSDiv, OpSRem:
		x, y := signExt(arg(0), w), signExt(arg(1), w)
		if y == 0 {
			if m.opts.Arch == ArchX86 {
				return &Trap{Msg: "integer divide by zero"}
			}
			m.vals[v] = 0
			return nil
		}
		minVal := int64(-1) << uint(w-1)
		if x == minVal && y == -1 {
			// The paper's §6.2.1 case: IDIV traps on x86-64; other
			// architectures (and x86-32's lldiv) silently wrap.
			if m.opts.Arch == ArchX86 {
				return &Trap{Msg: "integer overflow in division"}
			}
			m.vals[v] = maskW(uint64(minVal), w)
			if v.Op == OpSRem {
				m.vals[v] = 0
			}
			return nil
		}
		if v.Op == OpSDiv {
			m.vals[v] = maskW(uint64(x/y), w)
		} else {
			m.vals[v] = maskW(uint64(x%y), w)
		}
	case OpNeg:
		m.vals[v] = maskW(-arg(0), w)
	case OpAnd:
		m.vals[v] = arg(0) & arg(1)
	case OpOr:
		m.vals[v] = arg(0) | arg(1)
	case OpXor:
		m.vals[v] = arg(0) ^ arg(1)
	case OpNot:
		m.vals[v] = maskW(^arg(0), w)
	case OpShl, OpLShr, OpAShr:
		m.vals[v] = m.shift(v, arg(0), arg(1))
	case OpICmp:
		x, y := arg(0), arg(1)
		xw := v.Args[0].Width
		var r bool
		switch v.Pred() {
		case CmpEq:
			r = maskW(x, xw) == maskW(y, xw)
		case CmpNe:
			r = maskW(x, xw) != maskW(y, xw)
		case CmpULT:
			r = maskW(x, xw) < maskW(y, xw)
		case CmpULE:
			r = maskW(x, xw) <= maskW(y, xw)
		case CmpSLT:
			r = signExt(x, xw) < signExt(y, xw)
		case CmpSLE:
			r = signExt(x, xw) <= signExt(y, xw)
		}
		if r {
			m.vals[v] = 1
		} else {
			m.vals[v] = 0
		}
	case OpZExt:
		m.vals[v] = maskW(arg(0), v.Args[0].Width)
	case OpSExt:
		m.vals[v] = maskW(uint64(signExt(arg(0), v.Args[0].Width)), w)
	case OpTrunc:
		m.vals[v] = maskW(arg(0), w)
	case OpSelect:
		if arg(0) != 0 {
			m.vals[v] = arg(1)
		} else {
			m.vals[v] = arg(2)
		}
	case OpPtrAdd:
		m.vals[v] = arg(0) + arg(1) // C*: wraparound pointer arithmetic
	case OpIndexAddr:
		m.vals[v] = arg(0) + arg(1)*uint64(v.Aux)
	case OpLoad:
		addr := arg(0)
		if addr == 0 {
			return &Trap{Msg: "null pointer dereference"}
		}
		m.vals[v] = m.load(addr, w)
	case OpStore:
		addr := arg(0)
		if addr == 0 {
			return &Trap{Msg: "null pointer dereference"}
		}
		m.store(addr, arg(1), v.Args[1].Width)
	case OpCall:
		return m.call(v)
	case OpPhi:
		// Handled at block entry.
	default:
		return fmt.Errorf("ir: exec: unsupported op %v", v.Op)
	}
	return nil
}

// shift implements the per-architecture shift semantics from §2.1.
func (m *machine) shift(v *Value, x, amtRaw uint64) uint64 {
	w := v.Width
	amt := maskW(amtRaw, v.Args[1].Width)
	var effective uint64
	oversized := false
	switch m.opts.Arch {
	case ArchX86:
		// Hardware masks the amount to log2(width) bits.
		if w <= 32 {
			effective = amt & 31
		} else {
			effective = amt & 63
		}
	case ArchARM:
		// Amount taken from the bottom byte; ≥ width yields 0/sign.
		effective = amt & 255
		if effective >= uint64(w) {
			oversized = true
		}
	case ArchPPC:
		// One extra amount bit: 32-bit shifts use 6 bits, 64-bit use 7.
		if w <= 32 {
			effective = amt & 63
		} else {
			effective = amt & 127
		}
		if effective >= uint64(w) {
			oversized = true
		}
	}
	if oversized {
		if v.Op == OpAShr && signExt(x, w) < 0 {
			return maskW(^uint64(0), w)
		}
		return 0
	}
	switch v.Op {
	case OpShl:
		return maskW(x<<effective, w)
	case OpLShr:
		return maskW(maskW(x, w)>>effective, w)
	default: // OpAShr
		return maskW(uint64(signExt(x, w)>>effective), w)
	}
}

func (m *machine) alloc(n uint64) uint64 {
	addr := m.heap
	m.heap += (n + 15) &^ 15
	return addr
}

func (m *machine) load(addr uint64, w int) uint64 {
	n := (w + 7) / 8
	var v uint64
	for i := 0; i < n; i++ {
		v |= uint64(m.mem[addr+uint64(i)]) << uint(8*i)
	}
	return maskW(v, w)
}

func (m *machine) store(addr, val uint64, w int) {
	n := (w + 7) / 8
	if n == 0 {
		n = 1
	}
	for i := 0; i < n; i++ {
		m.mem[addr+uint64(i)] = byte(val >> uint(8*i))
	}
}

func (m *machine) call(v *Value) error {
	if m.opts.Program != nil {
		if callee := m.opts.Program.Lookup(v.AuxName); callee != nil {
			args := make([]uint64, len(v.Args))
			for i, a := range v.Args {
				args[i] = m.vals[a]
			}
			saved := m.vals
			r, err := m.run(callee, args)
			m.vals = saved
			if err != nil {
				return err
			}
			m.vals[v] = maskW(r.Ret, v.Width)
			return nil
		}
	}
	if fn, ok := m.opts.Calls[v.AuxName]; ok {
		args := make([]uint64, len(v.Args))
		for i, a := range v.Args {
			args[i] = m.vals[a]
		}
		m.vals[v] = maskW(fn(args), v.Width)
		return nil
	}
	arg := func(i int) uint64 { return m.vals[v.Args[i]] }
	switch v.AuxName {
	case "abs", "labs":
		w := v.Width
		x := signExt(arg(0), w)
		if x < 0 {
			x = -x // INT_MIN wraps to itself in C*
		}
		m.vals[v] = maskW(uint64(x), w)
	case "malloc", "calloc":
		m.vals[v] = m.alloc(arg(0) + 16)
	case "free":
		// No-op under C*.
	case "realloc":
		n := arg(1)
		na := m.alloc(n + 16)
		for i := uint64(0); i < n; i++ {
			m.mem[na+i] = m.mem[arg(0)+i]
		}
		m.vals[v] = na
	case "memcpy", "memmove":
		dst, src, n := arg(0), arg(1), arg(2)
		for i := uint64(0); i < n; i++ {
			m.mem[dst+i] = m.mem[src+i]
		}
		m.vals[v] = dst
	case "memset":
		dst, c, n := arg(0), arg(1), arg(2)
		for i := uint64(0); i < n; i++ {
			m.mem[dst+i] = byte(c)
		}
		m.vals[v] = dst
	case "strchr":
		p, c := arg(0), byte(arg(1))
		for {
			b := m.mem[p]
			if b == c {
				m.vals[v] = p
				return nil
			}
			if b == 0 {
				m.vals[v] = 0
				return nil
			}
			p++
		}
	case "strlen":
		p := arg(0)
		n := uint64(0)
		for m.mem[p+n] != 0 {
			n++
		}
		m.vals[v] = n
	default:
		// Unknown extern: returns 0.
		m.vals[v] = 0
	}
	return nil
}
