package ir

import (
	"errors"
	"testing"

	"repro/internal/cc"
)

// Per-pass differential fuzzing: each SSA pass whose contract is
// "C*-semantics preserving" is driven over arbitrary C sources and
// checked against the concrete evaluator — the original and the
// transformed function must agree on every probed input row. This is
// the execution-level half of the pass oracles; the report-level half
// (byte-identical checker output when nothing sharpened) is
// core.FuzzSSADifferential.

// fuzzBuild parses, checks, and lowers src, returning nil when the
// source is not a buildable program (the fuzzer's job is to find
// miscompiles, not frontend rejections).
func fuzzBuild(src string) *Program {
	file, err := cc.Parse("fuzz.c", src)
	if err != nil {
		return nil
	}
	if err := cc.Check(file); err != nil {
		return nil
	}
	p, err := Build(file)
	if err != nil {
		return nil
	}
	return p
}

// fuzzRows probes n-argument functions with boundary-heavy inputs.
func fuzzRows(n int) [][]uint64 {
	pats := []uint64{0, 1, 2, 7, 0x7fffffff, 0x80000000, 0xffffffff, 0x8000000000000000}
	rows := make([][]uint64, 0, len(pats)+1)
	for _, p := range pats {
		row := make([]uint64, n)
		for i := range row {
			row[i] = p + uint64(i)
		}
		rows = append(rows, row)
	}
	mixed := make([]uint64, n)
	for i := range mixed {
		mixed[i] = pats[i%len(pats)]
	}
	return append(rows, mixed)
}

// fuzzExecDiff builds src twice, transforms every function of one
// copy, and requires the evaluator to agree on result, return-ness,
// and trap behavior for every probed row. Rows where either side
// exhausts the step budget are skipped — the transforms exist to
// shorten execution, so step counts may legitimately differ.
func fuzzExecDiff(t *testing.T, src string, transform func(*Func)) {
	ref := fuzzBuild(src)
	if ref == nil {
		return
	}
	opt := fuzzBuild(src)
	for _, f := range opt.Funcs {
		transform(f)
	}
	for i, rf := range ref.Funcs {
		of := opt.Funcs[i]
		for _, row := range fuzzRows(len(rf.Params)) {
			want, werr := Exec(rf, row, ExecOptions{Program: ref, MaxSteps: 1 << 14})
			got, gerr := Exec(of, row, ExecOptions{Program: opt, MaxSteps: 1 << 14})
			if errors.Is(werr, ErrSteps) || errors.Is(gerr, ErrSteps) {
				continue
			}
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("%s(%v): reference err = %v, transformed err = %v", rf.Name, row, werr, gerr)
			}
			if werr != nil {
				if werr.Error() != gerr.Error() {
					t.Fatalf("%s(%v): trap diverges: reference %v, transformed %v", rf.Name, row, werr, gerr)
				}
				continue
			}
			if got.Ret != want.Ret || got.Returned != want.Returned {
				t.Fatalf("%s(%v): transformed = (%d, %v), reference = (%d, %v)",
					rf.Name, row, got.Ret, got.Returned, want.Ret, want.Returned)
			}
		}
	}
}

// FuzzSCCPDifferential pins SCCP's first contract clause: every
// transmuted value is the constant the concrete evaluator computes, so
// execution is unchanged on all inputs — including signed-overflow
// operands (which must not fold when UB fires) and loop-carried
// constants (which must fold to the value every iteration computes).
func FuzzSCCPDifferential(f *testing.F) {
	seeds := []string{
		`int f(int a) { int k = 3; if (k < 5) return a; return -a; }`,
		`int f(int n) { int m = 0; int i = 0; do { m = m & 7; i = i + 1; } while (i < n); return m; }`,
		`int f(void) { int x = 2147483647; return x + 1; }`,
		`int f(int a) { int x = 6 * 7; if (x == 42) return a + x; return 0; }`,
		`int f(int a, int b) { int k = 1; if (k) return a & b; return a | b; }`,
		`int f(int n) { int s = 0; for (int i = 0; i < n; i++) s = s + (4 / 2); return s; }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4<<10 {
			return
		}
		fuzzExecDiff(t, src, func(fn *Func) {
			dom := ComputeDom(fn)
			PromoteAllocas(fn, dom)
			SCCP(fn)
		})
	})
}

// FuzzHoistDifferential pins loop-invariant UB hoisting's contract: a
// hoisted instruction runs iff it ran before (the header executes
// whenever the preheader does) and computes the same value every
// iteration, so execution — including which traps fire — is unchanged.
func FuzzHoistDifferential(f *testing.F) {
	seeds := []string{
		`int f(int a, int b, int n) { int s = 0; int i = 0; do { s = s ^ i; s = s + a * b; i = i + 1; } while (i < n); return s; }`,
		`int f(int a, int n) { int s = 0; int i = 0; do { s = s + (a << 3); i = i + 1; } while (i < n); return s; }`,
		`int f(int a, int b, int n) { int s = 0; for (int i = 0; i < n; i++) s = s + a * b; return s; }`,
		`int f(int a, int n) { int i = 0; int s = 0; do { s = s + i * a; i = i + 1; } while (i < n); return s; }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4<<10 {
			return
		}
		fuzzExecDiff(t, src, func(fn *Func) {
			dom := ComputeDom(fn)
			PromoteAllocas(fn, dom)
			HoistLoopInvariantUB(fn, dom)
		})
	})
}

// FuzzGVNDifferential pins value numbering's semantic half: merging a
// value into a structurally identical, same-origin representative and
// redirecting its uses cannot change what the function computes. (The
// report-preserving half — identical checker output — is
// core.FuzzSSADifferential's strict gate.)
func FuzzGVNDifferential(f *testing.F) {
	seeds := []string{
		`int f(int a, int b) { int x = a & b; int y = 0; if (a) { int t = b ^ 3; y = (a & b) | t; } return x + y; }`,
		`int f(int a, int b) { int x = (a + b) * 3; int y = (a + b) * 3; return x - y; }`,
		`int f(int a, int b) { int x = a * b; int y = 0; if (a) y = a * b; return x + y; }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4<<10 {
			return
		}
		fuzzExecDiff(t, src, func(fn *Func) {
			dom := ComputeDom(fn)
			PromoteAllocas(fn, dom)
			GVN(fn, dom)
		})
	})
}
