package ir

// Function inlining. STACK inlines functions before per-function
// analysis so that unstable code spanning call boundaries is visible
// (paper §4.2), and records the original function of inlined code so
// that report generation can suppress warnings whose unstable fragment
// was not written by the programmer at that site.

// InlineOptions controls the inliner.
type InlineOptions struct {
	// MaxDepth bounds transitive inlining.
	MaxDepth int
	// MaxCalleeValues skips bodies larger than this many values.
	MaxCalleeValues int
}

// DefaultInlineOptions mirror a conventional -O2 inliner posture.
var DefaultInlineOptions = InlineOptions{MaxDepth: 3, MaxCalleeValues: 200}

// InlineProgram inlines calls to functions defined in the same
// program, in place. Inlined instructions keep their position but are
// tagged with Origin = callee name (unless they already carry a macro
// origin, which takes precedence as the outermost user-visible
// construct).
func InlineProgram(p *Program, opts InlineOptions) {
	for _, f := range p.Funcs {
		inlineFunc(p, f, opts, 0)
	}
}

func inlineFunc(p *Program, f *Func, opts InlineOptions, depth int) {
	if depth >= opts.MaxDepth {
		return
	}
	changed := true
	rounds := 0
	for changed && rounds < opts.MaxDepth {
		changed = false
		rounds++
		for _, b := range f.Blocks {
			for i := 0; i < len(b.Instrs); i++ {
				v := b.Instrs[i]
				if v.Op != OpCall {
					continue
				}
				callee := p.Lookup(v.AuxName)
				if callee == nil || callee == f || countValues(callee) > opts.MaxCalleeValues {
					continue
				}
				if callsInto(callee, f.Name, p, map[string]bool{}) {
					continue // avoid mutual recursion blowup
				}
				inlineCall(f, b, i, v, callee)
				changed = true
				break // block structure changed; restart this block
			}
		}
	}
}

func countValues(f *Func) int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs) + 1
	}
	return n
}

func callsInto(f *Func, name string, p *Program, seen map[string]bool) bool {
	if seen[f.Name] {
		return false
	}
	seen[f.Name] = true
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Op != OpCall {
				continue
			}
			if v.AuxName == name {
				return true
			}
			if callee := p.Lookup(v.AuxName); callee != nil {
				if callsInto(callee, name, p, seen) {
					return true
				}
			}
		}
	}
	return false
}

// inlineCall splices a copy of callee into f at block b, instruction
// index i (the call instruction).
func inlineCall(f *Func, b *Block, i int, call *Value, callee *Func) {
	// Split b at the call: b keeps Instrs[:i], contB gets Instrs[i+1:]
	// and b's terminator/successors.
	contB := f.NewBlock()
	contB.Instrs = append(contB.Instrs, b.Instrs[i+1:]...)
	for _, v := range contB.Instrs {
		v.Block = contB
	}
	contB.Term = b.Term
	if contB.Term != nil {
		contB.Term.Block = contB
	}
	contB.Succs = b.Succs
	for _, s := range contB.Succs {
		for k, pr := range s.Preds {
			if pr == b {
				s.Preds[k] = contB
			}
		}
	}
	b.Instrs = b.Instrs[:i]
	b.Term = nil
	b.Succs = nil

	// Copy callee blocks and values.
	blockMap := map[*Block]*Block{}
	valueMap := map[*Value]*Value{}
	for _, cb := range callee.Blocks {
		nb := f.NewBlock()
		blockMap[cb] = nb
	}
	// Parameters map to call arguments.
	for pi, pv := range callee.Params {
		if pi < len(call.Args) {
			valueMap[pv] = call.Args[pi]
		}
	}
	origin := func(v *Value) string {
		if v.Origin != "" {
			return v.Origin
		}
		return callee.Name
	}
	// First pass: copy instructions (args patched in second pass).
	for _, cb := range callee.Blocks {
		nb := blockMap[cb]
		for _, cv := range cb.Instrs {
			if _, done := valueMap[cv]; done {
				continue // parameter
			}
			nv := &Value{
				ID: f.NewValueID(), Op: cv.Op, Width: cv.Width,
				Signed: cv.Signed, Aux: cv.Aux, Aux2: cv.Aux2,
				AuxName: cv.AuxName, Block: nb, Pos: call.Pos,
				Origin: origin(cv),
				Args:   append([]*Value(nil), cv.Args...),
			}
			if cv.Op == OpParam {
				// Unmapped parameter (arity mismatch): opaque.
				nv.Op = OpUnknown
			}
			valueMap[cv] = nv
			nb.Instrs = append(nb.Instrs, nv)
		}
	}
	// Preserve predecessor order so phi arguments stay aligned.
	for _, cb := range callee.Blocks {
		nb := blockMap[cb]
		for _, p := range cb.Preds {
			nb.Preds = append(nb.Preds, blockMap[p])
		}
	}
	// Return handling: rets branch to contB; the call's value becomes
	// a phi over returned values (or stays opaque for void).
	var retVals []*Value
	var retPreds []*Block
	for _, cb := range callee.Blocks {
		nb := blockMap[cb]
		ct := cb.Term
		if ct == nil {
			continue
		}
		switch ct.Op {
		case OpRet:
			nt := &Value{ID: f.NewValueID(), Op: OpBr, Block: nb, Pos: call.Pos, Origin: origin(ct)}
			nb.Term = nt
			nb.Succs = []*Block{contB}
			contB.Preds = append(contB.Preds, nb)
			if len(ct.Args) > 0 {
				retVals = append(retVals, ct.Args[0])
				retPreds = append(retPreds, nb)
			}
		default:
			nt := &Value{
				ID: f.NewValueID(), Op: ct.Op, Width: ct.Width,
				Signed: ct.Signed, Aux: ct.Aux, Aux2: ct.Aux2,
				AuxName: ct.AuxName, Block: nb, Pos: call.Pos,
				Origin: origin(ct),
				Args:   append([]*Value(nil), ct.Args...),
			}
			valueMap[ct] = nt
			nb.Term = nt
			for _, s := range ct.Block.Succs {
				nb.Succs = append(nb.Succs, blockMap[s])
			}
		}
	}
	// Second pass: patch args through valueMap.
	patch := func(v *Value) {
		for k, a := range v.Args {
			if na, ok := valueMap[a]; ok {
				v.Args[k] = na
			}
		}
	}
	for _, cb := range callee.Blocks {
		nb := blockMap[cb]
		for _, nv := range nb.Instrs {
			patch(nv)
		}
		if nb.Term != nil {
			patch(nb.Term)
		}
	}
	// Wire the entry.
	entryCopy := blockMap[callee.Entry]
	b.Term = &Value{ID: f.NewValueID(), Op: OpBr, Block: b, Pos: call.Pos}
	b.Succs = []*Block{entryCopy}
	entryCopy.Preds = append(entryCopy.Preds, b)

	// Replace the call's result.
	var replacement *Value
	switch {
	case call.Width == 0:
		replacement = nil
	case len(retVals) == 1:
		replacement = mapped(valueMap, retVals[0])
	case len(retVals) > 1:
		phi := &Value{
			ID: f.NewValueID(), Op: OpPhi, Width: call.Width,
			Block: contB, Pos: call.Pos, Origin: callee.Name,
		}
		// Align phi args with contB.Preds.
		for _, p := range contB.Preds {
			found := false
			for ri, rp := range retPreds {
				if rp == p {
					phi.Args = append(phi.Args, mapped(valueMap, retVals[ri]))
					found = true
					break
				}
			}
			if !found {
				u := &Value{ID: f.NewValueID(), Op: OpUnknown, Width: call.Width, Block: contB, Pos: call.Pos, Origin: callee.Name}
				contB.Instrs = append([]*Value{u}, contB.Instrs...)
				phi.Args = append(phi.Args, u)
			}
		}
		contB.Instrs = append([]*Value{phi}, contB.Instrs...)
		replacement = phi
	default:
		// Non-void function with no value-returning rets (e.g. only
		// falls off): opaque.
		u := &Value{ID: f.NewValueID(), Op: OpUnknown, Width: call.Width, Block: contB, Pos: call.Pos, Origin: callee.Name}
		contB.Instrs = append([]*Value{u}, contB.Instrs...)
		replacement = u
	}
	if replacement != nil {
		replaceUses(f, call, replacement)
	}
}

func mapped(m map[*Value]*Value, v *Value) *Value {
	if nv, ok := m[v]; ok {
		return nv
	}
	return v
}

func replaceUses(f *Func, old, new *Value) {
	for _, b := range f.Blocks {
		for _, v := range b.Values() {
			for i, a := range v.Args {
				if a == old {
					v.Args[i] = new
				}
			}
		}
	}
}
