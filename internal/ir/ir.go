// Package ir defines the typed intermediate representation that the
// STACK reproduction analyzes, standing in for LLVM IR in the original
// system (paper §4.1/Fig. 7). A Func is a control-flow graph of basic
// blocks holding instructions in SSA form; the builder (builder.go)
// lowers type-checked C ASTs into this form, constructing SSA
// on the fly. Dominator computation (dom.go), function inlining with
// origin tracking (inline.go), and a concrete C* evaluator (exec.go)
// complete the substrate.
package ir

import (
	"fmt"
	"strings"

	"repro/internal/cc"
)

// Op enumerates IR operations.
type Op uint8

// Operations. Arithmetic carries an explicit Signed flag on the
// instruction when C assigns undefined behavior to signed overflow.
const (
	OpInvalid Op = iota

	// Values without operands.
	OpConst   // Aux = value (two's complement in Width bits)
	OpParam   // AuxName = parameter name
	OpGlobal  // AuxName = global name; value is its address
	OpUnknown // opaque value (external input, widened loop value)
	OpString  // AuxName = literal; value is its address

	// Arithmetic. Signed flag => signed-overflow UB applies (Fig. 3).
	OpAdd
	OpSub
	OpMul
	OpUDiv
	OpSDiv
	OpURem
	OpSRem
	OpNeg

	// Bitwise.
	OpAnd
	OpOr
	OpXor
	OpNot

	// Shifts. UB when the shift amount is negative or ≥ width.
	OpShl
	OpLShr
	OpAShr

	// Comparison; Aux = predicate (CmpEq etc.), result Width 1.
	OpICmp

	// Conversions.
	OpZExt
	OpSExt
	OpTrunc

	// Select (cond, a, b).
	OpSelect

	// Pointer arithmetic: args[0] pointer + args[1] byte offset.
	// UB: pointer overflow (Fig. 3 row 1).
	OpPtrAdd
	// IndexAddr: args[0] array base, args[1] index; AuxInt element
	// size; Aux2 the static array length (0 if unknown). UB: index out
	// of bounds when Aux2 > 0 (Fig. 3 buffer overflow).
	OpIndexAddr

	// Memory. UB: null pointer dereference.
	OpLoad  // args[0] address
	OpStore // args[0] address, args[1] value

	// Call: AuxName = callee, args = arguments. Library UB conditions
	// (abs, memcpy, free, realloc) attach by name (Fig. 3 bottom).
	OpCall

	// SSA merge.
	OpPhi

	// Terminators.
	OpBr     // unconditional; Succs[0]
	OpCondBr // args[0] cond; Succs[0] = true, Succs[1] = false
	OpRet    // optional args[0]
	OpUnreachable
)

var opNames = [...]string{
	OpInvalid: "invalid", OpConst: "const", OpParam: "param",
	OpGlobal: "global", OpUnknown: "unknown", OpString: "string",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpUDiv: "udiv",
	OpSDiv: "sdiv", OpURem: "urem", OpSRem: "srem", OpNeg: "neg",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpNot: "not",
	OpShl: "shl", OpLShr: "lshr", OpAShr: "ashr", OpICmp: "icmp",
	OpZExt: "zext", OpSExt: "sext", OpTrunc: "trunc",
	OpSelect: "select", OpPtrAdd: "ptradd", OpIndexAddr: "indexaddr",
	OpLoad: "load", OpStore: "store", OpCall: "call", OpPhi: "phi",
	OpBr: "br", OpCondBr: "condbr", OpRet: "ret",
	OpUnreachable: "unreachable",
}

func (o Op) String() string { return opNames[o] }

// Cmp is an ICmp predicate.
type Cmp int

// ICmp predicates.
const (
	CmpEq Cmp = iota
	CmpNe
	CmpULT
	CmpULE
	CmpSLT
	CmpSLE
)

var cmpNames = [...]string{"eq", "ne", "ult", "ule", "slt", "sle"}

func (c Cmp) String() string { return cmpNames[c] }

// Value is an SSA value: an instruction and its result. Phis keep
// their incoming values in Args aligned with Block.Preds.
type Value struct {
	ID      int
	Op      Op
	Width   int // result width in bits; 0 for void/terminators
	Signed  bool
	Args    []*Value
	Aux     int64  // OpConst value; OpICmp predicate; OpIndexAddr elem size
	Aux2    int64  // OpIndexAddr array length
	AuxName string // OpParam/OpGlobal/OpCall/OpUnknown/OpString
	Block   *Block
	Pos     cc.Pos
	Origin  string // macro or inlined-function origin (paper §4.2)
}

// Pred returns the ICmp predicate.
func (v *Value) Pred() Cmp { return Cmp(v.Aux) }

// IsTerminator reports whether v ends a block.
func (v *Value) IsTerminator() bool {
	switch v.Op {
	case OpBr, OpCondBr, OpRet, OpUnreachable:
		return true
	}
	return false
}

func (v *Value) String() string {
	var b strings.Builder
	if v.Width > 0 {
		fmt.Fprintf(&b, "v%d:i%d = ", v.ID, v.Width)
	}
	b.WriteString(v.Op.String())
	if v.Op == OpICmp {
		b.WriteByte(' ')
		b.WriteString(v.Pred().String())
	}
	if v.Signed {
		b.WriteString(" nsw")
	}
	if v.AuxName != "" {
		fmt.Fprintf(&b, " %q", v.AuxName)
	}
	if v.Op == OpConst {
		fmt.Fprintf(&b, " %d", v.Aux)
	}
	if v.Op == OpIndexAddr {
		fmt.Fprintf(&b, " elem=%d len=%d", v.Aux, v.Aux2)
	}
	for _, a := range v.Args {
		fmt.Fprintf(&b, " v%d", a.ID)
	}
	switch v.Op {
	case OpBr:
		fmt.Fprintf(&b, " b%d", v.Block.Succs[0].ID)
	case OpCondBr:
		fmt.Fprintf(&b, " b%d b%d", v.Block.Succs[0].ID, v.Block.Succs[1].ID)
	}
	if v.Origin != "" {
		fmt.Fprintf(&b, " !origin(%s)", v.Origin)
	}
	return b.String()
}

// Block is a basic block.
type Block struct {
	ID     int
	Instrs []*Value // non-terminator instructions in order
	Term   *Value   // the terminator
	Preds  []*Block
	Succs  []*Block
	Func   *Func
}

// Values iterates instructions plus terminator.
func (b *Block) Values() []*Value {
	if b.Term == nil {
		return b.Instrs
	}
	out := make([]*Value, 0, len(b.Instrs)+1)
	out = append(out, b.Instrs...)
	return append(out, b.Term)
}

func (b *Block) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "b%d:", b.ID)
	if len(b.Preds) > 0 {
		sb.WriteString(" ; preds:")
		for _, p := range b.Preds {
			fmt.Fprintf(&sb, " b%d", p.ID)
		}
	}
	sb.WriteByte('\n')
	for _, v := range b.Values() {
		fmt.Fprintf(&sb, "  %s\n", v)
	}
	return sb.String()
}

// Func is a function in SSA form.
type Func struct {
	Name     string
	Params   []*Value
	Blocks   []*Block
	Entry    *Block
	RetWidth int // 0 for void
	nextID   int
}

// NewValueID allocates a fresh value ID.
func (f *Func) NewValueID() int { f.nextID++; return f.nextID }

// NewBlock appends an empty block.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: len(f.Blocks), Func: f}
	f.Blocks = append(f.Blocks, b)
	return b
}

func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s:i%d", p.AuxName, p.Width)
	}
	sb.WriteString(") {\n")
	for _, b := range f.Blocks {
		sb.WriteString(b.String())
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Program is a set of functions from one translation unit.
type Program struct {
	File  string
	Funcs []*Func
}

// Lookup returns the function with the given name, or nil.
func (p *Program) Lookup(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// RemoveUnreachableBlocks drops blocks not reachable from entry and
// fixes up pred lists and phi operands.
func (f *Func) RemoveUnreachableBlocks() {
	reach := map[*Block]bool{}
	var stack []*Block
	if f.Entry != nil {
		stack = append(stack, f.Entry)
		reach[f.Entry] = true
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	var kept []*Block
	for _, b := range f.Blocks {
		if !reach[b] {
			continue
		}
		// Remove unreachable preds and matching phi args.
		var keepIdx []int
		for i, p := range b.Preds {
			if reach[p] {
				keepIdx = append(keepIdx, i)
			}
		}
		if len(keepIdx) != len(b.Preds) {
			newPreds := make([]*Block, len(keepIdx))
			for j, i := range keepIdx {
				newPreds[j] = b.Preds[i]
			}
			for _, v := range b.Instrs {
				if v.Op == OpPhi {
					newArgs := make([]*Value, len(keepIdx))
					for j, i := range keepIdx {
						if i < len(v.Args) {
							newArgs[j] = v.Args[i]
						}
					}
					v.Args = newArgs
				}
			}
			b.Preds = newPreds
		}
		kept = append(kept, b)
	}
	f.Blocks = kept
	for i, b := range f.Blocks {
		b.ID = i
	}
}
