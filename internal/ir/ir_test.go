package ir

import (
	"strings"
	"testing"

	"repro/internal/cc"
)

func build(t *testing.T, src string) *Program {
	t.Helper()
	f, err := cc.Parse("test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := cc.Check(f); err != nil {
		t.Fatalf("check: %v", err)
	}
	p, err := Build(f)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

func fn(t *testing.T, p *Program, name string) *Func {
	t.Helper()
	f := p.Lookup(name)
	if f == nil {
		t.Fatalf("no function %q", name)
	}
	return f
}

func run(t *testing.T, f *Func, args []uint64, opts ExecOptions) ExecResult {
	t.Helper()
	r, err := Exec(f, args, opts)
	if err != nil {
		t.Fatalf("exec %s: %v", f.Name, err)
	}
	return r
}

func TestExecArithmetic(t *testing.T) {
	p := build(t, `
int calc(int a, int b) {
	return (a + b) * 2 - a / b + a % b;
}
`)
	f := fn(t, p, "calc")
	// (7+3)*2 - 7/3 + 7%3 = 20 - 2 + 1 = 19
	r := run(t, f, []uint64{7, 3}, ExecOptions{})
	if int64(int32(r.Ret)) != 19 {
		t.Fatalf("got %d, want 19", int32(r.Ret))
	}
}

func TestExecControlFlow(t *testing.T) {
	p := build(t, `
int max3(int a, int b, int c) {
	int m = a;
	if (b > m) m = b;
	if (c > m) m = c;
	return m;
}
`)
	f := fn(t, p, "max3")
	cases := [][4]uint64{{1, 2, 3, 3}, {5, 2, 3, 5}, {1, 9, 3, 9}}
	for _, c := range cases {
		r := run(t, f, c[:3], ExecOptions{})
		if r.Ret != c[3] {
			t.Fatalf("max3(%v) = %d, want %d", c[:3], r.Ret, c[3])
		}
	}
}

func TestExecLoops(t *testing.T) {
	p := build(t, `
int sumto(int n) {
	int s = 0;
	for (int i = 1; i <= n; i++)
		s += i;
	return s;
}
int collatz(int n) {
	int steps = 0;
	while (n != 1) {
		if (n % 2 == 0) n = n / 2;
		else n = 3 * n + 1;
		steps++;
	}
	return steps;
}
`)
	if r := run(t, fn(t, p, "sumto"), []uint64{100}, ExecOptions{}); r.Ret != 5050 {
		t.Fatalf("sumto(100) = %d", r.Ret)
	}
	if r := run(t, fn(t, p, "collatz"), []uint64{27}, ExecOptions{}); r.Ret != 111 {
		t.Fatalf("collatz(27) = %d, want 111", r.Ret)
	}
}

func TestExecDoWhileAndBreak(t *testing.T) {
	p := build(t, `
int f(int n) {
	int c = 0;
	do {
		c++;
		if (c > 10) break;
	} while (n--);
	return c;
}
`)
	if r := run(t, fn(t, p, "f"), []uint64{3}, ExecOptions{}); r.Ret != 4 {
		t.Fatalf("got %d, want 4", r.Ret)
	}
	if r := run(t, fn(t, p, "f"), []uint64{100}, ExecOptions{}); r.Ret != 11 {
		t.Fatalf("break: got %d, want 11", r.Ret)
	}
}

func TestExecShortCircuit(t *testing.T) {
	p := build(t, `
int f(int a, int b) {
	if (a != 0 && 10 / a > b)
		return 1;
	return 0;
}
`)
	f := fn(t, p, "f")
	// a == 0 must NOT evaluate 10/a (would trap on x86).
	r := run(t, f, []uint64{0, 1}, ExecOptions{Arch: ArchX86})
	if r.Ret != 0 {
		t.Fatalf("short circuit broken: %d", r.Ret)
	}
	if r := run(t, f, []uint64{2, 3}, ExecOptions{Arch: ArchX86}); r.Ret != 1 {
		t.Fatalf("10/2 > 3: got %d", r.Ret)
	}
}

func TestExecTernary(t *testing.T) {
	p := build(t, `int f(int x) { return x < 0 ? -x : x; }`)
	f := fn(t, p, "f")
	if r := run(t, f, []uint64{uint64(0xFFFFFFFF)}, ExecOptions{}); r.Ret != 1 { // -1 -> 1
		t.Fatalf("abs(-1) = %d", r.Ret)
	}
	if r := run(t, f, []uint64{7}, ExecOptions{}); r.Ret != 7 {
		t.Fatalf("abs(7) = %d", r.Ret)
	}
}

func TestExecMemory(t *testing.T) {
	p := build(t, `
int f(int n) {
	int arr[10];
	for (int i = 0; i < 10; i++)
		arr[i] = i * i;
	return arr[n];
}
`)
	if r := run(t, fn(t, p, "f"), []uint64{7}, ExecOptions{}); r.Ret != 49 {
		t.Fatalf("arr[7] = %d, want 49", r.Ret)
	}
}

func TestExecStructs(t *testing.T) {
	p := build(t, `
struct point { int x; int y; };
int f(int a, int b) {
	struct point p;
	p.x = a;
	p.y = b;
	return p.x * 1000 + p.y;
}
`)
	if r := run(t, fn(t, p, "f"), []uint64{12, 34}, ExecOptions{}); r.Ret != 12034 {
		t.Fatalf("got %d", r.Ret)
	}
}

func TestExecPointers(t *testing.T) {
	p := build(t, `
void set(int *p, int v) { *p = v; }
int f(int a) {
	int x = 1;
	int *px = &x;
	*px = a + 1;
	return x;
}
`)
	if r := run(t, fn(t, p, "f"), []uint64{41}, ExecOptions{}); r.Ret != 42 {
		t.Fatalf("got %d", r.Ret)
	}
}

// TestExecPostgresDivisionTrap reproduces paper §6.2.1/Fig. 10: the
// -2^63 / -1 division traps on x86-64 but wraps on other platforms
// (modeling the x86-32 lldiv behavior the Postgres developers tested).
func TestExecPostgresDivisionTrap(t *testing.T) {
	p := build(t, `
long divide(long arg1, long arg2) {
	long result = arg1 / arg2;
	return result;
}
`)
	f := fn(t, p, "divide")
	minI64 := uint64(1) << 63
	_, err := Exec(f, []uint64{minI64, ^uint64(0)}, ExecOptions{Arch: ArchX86})
	trap, ok := err.(*Trap)
	if !ok {
		t.Fatalf("x86: want trap, got %v", err)
	}
	if !strings.Contains(trap.Msg, "overflow") {
		t.Fatalf("trap: %v", trap)
	}
	// ARM (and the lldiv path): wraps silently to -2^63.
	r, err := Exec(f, []uint64{minI64, ^uint64(0)}, ExecOptions{Arch: ArchARM})
	if err != nil {
		t.Fatalf("arm: %v", err)
	}
	if r.Ret != minI64 {
		t.Fatalf("arm wrap: got %#x, want %#x", r.Ret, minI64)
	}
}

func TestExecDivByZeroTrapsOnX86(t *testing.T) {
	p := build(t, `int f(int a) { return 10 / a; }`)
	f := fn(t, p, "f")
	if _, err := Exec(f, []uint64{0}, ExecOptions{Arch: ArchX86}); err == nil {
		t.Fatal("want trap")
	}
	if r, err := Exec(f, []uint64{0}, ExecOptions{Arch: ArchARM}); err != nil || r.Ret != 0 {
		t.Fatalf("arm div0: %v %d", err, r.Ret)
	}
}

// TestExecShiftArchDifferences encodes §2.1's shift table:
// (1 << 32) is 1 on x86 and 0 on ARM/PowerPC for 32-bit operands;
// (1 << 64) is 0 on ARM but 1 on x86 and PowerPC.
func TestExecShiftArchDifferences(t *testing.T) {
	p := build(t, `int f(int x, int y) { return x << y; }`)
	f := fn(t, p, "f")
	get := func(arch Arch, amt uint64) uint64 {
		r := run(t, f, []uint64{1, amt}, ExecOptions{Arch: arch})
		return r.Ret
	}
	if got := get(ArchX86, 32); got != 1 {
		t.Fatalf("x86 1<<32 = %d, want 1", got)
	}
	if got := get(ArchARM, 32); got != 0 {
		t.Fatalf("arm 1<<32 = %d, want 0", got)
	}
	if got := get(ArchPPC, 32); got != 0 {
		t.Fatalf("ppc 1<<32 = %d, want 0", got)
	}
	if got := get(ArchX86, 64); got != 1 {
		t.Fatalf("x86 1<<64 = %d, want 1", got)
	}
	if got := get(ArchARM, 64); got != 0 {
		t.Fatalf("arm 1<<64 = %d, want 0", got)
	}
	if got := get(ArchPPC, 64); got != 1 {
		t.Fatalf("ppc 1<<64 = %d, want 1", got)
	}
}

// TestExecPdecInfiniteLoop reproduces paper Fig. 13: with C*
// wraparound, -INT_MIN stays negative, so the recursion-as-loop keeps
// printing '-'. Under C* (our evaluator) the check -k >= 0 correctly
// catches INT_MIN; the infinite loop only appears after an optimizer
// folds it (tested in the opt package).
func TestExecPdecNegation(t *testing.T) {
	p := build(t, `
int wraps_to_negative(int k) {
	if (k < 0) {
		if (-k >= 0)
			return 0; /* safe to negate */
		return 1; /* INT_MIN caught */
	}
	return 2;
}
`)
	f := fn(t, p, "wraps_to_negative")
	intMin := uint64(0x80000000)
	if r := run(t, f, []uint64{intMin}, ExecOptions{}); r.Ret != 1 {
		t.Fatalf("C* must catch INT_MIN, got %d", r.Ret)
	}
	if r := run(t, f, []uint64{0xFFFFFFFF}, ExecOptions{}); r.Ret != 0 { // -1
		t.Fatalf("-1 negates fine, got %d", r.Ret)
	}
}

func TestExecBuiltins(t *testing.T) {
	p := build(t, `
int f(int x) {
	char buf[8];
	buf[0] = 'a'; buf[1] = '.'; buf[2] = 'b'; buf[3] = 0;
	char *dot = strchr(buf, '.');
	if (!dot)
		return -1;
	return abs(x);
}
`)
	f := fn(t, p, "f")
	if r := run(t, f, []uint64{uint64(0xFFFFFFF6)}, ExecOptions{}); r.Ret != 10 { // abs(-10)
		t.Fatalf("abs(-10) = %d", r.Ret)
	}
}

func TestExecStepBudget(t *testing.T) {
	p := build(t, `int f(void) { while (1) { } return 0; }`)
	f := fn(t, p, "f")
	_, err := Exec(f, nil, ExecOptions{MaxSteps: 1000})
	if err != ErrSteps {
		t.Fatalf("want ErrSteps, got %v", err)
	}
}

func TestSSAPhiPlacement(t *testing.T) {
	p := build(t, `
int f(int c) {
	int x = 1;
	if (c)
		x = 2;
	return x;
}
`)
	f := fn(t, p, "f")
	// The return block must read a phi merging 1 and 2.
	phis := 0
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Op == OpPhi {
				phis++
				if len(v.Args) != len(b.Preds) {
					t.Fatalf("phi args %d != preds %d", len(v.Args), len(b.Preds))
				}
			}
		}
	}
	if phis != 1 {
		t.Fatalf("want exactly 1 phi, got %d\n%s", phis, f)
	}
	if r := run(t, f, []uint64{0}, ExecOptions{}); r.Ret != 1 {
		t.Fatalf("f(0) = %d", r.Ret)
	}
	if r := run(t, f, []uint64{5}, ExecOptions{}); r.Ret != 2 {
		t.Fatalf("f(5) = %d", r.Ret)
	}
}

func TestSSATrivialPhiRemoved(t *testing.T) {
	p := build(t, `
int f(int c) {
	int x = 1;
	if (c) { /* x unchanged */ }
	return x;
}
`)
	f := fn(t, p, "f")
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Op == OpPhi {
				t.Fatalf("trivial phi not removed:\n%s", f)
			}
		}
	}
}

func TestDominators(t *testing.T) {
	p := build(t, `
int f(int a, int b) {
	int r = 0;
	if (a) {
		if (b) r = 1;
		else r = 2;
	}
	return r;
}
`)
	f := fn(t, p, "f")
	dom := ComputeDom(f)
	entry := f.Entry
	for _, b := range f.Blocks {
		if !dom.Dominates(entry, b) {
			t.Fatalf("entry must dominate b%d", b.ID)
		}
		doms := dom.Dominators(b)
		if doms[0] != entry || doms[len(doms)-1] != b {
			t.Fatalf("dominators of b%d: %v", b.ID, doms)
		}
	}
	// The exit block (with phi or ret) is dominated by entry only among
	// the if blocks.
	var retBlock *Block
	for _, b := range f.Blocks {
		if b.Term != nil && b.Term.Op == OpRet {
			retBlock = b
		}
	}
	if retBlock == nil {
		t.Fatal("no return block")
	}
	for _, b := range f.Blocks {
		if b != entry && b != retBlock && dom.Dominates(b, retBlock) {
			// Merge blocks between entry and ret may dominate ret; the
			// then/else leaves must not.
			if len(b.Succs) == 2 {
				continue
			}
			if len(b.Preds) > 1 {
				continue
			}
			t.Fatalf("b%d should not dominate the return\n%s", b.ID, f)
		}
	}
}

func TestBackEdges(t *testing.T) {
	p := build(t, `
int f(int n) {
	int s = 0;
	while (n > 0) { s += n; n--; }
	return s;
}
`)
	f := fn(t, p, "f")
	be := BackEdges(f)
	if len(be) != 1 {
		t.Fatalf("want 1 back edge, got %d", len(be))
	}
	p2 := build(t, `int g(int a) { if (a) return 1; return 0; }`)
	if be := BackEdges(fn(t, p2, "g")); len(be) != 0 {
		t.Fatalf("acyclic function has %d back edges", len(be))
	}
}

func TestInlining(t *testing.T) {
	p := build(t, `
static int double_it(int x) { return x * 2; }
int f(int a) { return double_it(a) + 1; }
`)
	InlineProgram(p, DefaultInlineOptions)
	f := fn(t, p, "f")
	// No remaining call to double_it.
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Op == OpCall && v.AuxName == "double_it" {
				t.Fatalf("call not inlined:\n%s", f)
			}
		}
	}
	// Inlined instructions carry the origin.
	foundOrigin := false
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Origin == "double_it" {
				foundOrigin = true
			}
		}
	}
	if !foundOrigin {
		t.Fatalf("inlined code lacks origin:\n%s", f)
	}
	if r := run(t, f, []uint64{20}, ExecOptions{}); r.Ret != 41 {
		t.Fatalf("f(20) = %d, want 41", r.Ret)
	}
}

func TestInlineMultipleReturns(t *testing.T) {
	p := build(t, `
static int sign(int x) {
	if (x > 0) return 1;
	if (x < 0) return -1;
	return 0;
}
int f(int a) { return sign(a) * 10; }
`)
	InlineProgram(p, DefaultInlineOptions)
	f := fn(t, p, "f")
	cases := map[uint64]uint64{5: 10, 0: 0}
	for in, want := range cases {
		if r := run(t, f, []uint64{in}, ExecOptions{}); r.Ret != want {
			t.Fatalf("f(%d) = %d, want %d\n%s", in, r.Ret, want, f)
		}
	}
	r := run(t, f, []uint64{uint64(0xFFFFFFFB)}, ExecOptions{}) // -5
	if int32(r.Ret) != -10 {
		t.Fatalf("f(-5) = %d, want -10", int32(r.Ret))
	}
}

func TestInlineRecursionGuard(t *testing.T) {
	p := build(t, `
int fact(int n) {
	if (n <= 1) return 1;
	return n * fact(n - 1);
}
`)
	InlineProgram(p, DefaultInlineOptions)
	f := fn(t, p, "fact")
	if r := run(t, f, []uint64{5}, ExecOptions{Program: p}); r.Ret != 120 {
		t.Fatalf("fact(5) = %d", r.Ret)
	}
}

func TestFuncString(t *testing.T) {
	p := build(t, `int f(int a) { return a + 1; }`)
	s := fn(t, p, "f").String()
	for _, want := range []string{"func f(", "add", "ret"} {
		if !strings.Contains(s, want) {
			t.Fatalf("printout missing %q:\n%s", want, s)
		}
	}
}

func TestUnsignedWraparound(t *testing.T) {
	p := build(t, `
unsigned int f(unsigned int x) { return x + 100; }
`)
	f := fn(t, p, "f")
	r := run(t, f, []uint64{0xFFFFFFFF}, ExecOptions{})
	if r.Ret != 99 {
		t.Fatalf("wraparound: got %d, want 99", r.Ret)
	}
}

func TestSignedOverflowFlagOnIR(t *testing.T) {
	p := build(t, `
int f(int x, unsigned int u) {
	int a = x + 100;
	unsigned int b = u + 100;
	return a + (int)b;
}
`)
	f := fn(t, p, "f")
	signedAdds, unsignedAdds := 0, 0
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Op == OpAdd {
				if v.Signed {
					signedAdds++
				} else {
					unsignedAdds++
				}
			}
		}
	}
	if signedAdds < 2 || unsignedAdds < 1 {
		t.Fatalf("signedness flags wrong: %d signed, %d unsigned\n%s", signedAdds, unsignedAdds, f)
	}
}

func TestPointerArithScaling(t *testing.T) {
	p := build(t, `
int f(int *p, int i) {
	int *q = p + i;
	return (int)(q - p);
}
`)
	f := fn(t, p, "f")
	// q - p must scale back down to element units.
	if r := run(t, f, []uint64{0x1000, 7}, ExecOptions{}); r.Ret != 7 {
		t.Fatalf("pointer diff = %d, want 7", r.Ret)
	}
	// There must be a mul by 4 feeding a ptradd.
	foundScale := false
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Op == OpPtrAdd {
				if v.Args[1].Op == OpMul {
					foundScale = true
				}
			}
		}
	}
	if !foundScale {
		t.Fatalf("no scaled pointer arithmetic:\n%s", f)
	}
}

func TestCompoundAssignAndIncrement(t *testing.T) {
	p := build(t, `
int f(int x) {
	x += 5;
	x <<= 1;
	x -= 3;
	x++;
	++x;
	return x--;
}
`)
	f := fn(t, p, "f")
	// ((x+5)<<1) - 3 + 2, returned before the final decrement.
	if r := run(t, f, []uint64{10}, ExecOptions{}); r.Ret != 29 {
		t.Fatalf("got %d, want 29", r.Ret)
	}
}

func TestGlobalVariables(t *testing.T) {
	p := build(t, `
int counter;
int bump(void) {
	counter = counter + 1;
	return counter;
}
`)
	f := fn(t, p, "bump")
	r := run(t, f, nil, ExecOptions{Globals: map[string]uint64{"counter": 41}})
	if r.Ret != 42 {
		t.Fatalf("got %d", r.Ret)
	}
}

func TestRemoveUnreachableBlocks(t *testing.T) {
	p := build(t, `
int f(int x) {
	return 1;
	return 2;
}
`)
	f := fn(t, p, "f")
	for _, b := range f.Blocks {
		if len(b.Preds) == 0 && b != f.Entry {
			t.Fatalf("unreachable block survived:\n%s", f)
		}
	}
}
