package ir

// Loop-invariant UB hoisting: natural loops are detected from the
// dominator tree plus the DFS back edges, and loop-invariant
// UB-carrying computations in the loop *header* are moved to the
// preheader, so one solver query covers all iterations. In the
// checker, a hoisted condition's block dominates every block of the
// loop, so its ∆ contribution switches from the guarded form
// Or(¬R'_d, ¬U_d) — where R'_d is a loop reachability that the encoder
// widens through back edges into fresh booleans — to the plain ¬U_d of
// eq. (5) for every query inside the loop. That is both sharper (the
// widened guard made the term nearly vacuous to the solver) and
// cheaper (the widened reachability's cone is never pulled into ∆).
//
// Safety argument, pinned by the exec-differential fuzz oracle
// (semantics-preserving, precision-sharpening — the same contract as
// mem2reg):
//
//   - Only values in the loop header are hoisted, and only when the
//     preheader's single successor is the header. The header executes
//     at least once whenever the preheader executes, so the hoisted
//     instruction runs iff it ran before; with loop-invariant operands
//     it computes the same value every iteration, so both the result
//     and the concrete UB predicate are unchanged. (For a `for` or
//     `while` loop the header holds only the exit test, so in practice
//     this fires on do-while-shaped loops, where the body top is the
//     back-edge target.)
//   - Operands must be defined outside the loop, themselves already
//     hoisted (processing in instruction order keeps chains legal), or
//     a header phi that is a loop-carried copy of one outside value —
//     the hoisted user then reads that value directly (loopPhiBypass).
//   - Memory operations, calls, comparisons, and width-1 values never
//     move: loads/stores are ordered, OpICmp placement determines the
//     checker's per-site reachability, and boolean chains feed the
//     sinks-only-to-folded-branches analysis.
//   - The block's report anchor signature is preserved: the anchor
//     instruction only moves when the next position-carrying value
//     reports the same position and origin, so blockPos/blockOrigin
//     cannot change.
//   - The CFG is untouched: no preheader is ever created, only an
//     existing one is used.

// HoistLoopInvariantUB hoists loop-invariant UB-carrying computations
// from loop headers into their preheaders. Returns the number of
// UB-condition-carrying values hoisted and the total number of values
// moved (pure non-UB feeders hoisted to keep a chain legal count only
// toward the latter — any move at all means the pass sharpened the
// encoding, which the differential fuzz oracle keys on).
func HoistLoopInvariantUB(f *Func, dom *DomTree) (ubTerms, moved int) {
	back := BackEdges(f)
	if len(back) == 0 {
		return 0, 0
	}
	// Natural loop per header: all blocks that reach a back edge's tail
	// without passing through the header.
	loops := map[*Block]map[*Block]bool{}
	for e := range back {
		tail, head := e[0], e[1]
		if !dom.Dominates(head, tail) {
			continue // irreducible edge: not a natural loop
		}
		body := loops[head]
		if body == nil {
			body = map[*Block]bool{head: true}
			loops[head] = body
		}
		var stack []*Block
		if !body[tail] {
			body[tail] = true
			stack = append(stack, tail)
		}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, p := range b.Preds {
				if !body[p] {
					body[p] = true
					stack = append(stack, p)
				}
			}
		}
	}

	for _, head := range f.Blocks { // deterministic loop order
		body := loops[head]
		if body == nil {
			continue
		}
		// Preheader: the unique predecessor outside the loop, and it
		// must fall through unconditionally so that entering it implies
		// entering the loop.
		var pre *Block
		for _, p := range head.Preds {
			if body[p] {
				continue
			}
			if pre != nil {
				pre = nil
				break
			}
			pre = p
		}
		if pre == nil || pre.Term == nil || pre.Term.Op != OpBr {
			continue
		}
		anchor := firstAnchor(head)
		move := func(v *Value, subst []*Value) {
			for i, x := range subst {
				if x != nil {
					v.Args[i] = x
				}
			}
			v.Block = pre
			pre.Instrs = append(pre.Instrs, v)
			moved++
			if gvnCarriesUBCond(v) {
				ubTerms++
			}
		}
		kept := head.Instrs[:0]
		for _, v := range head.Instrs {
			subst, inv := invariantArgs(v, head, body)
			if v == anchor || !hoistable(v) || !inv {
				kept = append(kept, v)
				continue
			}
			move(v, subst)
		}
		head.Instrs = kept
		// The anchor itself may move only when the block's report
		// anchor signature survives: the next position-carrying value
		// (or the terminator) must report the same position and origin,
		// so blockPos/blockOrigin are unchanged. Decided last so that
		// values moved above never depended on it.
		if anchor != nil && hoistable(anchor) {
			subst, inv := invariantArgs(anchor, head, body)
			var next *Value
			for _, v := range head.Values() {
				if v != anchor && v.Pos.IsValid() {
					next = v
					break
				}
			}
			if inv && next != nil && next.Pos == anchor.Pos && next.Origin == anchor.Origin {
				kept = head.Instrs[:0]
				for _, v := range head.Instrs {
					if v != anchor {
						kept = append(kept, v)
					}
				}
				head.Instrs = kept
				move(anchor, subst)
			}
		}
	}
	return ubTerms, moved
}

// hoistable: pure computations only, no comparisons or boolean chain
// members, and nothing whose concrete semantics are block-dependent.
// Division stays put — its trap behavior is architecture-dependent
// (§2.1) and moving the trap point would be observable. OpConst is
// included as a chain feeder: the frontend materializes literals next
// to their use, so an invariant `a * 3` in a header is blocked on the
// in-loop constant unless the constant moves first (in instruction
// order, so the chain stays def-before-use in the preheader).
func hoistable(v *Value) bool {
	switch v.Op {
	case OpConst,
		OpAdd, OpSub, OpMul, OpNeg,
		OpAnd, OpOr, OpXor, OpNot,
		OpShl, OpLShr, OpAShr,
		OpZExt, OpSExt, OpTrunc,
		OpPtrAdd, OpIndexAddr:
	default:
		return false
	}
	if v.Width <= 1 {
		return false
	}
	for _, a := range v.Args {
		if a.Width <= 1 {
			return false
		}
	}
	return true
}

// invariantArgs decides whether every operand of v is loop-invariant:
// defined outside the loop (values hoisted earlier already have their
// Block repointed at the preheader), or a header phi that merely
// carries a single outside value around the loop (see loopPhiBypass).
// For bypassed operands, subst holds the outside value the hoisted
// instruction must read instead — the phi stays in the header but is
// not computed yet when the preheader runs.
func invariantArgs(v *Value, head *Block, body map[*Block]bool) (subst []*Value, ok bool) {
	for i, a := range v.Args {
		if a.Block == nil || !body[a.Block] {
			continue
		}
		x := loopPhiBypass(a, head, body)
		if x == nil {
			return nil, false
		}
		if subst == nil {
			subst = make([]*Value, len(v.Args))
		}
		subst[i] = x
	}
	return subst, true
}

// loopPhiBypass: a phi in the loop header whose operands are all the
// phi itself or one single value defined outside the loop is a
// loop-carried copy of that value (the builder's trivial self-phis for
// variables the loop never writes survive mem2reg's alias forwarding in
// this shape). The phi always equals the outside value, so a hoisted
// user may read the value directly.
func loopPhiBypass(a *Value, head *Block, body map[*Block]bool) *Value {
	if a.Op != OpPhi || a.Block != head {
		return nil
	}
	var out *Value
	for _, x := range a.Args {
		if x == a {
			continue
		}
		if x.Block != nil && body[x.Block] {
			return nil
		}
		if out == nil {
			out = x
		} else if out != x {
			return nil
		}
	}
	return out
}
