package ir

import "testing"

// loopHeadOf returns the natural-loop header — the target of the
// function's single back edge — or nil.
func loopHeadOf(f *Func) *Block {
	for e := range BackEdges(f) {
		return e[1]
	}
	return nil
}

func TestGVNCrossBlockMergesDominatedDuplicate(t *testing.T) {
	src := `
int f(int a, int b) {
	int x = a & b;
	int y = 0;
	if (a) {
		int t = b ^ 3;
		y = (a & b) | t;
	}
	return x + y;
}
`
	execDiff(t, src, "f", [][]uint64{{0, 0}, {1, 2}, {7, 9}}, func(f *Func) {
		PromoteAllocas(f, ComputeDom(f))
		_, cross := GVN(f, ComputeDom(f))
		if cross != 1 {
			t.Errorf("cross-block hits = %d, want 1", cross)
		}
	})
	f := fn(t, build(t, src), "f")
	PromoteAllocas(f, ComputeDom(f))
	GVN(f, ComputeDom(f))
	// OpAnd carries no UB condition and the duplicate is not its
	// block's report anchor (the xor is), so it is deleted outright.
	if n := countOp(f, OpAnd); n != 1 {
		t.Errorf("%d ands remain, want 1 (dominated duplicate deleted)", n)
	}
}

// TestGVNCrossBlockKeepsUBCarrier: a signed multiply carries an
// overflow condition whose guarded ∆ form names its own block's
// reachability. The dominated duplicate's uses are redirected, but the
// instruction stays as a condition carrier.
func TestGVNCrossBlockKeepsUBCarrier(t *testing.T) {
	src := `
int f(int a, int b) {
	int x = a * b;
	int y = 0;
	if (a) {
		y = a * b;
	}
	return x + y;
}
`
	f := fn(t, build(t, src), "f")
	PromoteAllocas(f, ComputeDom(f))
	_, cross := GVN(f, ComputeDom(f))
	if cross != 1 {
		t.Fatalf("cross-block hits = %d, want 1", cross)
	}
	if n := countOp(f, OpMul); n != 2 {
		t.Errorf("%d muls remain, want 2 (UB-carrying victim kept as condition carrier)", n)
	}
	// The redirect must still have happened: no remaining use of the
	// victim mul.
	var muls []*Value
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Op == OpMul {
				muls = append(muls, v)
			}
		}
	}
	victim := muls[1]
	for _, b := range f.Blocks {
		for _, v := range b.Values() {
			for _, a := range v.Args {
				if a == victim {
					t.Errorf("use of the victim mul survives in %v", v.Op)
				}
			}
		}
	}
}

func TestHoistLoopInvariantFromDoWhile(t *testing.T) {
	src := `
int f(int a, int b, int n) {
	int s = 0;
	int i = 0;
	do {
		s = s ^ i;
		s = s + a * b;
		i = i + 1;
	} while (i < n);
	return s;
}
`
	execDiff(t, src, "f", [][]uint64{{0, 0, 0}, {2, 3, 1}, {2, 3, 5}}, func(f *Func) {
		dom := ComputeDom(f)
		PromoteAllocas(f, dom)
		if hoisted, _ := HoistLoopInvariantUB(f, dom); hoisted != 1 {
			t.Errorf("hoisted = %d, want 1 (the signed multiply)", hoisted)
		}
	})
	f := fn(t, build(t, src), "f")
	dom := ComputeDom(f)
	PromoteAllocas(f, dom)
	HoistLoopInvariantUB(f, dom)
	head := loopHeadOf(f)
	if head == nil {
		t.Fatal("no back edge found")
	}
	for _, v := range head.Instrs {
		if v.Op == OpMul {
			t.Error("a * b still in the loop header after hoisting")
		}
	}
	if n := countOp(f, OpMul); n != 1 {
		t.Errorf("%d muls total, want 1 (moved, not duplicated)", n)
	}
}

// TestHoistSkipsLoopVaryingValues: s + (a*b) depends on the loop-carried
// phi s and must stay; only the invariant multiply moves.
func TestHoistSkipsLoopVaryingValues(t *testing.T) {
	src := `
int f(int a, int b, int n) {
	int s = 0;
	int i = 0;
	do {
		s = s + a * b + i;
		i = i + 1;
	} while (i < n);
	return s;
}
`
	f := fn(t, build(t, src), "f")
	dom := ComputeDom(f)
	PromoteAllocas(f, dom)
	HoistLoopInvariantUB(f, dom)
	head := loopHeadOf(f)
	if head == nil {
		t.Fatal("no back edge found")
	}
	adds := 0
	for _, v := range head.Instrs {
		if v.Op == OpAdd {
			adds++
		}
	}
	if adds < 2 {
		t.Errorf("%d adds left in loop header, want >= 2 (s+… and i+1 are loop-varying)", adds)
	}
}

// TestHoistDoesNotFireOnForLoop: a for loop's back-edge target is the
// condition block, which holds only the exit test; nothing UB-carrying
// lives there and the body does not execute unconditionally.
func TestHoistDoesNotFireOnForLoop(t *testing.T) {
	src := `
int f(int a, int b, int n) {
	int s = 0;
	for (int i = 0; i < n; i++) {
		s = s + a * b;
	}
	return s;
}
`
	f := fn(t, build(t, src), "f")
	dom := ComputeDom(f)
	PromoteAllocas(f, dom)
	if _, moved := HoistLoopInvariantUB(f, dom); moved != 0 {
		t.Errorf("moved = %d, want 0 (for-loop body is conditional)", moved)
	}
}

// TestRunSSAPassesStatsCoverNewPasses drives the full stack over a
// function exercising SCCP, cross-block GVN, and hoisting at once and
// checks each pass surfaces its counter.
func TestRunSSAPassesStatsCoverNewPasses(t *testing.T) {
	src := `
int f(int a, int b, int n) {
	int k = 3;
	int y = 0;
	if (k < 5) {
		y = a & b;
	} else {
		y = 1;
	}
	int x = a & b;
	int s = 0;
	int i = 0;
	do {
		s = s ^ i;
		s = s + a * b;
		i = i + 1;
	} while (i < n);
	return x + y + s;
}
`
	var ps PassStats
	execDiff(t, src, "f",
		[][]uint64{{0, 0, 1}, {1, 2, 3}, {7, 9, 2}},
		func(f *Func) { ps = RunSSAPasses(f, ComputeDom(f)) })
	if ps.SCCPFoldedBranches == 0 {
		t.Errorf("SCCPFoldedBranches = 0, want > 0 (k < 5 is constant)")
	}
	if ps.SCCPUnreachableBlocks == 0 {
		t.Errorf("SCCPUnreachableBlocks = 0, want > 0 (else branch dead)")
	}
	if ps.HoistedUBTerms != 1 {
		t.Errorf("HoistedUBTerms = %d, want 1 (a * b in the do-while)", ps.HoistedUBTerms)
	}
}
