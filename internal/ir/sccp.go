package ir

// Sparse conditional constant propagation (Wegman–Zadeck) over the SSA
// def-use graph, with the standard ⊤/const/⊥ lattice and
// executable-edge tracking. The pass is the first analysis in the
// stack that is deliberately *stronger* than the bv rewrite layer's
// term-level constant folding: a loop-carried constant (x = 0;
// loop { x = x & 7; }) survives as a non-trivial phi that the encoder
// must widen to a fresh variable, while SCCP's meet over executable
// in-edges resolves it. Folding such a value to OpConst therefore
// *sharpens* the encoding — branch conditions fold, the reachability
// of dead regions folds to constant false, and the guarded ∆ terms of
// code behind them become vacuous — in exactly the way a real
// optimizing compiler would fold before STACK's algorithms run.
//
// Contract (enforced by FuzzSCCPDifferential and the sweep gate):
//
//   - C*-semantics preserving: every transmuted value is replaced by
//     the constant the concrete evaluator (exec.go) would compute, so
//     Exec on the rewritten function agrees with the original on all
//     inputs. Arithmetic folds with the same wrap-around masking as
//     exec.go and the bv layer's evalConstBinary.
//   - UB-carrying operations (signed add/sub/mul/neg) fold only when
//     the UB predicate is concretely false on the constants. In that
//     case the legacy pipeline's ¬U term folds to constant true and is
//     dropped from ∆ as vacuous, so removing the condition with the
//     instruction leaves the assumption byte-identical. An op whose UB
//     fires on constants keeps its instruction and its (falsified)
//     condition — the checker must see it.
//   - Division, remainder, and shifts never fold: their concrete
//     semantics are architecture-dependent (§2.1) and their UB
//     conditions must survive to the solver.
//   - Pointer-typed operations (OpPtrAdd, OpIndexAddr, OpGlobal,
//     OpString) never fold: addresses are machine-dependent.
//   - The CFG is never mutated. Unreachable blocks are only counted;
//     their reachability terms fold downstream of the transmuted
//     branch conditions, which is how constant-decidable queries die
//     before blasting.
//   - Transmutation is in place (v.Op = OpConst), preserving the
//     value's identity, instruction position, and source position, so
//     report anchors (firstAnchor, blockPos) are stable.
//   - Width-1 values never transmute: the simplification algorithm
//     creates one report site per OpICmp instruction and traces
//     boolean use chains, so folding a comparison would delete a site
//     the legacy pipeline queries. The comparison's *operands* still
//     fold, which lets the rewrite layer decide the site's encoding
//     exactly as it would have for rewrite-visible constants.
//   - Origin parity: the checker's deepOrigin walk skips OpConst
//     operands without reading their Origin, so transmuting a value
//     whose definition tree carries a macro origin would hide that
//     origin from report filtering. Such values are left untouched
//     (checked with the same bounded walk, sccpOrigin). The check
//     stays exact in one ordered pass: any operand already transmuted
//     passed its own guard at full depth, so its subtree is known
//     origin-free and skipping it loses nothing.

// SCCPStats reports what one SCCP invocation did. Sharpened counts the
// facts only the optimistic lattice iteration could prove — a fold
// whose operands were not all constant instructions already (phis and
// selects resolved over executable edges, and everything tainted by
// one), plus branch conditions whose constness rests on such a fact.
// When Sharpened is zero, every transmutation was of an operation over
// already-constant operands, which the bv rewrite layer folds to the
// very same interned term during encoding — so the pass provably
// changed no encoding and the checker's output is byte-identical to
// the legacy pipeline's. The differential fuzz oracle keys on this.
type SCCPStats struct {
	FoldedValues      int // values transmuted to OpConst
	FoldedBranches    int // CondBr conditions proven constant
	UnreachableBlocks int // blocks with no executable in-edge
	Sharpened         int // lattice-only facts (beyond rewrite folding)
}

type sccpLat uint8

const (
	latTop sccpLat = iota // no evidence yet
	latConst
	latBottom // overdefined
)

type sccpVal struct {
	state sccpLat
	val   uint64 // masked to the value's width
}

func sccpMeet(a, b sccpVal) sccpVal {
	switch {
	case a.state == latTop:
		return b
	case b.state == latTop:
		return a
	case a.state == latConst && b.state == latConst && a.val == b.val:
		return a
	}
	return sccpVal{state: latBottom}
}

// SCCP runs the analysis over f and transmutes proven-constant values
// in executable blocks to OpConst in place. The dominator tree stays
// valid (no CFG changes).
func SCCP(f *Func) SCCPStats {
	s := &sccpState{
		lat:      map[*Value]sccpVal{},
		edgeExec: map[[2]*Block]bool{},
		blkExec:  map[*Block]bool{},
		uses:     map[*Value][]*Value{},
	}
	for _, b := range f.Blocks {
		for _, v := range b.Values() {
			for _, a := range v.Args {
				s.uses[a] = append(s.uses[a], v)
			}
		}
	}
	// Parameters are opaque inputs and may not appear in any block's
	// instruction list; seed them overdefined so conditions that depend
	// on them reach ⊥ (and release both branch edges) rather than
	// resting at ⊤.
	for _, p := range f.Params {
		s.lat[p] = sccpVal{state: latBottom}
	}
	if f.Entry != nil {
		s.markBlock(f.Entry)
	}
	for len(s.flowWL) > 0 || len(s.ssaWL) > 0 {
		for len(s.ssaWL) > 0 {
			v := s.ssaWL[len(s.ssaWL)-1]
			s.ssaWL = s.ssaWL[:len(s.ssaWL)-1]
			if s.blkExec[v.Block] {
				s.visit(v)
			}
		}
		for len(s.flowWL) > 0 {
			e := s.flowWL[len(s.flowWL)-1]
			s.flowWL = s.flowWL[:len(s.flowWL)-1]
			s.markEdge(e[0], e[1])
		}
	}

	var st SCCPStats
	// sharp marks transmuted values whose constant was a lattice-only
	// fact; taint spreads through operands so that a branch condition
	// resting on one is recognized as sharpened too. Because the pass
	// transmutes in instruction order, an operand that is OpConst here
	// is either an original constant or an already-classified fold.
	sharp := map[*Value]bool{}
	latticeOnly := func(v *Value) bool {
		if v.Op == OpPhi || v.Op == OpSelect {
			return true // resolved via executable-edge pruning
		}
		for _, a := range v.Args {
			if a.Op != OpConst || sharp[a] {
				return true
			}
		}
		return false
	}
	for _, b := range f.Blocks {
		if !s.blkExec[b] {
			st.UnreachableBlocks++
			continue
		}
		for _, v := range b.Instrs {
			lv := s.lat[v]
			if lv.state != latConst || v.Op == OpConst || v.Width <= 1 {
				continue
			}
			if sccpOrigin(v, 4) != "" {
				continue // origin parity: see package comment
			}
			if latticeOnly(v) {
				sharp[v] = true
				st.Sharpened++
			}
			v.Op = OpConst
			v.Aux = int64(lv.val)
			v.Aux2 = 0
			v.AuxName = ""
			v.Signed = false
			v.Args = nil
			st.FoldedValues++
		}
		if b.Term != nil && b.Term.Op == OpCondBr {
			cond := b.Term.Args[0]
			if c := s.lat[cond]; c.state == latConst {
				st.FoldedBranches++
				// The condition itself never transmutes (width 1);
				// its constness is sharpening when it rests on a
				// lattice-only fact rather than on operands the
				// rewrite layer folds.
				if latticeOnly(cond) {
					st.Sharpened++
				}
			}
		}
	}
	return st
}

type sccpState struct {
	lat      map[*Value]sccpVal
	edgeExec map[[2]*Block]bool
	blkExec  map[*Block]bool
	uses     map[*Value][]*Value
	flowWL   [][2]*Block
	ssaWL    []*Value
}

// markEdge makes the CFG edge from→to executable, evaluating to's
// instructions on first visit and re-evaluating its phis otherwise
// (the new edge can lower a phi's meet).
func (s *sccpState) markEdge(from, to *Block) {
	key := [2]*Block{from, to}
	if s.edgeExec[key] {
		return
	}
	s.edgeExec[key] = true
	if s.blkExec[to] {
		for _, v := range to.Instrs {
			if v.Op == OpPhi {
				s.visit(v)
			}
		}
		return
	}
	s.markBlock(to)
}

func (s *sccpState) markBlock(b *Block) {
	if s.blkExec[b] {
		return
	}
	s.blkExec[b] = true
	for _, v := range b.Instrs {
		s.visit(v)
	}
	s.visitTerm(b)
}

// lower moves v's lattice value down to nv if it changed, waking v's
// users and, when a terminator consumes v, the terminator's block.
func (s *sccpState) lower(v *Value, nv sccpVal) {
	old := s.lat[v]
	if old.state == nv.state && (nv.state != latConst || old.val == nv.val) {
		return
	}
	if old.state == latBottom || nv.state == latTop {
		return // monotone: never climb back up
	}
	if old.state == latConst && nv.state == latConst {
		nv = sccpVal{state: latBottom} // disagreeing constants
	}
	s.lat[v] = nv
	for _, u := range s.uses[v] {
		if u.IsTerminator() {
			if s.blkExec[u.Block] {
				s.visitTerm(u.Block)
			}
			continue
		}
		s.ssaWL = append(s.ssaWL, u)
	}
}

func (s *sccpState) visitTerm(b *Block) {
	t := b.Term
	if t == nil {
		return
	}
	switch t.Op {
	case OpBr:
		s.flowWL = append(s.flowWL, [2]*Block{b, b.Succs[0]})
	case OpCondBr:
		c := s.lat[t.Args[0]]
		switch c.state {
		case latConst:
			if c.val != 0 {
				s.flowWL = append(s.flowWL, [2]*Block{b, b.Succs[0]})
			} else {
				s.flowWL = append(s.flowWL, [2]*Block{b, b.Succs[1]})
			}
		case latBottom:
			s.flowWL = append(s.flowWL, [2]*Block{b, b.Succs[0]}, [2]*Block{b, b.Succs[1]})
		}
		// latTop: no evidence yet; the terminator re-runs when the
		// condition's lattice value lowers.
	}
}

func (s *sccpState) visit(v *Value) {
	s.lower(v, s.eval(v))
}

func sccpMask(x uint64, w int) uint64 {
	if w >= 64 {
		return x
	}
	return x & (1<<uint(w) - 1)
}

func sccpSignBit(x uint64, w int) bool {
	return x&(1<<uint(w-1)) != 0
}

func sccpSExt(x uint64, w int) int64 {
	if w >= 64 {
		return int64(x)
	}
	if sccpSignBit(x, w) {
		return int64(x | ^uint64(0)<<uint(w))
	}
	return int64(x)
}

func (s *sccpState) eval(v *Value) sccpVal {
	bottom := sccpVal{state: latBottom}
	argLat := func(i int) sccpVal { return s.lat[v.Args[i]] }
	w := v.Width

	switch v.Op {
	case OpConst:
		return sccpVal{state: latConst, val: sccpMask(uint64(v.Aux), w)}

	case OpPhi:
		r := sccpVal{state: latTop}
		for i, p := range v.Block.Preds {
			if !s.edgeExec[[2]*Block{p, v.Block}] {
				continue
			}
			r = sccpMeet(r, argLat(i))
			if r.state == latBottom {
				break
			}
		}
		return r

	case OpSelect:
		c := argLat(0)
		switch c.state {
		case latTop:
			return sccpVal{state: latTop}
		case latConst:
			if c.val != 0 {
				return argLat(1)
			}
			return argLat(2)
		}
		return sccpMeet(argLat(1), argLat(2))
	}

	// Remaining folds need every operand constant.
	for i := range v.Args {
		switch argLat(i).state {
		case latTop:
			return sccpVal{state: latTop}
		case latBottom:
			return bottom
		}
	}

	konst := func(x uint64) sccpVal {
		return sccpVal{state: latConst, val: sccpMask(x, w)}
	}

	switch v.Op {
	case OpAdd, OpSub, OpMul, OpNeg:
		x := sccpMask(argLat(0).val, w)
		y := uint64(0)
		if len(v.Args) > 1 {
			y = sccpMask(argLat(1).val, w)
		}
		var raw uint64
		switch v.Op {
		case OpAdd:
			raw = x + y
		case OpSub:
			raw = x - y
		case OpNeg:
			raw = -x
		case OpMul:
			raw = x * y
		}
		if v.Signed && sccpSignedOverflows(v.Op, x, y, raw, w) {
			return bottom // UB fires: the checker must see the op
		}
		return konst(raw)

	case OpAnd:
		return konst(argLat(0).val & argLat(1).val)
	case OpOr:
		return konst(argLat(0).val | argLat(1).val)
	case OpXor:
		return konst(argLat(0).val ^ argLat(1).val)
	case OpNot:
		return konst(^argLat(0).val)

	case OpZExt:
		return konst(sccpMask(argLat(0).val, v.Args[0].Width))
	case OpSExt:
		return konst(uint64(sccpSExt(argLat(0).val, v.Args[0].Width)))
	case OpTrunc:
		return konst(argLat(0).val)

	case OpICmp:
		aw := v.Args[0].Width
		x, y := sccpMask(argLat(0).val, aw), sccpMask(argLat(1).val, aw)
		var t bool
		switch v.Pred() {
		case CmpEq:
			t = x == y
		case CmpNe:
			t = x != y
		case CmpULT:
			t = x < y
		case CmpULE:
			t = x <= y
		case CmpSLT:
			t = sccpSExt(x, aw) < sccpSExt(y, aw)
		case CmpSLE:
			t = sccpSExt(x, aw) <= sccpSExt(y, aw)
		default:
			return bottom
		}
		if t {
			return sccpVal{state: latConst, val: 1}
		}
		return sccpVal{state: latConst, val: 0}
	}

	// Loads, calls, params, globals, unknowns, pointer arithmetic,
	// division/remainder, shifts: overdefined by design (see the
	// contract above).
	return bottom
}

// sccpSignedOverflows reports whether the signed operation op on
// masked constant operands x, y overflows width w — the Fig. 3
// signed-overflow UB predicate, evaluated concretely.
func sccpSignedOverflows(op Op, x, y, raw uint64, w int) bool {
	wrapped := sccpMask(raw, w)
	switch op {
	case OpAdd:
		sx, sy := sccpSignBit(x, w), sccpSignBit(y, w)
		return sx == sy && sccpSignBit(wrapped, w) != sx
	case OpSub:
		sx, sy := sccpSignBit(x, w), sccpSignBit(y, w)
		return sx != sy && sccpSignBit(wrapped, w) != sx
	case OpNeg:
		return x == sccpMask(1<<uint(w-1), w) && x != 0
	case OpMul:
		sx, sy := sccpSExt(x, w), sccpSExt(y, w)
		if sx == 0 || sy == 0 {
			return false
		}
		if sx == -1 && sy == -1<<63 {
			return true // -MinInt64 overflows int64 (and any narrower width)
		}
		prod := sx * sy
		if prod/sx != sy { // overflowed 64 bits
			return true
		}
		return sccpSExt(sccpMask(uint64(prod), w), w) != prod
	}
	return false
}

// sccpOrigin mirrors the checker's deepOrigin walk (bounded depth,
// OpConst operands skipped). A value is only transmuted when this
// returns "", so the origins report filtering can see through argument
// walks are unchanged by the pass.
func sccpOrigin(v *Value, depth int) string {
	if v.Origin != "" {
		return v.Origin
	}
	if depth == 0 {
		return ""
	}
	for _, a := range v.Args {
		if a.Op == OpConst {
			continue
		}
		if o := sccpOrigin(a, depth-1); o != "" {
			return o
		}
	}
	return ""
}
