package ir

import "testing"

// sccpAfterPromote runs mem2reg then SCCP, the order RunSSAPasses
// uses; SCCP only sees through memory that promotion removed.
func sccpAfterPromote(t *testing.T) (func(*Func), *SCCPStats) {
	t.Helper()
	var stats SCCPStats
	return func(f *Func) {
		PromoteAllocas(f, ComputeDom(f))
		stats = SCCP(f)
	}, &stats
}

func TestSCCPFoldsBranchAndKillsDeadRegion(t *testing.T) {
	src := `
int f(int a) {
	int x = 3;
	int y;
	if (x < 5) {
		y = 10;
	} else {
		y = a;
	}
	return y + x;
}
`
	tr, stats := sccpAfterPromote(t)
	execDiff(t, src, "f", [][]uint64{{0}, {7}, {100}}, tr)
	if stats.FoldedBranches == 0 {
		t.Errorf("FoldedBranches = 0, want > 0 (3 < 5 is constant)")
	}
	if stats.UnreachableBlocks == 0 {
		t.Errorf("UnreachableBlocks = 0, want > 0 (the else branch is dead)")
	}
	// The phi at the join only meets executable in-edges, so y folds to
	// 10 and the whole return value to 13.
	if stats.FoldedValues == 0 {
		t.Errorf("FoldedValues = 0, want > 0")
	}
}

// TestSCCPLoopCarriedConstant: `mode` is a genuinely loop-carried
// constant — the builder's trivial-phi removal cannot see that
// phi(0, mode&7) is 0, but SCCP's optimistic iteration can. This is
// the one shape where SCCP beats encoding-level constant folding.
func TestSCCPLoopCarriedConstant(t *testing.T) {
	src := `
int f(int n) {
	int mode = 0;
	int i = 0;
	do {
		mode = mode & 7;
		i = i + 1;
	} while (i < n);
	return mode;
}
`
	tr, stats := sccpAfterPromote(t)
	execDiff(t, src, "f", [][]uint64{{0}, {1}, {5}}, tr)
	if stats.FoldedValues == 0 {
		t.Errorf("FoldedValues = 0, want > 0 (mode is constant 0 through the loop)")
	}
	f := fn(t, build(t, src), "f")
	PromoteAllocas(f, ComputeDom(f))
	SCCP(f)
	if n := countOp(f, OpAnd); n != 0 {
		t.Errorf("%d ands remain, want 0 (mode & 7 folds to 0)", n)
	}
}

// TestSCCPNeverFoldsSignedOverflow: INT_MAX + 1 is a concrete signed
// overflow. Folding it would erase the UB condition the checker must
// report, so the add stays and its lattice value is ⊥.
func TestSCCPNeverFoldsSignedOverflow(t *testing.T) {
	src := `
int f(int a) {
	int x = 2147483647;
	int y = x + 1;
	return y < a;
}
`
	f := fn(t, build(t, src), "f")
	PromoteAllocas(f, ComputeDom(f))
	SCCP(f)
	if n := countOp(f, OpAdd); n != 1 {
		t.Errorf("%d adds remain, want 1 (overflowing add must not fold)", n)
	}
}

func TestSCCPFoldsNonOverflowingSignedArith(t *testing.T) {
	src := `
int f(int a) {
	int x = 5;
	int y = x + 1;
	return y + a;
}
`
	f := fn(t, build(t, src), "f")
	PromoteAllocas(f, ComputeDom(f))
	st := SCCP(f)
	// 5 + 1 folds; y + a does not (a is ⊥).
	if n := countOp(f, OpAdd); n != 1 {
		t.Errorf("%d adds remain, want 1", n)
	}
	if st.FoldedValues == 0 {
		t.Errorf("FoldedValues = 0, want > 0")
	}
}

// TestSCCPNeverFoldsDivision: division traps are architecture-defined
// (§2.1); even a constant divisor computation keeps its instruction so
// the trap point and its UB condition survive.
func TestSCCPNeverFoldsDivision(t *testing.T) {
	src := `
int f(int a) {
	int x = 12;
	int y = 4;
	return a + x / y;
}
`
	f := fn(t, build(t, src), "f")
	PromoteAllocas(f, ComputeDom(f))
	SCCP(f)
	if n := countOp(f, OpSDiv); n != 1 {
		t.Errorf("%d sdivs remain, want 1 (division never folds)", n)
	}
}

// TestSCCPOriginParity: the checker's deepOrigin walk skips OpConst
// operands without reading their Origin, so a value whose definition
// tree carries a macro origin must not transmute — folding it would
// hide the origin from report filtering. A value carrying the origin
// itself is equally off-limits.
func TestSCCPOriginParity(t *testing.T) {
	src := `
int f(int n) {
	int mode = 0;
	int i = 0;
	do {
		mode = mode & 7;
		i = i + 1;
	} while (i < n);
	return mode + n;
}
`
	f := fn(t, build(t, src), "f")
	PromoteAllocas(f, ComputeDom(f))
	var and *Value
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Op == OpAnd {
				and = v
			}
		}
	}
	if and == nil {
		t.Fatal("test setup: no and")
	}
	// The loop-carried phi feeding mode & 7 carries a macro origin.
	var phiArg *Value
	for _, a := range and.Args {
		if a.Op == OpPhi {
			phiArg = a
		}
	}
	if phiArg == nil {
		t.Fatal("test setup: and has no phi operand")
	}
	phiArg.Origin = "MACRO_X"
	SCCP(f)
	if phiArg.Op == OpConst {
		t.Error("origin-carrying phi transmuted; deepOrigin walks would lose MACRO_X")
	}
	if and.Op == OpConst {
		t.Error("value over an origin-carrying operand transmuted; deepOrigin walks would lose MACRO_X")
	}
}
