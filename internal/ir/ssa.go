package ir

// Pruned-SSA construction on top of the dominator tree: dominance
// frontiers, phi placement restricted to blocks where the promoted
// variable is live-in, and mem2reg promotion of non-escaping allocas.
//
// The on-the-fly builder (builder.go) already produces SSA for scalar
// locals, but address-taken scalars are demoted to memory: their
// "alloca" is an OpUnknown value named "addrof.<var>" and every access
// goes through explicit OpLoad/OpStore. The checker encodes each such
// load as a distinct opaque solver variable, so structurally identical
// computations downstream of two loads of the same variable never
// share terms. PromoteAllocas rewrites those loads back into SSA
// values, which is what lets the bv builder hash-cons whole-function
// value graphs.
//
// Semantics are judged against the concrete C* evaluator (exec.go):
// memory in C* is zero-initialized, so a load with no dominating store
// reads 0, and promotion materializes that ⊥ value as const 0.

import "strings"

// DominanceFrontier returns DF(b) for every block: the blocks w such
// that b dominates a predecessor of w but not w itself (Cooper,
// Harvey, Kennedy). Phi placement for a definition in b needs exactly
// the iterated frontier of b.
func (d *DomTree) DominanceFrontier() map[*Block][]*Block {
	df := make(map[*Block][]*Block, len(d.rpo))
	seen := make(map[[2]*Block]bool)
	for _, b := range d.rpo {
		if len(b.Preds) < 2 {
			continue
		}
		for _, p := range b.Preds {
			if _, ok := d.idom[p]; !ok {
				continue // unreachable predecessor
			}
			for runner := p; runner != d.idom[b]; runner = d.idom[runner] {
				if !seen[[2]*Block{runner, b}] {
					seen[[2]*Block{runner, b}] = true
					df[runner] = append(df[runner], b)
				}
				if runner == d.idom[runner] {
					break // entry
				}
			}
		}
	}
	return df
}

// SSAStats counts what mem2reg did to one function.
type SSAStats struct {
	PromotedAllocas int // allocas fully rewritten into SSA values
	PlacedPhis      int // phis inserted by pruned placement
	RemovedLoads    int // loads replaced by reaching definitions
	RemovedStores   int // stores deleted with their alloca
}

// allocaInfo is the per-alloca analysis state of PromoteAllocas.
type allocaInfo struct {
	addr    *Value
	width   int
	loads   []*Value
	stores  []*Value
	aliases []*Value // phis that always carry this alloca's address
}

// isAlloca reports whether v is a builder-emitted abstract stack slot.
func isAlloca(v *Value) bool {
	return v.Op == OpUnknown && strings.HasPrefix(v.AuxName, "addrof.")
}

// PromoteAllocas performs mem2reg over f: every alloca whose address
// is used only as the address operand of loads and stores (it never
// escapes into a call, a store's value operand, pointer arithmetic, or
// a comparison) is rewritten into SSA form — loads become the reaching
// definition, phis are placed on the iterated dominance frontier of
// the store blocks pruned to blocks where the variable is live-in, and
// the loads, stores, and the alloca itself are deleted. dom must be
// f's current dominator tree; the CFG itself (blocks and edges) is not
// changed, so dom remains valid afterwards.
func PromoteAllocas(f *Func, dom *DomTree) SSAStats {
	var stats SSAStats
	cands := collectAllocas(f)
	if len(cands) == 0 {
		return stats
	}
	df := dom.DominanceFrontier()
	children := domChildren(f, dom)
	for _, info := range cands {
		promoteOne(f, dom, df, children, info, &stats)
	}
	return stats
}

// collectAllocas finds promotable allocas: address values used only as
// Load/Store address operands, with one consistent access width.
func collectAllocas(f *Func) []*allocaInfo {
	infos := map[*Value]*allocaInfo{}
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if isAlloca(v) {
				infos[v] = &allocaInfo{addr: v}
			}
		}
	}
	if len(infos) == 0 {
		return nil
	}
	// The on-the-fly builder threads a pointer variable's value through
	// block-boundary phis, so the address of a promotable alloca often
	// reaches its loads via a chain of phis. A phi whose every argument
	// (ignoring itself — loop-carried pointers self-reference) carries
	// the same alloca's address is an alias of that address; the alias
	// closure grows to a fixed point, pessimistically, so a phi mixing
	// an alloca address with anything else never joins and instead
	// escapes the alloca below.
	aliasOf := map[*Value]*allocaInfo{}
	for addr, info := range infos {
		aliasOf[addr] = info
	}
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			for _, v := range b.Instrs {
				if v.Op != OpPhi || aliasOf[v] != nil {
					continue
				}
				var target *allocaInfo
				ok := true
				for _, a := range v.Args {
					if a == nil || a == v {
						continue
					}
					ai := aliasOf[a]
					if ai == nil || (target != nil && target != ai) {
						ok = false
						break
					}
					target = ai
				}
				if ok && target != nil {
					aliasOf[v] = target
					target.aliases = append(target.aliases, v)
					changed = true
				}
			}
		}
	}
	escaped := map[*Value]bool{}
	for _, b := range f.Blocks {
		for _, v := range b.Values() {
			for i, a := range v.Args {
				info := aliasOf[a]
				if info == nil {
					continue
				}
				switch {
				case v.Op == OpLoad && i == 0:
					info.loads = append(info.loads, v)
				case v.Op == OpStore && i == 0:
					info.stores = append(info.stores, v)
				case aliasOf[v] == info:
					// An alias phi consuming the address (or another
					// alias of it); deleted with the alloca on commit.
				default:
					// Call argument, store value operand, pointer
					// arithmetic, comparison, non-alias phi, ...: the
					// address is observable, so memory stays
					// authoritative.
					escaped[info.addr] = true
				}
			}
		}
	}
	var out []*allocaInfo
	for _, info := range infos {
		if escaped[info.addr] {
			continue
		}
		w := 0
		ok := true
		for _, l := range info.loads {
			if w == 0 {
				w = l.Width
			} else if l.Width != w {
				ok = false
			}
		}
		for _, s := range info.stores {
			sw := s.Args[1].Width
			if w == 0 {
				w = sw
			} else if sw != w {
				ok = false
			}
		}
		if !ok || w == 0 {
			continue // mixed widths, or an alloca nothing touches
		}
		info.width = w
		out = append(out, info)
	}
	// Deterministic processing order (map iteration above is not).
	sortAllocas(out)
	return out
}

func sortAllocas(infos []*allocaInfo) {
	for i := 1; i < len(infos); i++ {
		for j := i; j > 0 && infos[j].addr.ID < infos[j-1].addr.ID; j-- {
			infos[j], infos[j-1] = infos[j-1], infos[j]
		}
	}
}

// domChildren builds the dominator tree's child lists.
func domChildren(f *Func, dom *DomTree) map[*Block][]*Block {
	children := make(map[*Block][]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		if p := dom.IDom(b); p != nil && p != b {
			children[p] = append(children[p], b)
		}
	}
	return children
}

// addrSet returns every value denoting this alloca's address: the
// alloca itself plus its alias phis.
func (info *allocaInfo) addrSet() map[*Value]bool {
	s := make(map[*Value]bool, 1+len(info.aliases))
	s[info.addr] = true
	for _, a := range info.aliases {
		s[a] = true
	}
	return s
}

// liveIn computes the blocks where the alloca is live on entry: a path
// from the block's start reaches a load with no store in between. Phi
// placement is pruned to this set.
func liveIn(info *allocaInfo, isAddr map[*Value]bool) map[*Block]bool {
	hasStore := map[*Block]bool{}
	for _, s := range info.stores {
		hasStore[s.Block] = true
	}
	// Upward-exposed loads: a load not preceded by a store in its own
	// block.
	live := map[*Block]bool{}
	var wl []*Block
	for _, l := range info.loads {
		b := l.Block
		exposed := true
		for _, v := range b.Instrs {
			if v == l {
				break
			}
			if v.Op == OpStore && isAddr[v.Args[0]] {
				exposed = false
				break
			}
		}
		if exposed && !live[b] {
			live[b] = true
			wl = append(wl, b)
		}
	}
	for len(wl) > 0 {
		b := wl[len(wl)-1]
		wl = wl[:len(wl)-1]
		for _, p := range b.Preds {
			if !hasStore[p] && !live[p] {
				live[p] = true
				wl = append(wl, p)
			}
		}
	}
	return live
}

// promoteOne rewrites a single alloca into SSA form.
func promoteOne(f *Func, dom *DomTree, df map[*Block][]*Block, children map[*Block][]*Block, info *allocaInfo, stats *SSAStats) {
	isAddr := info.addrSet()
	live := liveIn(info, isAddr)

	// Pruned phi placement: iterated dominance frontier of the store
	// blocks, restricted to live-in blocks.
	phiAt := map[*Block]*Value{}
	isDef := map[*Block]bool{}
	var wl []*Block
	for _, s := range info.stores {
		if !isDef[s.Block] {
			isDef[s.Block] = true
			wl = append(wl, s.Block)
		}
	}
	for len(wl) > 0 {
		b := wl[len(wl)-1]
		wl = wl[:len(wl)-1]
		for _, w := range df[b] {
			if phiAt[w] != nil || !live[w] {
				continue
			}
			phi := &Value{
				ID:    f.NewValueID(),
				Op:    OpPhi,
				Width: info.width,
				Args:  make([]*Value, len(w.Preds)),
				Block: w,
			}
			phiAt[w] = phi
			if !isDef[w] {
				isDef[w] = true
				wl = append(wl, w)
			}
		}
	}

	// Rename walk over the dominator tree. nil means ⊥ (no store on
	// any path yet); C* memory is zero-initialized, so ⊥ reads as 0.
	replacement := map[*Value]*Value{} // load -> reaching definition
	resolve := func(v *Value) *Value {
		for {
			r, ok := replacement[v]
			if !ok {
				return v
			}
			v = r
		}
	}
	var undef *Value // lazily materialized const 0 in the entry block
	materializeUndef := func() *Value {
		if undef == nil {
			undef = &Value{
				ID:    f.NewValueID(),
				Op:    OpConst,
				Width: info.width,
				Aux:   0,
				Block: f.Entry,
			}
			// Prepend: the entry has no phis and dominates every use.
			// No source position, so report anchoring (which skips
			// position-less values) is unaffected.
			f.Entry.Instrs = append([]*Value{undef}, f.Entry.Instrs...)
		}
		return undef
	}
	var walk func(b *Block, cur *Value)
	walk = func(b *Block, cur *Value) {
		if phi := phiAt[b]; phi != nil {
			cur = phi
		}
		for _, v := range b.Instrs {
			switch {
			case v.Op == OpLoad && isAddr[v.Args[0]]:
				def := cur
				if def == nil {
					def = materializeUndef()
				}
				replacement[v] = def
			case v.Op == OpStore && isAddr[v.Args[0]]:
				cur = resolve(v.Args[1])
			}
		}
		for _, s := range b.Succs {
			phi := phiAt[s]
			if phi == nil {
				continue
			}
			def := cur
			if def == nil {
				def = materializeUndef()
			}
			for i, p := range s.Preds {
				if p == b {
					phi.Args[i] = def
				}
			}
		}
		for _, c := range children[b] {
			walk(c, cur)
		}
	}
	if f.Entry != nil {
		walk(f.Entry, nil)
	}

	// Insert the phis (kept out of the instruction stream during the
	// walk so the load/store scan above sees the original block
	// layout). Phis go at the head of the block's phi group.
	for b, phi := range phiAt {
		b.Instrs = append([]*Value{phi}, b.Instrs...)
	}

	// Commit: rewrite every use of a promoted load, then delete the
	// loads, stores, the alloca, and its alias phis (whose only uses
	// are those loads, stores, and each other).
	dead := map[*Value]bool{}
	for a := range isAddr {
		dead[a] = true
	}
	for _, l := range info.loads {
		dead[l] = true
	}
	for _, s := range info.stores {
		dead[s] = true
	}
	for _, b := range f.Blocks {
		for _, v := range b.Values() {
			if dead[v] {
				continue
			}
			for i, a := range v.Args {
				v.Args[i] = resolve(a)
			}
		}
	}
	for _, phi := range phiAt {
		for i, a := range phi.Args {
			if a != nil {
				phi.Args[i] = resolve(a)
			}
		}
	}
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, v := range b.Instrs {
			if !dead[v] {
				kept = append(kept, v)
			}
		}
		b.Instrs = kept
	}

	removeTrivialPromotedPhis(f, phiAt)

	stats.PromotedAllocas++
	stats.PlacedPhis += len(phiAt)
	stats.RemovedLoads += len(info.loads)
	stats.RemovedStores += len(info.stores)
}

// removeTrivialPromotedPhis deletes phis from phiAt whose operands are
// all the same value (or the phi itself), redirecting their uses, and
// iterates to a fixed point: removing one trivial phi can make
// another one trivial.
func removeTrivialPromotedPhis(f *Func, phiAt map[*Block]*Value) {
	redirect := map[*Value]*Value{}
	resolve := func(v *Value) *Value {
		for {
			r, ok := redirect[v]
			if !ok {
				return v
			}
			v = r
		}
	}
	for changed := true; changed; {
		changed = false
		for b, phi := range phiAt {
			if phi == nil {
				continue
			}
			var same *Value
			trivial := true
			for _, a := range phi.Args {
				if a == nil {
					continue
				}
				a = resolve(a)
				if a == phi || a == same {
					continue
				}
				if same != nil {
					trivial = false
					break
				}
				same = a
			}
			if !trivial || same == nil {
				continue
			}
			redirect[phi] = same
			phiAt[b] = nil
			changed = true
		}
	}
	if len(redirect) == 0 {
		return
	}
	deadPhi := map[*Value]bool{}
	for phi := range redirect {
		deadPhi[phi] = true
	}
	for _, b := range f.Blocks {
		for _, v := range b.Values() {
			if deadPhi[v] {
				continue
			}
			for i, a := range v.Args {
				if a != nil {
					v.Args[i] = resolve(a)
				}
			}
		}
		kept := b.Instrs[:0]
		for _, v := range b.Instrs {
			if !deadPhi[v] {
				kept = append(kept, v)
			}
		}
		b.Instrs = kept
	}
}
