package ir

import "testing"

// countOp counts instructions (not terminators) with the given op.
func countOp(f *Func, op Op) int {
	n := 0
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Op == op {
				n++
			}
		}
	}
	return n
}

func countAllocas(f *Func) int {
	n := 0
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if isAlloca(v) {
				n++
			}
		}
	}
	return n
}

// execDiff builds src twice, runs transform on one copy, and executes
// both over every row of args, requiring identical results. Step
// counts are deliberately not compared — the transforms exist to
// shorten execution.
func execDiff(t *testing.T, src, name string, args [][]uint64, transform func(*Func)) {
	t.Helper()
	ref := fn(t, build(t, src), name)
	opt := fn(t, build(t, src), name)
	transform(opt)
	for _, row := range args {
		want := run(t, ref, row, ExecOptions{})
		got := run(t, opt, row, ExecOptions{})
		if got.Ret != want.Ret || got.Returned != want.Returned {
			t.Errorf("%s(%v): optimized = (%d, %v), reference = (%d, %v)",
				name, row, got.Ret, got.Returned, want.Ret, want.Returned)
		}
	}
}

func promote(t *testing.T) (func(*Func), *SSAStats) {
	t.Helper()
	var stats SSAStats
	return func(f *Func) {
		stats = PromoteAllocas(f, ComputeDom(f))
	}, &stats
}

func TestPromoteStraightLine(t *testing.T) {
	src := `
int f(int a) {
	int x = a;
	int *p = &x;
	*p = *p + 1;
	return x + *p;
}
`
	tr, stats := promote(t)
	execDiff(t, src, "f", [][]uint64{{0}, {1}, {7}, {41}}, tr)
	if stats.PromotedAllocas != 1 {
		t.Errorf("PromotedAllocas = %d, want 1", stats.PromotedAllocas)
	}
	f := fn(t, build(t, src), "f")
	PromoteAllocas(f, ComputeDom(f))
	if n := countAllocas(f); n != 0 {
		t.Errorf("%d allocas survived promotion", n)
	}
	if n := countOp(f, OpLoad) + countOp(f, OpStore); n != 0 {
		t.Errorf("%d loads/stores survived promotion", n)
	}
}

func TestPromoteBranchPlacesPhi(t *testing.T) {
	src := `
int f(int a) {
	int x = 0;
	int *p = &x;
	if (a) {
		*p = 1;
	}
	return *p;
}
`
	tr, stats := promote(t)
	execDiff(t, src, "f", [][]uint64{{0}, {1}, {2}}, tr)
	if stats.PromotedAllocas != 1 || stats.PlacedPhis != 1 {
		t.Errorf("stats = %+v, want 1 promoted alloca and 1 phi at the join", *stats)
	}
}

func TestPromoteLoop(t *testing.T) {
	src := `
int f(int n) {
	int s = 0;
	int *p = &s;
	for (int i = 0; i < n; i++)
		*p = *p + i;
	return *p;
}
`
	tr, stats := promote(t)
	execDiff(t, src, "f", [][]uint64{{0}, {1}, {5}, {10}}, tr)
	if stats.PromotedAllocas != 1 {
		t.Errorf("PromotedAllocas = %d, want 1", stats.PromotedAllocas)
	}
	if stats.PlacedPhis == 0 {
		t.Error("a loop-carried promoted variable needs a header phi")
	}
}

// TestPromoteUninitReadsZero checks the ⊥ rule: a load with no
// reaching store materializes as const 0, matching the C* evaluator's
// zero-initialized memory.
func TestPromoteUninitReadsZero(t *testing.T) {
	src := `
int f(int a) {
	int x;
	int *p = &x;
	if (a) *p = 7;
	return *p;
}
`
	tr, _ := promote(t)
	execDiff(t, src, "f", [][]uint64{{0}, {1}}, tr)
	f := fn(t, build(t, src), "f")
	PromoteAllocas(f, ComputeDom(f))
	if r := run(t, f, []uint64{0}, ExecOptions{}); int32(r.Ret) != 0 {
		t.Errorf("uninitialized read after promotion = %d, want 0", int32(r.Ret))
	}
	if r := run(t, f, []uint64{1}, ExecOptions{}); int32(r.Ret) != 7 {
		t.Errorf("stored-path read after promotion = %d, want 7", int32(r.Ret))
	}
}

// TestPromoteEscapedAddress: an address passed to a call is observable,
// so the alloca must stay in memory form.
func TestPromoteEscapedAddress(t *testing.T) {
	src := `
int g(int *p) { return *p; }
int f() {
	int x = 3;
	return g(&x);
}
`
	f := fn(t, build(t, src), "f")
	stats := PromoteAllocas(f, ComputeDom(f))
	if stats.PromotedAllocas != 0 {
		t.Errorf("PromotedAllocas = %d, want 0 (address escapes into the call)", stats.PromotedAllocas)
	}
	if countAllocas(f) != 1 || countOp(f, OpStore) == 0 {
		t.Error("the escaped alloca and its store must survive")
	}
}

// TestPromoteArrayNotPromoted: array slots are addressed through
// OpIndexAddr, which counts as an escape of the base address.
func TestPromoteArrayNotPromoted(t *testing.T) {
	src := `
int f(int i) {
	int a[3];
	a[0] = 1;
	a[1] = 2;
	a[2] = 4;
	return a[i];
}
`
	tr, stats := promote(t)
	execDiff(t, src, "f", [][]uint64{{0}, {1}, {2}}, tr)
	if stats.PromotedAllocas != 0 {
		t.Errorf("PromotedAllocas = %d, want 0 for an indexed array", stats.PromotedAllocas)
	}
}

// TestPromoteTwoAllocas: independent address-taken scalars promote
// independently in one pass.
func TestPromoteTwoAllocas(t *testing.T) {
	src := `
int f(int a, int b) {
	int x = a;
	int y = b;
	int *p = &x;
	int *q = &y;
	*p = *p + *q;
	*q = *p - *q;
	return *p * 10 + *q;
}
`
	tr, stats := promote(t)
	execDiff(t, src, "f", [][]uint64{{1, 2}, {5, 3}, {0, 0}}, tr)
	if stats.PromotedAllocas != 2 {
		t.Errorf("PromotedAllocas = %d, want 2", stats.PromotedAllocas)
	}
}
