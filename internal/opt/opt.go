// Package opt implements a classic scalar optimizer over the IR plus
// the family of undefined-behavior-exploiting transformations that the
// paper's §2 survey observes in production compilers: pointer-overflow
// check folding, null-check elimination after a dereference,
// signed-overflow check folding, value-range reasoning, oversized-shift
// folding, and abs() folding. Each UB-exploiting transformation can be
// enabled independently, which is how internal/compilers models the
// per-compiler, per-level behavior of Figure 4.
package opt

import (
	"repro/internal/ir"
)

// UBOpt identifies one UB-exploiting optimization, corresponding to
// the columns of the paper's Figure 4.
type UBOpt int

// UB-exploiting optimizations (Fig. 4 columns, left to right).
const (
	// OptPtrOverflow folds p + c < p (unsigned c or constant) to false
	// assuming pointers never overflow.
	OptPtrOverflow UBOpt = iota
	// OptNullCheck eliminates null checks dominated by a dereference.
	OptNullCheck
	// OptSignedOverflow folds x + c < x (signed) to false.
	OptSignedOverflow
	// OptValueRange folds checks using dominating range guards, e.g.
	// x > 0 makes x + 100 < 0 false (gcc 4.x VRP; Fig. 4 column 4).
	OptValueRange
	// OptShift folds 1 << x != 0 to true assuming in-range shifts.
	OptShift
	// OptAbs folds abs(x) < 0 to false assuming no abs overflow.
	OptAbs
	NumUBOpts
)

var ubOptNames = [...]string{
	"ptr-overflow-fold", "null-check-elim", "signed-overflow-fold",
	"value-range-fold", "shift-fold", "abs-fold",
}

func (o UBOpt) String() string { return ubOptNames[o] }

// Config selects which UB-exploiting optimizations run; classic
// optimizations (constant folding, CFG simplification, DCE) always
// run, as they do at every -O level in real compilers.
type Config struct {
	Enabled [NumUBOpts]bool
}

// EnableAll returns a config with every UB-exploiting fold on — the
// posture of the most aggressive surveyed compiler.
func EnableAll() Config {
	var c Config
	for i := range c.Enabled {
		c.Enabled[i] = true
	}
	return c
}

// Result reports what the optimizer did, so harnesses can tell which
// checks were discarded.
type Result struct {
	FoldedChecks int // branch conditions folded via UB reasoning
	UsedOpts     [NumUBOpts]bool
}

// Optimize runs the optimizer over f to a bounded fixpoint.
func Optimize(f *ir.Func, cfg Config) Result {
	var res Result
	for round := 0; round < 8; round++ {
		changed := constFold(f)
		if foldUBChecks(f, cfg, &res) {
			changed = true
		}
		if simplifyCFG(f) {
			changed = true
		}
		if dce(f) {
			changed = true
		}
		if !changed {
			break
		}
	}
	return res
}

// --- classic passes ---------------------------------------------------------

// constFold replaces instructions with constant operands by constants
// and simplifies algebraic identities.
func constFold(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if nv, ok := foldValue(v); ok {
				v.Op = ir.OpConst
				v.Aux = nv
				v.Args = nil
				v.Signed = false
				changed = true
				continue
			}
			if foldBoolCompare(v) {
				changed = true
			}
		}
	}
	return changed
}

// foldBoolCompare rewrites (icmp == 0), (icmp != 0), (icmp == 1),
// (icmp != 1) over an i1 comparison into the (possibly inverted)
// inner comparison — the instcombine that makes `!p`-style checks
// visible to the UB folds.
func foldBoolCompare(v *ir.Value) bool {
	if v.Op != ir.OpICmp || (v.Pred() != ir.CmpEq && v.Pred() != ir.CmpNe) {
		return false
	}
	inner, c := v.Args[0], v.Args[1]
	if inner.Op != ir.OpICmp || inner.Width != 1 || c.Op != ir.OpConst {
		return false
	}
	// eq(x,1) ≡ x; eq(x,0) ≡ ¬x; ne flips.
	invert := (v.Pred() == ir.CmpEq) == (c.Aux == 0)
	pred := inner.Pred()
	args := []*ir.Value{inner.Args[0], inner.Args[1]}
	if invert {
		switch pred {
		case ir.CmpEq:
			pred = ir.CmpNe
		case ir.CmpNe:
			pred = ir.CmpEq
		case ir.CmpULT:
			pred = ir.CmpULE
			args[0], args[1] = args[1], args[0]
		case ir.CmpULE:
			pred = ir.CmpULT
			args[0], args[1] = args[1], args[0]
		case ir.CmpSLT:
			pred = ir.CmpSLE
			args[0], args[1] = args[1], args[0]
		case ir.CmpSLE:
			pred = ir.CmpSLT
			args[0], args[1] = args[1], args[0]
		}
	}
	v.Aux = int64(pred)
	v.Args = args
	return true
}

func cval(v *ir.Value) (int64, bool) {
	if v.Op == ir.OpConst {
		return v.Aux, true
	}
	return 0, false
}

func maskTo(v int64, w int) int64 {
	if w >= 64 {
		return v
	}
	return v & (1<<uint(w) - 1)
}

func sext(v int64, w int) int64 {
	if w >= 64 {
		return v
	}
	v = maskTo(v, w)
	if v&(1<<uint(w-1)) != 0 {
		v |= ^int64(0) << uint(w)
	}
	return v
}

// foldValue computes a constant result if all operands are constant.
func foldValue(v *ir.Value) (int64, bool) {
	allConst := len(v.Args) > 0
	for _, a := range v.Args {
		if a.Op != ir.OpConst {
			allConst = false
			break
		}
	}
	if !allConst {
		return 0, false
	}
	a := func(i int) int64 { return v.Args[i].Aux }
	w := v.Width
	switch v.Op {
	case ir.OpAdd:
		return maskTo(a(0)+a(1), w), true
	case ir.OpSub:
		return maskTo(a(0)-a(1), w), true
	case ir.OpMul:
		return maskTo(a(0)*a(1), w), true
	case ir.OpAnd:
		return a(0) & a(1), true
	case ir.OpOr:
		return a(0) | a(1), true
	case ir.OpXor:
		return a(0) ^ a(1), true
	case ir.OpNot:
		return maskTo(^a(0), w), true
	case ir.OpNeg:
		return maskTo(-a(0), w), true
	case ir.OpSDiv:
		x, y := sext(a(0), w), sext(a(1), w)
		if y == 0 || (y == -1 && x == sext(1<<uint(w-1), w)) {
			return 0, false // UB at runtime; leave in place
		}
		return maskTo(x/y, w), true
	case ir.OpUDiv:
		x, y := uint64(maskTo(a(0), w)), uint64(maskTo(a(1), w))
		if y == 0 {
			return 0, false
		}
		return maskTo(int64(x/y), w), true
	case ir.OpSRem:
		x, y := sext(a(0), w), sext(a(1), w)
		if y == 0 || (y == -1 && x == sext(1<<uint(w-1), w)) {
			return 0, false
		}
		return maskTo(x%y, w), true
	case ir.OpURem:
		x, y := uint64(maskTo(a(0), w)), uint64(maskTo(a(1), w))
		if y == 0 {
			return 0, false
		}
		return maskTo(int64(x%y), w), true
	case ir.OpAShr:
		sh := uint64(maskTo(a(1), v.Args[1].Width))
		if sh >= uint64(w) {
			if sext(a(0), w) < 0 {
				return maskTo(-1, w), true
			}
			return 0, true
		}
		return maskTo(sext(a(0), w)>>sh, w), true
	case ir.OpShl:
		sh := uint64(maskTo(a(1), v.Args[1].Width))
		if sh >= uint64(w) {
			return 0, true // the C* view; UB folds handle the rest
		}
		return maskTo(a(0)<<sh, w), true
	case ir.OpLShr:
		sh := uint64(maskTo(a(1), v.Args[1].Width))
		if sh >= uint64(w) {
			return 0, true
		}
		return maskTo(maskTo(a(0), w)>>sh, w), true // logical: operate on masked
	case ir.OpICmp:
		x, y := a(0), a(1)
		xw := v.Args[0].Width
		var r bool
		switch v.Pred() {
		case ir.CmpEq:
			r = maskTo(x, xw) == maskTo(y, xw)
		case ir.CmpNe:
			r = maskTo(x, xw) != maskTo(y, xw)
		case ir.CmpULT:
			r = uint64(maskTo(x, xw)) < uint64(maskTo(y, xw))
		case ir.CmpULE:
			r = uint64(maskTo(x, xw)) <= uint64(maskTo(y, xw))
		case ir.CmpSLT:
			r = sext(x, xw) < sext(y, xw)
		case ir.CmpSLE:
			r = sext(x, xw) <= sext(y, xw)
		}
		if r {
			return 1, true
		}
		return 0, true
	case ir.OpZExt:
		return maskTo(a(0), v.Args[0].Width), true
	case ir.OpSExt:
		return maskTo(sext(a(0), v.Args[0].Width), w), true
	case ir.OpTrunc:
		return maskTo(a(0), w), true
	case ir.OpSelect:
		if a(0) != 0 {
			return a(1), true
		}
		return a(2), true
	}
	return 0, false
}

// simplifyCFG folds constant conditional branches, removes newly
// unreachable blocks, and simplifies single-pred phis.
func simplifyCFG(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		if b.Term == nil || b.Term.Op != ir.OpCondBr {
			continue
		}
		c, ok := cval(b.Term.Args[0])
		if !ok {
			continue
		}
		taken, dead := b.Succs[0], b.Succs[1]
		if c == 0 {
			taken, dead = dead, taken
		}
		// Rewrite to unconditional branch.
		b.Term.Op = ir.OpBr
		b.Term.Args = nil
		b.Succs = []*ir.Block{taken}
		removePred(dead, b)
		changed = true
	}
	if changed {
		f.RemoveUnreachableBlocks()
	}
	// Single-argument phis become copies.
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Op == ir.OpPhi && len(v.Args) == 1 {
				replaceAllUses(f, v, v.Args[0])
				v.Op = ir.OpUnknown // dead; removed by DCE
				v.Args = nil
				changed = true
			}
		}
	}
	return changed
}

func removePred(b, pred *ir.Block) {
	for i, p := range b.Preds {
		if p == pred {
			b.Preds = append(b.Preds[:i:i], b.Preds[i+1:]...)
			for _, v := range b.Instrs {
				if v.Op == ir.OpPhi && i < len(v.Args) {
					v.Args = append(v.Args[:i:i], v.Args[i+1:]...)
				}
			}
			return
		}
	}
}

func replaceAllUses(f *ir.Func, old, new *ir.Value) {
	for _, b := range f.Blocks {
		for _, v := range b.Values() {
			for i, a := range v.Args {
				if a == old {
					v.Args[i] = new
				}
			}
		}
	}
}

// dce removes unused side-effect-free instructions.
func dce(f *ir.Func) bool {
	used := map[*ir.Value]bool{}
	for _, b := range f.Blocks {
		for _, v := range b.Values() {
			for _, a := range v.Args {
				used[a] = true
			}
		}
	}
	changed := false
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, v := range b.Instrs {
			if !used[v] && pure(v) {
				changed = true
				continue
			}
			kept = append(kept, v)
		}
		b.Instrs = kept
	}
	return changed
}

func pure(v *ir.Value) bool {
	switch v.Op {
	case ir.OpStore, ir.OpCall, ir.OpBr, ir.OpCondBr, ir.OpRet, ir.OpUnreachable, ir.OpParam:
		return false
	}
	return true
}
