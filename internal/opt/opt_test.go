package opt

import (
	"testing"

	"repro/internal/cc"
	"repro/internal/ir"
)

func build(t *testing.T, src string) *ir.Func {
	t.Helper()
	f, err := cc.Parse("test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := cc.Check(f); err != nil {
		t.Fatalf("check: %v", err)
	}
	p, err := ir.Build(f)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if len(p.Funcs) == 0 {
		t.Fatal("no functions")
	}
	return p.Funcs[0]
}

// retConsts collects constant return values still present.
func retConsts(f *ir.Func) map[int64]bool {
	out := map[int64]bool{}
	for _, b := range f.Blocks {
		if b.Term != nil && b.Term.Op == ir.OpRet && len(b.Term.Args) > 0 {
			if v := b.Term.Args[0]; v.Op == ir.OpConst {
				out[v.Aux] = true
			}
		}
	}
	return out
}

func TestConstFoldArithmetic(t *testing.T) {
	f := build(t, `int f(void) { return (2 + 3) * 4 - 6 / 2; }`)
	Optimize(f, Config{})
	rets := retConsts(f)
	if !rets[17] {
		t.Fatalf("constant folding failed: %v\n%s", rets, f)
	}
}

func TestSimplifyCFGConstBranch(t *testing.T) {
	f := build(t, `int f(void) { if (1 < 2) return 7; return 8; }`)
	Optimize(f, Config{})
	if rets := retConsts(f); rets[8] || !rets[7] {
		t.Fatalf("branch folding failed: %v\n%s", rets, f)
	}
	if len(f.Blocks) > 2 {
		t.Fatalf("dead blocks survived:\n%s", f)
	}
}

func TestDCERemovesDeadArith(t *testing.T) {
	f := build(t, `int f(int x) { int dead = x * 2; return 5; }`)
	Optimize(f, Config{})
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Op == ir.OpMul {
				t.Fatalf("dead multiply survived:\n%s", f)
			}
		}
	}
}

func TestNoUBFoldWithoutConfig(t *testing.T) {
	// With all UB folds disabled, x + 100 < x must survive (a C*
	// compiler keeps the check).
	f := build(t, `int f(int x) { if (x + 100 < x) return 1; return 0; }`)
	res := Optimize(f, Config{})
	if res.FoldedChecks != 0 {
		t.Fatalf("folded %d checks with empty config", res.FoldedChecks)
	}
	if rets := retConsts(f); !rets[1] {
		t.Fatalf("check path removed without UB folds:\n%s", f)
	}
}

func TestSignedOverflowFold(t *testing.T) {
	f := build(t, `int f(int x) { if (x + 100 < x) return 1; return 0; }`)
	var cfg Config
	cfg.Enabled[OptSignedOverflow] = true
	res := Optimize(f, cfg)
	if !res.UsedOpts[OptSignedOverflow] {
		t.Fatalf("fold not applied:\n%s", f)
	}
	if rets := retConsts(f); rets[1] {
		t.Fatalf("check survived:\n%s", f)
	}
}

func TestUnsignedNotFolded(t *testing.T) {
	// Unsigned wraparound is defined; the check must survive even with
	// every UB fold enabled.
	f := build(t, `int f(unsigned int x) { if (x + 100 < x) return 1; return 0; }`)
	Optimize(f, EnableAll())
	if rets := retConsts(f); !rets[1] {
		t.Fatalf("defined wraparound check was removed:\n%s", f)
	}
}

func TestPtrOverflowFold(t *testing.T) {
	f := build(t, `int f(char *p) { if (p + 100 < p) return 1; return 0; }`)
	var cfg Config
	cfg.Enabled[OptPtrOverflow] = true
	Optimize(f, cfg)
	if rets := retConsts(f); rets[1] {
		t.Fatalf("pointer overflow check survived:\n%s", f)
	}
}

func TestNullCheckElim(t *testing.T) {
	f := build(t, `
struct s { int a; };
int f(struct s *p) {
	p->a = 1;
	if (!p)
		return 1;
	return 0;
}
`)
	var cfg Config
	cfg.Enabled[OptNullCheck] = true
	Optimize(f, cfg)
	if rets := retConsts(f); rets[1] {
		t.Fatalf("null check survived:\n%s", f)
	}
}

func TestNullCheckBeforeDerefKept(t *testing.T) {
	// The stable ordering: check first, then deref. Must survive.
	f := build(t, `
struct s { int a; };
int f(struct s *p) {
	if (!p)
		return 1;
	p->a = 1;
	return 0;
}
`)
	Optimize(f, EnableAll())
	if rets := retConsts(f); !rets[1] {
		t.Fatalf("stable null check was removed:\n%s", f)
	}
}

func TestValueRangeFold(t *testing.T) {
	f := build(t, `
int f(int x) {
	if (x > 0) {
		if (x + 100 < 0)
			return 1;
	}
	return 0;
}
`)
	var cfg Config
	cfg.Enabled[OptValueRange] = true
	Optimize(f, cfg)
	if rets := retConsts(f); rets[1] {
		t.Fatalf("range-based check survived:\n%s", f)
	}
}

// TestPdecFoldCreatesInfiniteLoop reproduces the end-to-end
// consequence of paper Fig. 13: after gcc-style folding of -k >= 0 to
// true under k < 0, the INT_MIN guard vanishes and pdec recurses
// forever. We demonstrate the guard's disappearance.
func TestPdecFoldValueRange(t *testing.T) {
	f := build(t, `
int pdec(int k) {
	if (k < 0) {
		if (-k >= 0)
			return 1; /* negate-and-recurse path */
		return 2;     /* INT_MIN path */
	}
	return 0;
}
`)
	var cfg Config
	cfg.Enabled[OptValueRange] = true
	Optimize(f, cfg)
	rets := retConsts(f)
	if rets[2] {
		t.Fatalf("INT_MIN path should be folded away (check became true):\n%s", f)
	}
	if !rets[1] {
		t.Fatalf("negate path must remain:\n%s", f)
	}
}

func TestShiftFold(t *testing.T) {
	f := build(t, `int f(int x) { if (!(1 << x)) return 1; return 0; }`)
	var cfg Config
	cfg.Enabled[OptShift] = true
	Optimize(f, cfg)
	if rets := retConsts(f); rets[1] {
		t.Fatalf("shift check survived:\n%s", f)
	}
}

func TestAbsFold(t *testing.T) {
	f := build(t, `int f(int x) { if (abs(x) < 0) return 1; return 0; }`)
	var cfg Config
	cfg.Enabled[OptAbs] = true
	Optimize(f, cfg)
	if rets := retConsts(f); rets[1] {
		t.Fatalf("abs check survived:\n%s", f)
	}
}

// TestOptimizedSemanticsPreservedOnDefinedInputs: on inputs that do
// not trigger UB, the optimized function must agree with the original
// (the legality condition of Def. 1).
func TestOptimizedSemanticsPreserved(t *testing.T) {
	src := `
int f(int x) {
	if (x + 100 < x)
		return 1;
	if (x > 10)
		return 2;
	return 3;
}
`
	orig := build(t, src)
	optd := build(t, src)
	Optimize(optd, EnableAll())
	for _, in := range []uint64{0, 5, 11, 100, 0x7FFFFF00} {
		// 0x7FFFFF00 + 100 does not overflow int32; all listed inputs
		// are UB-free.
		r1, err1 := ir.Exec(orig, []uint64{in}, ir.ExecOptions{})
		r2, err2 := ir.Exec(optd, []uint64{in}, ir.ExecOptions{})
		if err1 != nil || err2 != nil {
			t.Fatalf("exec: %v %v", err1, err2)
		}
		if r1.Ret != r2.Ret {
			t.Fatalf("input %d: original %d, optimized %d", in, r1.Ret, r2.Ret)
		}
	}
}

// TestOptimizedDivergesOnUBInput: on the UB-triggering input the
// optimized program may differ — that is precisely what makes the
// code unstable.
func TestOptimizedDivergesOnUBInput(t *testing.T) {
	src := `
int f(int x) {
	if (x + 100 < x)
		return 1;
	return 0;
}
`
	orig := build(t, src)
	optd := build(t, src)
	Optimize(optd, EnableAll())
	in := uint64(0x7FFFFFFF) // INT_MAX: x+100 overflows
	r1, _ := ir.Exec(orig, []uint64{in}, ir.ExecOptions{})
	r2, _ := ir.Exec(optd, []uint64{in}, ir.ExecOptions{})
	if r1.Ret != 1 {
		t.Fatalf("C* semantics: check должен fire, got %d", r1.Ret)
	}
	if r2.Ret != 0 {
		t.Fatalf("optimized: check should be gone, got %d", r2.Ret)
	}
}

func TestBoolCompareNormalization(t *testing.T) {
	f := build(t, `int f(int *p) { *p = 1; if (!!p) return 1; return 0; }`)
	var cfg Config
	cfg.Enabled[OptNullCheck] = true
	Optimize(f, cfg)
	// !!p after a deref folds to true, so return 0 disappears.
	if rets := retConsts(f); rets[0] {
		t.Fatalf("double-negation null check survived:\n%s", f)
	}
}
