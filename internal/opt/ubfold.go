package opt

import (
	"repro/internal/ir"
)

// foldUBChecks applies the enabled UB-exploiting folds. Each fold is a
// real IR transformation reproducing a behavior documented in the
// paper's §2 compiler survey.
func foldUBChecks(f *ir.Func, cfg Config, res *Result) bool {
	dom := ir.ComputeDom(f)
	facts := collectRangeFacts(f, dom)
	changed := false
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Op != ir.OpICmp {
				continue
			}
			folded, which := tryFold(f, dom, facts, b, v, cfg)
			if folded {
				res.FoldedChecks++
				res.UsedOpts[which] = true
				changed = true
			}
		}
	}
	return changed
}

// rangeFact records a known sign fact about a value within a block,
// derived from a dominating branch — a miniature of gcc 4.x's value
// range propagation (paper §2.3).
type rangeFact struct {
	positive map[*ir.Value]bool // value >s 0
	negative map[*ir.Value]bool // value <s 0
}

func collectRangeFacts(f *ir.Func, dom *ir.DomTree) map[*ir.Block]rangeFact {
	out := make(map[*ir.Block]rangeFact, len(f.Blocks))
	for _, b := range f.Blocks {
		fact := rangeFact{positive: map[*ir.Value]bool{}, negative: map[*ir.Value]bool{}}
		// Walk dominators; for each dominating CondBr whose taken edge
		// leads (dominating-ly) to b, record sign facts.
		for _, d := range dom.Dominators(b) {
			if d == b || d.Term == nil || d.Term.Op != ir.OpCondBr {
				continue
			}
			cond := d.Term.Args[0]
			if cond.Op != ir.OpICmp {
				continue
			}
			trueEdge := d.Succs[0]
			falseEdge := d.Succs[1]
			// Determine which arm dominates b (i.e. every path to b
			// goes through it).
			var holds bool
			var negated bool
			switch {
			case trueEdge != falseEdge && dom.Dominates(trueEdge, b):
				holds, negated = true, false
			case trueEdge != falseEdge && dom.Dominates(falseEdge, b):
				holds, negated = true, true
			}
			if !holds {
				continue
			}
			recordSignFact(&fact, cond, negated)
		}
		out[b] = fact
	}
	return out
}

// recordSignFact interprets comparisons against constants.
func recordSignFact(fact *rangeFact, cmp *ir.Value, negated bool) {
	x, y := cmp.Args[0], cmp.Args[1]
	cy, okY := cval(y)
	cx, okX := cval(x)
	pred := cmp.Pred()
	if negated {
		// The false edge: invert the predicate.
		switch pred {
		case ir.CmpSLT:
			pred = ir.CmpSLE
			x, y = y, x
			cx, cy = cy, cx
			okX, okY = okY, okX
		case ir.CmpSLE:
			pred = ir.CmpSLT
			x, y = y, x
			cx, cy = cy, cx
			okX, okY = okY, okX
		case ir.CmpEq:
			pred = ir.CmpNe
		case ir.CmpNe:
			pred = ir.CmpEq
		default:
			return
		}
	}
	switch pred {
	case ir.CmpSLT:
		if okY && sext(cy, y.Width) <= 0 { // x < c ≤ 0 → x negative
			fact.negative[x] = true
		}
		if okX && sext(cx, x.Width) >= 0 { // 0 ≤ c < y → y positive
			fact.positive[y] = true
		}
	case ir.CmpSLE:
		if okY && sext(cy, y.Width) < 0 {
			fact.negative[x] = true
		}
		if okX && sext(cx, x.Width) > 0 {
			fact.positive[y] = true
		}
	}
}

// tryFold attempts each enabled UB-based fold on comparison v in
// block b. On success the comparison is replaced by a constant.
func tryFold(f *ir.Func, dom *ir.DomTree, facts map[*ir.Block]rangeFact, b *ir.Block, v *ir.Value, cfg Config) (bool, UBOpt) {
	set := func(val int64) {
		v.Op = ir.OpConst
		v.Aux = val
		v.Args = nil
	}
	x, y := v.Args[0], v.Args[1]

	// OptPtrOverflow: (p + off) <u p with off that cannot be negative
	// (zero-extended or constant ≥ 0) folds to false; p <u (p+off)
	// variants fold symmetrically; >=u folds to true.
	if cfg.Enabled[OptPtrOverflow] {
		if ok, result := foldPtrOverflow(v, x, y); ok {
			set(result)
			return true, OptPtrOverflow
		}
	}
	// OptNullCheck: p == NULL folds to false when a dereference of p
	// dominates the comparison.
	if cfg.Enabled[OptNullCheck] {
		if ok, result := foldNullCheck(f, dom, b, v, x, y); ok {
			set(result)
			return true, OptNullCheck
		}
	}
	// OptSignedOverflow: (x +nsw c) <s x with c > 0 → false;
	// likewise (x +nsw c) >s x → true.
	if cfg.Enabled[OptSignedOverflow] {
		if ok, result := foldSignedOverflow(v, x, y); ok {
			set(result)
			return true, OptSignedOverflow
		}
	}
	// OptValueRange: x known positive ∧ c ≥ 0 → (x +nsw c) <s 0 is
	// false; x known negative → -x >s 0 ... (Fig. 4 col 4, Fig. 13).
	if cfg.Enabled[OptValueRange] {
		if ok, result := foldValueRange(facts[b], v, x, y); ok {
			set(result)
			return true, OptValueRange
		}
	}
	// OptShift: (1 << x) == 0 → false (assuming x in range).
	if cfg.Enabled[OptShift] {
		if ok, result := foldShift(v, x, y); ok {
			set(result)
			return true, OptShift
		}
	}
	// OptAbs: abs(x) <s 0 → false.
	if cfg.Enabled[OptAbs] {
		if ok, result := foldAbs(v, x, y); ok {
			set(result)
			return true, OptAbs
		}
	}
	return false, 0
}

// nonNegativeOffset reports whether an offset value is provably ≥ 0
// under the no-overflow assumption: zero-extended, a non-negative
// constant, or a multiple of one of those.
func nonNegativeOffset(v *ir.Value) bool {
	switch v.Op {
	case ir.OpZExt:
		return true
	case ir.OpConst:
		return sext(v.Aux, v.Width) >= 0
	case ir.OpMul:
		return nonNegativeOffset(v.Args[0]) && nonNegativeOffset(v.Args[1])
	}
	return false
}

func foldPtrOverflow(v, x, y *ir.Value) (bool, int64) {
	// (y + off) pred y — assuming no pointer overflow, y + off ≥u y
	// when off ≥ 0.
	match := func(sum, base *ir.Value) *ir.Value {
		if sum.Op != ir.OpPtrAdd {
			return nil
		}
		if sum.Args[0] == base && nonNegativeOffset(sum.Args[1]) {
			return sum.Args[1]
		}
		return nil
	}
	switch v.Pred() {
	case ir.CmpULT: // sum <u base → false
		if match(x, y) != nil {
			return true, 0
		}
	case ir.CmpULE: // base ≤u sum → true (swapped form: sum on right)
		if match(y, x) != nil {
			return true, 1
		}
	case ir.CmpEq, ir.CmpNe:
		// p + c == NULL with c != 0: assuming no overflow, p + c == 0
		// requires p = -c, which wraps; compilers fold the strchr+1
		// null check this way (paper Fig. 11).
		sum := x
		other := y
		if sum.Op != ir.OpPtrAdd {
			sum, other = y, x
		}
		if sum.Op == ir.OpPtrAdd {
			if c, ok := cval(other); ok && c == 0 {
				if off, ok2 := cval(sum.Args[1]); ok2 && off != 0 {
					if v.Pred() == ir.CmpEq {
						return true, 0
					}
					return true, 1
				}
			}
		}
	}
	return false, 0
}

func foldNullCheck(f *ir.Func, dom *ir.DomTree, b *ir.Block, v, x, y *ir.Value) (bool, int64) {
	if v.Pred() != ir.CmpEq && v.Pred() != ir.CmpNe {
		return false, 0
	}
	ptr := x
	other := y
	if c, ok := cval(ptr); ok && c == 0 {
		ptr, other = y, x
	}
	if c, ok := cval(other); !ok || c != 0 {
		return false, 0
	}
	// Find a dereference of ptr that dominates the comparison.
	for _, d := range dom.Dominators(b) {
		for _, w := range d.Instrs {
			if w.Op != ir.OpLoad && w.Op != ir.OpStore {
				continue
			}
			if rootPtr(w.Args[0]) != ptr {
				continue
			}
			if d == b && !precedes(d, w, v) {
				continue
			}
			// ptr was dereferenced: assume non-null.
			if v.Pred() == ir.CmpEq {
				return true, 0
			}
			return true, 1
		}
	}
	return false, 0
}

func rootPtr(v *ir.Value) *ir.Value {
	for v.Op == ir.OpPtrAdd || v.Op == ir.OpIndexAddr {
		v = v.Args[0]
	}
	return v
}

func precedes(b *ir.Block, a, c *ir.Value) bool {
	for _, v := range b.Instrs {
		if v == a {
			return true
		}
		if v == c {
			return false
		}
	}
	return false
}

func foldSignedOverflow(v, x, y *ir.Value) (bool, int64) {
	// (y +nsw c) pred y with constant c.
	match := func(sum, base *ir.Value) (int64, bool) {
		if sum.Op != ir.OpAdd || !sum.Signed {
			return 0, false
		}
		if sum.Args[0] == base {
			if c, ok := cval(sum.Args[1]); ok {
				return sext(c, sum.Width), true
			}
		}
		if sum.Args[1] == base {
			if c, ok := cval(sum.Args[0]); ok {
				return sext(c, sum.Width), true
			}
		}
		return 0, false
	}
	switch v.Pred() {
	case ir.CmpSLT:
		if c, ok := match(x, y); ok && c >= 0 { // x+c <s x, c ≥ 0 → false
			return true, 0
		}
		if c, ok := match(y, x); ok && c >= 0 { // x <s x+c: c>0 → true
			if c > 0 {
				return true, 1
			}
		}
	case ir.CmpSLE:
		if c, ok := match(y, x); ok && c >= 0 { // x ≤s x+c → true
			return true, 1
		}
		if c, ok := match(x, y); ok && c > 0 { // x+c ≤s x → false
			return true, 0
		}
	}
	return false, 0
}

func foldValueRange(fact rangeFact, v, x, y *ir.Value) (bool, int64) {
	known := func(val *ir.Value) (pos, neg bool) {
		if fact.positive[val] {
			return true, false
		}
		if fact.negative[val] {
			return false, true
		}
		// x +nsw c with x positive and c ≥ 0 stays positive.
		if val.Op == ir.OpAdd && val.Signed {
			if c, ok := cval(val.Args[1]); ok && fact.positive[val.Args[0]] && sext(c, val.Width) >= 0 {
				return true, false
			}
			if c, ok := cval(val.Args[0]); ok && fact.positive[val.Args[1]] && sext(c, val.Width) >= 0 {
				return true, false
			}
		}
		// -x with x negative is positive (no overflow assumed), and
		// vice versa (paper Fig. 13).
		if val.Op == ir.OpNeg && val.Signed {
			if fact.negative[val.Args[0]] {
				return true, false
			}
			if fact.positive[val.Args[0]] {
				return false, true
			}
		}
		return false, false
	}
	cy, okY := cval(y)
	if okY {
		yv := sext(cy, y.Width)
		pos, neg := known(x)
		switch v.Pred() {
		case ir.CmpSLT:
			if pos && yv <= 0 { // positive < nonpositive → false
				return true, 0
			}
			if neg && yv >= 0 { // negative < nonnegative → true
				return true, 1
			}
		case ir.CmpSLE:
			if pos && yv < 0 {
				return true, 0
			}
			if neg && yv >= 0 {
				return true, 1
			}
		}
	}
	cx, okX := cval(x)
	if okX {
		xv := sext(cx, x.Width)
		pos, neg := known(y)
		switch v.Pred() {
		case ir.CmpSLE:
			if xv >= 0 && pos { // 0 ≤ positive → true
				return true, 1
			}
			if xv > 0 && neg {
				return true, 0
			}
		case ir.CmpSLT:
			if xv < 0 && pos {
				return true, 1
			}
			if xv >= 0 && neg { // nonneg < negative → false
				return true, 0
			}
		}
	}
	return false, 0
}

func foldShift(v, x, y *ir.Value) (bool, int64) {
	if v.Pred() != ir.CmpEq && v.Pred() != ir.CmpNe {
		return false, 0
	}
	sh := x
	other := y
	if sh.Op != ir.OpShl {
		sh, other = y, x
	}
	if sh.Op != ir.OpShl {
		return false, 0
	}
	c, ok := cval(sh.Args[0])
	if !ok || c == 0 {
		return false, 0
	}
	if z, ok := cval(other); !ok || z != 0 {
		return false, 0
	}
	// nonzero << x is never 0 for in-range x (no truncation of the
	// set bit when the shifted-in-range value keeps a bit: true for
	// c = 1 and any x < width).
	if c != 1 {
		return false, 0
	}
	if v.Pred() == ir.CmpEq {
		return true, 0
	}
	return true, 1
}

func foldAbs(v, x, y *ir.Value) (bool, int64) {
	isAbs := func(val *ir.Value) bool {
		return val.Op == ir.OpCall && (val.AuxName == "abs" || val.AuxName == "labs")
	}
	if isAbs(x) {
		if c, ok := cval(y); ok && sext(c, y.Width) <= 0 {
			switch v.Pred() {
			case ir.CmpSLT: // abs(x) < c ≤ 0 → false
				return true, 0
			case ir.CmpSLE:
				if sext(c, y.Width) < 0 {
					return true, 0
				}
			}
		}
	}
	if isAbs(y) {
		if c, ok := cval(x); ok && sext(c, x.Width) <= 0 {
			switch v.Pred() {
			case ir.CmpSLE: // c ≤ abs(x) → true for c ≤ 0
				return true, 1
			case ir.CmpSLT:
				if sext(c, x.Width) < 0 {
					return true, 1
				}
			}
		}
	}
	return false, 0
}
