package sat

// varHeap is a max-heap of variables ordered by activity, with an
// index map for decrease/increase-key. It implements the VSIDS
// decision order.
type varHeap struct {
	act   *[]float64
	heap  []Var
	index []int // var -> position in heap, -1 if absent
}

func newVarHeap(act *[]float64) *varHeap {
	return &varHeap{act: act}
}

func (h *varHeap) less(i, j int) bool {
	return (*h.act)[h.heap[i]] > (*h.act)[h.heap[j]]
}

func (h *varHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.index[h.heap[i]] = i
	h.index[h.heap[j]] = j
}

func (h *varHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *varHeap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.less(l, best) {
			best = l
		}
		if r < n && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

// insert adds v to the heap if absent.
func (h *varHeap) insert(v Var) {
	for int(v) >= len(h.index) {
		h.index = append(h.index, -1)
	}
	if h.index[v] >= 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.index[v] = len(h.heap) - 1
	h.up(len(h.heap) - 1)
}

// update restores heap order after v's activity increased.
func (h *varHeap) update(v Var) {
	if int(v) < len(h.index) && h.index[v] >= 0 {
		h.up(h.index[v])
	}
}

// removeMax pops the highest-activity variable.
func (h *varHeap) removeMax() (Var, bool) {
	if len(h.heap) == 0 {
		return 0, false
	}
	v := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.index[v] = -1
	if last > 0 {
		h.down(0)
	}
	return v, true
}

func (h *varHeap) empty() bool { return len(h.heap) == 0 }
