package sat

import (
	"math/rand"
	"testing"
)

// mkLearnt fabricates a learned clause over the given literals with
// the given activity, attached and registered like one produced by
// conflict analysis.
func mkLearnt(s *Solver, act float64, ls ...Lit) *clause {
	c := s.newClause(ls, true)
	c.act = act
	s.learnts = append(s.learnts, c)
	s.attach(c)
	return c
}

// watchConsistent verifies the two-literal watching invariants: every
// watcher points at a live clause that really watches that literal,
// and every live clause with ≥2 literals is watched on exactly its
// first two literals.
func watchConsistent(t *testing.T, s *Solver) {
	t.Helper()
	live := map[*clause]bool{}
	for _, c := range s.clauses {
		live[c] = true
	}
	for _, c := range s.learnts {
		live[c] = true
	}
	counts := map[*clause]int{}
	for l := range s.watches {
		for _, w := range s.watches[l] {
			if !live[w.c] {
				t.Fatalf("watch list for lit %d references a detached clause %v", l, w.c.lits)
			}
			if w.c.lits[0].Not() != Lit(l) && w.c.lits[1].Not() != Lit(l) {
				t.Fatalf("clause %v watched on %d, which is neither of its first two literals", w.c.lits, l)
			}
			counts[w.c]++
		}
	}
	for c := range live {
		if len(c.lits) >= 2 && counts[c] != 2 {
			t.Fatalf("clause %v has %d watchers, want 2", c.lits, counts[c])
		}
	}
}

// TestReduceDBRetention: reduceDB keeps binary and locked learnt
// clauses regardless of activity, drops cold ones, and leaves the
// watch lists consistent.
func TestReduceDBRetention(t *testing.T) {
	s := New()
	v := lits(s, 12)

	binary := mkLearnt(s, 0, v[0], v[1])       // coldest possible, but binary
	locked := mkLearnt(s, 0, v[2], v[3], v[4]) // will be a reason clause
	cold := mkLearnt(s, 1, v[5], v[6], v[7])   // below median: dropped
	cold2 := mkLearnt(s, 2, v[5], v[8], v[11]) // below median: dropped
	// Five hot clauses pin the median at 50, clearly above the colds
	// (the drop rule is act < median; median-tied clauses survive).
	hots := make([]*clause, 5)
	for i := range hots {
		hots[i] = mkLearnt(s, 50, v[i], v[i+4].Not(), v[i+7])
	}

	// Make `locked` the reason for its first literal, as if propagation
	// had just enqueued it.
	s.uncheckedEnqueue(locked.lits[0], locked)
	if !s.locked(locked) {
		t.Fatal("test setup: clause not locked")
	}

	s.LearntFloor = 1 // force reduction on a tiny database
	s.reduceDB()

	kept := map[*clause]bool{}
	for _, c := range s.learnts {
		kept[c] = true
	}
	if !kept[binary] {
		t.Errorf("binary learnt dropped; binaries must survive reduction")
	}
	if !kept[locked] {
		t.Errorf("locked learnt dropped; reason clauses must survive reduction")
	}
	for i, h := range hots {
		if !kept[h] {
			t.Errorf("above-median learnt %d dropped", i)
		}
	}
	if kept[cold] || kept[cold2] {
		t.Errorf("cold learnts survived: cold=%v cold2=%v", kept[cold], kept[cold2])
	}
	if s.LearntsDropped != 2 {
		t.Errorf("LearntsDropped = %d, want 2", s.LearntsDropped)
	}
	watchConsistent(t, s)
}

// TestReduceDBFloor: below the floor reduceDB is a no-op; with
// geometric growth configured, each reduction raises the floor.
func TestReduceDBFloor(t *testing.T) {
	s := New()
	v := lits(s, 20)
	for i := 0; i+2 < len(v); i++ {
		mkLearnt(s, float64(i), v[i], v[i+1], v[i+2])
	}
	n := len(s.learnts)

	s.LearntFloor = n + 1
	s.reduceDB()
	if len(s.learnts) != n {
		t.Fatalf("reduceDB below floor dropped clauses: %d -> %d", n, len(s.learnts))
	}

	s.LearntFloor = 4
	s.LearntFloorGrowth = 2
	s.reduceDB()
	if len(s.learnts) >= n {
		t.Fatalf("reduceDB above floor dropped nothing")
	}
	if s.LearntFloor != 8 {
		t.Fatalf("floor after reduction = %d, want 8 (geometric growth)", s.LearntFloor)
	}
	watchConsistent(t, s)
}

// TestTrimLearnts: trimming between solves shrinks the database toward
// the target while retaining binary clauses, and counts the drops.
func TestTrimLearnts(t *testing.T) {
	s := New()
	v := lits(s, 30)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 64; i++ {
		a, b, c := rng.Intn(len(v)), rng.Intn(len(v)), rng.Intn(len(v))
		if a == b || b == c || a == c {
			continue
		}
		mkLearnt(s, rng.Float64(), v[a], v[b].Not(), v[c])
	}
	mkLearnt(s, 0, v[0], v[1]) // binary, must survive any trim
	before := len(s.learnts)

	s.TrimLearnts(before) // already within budget: no-op
	if len(s.learnts) != before {
		t.Fatalf("TrimLearnts at budget dropped clauses")
	}

	s.TrimLearnts(8)
	if len(s.learnts) > before/2 {
		t.Fatalf("TrimLearnts(8) left %d of %d clauses", len(s.learnts), before)
	}
	hasBinary := false
	for _, c := range s.learnts {
		if len(c.lits) == 2 {
			hasBinary = true
		}
	}
	if !hasBinary {
		t.Errorf("binary learnt did not survive trimming")
	}
	if got := int(s.LearntsDropped) + len(s.learnts); got != before {
		t.Errorf("dropped(%d) + kept(%d) != initial(%d)", s.LearntsDropped, len(s.learnts), before)
	}
	watchConsistent(t, s)
}

// TestSolveCorrectAfterReduction: verdicts after forced database
// reductions and trims match a fresh reference solver on the same
// formula — reduction must be invisible to correctness.
func TestSolveCorrectAfterReduction(t *testing.T) {
	const nVars, nClauses = 30, 120
	rng := rand.New(rand.NewSource(7))
	type cl [3]Lit
	var formula []cl
	for i := 0; i < nClauses; i++ {
		var c cl
		for j := range c {
			c[j] = NewLit(Var(rng.Intn(nVars)), rng.Intn(2) == 0)
		}
		formula = append(formula, c)
	}
	load := func() *Solver {
		s := New()
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		for _, c := range formula {
			s.AddClause(c[0], c[1], c[2])
		}
		return s
	}

	inc := load()
	inc.LearntFloor = 1 // reduce aggressively at every opportunity
	for q := 0; q < 40; q++ {
		a := NewLit(Var(rng.Intn(nVars)), rng.Intn(2) == 0)
		b := NewLit(Var(rng.Intn(nVars)), rng.Intn(2) == 0)
		want := load().Solve(a, b)
		if got := inc.Solve(a, b); got != want {
			t.Fatalf("query %d (%v,%v): incremental=%v fresh=%v", q, a, b, got, want)
		}
		switch q % 3 {
		case 0:
			inc.reduceDB()
		case 1:
			inc.TrimLearnts(4)
		}
		watchConsistent(t, inc)
	}
}
