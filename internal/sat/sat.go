// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver with two-literal watching, VSIDS-style activity ordering,
// first-UIP clause learning, Luby restarts, and solving under
// assumptions. It is the propositional engine underneath the bit-vector
// solver in internal/bv, standing in for the SAT core of Boolector,
// which the STACK paper used to decide elimination and simplification
// queries.
package sat

import (
	"context"
)

// Var is a propositional variable, numbered from 0.
type Var int

// Lit is a literal: a variable together with a sign. The encoding is
// the usual one (var<<1 | sign), where sign 1 means negated.
type Lit int

// NewLit returns the literal for v, negated if neg is true.
func NewLit(v Var, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the variable of the literal.
func (l Lit) Var() Var { return Var(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complement literal.
func (l Lit) Not() Lit { return l ^ 1 }

// Status is the outcome of a Solve call.
type Status int

const (
	// Unknown means the solver gave up (deadline exceeded or budget
	// exhausted) before reaching a verdict.
	Unknown Status = iota
	// Sat means a satisfying assignment was found.
	Sat
	// Unsat means the formula (under the given assumptions) is
	// unsatisfiable.
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

func (b lbool) neg() lbool {
	switch b {
	case lTrue:
		return lFalse
	case lFalse:
		return lTrue
	}
	return lUndef
}

type clause struct {
	lits    []Lit
	learned bool
	act     float64
}

type watcher struct {
	c       *clause
	blocker Lit
}

type varInfo struct {
	reason *clause // antecedent clause, nil for decisions/assumptions
	level  int
}

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
// A Solver is not safe for concurrent use.
type Solver struct {
	nVars        int
	clauses      []*clause
	learnts      []*clause
	watches      [][]watcher // indexed by Lit
	assign       []lbool     // indexed by Var
	info         []varInfo   // indexed by Var
	trail        []Lit
	trailLim     []int // decision-level boundaries in trail
	qhead        int
	activity     []float64
	varInc       float64
	claInc       float64
	order        *varHeap
	seen         []bool
	model        []lbool
	conflCore    []Lit // failed assumptions after Unsat under assumptions
	ok           bool  // false once the clause DB is unsat at level 0
	numAssumed   int   // decision levels occupied by assumptions
	Propagations int64
	Conflicts    int64
	Decisions    int64
	// Solves counts SolveAssuming/Solve calls on this solver; together
	// with NumLearnts it quantifies how much work an incremental caller
	// amortizes across queries.
	Solves int64
	// Ctx, if non-nil, is polled during search (every few hundred
	// conflicts, and between restarts): once it is cancelled or past
	// its deadline, the Solve call returns Unknown promptly. It is the
	// general cancellation mechanism — per-query wall-clock timeouts
	// are expressed as context deadlines by the bv layer — replacing
	// the one-off Deadline field this solver used to carry.
	Ctx context.Context
	// MaxConflicts, if nonzero, bounds the number of conflicts per
	// Solve call before returning Unknown.
	MaxConflicts int64
	// LearntFloor is the learnt-count below which reduceDB is a no-op.
	// It starts at learntFloorBase and grows geometrically by
	// LearntFloorGrowth after each reduction, so long-lived incremental
	// solvers are allowed a progressively larger working set instead of
	// thrashing the same ceiling. The default growth of 1 reproduces
	// the historical fixed floor of 100.
	LearntFloor       int
	LearntFloorGrowth float64
	// LearntsDropped counts learned clauses removed by reduceDB and
	// TrimLearnts over the solver's lifetime.
	LearntsDropped int64

	// Slab storage for clause structs and their literal arrays: one
	// large allocation per slab instead of two small ones per clause.
	// Slabs are append-only and live as long as the solver; clause
	// pointers into them stay valid because a slab never grows in
	// place. Detached clauses leave garbage in the slab until the
	// solver is dropped — acceptable for solver lifetimes scoped to a
	// session or a query.
	clauseSlab []clause
	litSlab    []Lit
	// Scratch buffers reused across calls: conflict analysis
	// (analyzeBuf/touchedBuf) and reduceDB's median selection
	// (medianBuf) previously allocated per call.
	analyzeBuf []Lit
	touchedBuf []Var
	medianBuf  []float64
	addBuf     []Lit
}

const learntFloorBase = 100

// newClause returns a clause backed by slab storage, holding a copy of
// lits.
func (s *Solver) newClause(lits []Lit, learned bool) *clause {
	if len(s.clauseSlab) == cap(s.clauseSlab) {
		s.clauseSlab = make([]clause, 0, 256)
	}
	s.clauseSlab = s.clauseSlab[:len(s.clauseSlab)+1]
	c := &s.clauseSlab[len(s.clauseSlab)-1]
	c.lits = s.allocLits(len(lits))
	copy(c.lits, lits)
	c.learned = learned
	c.act = 0
	return c
}

// allocLits carves an n-literal array out of the literal slab,
// capacity-capped so the watch-swap writes in propagate stay inside it.
func (s *Solver) allocLits(n int) []Lit {
	if len(s.litSlab)+n > cap(s.litSlab) {
		size := 4096
		if n > size {
			size = n
		}
		s.litSlab = make([]Lit, 0, size)
	}
	out := s.litSlab[len(s.litSlab) : len(s.litSlab)+n : len(s.litSlab)+n]
	s.litSlab = s.litSlab[:len(s.litSlab)+n]
	return out
}

// New returns an empty solver.
func New() *Solver {
	s := &Solver{varInc: 1, claInc: 1, ok: true, LearntFloor: learntFloorBase, LearntFloorGrowth: 1}
	s.order = newVarHeap(&s.activity)
	return s
}

// NewVar allocates and returns a fresh variable.
func (s *Solver) NewVar() Var {
	v := Var(s.nVars)
	s.nVars++
	s.watches = append(s.watches, nil, nil)
	s.assign = append(s.assign, lUndef)
	s.info = append(s.info, varInfo{})
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.order.insert(v)
	return v
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return s.nVars }

// NumClauses returns the number of problem (non-learned) clauses.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// NumLearnts returns the number of learned clauses currently retained.
// Learned clauses survive across SolveAssuming calls, so a later query
// on the same clause database starts from the conflicts of every
// earlier one; this is the quantity incremental callers watch to see
// that reuse is actually happening.
func (s *Solver) NumLearnts() int { return len(s.learnts) }

func (s *Solver) value(l Lit) lbool {
	v := s.assign[l.Var()]
	if l.Neg() {
		return v.neg()
	}
	return v
}

// AddClause adds a clause (a disjunction of literals) to the solver.
// It returns false if the clause database is already unsatisfiable.
// Adding an empty clause makes the database unsatisfiable.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	if len(s.trailLim) != 0 {
		panic("sat: AddClause called during search")
	}
	// Normalize into the reusable scratch buffer: drop duplicate and
	// false literals, detect tautology (sort-free dedup; clauses are
	// small).
	norm := s.addBuf[:0]
loop:
	for _, l := range lits {
		if int(l.Var()) >= s.nVars {
			panic("sat: literal references unallocated variable")
		}
		switch s.value(l) {
		case lTrue:
			return true // satisfied at level 0
		case lFalse:
			continue // drop
		}
		for _, m := range norm {
			if m == l {
				continue loop
			}
			if m == l.Not() {
				return true // tautology
			}
		}
		norm = append(norm, l)
	}
	s.addBuf = norm[:0]
	switch len(norm) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(norm[0], nil)
		if s.propagate() != nil {
			s.ok = false
			return false
		}
		return true
	}
	c := s.newClause(norm, false)
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return true
}

func (s *Solver) attach(c *clause) {
	s.watches[c.lits[0].Not()] = append(s.watches[c.lits[0].Not()], watcher{c, c.lits[1]})
	s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{c, c.lits[0]})
}

func (s *Solver) detach(c *clause) {
	s.removeWatch(c.lits[0].Not(), c)
	s.removeWatch(c.lits[1].Not(), c)
}

func (s *Solver) removeWatch(l Lit, c *clause) {
	ws := s.watches[l]
	for i := range ws {
		if ws[i].c == c {
			ws[i] = ws[len(ws)-1]
			s.watches[l] = ws[:len(ws)-1]
			return
		}
	}
}

func (s *Solver) uncheckedEnqueue(l Lit, reason *clause) {
	v := l.Var()
	if l.Neg() {
		s.assign[v] = lFalse
	} else {
		s.assign[v] = lTrue
	}
	s.info[v] = varInfo{reason: reason, level: s.decisionLevel()}
	s.trail = append(s.trail, l)
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) newDecisionLevel() { s.trailLim = append(s.trailLim, len(s.trail)) }

// propagate performs unit propagation; it returns a conflicting clause
// or nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Propagations++
		ws := s.watches[p]
		kept := ws[:0]
		var confl *clause
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if confl != nil {
				kept = append(kept, w)
				continue
			}
			if s.value(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			c := w.c
			// Make sure the false literal is at lits[1].
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.value(first) == lTrue {
				kept = append(kept, watcher{c, first})
				continue
			}
			// Look for a new watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{c, first})
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{c, first})
			if s.value(first) == lFalse {
				confl = c
				s.qhead = len(s.trail)
				continue
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[p] = kept
		if confl != nil {
			return confl
		}
	}
	return nil
}

// analyze performs first-UIP conflict analysis, returning the learned
// clause (asserting literal first) and the backtrack level. The
// returned slice aliases a scratch buffer reused by the next call;
// callers must copy it before retaining (search copies into clause
// slab storage).
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learnt := append(s.analyzeBuf[:0], 0) // placeholder for asserting literal
	pathC := 0
	var p Lit = -1
	touched := s.touchedBuf[:0] // every var whose seen flag was set
	idx := len(s.trail) - 1
	for {
		if confl.learned {
			s.bumpClause(confl)
		}
		for _, q := range confl.lits {
			if p != -1 && q == p {
				continue
			}
			v := q.Var()
			if !s.seen[v] && s.info[v].level > 0 {
				s.seen[v] = true
				touched = append(touched, v)
				s.bumpVar(v)
				if s.info[v].level >= s.decisionLevel() {
					pathC++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Find next literal to inspect.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		confl = s.info[v].reason
		s.seen[v] = false
		pathC--
		if pathC == 0 {
			break
		}
	}
	learnt[0] = p.Not()
	// Clause minimization: remove literals implied by the rest.
	out := learnt[:1]
	for _, l := range learnt[1:] {
		if !s.redundant(l) {
			out = append(out, l)
		}
	}
	learnt = out
	// Clear every seen flag set above, including literals dropped by
	// minimization; stale flags would corrupt the next analysis.
	for _, v := range touched {
		s.seen[v] = false
	}
	s.analyzeBuf, s.touchedBuf = learnt, touched // keep grown buffers
	// Compute backtrack level: the max level among learnt[1:].
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.info[learnt[i].Var()].level > s.info[learnt[maxI].Var()].level {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = s.info[learnt[1].Var()].level
	}
	return learnt, btLevel
}

// redundant reports whether literal l in a learned clause is implied by
// the remaining literals (simple local minimization: its reason's
// literals are all already seen).
func (s *Solver) redundant(l Lit) bool {
	r := s.info[l.Var()].reason
	if r == nil {
		return false
	}
	for _, q := range r.lits {
		if q.Var() == l.Var() {
			continue
		}
		if !s.seen[q.Var()] && s.info[q.Var()].level > 0 {
			return false
		}
	}
	return true
}

func (s *Solver) bumpVar(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *Solver) bumpClause(c *clause) {
	c.act += s.claInc
	if c.act > 1e20 {
		for _, l := range s.learnts {
			l.act *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) backtrackTo(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.assign[v] = lUndef
		s.info[v] = varInfo{}
		s.order.insert(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) pickBranchLit() Lit {
	for {
		v, ok := s.order.removeMax()
		if !ok {
			return -1
		}
		if s.assign[v] == lUndef {
			s.Decisions++
			// Negative-polarity default works well for bit-blasted
			// circuits (most signals are 0 in minimal models).
			return NewLit(v, true)
		}
	}
}

// luby returns the i-th element (1-based) of the Luby restart sequence
// 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,...
func luby(i int64) int64 {
	for {
		var k uint = 1
		for ; (1<<k)-1 < i; k++ {
		}
		if (1<<k)-1 == i {
			return 1 << (k - 1)
		}
		i = i - (1 << (k - 1)) + 1
	}
}

// reduceDB removes roughly half of the learned clauses, preferring low
// activity. Below the adaptive floor (LearntFloor, growing by
// LearntFloorGrowth after every reduction) it is a no-op, so a solver
// that keeps proving useful conflicts earns a larger retained set.
func (s *Solver) reduceDB() {
	if s.LearntFloor <= 0 {
		s.LearntFloor = learntFloorBase
	}
	if len(s.learnts) < s.LearntFloor {
		return
	}
	med := s.medianActivity()
	s.dropBelow(med)
	if s.LearntFloorGrowth > 1 {
		s.LearntFloor = int(float64(s.LearntFloor) * s.LearntFloorGrowth)
	}
}

// medianActivity returns the median learnt activity, using the
// solver's scratch buffer instead of allocating per call.
func (s *Solver) medianActivity() float64 {
	acts := s.medianBuf[:0]
	for _, c := range s.learnts {
		acts = append(acts, c.act)
	}
	s.medianBuf = acts[:0]
	return quickMedian(acts)
}

// dropBelow detaches unlocked, non-binary learned clauses with
// activity below med, keeping watch lists consistent.
func (s *Solver) dropBelow(med float64) {
	kept := s.learnts[:0]
	for _, c := range s.learnts {
		if len(c.lits) == 2 || c.act >= med || s.locked(c) {
			kept = append(kept, c)
			continue
		}
		s.detach(c)
		s.LearntsDropped++
	}
	s.learnts = kept
}

// TrimLearnts shrinks the learned-clause database toward target by
// dropping low-activity clauses, between searches rather than mid-
// search. It is the hook incremental sessions use to keep a
// long-lived solver's memory bounded across many Solve calls. Locked
// and binary clauses are always retained, so the result may exceed
// target. It must not be called mid-search.
func (s *Solver) TrimLearnts(target int) {
	if target < 0 || len(s.learnts) <= target {
		return
	}
	if len(s.trailLim) != 0 {
		panic("sat: TrimLearnts called during search")
	}
	// One median pass halves the set; repeat until at or under target,
	// bailing out when a pass stops making progress (everything left is
	// binary, locked, or activity-tied).
	for len(s.learnts) > target {
		before := len(s.learnts)
		s.dropBelow(s.medianActivity())
		if len(s.learnts) >= before {
			break
		}
	}
}

func (s *Solver) locked(c *clause) bool {
	return s.value(c.lits[0]) == lTrue && s.info[c.lits[0].Var()].reason == c
}

// quickMedian selects the median in place by partial quickselect,
// reordering xs.
func quickMedian(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := xs
	k := len(cp) / 2
	lo, hi := 0, len(cp)-1
	for lo < hi {
		p := cp[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for cp[i] < p {
				i++
			}
			for cp[j] > p {
				j--
			}
			if i <= j {
				cp[i], cp[j] = cp[j], cp[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return cp[k]
}

// Solve determines satisfiability of the clause database under the
// given assumptions. It is SolveAssuming under its historical name;
// both entry points share the incremental contract documented there.
func (s *Solver) Solve(assumptions ...Lit) Status {
	return s.SolveAssuming(assumptions...)
}

// SolveAssuming determines satisfiability of the clause database under
// the given assumptions, the incremental-SAT interface in the style of
// MiniSat's solve(assumps): assumptions are decided (not asserted)
// before the search, so nothing about a query outlives the call except
// what may be reused — the clause database, the learned clauses, and
// the variable activities all carry over to the next call. Callers
// implement retractable constraints with activation literals: add
// clause (¬a ∨ C) once, then pass a to activate it per query.
//
// On Sat, a model is available via ModelValue. On Unsat under
// assumptions, FailedAssumptions returns a subset of the assumptions
// sufficient for unsatisfiability (the final conflict clause expressed
// over the assumptions).
func (s *Solver) SolveAssuming(assumptions ...Lit) Status {
	s.Solves++
	if !s.ok {
		s.conflCore = nil
		return Unsat
	}
	if s.interrupted() {
		// Already cancelled: give up before touching the trail, so a
		// caller draining a cancelled request pays one cheap check per
		// query instead of a search restart.
		s.conflCore = nil
		return Unknown
	}
	defer func() {
		s.backtrackTo(0)
		s.numAssumed = 0
	}()
	s.conflCore = nil
	s.numAssumed = 0
	var restarts int64
	conflictsAtStart := s.Conflicts
	checkEvery := int64(256)
	for {
		restarts++
		budget := 32 * luby(restarts)
		res := s.search(assumptions, budget, conflictsAtStart, checkEvery)
		if res != Unknown {
			return res
		}
		if !s.ok {
			return Unsat
		}
		if s.exhausted(conflictsAtStart) {
			return Unknown
		}
		s.backtrackTo(0)
		s.numAssumed = 0
	}
}

func (s *Solver) exhausted(conflictsAtStart int64) bool {
	if s.MaxConflicts > 0 && s.Conflicts-conflictsAtStart >= s.MaxConflicts {
		return true
	}
	return s.interrupted()
}

// interrupted reports whether the solve context has been cancelled or
// has passed its deadline.
func (s *Solver) interrupted() bool {
	return s.Ctx != nil && s.Ctx.Err() != nil
}

// search runs CDCL until a verdict, a conflict budget is exhausted
// (returns Unknown for restart), or the global budget/deadline is hit.
func (s *Solver) search(assumptions []Lit, budget, conflictsAtStart, checkEvery int64) Status {
	var conflicts int64
	for {
		confl := s.propagate()
		if confl != nil {
			s.Conflicts++
			conflicts++
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			// If all decisions so far are assumptions, the
			// assumptions are jointly inconsistent.
			if s.decisionLevel() <= s.numAssumed {
				s.analyzeFinal(confl, assumptions)
				return Unsat
			}
			learnt, bt := s.analyze(confl)
			if bt < s.numAssumed {
				bt = s.numAssumed
				// Re-deciding the assumptions will re-derive the
				// conflict if it is at assumption level.
			}
			s.backtrackTo(bt)
			if len(learnt) == 1 {
				s.backtrackTo(0)
				s.numAssumed = 0
				if s.value(learnt[0]) == lFalse {
					s.ok = false
					return Unsat
				}
				if s.value(learnt[0]) == lUndef {
					s.uncheckedEnqueue(learnt[0], nil)
				}
			} else {
				c := s.newClause(learnt, true)
				s.learnts = append(s.learnts, c)
				s.attach(c)
				s.bumpClause(c)
				if s.value(learnt[0]) == lUndef {
					s.uncheckedEnqueue(learnt[0], c)
				}
			}
			s.varInc /= 0.95
			s.claInc /= 0.999
			if conflicts%checkEvery == 0 && s.exhausted(conflictsAtStart) {
				return Unknown
			}
			if conflicts >= budget {
				return Unknown // restart
			}
			continue
		}
		if int64(len(s.learnts)) > int64(len(s.clauses))/2+8192 {
			s.reduceDB()
		}
		// Select next decision: pending assumptions first.
		if s.decisionLevel() < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.value(a) {
			case lTrue:
				s.newDecisionLevel() // trivially satisfied; dummy level
				s.numAssumed = s.decisionLevel()
				continue
			case lFalse:
				s.finalFromAssumption(a, assumptions)
				return Unsat
			}
			s.newDecisionLevel()
			s.numAssumed = s.decisionLevel()
			s.uncheckedEnqueue(a, nil)
			continue
		}
		next := s.pickBranchLit()
		if next == -1 {
			// All variables assigned: model found.
			s.model = append(s.model[:0], s.assign...)
			return Sat
		}
		s.newDecisionLevel()
		s.uncheckedEnqueue(next, nil)
	}
}

// analyzeFinal computes the subset of assumptions responsible for a
// conflict while all decisions are assumptions.
func (s *Solver) analyzeFinal(confl *clause, assumptions []Lit) {
	isAssumption := make(map[Lit]bool, len(assumptions))
	for _, a := range assumptions {
		isAssumption[a] = true
	}
	core := map[Lit]bool{}
	var mark func(c *clause)
	seen := make([]bool, s.nVars)
	var stack []Var
	push := func(l Lit) {
		v := l.Var()
		if !seen[v] && s.info[v].level > 0 {
			seen[v] = true
			stack = append(stack, v)
		}
	}
	mark = func(c *clause) {
		for _, q := range c.lits {
			push(q)
		}
	}
	mark(confl)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		r := s.info[v].reason
		if r == nil {
			// Decision (assumption) variable.
			for _, a := range assumptions {
				if a.Var() == v {
					core[a] = true
				}
			}
			continue
		}
		mark(r)
	}
	s.conflCore = s.conflCore[:0]
	for _, a := range assumptions {
		if core[a] {
			s.conflCore = append(s.conflCore, a)
		}
	}
}

// finalFromAssumption handles the case where an assumption is already
// false when it is about to be decided.
func (s *Solver) finalFromAssumption(a Lit, assumptions []Lit) {
	// The negation of a was derived; walk its implication graph.
	s.conflCore = s.conflCore[:0]
	v := a.Var()
	if s.info[v].reason == nil {
		// a conflicts with an earlier assumption directly.
		s.conflCore = append(s.conflCore, a)
		for _, b := range assumptions {
			if b == a.Not() {
				s.conflCore = append(s.conflCore, b)
			}
		}
		return
	}
	seen := make([]bool, s.nVars)
	stack := []Var{v}
	seen[v] = true
	core := map[Lit]bool{a: true}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		r := s.info[u].reason
		if r == nil {
			for _, b := range assumptions {
				if b.Var() == u {
					core[b] = true
				}
			}
			continue
		}
		for _, q := range r.lits {
			w := q.Var()
			if !seen[w] && s.info[w].level > 0 {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	for _, b := range assumptions {
		if core[b] {
			s.conflCore = append(s.conflCore, b)
		}
	}
}

// ModelValue returns the value of v in the most recent satisfying
// assignment. It must only be called after Solve returned Sat.
// Variables allocated after that assignment was found are not
// constrained by it and report false (an arbitrary don't-care
// completion).
func (s *Solver) ModelValue(v Var) bool {
	return int(v) < len(s.model) && s.model[v] == lTrue
}

// FailedAssumptions returns, after Solve returned Unsat under
// assumptions, a subset of the assumptions that is sufficient for
// unsatisfiability. The slice is valid until the next Solve call.
func (s *Solver) FailedAssumptions() []Lit { return s.conflCore }
