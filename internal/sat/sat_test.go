package sat

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func lits(s *Solver, n int) []Lit {
	out := make([]Lit, n)
	for i := range out {
		out[i] = NewLit(s.NewVar(), false)
	}
	return out
}

func TestLitEncoding(t *testing.T) {
	l := NewLit(7, true)
	if l.Var() != 7 || !l.Neg() {
		t.Fatalf("encoding broken: %v %v", l.Var(), l.Neg())
	}
	if l.Not().Neg() || l.Not().Var() != 7 {
		t.Fatalf("negation broken")
	}
	if l.Not().Not() != l {
		t.Fatalf("double negation broken")
	}
}

func TestEmptySolverIsSat(t *testing.T) {
	s := New()
	if got := s.Solve(); got != Sat {
		t.Fatalf("empty solver: got %v, want sat", got)
	}
}

func TestUnitPropagation(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(NewLit(a, false))
	s.AddClause(NewLit(a, true), NewLit(b, false))
	if got := s.Solve(); got != Sat {
		t.Fatalf("got %v", got)
	}
	if !s.ModelValue(a) || !s.ModelValue(b) {
		t.Fatalf("model: a=%v b=%v, want both true", s.ModelValue(a), s.ModelValue(b))
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(NewLit(a, false))
	if s.AddClause(NewLit(a, true)) {
		t.Fatalf("adding contradictory unit should report false")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("got %v, want unsat", got)
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	if s.AddClause() {
		t.Fatalf("empty clause should make db unsat")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("got %v", got)
	}
}

func TestTautologyIgnored(t *testing.T) {
	s := New()
	a := s.NewVar()
	if !s.AddClause(NewLit(a, false), NewLit(a, true)) {
		t.Fatalf("tautology should be accepted")
	}
	if s.NumClauses() != 0 {
		t.Fatalf("tautology should not be stored")
	}
}

func TestDuplicateLiteralsCollapsed(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(NewLit(a, false), NewLit(a, false), NewLit(b, false))
	if got := s.Solve(NewLit(a, true), NewLit(b, true)); got != Unsat {
		t.Fatalf("got %v, want unsat under assumptions", got)
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("got %v, want sat without assumptions", got)
	}
}

// TestPigeonhole checks an inherently hard-for-resolution but small
// unsat family: n+1 pigeons in n holes.
func TestPigeonhole(t *testing.T) {
	for n := 2; n <= 6; n++ {
		s := New()
		// p[i][j]: pigeon i in hole j.
		p := make([][]Var, n+1)
		for i := range p {
			p[i] = make([]Var, n)
			for j := range p[i] {
				p[i][j] = s.NewVar()
			}
		}
		for i := 0; i <= n; i++ {
			cl := make([]Lit, n)
			for j := 0; j < n; j++ {
				cl[j] = NewLit(p[i][j], false)
			}
			s.AddClause(cl...)
		}
		for j := 0; j < n; j++ {
			for i := 0; i <= n; i++ {
				for k := i + 1; k <= n; k++ {
					s.AddClause(NewLit(p[i][j], true), NewLit(p[k][j], true))
				}
			}
		}
		if got := s.Solve(); got != Unsat {
			t.Fatalf("PHP(%d): got %v, want unsat", n, got)
		}
	}
}

func TestGraphColoringSat(t *testing.T) {
	// 3-color C5 (odd cycle): satisfiable with 3 colors.
	s := New()
	const n, k = 5, 3
	v := make([][]Var, n)
	for i := range v {
		v[i] = make([]Var, k)
		for c := range v[i] {
			v[i][c] = s.NewVar()
		}
		cl := make([]Lit, k)
		for c := 0; c < k; c++ {
			cl[c] = NewLit(v[i][c], false)
		}
		s.AddClause(cl...)
	}
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		for c := 0; c < k; c++ {
			s.AddClause(NewLit(v[i][c], true), NewLit(v[j][c], true))
		}
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("C5 3-coloring: got %v", got)
	}
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		for c := 0; c < k; c++ {
			if s.ModelValue(v[i][c]) && s.ModelValue(v[j][c]) {
				t.Fatalf("adjacent vertices %d,%d share color %d", i, j, c)
			}
		}
	}
}

func Test2ColoringOddCycleUnsat(t *testing.T) {
	s := New()
	const n = 7
	v := make([]Var, n)
	for i := range v {
		v[i] = s.NewVar()
	}
	// Edge (i, i+1): colors differ -> xor constraint as two clauses.
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		s.AddClause(NewLit(v[i], false), NewLit(v[j], false))
		s.AddClause(NewLit(v[i], true), NewLit(v[j], true))
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("odd cycle 2-coloring: got %v, want unsat", got)
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	// a -> b, b -> c
	s.AddClause(NewLit(a, true), NewLit(b, false))
	s.AddClause(NewLit(b, true), NewLit(c, false))
	if got := s.Solve(NewLit(a, false), NewLit(c, true)); got != Unsat {
		t.Fatalf("a ∧ ¬c should be unsat, got %v", got)
	}
	fa := s.FailedAssumptions()
	if len(fa) == 0 {
		t.Fatalf("want nonempty failed-assumption set")
	}
	// Solver must remain usable and the db untouched by assumptions.
	if got := s.Solve(NewLit(a, false)); got != Sat {
		t.Fatalf("a alone should be sat, got %v", got)
	}
	if !s.ModelValue(b) || !s.ModelValue(c) {
		t.Fatalf("implication chain not propagated in model")
	}
}

func TestFailedAssumptionsSubset(t *testing.T) {
	s := New()
	a, b, c, d := s.NewVar(), s.NewVar(), s.NewVar(), s.NewVar()
	// a ∧ b is contradictory via clauses; c, d irrelevant.
	s.AddClause(NewLit(a, true), NewLit(b, true))
	as := []Lit{NewLit(c, false), NewLit(a, false), NewLit(d, false), NewLit(b, false)}
	if got := s.Solve(as...); got != Unsat {
		t.Fatalf("got %v, want unsat", got)
	}
	fa := s.FailedAssumptions()
	for _, l := range fa {
		if l.Var() == c || l.Var() == d {
			t.Fatalf("failed assumptions include irrelevant literal %v", l)
		}
	}
	if len(fa) == 0 || len(fa) > 2 {
		t.Fatalf("failed assumptions should be {a,b}-subset, got %d lits", len(fa))
	}
}

func TestContradictoryAssumptions(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(NewLit(a, false), NewLit(a, true)) // tautology; db stays empty
	if got := s.Solve(NewLit(a, false), NewLit(a, true)); got != Unsat {
		t.Fatalf("directly contradictory assumptions: got %v", got)
	}
}

func TestSolveReusable(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(NewLit(a, false), NewLit(b, false))
	for i := 0; i < 10; i++ {
		if got := s.Solve(NewLit(a, true)); got != Sat {
			t.Fatalf("iter %d: got %v", i, got)
		}
		if !s.ModelValue(b) {
			t.Fatalf("iter %d: ¬a forces b", i)
		}
		if got := s.Solve(NewLit(a, true), NewLit(b, true)); got != Unsat {
			t.Fatalf("iter %d: got %v, want unsat", i, got)
		}
	}
}

func TestMaxConflictsBudget(t *testing.T) {
	s := New()
	s.MaxConflicts = 1
	// PHP(7) needs far more than one conflict.
	n := 7
	p := make([][]Var, n+1)
	for i := range p {
		p[i] = make([]Var, n)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i <= n; i++ {
		cl := make([]Lit, n)
		for j := 0; j < n; j++ {
			cl[j] = NewLit(p[i][j], false)
		}
		s.AddClause(cl...)
	}
	for j := 0; j < n; j++ {
		for i := 0; i <= n; i++ {
			for k := i + 1; k <= n; k++ {
				s.AddClause(NewLit(p[i][j], true), NewLit(p[k][j], true))
			}
		}
	}
	if got := s.Solve(); got != Unknown {
		t.Fatalf("with MaxConflicts=1 got %v, want unknown", got)
	}
	s.MaxConflicts = 0
	if got := s.Solve(); got != Unsat {
		t.Fatalf("without budget got %v, want unsat", got)
	}
}

func TestContextCancellation(t *testing.T) {
	s := New()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled
	s.Ctx = ctx
	n := 8
	p := make([][]Var, n+1)
	for i := range p {
		p[i] = make([]Var, n)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i <= n; i++ {
		cl := make([]Lit, n)
		for j := 0; j < n; j++ {
			cl[j] = NewLit(p[i][j], false)
		}
		s.AddClause(cl...)
	}
	for j := 0; j < n; j++ {
		for i := 0; i <= n; i++ {
			for k := i + 1; k <= n; k++ {
				s.AddClause(NewLit(p[i][j], true), NewLit(p[k][j], true))
			}
		}
	}
	if got := s.Solve(); got != Unknown {
		t.Fatalf("cancelled context: got %v, want unknown", got)
	}
	// An expired deadline behaves the same way — Unknown, promptly.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	s.Ctx = dctx
	if got := s.Solve(); got != Unknown {
		t.Fatalf("expired deadline: got %v, want unknown", got)
	}
	// With the interrupt lifted, the same instance gets a verdict.
	s.Ctx = nil
	if got := s.Solve(); got != Unsat {
		t.Fatalf("pigeonhole without interrupt: got %v, want unsat", got)
	}
}

// TestCancellationMidSearch cancels a context while the solver is deep
// in a hard search and asserts the call returns promptly with Unknown —
// the bound the streaming sweep's cancellation guarantee rests on.
func TestCancellationMidSearch(t *testing.T) {
	s := New()
	// A hard unsat instance: pigeonhole with 10 pigeons, too hard to
	// finish in the test's grace window, so the verdict can only come
	// from the interrupt.
	n := 10
	p := make([][]Var, n+1)
	for i := range p {
		p[i] = make([]Var, n)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i <= n; i++ {
		cl := make([]Lit, n)
		for j := 0; j < n; j++ {
			cl[j] = NewLit(p[i][j], false)
		}
		s.AddClause(cl...)
	}
	for j := 0; j < n; j++ {
		for i := 0; i <= n; i++ {
			for k := i + 1; k <= n; k++ {
				s.AddClause(NewLit(p[i][j], true), NewLit(p[k][j], true))
			}
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.Ctx = ctx
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	done := make(chan Status, 1)
	go func() { done <- s.Solve() }()
	select {
	case got := <-done:
		if got != Unknown {
			// The instance finishing before the cancel would be a
			// surprise, but not an interrupt bug.
			t.Logf("solver finished before cancellation with %v", got)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled solve did not return within 10s")
	}
}

// naiveSat decides satisfiability of a CNF by exhaustive enumeration.
func naiveSat(nVars int, cnf [][]Lit) bool {
	for m := 0; m < 1<<nVars; m++ {
		ok := true
		for _, cl := range cnf {
			cOK := false
			for _, l := range cl {
				bit := m>>uint(l.Var())&1 == 1
				if bit != l.Neg() {
					cOK = true
					break
				}
			}
			if !cOK {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestRandom3SATAgainstNaive cross-checks the CDCL verdict against
// brute force on random small formulas (a differential property test).
func TestRandom3SATAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 300; iter++ {
		nVars := 3 + rng.Intn(8) // 3..10
		nCls := 1 + rng.Intn(40)
		cnf := make([][]Lit, nCls)
		s := New()
		vs := make([]Var, nVars)
		for i := range vs {
			vs[i] = s.NewVar()
		}
		for i := range cnf {
			k := 1 + rng.Intn(3)
			cl := make([]Lit, k)
			for j := range cl {
				cl[j] = NewLit(vs[rng.Intn(nVars)], rng.Intn(2) == 1)
			}
			cnf[i] = cl
			s.AddClause(cl...)
		}
		want := naiveSat(nVars, cnf)
		got := s.Solve()
		if (got == Sat) != want {
			t.Fatalf("iter %d: naive=%v cdcl=%v cnf=%v", iter, want, got, cnf)
		}
		if got == Sat {
			// Verify the model actually satisfies the formula.
			for _, cl := range cnf {
				ok := false
				for _, l := range cl {
					if s.ModelValue(l.Var()) != l.Neg() {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("iter %d: model does not satisfy %v", iter, cl)
				}
			}
		}
	}
}

// TestAssumptionEquivalentToUnit property: Solve(assumption a) must
// agree with adding a as a unit clause to a copy.
func TestAssumptionEquivalentToUnit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		nVars := 3 + rng.Intn(6)
		nCls := 1 + rng.Intn(25)
		type rawClause []Lit
		cls := make([]rawClause, nCls)
		for i := range cls {
			k := 1 + rng.Intn(3)
			cl := make(rawClause, k)
			for j := range cl {
				cl[j] = NewLit(Var(rng.Intn(nVars)), rng.Intn(2) == 1)
			}
			cls[i] = cl
		}
		assume := NewLit(Var(rng.Intn(nVars)), rng.Intn(2) == 1)

		s1 := New()
		s2 := New()
		for i := 0; i < nVars; i++ {
			s1.NewVar()
			s2.NewVar()
		}
		ok2 := true
		for _, cl := range cls {
			s1.AddClause(cl...)
			if !s2.AddClause(cl...) {
				ok2 = false
			}
		}
		var got2 Status
		if ok2 && s2.AddClause(assume) {
			got2 = s2.Solve()
		} else {
			got2 = Unsat
		}
		got1 := s1.Solve(assume)
		if got1 != got2 {
			t.Fatalf("iter %d: assumption=%v unit=%v (assume %v, cls %v)", iter, got1, got2, assume, cls)
		}
	}
}

func TestLubySequence(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestQuickMedian(t *testing.T) {
	if m := quickMedian([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("median of {3,1,2} = %v", m)
	}
	if m := quickMedian(nil); m != 0 {
		t.Fatalf("median of empty = %v", m)
	}
	if m := quickMedian([]float64{5}); m != 5 {
		t.Fatalf("median of {5} = %v", m)
	}
}

// Property: the heap always pops variables in nonincreasing activity
// order when activities are fixed.
func TestHeapOrderProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 50 {
			return true
		}
		act := make([]float64, len(raw))
		h := newVarHeap(&act)
		for i, a := range raw {
			act[i] = float64(a)
			h.insert(Var(i))
		}
		prev := 1e18
		for {
			v, ok := h.removeMax()
			if !ok {
				break
			}
			if act[v] > prev {
				return false
			}
			prev = act[v]
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHeapReinsertIdempotent(t *testing.T) {
	act := []float64{1, 2, 3}
	h := newVarHeap(&act)
	h.insert(0)
	h.insert(0)
	h.insert(1)
	h.insert(2)
	if len(h.heap) != 3 {
		t.Fatalf("duplicate insert grew heap: %d", len(h.heap))
	}
	if v, _ := h.removeMax(); v != 2 {
		t.Fatalf("max = %v, want 2", v)
	}
}

// TestSolveAssumingActivationLiterals exercises the retractable-clause
// idiom SolveAssuming exists for: constraint groups are guarded by
// activation literals and toggled per query, with the clause database
// built exactly once.
func TestSolveAssumingActivationLiterals(t *testing.T) {
	s := New()
	x, y := s.NewVar(), s.NewVar()
	actA, actB := s.NewVar(), s.NewVar()
	// Group A: x ∧ y. Group B: ¬x.
	s.AddClause(NewLit(actA, true), NewLit(x, false))
	s.AddClause(NewLit(actA, true), NewLit(y, false))
	s.AddClause(NewLit(actB, true), NewLit(x, true))
	clauses := s.NumClauses()

	if got := s.SolveAssuming(NewLit(actA, false)); got != Sat {
		t.Fatalf("group A alone: %v, want sat", got)
	}
	if !s.ModelValue(x) || !s.ModelValue(y) {
		t.Fatalf("group A model: x=%v y=%v", s.ModelValue(x), s.ModelValue(y))
	}
	if got := s.SolveAssuming(NewLit(actB, false)); got != Sat {
		t.Fatalf("group B alone: %v, want sat", got)
	}
	if s.ModelValue(x) {
		t.Fatal("group B model should force ¬x")
	}
	if got := s.SolveAssuming(NewLit(actA, false), NewLit(actB, false)); got != Unsat {
		t.Fatalf("both groups: %v, want unsat", got)
	}
	fa := s.FailedAssumptions()
	if len(fa) != 2 {
		t.Fatalf("failed assumptions = %v, want both activation literals", fa)
	}
	// Retraction is free: the next query simply drops an assumption.
	if got := s.SolveAssuming(NewLit(actA, false)); got != Sat {
		t.Fatalf("after retracting B: %v, want sat", got)
	}
	if s.NumClauses() != clauses {
		t.Fatalf("clause database changed across queries: %d -> %d", clauses, s.NumClauses())
	}
	if s.Solves != 4 {
		t.Fatalf("Solves = %d, want 4", s.Solves)
	}
}

// TestSolveAssumingRetainsLearnts: conflicts hit under one set of
// assumptions must leave learned clauses behind for later queries —
// the reuse the incremental bv session is built on.
func TestSolveAssumingRetainsLearnts(t *testing.T) {
	s := New()
	act := s.NewVar()
	x, y := s.NewVar(), s.NewVar()
	// Under act: all four clauses over {x, y}, i.e. a contradiction that
	// needs at least one decision and conflict analysis to refute.
	for _, cl := range [][]Lit{
		{NewLit(x, false), NewLit(y, false)},
		{NewLit(x, false), NewLit(y, true)},
		{NewLit(x, true), NewLit(y, false)},
		{NewLit(x, true), NewLit(y, true)},
	} {
		s.AddClause(append([]Lit{NewLit(act, true)}, cl...)...)
	}
	if got := s.SolveAssuming(NewLit(act, false)); got != Unsat {
		t.Fatalf("activated contradiction: %v, want unsat", got)
	}
	if fa := s.FailedAssumptions(); len(fa) != 1 || fa[0] != NewLit(act, false) {
		t.Fatalf("failed assumptions = %v, want [act]", fa)
	}
	learnts := s.NumLearnts()
	if learnts == 0 {
		t.Fatal("refutation produced no learned clauses")
	}
	// The learned clauses survive into the next query and the solver
	// remains complete on the relaxed problem.
	if got := s.SolveAssuming(); got != Sat {
		t.Fatalf("deactivated: %v, want sat", got)
	}
	if s.ModelValue(act) {
		t.Fatal("model should deactivate the contradictory group")
	}
	if s.NumLearnts() < learnts {
		t.Fatalf("learned clauses dropped across queries: %d -> %d", learnts, s.NumLearnts())
	}
}

func BenchmarkSolvePigeonhole6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		n := 6
		p := make([][]Var, n+1)
		for i := range p {
			p[i] = make([]Var, n)
			for j := range p[i] {
				p[i][j] = s.NewVar()
			}
		}
		for i := 0; i <= n; i++ {
			cl := make([]Lit, n)
			for j := 0; j < n; j++ {
				cl[j] = NewLit(p[i][j], false)
			}
			s.AddClause(cl...)
		}
		for j := 0; j < n; j++ {
			for i := 0; i <= n; i++ {
				for k := i + 1; k <= n; k++ {
					s.AddClause(NewLit(p[i][j], true), NewLit(p[k][j], true))
				}
			}
		}
		if s.Solve() != Unsat {
			b.Fatal("wrong verdict")
		}
	}
}

func BenchmarkSolveRandom3SAT(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New()
		nVars := 60
		vs := make([]Var, nVars)
		for j := range vs {
			vs[j] = s.NewVar()
		}
		for c := 0; c < 250; c++ {
			s.AddClause(
				NewLit(vs[rng.Intn(nVars)], rng.Intn(2) == 1),
				NewLit(vs[rng.Intn(nVars)], rng.Intn(2) == 1),
				NewLit(vs[rng.Intn(nVars)], rng.Intn(2) == 1),
			)
		}
		s.Solve()
	}
}
