// Command benchjson runs a fixed benchmark set and renders the results
// as a machine-readable checkpoint (BENCH_<n>.json), or compares a
// fresh run against the last committed checkpoint and fails on
// regression. It is the mechanism behind `make bench-json` and the
// `bench-gate` step of `make ci`; EXPERIMENTS.md documents the schema
// and the workflow.
//
// Generate a checkpoint:
//
//	go run ./scripts/benchjson -out BENCH_6.json
//
// Gate against the newest committed checkpoint (exit 0 with a notice
// when none exists yet, so fresh clones and new benchmark sets pass):
//
//	go run ./scripts/benchjson -compare-latest
//
// The tolerance bands are deliberately asymmetric: wall-clock (ns/op)
// gets a wide 4x band because CI machines vary, allocations get a
// tight 1.25x band because allocs/op is deterministic, and the
// higher-is-better quality metrics (queries-per-blast, hit rates,
// parallel speedup) may not drop below a fixed fraction of the
// checkpoint.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

const schemaVersion = 1

// defaultBenchSet is the trajectory benchmark set: one end-to-end sweep
// profile (Fig. 16 Kerberos), the parallel-sweep speedup benchmark, the
// incremental-vs-scratch solver benchmark, the SSA pass-stack
// differential benchmark, the global-analysis (SCCP/hoisting) branch-
// heavy benchmark, and the warm result-cache sweep benchmark.
const defaultBenchSet = "BenchmarkFig16Kerberos|BenchmarkSweepParallel|BenchmarkIncrementalVsScratch|BenchmarkSSAChainHeavy|BenchmarkSCCPBranchHeavy|BenchmarkWarmSweep"

// Benchmark is one benchmark's measurements: the standard testing
// quantities plus every custom b.ReportMetric value, keyed by unit.
type Benchmark struct {
	NsPerOp     float64            `json:"nsPerOp"`
	BytesPerOp  float64            `json:"bytesPerOp"`
	AllocsPerOp float64            `json:"allocsPerOp"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// File is the checkpoint schema. Fields are append-only; Schema bumps
// only on incompatible changes.
type File struct {
	Schema     int                  `json:"schema"`
	Checkpoint int                  `json:"checkpoint"`
	Go         string               `json:"go"`
	Bench      string               `json:"bench"`
	Benchtime  string               `json:"benchtime"`
	Benchmarks map[string]Benchmark `json:"benchmarks"`
}

// gate is one tolerance rule applied during -compare.
type gate struct {
	quantity string  // what is compared, for the failure message
	current  float64 // fresh run
	baseline float64 // committed checkpoint
	maxRatio float64 // current/baseline must stay <= maxRatio (0 = unchecked)
	minRatio float64 // current/baseline must stay >= minRatio (0 = unchecked)
}

// Lower-is-better bands. ns/op is wide because single-iteration wall
// clock on shared CI machines is noisy; allocs/op is tight because it
// is deterministic for a deterministic workload.
const (
	nsBand     = 4.0
	allocsBand = 1.25
)

// higherBetter maps custom metrics that gate the trajectory to the
// minimum allowed fraction of the checkpoint value. Metrics not listed
// here are recorded but informational.
var higherBetter = map[string]float64{
	"queries-per-blast": 0.75,
	"rewrite-hit-rate":  0.75,
	"cache-hit-rate":    0.75,
	// Parallel speedup depends on the machine's core count and load;
	// the band is correspondingly loose.
	"speedup-vs-serial": 0.6,
	// Legacy blasted terms over SSA blasted terms on the chain-heavy
	// corpus (BenchmarkSSAChainHeavy); the benchmark itself fails
	// unless the reduction is strictly above 1, so the band here only
	// guards against the margin eroding across checkpoints.
	"blast-reduction": 0.75,
	// Fraction of warm-sweep files answered from the result cache
	// (BenchmarkWarmSweep). The benchmark fatals below 1.0, so the band
	// is nearly tight; it exists so a checkpoint diff shows the gate.
	"warm-hit-rate": 0.99,
	// Global-analysis pass counters on the branch-heavy corpus
	// (BenchmarkSCCPBranchHeavy). Both are deterministic counts of what
	// the passes proved on a fixed corpus, so the bands are nearly
	// tight: a drop means a pass silently stopped firing.
	"sccp-folded-branches": 0.99,
	"hoisted-ub-terms":     0.99,
	// Legacy queries over SSA queries on the same corpus; the benchmark
	// fatals unless it is strictly above 1.
	"query-reduction": 0.75,
}

func main() {
	var (
		benchSet      = flag.String("bench", defaultBenchSet, "benchmark regexp to run")
		benchtime     = flag.String("benchtime", "1x", "go test -benchtime value")
		out           = flag.String("out", "", "write the checkpoint JSON to this file (BENCH_<n>.json)")
		compare       = flag.String("compare", "", "compare a fresh run against this checkpoint file")
		compareLatest = flag.Bool("compare-latest", false, "compare against the highest-numbered BENCH_<n>.json in the module root")
	)
	flag.Parse()

	root, err := moduleRoot()
	if err != nil {
		fatal(err)
	}

	baselinePath := *compare
	if *compareLatest {
		baselinePath, err = latestCheckpoint(root)
		if err != nil {
			fatal(err)
		}
		if baselinePath == "" {
			fmt.Println("benchjson: no BENCH_<n>.json checkpoint committed yet; nothing to gate against (run with -out to create one)")
			return
		}
	}

	results, err := runBenchmarks(root, *benchSet, *benchtime)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmarks matched %q", *benchSet))
	}

	cur := &File{
		Schema:     schemaVersion,
		Go:         runtime.Version(),
		Bench:      *benchSet,
		Benchtime:  *benchtime,
		Benchmarks: results,
	}

	if baselinePath != "" {
		base, err := readCheckpoint(baselinePath)
		if err != nil {
			fatal(err)
		}
		if failures := compareFiles(cur, base); len(failures) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: regression against %s:\n", filepath.Base(baselinePath))
			for _, f := range failures {
				fmt.Fprintf(os.Stderr, "  %s\n", f)
			}
			os.Exit(1)
		}
		fmt.Printf("benchjson: within tolerance of %s (%d benchmarks)\n",
			filepath.Base(baselinePath), len(cur.Benchmarks))
	}

	if *out != "" {
		cur.Checkpoint = checkpointNumber(*out)
		buf, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			fatal(err)
		}
		path := *out
		if !filepath.IsAbs(path) {
			path = filepath.Join(root, path)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchjson: wrote %s\n", path)
	}

	if *out == "" && baselinePath == "" {
		// Neither writing nor gating: print for inspection.
		buf, _ := json.MarshalIndent(cur, "", "  ")
		fmt.Println(string(buf))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod, so the tool works from any subdirectory.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}

var checkpointName = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// checkpointNumber extracts <n> from a BENCH_<n>.json path; 0 when the
// name does not follow the convention.
func checkpointNumber(path string) int {
	m := checkpointName.FindStringSubmatch(filepath.Base(path))
	if m == nil {
		return 0
	}
	n, _ := strconv.Atoi(m[1])
	return n
}

// latestCheckpoint returns the highest-numbered BENCH_<n>.json in the
// module root, or "" when none exists.
func latestCheckpoint(root string) (string, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, e := range entries {
		if n := checkpointNumber(e.Name()); checkpointName.MatchString(e.Name()) && n > bestN {
			best, bestN = filepath.Join(root, e.Name()), n
		}
	}
	return best, nil
}

func readCheckpoint(path string) (*File, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(buf, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != schemaVersion {
		return nil, fmt.Errorf("%s: schema %d, this tool speaks %d", path, f.Schema, schemaVersion)
	}
	return &f, nil
}

// runBenchmarks executes the set under `go test -bench` and parses the
// standard benchmark output format.
func runBenchmarks(root, set, benchtime string) (map[string]Benchmark, error) {
	cmd := exec.Command("go", "test", "-run", "NONE",
		"-bench", set, "-benchtime", benchtime, "-benchmem", ".")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go test -bench failed: %v\n%s", err, out)
	}
	return parseBenchOutput(string(out))
}

// parseBenchOutput extracts one Benchmark per result line. The format
// is: name, iteration count, then value/unit pairs —
//
//	BenchmarkX-8  1  12345 ns/op  67 B/op  8 allocs/op  0.95 hit-rate
//
// The -<procs> suffix is stripped so checkpoint keys are stable across
// machines.
func parseBenchOutput(out string) (map[string]Benchmark, error) {
	results := make(map[string]Benchmark)
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		b := Benchmark{Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("parsing %q: bad value %q", line, fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = val
			case "B/op":
				b.BytesPerOp = val
			case "allocs/op":
				b.AllocsPerOp = val
			default:
				b.Metrics[unit] = val
			}
		}
		if len(b.Metrics) == 0 {
			b.Metrics = nil
		}
		results[name] = b
	}
	return results, nil
}

// compareFiles applies the tolerance bands of every benchmark present
// in the baseline; benchmarks only in the current run are new and pass
// by definition. Returns human-readable failure descriptions.
func compareFiles(cur, base *File) []string {
	var failures []string
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		bb := base.Benchmarks[name]
		cb, ok := cur.Benchmarks[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in checkpoint but missing from this run", name))
			continue
		}
		gates := []gate{
			{quantity: "ns/op", current: cb.NsPerOp, baseline: bb.NsPerOp, maxRatio: nsBand},
			{quantity: "allocs/op", current: cb.AllocsPerOp, baseline: bb.AllocsPerOp, maxRatio: allocsBand},
		}
		for metric, minRatio := range higherBetter {
			bv, inBase := bb.Metrics[metric]
			cv, inCur := cb.Metrics[metric]
			if !inBase {
				continue // metric added after the checkpoint: informational
			}
			if !inCur {
				failures = append(failures, fmt.Sprintf("%s: metric %s disappeared (checkpoint %.4g)", name, metric, bv))
				continue
			}
			gates = append(gates, gate{quantity: metric, current: cv, baseline: bv, minRatio: minRatio})
		}
		for _, g := range gates {
			if g.baseline == 0 {
				continue // nothing to compare against (e.g. allocs not measured)
			}
			ratio := g.current / g.baseline
			if g.maxRatio > 0 && ratio > g.maxRatio {
				failures = append(failures, fmt.Sprintf(
					"%s: %s %.4g vs checkpoint %.4g (%.2fx, allowed <= %.2fx)",
					name, g.quantity, g.current, g.baseline, ratio, g.maxRatio))
			}
			if g.minRatio > 0 && ratio < g.minRatio {
				failures = append(failures, fmt.Sprintf(
					"%s: %s %.4g vs checkpoint %.4g (%.2fx, allowed >= %.2fx)",
					name, g.quantity, g.current, g.baseline, ratio, g.minRatio))
			}
		}
	}
	return failures
}
