package main

import (
	"os"
	"path/filepath"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
BenchmarkFig16Kerberos-8            1   317065912 ns/op   0.3041 analysis-sec   126755856 B/op   1186144 allocs/op
BenchmarkSweepParallel-8            1   349499309 ns/op   0.8403 cache-hit-rate   0.7020 rewrite-hit-rate   1.031 speedup-vs-serial   115532776 B/op   1052704 allocs/op
PASS
ok      repro   12.3s
`

func TestParseBenchOutput(t *testing.T) {
	got, err := parseBenchOutput(sampleOutput)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(got))
	}
	k, ok := got["BenchmarkFig16Kerberos"] // -8 suffix stripped
	if !ok {
		t.Fatalf("missing BenchmarkFig16Kerberos (procs suffix not stripped?): %v", got)
	}
	if k.NsPerOp != 317065912 || k.AllocsPerOp != 1186144 || k.BytesPerOp != 126755856 {
		t.Errorf("standard quantities misparsed: %+v", k)
	}
	if k.Metrics["analysis-sec"] != 0.3041 {
		t.Errorf("custom metric misparsed: %+v", k.Metrics)
	}
	if sp := got["BenchmarkSweepParallel"]; sp.Metrics["cache-hit-rate"] != 0.8403 {
		t.Errorf("cache-hit-rate misparsed: %+v", sp.Metrics)
	}
}

func mkFile(benchmarks map[string]Benchmark) *File {
	return &File{Schema: schemaVersion, Benchmarks: benchmarks}
}

func TestCompareWithinBands(t *testing.T) {
	base := mkFile(map[string]Benchmark{
		"BenchmarkX": {NsPerOp: 100, AllocsPerOp: 1000,
			Metrics: map[string]float64{"queries-per-blast": 4, "cache-hit-rate": 0.8}},
	})
	cur := mkFile(map[string]Benchmark{
		"BenchmarkX": {NsPerOp: 350, AllocsPerOp: 1200, // inside 4x / 1.25x
			Metrics: map[string]float64{"queries-per-blast": 3.2, "cache-hit-rate": 0.7}},
	})
	if fails := compareFiles(cur, base); len(fails) != 0 {
		t.Errorf("in-band run failed the gate: %v", fails)
	}
}

func TestCompareRegressions(t *testing.T) {
	base := mkFile(map[string]Benchmark{
		"BenchmarkX": {NsPerOp: 100, AllocsPerOp: 1000,
			Metrics: map[string]float64{"queries-per-blast": 4}},
	})
	for name, cur := range map[string]*File{
		"slow":          mkFile(map[string]Benchmark{"BenchmarkX": {NsPerOp: 500, AllocsPerOp: 1000, Metrics: map[string]float64{"queries-per-blast": 4}}}),
		"allocs":        mkFile(map[string]Benchmark{"BenchmarkX": {NsPerOp: 100, AllocsPerOp: 1300, Metrics: map[string]float64{"queries-per-blast": 4}}}),
		"metric":        mkFile(map[string]Benchmark{"BenchmarkX": {NsPerOp: 100, AllocsPerOp: 1000, Metrics: map[string]float64{"queries-per-blast": 2}}}),
		"metric-gone":   mkFile(map[string]Benchmark{"BenchmarkX": {NsPerOp: 100, AllocsPerOp: 1000}}),
		"bench-missing": mkFile(map[string]Benchmark{}),
	} {
		if fails := compareFiles(cur, base); len(fails) == 0 {
			t.Errorf("%s regression passed the gate", name)
		}
	}
}

func TestCompareNewBenchmarkAndMetricPass(t *testing.T) {
	base := mkFile(map[string]Benchmark{
		"BenchmarkX": {NsPerOp: 100, AllocsPerOp: 1000},
	})
	cur := mkFile(map[string]Benchmark{
		"BenchmarkX": {NsPerOp: 100, AllocsPerOp: 1000,
			Metrics: map[string]float64{"cache-hit-rate": 0.9}}, // post-checkpoint metric
		"BenchmarkNew": {NsPerOp: 5, AllocsPerOp: 7},
	})
	if fails := compareFiles(cur, base); len(fails) != 0 {
		t.Errorf("additive run failed the gate: %v", fails)
	}
}

func TestCheckpointDiscovery(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_2.json", "BENCH_10.json", "BENCH_x.json", "notes.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := latestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_10.json" {
		t.Errorf("latestCheckpoint = %q, want BENCH_10.json", got)
	}
	if n := checkpointNumber(got); n != 10 {
		t.Errorf("checkpointNumber = %d, want 10", n)
	}

	empty := t.TempDir()
	if got, err := latestCheckpoint(empty); err != nil || got != "" {
		t.Errorf("empty dir: got %q, %v; want \"\", nil", got, err)
	}
}
