#!/usr/bin/env bash
# invariants.sh — structural invariants the ROADMAP freezes, enforced
# mechanically so a refactor cannot drift past them in review.
#
#   1. One emitter. The ordered-emission pending-map pattern (a
#      map[int]-keyed reorder buffer) lives in internal/emit and
#      nowhere else; a second copy is how the pre-PR-4 sweep and
#      service layers diverged. Any non-test Go file outside
#      internal/emit that builds a pending map[int] buffer fails the
#      check.
#
#   2. Append-only diagnostic codes. Every code ever published in
#      scripts/codes.manifest (STACK-* rule IDs, UB0* condition codes)
#      must still exist verbatim as a quoted string in the non-test
#      sources, and every such literal in the sources must be listed in
#      the manifest. Renaming or deleting a published code breaks
#      downstream suppression files; adding one means appending it to
#      the manifest in the same change.
#
#   3. Complete cache fingerprint. Every field of core.Options and
#      core.Flags must appear by name (FieldName= / Flags.FieldName=)
#      in the options fingerprint of stack/cachekey.go. A new
#      result-affecting option that is not folded into the fingerprint
#      would let a stale cache entry serve wrong results under the new
#      option; this check (and the reflection test
#      TestOptionsFingerprintCoversAllFields) makes that a CI failure
#      instead of a latent correctness bug.
#
#   4. Accounted SSA passes. Every pass invoked by ir.RunSSAPasses must
#      be registered here with a core.Stats counter that exists in the
#      Stats struct and a differential fuzz oracle that exists in the
#      test sources. An optimizing pass without a counter is invisible
#      in production stats; one without a differential oracle can
#      miscompile silently (the SCCP/exec phi-prefix bug was caught by
#      exactly such an oracle). Adding a pass to RunSSAPasses without
#      registering both is a CI failure.
#
# Usage:
#   scripts/invariants.sh              # check the repository
#   scripts/invariants.sh --self-test  # prove the checks can fail
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"

# go_sources DIR — non-test, non-vendored Go files under DIR.
go_sources() {
	find "$1" -name '*.go' ! -name '*_test.go' ! -path '*/testdata/*' -type f
}

# check_one_emitter DIR — fail if a pending map[int] reorder buffer
# exists outside internal/emit.
check_one_emitter() {
	local root="$1" bad=0 f
	while IFS= read -r f; do
		case "$f" in
		*/internal/emit/*) continue ;;
		esac
		if grep -nE 'pending[[:alnum:]_]*[[:space:]]*:?=.*map\[int\]' "$f" /dev/null; then
			bad=1
		fi
	done < <(go_sources "$root")
	if [ "$bad" -ne 0 ]; then
		echo "invariants: FAIL: pending-map reorder buffer outside internal/emit (one-emitter invariant)" >&2
		return 1
	fi
	echo "invariants: ok: one emitter"
}

# check_codes DIR MANIFEST — bidirectional append-only check between
# the manifest and the quoted diagnostic-code literals in DIR.
check_codes() {
	local root="$1" manifest="$2" bad=0 code
	if [ ! -f "$manifest" ]; then
		echo "invariants: FAIL: missing manifest $manifest" >&2
		return 1
	fi
	local srcs
	srcs="$(go_sources "$root")"
	while IFS= read -r code; do
		[ -n "$code" ] || continue
		# shellcheck disable=SC2086
		if ! grep -qF "\"$code\"" $srcs; then
			echo "invariants: FAIL: published code $code edited or removed (codes are append-only)" >&2
			bad=1
		fi
	done <"$manifest"
	# shellcheck disable=SC2086
	while IFS= read -r code; do
		if ! grep -qxF "$code" "$manifest"; then
			echo "invariants: FAIL: code $code in sources but not in $manifest (append it)" >&2
			bad=1
		fi
	done < <(grep -hoE '"(STACK-[A-Z][0-9]{3}|UB0[0-9]{2})"' $srcs | tr -d '"' | sort -u)
	[ "$bad" -eq 0 ] || return 1
	echo "invariants: ok: diagnostic codes append-only"
}

# struct_fields FILE STRUCT — exported field names of `type STRUCT
# struct { ... }` in FILE, one per line (first brace-balanced block;
# nested literals do not occur in the options structs).
struct_fields() {
	awk -v s="$2" '
		$0 == "type " s " struct {" { in_struct = 1; next }
		in_struct && /^}/ { exit }
		in_struct && $1 ~ /^[A-Z][A-Za-z0-9_]*$/ && NF >= 2 { print $1 }
	' "$1"
}

# check_fingerprint CORE_FILE KEY_FILE — every core.Options field (and
# Flags.<field> for the embedded compiler-flag struct) must be named in
# the fingerprint builder.
check_fingerprint() {
	local core_file="$1" key_file="$2" bad=0 f
	if [ ! -f "$core_file" ] || [ ! -f "$key_file" ]; then
		echo "invariants: FAIL: missing $core_file or $key_file" >&2
		return 1
	fi
	local opts_fields
	opts_fields="$(struct_fields "$core_file" Options)"
	if [ -z "$opts_fields" ]; then
		echo "invariants: FAIL: no Options fields parsed from $core_file" >&2
		return 1
	fi
	while IFS= read -r f; do
		if [ "$f" = "Flags" ]; then
			continue # covered field-by-field below
		fi
		if ! grep -qF "$f=" "$key_file"; then
			echo "invariants: FAIL: core.Options.$f missing from the cache fingerprint in $key_file" >&2
			bad=1
		fi
	done <<<"$opts_fields"
	while IFS= read -r f; do
		if ! grep -qF "Flags.$f=" "$key_file"; then
			echo "invariants: FAIL: core.Flags.$f missing from the cache fingerprint in $key_file" >&2
			bad=1
		fi
	done < <(struct_fields "$core_file" Flags)
	[ "$bad" -eq 0 ] || return 1
	echo "invariants: ok: cache fingerprint covers every core.Options field"
}

# check_ssa_passes IR_FILE CORE_FILE TEST_ROOT — every pass invoked in
# the body of RunSSAPasses (IR_FILE) must have a registry row below
# mapping it to a core.Stats counter (present in CORE_FILE's Stats
# struct) and a differential fuzz oracle (a Fuzz* function present in
# the _test.go sources under TEST_ROOT).
check_ssa_passes() {
	local ir_file="$1" core_file="$2" test_root="$3" bad=0 pass counter oracle row
	if [ ! -f "$ir_file" ] || [ ! -f "$core_file" ]; then
		echo "invariants: FAIL: missing $ir_file or $core_file" >&2
		return 1
	fi
	# Registry: pass function -> core.Stats counter -> differential
	# oracle. PromoteAllocas and DSE predate the per-pass exec fuzzers
	# and are covered by the end-to-end byte-identity oracle.
	local table="PromoteAllocas PromotedAllocas FuzzSSADifferential
SCCP SCCPFoldedValues FuzzSCCPDifferential
GVN GVNHits FuzzGVNDifferential
DSE EliminatedStores FuzzSSADifferential
HoistLoopInvariantUB HoistedUBTerms FuzzHoistDifferential"
	# Pass invocations in the RunSSAPasses body (`x := PassName(f...)`).
	local invoked
	invoked="$(awk '
		/^func RunSSAPasses\(/ { in_fn = 1 }
		in_fn && /^}/ { exit }
		in_fn { print }
	' "$ir_file" | grep -oE ':= [A-Z][A-Za-z0-9]*\(' | sed 's/:= //; s/(//' | sort -u)"
	if [ -z "$invoked" ]; then
		echo "invariants: FAIL: no passes parsed from RunSSAPasses in $ir_file" >&2
		return 1
	fi
	local stats_fields
	stats_fields="$(struct_fields "$core_file" Stats)"
	while IFS= read -r pass; do
		row="$(printf '%s\n' "$table" | awk -v p="$pass" '$1 == p')"
		if [ -z "$row" ]; then
			echo "invariants: FAIL: SSA pass $pass in RunSSAPasses has no registered counter/oracle (add a registry row in check_ssa_passes)" >&2
			bad=1
			continue
		fi
		counter="$(printf '%s' "$row" | awk '{print $2}')"
		oracle="$(printf '%s' "$row" | awk '{print $3}')"
		if ! printf '%s\n' "$stats_fields" | grep -qx "$counter"; then
			echo "invariants: FAIL: SSA pass $pass counter $counter missing from core.Stats in $core_file" >&2
			bad=1
		fi
		if ! grep -rqE "func $oracle\(" --include='*_test.go' "$test_root"; then
			echo "invariants: FAIL: SSA pass $pass differential oracle $oracle not found under $test_root" >&2
			bad=1
		fi
	done <<<"$invoked"
	[ "$bad" -eq 0 ] || return 1
	echo "invariants: ok: every SSA pass has a stats counter and a differential oracle"
}

self_test() {
	local tmp pass=0
	tmp="$(mktemp -d)"
	# shellcheck disable=SC2064  # expand now: tmp is local to this function
	trap "rm -rf '$tmp'" EXIT

	# A second pending map outside internal/emit must fail.
	mkdir -p "$tmp/a/stack/service"
	cat >"$tmp/a/stack/service/buffer.go" <<-'EOF'
		package service

		func drain() {
			pending := make(map[int]string)
			_ = pending
		}
	EOF
	if check_one_emitter "$tmp/a" >/dev/null 2>&1; then
		echo "invariants: SELF-TEST FAIL: rogue pending map not detected" >&2
		pass=1
	fi

	# The canonical emitter itself must pass.
	mkdir -p "$tmp/b/internal/emit"
	cat >"$tmp/b/internal/emit/emit.go" <<-'EOF'
		package emit

		func run() {
			pending := make(map[int]int)
			_ = pending
		}
	EOF
	if ! check_one_emitter "$tmp/b" >/dev/null 2>&1; then
		echo "invariants: SELF-TEST FAIL: canonical emitter rejected" >&2
		pass=1
	fi

	# A mutated published code (UB003 -> UB303) must fail both ways:
	# the manifest entry is gone from the sources, and the new literal
	# is not in the manifest.
	mkdir -p "$tmp/c/stack"
	printf 'UB003\n' >"$tmp/c/codes.manifest"
	cat >"$tmp/c/stack/diagnostic.go" <<-'EOF'
		package stack

		const UBCodeSignedOverflow = "UB303"
	EOF
	if check_codes "$tmp/c" "$tmp/c/codes.manifest" >/dev/null 2>&1; then
		echo "invariants: SELF-TEST FAIL: mutated code not detected" >&2
		pass=1
	fi

	# An intact code set must pass.
	mkdir -p "$tmp/d/stack"
	printf 'UB003\n' >"$tmp/d/codes.manifest"
	cat >"$tmp/d/stack/diagnostic.go" <<-'EOF'
		package stack

		const UBCodeSignedOverflow = "UB003"
	EOF
	if ! check_codes "$tmp/d" "$tmp/d/codes.manifest" >/dev/null 2>&1; then
		echo "invariants: SELF-TEST FAIL: intact codes rejected" >&2
		pass=1
	fi

	# A new Options field absent from the fingerprint must fail; the
	# same sources with the field named must pass.
	mkdir -p "$tmp/e"
	cat >"$tmp/e/checker.go" <<-'EOF'
		package core

		type Options struct {
			Timeout time.Duration
			NewKnob bool
			Flags   Flags
		}

		type Flags struct {
			WrapV bool
		}
	EOF
	cat >"$tmp/e/cachekey.go" <<-'EOF'
		package stack

		func optionsFingerprint(o core.Options) []byte {
			return []byte(fmt.Sprintf("Timeout=%d;Flags.WrapV=%t", o.Timeout, o.Flags.WrapV))
		}
	EOF
	if check_fingerprint "$tmp/e/checker.go" "$tmp/e/cachekey.go" >/dev/null 2>&1; then
		echo "invariants: SELF-TEST FAIL: fingerprint missing NewKnob not detected" >&2
		pass=1
	fi
	cat >"$tmp/e/cachekey_full.go" <<-'EOF'
		package stack

		func optionsFingerprint(o core.Options) []byte {
			return []byte(fmt.Sprintf("Timeout=%d;NewKnob=%t;Flags.WrapV=%t", o.Timeout, o.NewKnob, o.Flags.WrapV))
		}
	EOF
	if ! check_fingerprint "$tmp/e/checker.go" "$tmp/e/cachekey_full.go" >/dev/null 2>&1; then
		echo "invariants: SELF-TEST FAIL: complete fingerprint rejected" >&2
		pass=1
	fi

	# An unregistered pass in RunSSAPasses must fail; a registered pass
	# whose counter is absent from core.Stats must fail; the registered
	# pass with counter and oracle in place must pass.
	mkdir -p "$tmp/f/ir" "$tmp/f/core" "$tmp/f/tests"
	cat >"$tmp/f/ir/rogue.go" <<-'EOF'
		package ir

		func RunSSAPasses(f *Func, dom *DomTree) PassStats {
			n := Frobnicate(f)
			return PassStats{Frobnications: n}
		}
	EOF
	cat >"$tmp/f/ir/registered.go" <<-'EOF'
		package ir

		func RunSSAPasses(f *Func, dom *DomTree) PassStats {
			sccp := SCCP(f)
			return PassStats{SCCPFoldedValues: sccp.FoldedValues}
		}
	EOF
	cat >"$tmp/f/core/bare.go" <<-'EOF'
		package core

		type Stats struct {
			Queries int64
		}
	EOF
	cat >"$tmp/f/core/counted.go" <<-'EOF'
		package core

		type Stats struct {
			Queries          int64
			SCCPFoldedValues int64
		}
	EOF
	cat >"$tmp/f/tests/oracle_test.go" <<-'EOF'
		package ir

		func FuzzSCCPDifferential(f *testing.F) {}
	EOF
	if check_ssa_passes "$tmp/f/ir/rogue.go" "$tmp/f/core/counted.go" "$tmp/f/tests" >/dev/null 2>&1; then
		echo "invariants: SELF-TEST FAIL: unregistered SSA pass not detected" >&2
		pass=1
	fi
	if check_ssa_passes "$tmp/f/ir/registered.go" "$tmp/f/core/bare.go" "$tmp/f/tests" >/dev/null 2>&1; then
		echo "invariants: SELF-TEST FAIL: SSA pass with missing counter not detected" >&2
		pass=1
	fi
	if ! check_ssa_passes "$tmp/f/ir/registered.go" "$tmp/f/core/counted.go" "$tmp/f/tests" >/dev/null 2>&1; then
		echo "invariants: SELF-TEST FAIL: fully accounted SSA pass rejected" >&2
		pass=1
	fi

	if [ "$pass" -ne 0 ]; then
		return 1
	fi
	echo "invariants: self-test ok (9 cases)"
}

if [ "${1:-}" = "--self-test" ]; then
	self_test
	exit $?
fi

check_one_emitter "$ROOT"
check_codes "$ROOT" "$ROOT/scripts/codes.manifest"
check_fingerprint "$ROOT/internal/core/checker.go" "$ROOT/stack/cachekey.go"
check_ssa_passes "$ROOT/internal/ir/analysis.go" "$ROOT/internal/core/checker.go" "$ROOT/internal"
