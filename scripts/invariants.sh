#!/usr/bin/env bash
# invariants.sh — structural invariants the ROADMAP freezes, enforced
# mechanically so a refactor cannot drift past them in review.
#
#   1. One emitter. The ordered-emission pending-map pattern (a
#      map[int]-keyed reorder buffer) lives in internal/emit and
#      nowhere else; a second copy is how the pre-PR-4 sweep and
#      service layers diverged. Any non-test Go file outside
#      internal/emit that builds a pending map[int] buffer fails the
#      check.
#
#   2. Append-only diagnostic codes. Every code ever published in
#      scripts/codes.manifest (STACK-* rule IDs, UB0* condition codes)
#      must still exist verbatim as a quoted string in the non-test
#      sources, and every such literal in the sources must be listed in
#      the manifest. Renaming or deleting a published code breaks
#      downstream suppression files; adding one means appending it to
#      the manifest in the same change.
#
#   3. Complete cache fingerprint. Every field of core.Options and
#      core.Flags must appear by name (FieldName= / Flags.FieldName=)
#      in the options fingerprint of stack/cachekey.go. A new
#      result-affecting option that is not folded into the fingerprint
#      would let a stale cache entry serve wrong results under the new
#      option; this check (and the reflection test
#      TestOptionsFingerprintCoversAllFields) makes that a CI failure
#      instead of a latent correctness bug.
#
# Usage:
#   scripts/invariants.sh              # check the repository
#   scripts/invariants.sh --self-test  # prove the checks can fail
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"

# go_sources DIR — non-test, non-vendored Go files under DIR.
go_sources() {
	find "$1" -name '*.go' ! -name '*_test.go' ! -path '*/testdata/*' -type f
}

# check_one_emitter DIR — fail if a pending map[int] reorder buffer
# exists outside internal/emit.
check_one_emitter() {
	local root="$1" bad=0 f
	while IFS= read -r f; do
		case "$f" in
		*/internal/emit/*) continue ;;
		esac
		if grep -nE 'pending[[:alnum:]_]*[[:space:]]*:?=.*map\[int\]' "$f" /dev/null; then
			bad=1
		fi
	done < <(go_sources "$root")
	if [ "$bad" -ne 0 ]; then
		echo "invariants: FAIL: pending-map reorder buffer outside internal/emit (one-emitter invariant)" >&2
		return 1
	fi
	echo "invariants: ok: one emitter"
}

# check_codes DIR MANIFEST — bidirectional append-only check between
# the manifest and the quoted diagnostic-code literals in DIR.
check_codes() {
	local root="$1" manifest="$2" bad=0 code
	if [ ! -f "$manifest" ]; then
		echo "invariants: FAIL: missing manifest $manifest" >&2
		return 1
	fi
	local srcs
	srcs="$(go_sources "$root")"
	while IFS= read -r code; do
		[ -n "$code" ] || continue
		# shellcheck disable=SC2086
		if ! grep -qF "\"$code\"" $srcs; then
			echo "invariants: FAIL: published code $code edited or removed (codes are append-only)" >&2
			bad=1
		fi
	done <"$manifest"
	# shellcheck disable=SC2086
	while IFS= read -r code; do
		if ! grep -qxF "$code" "$manifest"; then
			echo "invariants: FAIL: code $code in sources but not in $manifest (append it)" >&2
			bad=1
		fi
	done < <(grep -hoE '"(STACK-[A-Z][0-9]{3}|UB0[0-9]{2})"' $srcs | tr -d '"' | sort -u)
	[ "$bad" -eq 0 ] || return 1
	echo "invariants: ok: diagnostic codes append-only"
}

# struct_fields FILE STRUCT — exported field names of `type STRUCT
# struct { ... }` in FILE, one per line (first brace-balanced block;
# nested literals do not occur in the options structs).
struct_fields() {
	awk -v s="$2" '
		$0 == "type " s " struct {" { in_struct = 1; next }
		in_struct && /^}/ { exit }
		in_struct && $1 ~ /^[A-Z][A-Za-z0-9_]*$/ && NF >= 2 { print $1 }
	' "$1"
}

# check_fingerprint CORE_FILE KEY_FILE — every core.Options field (and
# Flags.<field> for the embedded compiler-flag struct) must be named in
# the fingerprint builder.
check_fingerprint() {
	local core_file="$1" key_file="$2" bad=0 f
	if [ ! -f "$core_file" ] || [ ! -f "$key_file" ]; then
		echo "invariants: FAIL: missing $core_file or $key_file" >&2
		return 1
	fi
	local opts_fields
	opts_fields="$(struct_fields "$core_file" Options)"
	if [ -z "$opts_fields" ]; then
		echo "invariants: FAIL: no Options fields parsed from $core_file" >&2
		return 1
	fi
	while IFS= read -r f; do
		if [ "$f" = "Flags" ]; then
			continue # covered field-by-field below
		fi
		if ! grep -qF "$f=" "$key_file"; then
			echo "invariants: FAIL: core.Options.$f missing from the cache fingerprint in $key_file" >&2
			bad=1
		fi
	done <<<"$opts_fields"
	while IFS= read -r f; do
		if ! grep -qF "Flags.$f=" "$key_file"; then
			echo "invariants: FAIL: core.Flags.$f missing from the cache fingerprint in $key_file" >&2
			bad=1
		fi
	done < <(struct_fields "$core_file" Flags)
	[ "$bad" -eq 0 ] || return 1
	echo "invariants: ok: cache fingerprint covers every core.Options field"
}

self_test() {
	local tmp pass=0
	tmp="$(mktemp -d)"
	# shellcheck disable=SC2064  # expand now: tmp is local to this function
	trap "rm -rf '$tmp'" EXIT

	# A second pending map outside internal/emit must fail.
	mkdir -p "$tmp/a/stack/service"
	cat >"$tmp/a/stack/service/buffer.go" <<-'EOF'
		package service

		func drain() {
			pending := make(map[int]string)
			_ = pending
		}
	EOF
	if check_one_emitter "$tmp/a" >/dev/null 2>&1; then
		echo "invariants: SELF-TEST FAIL: rogue pending map not detected" >&2
		pass=1
	fi

	# The canonical emitter itself must pass.
	mkdir -p "$tmp/b/internal/emit"
	cat >"$tmp/b/internal/emit/emit.go" <<-'EOF'
		package emit

		func run() {
			pending := make(map[int]int)
			_ = pending
		}
	EOF
	if ! check_one_emitter "$tmp/b" >/dev/null 2>&1; then
		echo "invariants: SELF-TEST FAIL: canonical emitter rejected" >&2
		pass=1
	fi

	# A mutated published code (UB003 -> UB303) must fail both ways:
	# the manifest entry is gone from the sources, and the new literal
	# is not in the manifest.
	mkdir -p "$tmp/c/stack"
	printf 'UB003\n' >"$tmp/c/codes.manifest"
	cat >"$tmp/c/stack/diagnostic.go" <<-'EOF'
		package stack

		const UBCodeSignedOverflow = "UB303"
	EOF
	if check_codes "$tmp/c" "$tmp/c/codes.manifest" >/dev/null 2>&1; then
		echo "invariants: SELF-TEST FAIL: mutated code not detected" >&2
		pass=1
	fi

	# An intact code set must pass.
	mkdir -p "$tmp/d/stack"
	printf 'UB003\n' >"$tmp/d/codes.manifest"
	cat >"$tmp/d/stack/diagnostic.go" <<-'EOF'
		package stack

		const UBCodeSignedOverflow = "UB003"
	EOF
	if ! check_codes "$tmp/d" "$tmp/d/codes.manifest" >/dev/null 2>&1; then
		echo "invariants: SELF-TEST FAIL: intact codes rejected" >&2
		pass=1
	fi

	# A new Options field absent from the fingerprint must fail; the
	# same sources with the field named must pass.
	mkdir -p "$tmp/e"
	cat >"$tmp/e/checker.go" <<-'EOF'
		package core

		type Options struct {
			Timeout time.Duration
			NewKnob bool
			Flags   Flags
		}

		type Flags struct {
			WrapV bool
		}
	EOF
	cat >"$tmp/e/cachekey.go" <<-'EOF'
		package stack

		func optionsFingerprint(o core.Options) []byte {
			return []byte(fmt.Sprintf("Timeout=%d;Flags.WrapV=%t", o.Timeout, o.Flags.WrapV))
		}
	EOF
	if check_fingerprint "$tmp/e/checker.go" "$tmp/e/cachekey.go" >/dev/null 2>&1; then
		echo "invariants: SELF-TEST FAIL: fingerprint missing NewKnob not detected" >&2
		pass=1
	fi
	cat >"$tmp/e/cachekey_full.go" <<-'EOF'
		package stack

		func optionsFingerprint(o core.Options) []byte {
			return []byte(fmt.Sprintf("Timeout=%d;NewKnob=%t;Flags.WrapV=%t", o.Timeout, o.NewKnob, o.Flags.WrapV))
		}
	EOF
	if ! check_fingerprint "$tmp/e/checker.go" "$tmp/e/cachekey_full.go" >/dev/null 2>&1; then
		echo "invariants: SELF-TEST FAIL: complete fingerprint rejected" >&2
		pass=1
	fi

	if [ "$pass" -ne 0 ]; then
		return 1
	fi
	echo "invariants: self-test ok (6 cases)"
}

if [ "${1:-}" = "--self-test" ]; then
	self_test
	exit $?
fi

check_one_emitter "$ROOT"
check_codes "$ROOT" "$ROOT/scripts/codes.manifest"
check_fingerprint "$ROOT/internal/core/checker.go" "$ROOT/stack/cachekey.go"
