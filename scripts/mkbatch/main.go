// Command mkbatch builds a /v1/sweep request body from C files on the
// command line: {"sources": [{"name": <path>, "source": <contents>},
// ...]}. The service smoke script uses it so the raw-POST check needs
// no JSON tooling on the host.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

type source struct {
	Name   string `json:"name"`
	Source string `json:"source"`
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: mkbatch file.c...")
		os.Exit(2)
	}
	batch := struct {
		Sources []source `json:"sources"`
	}{}
	for _, path := range os.Args[1:] {
		text, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mkbatch: %v\n", err)
			os.Exit(1)
		}
		batch.Sources = append(batch.Sources, source{Name: path, Source: string(text)})
	}
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(batch); err != nil {
		fmt.Fprintf(os.Stderr, "mkbatch: %v\n", err)
		os.Exit(1)
	}
}
