#!/usr/bin/env bash
# End-to-end smoke of the stackd v2 batch/streaming surface and the
# fleet operations around it:
#
#   1. build stackd + the stack CLI;
#   2. start TWO stackd replicas;
#   3. run the same inputs locally and through
#      `stack -remote replica1,replica2` (dealt across the fleet) in
#      both text and jsonl formats, and require byte-identical output —
#      the acceptance bar of the remote/sharded API;
#   4. POST a raw /v1/sweep batch (curl, when available) and diff the
#      JSONL stream against the local sink output;
#   5. scrape GET /metrics and check the traffic just generated shows
#      up in the counters;
#   6. start a token-protected replica: an unauthenticated sweep must
#      answer 401, `stack -remote -auth-token` must match local bytes;
#   7. SIGKILL one of the two replicas in the middle of a large sweep
#      and require the surviving replica's retry path to still produce
#      byte-identical output;
#   8. `stack -fleet-status` against the fleet: exit 0 with every
#      replica probed up before the kill, exit 1 with the dead replica
#      reported down (with its probe error) after it.
#
# Run via `make service-smoke`; CI runs it on every push.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building stack + stackd"
go build -o "$workdir/stack" ./cmd/stack
go build -o "$workdir/stackd" ./cmd/stackd

# Deterministic inputs: solver effort is bounded by conflicts, not
# wall clock, so local and remote runs cannot diverge under load.
cat > "$workdir/fig1.c" <<'EOF'
int parse_header(char *buf, char *buf_end, unsigned int len) {
	if (buf + len >= buf_end)
		return -1;
	if (buf + len < buf)
		return -1;
	return 0;
}
EOF
cat > "$workdir/div.c" <<'EOF'
int scale(int x, int y) {
	int q = x / y;
	if (y == 0)
		return -1;
	return q;
}
EOF
cat > "$workdir/clean.c" <<'EOF'
int f(void) { return 0; }
EOF
inputs=("$workdir/fig1.c" "$workdir/div.c" "$workdir/clean.c" "$workdir/fig1.c")

port1=${STACKD_SMOKE_PORT1:-18591}
port2=${STACKD_SMOKE_PORT2:-18592}
echo "== starting two stackd replicas on :$port1 and :$port2"
"$workdir/stackd" -addr "127.0.0.1:$port1" -timeout 0 &
pids+=($!)
"$workdir/stackd" -addr "127.0.0.1:$port2" -timeout 0 &
pids+=($!)

wait_port() {
    for _ in $(seq 1 100); do
        if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then
            exec 3>&- 3<&-
            return 0
        fi
        sleep 0.1
    done
    echo "replica on :$1 never came up" >&2
    return 1
}
wait_port "$port1"
wait_port "$port2"

# The stack CLI exits 1 when diagnostics are found — expected here.
run_stack() {
    set +e
    "$workdir/stack" "$@"
    status=$?
    set -e
    if [ "$status" -ne 0 ] && [ "$status" -ne 1 ]; then
        echo "stack $* exited $status" >&2
        exit 1
    fi
}

echo "== local vs sharded 2-replica remote: text"
run_stack -timeout 0 "${inputs[@]}" > "$workdir/local.txt"
run_stack -remote "127.0.0.1:$port1,127.0.0.1:$port2" "${inputs[@]}" > "$workdir/remote.txt"
diff -u "$workdir/local.txt" "$workdir/remote.txt"

echo "== local vs sharded 2-replica remote: jsonl"
run_stack -timeout 0 -format jsonl "${inputs[@]}" > "$workdir/local.jsonl"
run_stack -remote "127.0.0.1:$port1,127.0.0.1:$port2" -format jsonl "${inputs[@]}" > "$workdir/remote.jsonl"
diff -u "$workdir/local.jsonl" "$workdir/remote.jsonl"

if command -v curl >/dev/null 2>&1; then
    echo "== raw POST /v1/sweep vs local jsonl sink"
    # Build the batch body with the same display names the CLI used
    # (the file paths), so the streams are comparable byte for byte.
    go run ./scripts/mkbatch "${inputs[@]}" > "$workdir/batch.json"
    curl -sS -X POST --data-binary "@$workdir/batch.json" \
        "http://127.0.0.1:$port1/v1/sweep?format=jsonl" > "$workdir/sweep.jsonl"
    diff -u "$workdir/local.jsonl" "$workdir/sweep.jsonl"
else
    echo "== curl not installed; skipping the raw /v1/sweep POST check"
fi

if command -v curl >/dev/null 2>&1; then
    echo "== GET /metrics reflects the traffic"
    curl -sS "http://127.0.0.1:$port1/metrics" > "$workdir/metrics.json"
    grep -q '"/v1/sweep"' "$workdir/metrics.json"
    grep -q '"solver"' "$workdir/metrics.json"
    # At least one endpoint served a nonzero number of requests.
    grep -Eq '"requests":[1-9]' "$workdir/metrics.json"
fi

echo "== bearer-token auth"
port3=${STACKD_SMOKE_PORT3:-18593}
"$workdir/stackd" -addr "127.0.0.1:$port3" -timeout 0 -auth-token smoketoken &
pids+=($!)
wait_port "$port3"
if command -v curl >/dev/null 2>&1; then
    code=$(curl -sS -o /dev/null -w '%{http_code}' -X POST \
        --data-binary "@$workdir/batch.json" \
        "http://127.0.0.1:$port3/v1/sweep?format=jsonl")
    if [ "$code" != "401" ]; then
        echo "unauthenticated sweep answered $code, want 401" >&2
        exit 1
    fi
fi
run_stack -remote "127.0.0.1:$port3" -auth-token smoketoken -format jsonl "${inputs[@]}" > "$workdir/auth.jsonl"
diff -u "$workdir/local.jsonl" "$workdir/auth.jsonl"

echo "== fleet-status: healthy fleet probes up, exit 0"
"$workdir/stack" -fleet-status -remote "127.0.0.1:$port1,127.0.0.1:$port2" > "$workdir/fleet.json"
if [ "$(grep -c '"up": true' "$workdir/fleet.json")" -ne 2 ]; then
    echo "fleet-status did not report both replicas up:" >&2
    cat "$workdir/fleet.json" >&2
    exit 1
fi

echo "== kill a replica mid-sweep: byte identity survives"
# A batch large enough to still be in flight when the kill lands; the
# dispatcher must retry the dead replica's unfinished tail on the
# survivor and keep the stream byte-identical to the local run.
big=()
for _ in $(seq 1 40); do
    big+=("${inputs[@]}")
done
run_stack -timeout 0 -format jsonl "${big[@]}" > "$workdir/local-big.jsonl"
( sleep 0.2; kill -9 "${pids[1]}" 2>/dev/null || true ) &
killer=$!
run_stack -remote "127.0.0.1:$port1,127.0.0.1:$port2" -format jsonl "${big[@]}" > "$workdir/remote-big.jsonl"
wait "$killer" 2>/dev/null || true
diff -u "$workdir/local-big.jsonl" "$workdir/remote-big.jsonl"

echo "== fleet-status: dead replica reported down, exit 1"
set +e
"$workdir/stack" -fleet-status -remote "127.0.0.1:$port1,127.0.0.1:$port2" > "$workdir/fleet-down.json"
status=$?
set -e
if [ "$status" -ne 1 ]; then
    echo "fleet-status with a dead replica exited $status, want 1" >&2
    exit 1
fi
grep -q '"up": false' "$workdir/fleet-down.json"
grep -q '"lastErr"' "$workdir/fleet-down.json"

echo "== service smoke OK"
