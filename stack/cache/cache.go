// Package cache is the content-addressed result cache behind
// stack.WithCache: a small, dependency-free store mapping fixed-size
// content addresses to opaque byte payloads. The paper's workload is
// whole-archive sweeps where consecutive runs see mostly byte-identical
// inputs, and the service fields repeat traffic from many clients — in
// both settings, re-running the solver stack on an unchanged file is
// pure waste, so the analyzer consults a Cache per source before the
// frontend ever runs.
//
// The package is deliberately generic: keys are 32-byte content
// addresses (the stack package derives them from the SHA-256 of the
// source bytes plus a canonical fingerprint of every result-affecting
// analyzer option) and values are opaque []byte payloads (the stack
// package's versioned diagnostic encoding). Nothing here knows what a
// diagnostic is, so the same store can back other content-addressed
// layers later (e.g. cross-file encoding dedup).
//
// Two implementations ship:
//
//   - NewMemory: a concurrency-safe in-memory LRU with a byte budget —
//     the hot tier, bounded and eviction-ordered;
//   - NewDisk: an on-disk tier of content-addressed files under a root
//     directory, written via atomic rename with a versioned, checksummed
//     entry header, so torn or corrupt entries read as misses and a
//     schema bump invalidates every old entry cleanly.
//
// NewTiered stacks them memory→disk: gets fall through and promote,
// puts populate every level.
//
// All implementations are safe for concurrent use by any number of
// goroutines; a Cache is shared across every worker of a sweep.
package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Key is a 32-byte content address. Equal content (source bytes plus
// option fingerprint, for the analyzer's use) yields equal keys; no
// other relationship between inputs and keys is promised.
type Key [32]byte

// String renders the key as lowercase hex — the form the disk tier
// uses for file names.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// KeyOf derives a Key from an ordered sequence of byte segments. Each
// segment is length-prefixed before hashing, so distinct segmentations
// of the same concatenated bytes produce distinct keys ("ab","c" never
// collides with "a","bc").
func KeyOf(segments ...[]byte) Key {
	h := sha256.New()
	var n [8]byte
	for _, s := range segments {
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write(s)
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// Stats is a point-in-time snapshot of a cache's counters. All fields
// are cumulative since construction except Entries and Bytes, whose
// meaning is per-implementation: the memory tier reports resident
// entries and resident bytes (they fall on eviction), the disk tier
// reports entries and payload bytes written by this process (resident
// state belongs to the filesystem), and the tiered cache reports its
// own stack-level traffic plus the sums of its levels' resident
// quantities.
type Stats struct {
	// Hits and Misses count Get outcomes.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Puts counts Put calls that stored (or overwrote) an entry.
	Puts int64 `json:"puts"`
	// Evictions counts entries dropped to keep the memory tier inside
	// its byte budget.
	Evictions int64 `json:"evictions"`
	// Errors counts entries rejected by the disk tier's integrity
	// checks (bad magic, version mismatch, truncation, checksum
	// failure) plus I/O failures; every one is served as a miss.
	Errors int64 `json:"errors"`
	// Entries and Bytes describe stored state; see the type comment for
	// the per-implementation meaning.
	Entries int64 `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// Add accumulates other into s — the reduction step when per-level
// stats are merged.
func (s *Stats) Add(other Stats) {
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.Puts += other.Puts
	s.Evictions += other.Evictions
	s.Errors += other.Errors
	s.Entries += other.Entries
	s.Bytes += other.Bytes
}

// Cache is a content-addressed byte store. Implementations must be
// safe for concurrent use.
//
// Get returns the payload stored under k, or ok=false on a miss. The
// returned slice is owned by the cache: callers must not modify it.
// Put stores val under k, overwriting any existing entry; the cache
// takes no ownership of val (implementations copy or persist it before
// returning). A Cache is free to drop entries at any time — a Put
// followed by a Get of the same key may miss (eviction, byte budget,
// corruption) — so correctness can never depend on an entry's
// presence, only on its content being what was stored.
type Cache interface {
	Get(k Key) ([]byte, bool)
	Put(k Key, val []byte)
	Stats() Stats
}
