package cache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"os"
	"path/filepath"
	"sync/atomic"
)

// DiskSchemaVersion is the on-disk entry format version. Every entry
// carries it in its header; a reader only accepts its own version, so
// bumping the constant cleanly invalidates every entry written by
// older code — stale-format entries read as misses and are removed,
// never misinterpreted.
const DiskSchemaVersion = 1

// diskMagic brands every entry file so an unrelated file dropped into
// the cache root is rejected before any parsing.
var diskMagic = [4]byte{'S', 'T', 'K', 'C'}

// Entry layout:
//
//	[0:4)   magic "STKC"
//	[4:8)   format version, uint32 little-endian
//	[8:16)  payload length, uint64 little-endian
//	[16:48) SHA-256 of the payload
//	[48:)   payload
//
// The checksum makes truncation and corruption detectable byte-for-byte:
// a half-written or bit-flipped entry can never be served.
const diskHeaderSize = 4 + 4 + 8 + sha256.Size

// Disk is the on-disk tier: one content-addressed file per entry under
// a root directory, fanned out by the first key byte. Writes go
// through a temp file plus atomic rename, so readers only ever observe
// complete files (a crash mid-Put leaves at worst an orphan temp
// file). Create with NewDisk.
type Disk struct {
	root string

	hits    atomic.Int64
	misses  atomic.Int64
	puts    atomic.Int64
	errors  atomic.Int64
	entries atomic.Int64
	bytes   atomic.Int64
}

// NewDisk returns a disk-backed cache rooted at dir, creating it if
// needed.
func NewDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Disk{root: dir}, nil
}

// path is the entry file for k: root/<hex[0:2]>/<hex>.
func (d *Disk) path(k Key) string {
	hex := k.String()
	return filepath.Join(d.root, hex[:2], hex)
}

// Get reads and validates the entry for k. Every integrity failure —
// missing magic, foreign version, truncated payload, checksum mismatch
// — is a miss; corrupt files are removed best-effort so they are not
// re-validated on every lookup.
func (d *Disk) Get(k Key) ([]byte, bool) {
	data, err := os.ReadFile(d.path(k))
	if err != nil {
		if !os.IsNotExist(err) {
			d.errors.Add(1)
		}
		d.misses.Add(1)
		return nil, false
	}
	payload, ok := decodeEntry(data)
	if !ok {
		d.errors.Add(1)
		d.misses.Add(1)
		_ = os.Remove(d.path(k)) // quarantine: never re-serve, never re-parse
		return nil, false
	}
	d.hits.Add(1)
	return payload, true
}

// decodeEntry validates one entry file and returns its payload.
func decodeEntry(data []byte) ([]byte, bool) {
	if len(data) < diskHeaderSize {
		return nil, false
	}
	if !bytes.Equal(data[0:4], diskMagic[:]) {
		return nil, false
	}
	if binary.LittleEndian.Uint32(data[4:8]) != DiskSchemaVersion {
		return nil, false
	}
	n := binary.LittleEndian.Uint64(data[8:16])
	payload := data[diskHeaderSize:]
	if uint64(len(payload)) != n {
		return nil, false
	}
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], data[16:16+sha256.Size]) {
		return nil, false
	}
	return payload, true
}

// encodeEntry renders the versioned entry bytes for payload.
func encodeEntry(payload []byte) []byte {
	out := make([]byte, diskHeaderSize+len(payload))
	copy(out[0:4], diskMagic[:])
	binary.LittleEndian.PutUint32(out[4:8], DiskSchemaVersion)
	binary.LittleEndian.PutUint64(out[8:16], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(out[16:16+sha256.Size], sum[:])
	copy(out[diskHeaderSize:], payload)
	return out
}

// Put writes the entry for k atomically: the bytes land in a temp file
// in the same directory, then rename moves them into place, so a
// concurrent or crashed writer can never expose a partial entry.
// Parallel writers of the same key race harmlessly — each rename
// installs a complete, identical-content file. Failures are counted
// and swallowed: a cache write error must never fail an analysis.
func (d *Disk) Put(k Key, val []byte) {
	dir := filepath.Dir(d.path(k))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		d.errors.Add(1)
		return
	}
	tmp, err := os.CreateTemp(dir, "put-*")
	if err != nil {
		d.errors.Add(1)
		return
	}
	name := tmp.Name()
	if _, err := tmp.Write(encodeEntry(val)); err != nil {
		tmp.Close()
		os.Remove(name)
		d.errors.Add(1)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		d.errors.Add(1)
		return
	}
	if err := os.Rename(name, d.path(k)); err != nil {
		os.Remove(name)
		d.errors.Add(1)
		return
	}
	d.puts.Add(1)
	d.entries.Add(1)
	d.bytes.Add(int64(len(val)))
}

// Stats snapshots the counters. Entries and Bytes count entries and
// payload bytes written by this process — resident state belongs to
// the filesystem and is not scanned.
func (d *Disk) Stats() Stats {
	return Stats{
		Hits:    d.hits.Load(),
		Misses:  d.misses.Load(),
		Puts:    d.puts.Load(),
		Errors:  d.errors.Load(),
		Entries: d.entries.Load(),
		Bytes:   d.bytes.Load(),
	}
}

// Root returns the cache's root directory.
func (d *Disk) Root() string { return d.root }

var _ Cache = (*Disk)(nil)
