package cache

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func newDiskT(t *testing.T) *Disk {
	t.Helper()
	d, err := NewDisk(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDiskTierRoundTrip(t *testing.T) {
	d := newDiskT(t)
	k := KeyOf([]byte("src"))
	if _, ok := d.Get(k); ok {
		t.Fatal("hit on an empty cache")
	}
	d.Put(k, []byte("payload"))
	got, ok := d.Get(k)
	if !ok || string(got) != "payload" {
		t.Fatalf("got %q, %v; want payload, true", got, ok)
	}
	// An empty payload round-trips too (a clean file has no
	// diagnostics but is still worth caching).
	k2 := KeyOf([]byte("clean"))
	d.Put(k2, nil)
	if got, ok := d.Get(k2); !ok || len(got) != 0 {
		t.Fatalf("empty payload: got %q, %v", got, ok)
	}
	st := d.Stats()
	if st.Puts != 2 || st.Hits != 2 || st.Misses != 1 || st.Errors != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestDiskTierCrashSafety: truncated, bit-flipped, wrong-version, and
// foreign files are all served as misses, never as payloads — the
// crash-safety contract of the on-disk format.
func TestDiskTierCrashSafety(t *testing.T) {
	payload := []byte("diagnostics payload bytes")
	corruptions := []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"truncated-header", func(b []byte) []byte { return b[:diskHeaderSize/2] }},
		{"truncated-payload", func(b []byte) []byte { return b[:len(b)-3] }},
		{"empty", func([]byte) []byte { return nil }},
		{"bit-flip-payload", func(b []byte) []byte { b[diskHeaderSize+2] ^= 0x40; return b }},
		{"bit-flip-checksum", func(b []byte) []byte { b[20] ^= 0x01; return b }},
		{"bad-magic", func(b []byte) []byte { copy(b[0:4], "JUNK"); return b }},
		{"future-version", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:8], DiskSchemaVersion+1)
			return b
		}},
		{"length-mismatch", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:16], uint64(len(payload)+1))
			return b
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			d := newDiskT(t)
			k := KeyOf([]byte(tc.name))
			d.Put(k, payload)
			path := d.path(k)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mangle(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := d.Get(k); ok {
				t.Fatalf("corrupt entry served as a hit: %q", got)
			}
			if st := d.Stats(); st.Errors != 1 {
				t.Errorf("stats = %+v, want 1 integrity error", st)
			}
			// The corrupt file is quarantined: the next lookup is a
			// plain miss, not a repeated integrity failure.
			if _, ok := d.Get(k); ok {
				t.Fatal("corrupt entry resurrected")
			}
			if st := d.Stats(); st.Errors != 1 {
				t.Errorf("corrupt file not removed; errors = %d, want 1", st.Errors)
			}
		})
	}
}

// TestDiskSchemaVersionInvalidates: an entry written under a different
// format version is a miss — the clean-invalidation property a format
// bump relies on.
func TestDiskSchemaVersionInvalidates(t *testing.T) {
	d := newDiskT(t)
	k := KeyOf([]byte("old"))
	// Forge a well-formed entry from "the previous version": same
	// layout, older version number, valid checksum.
	old := encodeEntry([]byte("stale payload"))
	binary.LittleEndian.PutUint32(old[4:8], DiskSchemaVersion-1)
	if err := os.MkdirAll(filepath.Dir(d.path(k)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(d.path(k), old, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get(k); ok {
		t.Fatal("stale-version entry served")
	}
}

// TestDiskParallelWriters: many goroutines writing overlapping keys —
// including the same key, the atomic-rename collision case — always
// leave every entry complete and readable. Run under -race.
func TestDiskParallelWriters(t *testing.T) {
	d := newDiskT(t)
	const (
		writers = 8
		keys    = 16
	)
	payloadFor := func(k int) []byte {
		b := make([]byte, 256)
		for i := range b {
			b[i] = byte(k)
		}
		return b
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := i % keys
				d.Put(keyN(k), payloadFor(k)) // all writers collide on the same rename targets
				if v, ok := d.Get(keyN(k)); ok {
					if len(v) != 256 || v[0] != byte(k) {
						t.Errorf("key %d: read a torn or foreign payload", k)
					}
				}
			}
		}()
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		v, ok := d.Get(keyN(k))
		if !ok || len(v) != 256 || v[0] != byte(k) {
			t.Errorf("key %d unreadable after parallel writes", k)
		}
	}
	if st := d.Stats(); st.Errors != 0 {
		t.Errorf("parallel writes recorded errors: %+v", st)
	}
	// No temp-file litter: every put-* either renamed or was removed.
	matches, err := filepath.Glob(filepath.Join(d.Root(), "*", "put-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Errorf("leftover temp files: %v", matches)
	}
}
