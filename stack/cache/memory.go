package cache

import (
	"container/list"
	"sync"
)

// memEntry is one resident entry; list elements carry it so eviction
// can find the key without a reverse map.
type memEntry struct {
	key Key
	val []byte
}

// Memory is the in-memory LRU tier: a concurrency-safe map + intrusive
// recency list with a byte budget. Create with NewMemory.
type Memory struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	entries map[Key]*list.Element
	lru     *list.List // front = most recently used
	stats   Stats
}

// entryOverhead approximates the per-entry bookkeeping charged against
// the byte budget on top of the payload: the key plus map/list
// plumbing. Keeping it a fixed constant makes the accounting exactly
// reproducible, which the byte-budget tests pin.
const entryOverhead = int64(len(Key{})) + 64

// NewMemory returns an LRU cache that keeps resident payload bytes
// (plus a fixed per-entry overhead) within maxBytes, evicting the
// least-recently-used entries when a Put would exceed it. A value too
// large to ever fit is not stored at all. maxBytes <= 0 means a
// minimal default of 1 MiB.
func NewMemory(maxBytes int64) *Memory {
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	return &Memory{
		budget:  maxBytes,
		entries: make(map[Key]*list.Element),
		lru:     list.New(),
	}
}

// cost is the budget charge for one entry.
func cost(val []byte) int64 { return int64(len(val)) + entryOverhead }

// Get returns the payload stored under k and marks it most recently
// used. The returned slice must not be modified.
func (m *Memory) Get(k Key) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.entries[k]
	if !ok {
		m.stats.Misses++
		return nil, false
	}
	m.lru.MoveToFront(el)
	m.stats.Hits++
	return el.Value.(*memEntry).val, true
}

// Put stores a copy of val under k, evicting least-recently-used
// entries as needed to stay inside the byte budget.
func (m *Memory) Put(k Key, val []byte) {
	if cost(val) > m.budget {
		return // would evict the whole cache and still not fit
	}
	stored := make([]byte, len(val))
	copy(stored, val)

	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.entries[k]; ok {
		e := el.Value.(*memEntry)
		m.bytes += cost(stored) - cost(e.val)
		e.val = stored
		m.lru.MoveToFront(el)
	} else {
		el := m.lru.PushFront(&memEntry{key: k, val: stored})
		m.entries[k] = el
		m.bytes += cost(stored)
	}
	m.stats.Puts++
	for m.bytes > m.budget {
		back := m.lru.Back()
		if back == nil {
			break
		}
		m.evict(back)
	}
}

// evict removes one element; callers hold the lock.
func (m *Memory) evict(el *list.Element) {
	e := el.Value.(*memEntry)
	m.lru.Remove(el)
	delete(m.entries, e.key)
	m.bytes -= cost(e.val)
	m.stats.Evictions++
}

// Stats snapshots the counters; Entries and Bytes are the resident
// entry count and the budget-charged resident bytes.
func (m *Memory) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.Entries = int64(m.lru.Len())
	s.Bytes = m.bytes
	return s
}

var _ Cache = (*Memory)(nil)
