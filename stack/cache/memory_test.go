package cache

import (
	"fmt"
	"sync"
	"testing"
)

func keyN(n int) Key { return KeyOf([]byte(fmt.Sprintf("key-%d", n))) }

func TestKeyOfSegmentation(t *testing.T) {
	if KeyOf([]byte("ab"), []byte("c")) == KeyOf([]byte("a"), []byte("bc")) {
		t.Fatal("distinct segmentations of the same bytes collided")
	}
	if KeyOf([]byte("x")) != KeyOf([]byte("x")) {
		t.Fatal("KeyOf is not deterministic")
	}
}

// TestLRUEvictionOrder: entries leave in least-recently-used order,
// and a Get refreshes recency.
func TestLRUEvictionOrder(t *testing.T) {
	val := make([]byte, 100)
	// Budget fits exactly three entries of cost 100+entryOverhead.
	m := NewMemory(3 * (100 + entryOverhead))
	for i := 0; i < 3; i++ {
		m.Put(keyN(i), val)
	}
	// Touch key 0: it becomes most recent, so key 1 is now the LRU.
	if _, ok := m.Get(keyN(0)); !ok {
		t.Fatal("key 0 missing before any eviction")
	}
	m.Put(keyN(3), val) // forces one eviction
	if _, ok := m.Get(keyN(1)); ok {
		t.Error("key 1 survived; expected it to be evicted as LRU")
	}
	for _, want := range []int{0, 2, 3} {
		if _, ok := m.Get(keyN(want)); !ok {
			t.Errorf("key %d evicted; expected it resident", want)
		}
	}
	if st := m.Stats(); st.Evictions != 1 || st.Entries != 3 {
		t.Errorf("stats = %+v, want 1 eviction, 3 resident entries", st)
	}
}

// TestLRUByteAccounting: resident bytes track payload + fixed
// overhead exactly, through inserts, overwrites, and evictions.
func TestLRUByteAccounting(t *testing.T) {
	m := NewMemory(10_000)
	m.Put(keyN(1), make([]byte, 100))
	m.Put(keyN(2), make([]byte, 200))
	if st := m.Stats(); st.Bytes != 300+2*entryOverhead {
		t.Errorf("bytes = %d, want %d", st.Bytes, 300+2*entryOverhead)
	}
	// Overwrite shrinks in place; entry count is unchanged.
	m.Put(keyN(2), make([]byte, 50))
	st := m.Stats()
	if st.Bytes != 150+2*entryOverhead || st.Entries != 2 {
		t.Errorf("after overwrite: %+v, want bytes=%d entries=2", st, 150+2*entryOverhead)
	}
	if st.Puts != 3 {
		t.Errorf("puts = %d, want 3", st.Puts)
	}
	// An entry larger than the whole budget is rejected outright and
	// charges nothing.
	m.Put(keyN(3), make([]byte, 20_000))
	if st := m.Stats(); st.Bytes != 150+2*entryOverhead || st.Entries != 2 {
		t.Errorf("oversize put disturbed accounting: %+v", st)
	}
	// Filling past the budget evicts until the books balance again.
	for i := 10; i < 30; i++ {
		m.Put(keyN(i), make([]byte, 400))
	}
	st = m.Stats()
	if st.Bytes > 10_000 {
		t.Errorf("resident bytes %d exceed the %d budget", st.Bytes, 10_000)
	}
	if st.Evictions == 0 {
		t.Error("no evictions despite overfill")
	}
	// Recompute from resident entries and compare with the books.
	var want int64
	resident := 0
	for i := 0; i < 30; i++ {
		if v, ok := m.Get(keyN(i)); ok {
			want += cost(v)
			resident++
		}
	}
	if int64(resident) != st.Entries || want != st.Bytes {
		t.Errorf("books disagree with contents: stats %+v, recount entries=%d bytes=%d", st, resident, want)
	}
}

// TestLRUGetCopiesNothing: the cache returns its stored copy, and a
// mutation of the caller's original buffer after Put does not leak in.
func TestLRUPutCopies(t *testing.T) {
	m := NewMemory(1 << 20)
	buf := []byte("original")
	m.Put(keyN(1), buf)
	copy(buf, "mutated!")
	got, ok := m.Get(keyN(1))
	if !ok || string(got) != "original" {
		t.Errorf("got %q, want the value as stored", got)
	}
}

// TestLRUConcurrent hammers one Memory from many goroutines; run
// under -race this is the concurrency-safety gate. The final books
// must balance against the resident contents.
func TestLRUConcurrent(t *testing.T) {
	m := NewMemory(50_000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := keyN(i % 64)
				if i%3 == 0 {
					m.Put(k, make([]byte, 64+(i%128)))
				} else if v, ok := m.Get(k); ok && len(v) < 64 {
					t.Errorf("goroutine %d: got %d-byte value, want >= 64", g, len(v))
				}
			}
		}(g)
	}
	wg.Wait()
	st := m.Stats()
	var bytes, entries int64
	for i := 0; i < 64; i++ {
		if v, ok := m.Get(keyN(i)); ok {
			bytes += cost(v)
			entries++
		}
	}
	if bytes != st.Bytes || entries != st.Entries {
		t.Errorf("post-race books disagree: stats %+v, recount entries=%d bytes=%d", st, entries, bytes)
	}
	if st.Bytes > 50_000 {
		t.Errorf("resident bytes %d exceed budget", st.Bytes)
	}
}
