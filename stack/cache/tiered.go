package cache

import "sync/atomic"

// Tiered composes caches into levels, fastest first — in practice a
// memory LRU in front of a disk tier. Create with NewTiered.
type Tiered struct {
	levels []Cache

	hits   atomic.Int64
	misses atomic.Int64
	puts   atomic.Int64
}

// NewTiered stacks levels into one Cache, consulted front to back. A
// Get that misses level i but hits level i+1 promotes the entry into
// every faster level before returning, so a warm working set migrates
// into memory while the disk tier keeps the long tail. A Put populates
// every level. With zero or one level the composition degenerates
// sensibly (always-miss, or the level itself wrapped with tier
// counters).
func NewTiered(levels ...Cache) *Tiered {
	return &Tiered{levels: levels}
}

// Get consults the levels in order, promoting hits toward the front.
func (t *Tiered) Get(k Key) ([]byte, bool) {
	for i, l := range t.levels {
		if v, ok := l.Get(k); ok {
			for j := 0; j < i; j++ {
				t.levels[j].Put(k, v)
			}
			t.hits.Add(1)
			return v, true
		}
	}
	t.misses.Add(1)
	return nil, false
}

// Put stores val in every level.
func (t *Tiered) Put(k Key, val []byte) {
	for _, l := range t.levels {
		l.Put(k, val)
	}
	t.puts.Add(1)
}

// Stats reports the stack-level traffic (a Hit means some level hit; a
// Miss means every level missed) plus the summed Evictions, Errors,
// Entries, and Bytes of the levels. Per-level Hits/Misses stay
// available from the level caches themselves, which the caller
// constructed.
func (t *Tiered) Stats() Stats {
	s := Stats{
		Hits:   t.hits.Load(),
		Misses: t.misses.Load(),
		Puts:   t.puts.Load(),
	}
	for _, l := range t.levels {
		ls := l.Stats()
		s.Evictions += ls.Evictions
		s.Errors += ls.Errors
		s.Entries += ls.Entries
		s.Bytes += ls.Bytes
	}
	return s
}

var _ Cache = (*Tiered)(nil)
