package cache

import (
	"path/filepath"
	"testing"
)

// TestTieredPromotion: a disk-only entry is promoted into the memory
// level by the Get that finds it, so the next lookup never touches
// disk.
func TestTieredPromotion(t *testing.T) {
	mem := NewMemory(1 << 20)
	disk, err := NewDisk(filepath.Join(t.TempDir(), "c"))
	if err != nil {
		t.Fatal(err)
	}
	tc := NewTiered(mem, disk)

	k := KeyOf([]byte("warm"))
	disk.Put(k, []byte("v")) // simulate an entry surviving a restart

	if v, ok := tc.Get(k); !ok || string(v) != "v" {
		t.Fatalf("tiered get = %q, %v", v, ok)
	}
	if v, ok := mem.Get(k); !ok || string(v) != "v" {
		t.Fatal("disk hit was not promoted into the memory level")
	}
	diskHitsBefore := disk.Stats().Hits
	if _, ok := tc.Get(k); !ok {
		t.Fatal("promoted entry missed")
	}
	if disk.Stats().Hits != diskHitsBefore {
		t.Error("second get fell through to disk despite promotion")
	}
}

// TestTieredPutAndStats: a Put lands in every level; stack-level
// hit/miss counters describe the composition, not the parts.
func TestTieredPutAndStats(t *testing.T) {
	mem := NewMemory(1 << 20)
	disk, err := NewDisk(filepath.Join(t.TempDir(), "c"))
	if err != nil {
		t.Fatal(err)
	}
	tc := NewTiered(mem, disk)

	k := KeyOf([]byte("x"))
	tc.Put(k, []byte("payload"))
	if _, ok := mem.Get(k); !ok {
		t.Error("put skipped the memory level")
	}
	if _, ok := disk.Get(k); !ok {
		t.Error("put skipped the disk level")
	}
	if _, ok := tc.Get(k); !ok {
		t.Error("tiered get missed a stored key")
	}
	if _, ok := tc.Get(KeyOf([]byte("absent"))); ok {
		t.Error("hit on an absent key")
	}
	st := tc.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Errorf("tiered stats = %+v, want hits=1 misses=1 puts=1", st)
	}
	if st.Entries == 0 || st.Bytes == 0 {
		t.Errorf("tiered stats do not aggregate level residency: %+v", st)
	}
}

// TestTieredEmpty: the degenerate zero-level composition always
// misses instead of panicking.
func TestTieredEmpty(t *testing.T) {
	tc := NewTiered()
	if _, ok := tc.Get(KeyOf([]byte("k"))); ok {
		t.Fatal("hit from an empty composition")
	}
	tc.Put(KeyOf([]byte("k")), []byte("v"))
	if st := tc.Stats(); st.Misses != 1 || st.Puts != 1 {
		t.Errorf("stats = %+v", st)
	}
}
