package stack

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/stack/cache"
)

// TestWarmCacheSweepByteIdentity is the tentpole gate: a sweep served
// entirely from a warm result cache produces byte-identical output to
// the cold run that populated it — across worker counts 1/4/16 and
// both the streaming and buffered merge strategies — while doing zero
// solver work.
func TestWarmCacheSweepByteIdentity(t *testing.T) {
	pkgs := publicPackages(sweepArchive())
	c := cache.NewMemory(8 << 20)
	// No wall-clock budget, so verdicts (and therefore bytes) are
	// strictly deterministic.
	opts := func(extra ...Option) []Option {
		return append([]Option{WithSolverTimeout(0), WithCache(c)}, extra...)
	}

	var coldBuf bytes.Buffer
	cold := New(opts(WithWorkers(1))...)
	coldRes, err := cold.Sweep(context.Background(), pkgs, NewTextSink(&coldBuf))
	if err != nil {
		t.Fatal(err)
	}
	if coldBuf.Len() == 0 || coldRes.Reports == 0 {
		t.Fatal("cold sweep produced no reports; identity test is vacuous")
	}
	files := int64(coldRes.Files)
	if coldRes.CacheResultHits != 0 || coldRes.CacheResultMisses != files {
		t.Fatalf("cold counters: hits=%d misses=%d, want 0/%d",
			coldRes.CacheResultHits, coldRes.CacheResultMisses, files)
	}

	for _, workers := range []int{1, 4, 16} {
		for _, buffered := range []bool{false, true} {
			name := fmt.Sprintf("workers=%d buffered=%t", workers, buffered)
			az := New(opts(WithWorkers(workers), WithBufferedSweep(buffered))...)
			var warmBuf bytes.Buffer
			var sink Sink
			if !buffered { // a sink forces streaming, so buffered runs without one
				sink = NewTextSink(&warmBuf)
			}
			res, err := az.Sweep(context.Background(), pkgs, sink)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !buffered && warmBuf.String() != coldBuf.String() {
				t.Errorf("%s: warm sink stream diverged from cold\n--- warm ---\n%s--- cold ---\n%s",
					name, warmBuf.String(), coldBuf.String())
			}
			// The summary's effort counters (queries, blasted terms) are
			// genuinely zero on a warm run and its timing lines vary, but
			// the report sections must match the cold run byte for byte.
			if got, want := reportSections(t, res.Format()), reportSections(t, coldRes.Format()); got != want {
				t.Errorf("%s: warm report summary diverged from cold\n--- warm ---\n%s--- cold ---\n%s", name, got, want)
			}
			if res.CacheResultHits != files || res.CacheResultMisses != 0 {
				t.Errorf("%s: warm counters hits=%d misses=%d, want %d/0",
					name, res.CacheResultHits, res.CacheResultMisses, files)
			}
			// A fully warm sweep does no solver work at all.
			if res.Queries != 0 {
				t.Errorf("%s: warm sweep issued %d solver queries, want 0", name, res.Queries)
			}
			if res.Reports != coldRes.Reports || res.Functions != coldRes.Functions || res.Files != coldRes.Files ||
				res.PackagesWithReports != coldRes.PackagesWithReports {
				t.Errorf("%s: warm summary fields diverged: %+v vs %+v", name, res, coldRes)
			}
		}
	}
}

// reportSections returns the deterministic report tail of a sweep
// summary — everything from "reports by algorithm" on — dropping the
// timing and solver-effort lines that legitimately differ between a
// cold and a warm run.
func reportSections(t *testing.T, summary string) string {
	t.Helper()
	i := strings.Index(summary, "reports by algorithm")
	if i < 0 {
		t.Fatalf("summary has no report sections:\n%s", summary)
	}
	return summary[i:]
}

// TestWarmCacheCheckSourcesIdentity: the batch path consults the same
// cache — warm Stats.CacheResultHits equals the source count, the
// emitted results are identical, and a cold run counts only misses.
func TestWarmCacheCheckSourcesIdentity(t *testing.T) {
	c := cache.NewMemory(1 << 20)
	srcs := []Source{
		{Name: "a.c", Text: fig1Src},
		{Name: "b.c", Text: divSrc},
		{Name: "c.c", Text: fig1Src + "\n"}, // distinct bytes from a.c
	}
	run := func(workers int) ([]FileResult, Stats) {
		az := New(WithSolverTimeout(0), WithCache(c), WithWorkers(workers))
		var got []FileResult
		st, err := az.CheckSources(context.Background(), srcs, func(fr FileResult) { got = append(got, fr) })
		if err != nil {
			t.Fatal(err)
		}
		return got, st
	}
	coldRes, coldSt := run(1)
	if coldSt.CacheResultHits != 0 || coldSt.CacheResultMisses != int64(len(srcs)) {
		t.Fatalf("cold stats: hits=%d misses=%d, want 0/%d", coldSt.CacheResultHits, coldSt.CacheResultMisses, len(srcs))
	}
	for _, workers := range []int{1, 4} {
		warmRes, warmSt := run(workers)
		if warmSt.CacheResultHits != int64(len(srcs)) || warmSt.CacheResultMisses != 0 {
			t.Errorf("workers=%d: warm stats hits=%d misses=%d, want %d/0",
				workers, warmSt.CacheResultHits, warmSt.CacheResultMisses, len(srcs))
		}
		if warmSt.Queries != 0 {
			t.Errorf("workers=%d: warm batch issued %d queries, want 0", workers, warmSt.Queries)
		}
		if warmSt.Functions != coldSt.Functions || warmSt.Blocks != coldSt.Blocks {
			t.Errorf("workers=%d: shape counters not replayed: warm %+v cold %+v", workers, warmSt, coldSt)
		}
		if !reflect.DeepEqual(warmRes, coldRes) {
			t.Errorf("workers=%d: warm results diverged:\nwarm %+v\ncold %+v", workers, warmRes, coldRes)
		}
	}
	// CheckSource rides the same cache.
	az := New(WithSolverTimeout(0), WithCache(c))
	res, err := az.CheckSource(context.Background(), "a.c", fig1Src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheResultHits != 1 || res.Stats.Queries != 0 {
		t.Errorf("CheckSource warm stats = %+v, want one hit and no queries", res.Stats)
	}
}

// TestWarmCacheRehydratesFileNames: the key is purely content-
// addressed — a second file with identical bytes but a different name
// hits, and every position in the replayed diagnostics names the
// requesting file, byte-identical to analyzing it fresh.
func TestWarmCacheRehydratesFileNames(t *testing.T) {
	c := cache.NewMemory(1 << 20)
	az := New(WithSolverTimeout(0), WithCache(c))
	ctx := context.Background()
	if _, err := az.CheckSource(ctx, "original.c", fig1Src); err != nil {
		t.Fatal(err)
	}

	cached, err := az.CheckSource(ctx, "renamed.c", fig1Src)
	if err != nil {
		t.Fatal(err)
	}
	if cached.Stats.CacheResultHits != 1 {
		t.Fatalf("same-bytes different-name lookup missed: %+v", cached.Stats)
	}
	fresh, err := New(WithSolverTimeout(0)).CheckSource(ctx, "renamed.c", fig1Src)
	if err != nil {
		t.Fatal(err)
	}
	if len(cached.Diagnostics) == 0 {
		t.Fatal("no diagnostics; rehydration test is vacuous")
	}
	if got, want := FormatDiagnostics(cached.Diagnostics), FormatDiagnostics(fresh.Diagnostics); got != want {
		t.Errorf("replayed diagnostics differ from fresh analysis under the new name\n--- cached ---\n%s--- fresh ---\n%s", got, want)
	}
	for _, d := range cached.Diagnostics {
		if strings.Contains(d.String(), "original.c") {
			t.Errorf("diagnostic leaked the stored name: %s", d)
		}
	}
}

// TestCacheKeyOptionSensitivity: every result-affecting option changes
// the cache key; the source bytes do too; equal configurations agree.
func TestCacheKeyOptionSensitivity(t *testing.T) {
	base := core.DefaultOptions
	src := "int f(void) { return 0; }"
	baseKey := cacheKeyOf(base, src)

	if cacheKeyOf(base, src) != baseKey {
		t.Fatal("cache key is not deterministic")
	}
	if cacheKeyOf(base, src+" ") == baseKey {
		t.Error("source bytes do not affect the key")
	}

	mutations := map[string]func(*core.Options){
		"Timeout":                         func(o *core.Options) { o.Timeout++ },
		"MaxConflictsPerQuery":            func(o *core.Options) { o.MaxConflictsPerQuery++ },
		"FilterOrigins":                   func(o *core.Options) { o.FilterOrigins = !o.FilterOrigins },
		"MinUBSets":                       func(o *core.Options) { o.MinUBSets = !o.MinUBSets },
		"Inline":                          func(o *core.Options) { o.Inline = !o.Inline },
		"LearntBudget":                    func(o *core.Options) { o.LearntBudget++ },
		"ScratchSolve":                    func(o *core.Options) { o.ScratchSolve = !o.ScratchSolve },
		"SSA":                             func(o *core.Options) { o.SSA = !o.SSA },
		"Flags.WrapV":                     func(o *core.Options) { o.Flags.WrapV = !o.Flags.WrapV },
		"Flags.NoStrictOverflow":          func(o *core.Options) { o.Flags.NoStrictOverflow = !o.Flags.NoStrictOverflow },
		"Flags.NoDeleteNullPointerChecks": func(o *core.Options) { o.Flags.NoDeleteNullPointerChecks = !o.Flags.NoDeleteNullPointerChecks },
	}
	for name, mutate := range mutations {
		o := base
		mutate(&o)
		if cacheKeyOf(o, src) == baseKey {
			t.Errorf("mutating %s does not change the cache key", name)
		}
	}
}

// TestCacheKeyIgnoresExecutionKnobs: Workers and BufferedSweep cannot
// change results, so analyzers differing only in them share entries —
// asserted behaviorally through a shared cache.
func TestCacheKeyIgnoresExecutionKnobs(t *testing.T) {
	c := cache.NewMemory(1 << 20)
	ctx := context.Background()
	if _, err := New(WithSolverTimeout(0), WithCache(c), WithWorkers(1)).CheckSource(ctx, "a.c", fig1Src); err != nil {
		t.Fatal(err)
	}
	for _, az := range []*Analyzer{
		New(WithSolverTimeout(0), WithCache(c), WithWorkers(16)),
		New(WithSolverTimeout(0), WithCache(c), WithBufferedSweep(true)),
	} {
		res, err := az.CheckSource(ctx, "a.c", fig1Src)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.CacheResultHits != 1 {
			t.Errorf("execution-knob variant missed the shared cache: %+v", res.Stats)
		}
	}
}

// TestOptionsFingerprintCoversAllFields reflects over core.Options and
// core.Flags: every field must appear by name in the fingerprint, and
// mutating any field must change the fingerprint bytes. Adding a
// result-affecting option without extending optionsFingerprint fails
// here (and in scripts/invariants.sh, which cross-checks from the
// shell).
func TestOptionsFingerprintCoversAllFields(t *testing.T) {
	base := core.DefaultOptions
	fp := string(optionsFingerprint(base))

	var walk func(prefix string, v reflect.Value)
	walk = func(prefix string, v reflect.Value) {
		tp := v.Type()
		for i := 0; i < tp.NumField(); i++ {
			f := tp.Field(i)
			name := prefix + f.Name
			if f.Type.Kind() == reflect.Struct && f.Type != reflect.TypeOf(core.Options{}.Timeout) {
				walk(name+".", v.Field(i))
				continue
			}
			if !strings.Contains(fp, name+"=") {
				t.Errorf("fingerprint does not name field %s", name)
			}
		}
	}
	walk("", reflect.ValueOf(base))

	// Mutate every leaf field via reflection and demand a new
	// fingerprint. This is what makes the check future-proof: a new
	// field fails without any test edit.
	var mutate func(prefix string, v reflect.Value)
	mutate = func(prefix string, v reflect.Value) {
		for i := 0; i < v.NumField(); i++ {
			name := prefix + v.Type().Field(i).Name
			f := v.Field(i)
			o := base // fresh copy per field
			target := reflect.ValueOf(&o).Elem()
			// Walk down to the same field in the copy.
			path := strings.Split(name, ".")
			for _, p := range path {
				target = target.FieldByName(p)
			}
			switch f.Kind() {
			case reflect.Bool:
				target.SetBool(!f.Bool())
			case reflect.Int, reflect.Int64:
				target.SetInt(f.Int() + 1)
			case reflect.Struct:
				mutate(name+".", f)
				continue
			default:
				t.Fatalf("field %s has kind %v; teach the fingerprint test about it", name, f.Kind())
			}
			if string(optionsFingerprint(o)) == fp {
				t.Errorf("mutating %s does not change the fingerprint", name)
			}
		}
	}
	mutate("", reflect.ValueOf(base))
}

// TestWarmCacheSurvivesRestart: entries written through a tiered
// memory+disk cache are served by a brand-new analyzer holding a fresh
// Disk handle on the same root — the persistence the stackd -cache-dir
// flag promises across restarts.
func TestWarmCacheSurvivesRestart(t *testing.T) {
	root := t.TempDir()
	disk, err := cache.NewDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	tiered := cache.NewTiered(cache.NewMemory(1<<20), disk)
	ctx := context.Background()
	if _, err := New(WithSolverTimeout(0), WithCache(tiered)).CheckSource(ctx, "a.c", fig1Src); err != nil {
		t.Fatal(err)
	}

	disk2, err := cache.NewDisk(root) // "restarted" process: cold memory, same directory
	if err != nil {
		t.Fatal(err)
	}
	az := New(WithSolverTimeout(0), WithCache(cache.NewTiered(cache.NewMemory(1<<20), disk2)))
	res, err := az.CheckSource(ctx, "a.c", fig1Src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheResultHits != 1 || res.Stats.Queries != 0 {
		t.Errorf("restarted analyzer stats = %+v, want a disk hit and no queries", res.Stats)
	}
}

// TestCacheCorruptPayloadIsMiss: a payload that fails to decode is
// treated as a miss and reanalyzed, never served or fatal.
func TestCacheCorruptPayloadIsMiss(t *testing.T) {
	c := cache.NewMemory(1 << 20)
	az := New(WithSolverTimeout(0), WithCache(c))
	ctx := context.Background()
	if _, err := az.CheckSource(ctx, "a.c", fig1Src); err != nil {
		t.Fatal(err)
	}
	// Overwrite the stored entry with junk under the same key.
	c.Put(cacheKeyOf(az.coreOptions(), fig1Src), []byte("{not json"))
	res, err := az.CheckSource(ctx, "a.c", fig1Src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheResultHits != 0 || res.Stats.CacheResultMisses != 1 {
		t.Errorf("corrupt payload was not a miss: %+v", res.Stats)
	}
	if len(res.Diagnostics) == 0 {
		t.Error("reanalysis after corrupt payload lost diagnostics")
	}
}
