package stack

// Content-addressed result-cache keys and the cached-entry codec.
//
// The cache key for one source is
//
//	SHA-256( schema tag ‖ options fingerprint ‖ source bytes )
//
// over length-prefixed segments (cache.KeyOf), so the three parts can
// never collide by concatenation. The file *name* is deliberately not
// part of the key: two files with identical bytes share one entry, and
// the codec rehydrates name-dependent report positions on the way out.
//
// The options fingerprint is a canonical rendering of every
// result-affecting field of core.Options — change any of them and the
// key changes, so a cache can never serve a result computed under
// different semantics. Fields that cannot affect results (the
// analyzer's Workers and Buffered knobs, the sink format) live outside
// core.Options and are excluded by construction. The fingerprint names
// each field verbatim; TestOptionsFingerprintCoversAllFields reflects
// over core.Options to prove no field is forgotten, and
// scripts/invariants.sh cross-checks the field list from the shell.

import (
	"encoding/json"
	"fmt"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/stack/cache"
)

// entrySchemaVersion versions the JSON payload encoding of cached
// entries. It is part of the cache key, so a codec change cleanly
// misses every entry written by older code — in the memory tier as
// well as on disk (the disk tier additionally versions its container
// format; see cache.DiskSchemaVersion).
const entrySchemaVersion = 1

// optionsFingerprint renders every result-affecting checker option in
// a canonical, versioned form. Each core.Options and core.Flags field
// appears by its Go name: the reflection test and the shell invariant
// both key on that.
func optionsFingerprint(o core.Options) []byte {
	return []byte(fmt.Sprintf(
		"Timeout=%d;MaxConflictsPerQuery=%d;FilterOrigins=%t;MinUBSets=%t;"+
			"Inline=%t;LearntBudget=%d;ScratchSolve=%t;SSA=%t;"+
			"Flags.WrapV=%t;Flags.NoStrictOverflow=%t;Flags.NoDeleteNullPointerChecks=%t",
		int64(o.Timeout), o.MaxConflictsPerQuery, o.FilterOrigins, o.MinUBSets,
		o.Inline, o.LearntBudget, o.ScratchSolve, o.SSA,
		o.Flags.WrapV, o.Flags.NoStrictOverflow, o.Flags.NoDeleteNullPointerChecks,
	))
}

// cacheKeyOf derives the content address for one source under the
// given options.
func cacheKeyOf(o core.Options, src string) cache.Key {
	return cache.KeyOf(
		[]byte(fmt.Sprintf("stack/result/v%d", entrySchemaVersion)),
		optionsFingerprint(o),
		[]byte(src),
	)
}

// cacheEntry is the JSON payload stored per key: the analyzed file's
// name at store time (for position rehydration), the program-shape
// stats a hit replays, and the full reports.
type cacheEntry struct {
	Name      string        `json:"name"`
	Functions int           `json:"functions"`
	Blocks    int           `json:"blocks"`
	Reports   []cacheReport `json:"reports,omitempty"`
}

type cachePos struct {
	File string `json:"file,omitempty"`
	Line int    `json:"line,omitempty"`
	Col  int    `json:"col,omitempty"`
}

type cacheUBRef struct {
	Kind int      `json:"kind"`
	Pos  cachePos `json:"pos"`
}

type cacheReport struct {
	Func       string       `json:"func"`
	Algo       int          `json:"algo"`
	Pos        cachePos     `json:"pos"`
	Simplified string       `json:"simplified,omitempty"`
	UBConds    []cacheUBRef `json:"ubConds,omitempty"`
	Origin     string       `json:"origin,omitempty"`
}

func posOf(p cc.Pos) cachePos  { return cachePos{File: p.File, Line: p.Line, Col: p.Col} }
func (p cachePos) pos() cc.Pos { return cc.Pos{File: p.File, Line: p.Line, Col: p.Col} }

func encodeEntry(name string, cf corpus.CachedFile) ([]byte, error) {
	e := cacheEntry{Name: name, Functions: cf.Functions, Blocks: cf.Blocks}
	for _, r := range cf.Reports {
		cr := cacheReport{
			Func:       r.Func,
			Algo:       int(r.Algo),
			Pos:        posOf(r.Pos),
			Simplified: r.Simplified,
			Origin:     r.Origin,
		}
		for _, u := range r.UBConds {
			cr.UBConds = append(cr.UBConds, cacheUBRef{Kind: int(u.Kind), Pos: posOf(u.Pos)})
		}
		e.Reports = append(e.Reports, cr)
	}
	return json.Marshal(e)
}

// decodeEntry rebuilds a CachedFile, rewriting every position that
// named the stored file to the requesting name. Positions with other
// file names (or none) pass through untouched, so the rewrite is
// exactly the inverse of what analyzing the same bytes under the new
// name would have produced.
func decodeEntry(raw []byte, name string) (corpus.CachedFile, bool) {
	var e cacheEntry
	if err := json.Unmarshal(raw, &e); err != nil {
		return corpus.CachedFile{}, false
	}
	rename := func(p cachePos) cc.Pos {
		if p.File == e.Name {
			p.File = name
		}
		return p.pos()
	}
	cf := corpus.CachedFile{Functions: e.Functions, Blocks: e.Blocks}
	for _, cr := range e.Reports {
		r := &core.Report{
			Func:       cr.Func,
			Algo:       core.Algo(cr.Algo),
			Pos:        rename(cr.Pos),
			Simplified: cr.Simplified,
			Origin:     cr.Origin,
		}
		for _, u := range cr.UBConds {
			r.UBConds = append(r.UBConds, core.UBRef{Kind: core.UBKind(u.Kind), Pos: rename(u.Pos)})
		}
		cf.Reports = append(cf.Reports, r)
	}
	return cf, true
}

// resultCache adapts a generic byte cache to the corpus.ResultCache
// the sweep pipeline consults: it owns key derivation (options
// fingerprint precomputed once) and the entry codec. A payload that
// fails to decode is a miss, never an error — same contract as a
// corrupt disk entry.
type resultCache struct {
	c  cache.Cache
	o  core.Options
	fp []byte
}

func newResultCache(c cache.Cache, o core.Options) *resultCache {
	return &resultCache{c: c, o: o, fp: optionsFingerprint(o)}
}

func (rc *resultCache) key(src string) cache.Key {
	return cache.KeyOf(
		[]byte(fmt.Sprintf("stack/result/v%d", entrySchemaVersion)),
		rc.fp,
		[]byte(src),
	)
}

func (rc *resultCache) Lookup(name, src string) (corpus.CachedFile, bool) {
	raw, ok := rc.c.Get(rc.key(src))
	if !ok {
		return corpus.CachedFile{}, false
	}
	return decodeEntry(raw, name)
}

func (rc *resultCache) Store(name, src string, cf corpus.CachedFile) {
	raw, err := encodeEntry(name, cf)
	if err != nil {
		return // unencodable entries are simply not cached
	}
	rc.c.Put(rc.key(src), raw)
}

// CacheStats reports the underlying cache's traffic and residency
// counters, or the zero value when no cache is configured. This is the
// service's /metrics and ?stats=1 source of truth.
func (a *Analyzer) CacheStats() cache.Stats {
	if a.cache == nil {
		return cache.Stats{}
	}
	return a.cache.c.Stats()
}
