package stack

import "context"

// Checker is the context-first analysis surface shared by every way of
// running the checker: in process (*Analyzer), over HTTP against a
// stackd replica (stack/client), or fanned across several replicas
// (stack/shard). Code written against Checker — the CLIs, the service
// batch endpoint — is oblivious to where the solver actually runs.
//
// Implementations must honor the CheckSources streaming contract:
// emit is called once per source, in strictly increasing input order,
// as soon as that source and every earlier one have finished; on the
// first error (in input order) emission stops and the error, carrying
// the source name, is returned. Diagnostics must be identical across
// implementations for the same inputs and options — the sharded
// remote run is byte-identical to a local one.
type Checker interface {
	// CheckSource analyzes one named C translation unit.
	CheckSource(ctx context.Context, name, src string) (*Result, error)
	// CheckSources analyzes a batch, streaming per-source results to
	// emit (which may be nil) in input order.
	CheckSources(ctx context.Context, srcs []Source, emit func(FileResult)) (Stats, error)
}

// Analyzer is the in-process Checker.
var _ Checker = (*Analyzer)(nil)

// Add accumulates other into s — the reduction step when per-worker or
// per-replica stats are merged.
func (s *Stats) Add(other Stats) {
	s.Functions += other.Functions
	s.Blocks += other.Blocks
	s.Queries += other.Queries
	s.Timeouts += other.Timeouts
	s.RewriteHits += other.RewriteHits
	s.TermsCreated += other.TermsCreated
	s.FastPaths += other.FastPaths
	s.TermsBlasted += other.TermsBlasted
	s.BlastPasses += other.BlastPasses
	s.LearntsReused += other.LearntsReused
	s.CacheHits += other.CacheHits
	s.LearntsDropped += other.LearntsDropped
	s.ArenaBytesReused += other.ArenaBytesReused
	s.PromotedAllocas += other.PromotedAllocas
	s.EliminatedStores += other.EliminatedStores
	s.GVNHits += other.GVNHits
	s.SCCPFoldedValues += other.SCCPFoldedValues
	s.SCCPFoldedBranches += other.SCCPFoldedBranches
	s.SCCPUnreachableBlocks += other.SCCPUnreachableBlocks
	s.CrossBlockGVNHits += other.CrossBlockGVNHits
	s.HoistedUBTerms += other.HoistedUBTerms
	s.DomOrderedSkips += other.DomOrderedSkips
	s.SSASharpened += other.SSASharpened
	s.CacheResultHits += other.CacheResultHits
	s.CacheResultMisses += other.CacheResultMisses
}
