// Package client implements stack.Checker over HTTP against a stackd
// replica: the remote half of the v2 batch/archive API. A Client is a
// drop-in for *stack.Analyzer anywhere a Checker is accepted — the
// CLIs' -remote mode, the stack/shard dispatcher, the service itself —
// and preserves the streaming contract end to end: /v1/sweep responses
// are decoded line by line as they arrive, so the caller's emit
// callback observes each file's result while later files are still
// being analyzed on the server.
//
// Analysis options (solver timeout, conflict budget, workers) are the
// replica's: they were fixed when its stackd was started. The client
// only carries sources over and results back, which is what makes a
// remote run byte-identical to a local one configured the same way.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/stack"
)

// Client is an HTTP stack.Checker speaking the stackd v2 API.
type Client struct {
	base string
	hc   *http.Client
}

var _ stack.Checker = (*Client)(nil)

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (for custom
// transports, TLS, or test doubles). The default is a plain
// &http.Client{} — no client-side timeout, so a long sweep streams
// for as long as the request context allows.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New returns a Client for the replica at base — "host:port",
// "http://host:port", or a full URL prefix. A bare host defaults to
// http.
func New(base string, opts ...Option) *Client {
	base = strings.TrimRight(base, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c := &Client{base: base, hc: &http.Client{}}
	for _, o := range opts {
		o(c)
	}
	return c
}

// StatusError is a non-2xx answer from the replica, carrying the
// decoded error message and the HTTP status.
type StatusError struct {
	StatusCode int
	Message    string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("stackd: %s (HTTP %d)", e.Message, e.StatusCode)
}

// post issues one JSON POST and returns the response, translating
// non-2xx statuses into *StatusError.
func (c *Client) post(ctx context.Context, path string, body any) (*http.Response, error) {
	enc, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(enc))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		var e struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16)); err == nil {
			if json.Unmarshal(b, &e) == nil && e.Error != "" {
				msg = e.Error
			}
		}
		return nil, &StatusError{StatusCode: resp.StatusCode, Message: msg}
	}
	return resp, nil
}

// CheckSource analyzes one source on the replica via POST /v1/analyze.
func (c *Client) CheckSource(ctx context.Context, name, src string) (*stack.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	resp, err := c.post(ctx, "/v1/analyze", map[string]string{"name": name, "source": src})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var res stack.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return nil, fmt.Errorf("decoding analyze response: %w", err)
	}
	return &res, nil
}

// sweepSource mirrors the service's batch entry.
type sweepSource struct {
	Name   string `json:"name"`
	Source string `json:"source"`
}

// sweepLine is one decoded line of a /v1/sweep JSONL stream: a
// per-file result, the final stats trailer, or an error trailer.
type sweepLine struct {
	stack.FileResult
	Stats *stack.Stats `json:"stats"`
	Error string       `json:"error"`
}

// CheckSources analyzes a batch on the replica via POST /v1/sweep,
// streaming the JSONL response: emit observes each file's result as
// its line arrives — in input order, while the server is still
// sweeping later files. The stats trailer the server appends becomes
// the returned Stats.
func (c *Client) CheckSources(ctx context.Context, srcs []stack.Source, emit func(stack.FileResult)) (stack.Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(srcs) == 0 {
		return stack.Stats{}, nil
	}
	batch := make([]sweepSource, len(srcs))
	for i, s := range srcs {
		batch[i] = sweepSource{Name: s.Name, Source: s.Text}
	}
	resp, err := c.post(ctx, "/v1/sweep?format=jsonl&stats=1", map[string]any{"sources": batch})
	if err != nil {
		return stack.Stats{}, err
	}
	defer resp.Body.Close()

	var st stack.Stats
	// json.Decoder consumes concatenated JSON values as they arrive on
	// the socket, so decoding keeps pace with the server's per-file
	// flushes rather than waiting for EOF.
	dec := json.NewDecoder(resp.Body)
	for {
		var line sweepLine
		if err := dec.Decode(&line); err == io.EOF {
			break
		} else if err != nil {
			// A context abort surfaces as a read error wrapped by the
			// decoder; prefer the causal ctx error.
			if ctx.Err() != nil {
				return st, ctx.Err()
			}
			return st, fmt.Errorf("decoding sweep stream: %w", err)
		}
		switch {
		case line.Error != "":
			// The server's mid-stream error trailer carries the failing
			// source's name, same as a local CheckSources error.
			return st, errors.New(line.Error)
		case line.Stats != nil:
			st = *line.Stats
		default:
			if emit != nil {
				emit(line.FileResult)
			}
		}
	}
	return st, nil
}
