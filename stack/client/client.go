// Package client implements stack.Checker over HTTP against a stackd
// replica: the remote half of the v2 batch/archive API. A Client is a
// drop-in for *stack.Analyzer anywhere a Checker is accepted — the
// CLIs' -remote mode, the stack/shard dispatcher, the service itself —
// and preserves the streaming contract end to end: /v1/sweep responses
// are decoded line by line as they arrive, so the caller's emit
// callback observes each file's result while later files are still
// being analyzed on the server.
//
// Analysis options (solver timeout, conflict budget, workers) are the
// replica's: they were fixed when its stackd was started. The client
// only carries sources over and results back, which is what makes a
// remote run byte-identical to a local one configured the same way.
//
// Every error a Client returns is attributed to its replica: it
// unwraps to a *ReplicaError carrying the base URL, so in a fleet a
// dead replica is named, not just "unexpected EOF". Failures of the
// transport itself (dial, TLS, a mid-stream disconnect) additionally
// unwrap to a *TransportError, which is what the shard dispatcher
// treats as retryable on another replica — as opposed to the
// replica's own verdict about the input, which is final.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/stack"
)

// Client is an HTTP stack.Checker speaking the stackd v2 API.
type Client struct {
	base  string
	hc    *http.Client
	token string // bearer token for the replica's analysis endpoints
}

var _ stack.Checker = (*Client)(nil)

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (for custom
// transports, TLS, or test doubles), replacing the default transport
// entirely.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithAuthToken sends the token as an Authorization: Bearer header on
// every request — the client half of the service's AuthToken option.
func WithAuthToken(token string) Option {
	return func(c *Client) { c.token = token }
}

// newTransport returns the production default transport: every phase
// that can hang on a black-holed replica — dialing, the TLS handshake,
// waiting for response headers — has its own bound, while the response
// body itself has none, so a long JSONL sweep streams for as long as
// the request context allows. There is deliberately no overall
// http.Client.Timeout for the same reason.
func newTransport() *http.Transport {
	return &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   10 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		TLSHandshakeTimeout:   10 * time.Second,
		ResponseHeaderTimeout: 60 * time.Second,
		ExpectContinueTimeout: time.Second,
		IdleConnTimeout:       90 * time.Second,
		MaxIdleConnsPerHost:   16,
		ForceAttemptHTTP2:     true,
	}
}

// New returns a Client for the replica at base — "host:port",
// "http://host:port", or a full URL prefix. A bare host defaults to
// http.
func New(base string, opts ...Option) *Client {
	base = strings.TrimRight(base, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c := &Client{base: base, hc: &http.Client{Transport: newTransport()}}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Base returns the normalized base URL of the replica this client
// talks to — the name used in error attribution and by the shard
// dispatcher's health reporting and duplicate detection.
func (c *Client) Base() string { return c.base }

// ReplicaError attributes a failure to the replica that produced it.
// Every non-context error a Client returns unwraps to one, so shard
// errors name the dead replica instead of an anonymous stream.
type ReplicaError struct {
	// Replica is the base URL of the replica the request went to.
	Replica string
	Err     error
}

func (e *ReplicaError) Error() string { return fmt.Sprintf("replica %s: %v", e.Replica, e.Err) }
func (e *ReplicaError) Unwrap() error { return e.Err }

// TransportError marks a failure of the transport itself — dial, TLS,
// a connection reset, a stream truncated mid-decode — as opposed to an
// answer the replica chose to give. Transport failures are the ones a
// dispatcher may retry on another replica: the input was never judged.
type TransportError struct {
	Err error
}

func (e *TransportError) Error() string { return e.Err.Error() }
func (e *TransportError) Unwrap() error { return e.Err }

// StatusError is a non-2xx answer from the replica, carrying the
// decoded error message and the HTTP status.
type StatusError struct {
	StatusCode int
	Message    string
	// RetryAfter is the server's backoff hint from the Retry-After
	// header (0 when absent): stackd sends it on 503 when admission is
	// saturated, and callers — the shard dispatcher's backoff path —
	// should not retry this replica sooner.
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("stackd: %s (HTTP %d)", e.Message, e.StatusCode)
}

// parseRetryAfter decodes a Retry-After header: delta-seconds or an
// HTTP date. Absent or malformed values are 0.
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(h); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// wrap attributes err to this client's replica. Context errors pass
// through untouched: they are the caller's cancellation, not the
// replica's fault, and the shard dispatcher's root-cause selection
// depends on seeing them bare.
func (c *Client) wrap(err error) error {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return &ReplicaError{Replica: c.base, Err: err}
}

// Healthz probes the replica's GET /healthz endpoint, returning nil
// when the replica answers 200. The shard dispatcher uses it for
// background health probing; callers should bound ctx.
func (c *Client) Healthz(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return c.wrap(err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return c.wrap(&TransportError{Err: err})
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	if resp.StatusCode != http.StatusOK {
		return c.wrap(&StatusError{
			StatusCode: resp.StatusCode,
			Message:    "healthz: " + resp.Status,
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		})
	}
	return nil
}

// post issues one JSON POST and returns the response, translating
// non-2xx statuses into *StatusError and transport failures into
// *TransportError, both attributed to the replica.
func (c *Client) post(ctx context.Context, path string, body any) (*http.Response, error) {
	enc, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(enc))
	if err != nil {
		return nil, c.wrap(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, c.wrap(&TransportError{Err: err})
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		var e struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16)); err == nil {
			if json.Unmarshal(b, &e) == nil && e.Error != "" {
				msg = e.Error
			}
		}
		return nil, c.wrap(&StatusError{
			StatusCode: resp.StatusCode,
			Message:    msg,
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		})
	}
	return resp, nil
}

// CheckSource analyzes one source on the replica via POST /v1/analyze.
func (c *Client) CheckSource(ctx context.Context, name, src string) (*stack.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	resp, err := c.post(ctx, "/v1/analyze", map[string]string{"name": name, "source": src})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var res stack.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, c.wrap(&TransportError{Err: fmt.Errorf("decoding analyze response: %w", err)})
	}
	return &res, nil
}

// sweepSource mirrors the service's batch entry.
type sweepSource struct {
	Name   string `json:"name"`
	Source string `json:"source"`
}

// sweepLine is one decoded line of a /v1/sweep JSONL stream: a
// per-file result, the final stats trailer, or an error trailer.
type sweepLine struct {
	stack.FileResult
	Stats *stack.Stats `json:"stats"`
	Error string       `json:"error"`
}

// CheckSources analyzes a batch on the replica via POST /v1/sweep,
// streaming the JSONL response: emit observes each file's result as
// its line arrives — in input order, while the server is still
// sweeping later files. The stats trailer the server appends becomes
// the returned Stats.
func (c *Client) CheckSources(ctx context.Context, srcs []stack.Source, emit func(stack.FileResult)) (stack.Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(srcs) == 0 {
		return stack.Stats{}, nil
	}
	batch := make([]sweepSource, len(srcs))
	for i, s := range srcs {
		batch[i] = sweepSource{Name: s.Name, Source: s.Text}
	}
	resp, err := c.post(ctx, "/v1/sweep?format=jsonl&stats=1", map[string]any{"sources": batch})
	if err != nil {
		return stack.Stats{}, err
	}
	defer resp.Body.Close()

	var st stack.Stats
	// json.Decoder consumes concatenated JSON values as they arrive on
	// the socket, so decoding keeps pace with the server's per-file
	// flushes rather than waiting for EOF.
	dec := json.NewDecoder(resp.Body)
	for {
		var line sweepLine
		if err := dec.Decode(&line); err == io.EOF {
			break
		} else if err != nil {
			// A context abort surfaces as a read error wrapped by the
			// decoder; prefer the causal ctx error.
			if ctx.Err() != nil {
				return st, ctx.Err()
			}
			return st, c.wrap(&TransportError{Err: fmt.Errorf("decoding sweep stream: %w", err)})
		}
		switch {
		case line.Error != "":
			// The server's mid-stream error trailer carries the failing
			// source's name, same as a local CheckSources error. It is
			// the replica's verdict on the input, not a transport fault.
			return st, c.wrap(errors.New(line.Error))
		case line.Stats != nil:
			st = *line.Stats
		default:
			if emit != nil {
				emit(line.FileResult)
			}
		}
	}
	return st, nil
}
