package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/stack"
	"repro/stack/service"
)

const fig1Src = `
int parse_header(char *buf, char *buf_end, unsigned int len) {
	if (buf + len >= buf_end)
		return -1;
	if (buf + len < buf)
		return -1;
	return 0;
}
`

const divSrc = `
int scale(int x, int y) {
	int q = x / y;
	if (y == 0)
		return -1;
	return q;
}
`

// newReplica starts an in-process stackd replica over az and returns a
// Client for it.
func newReplica(t *testing.T, az *stack.Analyzer) *Client {
	t.Helper()
	ts := httptest.NewServer(service.New(az, service.Options{}))
	t.Cleanup(ts.Close)
	return New(ts.URL)
}

// TestCheckSourceRemoteEqualsLocal: a remote single-file analysis
// returns exactly the local Result — diagnostics and stats.
func TestCheckSourceRemoteEqualsLocal(t *testing.T) {
	az := stack.New(stack.WithSolverTimeout(0))
	c := newReplica(t, az)

	want, err := az.CheckSource(context.Background(), "fig1.c", fig1Src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.CheckSource(context.Background(), "fig1.c", fig1Src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("remote result diverged\n--- got ---\n%+v\n--- want ---\n%+v", got, want)
	}
	if len(got.Diagnostics) == 0 {
		t.Fatal("no diagnostics; the identity is vacuous")
	}
}

// TestCheckSourcesRemoteByteIdentity: the JSONL rendering of a remote
// batch is byte-identical to a local run for several worker counts,
// and the stats trailer round-trips the replica's effort counters.
func TestCheckSourcesRemoteByteIdentity(t *testing.T) {
	srcs := []stack.Source{
		{Name: "a.c", Text: fig1Src},
		{Name: "b.c", Text: "int f(void) { return 0; }"},
		{Name: "c.c", Text: divSrc},
		{Name: "d.c", Text: fig1Src},
		{Name: "e.c", Text: divSrc},
	}
	for _, workers := range []int{1, 4} {
		az := stack.New(stack.WithWorkers(workers), stack.WithSolverTimeout(0))
		c := newReplica(t, az)

		render := func(chk stack.Checker) (string, stack.Stats) {
			var buf bytes.Buffer
			sink := stack.NewJSONLSink(&buf)
			st, err := chk.CheckSources(context.Background(), srcs, func(fr stack.FileResult) {
				if err := sink.Emit(fr); err != nil {
					t.Fatal(err)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			return buf.String(), st
		}
		wantOut, wantSt := render(az)
		gotOut, gotSt := render(c)
		if gotOut != wantOut {
			t.Errorf("workers=%d: remote stream diverged\n--- got ---\n%s--- want ---\n%s", workers, gotOut, wantOut)
		}
		// ArenaBytesReused measures the serving process's allocator reuse,
		// which legitimately depends on deployment topology (how many
		// checker instances the work is spread over) — every analysis
		// quantity must still match exactly.
		gotSt.ArenaBytesReused, wantSt.ArenaBytesReused = 0, 0
		if gotSt != wantSt {
			t.Errorf("workers=%d: stats diverged: remote %+v, local %+v", workers, gotSt, wantSt)
		}
		if gotSt.Queries == 0 {
			t.Errorf("workers=%d: stats trailer not decoded: %+v", workers, gotSt)
		}
	}
}

// TestCheckSourcesRemoteError: a failing source stops emission at its
// index and surfaces an error naming it, exactly like the local
// contract.
func TestCheckSourcesRemoteError(t *testing.T) {
	c := newReplica(t, stack.New(stack.WithSolverTimeout(0)))
	var order []int
	_, err := c.CheckSources(context.Background(), []stack.Source{
		{Name: "a.c", Text: fig1Src},
		{Name: "broken.c", Text: "int f( {"},
		{Name: "after.c", Text: fig1Src},
	}, func(fr stack.FileResult) { order = append(order, fr.Index) })
	if err == nil || !strings.Contains(err.Error(), "broken.c") {
		t.Fatalf("error = %v, want one naming broken.c", err)
	}
	if !reflect.DeepEqual(order, []int{0}) {
		t.Errorf("emitted indices %v, want [0]", order)
	}
}

// TestStatusError: a non-200 answer (here: a whole-batch rejection)
// becomes a *StatusError with the server's message.
func TestStatusError(t *testing.T) {
	c := newReplica(t, stack.New())
	_, err := c.CheckSources(context.Background(), []stack.Source{{Name: "x.c", Text: "int f( {"}}, nil)
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("error = %v (%T), want *StatusError", err, err)
	}
	if se.StatusCode != http.StatusUnprocessableEntity || se.Message == "" {
		t.Errorf("StatusError = %+v, want 422 with a message", se)
	}
}

// TestBaseNormalization: bare host:port, trailing slash, and explicit
// scheme all reach the replica.
func TestBaseNormalization(t *testing.T) {
	ts := httptest.NewServer(service.New(stack.New(), service.Options{}))
	defer ts.Close()
	hostport := strings.TrimPrefix(ts.URL, "http://")
	for _, base := range []string{ts.URL, ts.URL + "/", hostport} {
		c := New(base)
		res, err := c.CheckSource(context.Background(), "x.c", "int f(void) { return 0; }")
		if err != nil {
			t.Errorf("base %q: %v", base, err)
			continue
		}
		if res.File != "x.c" {
			t.Errorf("base %q: file = %q", base, res.File)
		}
	}
}

// TestEmptyBatch never touches the network.
func TestEmptyBatch(t *testing.T) {
	c := New("127.0.0.1:1") // nothing listens here
	st, err := c.CheckSources(context.Background(), nil, nil)
	if err != nil || st != (stack.Stats{}) {
		t.Fatalf("empty batch: %v, %+v", err, st)
	}
}

// TestStreamDecoding: the client decodes per-file lines as they
// arrive; a hand-rolled chunked server proves no full-body buffering.
func TestStreamDecoding(t *testing.T) {
	first := stack.FileResult{Index: 0, File: "a.c"}
	firstSent := make(chan struct{})
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		enc := json.NewEncoder(w)
		_ = enc.Encode(first)
		w.(http.Flusher).Flush()
		close(firstSent)
		<-release
		_ = enc.Encode(stack.FileResult{Index: 1, File: "b.c"})
	}))
	defer ts.Close()
	var relOnce sync.Once
	releaseServer := func() { relOnce.Do(func() { close(release) }) }
	defer releaseServer() // unpark the handler even when the test bails early

	got := make(chan stack.FileResult, 2)
	done := make(chan error, 1)
	go func() {
		_, err := New(ts.URL).CheckSources(context.Background(), []stack.Source{
			{Name: "a.c", Text: "int a;"}, {Name: "b.c", Text: "int b;"},
		}, func(fr stack.FileResult) { got <- fr })
		done <- err
	}()
	<-firstSent
	select {
	case fr := <-got:
		if !reflect.DeepEqual(fr, first) {
			t.Errorf("first emission = %+v, want %+v", fr, first)
		}
	case err := <-done:
		t.Fatalf("CheckSources returned early: %v", err)
	}
	releaseServer()
	if err := <-done; err != nil {
		t.Fatalf("CheckSources: %v", err)
	}
}
