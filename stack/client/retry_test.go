package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/stack"
	"repro/stack/service"
)

// TestParseRetryAfter: both RFC forms decode; garbage and the past are
// zero.
func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		h    string
		want time.Duration
	}{
		{"", 0},
		{"7", 7 * time.Second},
		{"0", 0},
		{"-3", 0},
		{"soon", 0},
		{time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat), 0},
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.h); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.h, got, tc.want)
		}
	}
	// An HTTP date a minute out decodes to roughly that long.
	h := time.Now().Add(time.Minute).UTC().Format(http.TimeFormat)
	if got := parseRetryAfter(h); got < 50*time.Second || got > 70*time.Second {
		t.Errorf("parseRetryAfter(%q) = %v, want ~1m", h, got)
	}
}

// TestStatusErrorRetryAfter: a 503's Retry-After header survives into
// the StatusError the caller sees — the hint the shard dispatcher's
// backoff honors.
func TestStatusErrorRetryAfter(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"error":"saturated"}`))
	}))
	defer ts.Close()
	_, err := New(ts.URL).CheckSources(context.Background(),
		[]stack.Source{{Name: "x.c", Text: "int x;"}}, nil)
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("error = %v (%T), want *StatusError", err, err)
	}
	if se.StatusCode != http.StatusServiceUnavailable || se.RetryAfter != 7*time.Second {
		t.Errorf("StatusError = %+v, want 503 with RetryAfter 7s", se)
	}
	if se.Message != "saturated" {
		t.Errorf("message = %q, want the server's error body", se.Message)
	}
}

// TestErrorAttribution: every failure names the replica it came from —
// transport faults additionally as *TransportError, status answers as
// *StatusError — and both unwrap from the same chain.
func TestErrorAttribution(t *testing.T) {
	c := New("127.0.0.1:1") // nothing listens here
	_, err := c.CheckSource(context.Background(), "x.c", "int x;")
	if err == nil || !strings.Contains(err.Error(), c.Base()) {
		t.Fatalf("error = %v, want one naming %s", err, c.Base())
	}
	var re *ReplicaError
	if !errors.As(err, &re) || re.Replica != c.Base() {
		t.Errorf("error does not unwrap to a ReplicaError for %s: %v", c.Base(), err)
	}
	var te *TransportError
	if !errors.As(err, &te) {
		t.Errorf("connection refusal is not a TransportError: %v", err)
	}

	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"no"}`, http.StatusForbidden)
	}))
	defer ts.Close()
	c = New(ts.URL)
	_, err = c.CheckSource(context.Background(), "x.c", "int x;")
	if err == nil || !strings.Contains(err.Error(), c.Base()) {
		t.Fatalf("status error = %v, want one naming %s", err, c.Base())
	}
	if !errors.As(err, &re) {
		t.Errorf("status error does not unwrap to a ReplicaError: %v", err)
	}
	if errors.As(err, &te) {
		t.Errorf("a served 403 is not a transport fault: %v", err)
	}
}

// TestHealthz: the probe distinguishes a healthy replica, a sick one,
// and a dead address.
func TestHealthz(t *testing.T) {
	c := newReplica(t, stack.New())
	if err := c.Healthz(context.Background()); err != nil {
		t.Errorf("healthy replica: %v", err)
	}

	sick := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer sick.Close()
	err := New(sick.URL).Healthz(context.Background())
	var se *StatusError
	if !errors.As(err, &se) || se.StatusCode != http.StatusInternalServerError {
		t.Errorf("sick replica: %v, want a 500 StatusError", err)
	}

	err = New("127.0.0.1:1").Healthz(context.Background())
	var te *TransportError
	if !errors.As(err, &te) {
		t.Errorf("dead address: %v, want a TransportError", err)
	}
}

// TestAuthTokenRoundTrip: WithAuthToken satisfies a token-protected
// replica; without it the 401 surfaces as a StatusError.
func TestAuthTokenRoundTrip(t *testing.T) {
	ts := httptest.NewServer(service.New(stack.New(), service.Options{AuthToken: "s3cret"}))
	defer ts.Close()

	res, err := New(ts.URL, WithAuthToken("s3cret")).CheckSource(context.Background(), "x.c", "int f(void) { return 0; }")
	if err != nil || res.File != "x.c" {
		t.Errorf("authorized analyze: %v, %+v", err, res)
	}
	_, err = New(ts.URL).CheckSource(context.Background(), "x.c", "int f(void) { return 0; }")
	var se *StatusError
	if !errors.As(err, &se) || se.StatusCode != http.StatusUnauthorized {
		t.Errorf("unauthorized analyze: %v, want a 401 StatusError", err)
	}
}

// TestDefaultTransport: New installs the production transport — header
// phases bounded, no overall client timeout so long sweeps can stream
// indefinitely.
func TestDefaultTransport(t *testing.T) {
	c := New("example.com")
	if c.hc.Timeout != 0 {
		t.Errorf("client timeout = %v; an overall timeout would kill long JSONL streams", c.hc.Timeout)
	}
	tr, ok := c.hc.Transport.(*http.Transport)
	if !ok {
		t.Fatalf("transport is %T, want *http.Transport", c.hc.Transport)
	}
	if tr.ResponseHeaderTimeout == 0 || tr.TLSHandshakeTimeout == 0 || tr.DialContext == nil {
		t.Errorf("transport phases unbounded: %+v", tr)
	}
	// WithHTTPClient still replaces everything.
	custom := &http.Client{}
	if c := New("example.com", WithHTTPClient(custom)); c.hc != custom {
		t.Error("WithHTTPClient did not substitute the client")
	}
}
