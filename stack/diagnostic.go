package stack

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/compilers"
	"repro/internal/core"
)

// Rule codes identify which of STACK's algorithms (paper §4.4)
// produced a diagnostic. The registry is append-only: a code, once
// published, never changes meaning or disappears, so downstream
// consumers (SARIF viewers, report-sharing pipelines, suppression
// lists) can key on it.
const (
	// RuleElimination: a reachable code fragment becomes unreachable
	// under the well-defined program assumption (Fig. 5).
	RuleElimination = "STACK-E001"
	// RuleSimplifyBool: a boolean expression folds to a constant under
	// the assumption (Fig. 6, boolean oracle).
	RuleSimplifyBool = "STACK-S001"
	// RuleSimplifyAlgebra: a comparison simplifies algebraically under
	// the assumption (Fig. 6, algebra oracle).
	RuleSimplifyAlgebra = "STACK-S002"
)

// ruleCodes maps the internal algorithm enum to stable codes.
var ruleCodes = [...]string{
	core.AlgoElimination:     RuleElimination,
	core.AlgoSimplifyBool:    RuleSimplifyBool,
	core.AlgoSimplifyAlgebra: RuleSimplifyAlgebra,
}

// UB-condition codes, one per row of the paper's Figure 3, in figure
// order. Append-only, like the rule codes.
const (
	UBCodePointerOverflow = "UB001"
	UBCodeNullDeref       = "UB002"
	UBCodeSignedOverflow  = "UB003"
	UBCodeDivByZero       = "UB004"
	UBCodeOversizedShift  = "UB005"
	UBCodeBufferOverflow  = "UB006"
	UBCodeAbsOverflow     = "UB007"
	UBCodeMemcpyOverlap   = "UB008"
	UBCodeUseAfterFree    = "UB009"
	UBCodeUseAfterRealloc = "UB010"
)

var ubCodes = [...]string{
	core.UBPointerOverflow: UBCodePointerOverflow,
	core.UBNullDeref:       UBCodeNullDeref,
	core.UBSignedOverflow:  UBCodeSignedOverflow,
	core.UBDivByZero:       UBCodeDivByZero,
	core.UBOversizedShift:  UBCodeOversizedShift,
	core.UBBufferOverflow:  UBCodeBufferOverflow,
	core.UBAbsOverflow:     UBCodeAbsOverflow,
	core.UBMemcpyOverlap:   UBCodeMemcpyOverlap,
	core.UBUseAfterFree:    UBCodeUseAfterFree,
	core.UBUseAfterRealloc: UBCodeUseAfterRealloc,
}

// Span is a source position. Line and Col are 1-based; a zero Line
// means the position is unknown.
type Span struct {
	File string `json:"file,omitempty"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

// String renders the span in the frontend's classic position format.
func (s Span) String() string {
	if s.File == "" {
		return fmt.Sprintf("%d:%d", s.Line, s.Col)
	}
	return fmt.Sprintf("%s:%d:%d", s.File, s.Line, s.Col)
}

// UBCondition is one undefined-behavior condition in a diagnostic's
// minimal set (Fig. 8): the machine-readable code, the human-readable
// kind, and the source span of the construct carrying it.
type UBCondition struct {
	Code string `json:"code"`
	Kind string `json:"kind"`
	Span Span   `json:"span"`
}

// Diagnostic is one unstable-code finding in machine-consumable form:
// a stable rule code, the algorithm and function, source spans, the
// proposed simplification (for simplification rules), the §6.2
// category, and the minimal UB-condition set.
type Diagnostic struct {
	// Code is the stable rule code (RuleElimination, ...).
	Code string `json:"code"`
	// Algo is the human-readable algorithm name.
	Algo string `json:"algo"`
	// Function is the enclosing function.
	Function string `json:"function"`
	// Span locates the unstable fragment.
	Span Span `json:"span"`
	// Simplified is the proposed replacement expression for
	// simplification diagnostics ("" for elimination).
	Simplified string `json:"simplified,omitempty"`
	// Origin names the macro or inlined function that generated the
	// fragment; "" for programmer-written code.
	Origin string `json:"origin,omitempty"`
	// Category is the §6.2 classification against the modeled compiler
	// survey (non-optimization bug, urgent optimization bug, time
	// bomb, redundant code).
	Category string `json:"category"`
	// UB is the minimal set of UB conditions that made the fragment
	// unstable.
	UB []UBCondition `json:"ub,omitempty"`
}

// diagnosticOf converts one internal report.
func diagnosticOf(r *core.Report) Diagnostic {
	d := Diagnostic{
		Code:       ruleCodes[r.Algo],
		Algo:       r.Algo.String(),
		Function:   r.Func,
		Span:       Span{File: r.Pos.File, Line: r.Pos.Line, Col: r.Pos.Col},
		Simplified: r.Simplified,
		Origin:     r.Origin,
		Category:   core.Classify(r, compilers.AnyModelDiscards).String(),
	}
	for _, u := range r.UBConds {
		d.UB = append(d.UB, UBCondition{
			Code: ubCodes[u.Kind],
			Kind: u.Kind.String(),
			Span: Span{File: u.Pos.File, Line: u.Pos.Line, Col: u.Pos.Col},
		})
	}
	return d
}

func diagnosticsOf(reports []*core.Report) []Diagnostic {
	if len(reports) == 0 {
		return nil
	}
	out := make([]Diagnostic, len(reports))
	for i, r := range reports {
		out[i] = diagnosticOf(r)
	}
	return out
}

// String renders the diagnostic in the checker's classic text form.
// The format is frozen: it is byte-identical to the internal report
// rendering, which the text sink and FormatDiagnostics rely on.
func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: unstable code in %s [%s]", d.Span, d.Function, d.Algo)
	if d.Simplified != "" {
		fmt.Fprintf(&b, " — simplifies to %s", d.Simplified)
	}
	if len(d.UB) > 0 {
		b.WriteString("\n  due to undefined behavior:")
		for _, u := range d.UB {
			fmt.Fprintf(&b, "\n    %s at %s", u.Kind, u.Span)
		}
	}
	return b.String()
}

// FormatDiagnostics renders diagnostics in the stable textual form the
// classic CLI prints — byte-identical to the internal checker's
// FormatReports output for the same findings.
func FormatDiagnostics(diags []Diagnostic) string {
	if len(diags) == 0 {
		return "no unstable code found\n"
	}
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%d report(s)\n", len(diags))
	return b.String()
}

// FileResult is one input's finished analysis as delivered to sinks
// and streaming callbacks, in input order.
type FileResult struct {
	// Index is the input's position in the batch or archive; callbacks
	// observe strictly increasing indices 0, 1, 2, ...
	Index int `json:"index"`
	// Package is the archive package for sweep results ("" for plain
	// source batches).
	Package string `json:"package,omitempty"`
	// File is the input's display name.
	File string `json:"file"`
	// Functions counts analyzed functions (sweep results only).
	Functions int `json:"functions,omitempty"`
	// Diagnostics are the findings, in deterministic order.
	Diagnostics []Diagnostic `json:"diagnostics,omitempty"`
	// BuildTime and AnalysisTime are wall-clock measurements and vary
	// run to run; everything else is deterministic.
	BuildTime    time.Duration `json:"buildTimeNs,omitempty"`
	AnalysisTime time.Duration `json:"analysisTimeNs,omitempty"`
}
