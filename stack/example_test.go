package stack_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/stack"
)

// Example analyzes the paper's Figure 1 — the pointer-overflow sanity
// check that optimizing compilers silently delete — through the public
// API and prints the structured diagnostic both as a stable code and
// in the classic text form.
func Example() {
	const src = `
int parse_header(char *buf, char *buf_end, unsigned int len) {
	if (buf + len >= buf_end)
		return -1; /* len too large */
	if (buf + len < buf)
		return -1; /* overflow check: compilers delete this */
	return 0;
}
`
	az := stack.New(
		stack.WithSolverTimeout(5 * time.Second), // the paper's per-query budget (§6.4)
	)
	res, err := az.CheckSource(context.Background(), "figure1.c", src)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range res.Diagnostics {
		fmt.Printf("%s %s (%s)\n", d.Code, d.Span, d.Category)
	}
	fmt.Print(stack.FormatDiagnostics(res.Diagnostics))
	// Output:
	// STACK-E001 figure1.c:6:11 (urgent optimization bug)
	// figure1.c:6:11: unstable code in parse_header [elimination]
	//   due to undefined behavior:
	//     pointer overflow at figure1.c:3:10
	// 1 report(s)
}
