package stack

import (
	"flag"
	"time"
)

// CommonFlags holds the flag values every checker CLI shares: the
// per-query solver budgets and the worker count. Bind them with
// BindCommonFlags and convert with Options, so the flag→option
// translation lives in exactly one place.
type CommonFlags struct {
	// Timeout is -timeout: the per-query solver wall-clock budget.
	Timeout time.Duration
	// MaxConflicts is -max-conflicts: the per-query deterministic
	// conflict budget (0 = unbounded).
	MaxConflicts int64
	// Workers is -j: goroutines per pipeline stage (0 = one per CPU).
	Workers int
	// LegacyPipeline is -legacy-pipeline: disable the default SSA pass
	// stack and analyze with the legacy encoding — the differential
	// reference mode (see WithSSA).
	LegacyPipeline bool
}

// BindCommonFlags registers the shared checker flags on fs (use
// flag.CommandLine in a main package) and returns the value struct to
// read after fs.Parse.
func BindCommonFlags(fs *flag.FlagSet) *CommonFlags {
	f := &CommonFlags{}
	fs.DurationVar(&f.Timeout, "timeout", 5*time.Second, "per-query solver timeout")
	fs.Int64Var(&f.MaxConflicts, "max-conflicts", 0, "per-query solver conflict budget (0 = unbounded)")
	fs.IntVar(&f.Workers, "j", 0, "concurrent checking workers (0 = one per CPU)")
	fs.BoolVar(&f.LegacyPipeline, "legacy-pipeline", false, "disable the default SSA pass stack (differential reference mode)")
	return f
}

// Options translates the parsed flag values into analyzer options.
func (f *CommonFlags) Options() []Option {
	return []Option{
		WithSolverTimeout(f.Timeout),
		WithMaxConflictsPerQuery(f.MaxConflicts),
		WithWorkers(f.Workers),
		WithSSA(!f.LegacyPipeline),
	}
}
