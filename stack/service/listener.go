package service

import (
	"net"
	"sync"
)

// LimitListener wraps l so that at most n connections are open at any
// moment: Accept blocks while n connections are in flight and resumes
// as connections close. It is the transport-level guard under the
// server's request semaphore — admission control sheds load politely
// with 503s, while the listener cap bounds what a flood of raw
// connections (idle, slowloris, or pre-handshake) can pin in memory.
// n <= 0 returns l unchanged.
//
// Close on the returned listener closes l; connections already
// accepted stay open, and each releases its slot exactly once no
// matter how many times it is closed.
func LimitListener(l net.Listener, n int) net.Listener {
	if n <= 0 {
		return l
	}
	return &limitListener{Listener: l, slots: make(chan struct{}, n)}
}

type limitListener struct {
	net.Listener
	slots chan struct{} // one token per open connection
}

func (l *limitListener) Accept() (net.Conn, error) {
	l.slots <- struct{}{}
	c, err := l.Listener.Accept()
	if err != nil {
		<-l.slots
		return nil, err
	}
	return &limitConn{Conn: c, release: func() { <-l.slots }}, nil
}

type limitConn struct {
	net.Conn
	once    sync.Once
	release func()
}

func (c *limitConn) Close() error {
	err := c.Conn.Close()
	c.once.Do(c.release)
	return err
}
