// Service observability and hardening middleware: the GET /metrics
// endpoint (in-flight gauge, per-endpoint request counts and latency
// histograms, cumulative solver statistics), optional bearer-token
// auth on the analysis endpoints, and streaming-safe gzip response
// compression. Everything is plain JSON over atomics — no external
// metrics dependency — so a fleet of stackd replicas is observable
// with curl alone.
package service

import (
	"compress/gzip"
	"crypto/subtle"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/stack"
	"repro/stack/cache"
)

// latencyBucketsMs are the histogram upper bounds in milliseconds;
// observations above the last bound land in the implicit +Inf bucket.
var latencyBucketsMs = [...]int64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000}

// histogram is a fixed-bucket latency histogram over atomics. Buckets
// are cumulative-free (each observation lands in exactly one bucket);
// /metrics reports the bounds alongside the counts.
type histogram struct {
	counts  [len(latencyBucketsMs) + 1]atomic.Int64
	totalMs atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	ms := d.Milliseconds()
	h.totalMs.Add(ms)
	for i, ub := range latencyBucketsMs[:] {
		if ms <= ub {
			h.counts[i].Add(1)
			return
		}
	}
	h.counts[len(latencyBucketsMs)].Add(1)
}

func (h *histogram) snapshot() histogramSnapshot {
	s := histogramSnapshot{BucketsMs: latencyBucketsMs[:], TotalMs: h.totalMs.Load()}
	s.Counts = make([]int64, len(h.counts))
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// histogramSnapshot is the JSON form of a histogram: Counts[i] holds
// observations <= BucketsMs[i]; the final extra count is the overflow
// (+Inf) bucket.
type histogramSnapshot struct {
	BucketsMs []int64 `json:"bucketsMs"`
	Counts    []int64 `json:"counts"`
	TotalMs   int64   `json:"totalMs"`
}

// endpointMetrics tracks one endpoint's traffic.
type endpointMetrics struct {
	requests atomic.Int64
	errors   atomic.Int64 // responses with status >= 400
	latency  histogram
}

// metrics is the server-wide metric registry.
type metrics struct {
	start     time.Time
	inFlight  atomic.Int64
	endpoints map[string]*endpointMetrics // keyed by route, fixed at construction

	solverMu sync.Mutex
	solver   stack.Stats // cumulative solver effort across all requests
}

func newMetrics(routes ...string) *metrics {
	m := &metrics{start: time.Now(), endpoints: make(map[string]*endpointMetrics, len(routes))}
	for _, r := range routes {
		m.endpoints[r] = &endpointMetrics{}
	}
	return m
}

// addSolver folds one request's solver stats into the cumulative
// totals reported by /metrics.
func (m *metrics) addSolver(st stack.Stats) {
	m.solverMu.Lock()
	m.solver.Add(st)
	m.solverMu.Unlock()
}

// endpointSnapshot is the JSON form of one endpoint's counters.
type endpointSnapshot struct {
	Requests int64             `json:"requests"`
	Errors   int64             `json:"errors"`
	Latency  histogramSnapshot `json:"latency"`
}

// metricsSnapshot is the GET /metrics response body.
type metricsSnapshot struct {
	UptimeSeconds int64                       `json:"uptimeSeconds"`
	InFlight      int64                       `json:"inFlight"`
	Endpoints     map[string]endpointSnapshot `json:"endpoints"`
	// Solver aggregates the solver effort of every request served so
	// far — the same counters as a sweep's ?stats=1 trailer (queries,
	// rewriteHits, blastPasses, cacheHits, ...), summed service-wide.
	Solver stack.Stats `json:"solver"`
	// ResultCache, present only when the server has a result cache
	// (Options.CacheStats), snapshots its hit/miss/eviction/residency
	// counters.
	ResultCache *cache.Stats `json:"resultCache,omitempty"`
}

// snapshotMetrics collects the current counters; shared by the JSON
// and Prometheus encodings of /metrics.
func (s *Server) snapshotMetrics() metricsSnapshot {
	m := s.metrics
	snap := metricsSnapshot{
		UptimeSeconds: int64(time.Since(m.start).Seconds()),
		// This handler runs under instrument, so the gauge includes the
		// scrape itself; report the others.
		InFlight:  m.inFlight.Load() - 1,
		Endpoints: make(map[string]endpointSnapshot, len(m.endpoints)),
	}
	for route, em := range m.endpoints {
		snap.Endpoints[route] = endpointSnapshot{
			Requests: em.requests.Load(),
			Errors:   em.errors.Load(),
			Latency:  em.latency.snapshot(),
		}
	}
	m.solverMu.Lock()
	snap.Solver = m.solver
	m.solverMu.Unlock()
	if s.opts.CacheStats != nil {
		cst := s.opts.CacheStats()
		snap.ResultCache = &cst
	}
	return snap
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"method not allowed"})
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, s.snapshotMetrics())
	case "prometheus":
		w.Header().Set("Content-Type", prometheusContentType)
		w.WriteHeader(http.StatusOK)
		writePrometheus(w, s.snapshotMetrics())
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf("unknown format %q (want json or prometheus)", format)})
	}
}

// statusWriter records the response status for error accounting while
// forwarding streaming flushes.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(p)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// gzipWriter compresses the response when the client asked for it,
// flushing the compressor on every downstream Flush so per-file
// streaming survives compression: each sweep line reaches the wire as
// a complete gzip block the client can decode immediately.
type gzipWriter struct {
	http.ResponseWriter
	gz      *gzip.Writer
	started bool
}

func (gw *gzipWriter) WriteHeader(code int) {
	if !gw.started {
		gw.started = true
		gw.Header().Set("Content-Encoding", "gzip")
		gw.Header().Add("Vary", "Accept-Encoding")
		gw.Header().Del("Content-Length")
	}
	gw.ResponseWriter.WriteHeader(code)
}

func (gw *gzipWriter) Write(p []byte) (int, error) {
	if !gw.started {
		gw.WriteHeader(http.StatusOK)
	}
	return gw.gz.Write(p)
}

func (gw *gzipWriter) Flush() {
	if gw.started {
		_ = gw.gz.Flush()
	}
	if f, ok := gw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (gw *gzipWriter) close() {
	if gw.started {
		_ = gw.gz.Close()
	}
}

var gzipPool = sync.Pool{New: func() any { return gzip.NewWriter(nil) }}

// acceptsGzip reports whether the request advertises gzip support.
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		enc := strings.TrimSpace(part)
		if enc == "gzip" || strings.HasPrefix(enc, "gzip;") {
			return true
		}
	}
	return false
}

// authorized checks the bearer token on protected endpoints; with no
// token configured every request passes. Comparison is constant-time.
func (s *Server) authorized(r *http.Request) bool {
	if s.opts.AuthToken == "" {
		return true
	}
	const prefix = "Bearer "
	h := r.Header.Get("Authorization")
	if !strings.HasPrefix(h, prefix) {
		return false
	}
	return subtle.ConstantTimeCompare([]byte(strings.TrimPrefix(h, prefix)), []byte(s.opts.AuthToken)) == 1
}

// instrument wraps a route handler with the operational middleware:
// request accounting + latency histogram + in-flight gauge, optional
// bearer auth (analysis endpoints only), and gzip compression when the
// client accepts it.
func (s *Server) instrument(route string, requireAuth bool, h http.HandlerFunc) http.HandlerFunc {
	em := s.metrics.endpoints[route]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		em.requests.Add(1)
		s.metrics.inFlight.Add(1)
		defer s.metrics.inFlight.Add(-1)

		sw := &statusWriter{ResponseWriter: w}
		var out http.ResponseWriter = sw
		var gw *gzipWriter
		if !s.opts.DisableCompression && acceptsGzip(r) {
			gz := gzipPool.Get().(*gzip.Writer)
			gz.Reset(sw)
			gw = &gzipWriter{ResponseWriter: sw, gz: gz}
			out = gw
			defer func() {
				gw.close()
				gzipPool.Put(gz)
			}()
		}

		if requireAuth && !s.authorized(r) {
			out.Header().Set("WWW-Authenticate", `Bearer realm="stackd"`)
			writeJSON(out, http.StatusUnauthorized, errorResponse{"missing or invalid bearer token"})
		} else {
			h(out, r)
		}

		em.latency.observe(time.Since(start))
		if sw.status >= 400 {
			em.errors.Add(1)
		}
	}
}
