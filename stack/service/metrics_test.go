package service

import (
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/stack"
)

func getMetrics(t *testing.T, h http.Handler) metricsSnapshot {
	t.Helper()
	w := doJSON(t, h, http.MethodGet, "/metrics", "")
	if w.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d, body %s", w.Code, w.Body.String())
	}
	var snap metricsSnapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics body does not decode: %v", err)
	}
	return snap
}

// TestMetricsCounters: /metrics reflects live traffic — request and
// error counts per endpoint, latency observations, and cumulative
// solver stats folded in from both analysis endpoints.
func TestMetricsCounters(t *testing.T) {
	srv := newTestServer(Options{})

	reqBody, _ := json.Marshal(map[string]string{"name": "fig1.c", "source": fig1Src})
	if w := doJSON(t, srv, http.MethodPost, "/v1/analyze", string(reqBody)); w.Code != http.StatusOK {
		t.Fatalf("analyze = %d", w.Code)
	}
	if w := doJSON(t, srv, http.MethodPost, "/v1/analyze", "{"); w.Code != http.StatusBadRequest {
		t.Fatalf("bad analyze = %d", w.Code)
	}
	if w := doJSON(t, srv, http.MethodPost, "/v1/sweep?stats=1", sweepBody(t, sweepBatch())); w.Code != http.StatusOK {
		t.Fatalf("sweep = %d", w.Code)
	}
	if w := doJSON(t, srv, http.MethodGet, "/healthz", ""); w.Code != http.StatusOK {
		t.Fatalf("healthz = %d", w.Code)
	}

	snap := getMetrics(t, srv)
	an := snap.Endpoints["/v1/analyze"]
	if an.Requests != 2 || an.Errors != 1 {
		t.Errorf("/v1/analyze requests/errors = %d/%d, want 2/1", an.Requests, an.Errors)
	}
	sw := snap.Endpoints["/v1/sweep"]
	if sw.Requests != 1 || sw.Errors != 0 {
		t.Errorf("/v1/sweep requests/errors = %d/%d, want 1/0", sw.Requests, sw.Errors)
	}
	if hz := snap.Endpoints["/healthz"]; hz.Requests != 1 {
		t.Errorf("/healthz requests = %d, want 1", hz.Requests)
	}
	var observed int64
	for _, c := range an.Latency.Counts {
		observed += c
	}
	if observed != an.Requests {
		t.Errorf("latency observations = %d, want one per request (%d)", observed, an.Requests)
	}
	if len(an.Latency.Counts) != len(an.Latency.BucketsMs)+1 {
		t.Errorf("histogram shape: %d counts for %d bounds", len(an.Latency.Counts), len(an.Latency.BucketsMs))
	}
	// One successful analyze + one full sweep both fold into the solver
	// aggregate; the sweep batch alone runs dozens of queries.
	if snap.Solver.Queries == 0 || snap.Solver.Functions == 0 {
		t.Errorf("solver aggregate empty: %+v", snap.Solver)
	}
	if snap.InFlight != 0 {
		t.Errorf("inFlight = %d at rest, want 0", snap.InFlight)
	}

	// The /metrics read itself is instrumented too.
	snap2 := getMetrics(t, srv)
	if m := snap2.Endpoints["/metrics"]; m.Requests < 1 {
		t.Errorf("/metrics requests = %d, want >= 1", m.Requests)
	}

	if w := doJSON(t, srv, http.MethodPost, "/metrics", ""); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics = %d, want 405", w.Code)
	}
}

// TestMetricsInFlight: the in-flight gauge counts a sweep that is
// still streaming.
func TestMetricsInFlight(t *testing.T) {
	chk := &gatedChecker{reached: make(chan struct{}), gate: make(chan struct{})}
	srv := New(chk, Options{})
	var once sync.Once
	release := func() { once.Do(func() { close(chk.gate) }) }
	defer release()

	done := make(chan struct{})
	go func() {
		defer close(done)
		doJSON(t, srv, http.MethodPost, "/v1/sweep", sweepBody(t, []stack.Source{
			{Name: "a.c", Text: cleanSrc}, {Name: "b.c", Text: cleanSrc},
		}))
	}()
	<-chk.reached
	if snap := getMetrics(t, srv); snap.InFlight < 1 {
		t.Errorf("inFlight = %d during a parked sweep, want >= 1", snap.InFlight)
	}
	release()
	<-done
	if snap := getMetrics(t, srv); snap.InFlight != 0 {
		t.Errorf("inFlight = %d after the sweep, want 0", snap.InFlight)
	}
}

// TestAuthToken: with AuthToken set, the analysis endpoints demand the
// bearer token while /healthz and /metrics stay open for probes and
// scrapes.
func TestAuthToken(t *testing.T) {
	srv := newTestServer(Options{AuthToken: "s3cret"})
	reqBody, _ := json.Marshal(map[string]string{"source": cleanSrc})

	do := func(path, method, body, token string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		return w
	}

	for _, path := range []string{"/v1/analyze", "/v1/sweep"} {
		if w := do(path, http.MethodPost, string(reqBody), ""); w.Code != http.StatusUnauthorized {
			t.Errorf("%s without token = %d, want 401", path, w.Code)
		} else if w.Header().Get("WWW-Authenticate") == "" {
			t.Errorf("%s 401 without WWW-Authenticate", path)
		}
		if w := do(path, http.MethodPost, string(reqBody), "wrong"); w.Code != http.StatusUnauthorized {
			t.Errorf("%s with wrong token = %d, want 401", path, w.Code)
		}
	}
	if w := do("/v1/analyze", http.MethodPost, string(reqBody), "s3cret"); w.Code != http.StatusOK {
		t.Errorf("analyze with token = %d, body %s", w.Code, w.Body.String())
	}
	if w := do("/v1/sweep", http.MethodPost, sweepBody(t, sweepBatch()[:2]), "s3cret"); w.Code != http.StatusOK {
		t.Errorf("sweep with token = %d, body %s", w.Code, w.Body.String())
	}
	if w := do("/healthz", http.MethodGet, "", ""); w.Code != http.StatusOK {
		t.Errorf("healthz without token = %d, want 200 (probes must not need auth)", w.Code)
	}
	if w := do("/metrics", http.MethodGet, "", ""); w.Code != http.StatusOK {
		t.Errorf("metrics without token = %d, want 200 (scrapes must not need auth)", w.Code)
	}

	// 401s count as errors on the endpoint.
	snap := getMetrics(t, srv)
	if an := snap.Endpoints["/v1/analyze"]; an.Errors < 2 {
		t.Errorf("/v1/analyze errors = %d, want the 401s counted", an.Errors)
	}
}

// TestGzipSweep: an Accept-Encoding: gzip sweep is compressed on the
// wire and decompresses to exactly the bytes of an uncompressed run —
// compression must not disturb byte identity.
func TestGzipSweep(t *testing.T) {
	az := stack.New(stack.WithSolverTimeout(0))
	srv := New(az, Options{})
	body := sweepBody(t, sweepBatch())

	plain := doJSON(t, srv, http.MethodPost, "/v1/sweep", body)
	if plain.Code != http.StatusOK {
		t.Fatalf("plain sweep = %d", plain.Code)
	}
	if enc := plain.Header().Get("Content-Encoding"); enc != "" {
		t.Fatalf("plain response Content-Encoding = %q, want none", enc)
	}

	req := httptest.NewRequest(http.MethodPost, "/v1/sweep", strings.NewReader(body))
	req.Header.Set("Accept-Encoding", "gzip")
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("gzip sweep = %d", w.Code)
	}
	if enc := w.Header().Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", enc)
	}
	zr, err := gzip.NewReader(w.Body)
	if err != nil {
		t.Fatalf("response is not gzip: %v", err)
	}
	got, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("decompressing: %v", err)
	}
	if string(got) != plain.Body.String() {
		t.Errorf("gzip stream decompresses to different bytes\n--- got ---\n%s--- want ---\n%s", got, plain.Body.String())
	}
}

// TestGzipDisabled: DisableCompression serves identity bytes even when
// the client advertises gzip.
func TestGzipDisabled(t *testing.T) {
	srv := newTestServer(Options{DisableCompression: true})
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("healthz = %d", w.Code)
	}
	if enc := w.Header().Get("Content-Encoding"); enc != "" {
		t.Errorf("Content-Encoding = %q with compression disabled", enc)
	}
}

// TestGzipStreaming: per-file flushing survives compression — each
// sweep line is readable from the gzip stream while the sweep is still
// parked on a later file.
func TestGzipStreaming(t *testing.T) {
	chk := &gatedChecker{reached: make(chan struct{}), gate: make(chan struct{})}
	ts := httptest.NewServer(New(chk, Options{}))
	defer ts.Close()
	var once sync.Once
	release := func() { once.Do(func() { close(chk.gate) }) }
	defer release()

	body := sweepBody(t, []stack.Source{
		{Name: "early.c", Text: cleanSrc},
		{Name: "late.c", Text: cleanSrc},
	})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sweep", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	// Setting the header ourselves disables the transport's transparent
	// decompression, so resp.Body is the raw gzip stream off the wire.
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if enc := resp.Header.Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", enc)
	}

	<-chk.reached // sweep is parked before its final file
	zr, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatalf("opening gzip stream mid-sweep: %v (first flush never reached the wire)", err)
	}
	dec := json.NewDecoder(zr)
	var first stack.FileResult
	if err := dec.Decode(&first); err != nil || first.File != "early.c" {
		t.Fatalf("first streamed line = %+v (err %v), want early.c while the sweep is parked", first, err)
	}
	release()
	var last stack.FileResult
	if err := dec.Decode(&last); err != nil || last.File != "late.c" {
		t.Errorf("final line = %+v (err %v), want late.c", last, err)
	}
}
