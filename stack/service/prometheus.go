// Prometheus text-format rendering of the /metrics snapshot
// (GET /metrics?format=prometheus). Hand-rolled exposition-format
// writer — no client library dependency — emitting the same counters
// as the JSON encoding under stable stackd_* names, so a Prometheus
// scraper and a curl|jq monitor read one source of truth.
package service

import (
	"fmt"
	"io"
	"sort"
)

// prometheusContentType is the exposition-format content type
// (text format, version 0.0.4).
const prometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// writePrometheus renders snap in the Prometheus text exposition
// format. Metric families are emitted in a fixed order and routes in
// sorted order, so scrapes are deterministic. Latency histograms
// convert to Prometheus convention: cumulative buckets with an le
// label, +Inf bucket equal to _count, and a _sum in the histogram's
// native milliseconds.
func writePrometheus(w io.Writer, snap metricsSnapshot) {
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	gauge("stackd_uptime_seconds", "Seconds since the server started.", snap.UptimeSeconds)
	gauge("stackd_in_flight_requests", "Requests currently being served (excluding this scrape).", snap.InFlight)

	routes := make([]string, 0, len(snap.Endpoints))
	for r := range snap.Endpoints {
		routes = append(routes, r)
	}
	sort.Strings(routes)

	fmt.Fprint(w, "# HELP stackd_requests_total Requests received, by route.\n# TYPE stackd_requests_total counter\n")
	for _, r := range routes {
		fmt.Fprintf(w, "stackd_requests_total{route=%q} %d\n", r, snap.Endpoints[r].Requests)
	}
	fmt.Fprint(w, "# HELP stackd_request_errors_total Responses with status >= 400, by route.\n# TYPE stackd_request_errors_total counter\n")
	for _, r := range routes {
		fmt.Fprintf(w, "stackd_request_errors_total{route=%q} %d\n", r, snap.Endpoints[r].Errors)
	}
	fmt.Fprint(w, "# HELP stackd_request_duration_ms Request latency in milliseconds, by route.\n# TYPE stackd_request_duration_ms histogram\n")
	for _, r := range routes {
		h := snap.Endpoints[r].Latency
		var cum, count int64
		for i, ub := range h.BucketsMs {
			cum += h.Counts[i]
			fmt.Fprintf(w, "stackd_request_duration_ms_bucket{route=%q,le=\"%d\"} %d\n", r, ub, cum)
		}
		count = cum + h.Counts[len(h.BucketsMs)]
		fmt.Fprintf(w, "stackd_request_duration_ms_bucket{route=%q,le=\"+Inf\"} %d\n", r, count)
		fmt.Fprintf(w, "stackd_request_duration_ms_sum{route=%q} %d\n", r, h.TotalMs)
		fmt.Fprintf(w, "stackd_request_duration_ms_count{route=%q} %d\n", r, count)
	}

	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	st := snap.Solver
	counter("stackd_solver_functions_total", "Functions analyzed.", int64(st.Functions))
	counter("stackd_solver_blocks_total", "Basic blocks analyzed.", int64(st.Blocks))
	counter("stackd_solver_queries_total", "Solver queries issued.", st.Queries)
	counter("stackd_solver_timeouts_total", "Solver queries that hit the per-query timeout.", st.Timeouts)
	counter("stackd_solver_rewrite_hits_total", "Term constructions answered by word-level rewrites.", st.RewriteHits)
	counter("stackd_solver_terms_created_total", "Interned term nodes created.", st.TermsCreated)
	counter("stackd_solver_fast_paths_total", "Queries decided from constants without CDCL search.", st.FastPaths)
	counter("stackd_solver_terms_blasted_total", "Terms lowered to CNF.", st.TermsBlasted)
	counter("stackd_solver_blast_passes_total", "Queries that lowered at least one new term.", st.BlastPasses)
	counter("stackd_solver_learnts_reused_total", "Learned clauses retained across queries.", st.LearntsReused)
	counter("stackd_solver_builder_cache_hits_total", "Term constructions answered by hash-consing.", st.CacheHits)
	counter("stackd_solver_learnts_dropped_total", "Learned clauses discarded by reductions and budgets.", st.LearntsDropped)
	counter("stackd_solver_arena_bytes_reused_total", "Term-arena bytes served from recycled slabs.", st.ArenaBytesReused)
	counter("stackd_solver_promoted_allocas_total", "Allocas promoted to SSA values (WithSSA).", st.PromotedAllocas)
	counter("stackd_solver_eliminated_stores_total", "Stores removed by SSA passes (WithSSA).", st.EliminatedStores)
	counter("stackd_solver_gvn_hits_total", "Values merged by value numbering (WithSSA).", st.GVNHits)
	counter("stackd_solver_sccp_folded_values_total", "Values SCCP transmuted to constants (WithSSA).", st.SCCPFoldedValues)
	counter("stackd_solver_sccp_folded_branches_total", "Branch conditions SCCP proved constant (WithSSA).", st.SCCPFoldedBranches)
	counter("stackd_solver_sccp_unreachable_blocks_total", "Blocks SCCP found unreachable (WithSSA).", st.SCCPUnreachableBlocks)
	counter("stackd_solver_cross_block_gvn_hits_total", "Values merged into a dominating block's representative (WithSSA).", st.CrossBlockGVNHits)
	counter("stackd_solver_hoisted_ub_terms_total", "UB-carrying instructions hoisted out of loop headers (WithSSA).", st.HoistedUBTerms)
	counter("stackd_solver_dom_ordered_skips_total", "Elimination queries skipped by the dominator-ordered walk (WithSSA).", st.DomOrderedSkips)
	counter("stackd_solver_ssa_sharpened_total", "Functions where SSA passes sharpened beyond the rewrite layer (WithSSA).", st.SSASharpened)
	counter("stackd_result_cache_result_hits_total", "Sources answered whole from the result cache.", st.CacheResultHits)
	counter("stackd_result_cache_result_misses_total", "Sources analyzed for real (result-cache misses).", st.CacheResultMisses)

	if c := snap.ResultCache; c != nil {
		counter("stackd_result_cache_hits_total", "Result-cache lookups that hit.", c.Hits)
		counter("stackd_result_cache_misses_total", "Result-cache lookups that missed.", c.Misses)
		counter("stackd_result_cache_puts_total", "Entries stored into the result cache.", c.Puts)
		counter("stackd_result_cache_evictions_total", "Entries evicted from the result cache.", c.Evictions)
		counter("stackd_result_cache_errors_total", "Corrupt or unreadable cache entries quarantined.", c.Errors)
		gauge("stackd_result_cache_entries", "Entries resident in the result cache.", c.Entries)
		gauge("stackd_result_cache_bytes", "Bytes resident in the result cache.", c.Bytes)
	}
}
