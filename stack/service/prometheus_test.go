package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/stack"
	"repro/stack/cache"
)

// TestMetricsPrometheusFormat: ?format=prometheus renders the same
// counters as the JSON encoding in the text exposition format, with
// cumulative histogram buckets and the cache section present when a
// cache is configured.
func TestMetricsPrometheusFormat(t *testing.T) {
	mem := cache.NewMemory(1 << 20)
	az := stack.New(stack.WithCache(mem))
	srv := New(az, Options{CacheStats: az.CacheStats})

	reqBody, _ := json.Marshal(map[string]string{"name": "figure1.c", "source": fig1Src})
	for i := 0; i < 2; i++ {
		if w := doJSON(t, srv, http.MethodPost, "/v1/analyze", string(reqBody)); w.Code != http.StatusOK {
			t.Fatalf("analyze %d: status %d: %s", i, w.Code, w.Body)
		}
	}

	w := doJSON(t, srv, http.MethodGet, "/metrics?format=prometheus", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != prometheusContentType {
		t.Errorf("Content-Type = %q, want %q", ct, prometheusContentType)
	}
	body := w.Body.String()
	for _, want := range []string{
		`stackd_requests_total{route="/v1/analyze"} 2`,
		"stackd_result_cache_result_hits_total 1",
		"stackd_result_cache_result_misses_total 1",
		"stackd_result_cache_hits_total 1",
		"stackd_result_cache_puts_total 1",
		"stackd_result_cache_entries 1",
		"# TYPE stackd_request_duration_ms histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
	// Histogram buckets are cumulative and end at +Inf == _count.
	var infCount, count string
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, `stackd_request_duration_ms_bucket{route="/v1/analyze",le="+Inf"} `) {
			infCount = line[strings.LastIndex(line, " ")+1:]
		}
		if strings.HasPrefix(line, `stackd_request_duration_ms_count{route="/v1/analyze"} `) {
			count = line[strings.LastIndex(line, " ")+1:]
		}
	}
	if infCount == "" || infCount != count || infCount != "2" {
		t.Errorf("+Inf bucket %q, _count %q; want both \"2\"", infCount, count)
	}
	// Every line is a comment or `name{labels} value` — no stray JSON.
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}

	// The JSON encoding stays the default and carries the same cache
	// snapshot.
	w = doJSON(t, srv, http.MethodGet, "/metrics", "")
	var snap metricsSnapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.ResultCache == nil || snap.ResultCache.Hits != 1 || snap.ResultCache.Misses != 1 {
		t.Errorf("JSON resultCache = %+v, want hits=1 misses=1", snap.ResultCache)
	}
	if w := doJSON(t, srv, http.MethodGet, "/metrics?format=bogus", ""); w.Code != http.StatusBadRequest {
		t.Errorf("format=bogus status = %d, want 400", w.Code)
	}
}

// TestMetricsNoCacheOmitsSection: without a cache the JSON snapshot
// omits resultCache and the Prometheus output has no cache metrics.
func TestMetricsNoCacheOmitsSection(t *testing.T) {
	srv := newTestServer(Options{})
	w := doJSON(t, srv, http.MethodGet, "/metrics", "")
	if strings.Contains(w.Body.String(), "resultCache") {
		t.Errorf("cacheless /metrics mentions resultCache: %s", w.Body)
	}
	w = doJSON(t, srv, http.MethodGet, "/metrics?format=prometheus", "")
	if strings.Contains(w.Body.String(), "stackd_result_cache_hits_total") {
		t.Error("cacheless prometheus output has cache residency metrics")
	}
}

// TestLimitListener: at most n connections are open at once; slots
// free on close (even double close) and Accept resumes.
func TestLimitListener(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := LimitListener(inner, 2)
	defer ln.Close()

	accepted := make(chan net.Conn, 8)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()

	dial := func() net.Conn {
		t.Helper()
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c1, c2 := dial(), dial()
	defer c1.Close()
	defer c2.Close()
	s1 := <-accepted
	s2 := <-accepted

	// Third connection completes the TCP handshake (kernel backlog) but
	// must not be Accepted while both slots are held.
	c3 := dial()
	defer c3.Close()
	select {
	case <-accepted:
		t.Fatal("third connection accepted beyond the limit")
	case <-time.After(100 * time.Millisecond):
	}

	// Closing one accepted conn twice frees exactly one slot.
	s1.Close()
	s1.Close()
	select {
	case s3 := <-accepted:
		defer s3.Close()
	case <-time.After(2 * time.Second):
		t.Fatal("slot not released after close; third connection never accepted")
	}
	s2.Close()
}

// TestLimitListenerServesHTTP: an http.Server on a limited listener
// still answers every request of a burst wider than the cap — requests
// queue at the listener instead of failing.
func TestLimitListenerServesHTTP(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := LimitListener(inner, 2)
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	})}
	go srv.Serve(ln)
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One client per request, no keep-alive pooling: every request
			// is its own connection, so the burst genuinely exceeds the cap.
			client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}, Timeout: 5 * time.Second}
			resp, err := client.Get("http://" + ln.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if b, _ := io.ReadAll(resp.Body); string(b) != "ok" {
				errs <- fmt.Errorf("body = %q", b)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestLimitListenerZeroIsUnlimited: n <= 0 returns the inner listener
// untouched.
func TestLimitListenerZeroIsUnlimited(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	if got := LimitListener(inner, 0); got != inner {
		t.Error("LimitListener(l, 0) wrapped the listener")
	}
	if got := LimitListener(inner, -1); got != inner {
		t.Error("LimitListener(l, -1) wrapped the listener")
	}
}

// TestSweepStatsTrailerCacheSection: with a cache configured the
// ?stats=1 trailer carries the cache counters; the warm repeat of the
// same batch is a byte-identical diagnostic stream answered from the
// cache.
func TestSweepStatsTrailerCacheSection(t *testing.T) {
	mem := cache.NewMemory(1 << 20)
	az := stack.New(stack.WithCache(mem))
	srv := New(az, Options{CacheStats: az.CacheStats})

	body, _ := json.Marshal(map[string]any{"sources": []map[string]string{
		{"name": "a.c", "source": fig1Src},
		{"name": "b.c", "source": divSrc},
	}})
	sweep := func() (lines []string) {
		w := doJSON(t, srv, http.MethodPost, "/v1/sweep?stats=1", string(body))
		if w.Code != http.StatusOK {
			t.Fatalf("status = %d: %s", w.Code, w.Body)
		}
		return strings.Split(strings.TrimRight(w.Body.String(), "\n"), "\n")
	}
	cold := sweep()
	warm := sweep()
	if len(cold) != 3 || len(warm) != 3 {
		t.Fatalf("line counts = %d, %d; want 3 (2 files + trailer)", len(cold), len(warm))
	}
	// Per-file lines (everything but the trailer) are byte-identical.
	for i := 0; i < 2; i++ {
		if cold[i] != warm[i] {
			t.Errorf("line %d differs cold vs warm:\n  %s\n  %s", i, cold[i], warm[i])
		}
	}
	var trailer struct {
		Stats stack.Stats  `json:"stats"`
		Cache *cache.Stats `json:"cache"`
	}
	if err := json.Unmarshal([]byte(warm[2]), &trailer); err != nil {
		t.Fatal(err)
	}
	if trailer.Stats.CacheResultHits != 2 || trailer.Stats.Queries != 0 {
		t.Errorf("warm trailer stats = %+v, want 2 cache hits and 0 queries", trailer.Stats)
	}
	if trailer.Cache == nil || trailer.Cache.Hits != 2 || trailer.Cache.Puts != 2 {
		t.Errorf("warm trailer cache = %+v, want hits=2 puts=2", trailer.Cache)
	}
}
