// Package service implements the stackd analysis service: the STACK
// checker behind an HTTP API, the shape the paper's whole-archive
// evaluation (§6.4) implies for production use — per-query time
// budgets, machine-consumable results, bounded concurrency, and
// streaming batch analysis.
//
// Endpoints (v2 surface):
//
//	POST /v1/analyze  {"name": "file.c", "source": "..."}
//	                  → 200 {"file": ..., "diagnostics": [...], "stats": {...}}
//	POST /v1/sweep    {"sources": [{"name": "a.c", "source": "..."}, ...]}
//	                  → 200, one JSON line per source streamed in input
//	                    order, flushed as each file completes — the
//	                    first diagnostic is on the wire long before the
//	                    sweep finishes. ?format=jsonl|text|sarif selects
//	                    the encoding (default jsonl; the JSONL bytes are
//	                    identical to stack.NewJSONLSink); ?stats=1
//	                    appends a final {"stats": {...}} trailer line
//	                    with the aggregated solver metrics (RewriteHits,
//	                    BlastPasses, LearntsReused, ...) to the JSONL
//	                    stream.
//	GET  /healthz     → 200 {"status": "ok"}
//	GET  /metrics     → 200 JSON: in-flight gauge, per-endpoint request
//	                    counts and latency histograms, and the
//	                    cumulative solver statistics (queries, rewrite
//	                    hits, blast passes, cache hits, ...) of every
//	                    request served — the observability surface a
//	                    replica fleet is monitored through.
//
// Non-POST methods on the analysis endpoints answer 405 with an Allow
// header. Analysis runs under the request's context capped by the
// configured per-request timeout, so a cancelled client or an expired
// budget aborts the solver within one check interval. A semaphore
// bounds concurrent requests; saturation answers 503 with Retry-After
// rather than queueing unboundedly.
//
// With Options.AuthToken set, the analysis endpoints require an
// Authorization: Bearer header with that token (compared in constant
// time); /healthz and /metrics stay open so probes and monitors need
// no credentials. Responses are gzip-compressed when the client
// accepts it, with the compressor flushed per streamed line so
// compression never trades away per-file streaming.
//
// The server runs any stack.Checker — normally the in-process
// *stack.Analyzer, but a stack/shard dispatcher slots in unchanged,
// turning one stackd into a fan-out front for a replica fleet.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"time"

	"repro/stack"
	"repro/stack/cache"
)

// Options configures a Server.
type Options struct {
	// MaxConcurrent bounds simultaneous requests under analysis; <= 0
	// means one per CPU.
	MaxConcurrent int
	// RequestTimeout caps each request's analysis; 0 means no cap
	// beyond the client's own context.
	RequestTimeout time.Duration
	// MaxSourceBytes caps the /v1/analyze request body; <= 0 means
	// 4 MiB.
	MaxSourceBytes int64
	// MaxSweepBytes caps the /v1/sweep request body (the whole batch);
	// <= 0 means 64 MiB.
	MaxSweepBytes int64
	// MaxSweepSources caps the number of sources per sweep batch; <= 0
	// means 4096.
	MaxSweepSources int
	// AuthToken, when non-empty, gates the analysis endpoints behind
	// an Authorization: Bearer token. Liveness (/healthz) and
	// observability (/metrics) stay open.
	AuthToken string
	// DisableCompression turns off gzip response compression (on by
	// default for clients that send Accept-Encoding: gzip).
	DisableCompression bool
	// CacheStats, when non-nil, reports the result cache's traffic and
	// residency counters (normally stack.Analyzer.CacheStats of the
	// Analyzer behind this server). The snapshot surfaces in /metrics
	// (both encodings) and in the ?stats=1 sweep trailer's "cache"
	// object. Leave nil when no cache is configured.
	CacheStats func() cache.Stats
}

const (
	defaultMaxSourceBytes  = 4 << 20
	defaultMaxSweepBytes   = 64 << 20
	defaultMaxSweepSources = 4096
)

// Server serves the analysis API over one shared Checker.
type Server struct {
	chk     stack.Checker
	opts    Options
	sem     chan struct{}
	mux     *http.ServeMux
	metrics *metrics
}

// New returns a Server exposing chk — usually a *stack.Analyzer, but
// any Checker (a stack/shard dispatcher, a test stub) serves.
func New(chk stack.Checker, opts Options) *Server {
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if opts.MaxSourceBytes <= 0 {
		opts.MaxSourceBytes = defaultMaxSourceBytes
	}
	if opts.MaxSweepBytes <= 0 {
		opts.MaxSweepBytes = defaultMaxSweepBytes
	}
	if opts.MaxSweepSources <= 0 {
		opts.MaxSweepSources = defaultMaxSweepSources
	}
	s := &Server{
		chk:     chk,
		opts:    opts,
		sem:     make(chan struct{}, opts.MaxConcurrent),
		mux:     http.NewServeMux(),
		metrics: newMetrics("/v1/analyze", "/v1/sweep", "/healthz", "/metrics"),
	}
	// Analysis endpoints sit behind the full middleware stack (metrics,
	// bearer auth, compression); liveness and observability skip auth
	// so probes and monitors need no credentials.
	s.mux.HandleFunc("/v1/analyze", s.instrument("/v1/analyze", true, s.handleAnalyze))
	s.mux.HandleFunc("/v1/sweep", s.instrument("/v1/sweep", true, s.handleSweep))
	s.mux.HandleFunc("/healthz", s.instrument("/healthz", false, s.handleHealthz))
	s.mux.HandleFunc("/metrics", s.instrument("/metrics", false, s.handleMetrics))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// analyzeRequest is the /v1/analyze request body.
type analyzeRequest struct {
	// Name is the display name used in diagnostic spans (default
	// "input.c").
	Name string `json:"name"`
	// Source is the C translation unit to analyze.
	Source string `json:"source"`
}

// sweepSource is one entry of a /v1/sweep batch.
type sweepSource struct {
	// Name is the display name (default "inputN.c" by position).
	Name string `json:"name"`
	// Source is the C translation unit.
	Source string `json:"source"`
}

// sweepRequest is the /v1/sweep request body.
type sweepRequest struct {
	Sources []sweepSource `json:"sources"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Compact canonical JSON: one line per body, as the smoke recipes
	// document.
	_ = json.NewEncoder(w).Encode(v) // headers are sent; nothing left to do on error
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"method not allowed"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// rejectNonPOST answers 405 with an Allow header for anything but
// POST. The analysis endpoints share it.
func rejectNonPOST(w http.ResponseWriter, r *http.Request) bool {
	if r.Method == http.MethodPost {
		return false
	}
	w.Header().Set("Allow", "POST")
	writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"method not allowed; POST a JSON body"})
	return true
}

// readBody reads at most limit bytes of the request body, rejecting
// the request itself when it is larger. A false return means the
// response has been written.
func readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"reading request body: " + err.Error()})
		return nil, false
	}
	if int64(len(body)) > limit {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{"request body exceeds size limit"})
		return nil, false
	}
	return body, true
}

// admit claims an analysis slot, answering 503 when saturated. The
// returned release func is nil if admission failed.
func (s *Server) admit(w http.ResponseWriter) func() {
	// Admission control: a full semaphore answers 503 immediately so a
	// saturated service sheds load instead of queueing requests whose
	// deadlines would expire anyway.
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }
	default:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{"analysis capacity saturated; retry"})
		return nil
	}
}

// requestCtx derives the analysis context from the request, applying
// the per-request timeout.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if s.opts.RequestTimeout > 0 {
		return context.WithTimeout(ctx, s.opts.RequestTimeout)
	}
	return ctx, func() {}
}

// handleAnalyze is the single-file endpoint: a thin wrapper that runs
// one source through the Checker and answers with the whole Result.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if rejectNonPOST(w, r) {
		return
	}
	// Read and validate the body before admission control, so a
	// slow-body client cannot occupy an analysis slot while the bytes
	// trickle in.
	body, ok := readBody(w, r, s.opts.MaxSourceBytes)
	if !ok {
		return
	}
	var req analyzeRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"decoding request: " + err.Error()})
		return
	}
	if req.Source == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{`missing "source"`})
		return
	}
	if req.Name == "" {
		req.Name = "input.c"
	}

	release := s.admit(w)
	if release == nil {
		return
	}
	defer release()

	ctx, cancel := s.requestCtx(r)
	defer cancel()
	res, err := s.chk.CheckSource(ctx, req.Name, req.Source)
	if err != nil {
		writeAnalysisError(w, err)
		return
	}
	s.metrics.addSolver(res.Stats)
	writeJSON(w, http.StatusOK, res)
}

// writeAnalysisError maps an analysis error to a status, assuming no
// response bytes have been written yet.
func writeAnalysisError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{"analysis exceeded the request time budget"})
	case errors.Is(err, context.Canceled):
		// Client went away; the status is moot but keep the handler
		// total.
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{"request cancelled"})
	default:
		// Frontend rejection (lex/parse/typecheck/IR): the input is at
		// fault.
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{err.Error()})
	}
}

// streamWriter defers the 200 header until the first byte of sink
// output, so analysis errors that strike before anything is written
// still get a proper error status, and flushes on demand so each
// file's result goes on the wire as it completes.
type streamWriter struct {
	w           http.ResponseWriter
	contentType string
	started     bool
	err         error
}

func (sw *streamWriter) Write(p []byte) (int, error) {
	if sw.err != nil {
		return 0, sw.err
	}
	if !sw.started {
		sw.w.Header().Set("Content-Type", sw.contentType)
		sw.w.WriteHeader(http.StatusOK)
		sw.started = true
	}
	n, err := sw.w.Write(p)
	if err != nil {
		sw.err = err
	}
	return n, err
}

func (sw *streamWriter) flush() {
	if f, ok := sw.w.(http.Flusher); ok && sw.started {
		f.Flush()
	}
}

// sweepContentTypes maps ?format= values to sink constructors and
// content types.
var sweepFormats = map[string]struct {
	contentType string
	newSink     func(io.Writer) stack.Sink
}{
	"jsonl": {"application/jsonl", stack.NewJSONLSink},
	"text":  {"text/plain; charset=utf-8", stack.NewTextSink},
	"sarif": {"application/sarif+json", stack.NewSARIFSink},
}

// handleSweep is the batch endpoint: the whole batch streams through
// the Checker's in-order emitter into a sink, one result on the wire
// per finished file.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if rejectNonPOST(w, r) {
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "jsonl"
	}
	ff, ok := sweepFormats[format]
	if !ok {
		writeJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf("unknown format %q (want jsonl, text, or sarif)", format)})
		return
	}
	wantStats := r.URL.Query().Get("stats") == "1"
	if wantStats && format != "jsonl" {
		writeJSON(w, http.StatusBadRequest, errorResponse{"stats=1 requires format=jsonl"})
		return
	}
	body, ok := readBody(w, r, s.opts.MaxSweepBytes)
	if !ok {
		return
	}
	var req sweepRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"decoding request: " + err.Error()})
		return
	}
	if len(req.Sources) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{`missing "sources"`})
		return
	}
	if len(req.Sources) > s.opts.MaxSweepSources {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			errorResponse{fmt.Sprintf("batch of %d sources exceeds the %d-source limit", len(req.Sources), s.opts.MaxSweepSources)})
		return
	}
	srcs := make([]stack.Source, len(req.Sources))
	for i, src := range req.Sources {
		if src.Source == "" {
			writeJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf(`sources[%d]: missing "source"`, i)})
			return
		}
		name := src.Name
		if name == "" {
			name = fmt.Sprintf("input%d.c", i)
		}
		srcs[i] = stack.Source{Name: name, Text: src.Source}
	}

	release := s.admit(w)
	if release == nil {
		return
	}
	defer release()

	ctx, cancel := s.requestCtx(r)
	defer cancel()

	sw := &streamWriter{w: w, contentType: ff.contentType}
	sink := ff.newSink(sw)
	var sinkErr error
	st, err := s.chk.CheckSources(ctx, srcs, func(fr stack.FileResult) {
		if sinkErr != nil {
			return
		}
		if e := sink.Emit(fr); e != nil {
			sinkErr = e
			return
		}
		// Flush after every file: the client sees each result the
		// moment it (and everything before it) is done — streaming,
		// not buffer-then-flush.
		sw.flush()
	})
	s.metrics.addSolver(st)
	if err != nil {
		if !sw.started {
			// Nothing on the wire yet (the error struck before the
			// first result, or the format buffers until Close): answer
			// with a proper status.
			writeAnalysisError(w, err)
			return
		}
		// Mid-stream failure: the 200 is history, so append an error
		// trailer in the stream's own framing.
		switch format {
		case "jsonl":
			_ = json.NewEncoder(sw).Encode(errorResponse{err.Error()})
		case "text":
			fmt.Fprintf(sw, "error: %v\n", err)
		}
		sw.flush()
		return
	}
	if err := sink.Close(); err == nil && wantStats {
		// Aggregated effort for the whole batch, Figure 16-style,
		// including the rewrite/incremental solver metrics
		// (RewriteHits, BlastPasses, LearntsReused).
		trailer := statsTrailer{Stats: &st}
		if s.opts.CacheStats != nil {
			cst := s.opts.CacheStats()
			trailer.Cache = &cst
		}
		_ = json.NewEncoder(sw).Encode(trailer)
	}
	sw.flush()
}

// statsTrailer is the optional final JSONL line of a sweep response.
// Its single "stats" key distinguishes it from per-file lines, which
// always carry "file". Cache, present only when the server has a
// result cache, snapshots the cache's own hit/miss/eviction/residency
// counters (service-lifetime, not per-request — the per-request view
// is stats.cacheResultHits/Misses).
type statsTrailer struct {
	Stats *stack.Stats `json:"stats"`
	Cache *cache.Stats `json:"cache,omitempty"`
}
