// Package service implements the stackd analysis service: the STACK
// checker behind an HTTP API, the shape the paper's whole-archive
// evaluation (§6.4) implies for production use — per-query time
// budgets, machine-consumable results, bounded concurrency.
//
// Endpoints:
//
//	POST /v1/analyze  {"name": "file.c", "source": "..."}
//	                  → 200 {"file": ..., "diagnostics": [...], "stats": {...}}
//	GET  /healthz     → 200 {"status": "ok"}
//
// Analysis runs under the request's context capped by the configured
// per-request timeout, so a cancelled client or an expired budget
// aborts the solver within one check interval. A semaphore bounds
// concurrent analyses; saturation answers 503 with Retry-After rather
// than queueing unboundedly.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"runtime"
	"time"

	"repro/stack"
)

// Options configures a Server.
type Options struct {
	// MaxConcurrent bounds simultaneous analyses; <= 0 means one per
	// CPU.
	MaxConcurrent int
	// RequestTimeout caps each analysis; 0 means no cap beyond the
	// client's own context.
	RequestTimeout time.Duration
	// MaxSourceBytes caps the request body; <= 0 means 4 MiB.
	MaxSourceBytes int64
}

const defaultMaxSourceBytes = 4 << 20

// Server serves the analysis API over one shared Analyzer.
type Server struct {
	az   *stack.Analyzer
	opts Options
	sem  chan struct{}
	mux  *http.ServeMux
}

// New returns a Server exposing az.
func New(az *stack.Analyzer, opts Options) *Server {
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if opts.MaxSourceBytes <= 0 {
		opts.MaxSourceBytes = defaultMaxSourceBytes
	}
	s := &Server{
		az:   az,
		opts: opts,
		sem:  make(chan struct{}, opts.MaxConcurrent),
		mux:  http.NewServeMux(),
	}
	s.mux.HandleFunc("/v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// analyzeRequest is the /v1/analyze request body.
type analyzeRequest struct {
	// Name is the display name used in diagnostic spans (default
	// "input.c").
	Name string `json:"name"`
	// Source is the C translation unit to analyze.
	Source string `json:"source"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Compact canonical JSON: one line per body, as the smoke recipes
	// document.
	_ = json.NewEncoder(w).Encode(v) // headers are sent; nothing left to do on error
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"method not allowed"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"method not allowed; POST a JSON body"})
		return
	}
	// Read and validate the body before admission control, so a
	// slow-body client cannot occupy an analysis slot while the bytes
	// trickle in.
	body, err := io.ReadAll(io.LimitReader(r.Body, s.opts.MaxSourceBytes+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"reading request body: " + err.Error()})
		return
	}
	if int64(len(body)) > s.opts.MaxSourceBytes {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{"request body exceeds source size limit"})
		return
	}
	var req analyzeRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"decoding request: " + err.Error()})
		return
	}
	if req.Source == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{`missing "source"`})
		return
	}
	if req.Name == "" {
		req.Name = "input.c"
	}

	// Admission control: a full semaphore answers 503 immediately so a
	// saturated service sheds load instead of queueing requests whose
	// deadlines would expire anyway.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	default:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{"analysis capacity saturated; retry"})
		return
	}

	ctx := r.Context()
	if s.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.RequestTimeout)
		defer cancel()
	}
	res, err := s.az.CheckSource(ctx, req.Name, req.Source)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, res)
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{"analysis exceeded the request time budget"})
	case errors.Is(err, context.Canceled):
		// Client went away; the status is moot but keep the handler
		// total.
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{"request cancelled"})
	default:
		// Frontend rejection (lex/parse/typecheck/IR): the input is at
		// fault.
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{err.Error()})
	}
}
