package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/stack"
)

const fig1Src = `
int parse_header(char *buf, char *buf_end, unsigned int len) {
	if (buf + len >= buf_end)
		return -1;
	if (buf + len < buf)
		return -1;
	return 0;
}
`

func newTestServer(opts Options) *Server {
	return New(stack.New(), opts)
}

func doJSON(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestHealthz(t *testing.T) {
	srv := newTestServer(Options{})
	w := doJSON(t, srv, http.MethodGet, "/healthz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", w.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" {
		t.Errorf("body = %v", body)
	}
	if w := doJSON(t, srv, http.MethodPost, "/healthz", ""); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /healthz = %d, want 405", w.Code)
	}
}

func TestAnalyzeHappyPath(t *testing.T) {
	srv := newTestServer(Options{})
	reqBody, _ := json.Marshal(map[string]string{"name": "figure1.c", "source": fig1Src})
	w := doJSON(t, srv, http.MethodPost, "/v1/analyze", string(reqBody))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var res stack.Result
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if res.File != "figure1.c" {
		t.Errorf("file = %q", res.File)
	}
	if len(res.Diagnostics) == 0 {
		t.Fatal("expected diagnostics for the Figure 1 unstable check")
	}
	d := res.Diagnostics[0]
	if d.Code != stack.RuleElimination {
		t.Errorf("code = %q, want %q", d.Code, stack.RuleElimination)
	}
	if d.Span.File != "figure1.c" || d.Span.Line == 0 {
		t.Errorf("span = %+v", d.Span)
	}
	if len(d.UB) == 0 || d.UB[0].Code != stack.UBCodePointerOverflow {
		t.Errorf("ub = %+v, want pointer overflow (%s)", d.UB, stack.UBCodePointerOverflow)
	}
	if res.Stats.Queries == 0 {
		t.Errorf("stats = %+v, want nonzero queries", res.Stats)
	}
}

func TestAnalyzeDefaultsName(t *testing.T) {
	srv := newTestServer(Options{})
	w := doJSON(t, srv, http.MethodPost, "/v1/analyze", `{"source":"int f(void) { return 0; }"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.String())
	}
	var res stack.Result
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.File != "input.c" {
		t.Errorf("file = %q, want the input.c default", res.File)
	}
	if len(res.Diagnostics) != 0 {
		t.Errorf("clean source produced diagnostics: %+v", res.Diagnostics)
	}
}

func TestAnalyzeRejections(t *testing.T) {
	srv := newTestServer(Options{MaxSourceBytes: 64})
	cases := []struct {
		name   string
		method string
		body   string
		want   int
	}{
		{"method", http.MethodGet, "", http.StatusMethodNotAllowed},
		{"bad json", http.MethodPost, "{", http.StatusBadRequest},
		{"missing source", http.MethodPost, `{"name":"x.c"}`, http.StatusBadRequest},
		{"parse error", http.MethodPost, `{"source":"int f( {"}`, http.StatusUnprocessableEntity},
		{"oversized", http.MethodPost, `{"source":"` + strings.Repeat("x", 100) + `"}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		w := doJSON(t, srv, tc.method, "/v1/analyze", tc.body)
		if w.Code != tc.want {
			t.Errorf("%s: status = %d, want %d (body %s)", tc.name, w.Code, tc.want, w.Body.String())
		}
		var e map[string]any
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
			t.Errorf("%s: non-JSON error body %q", tc.name, w.Body.String())
		} else if e["error"] == "" {
			t.Errorf("%s: error body missing message: %v", tc.name, e)
		}
	}
}

func TestAnalyzeSaturation(t *testing.T) {
	srv := newTestServer(Options{MaxConcurrent: 1})
	// Occupy the only slot, as a long-running analysis would.
	srv.sem <- struct{}{}
	defer func() { <-srv.sem }()
	w := doJSON(t, srv, http.MethodPost, "/v1/analyze", `{"source":"int f(void) { return 0; }"}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
}

func TestAnalyzeRequestTimeout(t *testing.T) {
	srv := newTestServer(Options{RequestTimeout: time.Nanosecond})
	reqBody, _ := json.Marshal(map[string]string{"source": fig1Src})
	w := doJSON(t, srv, http.MethodPost, "/v1/analyze", string(reqBody))
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", w.Code, w.Body.String())
	}
}

// TestOverHTTP drives the handler through a real listener end to end,
// the way cmd/stackd serves it.
func TestOverHTTP(t *testing.T) {
	ts := httptest.NewServer(newTestServer(Options{}))
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json",
		strings.NewReader(`{"name":"fig1.c","source":`+mustJSON(fig1Src)+`}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var res stack.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if len(res.Diagnostics) == 0 {
		t.Error("expected diagnostics over HTTP")
	}
}

func mustJSON(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		panic(err)
	}
	return string(b)
}
