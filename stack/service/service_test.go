package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/stack"
)

const fig1Src = `
int parse_header(char *buf, char *buf_end, unsigned int len) {
	if (buf + len >= buf_end)
		return -1;
	if (buf + len < buf)
		return -1;
	return 0;
}
`

// divSrc produces a simplification diagnostic, so sweep streams carry
// both rule families.
const divSrc = `
int scale(int x, int y) {
	int q = x / y;
	if (y == 0)
		return -1;
	return q;
}
`

const cleanSrc = `int f(void) { return 0; }`

func newTestServer(opts Options) *Server {
	return New(stack.New(), opts)
}

func doJSON(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestHealthz(t *testing.T) {
	srv := newTestServer(Options{})
	w := doJSON(t, srv, http.MethodGet, "/healthz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", w.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" {
		t.Errorf("body = %v", body)
	}
	if w := doJSON(t, srv, http.MethodPost, "/healthz", ""); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /healthz = %d, want 405", w.Code)
	}
}

func TestAnalyzeHappyPath(t *testing.T) {
	srv := newTestServer(Options{})
	reqBody, _ := json.Marshal(map[string]string{"name": "figure1.c", "source": fig1Src})
	w := doJSON(t, srv, http.MethodPost, "/v1/analyze", string(reqBody))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var res stack.Result
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if res.File != "figure1.c" {
		t.Errorf("file = %q", res.File)
	}
	if len(res.Diagnostics) == 0 {
		t.Fatal("expected diagnostics for the Figure 1 unstable check")
	}
	d := res.Diagnostics[0]
	if d.Code != stack.RuleElimination {
		t.Errorf("code = %q, want %q", d.Code, stack.RuleElimination)
	}
	if d.Span.File != "figure1.c" || d.Span.Line == 0 {
		t.Errorf("span = %+v", d.Span)
	}
	if len(d.UB) == 0 || d.UB[0].Code != stack.UBCodePointerOverflow {
		t.Errorf("ub = %+v, want pointer overflow (%s)", d.UB, stack.UBCodePointerOverflow)
	}
	if res.Stats.Queries == 0 {
		t.Errorf("stats = %+v, want nonzero queries", res.Stats)
	}
}

func TestAnalyzeDefaultsName(t *testing.T) {
	srv := newTestServer(Options{})
	w := doJSON(t, srv, http.MethodPost, "/v1/analyze", `{"source":"int f(void) { return 0; }"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.String())
	}
	var res stack.Result
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.File != "input.c" {
		t.Errorf("file = %q, want the input.c default", res.File)
	}
	if len(res.Diagnostics) != 0 {
		t.Errorf("clean source produced diagnostics: %+v", res.Diagnostics)
	}
}

func TestAnalyzeRejections(t *testing.T) {
	srv := newTestServer(Options{MaxSourceBytes: 64})
	cases := []struct {
		name   string
		method string
		body   string
		want   int
	}{
		{"method", http.MethodGet, "", http.StatusMethodNotAllowed},
		{"bad json", http.MethodPost, "{", http.StatusBadRequest},
		{"missing source", http.MethodPost, `{"name":"x.c"}`, http.StatusBadRequest},
		{"parse error", http.MethodPost, `{"source":"int f( {"}`, http.StatusUnprocessableEntity},
		{"oversized", http.MethodPost, `{"source":"` + strings.Repeat("x", 100) + `"}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		w := doJSON(t, srv, tc.method, "/v1/analyze", tc.body)
		if w.Code != tc.want {
			t.Errorf("%s: status = %d, want %d (body %s)", tc.name, w.Code, tc.want, w.Body.String())
		}
		var e map[string]any
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
			t.Errorf("%s: non-JSON error body %q", tc.name, w.Body.String())
		} else if e["error"] == "" {
			t.Errorf("%s: error body missing message: %v", tc.name, e)
		}
	}
}

func TestAnalyzeSaturation(t *testing.T) {
	srv := newTestServer(Options{MaxConcurrent: 1})
	// Occupy the only slot, as a long-running analysis would.
	srv.sem <- struct{}{}
	defer func() { <-srv.sem }()
	w := doJSON(t, srv, http.MethodPost, "/v1/analyze", `{"source":"int f(void) { return 0; }"}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
}

func TestAnalyzeRequestTimeout(t *testing.T) {
	srv := newTestServer(Options{RequestTimeout: time.Nanosecond})
	reqBody, _ := json.Marshal(map[string]string{"source": fig1Src})
	w := doJSON(t, srv, http.MethodPost, "/v1/analyze", string(reqBody))
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", w.Code, w.Body.String())
	}
}

// TestOverHTTP drives the handler through a real listener end to end,
// the way cmd/stackd serves it.
func TestOverHTTP(t *testing.T) {
	ts := httptest.NewServer(newTestServer(Options{}))
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json",
		strings.NewReader(`{"name":"fig1.c","source":`+mustJSON(fig1Src)+`}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var res stack.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if len(res.Diagnostics) == 0 {
		t.Error("expected diagnostics over HTTP")
	}
}

func mustJSON(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		panic(err)
	}
	return string(b)
}

// sweepBatch is the standard test batch: a mix of elimination,
// simplification, clean, and repeated sources, enough files for
// worker-count scheduling to scramble completion order.
func sweepBatch() []stack.Source {
	return []stack.Source{
		{Name: "a.c", Text: fig1Src},
		{Name: "b.c", Text: cleanSrc},
		{Name: "c.c", Text: divSrc},
		{Name: "d.c", Text: fig1Src},
		{Name: "e.c", Text: divSrc},
		{Name: "f.c", Text: cleanSrc},
		{Name: "g.c", Text: fig1Src},
		{Name: "h.c", Text: divSrc},
	}
}

func sweepBody(t *testing.T, srcs []stack.Source) string {
	t.Helper()
	type src struct{ Name, Source string }
	batch := make([]map[string]string, len(srcs))
	for i, s := range srcs {
		batch[i] = map[string]string{"name": s.Name, "source": s.Text}
	}
	b, err := json.Marshal(map[string]any{"sources": batch})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSweepJSONLByteIdentity: the /v1/sweep JSONL stream is
// byte-identical to stack.NewJSONLSink fed by a local CheckSources,
// for Workers ∈ {1, 4, 16} — the acceptance bar of the batch API.
func TestSweepJSONLByteIdentity(t *testing.T) {
	srcs := sweepBatch()
	body := sweepBody(t, srcs)
	for _, workers := range []int{1, 4, 16} {
		az := stack.New(stack.WithWorkers(workers), stack.WithSolverTimeout(0))

		var want bytes.Buffer
		sink := stack.NewJSONLSink(&want)
		if _, err := az.CheckSources(context.Background(), srcs, func(fr stack.FileResult) {
			if err := sink.Emit(fr); err != nil {
				t.Fatal(err)
			}
		}); err != nil {
			t.Fatalf("workers=%d: local CheckSources: %v", workers, err)
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		if want.Len() == 0 {
			t.Fatal("local sink produced nothing; identity test is vacuous")
		}

		srv := New(az, Options{})
		w := doJSON(t, srv, http.MethodPost, "/v1/sweep", body)
		if w.Code != http.StatusOK {
			t.Fatalf("workers=%d: status = %d, body %s", workers, w.Code, w.Body.String())
		}
		if ct := w.Header().Get("Content-Type"); ct != "application/jsonl" {
			t.Errorf("workers=%d: Content-Type = %q", workers, ct)
		}
		if w.Body.String() != want.String() {
			t.Errorf("workers=%d: sweep stream diverged from the local JSONL sink\n--- got ---\n%s--- want ---\n%s",
				workers, w.Body.String(), want.String())
		}
	}
}

// TestSweepStatsTrailer: ?stats=1 appends exactly one trailer line
// carrying the aggregated solver metrics — including the rewrite and
// incremental-session counters.
func TestSweepStatsTrailer(t *testing.T) {
	srv := newTestServer(Options{})
	w := doJSON(t, srv, http.MethodPost, "/v1/sweep?stats=1", sweepBody(t, sweepBatch()))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.String())
	}
	lines := strings.Split(strings.TrimRight(w.Body.String(), "\n"), "\n")
	last := lines[len(lines)-1]
	for _, key := range []string{`"stats"`, `"rewriteHits"`, `"blastPasses"`, `"learntsReused"`,
		`"cacheHits"`, `"learntsDropped"`, `"arenaBytesReused"`} {
		if !strings.Contains(last, key) {
			t.Errorf("stats trailer missing %s: %s", key, last)
		}
	}
	var trailer struct {
		Stats *stack.Stats `json:"stats"`
	}
	if err := json.Unmarshal([]byte(last), &trailer); err != nil || trailer.Stats == nil {
		t.Fatalf("trailer does not decode: %v (%s)", err, last)
	}
	if trailer.Stats.Queries == 0 || trailer.Stats.Functions == 0 {
		t.Errorf("trailer stats empty: %+v", *trailer.Stats)
	}
	// Per-file lines must be untouched by the trailer option.
	if len(lines) != len(sweepBatch())+1 {
		t.Errorf("got %d lines, want %d per-file + 1 trailer", len(lines), len(sweepBatch()))
	}
}

// TestSweepFormats: text output matches the text sink; sarif parses
// and names the tool.
func TestSweepFormats(t *testing.T) {
	az := stack.New(stack.WithSolverTimeout(0))
	srcs := sweepBatch()
	body := sweepBody(t, srcs)
	srv := New(az, Options{})

	var want bytes.Buffer
	sink := stack.NewTextSink(&want)
	if _, err := az.CheckSources(context.Background(), srcs, func(fr stack.FileResult) {
		if err := sink.Emit(fr); err != nil {
			t.Fatal(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	w := doJSON(t, srv, http.MethodPost, "/v1/sweep?format=text", body)
	if w.Code != http.StatusOK || w.Body.String() != want.String() {
		t.Errorf("text format: status %d\n--- got ---\n%s--- want ---\n%s", w.Code, w.Body.String(), want.String())
	}

	w = doJSON(t, srv, http.MethodPost, "/v1/sweep?format=sarif", body)
	if w.Code != http.StatusOK {
		t.Fatalf("sarif: status = %d, body %s", w.Code, w.Body.String())
	}
	var log struct {
		Runs []struct {
			Tool struct {
				Driver struct {
					Name string `json:"name"`
				} `json:"driver"`
			} `json:"tool"`
			Results []any `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &log); err != nil {
		t.Fatalf("sarif does not decode: %v", err)
	}
	if len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "stack" || len(log.Runs[0].Results) == 0 {
		t.Errorf("unexpected sarif shape: %s", w.Body.String())
	}
}

// TestSweepRejections: the validation surface of the batch endpoint.
func TestSweepRejections(t *testing.T) {
	srv := newTestServer(Options{MaxSweepSources: 2})
	cases := []struct {
		name   string
		path   string
		method string
		body   string
		want   int
	}{
		{"method", "/v1/sweep", http.MethodGet, "", http.StatusMethodNotAllowed},
		{"bad json", "/v1/sweep", http.MethodPost, "{", http.StatusBadRequest},
		{"no sources", "/v1/sweep", http.MethodPost, `{"sources":[]}`, http.StatusBadRequest},
		{"empty source", "/v1/sweep", http.MethodPost, `{"sources":[{"name":"x.c"}]}`, http.StatusBadRequest},
		{"bad format", "/v1/sweep?format=xml", http.MethodPost, `{"sources":[{"source":"int f(void){return 0;}"}]}`, http.StatusBadRequest},
		{"stats non-jsonl", "/v1/sweep?format=text&stats=1", http.MethodPost, `{"sources":[{"source":"int f(void){return 0;}"}]}`, http.StatusBadRequest},
		{"too many sources", "/v1/sweep", http.MethodPost,
			`{"sources":[{"source":"int a;"},{"source":"int b;"},{"source":"int c;"}]}`, http.StatusRequestEntityTooLarge},
		{"frontend error first file", "/v1/sweep", http.MethodPost, `{"sources":[{"name":"broken.c","source":"int f( {"}]}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		w := doJSON(t, srv, tc.method, tc.path, tc.body)
		if w.Code != tc.want {
			t.Errorf("%s: status = %d, want %d (body %s)", tc.name, w.Code, tc.want, w.Body.String())
		}
	}
}

// TestMethodNotAllowedAllowHeader: non-POST methods on both analysis
// endpoints answer 405 and advertise POST.
func TestMethodNotAllowedAllowHeader(t *testing.T) {
	srv := newTestServer(Options{})
	for _, path := range []string{"/v1/analyze", "/v1/sweep"} {
		for _, method := range []string{http.MethodGet, http.MethodPut, http.MethodDelete, http.MethodHead} {
			w := doJSON(t, srv, method, path, "")
			if w.Code != http.StatusMethodNotAllowed {
				t.Errorf("%s %s: status = %d, want 405", method, path, w.Code)
			}
			if allow := w.Header().Get("Allow"); allow != "POST" {
				t.Errorf("%s %s: Allow = %q, want POST", method, path, allow)
			}
		}
	}
}

// TestSweepMidStreamError: a frontend failure after results are on the
// wire appends a JSONL error trailer carrying the failing source's
// name; the prefix before the error is intact.
func TestSweepMidStreamError(t *testing.T) {
	srv := newTestServer(Options{})
	body := sweepBody(t, []stack.Source{
		{Name: "ok.c", Text: fig1Src},
		{Name: "broken.c", Text: "int f( {"},
		{Name: "after.c", Text: fig1Src},
	})
	w := doJSON(t, srv, http.MethodPost, "/v1/sweep", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d (the 200 was sent before the error struck)", w.Code)
	}
	lines := strings.Split(strings.TrimRight(w.Body.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want ok.c result + error trailer:\n%s", len(lines), w.Body.String())
	}
	var first stack.FileResult
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil || first.File != "ok.c" {
		t.Errorf("first line is not ok.c's result: %s", lines[0])
	}
	var trailer struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &trailer); err != nil || !strings.Contains(trailer.Error, "broken.c") {
		t.Errorf("error trailer = %s, want one naming broken.c", lines[1])
	}
}

// gatedChecker is a stack.Checker stub whose CheckSources emits every
// file but the last immediately, then blocks until the test releases
// it — making "did the client see results before the sweep finished?"
// deterministic instead of timing-dependent.
type gatedChecker struct {
	reached chan struct{} // closed once the early files are emitted
	gate    chan struct{} // closed by the test to release the last file
}

func (g *gatedChecker) CheckSource(ctx context.Context, name, src string) (*stack.Result, error) {
	return &stack.Result{File: name}, nil
}

func (g *gatedChecker) CheckSources(ctx context.Context, srcs []stack.Source, emit func(stack.FileResult)) (stack.Stats, error) {
	for i := 0; i < len(srcs)-1; i++ {
		emit(stack.FileResult{Index: i, File: srcs[i].Name})
	}
	close(g.reached)
	select {
	case <-g.gate:
	case <-ctx.Done():
		return stack.Stats{}, ctx.Err()
	}
	emit(stack.FileResult{Index: len(srcs) - 1, File: srcs[len(srcs)-1].Name})
	return stack.Stats{Queries: 1}, nil
}

// TestSweepTrueStreaming: the client observes the first files' results
// on the wire while the sweep is still running — per-file flushes, not
// buffer-then-flush. A real listener (httptest.NewServer) carries the
// stream so the test reads exactly what a remote client would.
func TestSweepTrueStreaming(t *testing.T) {
	chk := &gatedChecker{reached: make(chan struct{}), gate: make(chan struct{})}
	ts := httptest.NewServer(New(chk, Options{}))
	defer ts.Close()
	var gateOnce sync.Once
	releaseGate := func() { gateOnce.Do(func() { close(chk.gate) }) }
	defer releaseGate() // unpark the handler even when the test bails early

	body := sweepBody(t, []stack.Source{
		{Name: "slow0.c", Text: cleanSrc},
		{Name: "slow1.c", Text: cleanSrc},
		{Name: "last.c", Text: cleanSrc},
	})
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}

	type lineOrErr struct {
		line string
		err  error
	}
	lineCh := make(chan lineOrErr)
	go func() {
		r := bufio.NewReader(resp.Body)
		for {
			line, err := r.ReadString('\n')
			lineCh <- lineOrErr{line, err}
			if err != nil {
				return
			}
		}
	}()
	readLine := func(what string) string {
		t.Helper()
		select {
		case l := <-lineCh:
			if l.err != nil {
				t.Fatalf("reading %s: %v", what, l.err)
			}
			return l.line
		case <-time.After(30 * time.Second):
			t.Fatalf("timed out reading %s: the server buffered instead of flushing per file", what)
			return ""
		}
	}

	<-chk.reached // the sweep is now parked before its final file
	for i := 0; i < 2; i++ {
		line := readLine(fmt.Sprintf("streamed line %d", i))
		var fr stack.FileResult
		if err := json.Unmarshal([]byte(line), &fr); err != nil || fr.Index != i {
			t.Fatalf("line %d = %q, want the result for index %d", i, line, i)
		}
		select {
		case <-chk.gate:
			t.Fatal("gate already released; the observation proves nothing")
		default:
		}
	}
	// Only now let the sweep finish; the last line and EOF follow.
	releaseGate()
	last := readLine("final line")
	var fr stack.FileResult
	if err := json.Unmarshal([]byte(last), &fr); err != nil || fr.File != "last.c" {
		t.Errorf("final line = %q, want last.c's result", last)
	}
	if l := <-lineCh; l.err == nil {
		t.Errorf("expected EOF after the final line, got %q", l.line)
	}
}
