// Fault-injection tests for the dispatcher's fleet behavior: replica
// death mid-sweep, dead-at-dial replicas, saturation backoff honoring
// Retry-After, and health-state transitions under probing.
package shard

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/stack"
	"repro/stack/client"
	"repro/stack/service"
)

// newReplicaServer starts a real stackd replica and returns its client.
func newReplicaServer(t *testing.T) *client.Client {
	t.Helper()
	ts := httptest.NewServer(service.New(stack.New(stack.WithSolverTimeout(0)), service.Options{}))
	t.Cleanup(ts.Close)
	return client.New(ts.URL)
}

// decodeSweepBody extracts the batch from a /v1/sweep request.
func decodeSweepBody(t *testing.T, r *http.Request) []stack.Source {
	t.Helper()
	var req struct {
		Sources []struct{ Name, Source string } `json:"sources"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		t.Errorf("decoding sweep body: %v", err)
		return nil
	}
	srcs := make([]stack.Source, len(req.Sources))
	for i, s := range req.Sources {
		srcs[i] = stack.Source{Name: s.Name, Text: s.Source}
	}
	return srcs
}

// TestShardReplicaDeathByteIdentity is the acceptance criterion for
// the retry path: one replica streams a genuine first result and then
// its connection dies mid-sweep; the dispatcher retries the unemitted
// tail on the survivor, and the caller's stream is byte-identical to a
// local single-process run.
func TestShardReplicaDeathByteIdentity(t *testing.T) {
	srcs := batch()
	local := stack.New(stack.WithSolverTimeout(0))
	want, _ := jsonl(t, local, srcs)
	if want == "" {
		t.Fatal("local run produced nothing; identity test is vacuous")
	}

	// The flaky replica answers its first sweep with one genuine result
	// line — computed by a real analyzer configured like the fleet — and
	// then aborts the connection, the observable shape of a replica
	// killed mid-sweep. Later requests (probes, would-be retries) reach
	// a real service.
	az := stack.New(stack.WithSolverTimeout(0))
	real := service.New(az, service.Options{})
	var died atomic.Bool
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/sweep" || !died.CompareAndSwap(false, true) {
			real.ServeHTTP(w, r)
			return
		}
		subset := decodeSweepBody(t, r)
		if len(subset) == 0 {
			t.Error("flaky replica got an empty subset")
			panic(http.ErrAbortHandler)
		}
		var lines []stack.FileResult
		if _, err := az.CheckSources(r.Context(), subset[:1], func(fr stack.FileResult) {
			lines = append(lines, fr)
		}); err != nil {
			t.Errorf("flaky replica analyzing its first source: %v", err)
			panic(http.ErrAbortHandler)
		}
		w.Header().Set("Content-Type", "application/jsonl")
		enc := json.NewEncoder(w)
		for _, fr := range lines {
			_ = enc.Encode(fr)
		}
		w.(http.Flusher).Flush()
		panic(http.ErrAbortHandler) // die before the rest of the subset
	}))
	defer flaky.Close()

	d := New(client.New(flaky.URL), newReplicaServer(t))
	got, st := jsonl(t, d, srcs)
	if got != want {
		t.Errorf("stream across a replica death diverged from local\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if st.Queries == 0 {
		t.Errorf("stats = %+v, want the survivor's effort counted", st)
	}
	// The death was observed as a transport fault: the flaky replica is
	// marked down until a probe revives it.
	h := d.Health()
	if h[0].Up || h[0].Transitions == 0 {
		t.Errorf("flaky replica health = %+v, want down with a transition", h[0])
	}
	if h[1].LastErr != "" || !h[1].Up {
		t.Errorf("survivor health = %+v, want up", h[1])
	}
	// No pending charge may leak out of a finished sweep.
	for _, rh := range h {
		if rh.Pending != 0 {
			t.Errorf("replica %s pending = %d after the sweep, want 0", rh.Name, rh.Pending)
		}
	}
}

// TestShardDeadReplicaFromStart: a replica that refuses connections
// outright (process gone before the sweep began) costs nothing but a
// retry — the survivor absorbs its whole subset, byte-identically.
func TestShardDeadReplicaFromStart(t *testing.T) {
	srcs := batch()
	local := stack.New(stack.WithSolverTimeout(0))
	want, _ := jsonl(t, local, srcs)

	dead := httptest.NewServer(http.HandlerFunc(nil))
	dead.Close() // the address now refuses connections

	d := New(client.New(dead.URL), newReplicaServer(t))
	got, _ := jsonl(t, d, srcs)
	if got != want {
		t.Errorf("stream with a dead replica diverged from local\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if h := d.Health(); h[0].Up {
		t.Errorf("dead replica still reported up: %+v", h[0])
	}

	// A second sweep deals around the replica now known dead (reviveDown
	// probes it, the probe fails, nothing is assigned to it) and still
	// matches local output.
	got2, _ := jsonl(t, d, srcs)
	if got2 != want {
		t.Errorf("second sweep diverged\n--- got ---\n%s--- want ---\n%s", got2, want)
	}
}

// TestRetryAfterHonored: when a replica answers 503 with Retry-After,
// the dispatcher's retry provably waits at least that long — even
// though its own configured backoff is near zero.
func TestRetryAfterHonored(t *testing.T) {
	az := stack.New(stack.WithSolverTimeout(0))
	real := service.New(az, service.Options{})
	var mu sync.Mutex
	var sweepTimes []time.Time
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/sweep" {
			real.ServeHTTP(w, r)
			return
		}
		mu.Lock()
		sweepTimes = append(sweepTimes, time.Now())
		first := len(sweepTimes) == 1
		mu.Unlock()
		if first {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte(`{"error":"saturated"}`))
			return
		}
		real.ServeHTTP(w, r)
	}))
	defer ts.Close()

	srcs := batch()
	want, _ := jsonl(t, stack.New(stack.WithSolverTimeout(0)), srcs)
	d := New(client.New(ts.URL)).Configure(WithBackoff(time.Millisecond, 2*time.Millisecond))
	got, _ := jsonl(t, d, srcs)
	if got != want {
		t.Errorf("post-backoff stream diverged\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(sweepTimes) != 2 {
		t.Fatalf("replica saw %d sweep attempts, want exactly 2", len(sweepTimes))
	}
	if gap := sweepTimes[1].Sub(sweepTimes[0]); gap < 900*time.Millisecond {
		t.Errorf("retry arrived %v after the 503; Retry-After: 1 was not honored", gap)
	}
}

// TestCheckSourceRetryAfterHonored: the single-file path honors the
// hint too.
func TestCheckSourceRetryAfterHonored(t *testing.T) {
	az := stack.New(stack.WithSolverTimeout(0))
	real := service.New(az, service.Options{})
	var calls atomic.Int64
	var firstAt, secondAt time.Time
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			firstAt = time.Now()
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte(`{"error":"saturated"}`))
		default:
			secondAt = time.Now()
			real.ServeHTTP(w, r)
		}
	}))
	defer ts.Close()

	d := New(client.New(ts.URL)).Configure(WithBackoff(time.Millisecond, 2*time.Millisecond))
	res, err := d.CheckSource(context.Background(), "x.c", "int f(void) { return 0; }")
	if err != nil || res.File != "x.c" {
		t.Fatalf("CheckSource after 503: %v, %+v", err, res)
	}
	if gap := secondAt.Sub(firstAt); gap < 900*time.Millisecond {
		t.Errorf("retry arrived %v after the 503; Retry-After: 1 was not honored", gap)
	}
}

// TestHealthTransitions: the background prober flips a replica down
// when /healthz starts failing and back up when it recovers, counting
// both transitions.
func TestHealthTransitions(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			http.NotFound(w, r)
			return
		}
		if healthy.Load() {
			w.Write([]byte(`{"status":"ok"}`))
		} else {
			http.Error(w, "unhealthy", http.StatusServiceUnavailable)
		}
	}))
	defer ts.Close()

	d := New(client.New(ts.URL))
	stop := d.StartHealth(5 * time.Millisecond)
	defer stop()
	stop2 := d.StartHealth(5 * time.Millisecond) // stop is idempotent and instances independent
	stop2()
	stop2()

	waitFor := func(what string, pred func(ReplicaHealth) bool) ReplicaHealth {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			h := d.Health()[0]
			if pred(h) {
				return h
			}
			if time.Now().After(deadline) {
				t.Fatalf("prober never observed %s: %+v", what, h)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	waitFor("initial up state", func(h ReplicaHealth) bool { return h.Up })

	healthy.Store(false)
	h := waitFor("the down transition", func(h ReplicaHealth) bool { return !h.Up })
	if h.Transitions == 0 {
		t.Errorf("down state with no transition counted: %+v", h)
	}
	if !strings.Contains(h.LastErr, "503") && !strings.Contains(h.LastErr, "unhealthy") {
		t.Errorf("LastErr = %q, want the probe failure", h.LastErr)
	}
	down := h.Transitions

	healthy.Store(true)
	h = waitFor("the recovery transition", func(h ReplicaHealth) bool { return h.Up })
	if h.Transitions <= down {
		t.Errorf("recovery did not count a transition: %+v", h)
	}
	if h.LastErr != "" {
		t.Errorf("LastErr = %q after recovery, want empty", h.LastErr)
	}
}

// TestFromHostsDuplicate: the same replica named twice — even under
// different spellings — is rejected, not silently double-dealt.
func TestFromHostsDuplicate(t *testing.T) {
	for _, list := range []string{
		"host1:9000,host1:9000",
		"http://host1:9000, host1:9000/",
		"host1:9000,host2:9000,host1:9000",
	} {
		if _, err := FromHosts(list); err == nil {
			t.Errorf("FromHosts(%q) accepted a duplicate replica", list)
		} else if !strings.Contains(err.Error(), "twice") {
			t.Errorf("FromHosts(%q) error = %v, want one naming the duplicate", list, err)
		}
	}
	if d, err := FromHosts("host1:9000,host2:9000"); err != nil || len(d.replicas) != 2 {
		t.Errorf("distinct hosts rejected: %v", err)
	}
}

// TestRetryDisabled: WithRetryAttempts(0) fails the sweep on the first
// transport fault instead of failing over.
func TestRetryDisabled(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(nil))
	dead.Close()
	d := New(client.New(dead.URL), newReplicaServer(t)).Configure(WithRetryAttempts(0))
	_, err := d.CheckSources(context.Background(), batch(), nil)
	if err == nil || !strings.Contains(err.Error(), "replica ") {
		t.Fatalf("err = %v, want the dead replica's attributed transport error", err)
	}
}
