package shard

// The -fleet-status CLI mode shared by cmd/stack and cmd/debian: probe
// every replica of a fleet once and print the health snapshot. It
// lives here (rather than copied into each main) so both CLIs validate
// and report identically.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/stack/client"
)

// HasFleetStatusFlag reports whether args selects the -fleet-status
// mode. The CLIs scan for it before their regular flag parse so the
// mode can use its own strict flag set (FleetStatus) instead of
// silently accepting sweep/analysis flags that do nothing here. A "--"
// terminator ends the scan, mirroring the flag package.
func HasFleetStatusFlag(args []string) bool {
	for _, a := range args {
		if a == "--" {
			break
		}
		name, val, hasVal := strings.Cut(a, "=")
		if name != "-fleet-status" && name != "--fleet-status" {
			continue
		}
		if !hasVal {
			return true
		}
		on, err := strconv.ParseBool(val)
		return err == nil && on
	}
	return false
}

// FleetStatus implements the -fleet-status mode: parse args against
// the mode's own flag set — only -remote and -auth-token apply, and
// anything else (including positional arguments) is a usage error
// rather than a silently ignored no-op — then probe every replica once
// and write the fleet health snapshot to stdout as indented JSON.
//
// The returned value is the process exit code, documented in the
// mode's usage text:
//
//	0  every replica answered its health probe
//	1  at least one replica is down
//	2  usage error, or the probe/encoding failed
func FleetStatus(stdout, stderr io.Writer, prog string, args []string) int {
	fs := flag.NewFlagSet(prog+" -fleet-status", flag.ContinueOnError)
	fs.SetOutput(stderr)
	_ = fs.Bool("fleet-status", false, "probe the -remote fleet once and print its health as JSON")
	remote := fs.String("remote", "", "comma-separated stackd replica addresses (required)")
	authToken := fs.String("auth-token", "", "bearer token for the replicas")
	fs.Usage = func() {
		fmt.Fprintf(stderr, `usage: %s -fleet-status -remote host1,host2,... [-auth-token T]

Probes every replica once and prints the fleet health snapshot as
indented JSON: name, up, pending, transitions, lastErr per replica.
No analysis flag applies in this mode.

Exit codes:
  0  every replica is up
  1  at least one replica is down
  2  usage error, or the probe/encoding failed
`, prog)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "%s: -fleet-status takes no arguments (got %q)\n", prog, fs.Args())
		fs.Usage()
		return 2
	}
	if *remote == "" {
		fmt.Fprintf(stderr, "%s: -fleet-status requires -remote\n", prog)
		fs.Usage()
		return 2
	}
	d, err := FromHosts(*remote, WithClientOptions(client.WithAuthToken(*authToken)))
	if err != nil {
		fmt.Fprintf(stderr, "%s: -remote: %v\n", prog, err)
		return 2
	}
	health := d.ProbeAll(context.Background())
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(health); err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", prog, err)
		return 2
	}
	for _, h := range health {
		if !h.Up {
			return 1
		}
	}
	return 0
}
